package cdcs

import (
	"encoding/json"
	"strings"
	"testing"
)

// mustHash unmarshals a JSON compare request and hashes it.
func mustHash(t *testing.T, doc string) string {
	t.Helper()
	var req CompareRequest
	if err := json.Unmarshal([]byte(doc), &req); err != nil {
		t.Fatalf("unmarshal %s: %v", doc, err)
	}
	h, err := req.Hash()
	if err != nil {
		t.Fatalf("hash %s: %v", doc, err)
	}
	return h
}

func TestCompareRequestHashStableAcrossFieldOrder(t *testing.T) {
	// The same request with JSON fields (and nested fields) in different
	// orders must produce the same content address.
	a := mustHash(t, `{
		"mix": {"kind": "random", "seed": 7, "n": 16},
		"schemes": ["S-NUCA", "CDCS"],
		"seed": 3
	}`)
	b := mustHash(t, `{
		"seed": 3,
		"schemes": ["S-NUCA", "CDCS"],
		"mix": {"n": 16, "seed": 7, "kind": "random"}
	}`)
	if a != b {
		t.Errorf("field order changed the hash: %s vs %s", a, b)
	}
}

func TestCompareRequestHashDefaultsSpelledOutOrOmitted(t *testing.T) {
	cfg := DefaultConfig()
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit default config + explicit full scheme list == omitted both.
	a := mustHash(t, `{"mix": {"kind": "casestudy"}, "seed": 1,
		"config": `+string(cfgJSON)+`,
		"schemes": ["S-NUCA", "R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS"]}`)
	b := mustHash(t, `{"mix": {"kind": "casestudy"}, "seed": 1}`)
	if a != b {
		t.Errorf("spelled-out defaults changed the hash: %s vs %s", a, b)
	}
}

func TestCompareRequestHashSensitivity(t *testing.T) {
	base := `{"mix": {"kind": "random", "seed": 7, "n": 16}, "seed": 3}`
	h0 := mustHash(t, base)
	for name, doc := range map[string]string{
		"seed":       `{"mix": {"kind": "random", "seed": 7, "n": 16}, "seed": 4}`,
		"mix seed":   `{"mix": {"kind": "random", "seed": 8, "n": 16}, "seed": 3}`,
		"mix count":  `{"mix": {"kind": "random", "seed": 7, "n": 17}, "seed": 3}`,
		"mix kind":   `{"mix": {"kind": "random-mt", "seed": 7, "n": 16}, "seed": 3}`,
		"scheme set": `{"mix": {"kind": "random", "seed": 7, "n": 16}, "schemes": ["S-NUCA", "CDCS"], "seed": 3}`,
		"config":     `{"config": {"mesh_width": 4, "mesh_height": 4, "bank_kb": 512, "bank_latency": 9, "hop_latency": 4, "mem_latency": 120, "mem_channels": 8}, "mix": {"kind": "random", "seed": 7, "n": 16}, "seed": 3}`,
	} {
		if h := mustHash(t, doc); h == h0 {
			t.Errorf("changing %s did not change the hash", name)
		}
	}
}

func TestCompareRequestHashIgnoresUnusedMixFields(t *testing.T) {
	// casestudy ignores seed/n/apps; they must not leak into the hash.
	a := mustHash(t, `{"mix": {"kind": "casestudy", "seed": 9, "n": 4}, "seed": 1}`)
	b := mustHash(t, `{"mix": {"kind": "casestudy"}, "seed": 1}`)
	if a != b {
		t.Errorf("unused mix fields leaked into the hash")
	}
}

func TestCompareRequestValidation(t *testing.T) {
	for name, req := range map[string]CompareRequest{
		"no mix kind":     {Seed: 1},
		"bad mix kind":    {Mix: MixSpec{Kind: "nope", N: 4}},
		"random no n":     {Mix: MixSpec{Kind: MixRandom, Seed: 1}},
		"apps empty":      {Mix: MixSpec{Kind: MixApps}},
		"unknown scheme":  {Mix: MixSpec{Kind: MixCaseStudy}, Schemes: []string{"NUCA-9000"}},
		"invalid config":  {Mix: MixSpec{Kind: MixCaseStudy}, Config: &Config{MeshWidth: -1}},
		"negative counts": {Mix: MixSpec{Kind: MixApps, Apps: []AppSpec{{Bench: "omnet", Count: -2}}}},
	} {
		if _, err := req.Canonical(); err == nil {
			t.Errorf("%s: Canonical() accepted an invalid request", name)
		}
	}
}

func TestMixSpecBuildApps(t *testing.T) {
	m, err := MixSpec{Kind: MixApps, Apps: []AppSpec{
		{Bench: "omnet", Count: 2},
		{Bench: "milc"}, // count defaults to 1
	}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Apps() != 3 {
		t.Errorf("Apps=%d, want 3", m.Apps())
	}
	if _, err := (MixSpec{Kind: MixApps, Apps: []AppSpec{{Bench: "no-such-bench"}}}).Build(); err == nil {
		t.Error("Build accepted an unknown benchmark")
	}
	if _, err := (MixSpec{Kind: MixApps, Apps: []AppSpec{{Bench: "omnet", Count: 0}, {Bench: "milc", Count: 0}}}).Build(); err != nil {
		// Count 0 defaults to 1, so this is two apps, not zero threads.
		t.Errorf("Build rejected defaulted counts: %v", err)
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range SchemeNames() {
		s, ok := SchemeByName(name)
		if !ok || s.Name() != name {
			t.Errorf("SchemeByName(%q) = %q, %v", name, s.Name(), ok)
		}
	}
	if _, ok := SchemeByName("bogus"); ok {
		t.Error("SchemeByName accepted an unknown name")
	}
}

func TestExperimentRequestHashAndValidation(t *testing.T) {
	h1, err := ExperimentRequest{ID: "fig11", Quick: true}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Seed 0 canonicalizes to 1.
	h2, err := ExperimentRequest{ID: "fig11", Quick: true, Seed: 1}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("default seed hashed differently from explicit seed 1")
	}
	h3, err := ExperimentRequest{ID: "fig11", Quick: true, Mixes: 2}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Errorf("mix override did not change the hash")
	}
	// Spelling out the default mix count (QuickOptions uses 8) is the same
	// computation, so it must be the same content address.
	h4, err := ExperimentRequest{ID: "fig11", Quick: true, Mixes: 8}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h4 != h1 {
		t.Errorf("spelled-out default mix count hashed differently")
	}
	if _, err := (ExperimentRequest{ID: "nope"}).Hash(); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment id: err=%v", err)
	}
	if _, err := (ExperimentRequest{}).Hash(); err == nil {
		t.Error("empty experiment id accepted")
	}
}

func TestCompareRequestRunMatchesDirectCompare(t *testing.T) {
	// The request path must reproduce a direct library call bit for bit —
	// this is what makes cached responses trustworthy.
	req := CompareRequest{
		Mix:     MixSpec{Kind: MixRandom, Seed: 5, N: 8},
		Schemes: []string{"S-NUCA", "CDCS"},
		Seed:    2,
	}
	got, err := req.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := RandomMix(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DefaultSystem().Compare(mix, 2, SNUCA, CDCS)
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Errorf("request path diverged from direct Compare:\n%s\nvs\n%s", gj, wj)
	}
}
