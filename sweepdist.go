package cdcs

// Distributed sweeps: the cells of a SweepRequest are independent
// CompareRequests with content addresses, so a sweep shards across
// cdcs-serve replicas with no new server state — each cell is POSTed to
// /v1/compare on the replica its address rendezvous-hashes to (see
// internal/fanout), failed shards retry on surviving replicas, and the
// responses merge in deterministic cell order. Because every replica's
// response is byte-determined by the cell's content address, the merged
// SweepResult is bit-identical to a local Sweep and to any other replica
// count: 1 replica, N replicas and in-process evaluation all marshal to the
// same bytes.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"cdcs/internal/fanout"
	"cdcs/internal/fleet"
)

// DistributedSweepOptions tunes SweepDistributed. The zero value is usable.
type DistributedSweepOptions struct {
	// Client is the HTTP client used for replica requests (default
	// http.DefaultClient — supply one with a timeout for production use).
	Client *http.Client
	// Parallelism caps concurrent in-flight cell requests across all
	// replicas (default 4 per replica).
	Parallelism int
	// Context cancels the fan-out.
	Context context.Context
	// Progress, if set, receives (cells done, total cells).
	Progress func(done, total int)
	// FleetProbeInterval is the period of the background /healthz probes
	// over the replicas for the duration of the sweep (default 2s; negative
	// disables probing, so only request outcomes drive the breakers).
	FleetProbeInterval time.Duration
	// FleetBreakerThreshold is the number of consecutive failures that
	// opens a replica's circuit breaker (default 3).
	FleetBreakerThreshold int
	// HotCellLatency marks a cell hot when its serving request took longer
	// than this; hot cells are replicated in the background to a second
	// rendezvous holder so warm copies exist on more than one replica. 0
	// disables replication.
	HotCellLatency time.Duration
	// TopK is how many of a cell's top rendezvous holders compete on load
	// (default 2; 1 restores pure rendezvous routing).
	TopK int
	// OnMembership, if set, is invoked whenever the coordinator adopts a
	// new fleet member list mid-sweep (discovered through the membership
	// snapshots replica healthz responses carry), with the members and
	// epoch adopted. Informational — the re-routing itself is automatic.
	OnMembership func(members []string, epoch uint64)
}

// ReplicaHealth is one replica's fleet-view snapshot at the end of a
// distributed sweep.
type ReplicaHealth struct {
	// State is the circuit-breaker state: "closed", "open" or "half-open".
	State string `json:"state"`
	// EWMALatencyMs is the smoothed service latency of successful requests,
	// in milliseconds.
	EWMALatencyMs float64 `json:"ewma_latency_ms"`
	// Requests and Errors count completed and failed requests to the
	// replica during the sweep (health probes excluded).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// BreakerTrips counts closed → open breaker transitions.
	BreakerTrips int64 `json:"breaker_trips"`
}

// SweepReplicaStats reports how a distributed sweep spread over replicas,
// keyed by normalized replica base URL.
type SweepReplicaStats struct {
	// Assigned counts cells whose rendezvous ranking put each replica
	// first; Cells counts cells each replica actually served. They differ
	// when load-aware routing or retries moved work.
	Assigned map[string]int `json:"assigned,omitempty"`
	Cells    map[string]int `json:"cells"`
	// Failures counts failed requests per replica (connection errors, 5xx);
	// a replica with failures and zero served cells was down throughout.
	Failures map[string]int `json:"failures,omitempty"`
	// Retried counts cells that moved off their first-choice replica.
	Retried int `json:"retried,omitempty"`
	// Replicated counts hot cells re-posted to a second holder (see
	// DistributedSweepOptions.HotCellLatency).
	Replicated int `json:"replicated,omitempty"`
	// Fleet is the end-of-sweep health snapshot per replica.
	Fleet map[string]ReplicaHealth `json:"fleet,omitempty"`
}

// SweepDistributed evaluates a config-grid sweep by sharding its cells
// across cdcs-serve replicas (base URLs like "http://host:8080"). Cells are
// routed by rendezvous hash of their content address, so concurrent clients
// sweeping overlapping grids converge on the same replica per cell and its
// result cache coalesces the work; a replica failure moves only that
// replica's cells onto survivors. For the duration of the sweep a fleet
// view (internal/fleet) health-checks the replicas and steers each cell to
// the least-loaded healthy replica among its top rendezvous holders, so a
// slow or flapping replica sheds load without operator action. Routing
// only ever changes where a cell is computed: the merged result is
// byte-identical to Sweep's for any replica count, any routing order and
// any failure pattern that leaves the sweep completable.
func SweepDistributed(req SweepRequest, replicas []string, opts DistributedSweepOptions) (*SweepResult, *SweepReplicaStats, error) {
	canon, err := req.Canonical()
	if err != nil {
		return nil, nil, err
	}
	cells, err := canon.Cells()
	if err != nil {
		return nil, nil, err
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	units := make([]fanout.Cell, len(cells))
	for i, cell := range cells {
		body, err := json.Marshal(cell.Request)
		if err != nil {
			return nil, nil, fmt.Errorf("cdcs: sweep cell %d: %w", i, err)
		}
		units[i] = fanout.Cell{Index: i, Key: cell.Hash, Body: body}
	}

	// The fleet view lives for the duration of the sweep: its prober tracks
	// replica health in the background while request outcomes feed the
	// per-replica load signals the router steers by. Membership is live:
	// replica healthz responses carry (members, epoch) snapshots, and
	// AdoptMembers applies them to the view — a replica that joins
	// mid-sweep starts absorbing the not-yet-dispatched cells it owns, and
	// one that drains stops receiving new ones. The member list given here
	// is only the starting point.
	fl := fleet.New(fanout.NormalizeReplicas(replicas), fleet.Options{
		ProbeInterval:    opts.FleetProbeInterval,
		BreakerThreshold: opts.FleetBreakerThreshold,
		TopK:             opts.TopK,
		Client:           opts.Client,
		AdoptMembers:     true,
		OnMembership:     opts.OnMembership,
	})
	fl.Start()
	defer fl.Close()

	results, fstats, err := fanout.Do(ctx, replicas, units, fanout.Options{
		Client:      opts.Client,
		Path:        "/v1/compare",
		Parallelism: opts.Parallelism,
		OnProgress:  opts.Progress,
		Fleet:       fl,
		HotLatency:  opts.HotCellLatency,
		Members:     fl.Replicas,
	})
	stats := &SweepReplicaStats{
		Assigned:   map[string]int{},
		Cells:      map[string]int{},
		Failures:   map[string]int{},
		Retried:    fstats.Retried,
		Replicated: fstats.Replicated,
		Fleet:      map[string]ReplicaHealth{},
	}
	for url, rs := range fstats.Replicas {
		stats.Assigned[url] = rs.Assigned
		stats.Cells[url] = rs.Served
		if rs.Failed > 0 {
			stats.Failures[url] = rs.Failed
		}
	}
	for _, rep := range fl.Snapshot() {
		stats.Fleet[rep.URL] = ReplicaHealth{
			State:         rep.State,
			EWMALatencyMs: rep.EWMALatencyMs,
			Requests:      rep.Requests,
			Errors:        rep.Errors,
			BreakerTrips:  rep.Trips,
		}
	}
	if err != nil {
		return nil, stats, err
	}

	out := &SweepResult{Request: canon, Cells: make([]SweepCellResult, len(cells))}
	for i, res := range results {
		// compareEnvelope mirrors the serving layer's /v1/compare body.
		var env struct {
			Hash       string      `json:"hash"`
			Comparison *Comparison `json:"comparison"`
		}
		if err := json.Unmarshal(res.Body, &env); err != nil {
			return nil, stats, fmt.Errorf("cdcs: cell %d response from %s: %w", i, res.Replica, err)
		}
		// The replica echoes the content address it computed for the cell;
		// a mismatch means it answered a different question than asked.
		if env.Hash != cells[i].Hash {
			return nil, stats, fmt.Errorf("cdcs: cell %d response hash %.12s from %s does not match request hash %.12s",
				i, env.Hash, res.Replica, cells[i].Hash)
		}
		if env.Comparison == nil {
			return nil, stats, fmt.Errorf("cdcs: cell %d response from %s has no comparison", i, res.Replica)
		}
		out.Cells[i] = SweepCellResult{SweepCell: cells[i], Comparison: env.Comparison}
	}
	return out, stats, nil
}
