// Package cdcs is a library-level reproduction of "Scaling Distributed
// Cache Hierarchies through Computation and Data Co-Scheduling" (Beckmann,
// Tsai, Sanchez — HPCA 2015).
//
// It models a tiled CMP with a distributed, partitioned NUCA last-level
// cache and implements the paper's full stack: geometric miss-curve
// monitors (GMONs), latency-aware capacity allocation (Peekahead over
// total-latency curves), optimistic contention-aware virtual-cache
// placement, thread placement, refined placement with capacity trades, and
// incremental reconfigurations via demand moves and background
// invalidations — alongside the S-NUCA, R-NUCA and Jigsaw baselines it is
// evaluated against.
//
// Quick start:
//
//	sys := cdcs.DefaultSystem()
//	mix, _ := cdcs.RandomMix(1, 64)
//	cmp, _ := sys.Compare(mix, 1, cdcs.SNUCA, cdcs.CDCS)
//	fmt.Printf("CDCS weighted speedup: %.2f\n", cmp.WeightedSpeedup["CDCS"])
//
// Every table and figure of the paper's evaluation can be regenerated with
// Experiment (or the cmd/cdcs CLI); see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package cdcs

import (
	"context"
	"fmt"
	"math/rand"

	"cdcs/internal/core"
	"cdcs/internal/exp"
	"cdcs/internal/mesh"
	"cdcs/internal/place"
	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/stats"
	"cdcs/internal/workload"
)

// Config describes the modeled CMP. The zero value is not valid; start from
// DefaultConfig. The JSON form is part of the serving API (cmd/cdcs-serve)
// and feeds the canonical request hash, so field tags are stable.
type Config struct {
	// MeshWidth and MeshHeight set the tile grid (the paper: 8×8).
	MeshWidth  int `json:"mesh_width"`
	MeshHeight int `json:"mesh_height"`
	// BankKB is the per-tile LLC bank capacity in KB (the paper: 512).
	BankKB int `json:"bank_kb"`
	// BankLatency, HopLatency, MemLatency are in cycles.
	BankLatency float64 `json:"bank_latency"`
	HopLatency  float64 `json:"hop_latency"`
	MemLatency  float64 `json:"mem_latency"`
	// MemChannels and MemBandwidthGBs describe the memory system.
	MemChannels int `json:"mem_channels"`
}

// DefaultConfig returns the paper's 64-tile configuration (Table 2).
func DefaultConfig() Config {
	return Config{
		MeshWidth: 8, MeshHeight: 8,
		BankKB:      512,
		BankLatency: 9,
		HopLatency:  4,
		MemLatency:  120,
		MemChannels: 8,
	}
}

// System is a configured machine model; create with NewSystem.
type System struct {
	env policy.Env
}

// NewSystem validates a config and builds a System.
func NewSystem(cfg Config) (*System, error) {
	if cfg.MeshWidth < 1 || cfg.MeshHeight < 1 {
		return nil, fmt.Errorf("cdcs: invalid mesh %dx%d", cfg.MeshWidth, cfg.MeshHeight)
	}
	if cfg.BankKB <= 0 {
		return nil, fmt.Errorf("cdcs: invalid bank size %dKB", cfg.BankKB)
	}
	env := policy.DefaultEnv()
	env.Chip = place.Chip{
		Topo:      mesh.New(cfg.MeshWidth, cfg.MeshHeight),
		BankLines: float64(cfg.BankKB) * 1024 / workload.LineBytes,
	}
	if cfg.BankLatency > 0 {
		env.Params.BankLatency = cfg.BankLatency
	}
	if cfg.HopLatency > 0 {
		env.Params.HopLatency = cfg.HopLatency
		env.Model.HopLatency = cfg.HopLatency
	}
	if cfg.MemLatency > 0 {
		env.Params.MemZeroLoad = cfg.MemLatency
		env.Model.MemLatency = cfg.MemLatency + env.Params.MemBurst
	}
	if cfg.MemChannels > 0 {
		env.Params.Channels = cfg.MemChannels
	}
	return &System{env: env}, nil
}

// DefaultSystem returns the paper's 64-tile system.
func DefaultSystem() *System {
	s, err := NewSystem(DefaultConfig())
	if err != nil {
		panic(err) // DefaultConfig is always valid
	}
	return s
}

// Cores returns the number of cores (= tiles = banks).
func (s *System) Cores() int { return s.env.Chip.Banks() }

// LLCBytes returns total LLC capacity in bytes.
func (s *System) LLCBytes() int {
	return int(s.env.Chip.TotalLines()) * workload.LineBytes
}

// Scheme selects a NUCA organization + thread scheduler.
type Scheme struct {
	inner policy.Scheme
}

// Name returns the scheme's display name.
func (s Scheme) Name() string { return s.inner.Name() }

// The evaluated schemes.
var (
	// SNUCA is a static NUCA: lines spread over all banks.
	SNUCA = Scheme{policy.SchemeSNUCA}
	// RNUCA places private data locally and spreads shared data (R-NUCA).
	RNUCA = Scheme{policy.SchemeRNUCA}
	// JigsawC is Jigsaw with the clustered thread scheduler.
	JigsawC = Scheme{policy.SchemeJigsawC}
	// JigsawR is Jigsaw with the random thread scheduler.
	JigsawR = Scheme{policy.SchemeJigsawR}
	// CDCS is the paper's full computation-and-data co-scheduler.
	CDCS = Scheme{policy.SchemeCDCS}
)

// CDCSVariant builds a partial CDCS for factor analysis: enable latency-
// aware allocation (+L), thread placement (+T) and/or refined trades (+D).
// With all false it degenerates to Jigsaw with random thread placement.
func CDCSVariant(latencyAware, threadPlace, refinedTrades bool) Scheme {
	threads := policy.Random
	if threadPlace {
		threads = policy.Placed
	}
	label := "CDCS["
	for _, f := range []struct {
		on bool
		c  string
	}{{latencyAware, "L"}, {threadPlace, "T"}, {refinedTrades, "D"}} {
		if f.on {
			label += f.c
		}
	}
	label += "]"
	return Scheme{policy.Scheme{
		Kind:    policy.CDCS,
		Threads: threads,
		Feats: core.Features{
			LatencyAware:  latencyAware,
			ThreadPlace:   threadPlace,
			RefinedTrades: refinedTrades,
		},
		Label: label,
	}}
}

// Schemes returns all five standard schemes in the paper's order.
func Schemes() []Scheme {
	return []Scheme{SNUCA, RNUCA, JigsawC, JigsawR, CDCS}
}

// Mix is a workload: a set of single- and multi-threaded app instances.
type Mix struct {
	inner *workload.Mix
}

// NewMix returns an empty mix; populate with Add / AddMT.
func NewMix() *Mix { return &Mix{inner: workload.NewMix()} }

// Add appends n instances of a single-threaded benchmark (see Benchmarks).
func (m *Mix) Add(bench string, n int) error {
	p := workload.ByName(workload.SPECCPU(), bench)
	if p == nil {
		return fmt.Errorf("cdcs: unknown benchmark %q", bench)
	}
	for i := 0; i < n; i++ {
		m.inner.AddST(p)
	}
	return nil
}

// AddMT appends n instances of an 8-thread benchmark (see MTBenchmarks).
func (m *Mix) AddMT(bench string, n int) error {
	p := workload.MTByName(workload.SPECOMP(), bench)
	if p == nil {
		return fmt.Errorf("cdcs: unknown MT benchmark %q", bench)
	}
	for i := 0; i < n; i++ {
		m.inner.AddMT(p)
	}
	return nil
}

// Threads returns the mix's total thread count.
func (m *Mix) Threads() int { return len(m.inner.Threads) }

// Apps returns the mix's process count.
func (m *Mix) Apps() int { return len(m.inner.Procs) }

// AppNames lists instance names ("omnet#1", ...).
func (m *Mix) AppNames() []string {
	out := make([]string, len(m.inner.Procs))
	for i, p := range m.inner.Procs {
		out[i] = p.Name
	}
	return out
}

// RandomMix draws n single-threaded apps uniformly from the benchmark set.
func RandomMix(seed int64, n int) (*Mix, error) {
	if n < 1 {
		return nil, fmt.Errorf("cdcs: mix needs at least one app")
	}
	return &Mix{inner: workload.RandomST(rand.New(rand.NewSource(seed)), workload.SPECCPU(), n)}, nil
}

// RandomMTMix draws n 8-thread apps uniformly from the MT benchmark set.
func RandomMTMix(seed int64, n int) (*Mix, error) {
	if n < 1 {
		return nil, fmt.Errorf("cdcs: mix needs at least one app")
	}
	return &Mix{inner: workload.RandomMT(rand.New(rand.NewSource(seed)), workload.SPECOMP(), n)}, nil
}

// CaseStudyMix returns the paper's §II-B mix (6×omnet, 14×milc, 2×ilbdc)
// for a 36-core system.
func CaseStudyMix() *Mix { return &Mix{inner: workload.CaseStudy()} }

// Benchmarks lists the single-threaded benchmark names.
func Benchmarks() []string {
	ps := workload.SPECCPU()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// MTBenchmarks lists the multithreaded benchmark names.
func MTBenchmarks() []string {
	ps := workload.SPECOMP()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Result is one scheme's outcome on a mix. The JSON form is part of the
// serving API (cmd/cdcs-serve); cached and freshly computed responses are
// byte-identical because simulation is bit-deterministic (see sim.Engine).
type Result struct {
	// Scheme is the display name.
	Scheme string `json:"scheme"`
	// PerApp is each app's progress rate (IPC; min-thread IPC for MT apps).
	PerApp []float64 `json:"per_app"`
	// AggIPC is chip-wide IPC.
	AggIPC float64 `json:"agg_ipc"`
	// OnChipPKI / OffChipPKI are mean latency cycles per kilo-instruction.
	OnChipPKI  float64 `json:"on_chip_pki"`
	OffChipPKI float64 `json:"off_chip_pki"`
	// TrafficPerInstr is NoC traffic in flit-hops per instruction.
	TrafficPerInstr float64 `json:"traffic_per_instr"`
	// EnergyPJPerInstr is energy per instruction in picojoules.
	EnergyPJPerInstr float64 `json:"energy_pj_per_instr"`
	// ThreadCores maps thread index to core tile index.
	ThreadCores []int `json:"thread_cores,omitempty"`
	// VCSizesMB lists virtual-cache allocations in MB (partitioned schemes).
	VCSizesMB []float64 `json:"vc_sizes_mb,omitempty"`
}

// Run evaluates one scheme on a mix. The seed drives random thread
// placement (and nothing else).
func (s *System) Run(scheme Scheme, mix *Mix, seed int64) (*Result, error) {
	res, err := sim.RunMix(s.env, scheme.inner, mix.inner, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	out := &Result{
		Scheme:           res.Scheme,
		PerApp:           res.PerApp,
		AggIPC:           res.Chip.AggIPC,
		OnChipPKI:        res.OnChipPKI,
		OffChipPKI:       res.OffChipPKI,
		TrafficPerInstr:  res.Chip.TrafficPerInstr.Total(),
		EnergyPJPerInstr: res.Chip.EnergyPerInstr.Total(),
	}
	for _, c := range res.Sched.ThreadCore {
		out.ThreadCores = append(out.ThreadCores, int(c))
	}
	for _, sz := range res.Sched.VCSizes {
		out.VCSizesMB = append(out.VCSizesMB, sz/workload.LinesPerMB)
	}
	return out, nil
}

// Comparison holds several schemes evaluated on one mix against the first
// scheme as baseline. The JSON form is part of the serving API.
type Comparison struct {
	// Baseline is the name of the baseline scheme.
	Baseline string `json:"baseline"`
	// Results maps scheme name to its Result.
	Results map[string]*Result `json:"results"`
	// WeightedSpeedup maps scheme name to its weighted speedup vs baseline.
	WeightedSpeedup map[string]float64 `json:"weighted_speedup"`
}

// RunOptions controls parallel execution of Compare and Experiment calls.
// The zero value runs with GOMAXPROCS workers and no cancellation; results
// are bit-identical for any Parallelism (randomness is derived per job, see
// the engine in internal/sim).
type RunOptions struct {
	// Parallelism caps concurrent simulation jobs; 0 means GOMAXPROCS.
	Parallelism int
	// Context cancels a long evaluation early; nil means background. A
	// canceled run returns ctx.Err().
	Context context.Context
	// Progress, when non-nil, receives (done, total) after each completed
	// job. Multi-stage experiments restart the count per stage.
	Progress func(done, total int)
}

// engine converts the options to the internal worker pool.
func (o RunOptions) engine() sim.Engine {
	return sim.Engine{Parallelism: o.Parallelism, Ctx: o.Context, OnProgress: o.Progress}
}

// Compare evaluates schemes on one mix; the first scheme is the baseline
// (conventionally SNUCA). Schemes are evaluated in parallel with default
// RunOptions; use CompareWithOptions to bound parallelism or cancel.
func (s *System) Compare(mix *Mix, seed int64, schemes ...Scheme) (*Comparison, error) {
	return s.CompareWithOptions(mix, seed, RunOptions{}, schemes...)
}

// CompareWithOptions is Compare with explicit execution options. Scheme i
// runs with seed+i (the same seeds as a sequential Compare), so results do
// not depend on the worker count.
func (s *System) CompareWithOptions(mix *Mix, seed int64, opts RunOptions, schemes ...Scheme) (*Comparison, error) {
	if len(schemes) == 0 {
		return nil, fmt.Errorf("cdcs: Compare needs at least one scheme")
	}
	// Materialize dense accessor views once, here on the single-threaded
	// path, so the per-scheme workers share sealed read-only state.
	mix.inner.Seal()
	results := make([]*Result, len(schemes))
	if err := opts.engine().ForEach(len(schemes), func(i int) error {
		r, err := s.Run(schemes[i], mix, seed+int64(i))
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	}); err != nil {
		return nil, err
	}
	cmp := &Comparison{
		Baseline:        results[0].Scheme,
		Results:         map[string]*Result{},
		WeightedSpeedup: map[string]float64{},
	}
	base := results[0]
	for _, r := range results {
		cmp.Results[r.Scheme] = r
		cmp.WeightedSpeedup[r.Scheme] = stats.WeightedSpeedup(r.PerApp, base.PerApp)
	}
	return cmp, nil
}

// Experiment regenerates one of the paper's tables or figures and returns
// its formatted report. Quick mode trims mix counts for fast smoke runs;
// full mode uses the paper's 50 mixes. Simulation jobs fan out over all
// cores; use ExperimentWithOptions to bound parallelism, cancel, or watch
// progress.
func Experiment(id string, quick bool) (string, error) {
	return ExperimentWithOptions(id, quick, RunOptions{})
}

// ExperimentWithOptions is Experiment with explicit execution options.
// Results are bit-identical for any Parallelism.
func ExperimentWithOptions(id string, quick bool, opts RunOptions) (string, error) {
	eo := exp.DefaultOptions()
	if quick {
		eo = exp.QuickOptions()
	}
	eo.Parallelism = opts.Parallelism
	eo.Context = opts.Context
	eo.Progress = opts.Progress
	rep, err := exp.Run(id, eo)
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return exp.IDs() }
