package cdcs

// Sweep diffing: two SweepResults — different code revisions, scheme
// variants, or machines — align by cell content hash, not by grid
// position, so adding an axis value or reordering mixes between runs never
// mispairs cells. The diff reports per-cell and aggregate weighted-speedup
// deltas plus the cells only one side evaluated.

import "fmt"

// SweepCellDelta is one cell present in both results.
type SweepCellDelta struct {
	// Hash is the cell's content address (equal on both sides by
	// construction).
	Hash string `json:"hash"`
	// IndexA and IndexB are the cell's grid positions in each result.
	IndexA int `json:"index_a"`
	IndexB int `json:"index_b"`
	// Cell is the (shared) canonical request.
	Cell CompareRequest `json:"cell"`
	// WSDelta maps scheme name to B's weighted speedup minus A's, over the
	// schemes both sides evaluated.
	WSDelta map[string]float64 `json:"ws_delta"`
}

// SweepDiffResult is the alignment of two sweeps.
type SweepDiffResult struct {
	// Schemes lists the scheme names common to both sweeps, in A's order.
	Schemes []string `json:"schemes"`
	// Common holds per-cell deltas for cells in both sweeps, ordered by A's
	// grid order.
	Common []SweepCellDelta `json:"common"`
	// OnlyA and OnlyB list cells evaluated by just one side, in that side's
	// grid order.
	OnlyA []SweepCell `json:"only_a,omitempty"`
	OnlyB []SweepCell `json:"only_b,omitempty"`
	// MeanWSDelta and MaxAbsWSDelta aggregate WSDelta over the common
	// cells per scheme (mean of signed deltas; largest magnitude).
	MeanWSDelta   map[string]float64 `json:"mean_ws_delta"`
	MaxAbsWSDelta map[string]float64 `json:"max_abs_ws_delta"`
}

// DiffSweeps aligns two sweep results by cell content hash. Cells with the
// same hash asked for the identical computation, so any weighted-speedup
// delta between aligned cells is a behavioral difference between the code
// (or environment) that produced each file, never a workload difference.
func DiffSweeps(a, b *SweepResult) (*SweepDiffResult, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("cdcs: diff needs two sweep results")
	}
	bByHash := make(map[string]SweepCellResult, len(b.Cells))
	for _, cell := range b.Cells {
		bByHash[cell.Hash] = cell
	}
	schemes := commonSchemes(a.Request.Schemes, b.Request.Schemes)
	if len(schemes) == 0 {
		return nil, fmt.Errorf("cdcs: sweeps share no schemes (%v vs %v)", a.Request.Schemes, b.Request.Schemes)
	}

	out := &SweepDiffResult{
		Schemes:       schemes,
		MeanWSDelta:   map[string]float64{},
		MaxAbsWSDelta: map[string]float64{},
	}
	matchedB := map[string]bool{}
	for _, ca := range a.Cells {
		cb, ok := bByHash[ca.Hash]
		if !ok {
			out.OnlyA = append(out.OnlyA, ca.SweepCell)
			continue
		}
		matchedB[ca.Hash] = true
		if ca.Comparison == nil || cb.Comparison == nil {
			return nil, fmt.Errorf("cdcs: cell %.12s is missing its comparison", ca.Hash)
		}
		delta := make(map[string]float64, len(schemes))
		for _, s := range schemes {
			delta[s] = cb.Comparison.WeightedSpeedup[s] - ca.Comparison.WeightedSpeedup[s]
		}
		out.Common = append(out.Common, SweepCellDelta{
			Hash:    ca.Hash,
			IndexA:  ca.Index,
			IndexB:  cb.Index,
			Cell:    ca.Request,
			WSDelta: delta,
		})
	}
	for _, cb := range b.Cells {
		if !matchedB[cb.Hash] {
			out.OnlyB = append(out.OnlyB, cb.SweepCell)
		}
	}

	for _, s := range schemes {
		var sum, maxAbs float64
		for _, d := range out.Common {
			v := d.WSDelta[s]
			sum += v
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		if n := len(out.Common); n > 0 {
			out.MeanWSDelta[s] = sum / float64(n)
		}
		out.MaxAbsWSDelta[s] = maxAbs
	}
	return out, nil
}

// commonSchemes returns the names in both lists, in a's order.
func commonSchemes(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, s := range b {
		inB[s] = true
	}
	var out []string
	for _, s := range a {
		if inB[s] {
			out = append(out, s)
		}
	}
	return out
}

// Identical reports whether every aligned cell's deltas are exactly zero
// and no cell is unmatched — the "no behavioral drift" verdict.
func (d *SweepDiffResult) Identical() bool {
	if len(d.OnlyA) > 0 || len(d.OnlyB) > 0 {
		return false
	}
	for _, c := range d.Common {
		for _, v := range c.WSDelta {
			if v != 0 {
				return false
			}
		}
	}
	return true
}
