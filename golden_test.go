package cdcs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
)

// The golden-run regression corpus: committed SHA-256 hashes of Compare
// output for all five schemes on the default 8×8 configuration, under a
// fixed-seed ST mix and a fixed-seed MT mix. Simulation is bit-deterministic,
// so any drift in these hashes means a change altered results at paper scale
// — placement and performance work (e.g. the pruned candidate search in
// internal/place, which must be a no-op at ≤256 tiles) cannot silently change
// numbers. Regenerate deliberately with:
//
//	go test -run TestGoldenStability -update-golden .
//
// and justify the refresh in the commit message.

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json with freshly computed hashes")

const goldenPath = "testdata/golden.json"

// goldenFile is the committed corpus document.
type goldenFile struct {
	// Goarch records where the hashes were computed. Go floating point is
	// IEEE-deterministic but the compiler may fuse multiply-adds differently
	// across architectures, so the corpus only gates runs on the recorded
	// architecture (CI's) and skips elsewhere.
	Goarch string `json:"goarch"`
	// Entries maps "<mix>/<scheme>" to the SHA-256 of the scheme's Result
	// JSON, and "<mix>" to the SHA-256 of the whole Comparison JSON.
	Entries map[string]string `json:"entries"`
}

// goldenRequests returns the corpus inputs: every standard scheme on the
// paper's 8×8 chip, one 64-app single-threaded mix and one 8×8-thread
// multithreaded mix, plus a fully-committed 16×16 chip (256 banks — exactly
// internal/place's PruneThreshold, so the exhaustive/pruned placement
// boundary itself is pinned: any off-by-one in the threshold or drift in
// the exhaustive path at its largest extent changes these hashes) and a
// 64×64 chip (4096 banks — the stride-4 candidate-lattice regime of the
// pruned search and the arena-backed kilo-tile hot path, and the largest
// mesh the flat pipeline handles), and a 128×128 chip (16,384 banks — the
// lazy-topology + hierarchical two-level placement regime, so the coarse
// cluster pass, interior refinement, and parallel merge are all pinned
// bit-for-bit). Fixed seeds throughout.
func goldenRequests() map[string]CompareRequest {
	cfg16 := DefaultConfig()
	cfg16.MeshWidth, cfg16.MeshHeight = 16, 16
	cfg64 := DefaultConfig()
	cfg64.MeshWidth, cfg64.MeshHeight = 64, 64
	cfg128 := DefaultConfig()
	cfg128.MeshWidth, cfg128.MeshHeight = 128, 128
	return map[string]CompareRequest{
		"st":    {Mix: MixSpec{Kind: MixRandom, Seed: 42, N: 64}, Seed: 1},
		"mt":    {Mix: MixSpec{Kind: MixRandomMT, Seed: 42, N: 8}, Seed: 1},
		"st16":  {Config: &cfg16, Mix: MixSpec{Kind: MixRandom, Seed: 42, N: 256}, Seed: 1},
		"st64":  {Config: &cfg64, Mix: MixSpec{Kind: MixRandom, Seed: 42, N: 256}, Seed: 1},
		"st128": {Config: &cfg128, Mix: MixSpec{Kind: MixRandom, Seed: 42, N: 256}, Seed: 1},
	}
}

// computeGolden evaluates the corpus and returns its entry map.
func computeGolden(t *testing.T) map[string]string {
	t.Helper()
	sum := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(b)
		return hex.EncodeToString(h[:])
	}
	entries := map[string]string{}
	for name, req := range goldenRequests() {
		cmp, err := req.Run(RunOptions{})
		if err != nil {
			t.Fatalf("golden %s: %v", name, err)
		}
		entries[name] = sum(cmp)
		for _, scheme := range SchemeNames() {
			res, ok := cmp.Results[scheme]
			if !ok {
				t.Fatalf("golden %s: scheme %s missing from comparison", name, scheme)
			}
			entries[name+"/"+scheme] = sum(res)
		}
	}
	return entries
}

// TestGoldenStability fails on any bit-level drift of Compare output against
// the committed corpus. It runs only on the corpus's recorded architecture;
// use -update-golden to regenerate after an intentional change.
func TestGoldenStability(t *testing.T) {
	if *updateGolden {
		entries := computeGolden(t)
		doc, err := json.MarshalIndent(goldenFile{Goarch: runtime.GOARCH, Entries: entries}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(doc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries for %s", goldenPath, len(entries), runtime.GOARCH)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden corpus (regenerate with -update-golden): %v", err)
	}
	var golden goldenFile
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if golden.Goarch != runtime.GOARCH {
		t.Skipf("golden corpus recorded on %s, running on %s", golden.Goarch, runtime.GOARCH)
	}

	got := computeGolden(t)
	var keys []string
	for k := range golden.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	drifted := 0
	for _, k := range keys {
		if got[k] != golden.Entries[k] {
			drifted++
			t.Errorf("golden %-14s drifted:\n  committed %s\n  computed  %s", k, golden.Entries[k], got[k])
		}
	}
	for k := range got {
		if _, ok := golden.Entries[k]; !ok {
			t.Errorf("golden corpus missing entry %q (regenerate with -update-golden)", k)
		}
	}
	if drifted > 0 {
		t.Logf("%d of %d golden entries drifted — if the change is intentional, rerun with -update-golden and explain why", drifted, len(keys))
	}
}

// TestGoldenCorpusShape sanity-checks the committed document itself, so a
// truncated or hand-edited corpus fails loudly on every architecture.
func TestGoldenCorpusShape(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden corpus: %v", err)
	}
	var golden goldenFile
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	if golden.Goarch == "" {
		t.Error("golden corpus missing goarch")
	}
	wantKeys := 0
	for name := range goldenRequests() {
		wantKeys += 1 + len(SchemeNames())
		if _, ok := golden.Entries[name]; !ok {
			t.Errorf("missing comparison entry %q", name)
		}
		for _, scheme := range SchemeNames() {
			key := fmt.Sprintf("%s/%s", name, scheme)
			h, ok := golden.Entries[key]
			if !ok {
				t.Errorf("missing entry %q", key)
				continue
			}
			if len(h) != 64 {
				t.Errorf("entry %q is not a SHA-256 hex digest: %q", key, h)
			}
		}
	}
	if len(golden.Entries) != wantKeys {
		t.Errorf("corpus has %d entries, want %d", len(golden.Entries), wantKeys)
	}
}
