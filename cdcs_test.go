package cdcs

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestDefaultSystem(t *testing.T) {
	sys := DefaultSystem()
	if sys.Cores() != 64 {
		t.Errorf("Cores=%d, want 64", sys.Cores())
	}
	if sys.LLCBytes() != 32<<20 {
		t.Errorf("LLC=%d bytes, want 32MB", sys.LLCBytes())
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{MeshWidth: 0, MeshHeight: 8, BankKB: 512}); err == nil {
		t.Error("invalid mesh accepted")
	}
	if _, err := NewSystem(Config{MeshWidth: 8, MeshHeight: 8, BankKB: 0}); err == nil {
		t.Error("invalid bank accepted")
	}
	sys, err := NewSystem(Config{MeshWidth: 6, MeshHeight: 6, BankKB: 512})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cores() != 36 {
		t.Errorf("Cores=%d, want 36", sys.Cores())
	}
}

func TestMixConstruction(t *testing.T) {
	m := NewMix()
	if err := m.Add("omnet", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddMT("ilbdc", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("nosuch", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := m.AddMT("nosuch", 1); err == nil {
		t.Error("unknown MT benchmark accepted")
	}
	if m.Apps() != 3 || m.Threads() != 10 {
		t.Errorf("mix: %d apps, %d threads", m.Apps(), m.Threads())
	}
	names := m.AppNames()
	if names[0] != "omnet#1" || names[2] != "ilbdc#1" {
		t.Errorf("names=%v", names)
	}
}

func TestBenchmarksLists(t *testing.T) {
	if got := len(Benchmarks()); got != 16 {
		t.Errorf("%d ST benchmarks, want 16", got)
	}
	if got := len(MTBenchmarks()); got != 8 {
		t.Errorf("%d MT benchmarks, want 8", got)
	}
}

func TestRandomMixErrors(t *testing.T) {
	if _, err := RandomMix(1, 0); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := RandomMTMix(1, 0); err == nil {
		t.Error("empty MT mix accepted")
	}
}

func TestRunAndCompare(t *testing.T) {
	sys := DefaultSystem()
	mix, err := RandomMix(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sys.Compare(mix, 7, SNUCA, RNUCA, JigsawC, JigsawR, CDCS)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline != "S-NUCA" {
		t.Errorf("baseline %q", cmp.Baseline)
	}
	if ws := cmp.WeightedSpeedup["S-NUCA"]; ws != 1 {
		t.Errorf("baseline WS=%g", ws)
	}
	if cmp.WeightedSpeedup["CDCS"] <= cmp.WeightedSpeedup["Jigsaw+R"] {
		t.Errorf("CDCS %.3f <= Jigsaw+R %.3f",
			cmp.WeightedSpeedup["CDCS"], cmp.WeightedSpeedup["Jigsaw+R"])
	}
	res := cmp.Results["CDCS"]
	if len(res.PerApp) != 64 || len(res.ThreadCores) != 64 {
		t.Errorf("result shapes wrong: %d apps, %d threads", len(res.PerApp), len(res.ThreadCores))
	}
	if res.AggIPC <= 0 || res.EnergyPJPerInstr <= 0 {
		t.Error("result metrics not populated")
	}
}

func TestCompareNeedsSchemes(t *testing.T) {
	sys := DefaultSystem()
	mix, _ := RandomMix(1, 4)
	if _, err := sys.Compare(mix, 1); err == nil {
		t.Error("Compare with no schemes accepted")
	}
}

func TestRunTooManyThreads(t *testing.T) {
	sys, _ := NewSystem(Config{MeshWidth: 2, MeshHeight: 2, BankKB: 512})
	mix, _ := RandomMix(1, 8)
	if _, err := sys.Run(CDCS, mix, 1); err == nil {
		t.Error("8 threads on 4 cores accepted")
	}
}

func TestCDCSVariantLabels(t *testing.T) {
	if name := CDCSVariant(true, false, false).Name(); name != "CDCS[L]" {
		t.Errorf("variant name %q", name)
	}
	if name := CDCSVariant(true, true, true).Name(); name != "CDCS[LTD]" {
		t.Errorf("variant name %q", name)
	}
}

func TestCDCSVariantBehaves(t *testing.T) {
	sys := DefaultSystem()
	mix, _ := RandomMix(11, 64)
	cmp, err := sys.Compare(mix, 11, SNUCA, CDCSVariant(false, false, false), CDCS)
	if err != nil {
		t.Fatal(err)
	}
	// All-off variant ~ Jigsaw+R; full CDCS at least as good.
	if cmp.WeightedSpeedup["CDCS"] < cmp.WeightedSpeedup["CDCS[]"] {
		t.Errorf("full CDCS %.3f below bare variant %.3f",
			cmp.WeightedSpeedup["CDCS"], cmp.WeightedSpeedup["CDCS[]"])
	}
}

func TestCompareWithOptionsDeterministic(t *testing.T) {
	sys := DefaultSystem()
	mix, err := RandomMix(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []Scheme{SNUCA, JigsawR, CDCS}
	seq, err := sys.CompareWithOptions(mix, 7, RunOptions{Parallelism: 1}, schemes...)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sys.CompareWithOptions(mix, 7, RunOptions{Parallelism: 8}, schemes...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.WeightedSpeedup, par.WeightedSpeedup) {
		t.Errorf("weighted speedups differ across parallelism:\nseq: %v\npar: %v",
			seq.WeightedSpeedup, par.WeightedSpeedup)
	}
	// And identical to the plain Compare path.
	plain, err := sys.Compare(mix, 7, schemes...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.WeightedSpeedup, seq.WeightedSpeedup) {
		t.Error("Compare and CompareWithOptions disagree")
	}
}

func TestCompareWithOptionsCanceled(t *testing.T) {
	sys := DefaultSystem()
	mix, _ := RandomMix(1, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.CompareWithOptions(mix, 1, RunOptions{Context: ctx}, SNUCA, CDCS); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if _, err := ExperimentWithOptions("fig11", true, RunOptions{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("experiment err = %v, want context.Canceled", err)
	}
}

func TestExperimentWithOptionsProgress(t *testing.T) {
	var last, total int
	out, err := ExperimentWithOptions("fig14", true, RunOptions{
		Progress: func(d, n int) { last, total = d, n },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CDCS") {
		t.Error("report missing CDCS row")
	}
	if total == 0 || last != total {
		t.Errorf("progress ended at %d/%d", last, total)
	}
}

func TestExperimentAPI(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments", len(ids))
	}
	out, err := Experiment("fig2", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "omnet") {
		t.Errorf("fig2 output missing curves:\n%s", out)
	}
	if _, err := Experiment("nope", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCaseStudyMixOn36Cores(t *testing.T) {
	sys, _ := NewSystem(Config{MeshWidth: 6, MeshHeight: 6, BankKB: 512})
	mix := CaseStudyMix()
	cmp, err := sys.Compare(mix, 3, SNUCA, CDCS)
	if err != nil {
		t.Fatal(err)
	}
	if ws := cmp.WeightedSpeedup["CDCS"]; ws < 1.2 {
		t.Errorf("case-study CDCS WS %.3f, want >1.2", ws)
	}
}
