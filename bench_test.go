package cdcs

// One benchmark per table and figure in the paper's evaluation. Each bench
// regenerates its experiment at reduced mix counts (QuickOptions) and
// reports the experiment's headline scalars as custom metrics, so
// `go test -bench=. -benchmem` reproduces the whole evaluation and prints
// the numbers EXPERIMENTS.md records against the paper.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"cdcs/internal/exp"
	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/workload"
)

// runExp executes an experiment once per benchmark iteration and reports
// the selected scalars.
func runExp(b *testing.B, id string, metrics ...string) {
	b.Helper()
	opts := exp.QuickOptions()
	var rep *exp.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = exp.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := rep.Scalars[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkTable1CaseStudy(b *testing.B) {
	runExp(b, "table1", "ws:CDCS", "ws:Jigsaw+R", "omnet:CDCS")
}

func BenchmarkFig1PlacementMaps(b *testing.B) {
	runExp(b, "fig1", "omnetHops:Jigsaw+C", "omnetHops:CDCS")
}

func BenchmarkFig2MissCurves(b *testing.B) {
	runExp(b, "fig2", "omnet@1MB", "omnet@3MB")
}

func BenchmarkFig5LatencyCurve(b *testing.B) {
	runExp(b, "fig5", "sweetSpotMB")
}

func BenchmarkFig11WeightedSpeedup(b *testing.B) {
	runExp(b, "fig11", "gmean:CDCS", "gmean:Jigsaw+R", "gmean:R-NUCA", "energy:CDCS")
}

func BenchmarkFig12FactorAnalysis(b *testing.B) {
	runExp(b, "fig12", "gmean:+LTD:64", "gmean:+L:4")
}

func BenchmarkFig13Undercommitted(b *testing.B) {
	runExp(b, "fig13", "gmean:CDCS:4", "gmean:Jigsaw+C:4")
}

func BenchmarkFig14FourApps(b *testing.B) {
	runExp(b, "fig14", "gmean:CDCS", "gmean:Jigsaw+C")
}

func BenchmarkFig15Multithreaded(b *testing.B) {
	runExp(b, "fig15", "gmean:CDCS", "gmean:Jigsaw+C", "gmean:Jigsaw+R")
}

func BenchmarkFig16UndercommittedMT(b *testing.B) {
	runExp(b, "fig16", "gmean:CDCS", "spread:mgrid", "spread:ilbdc")
}

func BenchmarkFig17ReconfigTrace(b *testing.B) {
	runExp(b, "fig17", "penalty:background-invs", "penalty:bulk-invs")
}

func BenchmarkFig18ReconfigPeriod(b *testing.B) {
	runExp(b, "fig18", "steadyWS")
}

func BenchmarkTable3RuntimeOverheads(b *testing.B) {
	runExp(b, "table3", "totalMcyc:64/64", "overheadPct:64/64")
}

func BenchmarkSec6COptimalPlacement(b *testing.B) {
	runExp(b, "sec6c-ilp", "cdcsOverOptimal")
}

func BenchmarkSec6CAnnealing(b *testing.B) {
	runExp(b, "sec6c-anneal", "cdcsOverAnneal")
}

func BenchmarkSec6CGraphPartition(b *testing.B) {
	runExp(b, "sec6c-graph", "graphOverCDCS")
}

func BenchmarkSec6CMonitors(b *testing.B) {
	runExp(b, "sec6c-gmon", "rms:GMON-64w", "rms:UMON-64w", "rms:UMON-512w")
}

func BenchmarkSec6CBankPartitioned(b *testing.B) {
	runExp(b, "sec6c-bank", "gmean:CDCS-bank", "gmean:CDCS")
}

// Ablations and extensions beyond the paper's figures.

func BenchmarkAblationTradeRounds(b *testing.B) {
	runExp(b, "ablation-trades", "gainFrac:1")
}

func BenchmarkAblationGMONWays(b *testing.B) {
	runExp(b, "ablation-gmon-ways", "rms:64", "rms:16")
}

func BenchmarkAblationChunkGranularity(b *testing.B) {
	runExp(b, "ablation-chunk", "gmean:div64", "gmean:div1")
}

func BenchmarkExtNUMAAwareLatency(b *testing.B) {
	runExp(b, "ext-numa", "gmean:CDCS")
}

func BenchmarkExtMonitorClosedLoop(b *testing.B) {
	runExp(b, "ext-monitor", "curveMAE", "measuredOverTrue")
}

func BenchmarkExtNoCValidation(b *testing.B) {
	runExp(b, "ext-noc", "queueing:CDCS", "queueing:S-NUCA")
}

func BenchmarkExtPhasedWorkloads(b *testing.B) {
	runExp(b, "ext-phases", "adaptGain")
}

func BenchmarkExtHWSimValidation(b *testing.B) {
	runExp(b, "ext-hwsim", "meanErr", "maxErr")
}

func BenchmarkExtScaling(b *testing.B) {
	runExp(b, "ext-scaling", "cdcs:16", "cdcs:144")
}

// BenchmarkCampaignParallel sweeps the engine's worker count on a fixed
// Fig. 11-style campaign so the parallel speedup is tracked in the perf
// trajectory. Results are bit-identical across the sub-benchmarks; only the
// wall clock should change.
func BenchmarkCampaignParallel(b *testing.B) {
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	schemes := []policy.Scheme{
		policy.SchemeSNUCA, policy.SchemeJigsawR, policy.SchemeCDCS,
	}
	workers := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("j=%d", w), func(b *testing.B) {
			eng := sim.Engine{Parallelism: w}
			var gmean float64
			for i := 0; i < b.N; i++ {
				res, err := eng.RunCampaign(env, schemes, 8, 1, func(rng *rand.Rand) *workload.Mix {
					return workload.RandomST(rng, cpu, 64)
				})
				if err != nil {
					b.Fatal(err)
				}
				gmean = res[len(res)-1].Gmean
			}
			b.ReportMetric(gmean, "gmeanWS:CDCS")
		})
	}
}

// Microbenchmarks of the hot reconfiguration path (Table 3's components).

func BenchmarkReconfigure64Apps(b *testing.B) {
	sys := DefaultSystem()
	mix, err := RandomMix(1, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(CDCS, mix, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineSNUCA64Apps(b *testing.B) {
	sys := DefaultSystem()
	mix, err := RandomMix(1, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(SNUCA, mix, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
