package cdcs_test

// External test package: it wires the public SweepDistributed API to real
// cdcs-serve handlers (internal/server), which the in-package tests cannot
// import without a cycle.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"cdcs"
	"cdcs/internal/server"
)

// distReplica starts one in-process cdcs-serve replica.
func distReplica(t *testing.T, opts server.Options) *httptest.Server {
	t.Helper()
	s, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// distGrid expands to 16 fast cells (4x4 chip, 2 bank sizes x 4 hop
// latencies x 2 mixes), enough for rendezvous hashing to involve both
// replicas with overwhelming probability.
func distGrid() cdcs.SweepRequest {
	return cdcs.SweepRequest{
		Mesh:       []cdcs.MeshSize{{Width: 4, Height: 4}},
		BankKB:     []int{128, 256},
		HopLatency: []float64{1, 2, 3, 4},
		Mixes:      []cdcs.MixSpec{{Kind: cdcs.MixRandom, Seed: 5, N: 4}, {Kind: cdcs.MixRandom, Seed: 6, N: 4}},
		Schemes:    []string{"S-NUCA", "CDCS"},
		Seed:       1,
	}
}

// TestSweepDistributedMergesByteIdentical is the tentpole acceptance test:
// a sweep fanned over 2 replicas merges to the exact bytes of a
// single-replica run and of an in-process Sweep. CI runs it under -race.
func TestSweepDistributedMergesByteIdentical(t *testing.T) {
	req := distGrid()
	local, err := cdcs.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}

	a := distReplica(t, server.Options{})
	b := distReplica(t, server.Options{})

	two, stats2, err := cdcs.SweepDistributed(req, []string{a.URL, b.URL}, cdcs.DistributedSweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	twoJSON, err := json.Marshal(two)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(twoJSON, localJSON) {
		t.Error("2-replica sweep is not byte-identical to the in-process Sweep")
	}
	total := 0
	for _, n := range stats2.Cells {
		total += n
	}
	if total != 16 {
		t.Fatalf("replicas served %d cells, want 16 (%+v)", total, stats2.Cells)
	}
	if stats2.Cells[strings.TrimRight(a.URL, "/")] == 0 || stats2.Cells[strings.TrimRight(b.URL, "/")] == 0 {
		t.Errorf("sweep did not spread across both replicas: %+v", stats2.Cells)
	}

	// Single replica (fresh, cold) merges to the same bytes.
	c := distReplica(t, server.Options{})
	one, _, err := cdcs.SweepDistributed(req, []string{c.URL}, cdcs.DistributedSweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oneJSON, err := json.Marshal(one)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oneJSON, twoJSON) {
		t.Error("1-replica and 2-replica sweeps merged to different bytes")
	}

	// Replaying against the now-warm replicas changes nothing.
	again, _, err := cdcs.SweepDistributed(req, []string{a.URL, b.URL}, cdcs.DistributedSweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	againJSON, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(againJSON, twoJSON) {
		t.Error("warm distributed replay differs from the cold run")
	}
}

// TestSweepDistributedSurvivesReplicaDown is the satellite coverage: with
// one of two replicas down the sweep still completes, entirely on the
// survivor, and still merges to the same bytes.
func TestSweepDistributedSurvivesReplicaDown(t *testing.T) {
	req := distGrid()
	a := distReplica(t, server.Options{})
	b := distReplica(t, server.Options{})
	deadURL := b.URL
	b.Close()

	res, stats, err := cdcs.SweepDistributed(req, []string{a.URL, deadURL}, cdcs.DistributedSweepOptions{})
	if err != nil {
		t.Fatalf("sweep with one replica down failed: %v", err)
	}
	if got := stats.Cells[strings.TrimRight(a.URL, "/")]; got != 16 {
		t.Errorf("survivor served %d cells, want 16", got)
	}
	if stats.Failures[strings.TrimRight(deadURL, "/")] == 0 {
		t.Error("dead replica's failures not reported")
	}

	local, err := cdcs.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	resJSON, _ := json.Marshal(res)
	localJSON, _ := json.Marshal(local)
	if !bytes.Equal(resJSON, localJSON) {
		t.Error("degraded sweep is not byte-identical to the in-process Sweep")
	}
}

// TestSweepDistributedValidation: request errors surface without any HTTP
// traffic, and an empty replica list is rejected.
func TestSweepDistributedValidation(t *testing.T) {
	if _, _, err := cdcs.SweepDistributed(cdcs.SweepRequest{}, []string{"http://x"}, cdcs.DistributedSweepOptions{}); err == nil {
		t.Error("sweep with no mixes accepted")
	}
	if _, _, err := cdcs.SweepDistributed(distGrid(), nil, cdcs.DistributedSweepOptions{}); err == nil {
		t.Error("empty replica list accepted")
	}
}
