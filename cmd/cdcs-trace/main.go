// Command cdcs-trace exports plot-ready CSV data: the Fig. 17 IPC trace
// around a reconfiguration, the Fig. 2 miss curves, or a Fig. 5 latency
// decomposition.
//
//	cdcs-trace -what reconfig > fig17.csv
//	cdcs-trace -what misscurves > fig2.csv
//	cdcs-trace -what latency -bench omnet > fig5.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"cdcs/internal/alloc"
	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/workload"
)

func main() {
	var (
		what   = flag.String("what", "reconfig", "reconfig | misscurves | latency")
		bench  = flag.String("bench", "omnet", "benchmark for -what latency")
		window = flag.Float64("window", 2e6, "trace window in cycles (reconfig)")
		bucket = flag.Float64("bucket", 1e4, "sample interval in cycles (reconfig)")
	)
	flag.Parse()

	switch *what {
	case "reconfig":
		emitReconfig(*window, *bucket)
	case "misscurves":
		emitMissCurves()
	case "latency":
		emitLatency(*bench)
	default:
		fmt.Fprintf(os.Stderr, "cdcs-trace: unknown -what %q\n", *what)
		os.Exit(2)
	}
}

// emitReconfig writes the Fig. 17 aggregate-IPC traces for all three data
// movement schemes.
func emitReconfig(window, bucket float64) {
	p := sim.DefaultReconfigParams()
	const at = 2e5
	schemes := []sim.MoveScheme{sim.InstantMoves, sim.BackgroundInvs, sim.BulkInvs}
	traces := make([][]sim.IPCPoint, len(schemes))
	for i, s := range schemes {
		traces[i] = sim.SimulateReconfig(p, s, window, at, bucket)
	}
	fmt.Println("cycle,instant_moves,background_invs,bulk_invs")
	for j := range traces[0] {
		fmt.Printf("%.0f,%.3f,%.3f,%.3f\n",
			traces[0][j].Cycle, traces[0][j].AggIPC, traces[1][j].AggIPC, traces[2][j].AggIPC)
	}
}

// emitMissCurves writes every profile's MPKI curve (Fig. 2 and beyond).
func emitMissCurves() {
	profiles := workload.SPECCPU()
	fmt.Print("mb")
	for _, p := range profiles {
		fmt.Printf(",%s", p.Name)
	}
	fmt.Println()
	for mb := 0.125; mb <= 32; mb *= 2 {
		fmt.Printf("%.3f", mb)
		for _, p := range profiles {
			fmt.Printf(",%.2f", p.MPKI(mb*workload.LinesPerMB))
		}
		fmt.Println()
	}
}

// emitLatency writes the Fig. 5 off-chip/on-chip/total decomposition for one
// benchmark on the 64-tile chip.
func emitLatency(bench string) {
	p := workload.ByName(workload.SPECCPU(), bench)
	if p == nil {
		fmt.Fprintf(os.Stderr, "cdcs-trace: unknown benchmark %q\n", bench)
		os.Exit(2)
	}
	env := policy.DefaultEnv()
	dist := alloc.CompactDistance(env.Chip.Topo, env.Chip.BankLines)
	fmt.Println("mb,offchip,onchip,total")
	for mb := 0.25; mb <= 32; mb += 0.25 {
		lines := mb * workload.LinesPerMB
		off := p.APKI * p.MissRatio.Eval(lines) * env.Model.MemLatency
		on := p.APKI * dist.Eval(lines) * env.Model.HopLatency * env.Model.RoundTrip
		fmt.Printf("%.2f,%.2f,%.2f,%.2f\n", mb, off, on, off+on)
	}
}
