// Command cdcs-trace exports plot-ready CSV data: the Fig. 17 IPC trace
// around a reconfiguration, the Fig. 2 miss curves, or a Fig. 5 latency
// decomposition.
//
//	cdcs-trace -what reconfig > fig17.csv
//	cdcs-trace -what misscurves > fig2.csv
//	cdcs-trace -what latency -bench omnet > fig5.csv
//
// Exit status: 0 on success, 1 on failure (including output write errors,
// so a full disk or broken pipe never yields a silently truncated CSV),
// 2 on usage errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"cdcs/internal/alloc"
	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		what   = flag.String("what", "reconfig", "reconfig | misscurves | latency")
		bench  = flag.String("bench", "omnet", "benchmark for -what latency")
		window = flag.Float64("window", 2e6, "trace window in cycles (reconfig)")
		bucket = flag.Float64("bucket", 1e4, "sample interval in cycles (reconfig)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cdcs-trace: unexpected arguments: %v\n", flag.Args())
		flag.PrintDefaults()
		return 2
	}

	out := bufio.NewWriter(os.Stdout)
	var err error
	switch *what {
	case "reconfig":
		err = emitReconfig(out, *window, *bucket)
	case "misscurves":
		err = emitMissCurves(out)
	case "latency":
		err = emitLatency(out, *bench)
	default:
		fmt.Fprintf(os.Stderr, "cdcs-trace: unknown -what %q\n", *what)
		return 2
	}
	if err == nil {
		err = out.Flush()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcs-trace: %v\n", err)
		return 1
	}
	return 0
}

// emitReconfig writes the Fig. 17 aggregate-IPC traces for all three data
// movement schemes.
func emitReconfig(w io.Writer, window, bucket float64) error {
	p := sim.DefaultReconfigParams()
	const at = 2e5
	schemes := []sim.MoveScheme{sim.InstantMoves, sim.BackgroundInvs, sim.BulkInvs}
	traces := make([][]sim.IPCPoint, len(schemes))
	for i, s := range schemes {
		traces[i] = sim.SimulateReconfig(p, s, window, at, bucket)
	}
	fmt.Fprintln(w, "cycle,instant_moves,background_invs,bulk_invs")
	for j := range traces[0] {
		if _, err := fmt.Fprintf(w, "%.0f,%.3f,%.3f,%.3f\n",
			traces[0][j].Cycle, traces[0][j].AggIPC, traces[1][j].AggIPC, traces[2][j].AggIPC); err != nil {
			return err
		}
	}
	return nil
}

// emitMissCurves writes every profile's MPKI curve (Fig. 2 and beyond).
func emitMissCurves(w io.Writer) error {
	profiles := workload.SPECCPU()
	fmt.Fprint(w, "mb")
	for _, p := range profiles {
		fmt.Fprintf(w, ",%s", p.Name)
	}
	fmt.Fprintln(w)
	for mb := 0.125; mb <= 32; mb *= 2 {
		fmt.Fprintf(w, "%.3f", mb)
		for _, p := range profiles {
			fmt.Fprintf(w, ",%.2f", p.MPKI(mb*workload.LinesPerMB))
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// emitLatency writes the Fig. 5 off-chip/on-chip/total decomposition for one
// benchmark on the 64-tile chip.
func emitLatency(w io.Writer, bench string) error {
	p := workload.ByName(workload.SPECCPU(), bench)
	if p == nil {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	env := policy.DefaultEnv()
	dist := alloc.CompactDistance(env.Chip.Topo, env.Chip.BankLines)
	fmt.Fprintln(w, "mb,offchip,onchip,total")
	for mb := 0.25; mb <= 32; mb += 0.25 {
		lines := mb * workload.LinesPerMB
		off := p.APKI * p.MissRatio.Eval(lines) * env.Model.MemLatency
		on := p.APKI * dist.Eval(lines) * env.Model.HopLatency * env.Model.RoundTrip
		if _, err := fmt.Fprintf(w, "%.2f,%.2f,%.2f,%.2f\n", mb, off, on, off+on); err != nil {
			return err
		}
	}
	return nil
}
