// Command cdcs-serve exposes the simulator as an HTTP JSON service with a
// content-addressed result cache in front of a bounded job queue:
//
//	cdcs-serve                       # serve on :8080, memory-only cache
//	cdcs-serve -addr 127.0.0.1:0     # ephemeral port (printed on startup)
//	cdcs-serve -cache-dir /var/cache/cdcs -cache-disk-bytes 4294967296
//	                                 # tiered cache: results persist across
//	                                 # restarts (warm replays simulate nothing)
//	cdcs-serve -cache-dir /var/cache/cdcs -cache-compress
//	                                 # disk tier stores content-defined chunks,
//	                                 # deduplicated and DEFLATE-compressed
//	cdcs-serve -peers http://10.0.0.2:8080,http://10.0.0.3:8080
//	                                 # local misses fetch finished entries from
//	                                 # sibling replicas before simulating; peers
//	                                 # are health-probed, breaker-gated, and
//	                                 # exported as cdcs_fleet_* metrics
//	cdcs-serve -peers ... -fleet-probe-interval 500ms -fleet-breaker-threshold 5
//	                                 # tune the probe period and how many
//	                                 # consecutive failures sideline a peer
//	cdcs-serve -peers ... -advertise http://10.0.0.1:8080
//	                                 # dynamic membership: this replica is a
//	                                 # first-class member; replicas join/leave
//	                                 # at runtime via POST /v1/join, /v1/leave,
//	                                 # /v1/drain, converging on one member list
//	cdcs-serve -advertise auto -join http://10.0.0.1:8080
//	                                 # join an existing fleet warm: adopt its
//	                                 # member list, batch-fill the cache from
//	                                 # the seed's corpus manifest, then announce
//	cdcs-serve -pprof                # opt-in net/http/pprof at /debug/pprof/
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/experiments
//	curl -s -X POST localhost:8080/v1/compare \
//	  -d '{"mix":{"kind":"random","seed":1,"n":16},"schemes":["S-NUCA","CDCS"],"seed":1}'
//	curl -s -X POST localhost:8080/v1/sweep \
//	  -d '{"mesh":[{"width":8,"height":8},{"width":16,"height":16}],
//	       "mixes":[{"kind":"random","seed":1,"n":16}],
//	       "schemes":["S-NUCA","CDCS"],"seed":1}'
//	curl -s -X POST localhost:8080/v1/experiment -d '{"id":"fig11","quick":true}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -sN 'localhost:8080/v1/jobs/j1?watch=1'   # SSE progress stream
//
// Identical requests are served from cache (byte-identical to a fresh run —
// simulation is bit-deterministic) and concurrent identical requests
// coalesce onto a single simulation. See /metrics for cache and queue
// counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cdcs/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		cache     = flag.Int("cache", 4096, "memory-tier result cache capacity in entries")
		cacheDir  = flag.String("cache-dir", "", "directory for the persistent disk cache tier (empty = memory only)")
		diskBytes = flag.Int64("cache-disk-bytes", server.DefaultCacheDiskBytes, "disk-tier size cap in bytes, LRU-evicted past it (requires -cache-dir; <0 = uncapped)")
		compress  = flag.Bool("cache-compress", false, "store the disk tier chunked: content-defined chunks, SHA-256 dedup, DEFLATE compression (requires -cache-dir)")
		peers     = flag.String("peers", "", "comma-separated sibling replica base URLs; local misses fetch entries from the fleet before simulating")
		advertise = flag.String("advertise", "", "this replica's own base URL as peers reach it (\"auto\" = derive from the bound listen address); makes fleet membership dynamic: join/leave/drain endpoints active")
		join      = flag.String("join", "", "seed peer base URL to join the fleet through at startup: adopt its member list, warm-fill the cache from its corpus manifest, then announce -advertise (requires -advertise)")

		probeInterval    = flag.Duration("fleet-probe-interval", 0, "health-probe period over the peer members (0 = default 2s, negative disables probing; requires -peers or -advertise)")
		breakerThreshold = flag.Int("fleet-breaker-threshold", 0, "consecutive failures that open a peer's circuit breaker (0 = default 3; requires -peers or -advertise)")

		queue   = flag.Int("queue", 256, "job queue depth (submissions beyond it get 503)")
		workers = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS/2)")
		jobs    = flag.Int("j", 0, "max parallel simulation jobs per request (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 15*time.Minute, "per-job timeout (0 = none)")
		pprof   = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ (off by default; enable only on trusted networks)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cdcs-serve: unexpected arguments: %v\n", flag.Args())
		flag.PrintDefaults()
		return 2
	}
	if *cacheDir == "" {
		if *compress {
			fmt.Fprintln(os.Stderr, "cdcs-serve: -cache-compress requires -cache-dir")
			return 2
		}
		set := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "cache-disk-bytes" {
				set = true
			}
		})
		if set {
			fmt.Fprintln(os.Stderr, "cdcs-serve: -cache-disk-bytes requires -cache-dir")
			return 2
		}
		// The flag default only applies to a disk tier; without one there
		// is no cap to pass.
		*diskBytes = 0
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if len(peerList) == 0 {
			fmt.Fprintln(os.Stderr, "cdcs-serve: -peers lists no usable URLs")
			return 2
		}
	}
	if len(peerList) == 0 && *advertise == "" {
		var fleetFlags []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "fleet-probe-interval", "fleet-breaker-threshold":
				fleetFlags = append(fleetFlags, "-"+f.Name)
			}
		})
		if len(fleetFlags) > 0 {
			verb := "requires"
			if len(fleetFlags) > 1 {
				verb = "require"
			}
			fmt.Fprintf(os.Stderr, "cdcs-serve: %s %s -peers or -advertise\n", strings.Join(fleetFlags, ", "), verb)
			return 2
		}
	}
	if *join != "" && *advertise == "" {
		fmt.Fprintln(os.Stderr, "cdcs-serve: -join requires -advertise")
		return 2
	}

	// Listen before building the server: with -advertise auto the advertised
	// URL is derived from the bound address (so ephemeral ports work), and a
	// -join replica must be reachable the moment it announces itself.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcs-serve: listen: %v\n", err)
		return 1
	}
	if *advertise == "auto" {
		*advertise = "http://" + ln.Addr().String()
	}

	jobTimeout := *timeout
	if jobTimeout == 0 {
		jobTimeout = -1 // flag 0 = no timeout; Options treats 0 as "default"
	}
	srv, err := server.New(server.Options{
		CacheEntries:          *cache,
		CacheDir:              *cacheDir,
		CacheDiskBytes:        *diskBytes,
		CacheCompress:         *compress,
		Peers:                 peerList,
		Advertise:             *advertise,
		Join:                  *join,
		FleetProbeInterval:    *probeInterval,
		FleetBreakerThreshold: *breakerThreshold,
		QueueDepth:            *queue,
		Workers:               *workers,
		JobTimeout:            jobTimeout,
		SimParallelism:        *jobs,
		Pprof:                 *pprof,
	})
	if err != nil {
		_ = ln.Close()
		fmt.Fprintf(os.Stderr, "cdcs-serve: %v\n", err)
		return 1
	}
	defer srv.Close()
	if *cacheDir != "" {
		mode := "persistent"
		if *compress {
			mode = "chunked persistent"
		}
		fmt.Fprintf(os.Stderr, "cdcs-serve: %s result cache at %s\n", mode, *cacheDir)
	}
	if len(peerList) > 0 {
		fmt.Fprintf(os.Stderr, "cdcs-serve: peer tier over %s (health-checked; see cdcs_fleet_* in /metrics)\n",
			strings.Join(peerList, ", "))
	}
	if *advertise != "" {
		fmt.Fprintf(os.Stderr, "cdcs-serve: dynamic membership as %s (POST /v1/join, /v1/leave, /v1/drain)\n", *advertise)
	}
	// The resolved address goes to stdout so scripts (e.g. the CI smoke job)
	// can scrape the ephemeral port.
	fmt.Printf("cdcs-serve: listening on %s\n", ln.Addr())

	if *pprof {
		fmt.Fprintln(os.Stderr, "cdcs-serve: pprof handlers mounted at /debug/pprof/")
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	// Warm join, now that the listener is accepting: adopt the seed's member
	// list, batch-fill the cache from its corpus manifest, announce
	// -advertise. A failed join exits — a replica that cannot complete the
	// handshake must not linger half-joined.
	if *join != "" {
		jctx, jcancel := context.WithTimeout(ctx, 2*time.Minute)
		st, jerr := srv.JoinFleet(jctx)
		jcancel()
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "cdcs-serve: %v\n", jerr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "cdcs-serve: joined %d-member fleet via %s: warmed %d/%d manifest entries (%d already present, %d failed) in %s\n",
			st.Members, st.Seed, st.Filled, st.Keys, st.Present, st.Failed, st.Elapsed.Round(time.Millisecond))
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "cdcs-serve: %v\n", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	// Graceful drain. Cancel jobs first: handlers blocked on a job (a
	// synchronous compare, an SSE watcher) only return once their job
	// reaches a terminal state, and http.Server.Shutdown waits for exactly
	// those handlers — in the other order a long simulation would pin
	// Shutdown until its timeout and turn every drain into a failure.
	fmt.Fprintln(os.Stderr, "cdcs-serve: shutting down")
	srv.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "cdcs-serve: shutdown: %v\n", err)
		return 1
	}
	return 0
}
