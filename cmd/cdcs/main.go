// Command cdcs regenerates the paper's tables and figures from the command
// line:
//
//	cdcs -list                 # list experiment ids
//	cdcs -exp fig11            # run one experiment at paper scale (50 mixes)
//	cdcs -exp fig11 -quick     # scaled-down smoke run
//	cdcs -all -quick           # run everything
package main

import (
	"flag"
	"fmt"
	"os"

	"cdcs/internal/exp"
)

func main() {
	var (
		id    = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		quick = flag.Bool("quick", false, "reduced mix counts for fast runs")
		mixes = flag.Int("mixes", 0, "override the number of mixes per point")
		seed  = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.IDs() {
			fmt.Println(e)
		}
		return
	}

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	if *mixes > 0 {
		opts.Mixes = *mixes
	}
	opts.Seed = *seed

	run := func(e string) error {
		rep, err := exp.Run(e, opts)
		if err != nil {
			return err
		}
		fmt.Print(rep.String())
		fmt.Println()
		return nil
	}

	switch {
	case *all:
		for _, e := range exp.IDs() {
			if err := run(e); err != nil {
				fmt.Fprintf(os.Stderr, "cdcs: %s: %v\n", e, err)
				os.Exit(1)
			}
		}
	case *id != "":
		if err := run(*id); err != nil {
			fmt.Fprintf(os.Stderr, "cdcs: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "cdcs: use -exp <id>, -all or -list")
		flag.PrintDefaults()
		os.Exit(2)
	}
}
