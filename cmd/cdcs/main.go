// Command cdcs regenerates the paper's tables and figures from the command
// line:
//
//	cdcs -list                 # list experiment ids
//	cdcs -exp fig11            # run one experiment at paper scale (50 mixes)
//	cdcs -exp fig11 -quick     # scaled-down smoke run
//	cdcs -all -quick           # run everything, with a progress line
//	cdcs -all -quick -j 8      # bound the worker pool to 8 jobs
//
// Simulation jobs fan out over a worker pool (-j, default all cores);
// results are bit-identical for any worker count. Ctrl-C cancels the run.
//
// Exit status: 0 on success, 1 on any failure (unknown experiment, canceled
// run, output write error), 2 on usage errors.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"cdcs/internal/exp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id    = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment (alphabetical id order, as in -list)")
		list  = flag.Bool("list", false, "list experiment ids (alphabetical)")
		quick = flag.Bool("quick", false, "reduced mix counts for fast runs")
		mixes = flag.Int("mixes", 0, "override the number of mixes per point")
		seed  = flag.Int64("seed", 1, "base random seed")
		jobs  = flag.Int("j", runtime.GOMAXPROCS(0), "max parallel simulation jobs (results are identical for any value)")
	)
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cdcs: unexpected arguments: %v\n", flag.Args())
		flag.PrintDefaults()
		return 2
	}
	if *all && *id != "" {
		fmt.Fprintln(os.Stderr, "cdcs: -exp and -all are mutually exclusive")
		return 2
	}

	// Reports stream through one checked writer: a failed write (closed
	// pipe, full disk) must fail the run, not silently truncate output.
	out := bufio.NewWriter(os.Stdout)
	flush := func() error {
		if err := out.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "cdcs: writing output: %v\n", err)
			return err
		}
		return nil
	}

	if *list {
		for _, e := range exp.IDs() {
			fmt.Fprintln(out, e)
		}
		if flush() != nil {
			return 1
		}
		return 0
	}

	// Ctrl-C cancels in-flight simulation jobs instead of killing the
	// process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	if *mixes > 0 {
		opts.Mixes = *mixes
	}
	opts.Seed = *seed
	opts.Parallelism = *jobs
	opts.Context = ctx

	runOne := func(e string, progress bool) error {
		o := opts
		if progress {
			o.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%-20s %d/%d jobs", e, done, total)
			}
		}
		start := time.Now()
		rep, err := exp.Run(e, o)
		if progress {
			fmt.Fprintf(os.Stderr, "\r%-40s\r", "") // clear the progress line
		}
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.String())
		fmt.Fprintln(out)
		if err := out.Flush(); err != nil {
			return fmt.Errorf("writing output: %w", err)
		}
		if progress {
			fmt.Fprintf(os.Stderr, "%-20s done in %.1fs\n", e, time.Since(start).Seconds())
		}
		return nil
	}

	switch {
	case *all:
		ids := exp.IDs()
		start := time.Now()
		for k, e := range ids {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", k+1, len(ids), e)
			if err := runOne(e, true); err != nil {
				fmt.Fprintf(os.Stderr, "cdcs: %s: %v\n", e, err)
				return 1
			}
		}
		fmt.Fprintf(os.Stderr, "all %d experiments in %.1fs (-j %d)\n",
			len(ids), time.Since(start).Seconds(), *jobs)
		return 0
	case *id != "":
		if err := runOne(*id, false); err != nil {
			fmt.Fprintf(os.Stderr, "cdcs: %v\n", err)
			return 1
		}
		return 0
	default:
		fmt.Fprintln(os.Stderr, "cdcs: use -exp <id>, -all or -list")
		flag.PrintDefaults()
		return 2
	}
}
