// Command cdcs regenerates the paper's tables and figures from the command
// line, and runs config-grid sweeps over the machine model:
//
//	cdcs -list                 # list experiment ids
//	cdcs -exp fig11            # run one experiment at paper scale (50 mixes)
//	cdcs -exp fig11 -quick     # scaled-down smoke run
//	cdcs -all -quick           # run everything, with a progress line
//	cdcs -all -quick -j 8      # bound the worker pool to 8 jobs
//	cdcs -sweep grid.json      # evaluate a config grid (see SweepRequest)
//	cdcs -sweep - -sweep-json  # grid from stdin, full results as JSON
//
// A sweep file is a cdcs.SweepRequest: axes over the machine config (mesh
// sizes up to 32x32, bank KB, latencies, channels) crossed with a list of
// mixes, e.g.
//
//	{"mesh": [{"width": 8, "height": 8}, {"width": 16, "height": 16}],
//	 "hop_latency": [2, 4],
//	 "mixes": [{"kind": "random", "seed": 1, "n": 16}],
//	 "schemes": ["S-NUCA", "CDCS"], "seed": 1}
//
// Simulation jobs fan out over a worker pool (-j, default all cores);
// results are bit-identical for any worker count. Ctrl-C cancels the run.
//
// Exit status: 0 on success, 1 on any failure (unknown experiment, canceled
// run, bad sweep file, output write error), 2 on usage errors.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"cdcs"
	"cdcs/internal/exp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id        = flag.String("exp", "", "experiment id to run (see -list)")
		all       = flag.Bool("all", false, "run every experiment (alphabetical id order, as in -list)")
		list      = flag.Bool("list", false, "list experiment ids (alphabetical)")
		quick     = flag.Bool("quick", false, "reduced mix counts for fast runs")
		mixes     = flag.Int("mixes", 0, "override the number of mixes per point")
		seed      = flag.Int64("seed", 1, "base random seed")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "max parallel simulation jobs (results are identical for any value)")
		sweep     = flag.String("sweep", "", "run a config-grid sweep from a JSON file (a cdcs.SweepRequest; \"-\" reads stdin)")
		sweepJSON = flag.Bool("sweep-json", false, "with -sweep, emit the full SweepResult as JSON instead of a table")
	)
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cdcs: unexpected arguments: %v\n", flag.Args())
		flag.PrintDefaults()
		return 2
	}
	if *all && *id != "" {
		fmt.Fprintln(os.Stderr, "cdcs: -exp and -all are mutually exclusive")
		return 2
	}
	if *sweep != "" && (*all || *id != "" || *list) {
		fmt.Fprintln(os.Stderr, "cdcs: -sweep is mutually exclusive with -exp, -all and -list")
		return 2
	}
	if *sweep != "" {
		// The grid file is the single source of truth for a sweep: reject
		// experiment-only flags rather than silently ignoring them.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed", "mixes", "quick":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fmt.Fprintf(os.Stderr, "cdcs: %s do not apply to -sweep (the grid file carries seed and mixes)\n",
				strings.Join(conflicting, ", "))
			return 2
		}
	}
	if *sweepJSON && *sweep == "" {
		fmt.Fprintln(os.Stderr, "cdcs: -sweep-json requires -sweep")
		return 2
	}

	// Reports stream through one checked writer: a failed write (closed
	// pipe, full disk) must fail the run, not silently truncate output.
	out := bufio.NewWriter(os.Stdout)
	flush := func() error {
		if err := out.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "cdcs: writing output: %v\n", err)
			return err
		}
		return nil
	}

	if *list {
		for _, e := range exp.IDs() {
			fmt.Fprintln(out, e)
		}
		if flush() != nil {
			return 1
		}
		return 0
	}

	// Ctrl-C cancels in-flight simulation jobs instead of killing the
	// process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	if *mixes > 0 {
		opts.Mixes = *mixes
	}
	opts.Seed = *seed
	opts.Parallelism = *jobs
	opts.Context = ctx

	runOne := func(e string, progress bool) error {
		o := opts
		if progress {
			o.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%-20s %d/%d jobs", e, done, total)
			}
		}
		start := time.Now()
		rep, err := exp.Run(e, o)
		if progress {
			fmt.Fprintf(os.Stderr, "\r%-40s\r", "") // clear the progress line
		}
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.String())
		fmt.Fprintln(out)
		if err := out.Flush(); err != nil {
			return fmt.Errorf("writing output: %w", err)
		}
		if progress {
			fmt.Fprintf(os.Stderr, "%-20s done in %.1fs\n", e, time.Since(start).Seconds())
		}
		return nil
	}

	switch {
	case *sweep != "":
		if err := runSweep(out, *sweep, *sweepJSON, cdcs.RunOptions{
			Parallelism: *jobs,
			Context:     ctx,
			Progress: func(done, total int) {
				fmt.Fprintf(os.Stderr, "\rsweep %d/%d cells", done, total)
			},
		}); err != nil {
			fmt.Fprintf(os.Stderr, "\rcdcs: sweep: %v\n", err)
			return 1
		}
		if flush() != nil {
			return 1
		}
		return 0
	case *all:
		ids := exp.IDs()
		start := time.Now()
		for k, e := range ids {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", k+1, len(ids), e)
			if err := runOne(e, true); err != nil {
				fmt.Fprintf(os.Stderr, "cdcs: %s: %v\n", e, err)
				return 1
			}
		}
		fmt.Fprintf(os.Stderr, "all %d experiments in %.1fs (-j %d)\n",
			len(ids), time.Since(start).Seconds(), *jobs)
		return 0
	case *id != "":
		if err := runOne(*id, false); err != nil {
			fmt.Fprintf(os.Stderr, "cdcs: %v\n", err)
			return 1
		}
		return 0
	default:
		fmt.Fprintln(os.Stderr, "cdcs: use -exp <id>, -all, -list or -sweep <grid.json>")
		flag.PrintDefaults()
		return 2
	}
}

// readSweepRequest loads a sweep grid from a file (or stdin for "-"),
// rejecting unknown fields so a typoed axis name fails loudly instead of
// silently sweeping the default.
func readSweepRequest(path string) (cdcs.SweepRequest, error) {
	var req cdcs.SweepRequest
	var src io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return req, err
		}
		defer f.Close()
		src = f
	}
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("%s: %w", path, err)
	}
	return req, nil
}

// runSweep evaluates the grid and writes a per-cell table (or, with
// jsonOut, the full SweepResult document) to w. Progress goes to stderr via
// the options' callback; the line is cleared before the table prints.
func runSweep(w io.Writer, path string, jsonOut bool, opts cdcs.RunOptions) error {
	req, err := readSweepRequest(path)
	if err != nil {
		return err
	}
	canon, err := req.Canonical()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells over %d schemes (-j %d)\n",
		canon.NumCells(), len(canon.Schemes), opts.Parallelism)
	start := time.Now()
	res, err := cdcs.SweepWithOptions(canon, opts)
	fmt.Fprintf(os.Stderr, "\r%-40s\r", "") // clear the progress line
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fmt.Errorf("writing output: %w", err)
		}
	} else {
		writeSweepTable(w, res)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells in %.1fs\n", len(res.Cells), time.Since(start).Seconds())
	return nil
}

// writeSweepTable renders one row per cell: the config axes, the mix, and
// each scheme's weighted speedup over the cell's baseline.
func writeSweepTable(w io.Writer, res *cdcs.SweepResult) {
	schemes := res.Request.Schemes
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %7s %7s %6s %5s %5s %3s  %-28s", "cell", "mesh", "bankKB", "bankL", "hopL", "memL", "ch", "mix")
	for _, s := range schemes {
		fmt.Fprintf(&b, " %9s", s)
	}
	fmt.Fprintln(w, b.String())
	for _, cell := range res.Cells {
		cfg := cell.Request.Config
		b.Reset()
		fmt.Fprintf(&b, "%5d %7s %7d %6g %5g %5g %3d  %-28s",
			cell.Index, fmt.Sprintf("%dx%d", cfg.MeshWidth, cfg.MeshHeight),
			cfg.BankKB, cfg.BankLatency, cfg.HopLatency, cfg.MemLatency, cfg.MemChannels,
			cell.Request.Mix.Label())
		for _, s := range schemes {
			fmt.Fprintf(&b, " %9.3f", cell.Comparison.WeightedSpeedup[s])
		}
		fmt.Fprintln(w, b.String())
	}
}
