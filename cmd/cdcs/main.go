// Command cdcs regenerates the paper's tables and figures from the command
// line, and runs config-grid sweeps over the machine model:
//
//	cdcs -list                 # list experiment ids
//	cdcs -exp fig11            # run one experiment at paper scale (50 mixes)
//	cdcs -exp fig11 -quick     # scaled-down smoke run
//	cdcs -all -quick           # run everything, with a progress line
//	cdcs -all -quick -j 8      # bound the worker pool to 8 jobs
//	cdcs -sweep grid.json      # evaluate a config grid (see SweepRequest)
//	cdcs -sweep - -sweep-json  # grid from stdin, full results as JSON
//
//	cdcs -sweep grid.json -replicas http://a:8080,http://b:8080
//	                           # shard cells across cdcs-serve replicas
//	cdcs -sweep grid.json -replicas ... -fleet-probe-interval 500ms \
//	     -fleet-breaker-threshold 5 -hot-cell-latency 2s
//	                           # tune the fleet view: probe period, breaker
//	                           # sensitivity, hot-cell replication threshold
//	cdcs -sweep-diff a.json b.json
//	                           # align two saved SweepResults by cell hash
//	cdcs -drain http://a:8080  # gracefully drain a replica: it finishes
//	                           # in-flight work, leaves the fleet, and this
//	                           # command waits until it reports drained
//
// A sweep file is a cdcs.SweepRequest: axes over the machine config (mesh
// sizes up to 32x32, bank KB, latencies, channels) crossed with a list of
// mixes, e.g.
//
//	{"mesh": [{"width": 8, "height": 8}, {"width": 16, "height": 16}],
//	 "hop_latency": [2, 4],
//	 "mixes": [{"kind": "random", "seed": 1, "n": 16}],
//	 "schemes": ["S-NUCA", "CDCS"], "seed": 1}
//
// With -replicas, each cell is routed to the replica its content address
// rendezvous-hashes to, steered among the top rendezvous holders by a live
// fleet view (health probes, per-replica circuit breakers, load-aware
// ordering — a slow or dead replica sheds its cells to survivors without
// operator action) and the merged result is byte-identical to a local run —
// the replicas' result caches, persistent with -cache-dir, absorb repeated
// and overlapping sweeps. -sweep-diff reads two -sweep-json files, aligns
// cells by content hash and reports per-cell and aggregate weighted-speedup
// deltas plus cells present in only one file.
//
// Simulation jobs fan out over a worker pool (-j, default all cores);
// results are bit-identical for any worker count. Ctrl-C cancels the run.
//
// Exit status: 0 on success, 1 on any failure (unknown experiment, canceled
// run, bad sweep file, unreachable replicas, output write error), 2 on
// usage errors.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"maps"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"slices"
	"strings"
	"time"

	"cdcs"
	"cdcs/internal/exp"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id        = flag.String("exp", "", "experiment id to run (see -list)")
		all       = flag.Bool("all", false, "run every experiment (alphabetical id order, as in -list)")
		list      = flag.Bool("list", false, "list experiment ids (alphabetical)")
		quick     = flag.Bool("quick", false, "reduced mix counts for fast runs")
		mixes     = flag.Int("mixes", 0, "override the number of mixes per point")
		seed      = flag.Int64("seed", 1, "base random seed")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "max parallel simulation jobs (results are identical for any value)")
		sweep     = flag.String("sweep", "", "run a config-grid sweep from a JSON file (a cdcs.SweepRequest; \"-\" reads stdin)")
		sweepJSON = flag.Bool("sweep-json", false, "with -sweep or -sweep-diff, emit the full result as JSON instead of a table")
		replicas  = flag.String("replicas", "", "with -sweep, comma-separated cdcs-serve base URLs to shard cells across")
		sweepDiff = flag.Bool("sweep-diff", false, "diff two saved SweepResult files (two positional args), aligned by cell content hash")
		drain     = flag.String("drain", "", "gracefully drain a cdcs-serve replica at this base URL: it finishes in-flight work, leaves the fleet, then this command returns")
		drainWait = flag.Duration("drain-timeout", 2*time.Minute, "with -drain, how long to wait for the replica to report drained")

		probeInterval    = flag.Duration("fleet-probe-interval", 0, "with -replicas, health-probe period over the replicas (0 = default 2s, negative disables probing)")
		breakerThreshold = flag.Int("fleet-breaker-threshold", 0, "with -replicas, consecutive failures that open a replica's circuit breaker (0 = default 3)")
		hotCellLatency   = flag.Duration("hot-cell-latency", 0, "with -replicas, replicate cells slower than this to a second holder (0 disables)")
	)
	flag.Parse()

	if *sweepDiff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "cdcs: -sweep-diff needs exactly two SweepResult files (from -sweep ... -sweep-json)")
			return 2
		}
	} else if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cdcs: unexpected arguments: %v\n", flag.Args())
		flag.PrintDefaults()
		return 2
	}
	if *all && *id != "" {
		fmt.Fprintln(os.Stderr, "cdcs: -exp and -all are mutually exclusive")
		return 2
	}
	if *sweep != "" && (*all || *id != "" || *list || *sweepDiff) {
		fmt.Fprintln(os.Stderr, "cdcs: -sweep is mutually exclusive with -exp, -all, -list and -sweep-diff")
		return 2
	}
	if *sweepDiff && (*all || *id != "" || *list) {
		fmt.Fprintln(os.Stderr, "cdcs: -sweep-diff is mutually exclusive with -exp, -all and -list")
		return 2
	}
	if *drain != "" && (*all || *id != "" || *list || *sweep != "" || *sweepDiff) {
		fmt.Fprintln(os.Stderr, "cdcs: -drain is mutually exclusive with -exp, -all, -list, -sweep and -sweep-diff")
		return 2
	}
	if *drain == "" {
		set := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "drain-timeout" {
				set = true
			}
		})
		if set {
			fmt.Fprintln(os.Stderr, "cdcs: -drain-timeout requires -drain")
			return 2
		}
	}
	if *replicas != "" && *sweep == "" {
		fmt.Fprintln(os.Stderr, "cdcs: -replicas requires -sweep")
		return 2
	}
	if *replicas == "" {
		var fleetFlags []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "fleet-probe-interval", "fleet-breaker-threshold", "hot-cell-latency":
				fleetFlags = append(fleetFlags, "-"+f.Name)
			}
		})
		if len(fleetFlags) > 0 {
			verb := "requires"
			if len(fleetFlags) > 1 {
				verb = "require"
			}
			fmt.Fprintf(os.Stderr, "cdcs: %s %s -replicas\n", strings.Join(fleetFlags, ", "), verb)
			return 2
		}
	}
	if *sweep != "" || *sweepDiff {
		// The grid/result files are the single source of truth: reject
		// experiment-only flags rather than silently ignoring them.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed", "mixes", "quick":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fmt.Fprintf(os.Stderr, "cdcs: %s do not apply to -sweep/-sweep-diff (the files carry seed and mixes)\n",
				strings.Join(conflicting, ", "))
			return 2
		}
	}
	if *sweepJSON && *sweep == "" && !*sweepDiff {
		fmt.Fprintln(os.Stderr, "cdcs: -sweep-json requires -sweep or -sweep-diff")
		return 2
	}

	// Reports stream through one checked writer: a failed write (closed
	// pipe, full disk) must fail the run, not silently truncate output.
	out := bufio.NewWriter(os.Stdout)
	flush := func() error {
		if err := out.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "cdcs: writing output: %v\n", err)
			return err
		}
		return nil
	}

	if *list {
		for _, e := range exp.IDs() {
			fmt.Fprintln(out, e)
		}
		if flush() != nil {
			return 1
		}
		return 0
	}

	// Ctrl-C cancels in-flight simulation jobs instead of killing the
	// process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	if *mixes > 0 {
		opts.Mixes = *mixes
	}
	opts.Seed = *seed
	opts.Parallelism = *jobs
	opts.Context = ctx

	runOne := func(e string, progress bool) error {
		o := opts
		if progress {
			o.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%-20s %d/%d jobs", e, done, total)
			}
		}
		start := time.Now()
		rep, err := exp.Run(e, o)
		if progress {
			fmt.Fprintf(os.Stderr, "\r%-40s\r", "") // clear the progress line
		}
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.String())
		fmt.Fprintln(out)
		if err := out.Flush(); err != nil {
			return fmt.Errorf("writing output: %w", err)
		}
		if progress {
			fmt.Fprintf(os.Stderr, "%-20s done in %.1fs\n", e, time.Since(start).Seconds())
		}
		return nil
	}

	switch {
	case *drain != "":
		if err := runDrain(ctx, *drain, *drainWait); err != nil {
			fmt.Fprintf(os.Stderr, "cdcs: drain: %v\n", err)
			return 1
		}
		return 0
	case *sweepDiff:
		if err := runSweepDiff(out, flag.Arg(0), flag.Arg(1), *sweepJSON); err != nil {
			fmt.Fprintf(os.Stderr, "cdcs: sweep-diff: %v\n", err)
			return 1
		}
		if flush() != nil {
			return 1
		}
		return 0
	case *sweep != "":
		if err := runSweep(out, *sweep, *sweepJSON, *replicas, cdcs.RunOptions{
			Parallelism: *jobs,
			Context:     ctx,
			Progress: func(done, total int) {
				fmt.Fprintf(os.Stderr, "\rsweep %d/%d cells", done, total)
			},
		}, cdcs.DistributedSweepOptions{
			FleetProbeInterval:    *probeInterval,
			FleetBreakerThreshold: *breakerThreshold,
			HotCellLatency:        *hotCellLatency,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "\rcdcs: sweep: %v\n", err)
			return 1
		}
		if flush() != nil {
			return 1
		}
		return 0
	case *all:
		ids := exp.IDs()
		start := time.Now()
		for k, e := range ids {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", k+1, len(ids), e)
			if err := runOne(e, true); err != nil {
				fmt.Fprintf(os.Stderr, "cdcs: %s: %v\n", e, err)
				return 1
			}
		}
		fmt.Fprintf(os.Stderr, "all %d experiments in %.1fs (-j %d)\n",
			len(ids), time.Since(start).Seconds(), *jobs)
		return 0
	case *id != "":
		if err := runOne(*id, false); err != nil {
			fmt.Fprintf(os.Stderr, "cdcs: %v\n", err)
			return 1
		}
		return 0
	default:
		fmt.Fprintln(os.Stderr, "cdcs: use -exp <id>, -all, -list or -sweep <grid.json>")
		flag.PrintDefaults()
		return 2
	}
}

// runDrain asks the replica at base to drain (POST /v1/drain: finish
// in-flight work, refuse new work with a retryable status, leave the fleet
// once idle) and polls its /healthz until it reports status "drained" or the
// timeout expires. Draining is idempotent, so re-running the command against
// an already-draining replica just resumes the wait.
func runDrain(ctx context.Context, base string, timeout time.Duration) error {
	base = strings.TrimRight(strings.TrimSpace(base), "/")
	client := &http.Client{Timeout: 10 * time.Second}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/drain", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/v1/drain: %s: %s", base, resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Fprintf(os.Stderr, "drain: %s draining, waiting for in-flight work\n", base)

	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("%s did not report drained within %s: %w", base, timeout, ctx.Err())
		case <-ticker.C:
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		hresp, err := client.Do(hreq)
		if err != nil {
			// A replica that shut down entirely after draining counts as
			// gone; transient errors retry until the deadline.
			continue
		}
		hbody, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
		hresp.Body.Close()
		var status struct {
			Status string `json:"status"`
		}
		// A draining replica answers 503; the status comes from the body
		// regardless of the code.
		if json.Unmarshal(hbody, &status) == nil && status.Status == "drained" {
			fmt.Fprintf(os.Stderr, "drain: %s drained and left the fleet\n", base)
			return nil
		}
	}
}

// readSweepRequest loads a sweep grid from a file (or stdin for "-"),
// rejecting unknown fields so a typoed axis name fails loudly instead of
// silently sweeping the default.
func readSweepRequest(path string) (cdcs.SweepRequest, error) {
	var req cdcs.SweepRequest
	var src io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return req, err
		}
		defer f.Close()
		src = f
	}
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("%s: %w", path, err)
	}
	return req, nil
}

// runSweep evaluates the grid — locally, or sharded across -replicas — and
// writes a per-cell table (or, with jsonOut, the full SweepResult document)
// to w. Progress goes to stderr via the options' callback; the line is
// cleared before the table prints. dopts carries the fleet knobs for the
// distributed path (parallelism, context and progress come from opts).
func runSweep(w io.Writer, path string, jsonOut bool, replicas string, opts cdcs.RunOptions, dopts cdcs.DistributedSweepOptions) error {
	req, err := readSweepRequest(path)
	if err != nil {
		return err
	}
	canon, err := req.Canonical()
	if err != nil {
		return err
	}
	var res *cdcs.SweepResult
	start := time.Now()
	if replicas != "" {
		urls := strings.Split(replicas, ",")
		fmt.Fprintf(os.Stderr, "sweep: %d cells over %d schemes across %d replicas\n",
			canon.NumCells(), len(canon.Schemes), len(urls))
		dopts.Parallelism = opts.Parallelism
		dopts.Context = opts.Context
		dopts.Progress = opts.Progress
		var stats *cdcs.SweepReplicaStats
		res, stats, err = cdcs.SweepDistributed(canon, urls, dopts)
		fmt.Fprintf(os.Stderr, "\r%-40s\r", "") // clear the progress line
		if stats != nil {
			for _, url := range slices.Sorted(maps.Keys(stats.Cells)) {
				health := ""
				if h, ok := stats.Fleet[url]; ok {
					health = fmt.Sprintf(", %s, ewma %.1fms", h.State, h.EWMALatencyMs)
					if h.BreakerTrips > 0 {
						health += fmt.Sprintf(", %d breaker trips", h.BreakerTrips)
					}
				}
				fmt.Fprintf(os.Stderr, "sweep: %-32s %d cells (%d failed requests%s)\n",
					url, stats.Cells[url], stats.Failures[url], health)
			}
			if stats.Retried > 0 {
				fmt.Fprintf(os.Stderr, "sweep: %d cells moved off their first-choice replica\n", stats.Retried)
			}
			if stats.Replicated > 0 {
				fmt.Fprintf(os.Stderr, "sweep: %d hot cells replicated to a second holder\n", stats.Replicated)
			}
		}
		if err != nil {
			return err
		}
	} else {
		fmt.Fprintf(os.Stderr, "sweep: %d cells over %d schemes (-j %d)\n",
			canon.NumCells(), len(canon.Schemes), opts.Parallelism)
		res, err = cdcs.SweepWithOptions(canon, opts)
		fmt.Fprintf(os.Stderr, "\r%-40s\r", "") // clear the progress line
		if err != nil {
			return err
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fmt.Errorf("writing output: %w", err)
		}
	} else {
		writeSweepTable(w, res)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells in %.1fs\n", len(res.Cells), time.Since(start).Seconds())
	return nil
}

// readSweepResult loads a saved SweepResult document (the -sweep-json
// output format).
func readSweepResult(path string) (*cdcs.SweepResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var res cdcs.SweepResult
	dec := json.NewDecoder(f)
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(res.Cells) == 0 {
		return nil, fmt.Errorf("%s: no cells (is this a -sweep-json file?)", path)
	}
	return &res, nil
}

// runSweepDiff aligns two saved SweepResults by cell content hash and
// writes per-cell weighted-speedup deltas, aggregates, and unmatched cells
// (or, with jsonOut, the full SweepDiffResult document) to w.
func runSweepDiff(w io.Writer, pathA, pathB string, jsonOut bool) error {
	a, err := readSweepResult(pathA)
	if err != nil {
		return err
	}
	b, err := readSweepResult(pathB)
	if err != nil {
		return err
	}
	d, err := cdcs.DiffSweeps(a, b)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("writing output: %w", err)
		}
		return nil
	}
	writeDiffTable(w, pathA, pathB, d)
	return nil
}

// writeDiffTable renders the diff: one row per aligned cell with each
// common scheme's WS delta (B minus A), aggregate mean and max-|delta|
// rows, and the cells present in only one file.
func writeDiffTable(w io.Writer, pathA, pathB string, d *cdcs.SweepDiffResult) {
	fmt.Fprintf(w, "sweep-diff: B (%s) minus A (%s), %d aligned cells\n", pathB, pathA, len(d.Common))
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %7s %-28s", "cell", "mesh", "mix")
	for _, s := range d.Schemes {
		fmt.Fprintf(&b, " %10s", "d"+s)
	}
	fmt.Fprintln(w, b.String())
	for _, c := range d.Common {
		cfg := c.Cell.Config
		b.Reset()
		fmt.Fprintf(&b, "%12.12s %7s %-28s",
			c.Hash, fmt.Sprintf("%dx%d", cfg.MeshWidth, cfg.MeshHeight), c.Cell.Mix.Label())
		for _, s := range d.Schemes {
			fmt.Fprintf(&b, " %+10.4f", c.WSDelta[s])
		}
		fmt.Fprintln(w, b.String())
	}
	for _, agg := range []struct {
		name string
		vals map[string]float64
	}{{"mean", d.MeanWSDelta}, {"max|d|", d.MaxAbsWSDelta}} {
		b.Reset()
		fmt.Fprintf(&b, "%12s %7s %-28s", agg.name, "", "")
		for _, s := range d.Schemes {
			fmt.Fprintf(&b, " %+10.4f", agg.vals[s])
		}
		fmt.Fprintln(w, b.String())
	}
	for _, only := range []struct {
		name  string
		cells []cdcs.SweepCell
	}{{"A", d.OnlyA}, {"B", d.OnlyB}} {
		for _, c := range only.cells {
			cfg := c.Request.Config
			fmt.Fprintf(w, "only in %s: %12.12s %dx%d %s\n",
				only.name, c.Hash, cfg.MeshWidth, cfg.MeshHeight, c.Request.Mix.Label())
		}
	}
	if d.Identical() {
		fmt.Fprintln(w, "sweep-diff: results are identical")
	}
}

// writeSweepTable renders one row per cell: the config axes, the mix, and
// each scheme's weighted speedup over the cell's baseline.
func writeSweepTable(w io.Writer, res *cdcs.SweepResult) {
	schemes := res.Request.Schemes
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %7s %7s %6s %5s %5s %3s  %-28s", "cell", "mesh", "bankKB", "bankL", "hopL", "memL", "ch", "mix")
	for _, s := range schemes {
		fmt.Fprintf(&b, " %9s", s)
	}
	fmt.Fprintln(w, b.String())
	for _, cell := range res.Cells {
		cfg := cell.Request.Config
		b.Reset()
		fmt.Fprintf(&b, "%5d %7s %7d %6g %5g %5g %3d  %-28s",
			cell.Index, fmt.Sprintf("%dx%d", cfg.MeshWidth, cfg.MeshHeight),
			cfg.BankKB, cfg.BankLatency, cfg.HopLatency, cfg.MemLatency, cfg.MemChannels,
			cell.Request.Mix.Label())
		for _, s := range schemes {
			fmt.Fprintf(&b, " %9.3f", cell.Comparison.WeightedSpeedup[s])
		}
		fmt.Fprintln(w, b.String())
	}
}
