module cdcs

go 1.24
