// Command benchjson converts `go test -bench` output to JSON and optionally
// gates on a committed baseline:
//
//	go test -bench=. -benchmem -run='^$' ./... | tee bench.out
//	go run ./scripts -in bench.out -out BENCH_campaign.json
//	go run ./scripts -in bench.out -out BENCH_campaign.json \
//	    -baseline BENCH_baseline.json -bench BenchmarkCampaignParallel -max-regress 0.20
//
// With -baseline, the exit status is non-zero if any benchmark matching
// -bench regressed by more than -max-regress relative to the baseline in
// ns/op, B/op or allocs/op (the memory metrics are gated only when both
// sides recorded them, so baselines captured without -benchmem still gate
// on time alone). Names are normalized by stripping the trailing
// -GOMAXPROCS suffix so runs from machines with different core counts still
// compare on their shared sub-benchmarks (e.g. j=1, j=2); sub-benchmarks
// present on only one side are reported and skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in.
	Pkg string `json:"pkg,omitempty"`
	// Runs is the iteration count (b.N).
	Runs int64 `json:"runs"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds the remaining value/unit pairs (B/op, allocs/op, custom
	// b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON document benchjson reads and writes.
type File struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)
	procSufRe = regexp.MustCompile(`-\d+$`)
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in         = flag.String("in", "", "go test -bench output to parse (default stdin)")
		out        = flag.String("out", "", "write parsed benchmarks as JSON to this file (default stdout)")
		baseline   = flag.String("baseline", "", "baseline JSON to gate against (skip gating if empty)")
		bench      = flag.String("bench", "BenchmarkCampaignParallel", "benchmark name prefix the gate applies to")
		maxRegress = flag.Float64("max-regress", 0.20, "maximum tolerated ns/op regression vs baseline (0.20 = +20%)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: unexpected arguments: %v\n", flag.Args())
		return 2
	}

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	parsed, err := parse(bufio.NewScanner(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(parsed.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		return 1
	}

	doc, err := json.MarshalIndent(parsed, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
	} else {
		os.Stdout.Write(doc)
	}

	if *baseline == "" {
		return 0
	}
	base, err := readFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
		return 1
	}
	return gate(os.Stderr, base, parsed, *bench, *maxRegress)
}

// parse extracts benchmark lines and environment headers.
func parse(sc *bufio.Scanner) (*File, error) {
	out := &File{}
	seen := map[string]int{}
	pkg := ""
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		b := Benchmark{
			Name:    procSufRe.ReplaceAllString(m[1], ""),
			Pkg:     pkg,
			Runs:    runs,
			Metrics: map[string]float64{},
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			if fields[i+1] == "ns/op" {
				b.NsPerOp = v
			} else {
				b.Metrics[fields[i+1]] = v
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		// -count=N repeats a benchmark; keep the best (minimum ns/op) run,
		// which is the least noisy stand-in for the benchmark's true cost.
		key := b.Pkg + "\x00" + b.Name
		if i, ok := seen[key]; ok {
			if b.NsPerOp < out.Benchmarks[i].NsPerOp {
				out.Benchmarks[i] = b
			}
			continue
		}
		seen[key] = len(out.Benchmarks)
		out.Benchmarks = append(out.Benchmarks, b)
	}
	return out, sc.Err()
}

// readFile loads a benchjson document.
func readFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// gatedMetrics are the per-benchmark metrics the gate checks beyond ns/op,
// when both the baseline and the current run recorded them. Keeping the
// allocation profile gated stops map-keyed reductions and per-call scratch
// from creeping back into the placement hot path unnoticed.
var gatedMetrics = []string{"B/op", "allocs/op"}

// gate compares current against base for benchmarks matching the prefix and
// returns 1 if any shared sub-benchmark regressed beyond maxRegress in
// ns/op or in a gated metric both sides recorded. Diagnostics go to w.
func gate(w io.Writer, base, cur *File, prefix string, maxRegress float64) int {
	curByName := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}
	var names []string
	for _, b := range base.Benchmarks {
		if strings.HasPrefix(b.Name, prefix) {
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(w, "benchjson: baseline has no benchmarks matching %q\n", prefix)
		return 1
	}

	baseByName := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}

	// The reverse direction: a benchmark in the current run that matches the
	// gate prefix but has no baseline entry is not gated at all. That happens
	// silently when coverage grows (a new sub-benchmark or bench target) and
	// the baseline is not refreshed — warn loudly so ungated hot paths are
	// visible in the CI log instead of quietly unprotected.
	var ungated []string
	for _, b := range cur.Benchmarks {
		if strings.HasPrefix(b.Name, prefix) {
			if _, ok := baseByName[b.Name]; !ok {
				ungated = append(ungated, b.Name)
			}
		}
	}
	sort.Strings(ungated)
	for _, name := range ungated {
		fmt.Fprintf(w, "benchjson: WARNING: %-36s matches %q but has NO BASELINE entry — ungated; refresh the baseline\n", name, prefix)
	}

	failed, compared := 0, 0
	check := func(name, unit string, baseV, curV float64) {
		ratio := curV / baseV
		verdict := "ok"
		if ratio > 1+maxRegress {
			verdict = fmt.Sprintf("REGRESSION > %+.0f%%", maxRegress*100)
			failed++
		}
		fmt.Fprintf(w, "benchjson: %-45s base %14.0f %-9s now %14.0f (%+.1f%%) %s\n",
			name, baseV, unit+",", curV, (ratio-1)*100, verdict)
	}
	for _, name := range names {
		bb := baseByName[name]
		cb, ok := curByName[name]
		if !ok {
			// Core-count-specific variants (e.g. j=16) legitimately differ
			// across machines; report and move on.
			fmt.Fprintf(w, "benchjson: %-45s not in current run, skipped\n", name)
			continue
		}
		if bb.NsPerOp <= 0 {
			fmt.Fprintf(w, "benchjson: %-45s baseline has no ns/op, skipped\n", name)
			continue
		}
		compared++
		check(name, "ns/op", bb.NsPerOp, cb.NsPerOp)
		for _, metric := range gatedMetrics {
			baseV, okB := bb.Metrics[metric]
			curV, okC := cb.Metrics[metric]
			if !okB {
				continue // baseline predates -benchmem capture for this metric
			}
			if !okC {
				// The baseline gates this metric but the current run did not
				// record it — that disables the gate (e.g. -benchmem dropped
				// from the CI command), which must fail loudly, not warn.
				fmt.Fprintf(w, "benchjson: %-45s current run missing %s — run with -benchmem  FAIL\n", name, metric)
				failed++
				continue
			}
			if baseV == 0 {
				// An allocation-free baseline has no ratio to scale; any
				// nonzero value is a regression from zero.
				verdict := "ok"
				if curV > 0 {
					verdict = "REGRESSION from 0"
					failed++
				}
				fmt.Fprintf(w, "benchjson: %-45s base %14.0f %-9s now %14.0f %s\n",
					name, baseV, metric+",", curV, verdict)
				continue
			}
			check(name, metric, baseV, curV)
		}
	}
	if compared == 0 {
		fmt.Fprintf(w, "benchjson: no shared sub-benchmarks matching %q to compare\n", prefix)
		return 1
	}
	if failed > 0 {
		fmt.Fprintf(w, "benchjson: %d regressions beyond %.0f%% across %d gated benchmarks\n",
			failed, maxRegress*100, compared)
		return 1
	}
	fmt.Fprintf(w, "benchjson: all %d gated benchmarks within %.0f%% of baseline (ns/op, B/op, allocs/op)\n",
		compared, maxRegress*100)
	return 0
}
