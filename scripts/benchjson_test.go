package main

import (
	"bufio"
	"io"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: cdcs
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCampaignParallel/j=1-16         	       5	1002003004 ns/op	  123456 B/op	    7890 allocs/op
BenchmarkCampaignParallel/j=2-16         	       5	 501001502 ns/op	  123456 B/op	    7890 allocs/op
BenchmarkCampaignParallel/j=1-16         	       5	 900000000 ns/op	  123456 B/op	    7890 allocs/op
BenchmarkExpFig11-16                     	       1	2000000000 ns/op	        1.414 ws
PASS
pkg: cdcs/internal/place
BenchmarkOptimisticPlace64-16            	   20000	     55545 ns/op
ok  	cdcs	10.0s
`

func parseString(t *testing.T, s string) *File {
	t.Helper()
	f, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseBenchOutput(t *testing.T) {
	f := parseString(t, sampleBenchOutput)
	if f.Goos != "linux" || f.Goarch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Errorf("environment headers wrong: %+v", f)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("%d benchmarks parsed, want 4 (repeat runs deduped)", len(f.Benchmarks))
	}
	byName := map[string]Benchmark{}
	for _, b := range f.Benchmarks {
		byName[b.Name] = b
	}
	// The -GOMAXPROCS suffix is stripped.
	j1, ok := byName["BenchmarkCampaignParallel/j=1"]
	if !ok {
		t.Fatalf("j=1 benchmark missing (names: %v)", f.Benchmarks)
	}
	// -count repeats keep the best (minimum) ns/op.
	if j1.NsPerOp != 900000000 {
		t.Errorf("j=1 ns/op %v, want best-of 900000000", j1.NsPerOp)
	}
	if j1.Pkg != "cdcs" {
		t.Errorf("j=1 pkg %q", j1.Pkg)
	}
	if j1.Metrics["B/op"] != 123456 || j1.Metrics["allocs/op"] != 7890 {
		t.Errorf("j=1 metrics %v", j1.Metrics)
	}
	// Custom b.ReportMetric units land in Metrics.
	if ws := byName["BenchmarkExpFig11"].Metrics["ws"]; ws != 1.414 {
		t.Errorf("custom ws metric = %v, want 1.414", ws)
	}
	// Package attribution follows pkg: headers.
	if got := byName["BenchmarkOptimisticPlace64"].Pkg; got != "cdcs/internal/place" {
		t.Errorf("place benchmark pkg %q", got)
	}
	// Benchmarks without extra metrics have a nil map.
	if byName["BenchmarkOptimisticPlace64"].Metrics != nil {
		t.Errorf("expected nil metrics, got %v", byName["BenchmarkOptimisticPlace64"].Metrics)
	}
}

func TestParseRejectsBadLines(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader(
		"BenchmarkX 1 notanumber ns/op\n"))); err == nil {
		t.Error("bad metric value accepted")
	}
}

func TestParseEmptyInput(t *testing.T) {
	f := parseString(t, "no benchmarks here\n")
	if len(f.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise", len(f.Benchmarks))
	}
}

// gateFiles builds a baseline/current pair with the given ns/op values for
// one gated benchmark.
func gateFiles(baseNs, curNs float64) (*File, *File) {
	base := &File{Benchmarks: []Benchmark{{Name: "BenchmarkCampaignParallel/j=1", NsPerOp: baseNs, Runs: 5}}}
	cur := &File{Benchmarks: []Benchmark{{Name: "BenchmarkCampaignParallel/j=1", NsPerOp: curNs, Runs: 5}}}
	return base, cur
}

func TestGateWithinBudgetPasses(t *testing.T) {
	base, cur := gateFiles(1000, 1100) // +10% < 20%
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 0 {
		t.Errorf("gate failed a +10%% run: exit %d", code)
	}
}

func TestGateRegressionFails(t *testing.T) {
	base, cur := gateFiles(1000, 1300) // +30% > 20%
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 1 {
		t.Errorf("gate passed a +30%% regression: exit %d", code)
	}
}

func TestGateSkipsMissingSubBenchmarks(t *testing.T) {
	base, cur := gateFiles(1000, 1000)
	base.Benchmarks = append(base.Benchmarks, Benchmark{Name: "BenchmarkCampaignParallel/j=16", NsPerOp: 500})
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 0 {
		t.Errorf("gate failed on a baseline-only sub-benchmark: exit %d", code)
	}
}

func TestGateNoMatchingBaselineFails(t *testing.T) {
	base, cur := gateFiles(1000, 1000)
	if code := gate(io.Discard, base, cur, "BenchmarkNoSuch", 0.20); code != 1 {
		t.Errorf("gate passed with no matching baseline benchmarks: exit %d", code)
	}
}

// withMetrics sets B/op and allocs/op on the single gated benchmark.
func withMetrics(f *File, bop, allocs float64) *File {
	f.Benchmarks[0].Metrics = map[string]float64{"B/op": bop, "allocs/op": allocs}
	return f
}

func TestGateAllocRegressionFails(t *testing.T) {
	// ns/op within budget, allocs/op +50%: the memory gate must trip.
	base, cur := gateFiles(1000, 1000)
	withMetrics(base, 1000, 100)
	withMetrics(cur, 1000, 150)
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 1 {
		t.Errorf("gate passed a +50%% allocs/op regression: exit %d", code)
	}
}

func TestGateBytesRegressionFails(t *testing.T) {
	base, cur := gateFiles(1000, 1000)
	withMetrics(base, 1000, 100)
	withMetrics(cur, 1300, 100) // B/op +30%
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 1 {
		t.Errorf("gate passed a +30%% B/op regression: exit %d", code)
	}
}

func TestGateMetricsWithinBudgetPass(t *testing.T) {
	base, cur := gateFiles(1000, 1100)
	withMetrics(base, 1000, 100)
	withMetrics(cur, 1100, 110) // everything +10% < 20%
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 0 {
		t.Errorf("gate failed a +10%% run with metrics: exit %d", code)
	}
}

func TestGateSkipsMetricsAbsentFromBaseline(t *testing.T) {
	// Old baselines without -benchmem metrics still gate on ns/op alone,
	// even when the current run would look like a huge memory regression.
	base, cur := gateFiles(1000, 1000)
	withMetrics(cur, 999999, 999999)
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 0 {
		t.Errorf("gate failed on metrics the baseline never recorded: exit %d", code)
	}
}

func TestGateFailsWhenCurrentMissesGatedMetric(t *testing.T) {
	// The baseline gates memory metrics; a current run without them (e.g.
	// -benchmem dropped from the CI command) silently disables the gate,
	// so it must fail, not warn.
	base, cur := gateFiles(1000, 1000)
	withMetrics(base, 1000, 100)
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 1 {
		t.Errorf("gate passed a run missing gated metrics: exit %d", code)
	}
}

func TestGateWarnsOnUngatedNewBenchmarks(t *testing.T) {
	// A current-run benchmark matching the prefix with no baseline entry is
	// ungated: the gate must still pass (new coverage is not a regression)
	// but warn loudly so the baseline gets refreshed.
	base, cur := gateFiles(1000, 1000)
	cur.Benchmarks = append(cur.Benchmarks,
		Benchmark{Name: "BenchmarkCampaignParallel/j=4", NsPerOp: 999, Runs: 5})
	var log strings.Builder
	if code := gate(&log, base, cur, "BenchmarkCampaignParallel", 0.20); code != 0 {
		t.Errorf("gate failed on an added benchmark: exit %d", code)
	}
	out := log.String()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "BenchmarkCampaignParallel/j=4") ||
		!strings.Contains(out, "NO BASELINE") {
		t.Errorf("no loud warning for the ungated benchmark; log:\n%s", out)
	}
	// Benchmarks outside the prefix stay silent.
	cur.Benchmarks = append(cur.Benchmarks, Benchmark{Name: "BenchmarkUnrelated", NsPerOp: 1})
	log.Reset()
	gate(&log, base, cur, "BenchmarkCampaignParallel", 0.20)
	if strings.Contains(log.String(), "BenchmarkUnrelated") {
		t.Errorf("warned about a benchmark outside the gate prefix; log:\n%s", log.String())
	}
}

func TestGateZeroAllocBaselineRegression(t *testing.T) {
	// A 0 allocs/op baseline has no ratio to scale: any nonzero current
	// value is a regression from zero and must trip the gate.
	base, cur := gateFiles(1000, 1000)
	withMetrics(base, 1000, 0)
	withMetrics(cur, 1000, 10)
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 1 {
		t.Errorf("gate passed a regression from 0 allocs/op: exit %d", code)
	}
	// Staying at zero passes.
	withMetrics(cur, 1000, 0)
	if code := gate(io.Discard, base, cur, "BenchmarkCampaignParallel", 0.20); code != 0 {
		t.Errorf("gate failed an alloc-free run against an alloc-free baseline: exit %d", code)
	}
}
