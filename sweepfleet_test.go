package cdcs_test

// Chaos integration tests for the fleet layer: distributed sweeps against
// replicas that flap, slow down and die mid-sweep. The invariant under test
// is always the same — routing changes where cells are computed, never what
// they return — so every scenario ends with a byte-identity check against
// the in-process Sweep. CI runs these under -race.

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cdcs"
	"cdcs/internal/server"
	"cdcs/internal/testutil"
)

// faultedReplica starts an in-process replica behind a FaultProxy, so the
// test can kill, slow or burst-fail it mid-sweep.
func faultedReplica(t *testing.T, opts server.Options) *testutil.FaultProxy {
	t.Helper()
	backend := distReplica(t, opts)
	proxy, err := testutil.NewFaultProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	return proxy
}

// TestSweepFleetReplicaFlapMidSweep kills one replica after two cells have
// completed and revives it after eight. The sweep must complete with zero
// failed cells, byte-identical to the in-process Sweep; the flap is visible
// in the stats (failures on the flapped replica, breaker trip recorded).
func TestSweepFleetReplicaFlapMidSweep(t *testing.T) {
	req := distGrid()
	local, err := cdcs.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, _ := json.Marshal(local)

	stable := distReplica(t, server.Options{})
	flappy := faultedReplica(t, server.Options{})

	// TopK=1 pins pure rendezvous routing, so the dead replica's owned
	// cells must hit it — the flap cannot be steered around before it is
	// even noticed, which keeps the failure trace deterministic.
	var phase atomic.Int32 // 0 = up, 1 = killed, 2 = revived
	res, stats, err := cdcs.SweepDistributed(req, []string{stable.URL, flappy.URL()}, cdcs.DistributedSweepOptions{
		Parallelism:           1, // serialize so the flap lands between cells
		FleetProbeInterval:    -1,
		FleetBreakerThreshold: 1,
		TopK:                  1,
		Progress: func(done, total int) {
			switch {
			case done == 2 && phase.CompareAndSwap(0, 1):
				flappy.Kill()
			case done == 8 && phase.CompareAndSwap(1, 2):
				flappy.Revive()
			}
		},
	})
	if err != nil {
		t.Fatalf("sweep across a replica flap failed: %v", err)
	}
	if phase.Load() != 2 {
		t.Fatalf("flap did not run to completion (phase %d)", phase.Load())
	}
	resJSON, _ := json.Marshal(res)
	if !bytes.Equal(resJSON, localJSON) {
		t.Error("flapped sweep is not byte-identical to the in-process Sweep")
	}
	total := 0
	for _, n := range stats.Cells {
		total += n
	}
	if total != 16 {
		t.Fatalf("served %d cells, want 16: %+v", total, stats.Cells)
	}
	flappyURL := strings.TrimRight(flappy.URL(), "/")
	if stats.Failures[flappyURL] == 0 {
		t.Error("the flap left no failure trace in the stats")
	}
	if h, ok := stats.Fleet[flappyURL]; !ok || h.BreakerTrips == 0 {
		t.Errorf("breaker never tripped on the flapped replica: %+v", stats.Fleet)
	}

	// Recovery: the replica is back up, so a fresh sweep (fresh fleet view)
	// serves it traffic again with zero failures — and the exact same bytes.
	res2, stats2, err := cdcs.SweepDistributed(req, []string{stable.URL, flappy.URL()}, cdcs.DistributedSweepOptions{
		FleetProbeInterval: -1,
		TopK:               1,
	})
	if err != nil {
		t.Fatalf("sweep after revival failed: %v", err)
	}
	if len(stats2.Failures) != 0 {
		t.Errorf("revived replica still failing: %+v", stats2.Failures)
	}
	if stats2.Cells[flappyURL] == 0 {
		t.Error("revived replica served no cells")
	}
	res2JSON, _ := json.Marshal(res2)
	if !bytes.Equal(res2JSON, localJSON) {
		t.Error("post-revival sweep is not byte-identical")
	}
}

// TestSweepFleetSteersAwayFromSlowReplica: one replica 10× slower but fully
// alive. The sweep must complete byte-identically with zero failures, and
// the slow replica's served share must fall measurably below its rendezvous
// share (what it was assigned).
func TestSweepFleetSteersAwayFromSlowReplica(t *testing.T) {
	req := distGrid()
	local, err := cdcs.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, _ := json.Marshal(local)

	fast := distReplica(t, server.Options{})
	slow := faultedReplica(t, server.Options{})
	slow.SetLatency(80 * time.Millisecond)

	start := time.Now()
	res, stats, err := cdcs.SweepDistributed(req, []string{fast.URL, slow.URL()}, cdcs.DistributedSweepOptions{
		Parallelism:        2,
		FleetProbeInterval: -1,
	})
	if err != nil {
		t.Fatalf("sweep with a slow replica failed: %v", err)
	}
	elapsed := time.Since(start)
	resJSON, _ := json.Marshal(res)
	if !bytes.Equal(resJSON, localJSON) {
		t.Error("steered sweep is not byte-identical to the in-process Sweep")
	}
	if len(stats.Failures) != 0 {
		t.Errorf("slow-but-alive replica produced failures: %+v", stats.Failures)
	}
	slowURL := strings.TrimRight(slow.URL(), "/")
	fastURL := strings.TrimRight(fast.URL, "/")
	if stats.Cells[slowURL] >= stats.Cells[fastURL] {
		t.Errorf("slow replica served %d ≥ fast's %d; load was not steered",
			stats.Cells[slowURL], stats.Cells[fastURL])
	}
	if stats.Cells[slowURL] >= stats.Assigned[slowURL] && stats.Assigned[slowURL] > 0 {
		t.Errorf("slow replica served %d of %d assigned; share did not shrink",
			stats.Cells[slowURL], stats.Assigned[slowURL])
	}
	t.Logf("steering: slow served %d (assigned %d), fast served %d (assigned %d), wall %v",
		stats.Cells[slowURL], stats.Assigned[slowURL],
		stats.Cells[fastURL], stats.Assigned[fastURL], elapsed)
}

// TestSweepFleetPureRendezvousWithTopK1 pins the routing contract's other
// end: TopK=1 disables load competition, so assignments equal servings even
// with a slow replica in the set (and the result is still byte-identical —
// slower, never wrong).
func TestSweepFleetPureRendezvousWithTopK1(t *testing.T) {
	req := distGrid()
	a := distReplica(t, server.Options{})
	slow := faultedReplica(t, server.Options{})
	slow.SetLatency(20 * time.Millisecond)

	res, stats, err := cdcs.SweepDistributed(req, []string{a.URL, slow.URL()}, cdcs.DistributedSweepOptions{
		Parallelism:        2,
		FleetProbeInterval: -1,
		TopK:               1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for url, assigned := range stats.Assigned {
		if stats.Cells[url] != assigned {
			t.Errorf("%s served %d of %d assigned; TopK=1 must not move healthy cells",
				url, stats.Cells[url], assigned)
		}
	}
	local, err := cdcs.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	resJSON, _ := json.Marshal(res)
	localJSON, _ := json.Marshal(local)
	if !bytes.Equal(resJSON, localJSON) {
		t.Error("TopK=1 sweep is not byte-identical to the in-process Sweep")
	}
}

// TestSweepFleetHotCellReplicationWarmsSecondHolder: with HotCellLatency
// below every service time, each cell is replicated to its alternate
// holder, so a follow-up sweep with the original holder dead is served
// entirely from warm caches — zero new simulations anywhere.
func TestSweepFleetHotCellReplicationWarmsSecondHolder(t *testing.T) {
	req := distGrid()
	a := faultedReplica(t, server.Options{})
	b := faultedReplica(t, server.Options{})
	reps := []string{a.URL(), b.URL()}

	res1, stats, err := cdcs.SweepDistributed(req, reps, cdcs.DistributedSweepOptions{
		FleetProbeInterval: -1,
		HotCellLatency:     time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replicated != 16 {
		t.Errorf("Replicated = %d, want 16 (every cell hot)", stats.Replicated)
	}

	// Every cell now has a warm copy on both replicas: kill either one and
	// the survivor replays the whole sweep from cache, byte-identically.
	a.Kill()
	res2, _, err := cdcs.SweepDistributed(req, reps, cdcs.DistributedSweepOptions{
		FleetProbeInterval:    -1,
		FleetBreakerThreshold: 1,
	})
	if err != nil {
		t.Fatalf("replay against the surviving holder failed: %v", err)
	}
	j1, _ := json.Marshal(res1)
	j2, _ := json.Marshal(res2)
	if !bytes.Equal(j1, j2) {
		t.Error("replay from replicated copies differs from the original")
	}
}
