package policy

import (
	"math/rand"
	"testing"

	"cdcs/internal/perfmodel"
	"cdcs/internal/stats"
	"cdcs/internal/workload"
)

func TestSchemeNames(t *testing.T) {
	cases := map[string]Scheme{
		"S-NUCA":   SchemeSNUCA,
		"R-NUCA":   SchemeRNUCA,
		"Jigsaw+C": SchemeJigsawC,
		"Jigsaw+R": SchemeJigsawR,
		"CDCS":     SchemeCDCS,
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name()=%q, want %q", got, want)
		}
	}
	if (Scheme{Kind: Jigsaw, Threads: Random}).Name() != "Jigsaw+R" {
		t.Error("derived name wrong")
	}
}

func TestBuildErrors(t *testing.T) {
	env := ScaledEnv(2, 2)
	mix := workload.RandomST(rand.New(rand.NewSource(1)), workload.SPECCPU(), 8)
	if _, err := Build(env, SchemeCDCS, mix, rand.New(rand.NewSource(2))); err == nil {
		t.Error("8 threads on 4 cores accepted")
	}
	env2 := DefaultEnv()
	mix2 := workload.RandomST(rand.New(rand.NewSource(1)), workload.SPECCPU(), 4)
	if _, err := Build(env2, SchemeSNUCA, mix2, nil); err == nil {
		t.Error("random scheduler without rng accepted")
	}
}

func TestSNUCASharedOccupancy(t *testing.T) {
	env := DefaultEnv()
	mix := workload.NewMix()
	cpu := workload.SPECCPU()
	mix.AddST(workload.ByName(cpu, "omnet"))
	mix.AddST(workload.ByName(cpu, "milc"))
	s, err := Build(env, SchemeSNUCA, mix, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Occupancies stay within total capacity.
	total := 0.0
	for _, sz := range s.VCSizes {
		total += sz
	}
	if total > env.Chip.TotalLines()+1 {
		t.Errorf("occupancies %g exceed capacity %g", total, env.Chip.TotalLines())
	}
	// With 32MB shared between omnet (2.5MB footprint) and milc (streaming),
	// omnet fits and hits; S-NUCA's problem in large mixes is distance, and
	// here it's the ~5.25-hop mean distance.
	for _, in := range s.Inputs {
		for _, a := range in.Accesses {
			if a.AvgHops < 3 || a.AvgHops > 8 {
				t.Errorf("S-NUCA hops %g, want mesh mean ~5.25", a.AvgHops)
			}
		}
	}
}

func TestSNUCAInsensitiveToThreadPlacement(t *testing.T) {
	env := DefaultEnv()
	mix := workload.RandomST(rand.New(rand.NewSource(5)), workload.SPECCPU(), 64)
	a, err := Build(env, SchemeSNUCA, mix, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(env, SchemeSNUCA, mix, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	ra := perfmodel.Evaluate(env.Params, a.Inputs)
	rb := perfmodel.Evaluate(env.Params, b.Inputs)
	// Different random placements, near-identical performance (the paper
	// reports <=1% sensitivity; with a full 64-thread mix the mean-distance
	// model keeps it well under that).
	if rel := abs(ra.AggIPC-rb.AggIPC) / ra.AggIPC; rel > 0.01 {
		t.Errorf("S-NUCA placement sensitivity %g, want <1%%", rel)
	}
}

func TestRNUCAPrivateIsLocalAndBankLimited(t *testing.T) {
	env := DefaultEnv()
	mix := workload.NewMix()
	cpu := workload.SPECCPU()
	mix.AddST(workload.ByName(cpu, "omnet"))
	s, err := Build(env, SchemeRNUCA, mix, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// omnet's private VC is capped near one bank (512KB), far below its
	// 2.5MB footprint: high miss ratio.
	if s.VCSizes[0] > env.Chip.BankLines+1 {
		t.Errorf("R-NUCA private VC got %g lines, bank is %g", s.VCSizes[0], env.Chip.BankLines)
	}
	if s.VCRatios[0] < 0.5 {
		t.Errorf("omnet under R-NUCA should thrash: ratio %g", s.VCRatios[0])
	}
	// And its accesses are local.
	if h := s.Inputs[0].Accesses[0].AvgHops; h != 0 {
		t.Errorf("private data hops %g, want 0", h)
	}
}

func TestRNUCASharedDataSpread(t *testing.T) {
	env := DefaultEnv()
	mix := workload.NewMix()
	mix.AddMT(workload.MTByName(workload.SPECOMP(), "ilbdc"))
	s, err := Build(env, SchemeRNUCA, mix, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// The shared VC sees chip-mean distance; it gets plenty of capacity
	// (512KB footprint fits easily chip-wide).
	for v := range mix.VCs {
		if mix.VCs[v].Kind != workload.ProcessShared {
			continue
		}
		if s.VCRatios[v] > 0.2 {
			t.Errorf("ilbdc shared data misses %g under R-NUCA, want fitting", s.VCRatios[v])
		}
	}
	foundShared := false
	for ti := range s.Inputs {
		for _, a := range s.Inputs[ti].Accesses {
			if a.AvgHops > 3 {
				foundShared = true
			}
		}
		_ = ti
	}
	if !foundShared {
		t.Error("no spread (shared) access stream found")
	}
}

func TestJigsawGivesOmnetItsFootprint(t *testing.T) {
	env := DefaultEnv()
	mix := workload.NewMix()
	cpu := workload.SPECCPU()
	mix.AddST(workload.ByName(cpu, "omnet"))
	mix.AddST(workload.ByName(cpu, "milc"))
	s, err := Build(env, SchemeJigsawC, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.VCSizes[0] < 2.4*workload.LinesPerMB {
		t.Errorf("Jigsaw gave omnet %g lines, want its 2.5MB footprint", s.VCSizes[0])
	}
	if s.VCRatios[0] > 0.1 {
		t.Errorf("omnet still missing under Jigsaw: %g", s.VCRatios[0])
	}
	if s.Core == nil {
		t.Error("partitioned scheme missing core result")
	}
}

// buildAll evaluates all five schemes on a mix and returns weighted speedups
// vs S-NUCA.
func buildAll(t *testing.T, env Env, mix *workload.Mix, seed int64) map[string]float64 {
	t.Helper()
	schemes := []Scheme{SchemeSNUCA, SchemeRNUCA, SchemeJigsawC, SchemeJigsawR, SchemeCDCS}
	ipcs := map[string][]float64{}
	for _, sc := range schemes {
		s, err := Build(env, sc, mix, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		res := perfmodel.Evaluate(env.Params, s.Inputs)
		per := make([]float64, len(res.Threads))
		for i := range res.Threads {
			per[i] = res.Threads[i].IPC
		}
		ipcs[sc.Name()] = per
	}
	base := ipcs["S-NUCA"]
	out := map[string]float64{}
	for name, ipc := range ipcs {
		out[name] = stats.WeightedSpeedup(ipc, base)
	}
	return out
}

func TestSchemeOrderingOnCaseStudy(t *testing.T) {
	// §II-B: on the 36-tile case-study mix, CDCS > Jigsaw variants > R-NUCA
	// > S-NUCA (Table 1: 1.56 / ~1.47-1.48 / 1.08 / 1.0).
	env := ScaledEnv(6, 6)
	mix := workload.CaseStudy()
	ws := buildAll(t, env, mix, 11)
	if ws["CDCS"] <= ws["Jigsaw+C"] || ws["CDCS"] <= ws["Jigsaw+R"] {
		t.Errorf("CDCS %v not best among partitioned: %v", ws["CDCS"], ws)
	}
	if ws["Jigsaw+R"] <= ws["R-NUCA"] {
		t.Errorf("Jigsaw+R %v <= R-NUCA %v", ws["Jigsaw+R"], ws["R-NUCA"])
	}
	if ws["R-NUCA"] <= 1.0 {
		t.Errorf("R-NUCA %v <= S-NUCA baseline", ws["R-NUCA"])
	}
	// Magnitudes in the paper's ballpark: CDCS ~1.56 on this mix.
	if ws["CDCS"] < 1.2 || ws["CDCS"] > 2.2 {
		t.Errorf("CDCS case-study speedup %v far from paper's 1.56", ws["CDCS"])
	}
}

func TestCDCSBestOn64AppMixes(t *testing.T) {
	env := DefaultEnv()
	for seed := int64(0); seed < 3; seed++ {
		mix := workload.RandomST(rand.New(rand.NewSource(seed)), workload.SPECCPU(), 64)
		ws := buildAll(t, env, mix, seed)
		for _, other := range []string{"Jigsaw+C", "Jigsaw+R", "R-NUCA"} {
			if ws["CDCS"] < ws[other] {
				t.Errorf("seed %d: CDCS %.3f below %s %.3f", seed, ws["CDCS"], other, ws[other])
			}
		}
		if ws["CDCS"] < 1.1 {
			t.Errorf("seed %d: CDCS speedup %.3f too small", seed, ws["CDCS"])
		}
	}
}

func TestBankGranularCDCSWorse(t *testing.T) {
	env := DefaultEnv()
	mix := workload.RandomST(rand.New(rand.NewSource(21)), workload.SPECCPU(), 64)
	fine, err := Build(env, SchemeCDCS, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	coarse := SchemeCDCS
	coarse.BankGranular = true
	coarse.Label = "CDCS-bank"
	cs, err := Build(env, coarse, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf := perfmodel.Evaluate(env.Params, fine.Inputs)
	rc := perfmodel.Evaluate(env.Params, cs.Inputs)
	if rc.AggIPC > rf.AggIPC {
		t.Errorf("bank-granular CDCS (%.3f) outperformed fine-grained (%.3f)", rc.AggIPC, rf.AggIPC)
	}
}

func TestMultithreadedSchemesRun(t *testing.T) {
	env := DefaultEnv()
	mix := workload.RandomMT(rand.New(rand.NewSource(31)), workload.SPECOMP(), 8)
	for _, sc := range []Scheme{SchemeSNUCA, SchemeRNUCA, SchemeJigsawC, SchemeJigsawR, SchemeCDCS} {
		s, err := Build(env, sc, mix, rand.New(rand.NewSource(32)))
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if len(s.Inputs) != 64 {
			t.Fatalf("%s: %d inputs, want 64", sc.Name(), len(s.Inputs))
		}
		res := perfmodel.Evaluate(env.Params, s.Inputs)
		if res.AggIPC <= 0 {
			t.Fatalf("%s: non-positive aggregate IPC", sc.Name())
		}
	}
}
