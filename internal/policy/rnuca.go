package policy

import (
	"cdcs/internal/mesh"
	"cdcs/internal/workload"
)

// buildRNUCA models R-NUCA's class-based placement: thread-private data maps
// to the thread's local bank (zero network distance), and shared data is
// spread across the whole chip. Capacity is unmanaged — each bank is an
// LRU pool contended by its local thread's private data and an equal slice
// of all shared data — which is exactly why R-NUCA underperforms partitioned
// schemes on heterogeneous mixes (§II-B: omnet needs 2.5MB but only ever
// sees its 512KB local bank).
func buildRNUCA(env Env, mix *workload.Mix, threads []mesh.Tile) (Sched, error) {
	nBanks := env.Chip.Banks()
	bankLines := env.Chip.BankLines

	// Private VC of the thread on each tile (at most one thread per core).
	privAt := make([]int, nBanks)
	for i := range privAt {
		privAt[i] = -1
	}
	for t := range mix.Threads {
		for v, apki := range mix.Threads[t].Access {
			if mix.VCs[v].Kind == workload.ThreadPrivate && apki > 0 {
				privAt[threads[t]] = v
			}
		}
	}
	var sharedVCs []int
	for v := range mix.VCs {
		if mix.VCs[v].Kind == workload.ProcessShared {
			sharedVCs = append(sharedVCs, v)
		}
	}

	sizes := make([]float64, len(mix.VCs))
	ratios := make([]float64, len(mix.VCs))
	// Initial guess: private VCs get a bank, shared split the rest evenly.
	for b := 0; b < nBanks; b++ {
		if v := privAt[b]; v >= 0 {
			sizes[v] = bankLines
		}
	}
	for _, v := range sharedVCs {
		sizes[v] = bankLines * float64(nBanks) / float64(len(sharedVCs)+1)
	}

	// Global fixed point: each bank splits LRU-proportionally between its
	// local private stream and 1/N of every shared stream.
	for iter := 0; iter < 100; iter++ {
		for v := range mix.VCs {
			ratios[v] = mix.VCs[v].MissRatio.Eval(sizes[v])
		}
		sharedTotal := make(map[int]float64, len(sharedVCs))
		maxDelta := 0.0
		for b := 0; b < nBanks; b++ {
			pv := privAt[b]
			wPriv := 0.0
			if pv >= 0 {
				wPriv = mix.VCs[pv].TotalAPKI()*ratios[pv] + 1e-3
			}
			wShared := make([]float64, len(sharedVCs))
			total := wPriv
			for i, v := range sharedVCs {
				wShared[i] = (mix.VCs[v].TotalAPKI()*ratios[v] + 1e-3) / float64(nBanks)
				total += wShared[i]
			}
			if total <= 0 {
				continue
			}
			if pv >= 0 {
				target := bankLines * wPriv / total
				if max := mix.VCs[pv].MissRatio.MaxX(); target > max {
					target = max
				}
				next := 0.5*sizes[pv] + 0.5*target
				if d := abs(next - sizes[pv]); d > maxDelta {
					maxDelta = d
				}
				sizes[pv] = next
			}
			for i, v := range sharedVCs {
				sharedTotal[v] += bankLines * wShared[i] / total
			}
		}
		for _, v := range sharedVCs {
			target := sharedTotal[v]
			if max := mix.VCs[v].MissRatio.MaxX(); target > max {
				target = max
			}
			next := 0.5*sizes[v] + 0.5*target
			if d := abs(next - sizes[v]); d > maxDelta {
				maxDelta = d
			}
			sizes[v] = next
		}
		if maxDelta < 1 {
			break
		}
	}
	for v := range mix.VCs {
		ratios[v] = mix.VCs[v].MissRatio.Eval(sizes[v])
	}

	// Distances: private data is local; shared data is uniformly spread.
	n := env.Chip.Banks()
	meanFrom := make([]float64, n)
	meanMem := 0.0
	for b := 0; b < n; b++ {
		meanMem += env.Chip.Topo.AvgMemDistance(mesh.Tile(b))
	}
	meanMem /= float64(n)
	for c := 0; c < n; c++ {
		sum := 0.0
		for b := 0; b < n; b++ {
			sum += float64(env.Chip.Topo.Distance(mesh.Tile(c), mesh.Tile(b)))
		}
		meanFrom[c] = sum / float64(n)
	}

	sched := Sched{
		Name:       "R-NUCA",
		ThreadCore: threads,
		VCSizes:    sizes,
		VCRatios:   ratios,
	}
	sched.Inputs = buildInputs(env, mix, threads, ratios, func(t, v int) (float64, float64) {
		if mix.VCs[v].Kind == workload.ThreadPrivate {
			return 0, env.Chip.Topo.AvgMemDistance(threads[t])
		}
		return meanFrom[threads[t]], meanMem
	})
	return sched, nil
}
