package policy

import (
	"cdcs/internal/mesh"
	"cdcs/internal/workload"
)

// buildRNUCA models R-NUCA's class-based placement: thread-private data maps
// to the thread's local bank (zero network distance), and shared data is
// spread across the whole chip. Capacity is unmanaged — each bank is an
// LRU pool contended by its local thread's private data and an equal slice
// of all shared data — which is exactly why R-NUCA underperforms partitioned
// schemes on heterogeneous mixes (§II-B: omnet needs 2.5MB but only ever
// sees its 512KB local bank).
func buildRNUCA(ar *Arena, env Env, mix *workload.Mix, threads []mesh.Tile) (Sched, error) {
	nBanks := env.Chip.Banks()
	bankLines := env.Chip.BankLines

	// Private VC of the thread on each tile (at most one thread per core).
	privAt := make([]int, nBanks)
	for i := range privAt {
		privAt[i] = -1
	}
	for t := range mix.Threads {
		for v, apki := range mix.Threads[t].Access {
			if mix.VCs[v].Kind == workload.ThreadPrivate && apki > 0 {
				privAt[threads[t]] = v
			}
		}
	}
	var sharedVCs []int
	for v := range mix.VCs {
		if mix.VCs[v].Kind == workload.ProcessShared {
			sharedVCs = append(sharedVCs, v)
		}
	}

	// Hoist per-VC intensities out of the fixed point (TotalAPKI walks the
	// accessor map on every call; the loops below used to re-sum it per bank
	// per iteration).
	apkiOf := make([]float64, len(mix.VCs))
	for v := range mix.VCs {
		apkiOf[v] = mix.VCs[v].TotalAPKI()
	}

	sizes := make([]float64, len(mix.VCs))
	ratios := make([]float64, len(mix.VCs))
	// Initial guess: private VCs get a bank, shared split the rest evenly.
	for b := 0; b < nBanks; b++ {
		if v := privAt[b]; v >= 0 {
			sizes[v] = bankLines
		}
	}
	for _, v := range sharedVCs {
		sizes[v] = bankLines * float64(nBanks) / float64(len(sharedVCs)+1)
	}

	// Global fixed point: each bank splits LRU-proportionally between its
	// local private stream and 1/N of every shared stream. sharedTotal is
	// indexed parallel to sharedVCs (it was a map keyed by VC id; reads were
	// already in sharedVCs order, so the dense form is value-identical).
	wShared := make([]float64, len(sharedVCs))
	sharedTotal := make([]float64, len(sharedVCs))
	for iter := 0; iter < 100; iter++ {
		for v := range mix.VCs {
			ratios[v] = mix.VCs[v].MissRatio.Eval(sizes[v])
		}
		for i := range sharedTotal {
			sharedTotal[i] = 0
		}
		maxDelta := 0.0
		for b := 0; b < nBanks; b++ {
			pv := privAt[b]
			wPriv := 0.0
			if pv >= 0 {
				wPriv = apkiOf[pv]*ratios[pv] + 1e-3
			}
			total := wPriv
			for i, v := range sharedVCs {
				wShared[i] = (apkiOf[v]*ratios[v] + 1e-3) / float64(nBanks)
				total += wShared[i]
			}
			if total <= 0 {
				continue
			}
			if pv >= 0 {
				target := bankLines * wPriv / total
				if max := mix.VCs[pv].MissRatio.MaxX(); target > max {
					target = max
				}
				next := 0.5*sizes[pv] + 0.5*target
				if d := abs(next - sizes[pv]); d > maxDelta {
					maxDelta = d
				}
				sizes[pv] = next
			}
			for i := range sharedVCs {
				sharedTotal[i] += bankLines * wShared[i] / total
			}
		}
		for i, v := range sharedVCs {
			target := sharedTotal[i]
			if max := mix.VCs[v].MissRatio.MaxX(); target > max {
				target = max
			}
			next := 0.5*sizes[v] + 0.5*target
			if d := abs(next - sizes[v]); d > maxDelta {
				maxDelta = d
			}
			sizes[v] = next
		}
		if maxDelta < 1 {
			break
		}
	}
	for v := range mix.VCs {
		ratios[v] = mix.VCs[v].MissRatio.Eval(sizes[v])
	}

	// Distances: private data is local; shared data is uniformly spread
	// (means precomputed by the topology with identical arithmetic).
	topo := env.Chip.Topo
	sched := Sched{
		Name:       "R-NUCA",
		ThreadCore: threads,
		VCSizes:    sizes,
		VCRatios:   ratios,
	}
	sched.Inputs = buildInputs(ar, env, mix, ratios, func(t, v int) (float64, float64) {
		if mix.VCs[v].Kind == workload.ThreadPrivate {
			return 0, env.Chip.Topo.AvgMemDistance(threads[t])
		}
		return topo.MeanDistanceFrom(threads[t]), topo.MeanMemDistance()
	})
	return sched, nil
}
