package policy

import (
	"cdcs/internal/mesh"
	"cdcs/internal/workload"
)

// buildSNUCA models a static NUCA: every VC's lines are spread over all
// banks by the line-bank hash, so every access travels the mean core-to-bank
// distance, and all VCs contend for the whole LLC under shared LRU. The mean
// distances come precomputed from the topology (identical arithmetic, done
// once per mesh instead of once per build).
func buildSNUCA(ar *Arena, env Env, mix *workload.Mix, threads []mesh.Tile) (Sched, error) {
	sizes, ratios := sharedLRUFixedPoint(mix.VCs, nil, env.Chip.TotalLines())

	topo := env.Chip.Topo
	sched := Sched{
		Name:       "S-NUCA",
		ThreadCore: threads,
		VCSizes:    sizes,
		VCRatios:   ratios,
	}
	sched.Inputs = buildInputs(ar, env, mix, ratios, func(t, v int) (float64, float64) {
		return topo.MeanDistanceFrom(threads[t]), topo.MeanMemDistance()
	})
	return sched, nil
}

// sharedLRUFixedPoint models VCs contending for a shared LRU pool of
// capacity lines: steady-state occupancy is proportional to insertion rate
// (miss rate × access intensity), which is the classic shared-cache
// occupancy model. restrict optionally limits which VCs participate (nil =
// all); excluded VCs get zero. Returns per-VC sizes and effective ratios.
func sharedLRUFixedPoint(vcs []workload.VC, include func(int) bool, capacity float64) (sizes, ratios []float64) {
	n := len(vcs)
	sizes = make([]float64, n)
	ratios = make([]float64, n)
	active := make([]int, 0, n)
	for v := range vcs {
		if include == nil || include(v) {
			active = append(active, v)
		}
	}
	if len(active) == 0 {
		return sizes, ratios
	}
	// Hoist the per-VC access intensities: TotalAPKI walks the accessor map
	// on every call, and the fixed point below used to re-sum it on every
	// iteration of every VC.
	apki := make([]float64, len(active))
	for i, v := range active {
		apki[i] = vcs[v].TotalAPKI()
	}
	// Start from an equal split; iterate occupancy ∝ insertion rate.
	for _, v := range active {
		sizes[v] = capacity / float64(len(active))
	}
	ws := make([]float64, len(active))
	for iter := 0; iter < 100; iter++ {
		totalW := 0.0
		for i, v := range active {
			r := vcs[v].MissRatio.Eval(sizes[v])
			// Small floor keeps fully-fitting VCs resident (they still own
			// their working set even with near-zero insertions).
			w := apki[i]*r + 1e-3
			ws[i] = w
			totalW += w
		}
		maxDelta := 0.0
		for i, v := range active {
			target := capacity * ws[i] / totalW
			// A VC never needs more than its curve domain.
			if max := vcs[v].MissRatio.MaxX(); target > max {
				target = max
			}
			next := 0.5*sizes[v] + 0.5*target
			if d := abs(next - sizes[v]); d > maxDelta {
				maxDelta = d
			}
			sizes[v] = next
		}
		if maxDelta < 1 {
			break
		}
	}
	for _, v := range active {
		ratios[v] = vcs[v].MissRatio.Eval(sizes[v])
	}
	return sizes, ratios
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
