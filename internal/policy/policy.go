// Package policy implements the NUCA organizations the paper compares:
// S-NUCA (static spreading), R-NUCA (class-based placement), Jigsaw
// (partitioned NUCA with miss-curve allocation and greedy placement, under
// clustered or random thread scheduling), and CDCS itself (via
// internal/core). Each policy turns a workload mix into per-thread
// perfmodel inputs: effective VC sizes and miss ratios, and access-weighted
// hop distances.
package policy

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"cdcs/internal/alloc"
	"cdcs/internal/core"
	"cdcs/internal/mesh"
	"cdcs/internal/perfmodel"
	"cdcs/internal/place"
	"cdcs/internal/workload"
)

// Kind selects the NUCA organization.
type Kind int

const (
	// SNUCA spreads every line across all banks with a fixed hash.
	SNUCA Kind = iota
	// RNUCA places private data locally and spreads shared data chip-wide.
	RNUCA
	// Jigsaw partitions banks, allocates from miss curves, places greedily.
	Jigsaw
	// CDCS co-schedules threads and data (internal/core).
	CDCS
)

// ThreadSched selects how threads land on cores for schemes that do not
// place threads themselves.
type ThreadSched int

const (
	// Clustered packs threads in index order (Jigsaw+C).
	Clustered ThreadSched = iota
	// Random places threads on a random permutation of cores (Jigsaw+R).
	Random
	// Placed lets the policy place threads (CDCS only).
	Placed
)

// Scheme is a complete policy selection.
type Scheme struct {
	Kind    Kind
	Threads ThreadSched
	// Feats applies to CDCS (factor analysis); ignored otherwise.
	Feats core.Features
	// BankGranular applies to CDCS (§VI-C coarse allocation).
	BankGranular bool
	// Label overrides the derived name when non-empty.
	Label string
}

// Standard schemes from the evaluation.
var (
	SchemeSNUCA   = Scheme{Kind: SNUCA, Threads: Random, Label: "S-NUCA"}
	SchemeRNUCA   = Scheme{Kind: RNUCA, Threads: Random, Label: "R-NUCA"}
	SchemeJigsawC = Scheme{Kind: Jigsaw, Threads: Clustered, Label: "Jigsaw+C"}
	SchemeJigsawR = Scheme{Kind: Jigsaw, Threads: Random, Label: "Jigsaw+R"}
	SchemeCDCS    = Scheme{Kind: CDCS, Threads: Placed, Feats: core.AllCDCS(), Label: "CDCS"}
)

// Name returns a printable scheme name.
func (s Scheme) Name() string {
	if s.Label != "" {
		return s.Label
	}
	switch s.Kind {
	case SNUCA:
		return "S-NUCA"
	case RNUCA:
		return "R-NUCA"
	case Jigsaw:
		if s.Threads == Clustered {
			return "Jigsaw+C"
		}
		return "Jigsaw+R"
	case CDCS:
		return "CDCS"
	}
	return fmt.Sprintf("Scheme(%d)", int(s.Kind))
}

// Env bundles the modeled machine.
type Env struct {
	Chip   place.Chip
	Model  alloc.LatencyModel
	Params perfmodel.Params
}

// DefaultEnv returns the paper's 64-tile CMP (Table 2): 8×8 mesh, 512KB
// banks, with the latency constants shared between the allocator and the
// performance model.
func DefaultEnv() Env {
	p := perfmodel.DefaultParams()
	return Env{
		Chip: place.Chip{Topo: mesh.New(8, 8), BankLines: 8192},
		Model: alloc.LatencyModel{
			MemLatency: p.MemZeroLoad + p.MemBurst,
			HopLatency: p.HopLatency,
			RoundTrip:  p.RoundTrip,
		},
		Params: p,
	}
}

// ScaledEnv returns an env with a w×h mesh (e.g. the §II-B 6×6 chip).
func ScaledEnv(w, h int) Env {
	e := DefaultEnv()
	e.Chip = place.Chip{Topo: mesh.New(w, h), BankLines: 8192}
	return e
}

// Sched is a policy's output: everything the performance model and the
// experiment harness need.
type Sched struct {
	// Name echoes the scheme.
	Name string
	// ThreadCore maps thread to core tile.
	ThreadCore []mesh.Tile
	// VCSizes is each VC's effective capacity in lines.
	VCSizes []float64
	// VCRatios is each VC's effective miss ratio at that capacity.
	VCRatios []float64
	// Inputs feeds perfmodel.Evaluate, parallel to mix.Threads.
	Inputs []perfmodel.ThreadInput
	// Core carries the reconfiguration detail for partitioned schemes
	// (timings, trades); nil otherwise.
	Core *core.Result
}

// Arena holds reusable scratch for schedule construction: the placement
// arena plus the policy layer's own buffers (thread orderings, perfmodel
// inputs). Reusing one arena across Build calls makes the per-cell schedule
// hot path allocation-free in steady state. Not safe for concurrent use; a
// Sched built with a non-nil arena borrows its memory and stays valid only
// until the arena's next Build.
type Arena struct {
	core    core.Arena
	order   []int
	threads []mesh.Tile
	keys    []int
	inputs  []perfmodel.ThreadInput
	acc     []perfmodel.VCAccess
}

// NewArena returns an empty arena; buffers grow on first use.
func NewArena() *Arena { return &Arena{} }

// grow returns a zeroed slice of length n, reusing buf's capacity.
func grow[T any](buf *[]T, n int) []T {
	s := *buf
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// Build computes the schedule for a scheme on a mix. rng drives random
// thread placement only (seed it for reproducibility); deterministic schemes
// ignore it.
func Build(env Env, s Scheme, mix *workload.Mix, rng *rand.Rand) (Sched, error) {
	return BuildWith(env, s, mix, rng, nil)
}

// BuildWith is Build with a reusable arena; pass nil for an independent
// schedule, or a pooled arena to build allocation-free in steady state (the
// returned Sched then borrows the arena — extract what you need before the
// arena's next use).
func BuildWith(env Env, s Scheme, mix *workload.Mix, rng *rand.Rand, ar *Arena) (Sched, error) {
	if ar == nil {
		ar = NewArena()
	}
	if len(mix.Threads) > env.Chip.Banks() {
		return Sched{}, fmt.Errorf("policy: %d threads exceed %d cores", len(mix.Threads), env.Chip.Banks())
	}
	threads, err := scheduleThreads(ar, env, s, mix, rng)
	if err != nil {
		return Sched{}, err
	}
	switch s.Kind {
	case SNUCA:
		return buildSNUCA(ar, env, mix, threads)
	case RNUCA:
		return buildRNUCA(ar, env, mix, threads)
	case Jigsaw:
		return buildPartitioned(ar, env, s, mix, threads)
	case CDCS:
		return buildPartitioned(ar, env, s, mix, threads)
	default:
		return Sched{}, fmt.Errorf("policy: unknown kind %d", s.Kind)
	}
}

// scheduleThreads produces the fixed thread placement for non-placing
// schemes (CDCS ignores it unless thread placement is disabled).
func scheduleThreads(ar *Arena, env Env, s Scheme, mix *workload.Mix, rng *rand.Rand) ([]mesh.Tile, error) {
	n := len(mix.Threads)
	switch s.Threads {
	case Clustered, Placed:
		return clusteredByBench(ar, env, mix), nil
	case Random:
		if rng == nil {
			return nil, fmt.Errorf("policy: random thread scheduling needs an rng")
		}
		return place.RandomThreads(env.Chip, n, rng.Perm(env.Chip.Banks())), nil
	}
	return nil, fmt.Errorf("policy: unknown thread scheduler %d", s.Threads)
}

// clusteredByBench implements the paper's clustered scheduler: threads are
// packed onto consecutive tiles grouped by application type, so instances of
// the same benchmark sit next to each other (§II-B: "applications are
// grouped by type", e.g. the six copies of omnet in the top-left corner).
// This is what creates the pathological capacity contention of Fig. 1b.
func clusteredByBench(ar *Arena, env Env, mix *workload.Mix) []mesh.Tile {
	order := grow(&ar.order, len(mix.Threads))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		ta, tb := &mix.Threads[a], &mix.Threads[b]
		ba, bb := mix.Procs[ta.Proc].Bench, mix.Procs[tb.Proc].Bench
		if ba != bb {
			if ba < bb {
				return -1
			}
			return 1
		}
		if ta.Proc != tb.Proc {
			return ta.Proc - tb.Proc
		}
		return ta.ID - tb.ID
	})
	out := grow(&ar.threads, len(mix.Threads))
	for pos, tid := range order {
		out[tid] = mesh.Tile(pos % env.Chip.Banks())
	}
	return out
}

// buildPartitioned runs the Jigsaw/CDCS reconfiguration pipeline and derives
// perfmodel inputs from the resulting assignment.
func buildPartitioned(ar *Arena, env Env, s Scheme, mix *workload.Mix, fixed []mesh.Tile) (Sched, error) {
	feats := s.Feats
	if s.Kind == Jigsaw {
		feats = core.Features{} // miss-curve allocation, fixed threads, greedy
	}
	cfg := core.Config{
		Chip:         env.Chip,
		Model:        env.Model,
		BankGranular: s.BankGranular,
		Feats:        feats,
	}
	res, err := core.ReconfigureWith(cfg, mix, fixed, &ar.core)
	if err != nil {
		return Sched{}, err
	}
	sched := Sched{
		Name:       s.Name(),
		ThreadCore: res.ThreadCore,
		VCSizes:    res.VCSizes,
		VCRatios:   make([]float64, len(mix.VCs)),
		Core:       &res,
	}
	for v := range mix.VCs {
		sched.VCRatios[v] = mix.VCs[v].MissRatio.Eval(res.VCSizes[v])
	}
	sched.Inputs = buildInputs(ar, env, mix, sched.VCRatios, func(t int, v int) (float64, float64) {
		return assignmentHops(env, &res.Assignment[v], res.VCSizes[v], sched.ThreadCore[t])
	})
	return sched, nil
}

// assignmentHops returns (access hops, memory hops) for a thread accessing a
// VC spread per the assignment. Zero-size VCs behave as misses served
// through the local bank (the line is still looked up somewhere: S-NUCA-like
// hashing over the VC's notional home, which CDCS maps to the nearest bank).
func assignmentHops(env Env, alloc *place.BankAlloc, size float64, core mesh.Tile) (float64, float64) {
	if size <= 0 || alloc.Len() == 0 {
		// No capacity: the access checks its (local) home bank and misses.
		return 0, env.Chip.Topo.AvgMemDistance(core)
	}
	var hops, memHops float64
	for _, b := range alloc.Banks() {
		frac := alloc.Get(b) / size
		hops += frac * float64(env.Chip.Topo.Distance(core, b))
		memHops += frac * env.Chip.Topo.AvgMemDistance(b)
	}
	return hops, memHops
}

// buildInputs assembles perfmodel threads from per-(thread,VC) hop
// functions. ratios are per-VC effective miss ratios. The inputs and their
// access lists are arena-backed.
func buildInputs(ar *Arena, env Env, mix *workload.Mix, ratios []float64, hops func(t, v int) (float64, float64)) []perfmodel.ThreadInput {
	inputs := grow(&ar.inputs, len(mix.Threads))
	total := 0
	for t := range mix.Threads {
		total += len(mix.Threads[t].Access)
	}
	if cap(ar.acc) < total {
		ar.acc = make([]perfmodel.VCAccess, 0, total)
	}
	acc := ar.acc[:0]
	for t := range mix.Threads {
		th := &mix.Threads[t]
		in := perfmodel.ThreadInput{CPIBase: th.CPIBase, MLP: th.MLP}
		// VC-id order keeps the Accesses slice (and the model's reductions
		// over it) independent of map iteration order.
		keys := ar.keys[:0]
		for v := range th.Access {
			keys = append(keys, v)
		}
		sort.Ints(keys)
		ar.keys = keys
		start := len(acc)
		for _, v := range keys {
			ah, mh := hops(t, v)
			acc = append(acc, perfmodel.VCAccess{
				APKI:      th.Access[v],
				MissRatio: ratios[v],
				AvgHops:   ah,
				MemHops:   mh,
			})
		}
		in.Accesses = acc[start:len(acc):len(acc)]
		inputs[t] = in
	}
	ar.acc = acc
	return inputs
}
