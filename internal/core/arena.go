package core

import (
	"cdcs/internal/alloc"
	"cdcs/internal/place"
)

// Arena bundles the reusable storage for one reconfiguration pipeline:
// placement scratch (steps 2-4) and capacity-allocation scratch (step 1).
// With a warm arena and a sealed mix, a steady-state ReconfigureWith round
// allocates nothing end to end.
//
// An Arena is not safe for concurrent use. Results built with it borrow its
// memory and stay valid only until its next use.
type Arena struct {
	Place place.Arena
	Alloc alloc.Arena
}

// NewArena returns an empty arena; buffers grow on first use.
func NewArena() *Arena { return &Arena{} }
