package core

import (
	"math/rand"
	"testing"

	"cdcs/internal/alloc"
	"cdcs/internal/mesh"
	"cdcs/internal/place"
	"cdcs/internal/workload"
)

// testConfig returns the paper's 64-tile configuration scaled constants.
func testConfig(w, h int, feats Features) Config {
	return Config{
		Chip:  place.Chip{Topo: mesh.New(w, h), BankLines: 8192},
		Model: alloc.LatencyModel{MemLatency: 150, HopLatency: 4, RoundTrip: 2},
		Feats: feats,
	}
}

func clustered(cfg Config, n int) []mesh.Tile {
	return place.ClusteredThreads(cfg.Chip, n)
}

func TestReconfigureCaseStudyShape(t *testing.T) {
	// §II-B: 36-tile chip, 6×omnet + 14×milc + 2×ilbdc(8t). CDCS should give
	// omnet multi-bank VCs, milc nearly nothing, and ilbdc its footprint.
	cfg := testConfig(6, 6, AllCDCS())
	mix := workload.CaseStudy()
	res, err := Reconfigure(cfg, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	demands := make([]place.Demand, len(mix.VCs))
	for v := range mix.VCs {
		demands[v] = place.NewDemand(res.VCSizes[v], mix.VCs[v].Accessors)
	}
	if err := res.Assignment.Validate(cfg.Chip, demands, 1); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}

	var omnetSize, milcSize, ilbdcShared float64
	var omnetN, milcN, ilbdcN int
	for v := range mix.VCs {
		proc := mix.Procs[mix.VCs[v].Proc]
		switch {
		case proc.Bench == "omnet":
			omnetSize += res.VCSizes[v]
			omnetN++
		case proc.Bench == "milc":
			milcSize += res.VCSizes[v]
			milcN++
		case proc.Bench == "ilbdc" && mix.VCs[v].Kind == workload.ProcessShared:
			ilbdcShared += res.VCSizes[v]
			ilbdcN++
		}
	}
	omnetAvgMB := omnetSize / float64(omnetN) / workload.LinesPerMB
	if omnetAvgMB < 2.0 || omnetAvgMB > 3.5 {
		t.Errorf("omnet VCs average %.2f MB, want ~2.5MB (paper)", omnetAvgMB)
	}
	if milcAvg := milcSize / float64(milcN) / workload.LinesPerMB; milcAvg > 0.15 {
		t.Errorf("milc VCs average %.2f MB, want near zero (streaming)", milcAvg)
	}
	if avg := ilbdcShared / float64(ilbdcN) / workload.LinesPerMB; avg < 0.3 || avg > 1.0 {
		t.Errorf("ilbdc shared VCs average %.2f MB, want ~0.5MB", avg)
	}
}

func TestReconfigureSpreadsOmnetClustersIlbdc(t *testing.T) {
	// The Fig. 1d behaviour: omnet threads spread out, ilbdc threads
	// clustered around their shared data.
	cfg := testConfig(6, 6, AllCDCS())
	mix := workload.CaseStudy()
	res, err := Reconfigure(cfg, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Collect thread ids.
	var omnetThreads []int
	ilbdcThreads := map[int][]int{} // per process
	for _, p := range mix.Procs {
		switch p.Bench {
		case "omnet":
			omnetThreads = append(omnetThreads, p.ThreadIDs...)
		case "ilbdc":
			ilbdcThreads[p.ThreadIDs[0]] = p.ThreadIDs
		}
	}
	// omnet: minimum pairwise distance should be > 1 (not adjacent-packed).
	minD := 1 << 30
	for i := 0; i < len(omnetThreads); i++ {
		for j := i + 1; j < len(omnetThreads); j++ {
			d := cfg.Chip.Topo.Distance(res.ThreadCore[omnetThreads[i]], res.ThreadCore[omnetThreads[j]])
			if d < minD {
				minD = d
			}
		}
	}
	if minD < 2 {
		t.Errorf("omnet min pairwise distance %d, want >=2 (spread)", minD)
	}
	// ilbdc: each process's threads should be mutually close (clustered).
	for _, ids := range ilbdcThreads {
		maxD := 0
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				d := cfg.Chip.Topo.Distance(res.ThreadCore[ids[i]], res.ThreadCore[ids[j]])
				if d > maxD {
					maxD = d
				}
			}
		}
		if maxD > 6 {
			t.Errorf("ilbdc process spread %d hops, want clustered (<=6)", maxD)
		}
	}
}

func TestFactorFlagsChangeBehaviour(t *testing.T) {
	mix := workload.RandomST(rand.New(rand.NewSource(3)), workload.SPECCPU(), 16)
	base := testConfig(8, 8, Features{})
	fixed := clustered(base, len(mix.Threads))

	// Jigsaw-like (all off): uses all capacity.
	resJ, err := Reconfigure(base, mix, fixed)
	if err != nil {
		t.Fatal(err)
	}
	usedJ := 0.0
	for _, s := range resJ.VCSizes {
		usedJ += s
	}
	if usedJ < base.Chip.TotalLines()-1 {
		t.Errorf("miss-only allocation used %g of %g lines", usedJ, base.Chip.TotalLines())
	}
	// Threads untouched.
	for i, c := range resJ.ThreadCore {
		if c != fixed[i] {
			t.Fatalf("thread %d moved without +T", i)
		}
	}
	if resJ.Trades != 0 {
		t.Error("trades executed without +D")
	}

	// +L: with only fitting and streaming apps, capacity must be left
	// unused (friendly decay-curve apps can legitimately soak everything,
	// so use a deterministic mix where the sweet spot is unambiguous).
	cpu := workload.SPECCPU()
	mixL := workload.NewMix()
	for i := 0; i < 2; i++ {
		mixL.AddST(workload.ByName(cpu, "omnet"))
		mixL.AddST(workload.ByName(cpu, "milc"))
	}
	cfgL := base
	cfgL.Feats.LatencyAware = true
	fixedL := clustered(cfgL, len(mixL.Threads))
	resL, err := Reconfigure(cfgL, mixL, fixedL)
	if err != nil {
		t.Fatal(err)
	}
	resJL, err := Reconfigure(base, mixL, fixedL)
	if err != nil {
		t.Fatal(err)
	}
	usedL, usedJL := 0.0, 0.0
	for v := range resL.VCSizes {
		usedL += resL.VCSizes[v]
		usedJL += resJL.VCSizes[v]
	}
	if usedL >= usedJL {
		t.Errorf("latency-aware allocation used %g lines, miss-only %g: want less", usedL, usedJL)
	}
	if usedL > 8*workload.LinesPerMB {
		t.Errorf("latency-aware used %.1f MB for 2 omnet + 2 milc, want ~5MB", usedL/workload.LinesPerMB)
	}

	// +T: thread placement differs from clustered and lowers Eq. 2.
	cfgT := base
	cfgT.Feats.ThreadPlace = true
	resT, err := Reconfigure(cfgT, mix, fixed)
	if err != nil {
		t.Fatal(err)
	}
	latJ := resJ.OnChipLatency(base, mix)
	latT := resT.OnChipLatency(cfgT, mix)
	if latT >= latJ {
		t.Errorf("+T on-chip latency %g not better than clustered %g", latT, latJ)
	}

	// +D: trades reduce latency further from the greedy start.
	cfgD := base
	cfgD.Feats.RefinedTrades = true
	resD, err := Reconfigure(cfgD, mix, fixed)
	if err != nil {
		t.Fatal(err)
	}
	latD := resD.OnChipLatency(cfgD, mix)
	if latD > latJ+1e-6 {
		t.Errorf("+D latency %g worse than greedy %g", latD, latJ)
	}
}

func TestFullCDCSBeatsBaselines(t *testing.T) {
	// On random 64-app mixes, full CDCS on-chip latency beats Jigsaw with
	// clustered or random threads.
	rng := rand.New(rand.NewSource(7))
	mix := workload.RandomST(rng, workload.SPECCPU(), 64)
	cfgCDCS := testConfig(8, 8, AllCDCS())
	resC, err := Reconfigure(cfgCDCS, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfgJ := testConfig(8, 8, Features{})
	fixedC := clustered(cfgJ, 64)
	resJC, err := Reconfigure(cfgJ, mix, fixedC)
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(8)).Perm(64)
	resJR, err := Reconfigure(cfgJ, mix, place.RandomThreads(cfgJ.Chip, 64, perm))
	if err != nil {
		t.Fatal(err)
	}
	latC := resC.OnChipLatency(cfgCDCS, mix)
	latJC := resJC.OnChipLatency(cfgJ, mix)
	latJR := resJR.OnChipLatency(cfgJ, mix)
	if latC >= latJC || latC >= latJR {
		t.Errorf("CDCS on-chip latency %g not better than Jigsaw+C %g / Jigsaw+R %g", latC, latJC, latJR)
	}
}

func TestBankGranularAllocation(t *testing.T) {
	cfg := testConfig(8, 8, AllCDCS())
	cfg.BankGranular = true
	mix := workload.RandomST(rand.New(rand.NewSource(11)), workload.SPECCPU(), 32)
	res, err := Reconfigure(cfg, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range res.VCSizes {
		if rem := s - float64(int(s/8192))*8192; rem > 1e-6 {
			t.Errorf("VC %d size %g not bank-aligned", v, s)
		}
	}
}

func TestReconfigureErrors(t *testing.T) {
	cfg := testConfig(2, 2, AllCDCS())
	mix := workload.RandomST(rand.New(rand.NewSource(1)), workload.SPECCPU(), 5)
	if _, err := Reconfigure(cfg, mix, nil); err == nil {
		t.Error("5 threads on 4 cores accepted")
	}
	cfg2 := testConfig(8, 8, Features{})
	mix2 := workload.RandomST(rand.New(rand.NewSource(1)), workload.SPECCPU(), 4)
	if _, err := Reconfigure(cfg2, mix2, []mesh.Tile{0}); err == nil {
		t.Error("short fixed placement accepted")
	}
}

func TestTimingPopulated(t *testing.T) {
	cfg := testConfig(8, 8, AllCDCS())
	mix := workload.RandomST(rand.New(rand.NewSource(2)), workload.SPECCPU(), 64)
	res, err := Reconfigure(cfg, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Total() <= 0 {
		t.Error("timing not recorded")
	}
}

func TestReconfigureDeterministic(t *testing.T) {
	cfg := testConfig(8, 8, AllCDCS())
	run := func() Result {
		mix := workload.RandomST(rand.New(rand.NewSource(5)), workload.SPECCPU(), 48)
		res, err := Reconfigure(cfg, mix, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.VCSizes {
		if a.VCSizes[i] != b.VCSizes[i] {
			t.Fatalf("VC %d size differs across identical runs", i)
		}
	}
	for i := range a.ThreadCore {
		if a.ThreadCore[i] != b.ThreadCore[i] {
			t.Fatalf("thread %d core differs across identical runs", i)
		}
	}
}

func TestMultithreadedMixPlacement(t *testing.T) {
	// Fig. 16 case study: mgrid (private-heavy) spreads, md/ilbdc/nab
	// (shared-heavy) cluster. 32 threads on 64 cores.
	cfg := testConfig(8, 8, AllCDCS())
	mix := workload.Fig16CaseStudy()
	res, err := Reconfigure(cfg, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	spreadOf := func(ids []int) float64 {
		sum, n := 0.0, 0
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				sum += float64(cfg.Chip.Topo.Distance(res.ThreadCore[ids[i]], res.ThreadCore[ids[j]]))
				n++
			}
		}
		return sum / float64(n)
	}
	var mgridSpread float64
	sharedSpreads := map[string]float64{}
	for _, p := range mix.Procs {
		s := spreadOf(p.ThreadIDs)
		if p.Bench == "mgrid" {
			mgridSpread = s
		} else {
			sharedSpreads[p.Bench] = s
		}
	}
	for bench, s := range sharedSpreads {
		if s >= mgridSpread {
			t.Errorf("%s (shared-heavy) spread %.2f not tighter than mgrid %.2f", bench, s, mgridSpread)
		}
	}
}
