// Package core implements the paper's primary contribution: the CDCS
// reconfiguration runtime (§IV, Fig. 4). Every reconfiguration period the
// OS-level runtime reads per-VC miss curves and runs four steps:
//
//  1. latency-aware capacity allocation (Peekahead over total-latency curves),
//  2. optimistic contention-aware VC placement,
//  3. thread placement at the access-weighted centers of mass,
//  4. refined VC placement (greedy + bounded-spiral trades).
//
// Each step can be disabled independently, which yields the paper's factor
// analysis (+L, +T, +D in Fig. 12) and the Jigsaw baseline (all off: miss-
// curve allocation, fixed threads, greedy placement only).
package core

import (
	"fmt"
	"time"

	"cdcs/internal/alloc"
	"cdcs/internal/curves"
	"cdcs/internal/mesh"
	"cdcs/internal/place"
	"cdcs/internal/workload"
)

// Features selects which CDCS techniques run (Fig. 12's factor analysis).
type Features struct {
	// LatencyAware allocates from total-latency curves (+L); off allocates
	// from miss curves only and always uses all capacity, like Jigsaw.
	LatencyAware bool
	// ThreadPlace runs CDCS thread placement (+T); off keeps the caller's
	// fixed thread placement (clustered or random schedulers).
	ThreadPlace bool
	// RefinedTrades runs the trade pass after greedy placement (+D).
	RefinedTrades bool
}

// AllCDCS enables every CDCS technique (+LTD).
func AllCDCS() Features {
	return Features{LatencyAware: true, ThreadPlace: true, RefinedTrades: true}
}

// Config parameterizes the runtime.
type Config struct {
	// Chip is the placement substrate.
	Chip place.Chip
	// Model holds the latency constants used to build cost curves.
	Model alloc.LatencyModel
	// ChunkLines is the allocation/placement granularity (64KB=1024 lines in
	// the paper). Zero selects bankLines/8.
	ChunkLines float64
	// BankGranular forces whole-bank allocations (§VI-C's coarse variant).
	BankGranular bool
	// Feats selects the enabled techniques.
	Feats Features
}

// chunk returns the effective allocation granularity.
func (c Config) chunk() float64 {
	if c.BankGranular {
		return c.Chip.BankLines
	}
	if c.ChunkLines > 0 {
		return c.ChunkLines
	}
	return c.Chip.BankLines / 8
}

// Timing records wall time per reconfiguration step (Table 3).
type Timing struct {
	Alloc       time.Duration
	VCPlace     time.Duration
	ThreadPlace time.Duration
	DataPlace   time.Duration
}

// Total sums all steps.
func (t Timing) Total() time.Duration {
	return t.Alloc + t.VCPlace + t.ThreadPlace + t.DataPlace
}

// Result is a complete co-schedule: VC sizes, data placement, and thread
// placement, plus step timings and trade statistics.
type Result struct {
	// VCSizes[v] is VC v's capacity allocation in lines.
	VCSizes []float64
	// Assignment maps each VC to per-bank lines.
	Assignment place.Assignment
	// ThreadCore maps each thread to its core tile.
	ThreadCore []mesh.Tile
	// Optimistic is the intermediate contention-aware placement (step 2).
	Optimistic place.Optimistic
	// Trades counts executed refinement trades; TradeGain is their total
	// Eq. 2 latency reduction (≤ 0).
	Trades    int
	TradeGain float64
	// Timing records per-step wall time.
	Timing Timing
}

// Reconfigure runs one full reconfiguration for the mix. fixedThreads
// supplies the thread placement used when Feats.ThreadPlace is off (and
// seeds nothing otherwise); it must cover all threads in the mix. It returns
// an error when the mix does not fit the chip (more threads than cores) or
// when inputs are inconsistent.
func Reconfigure(cfg Config, mix *workload.Mix, fixedThreads []mesh.Tile) (Result, error) {
	return ReconfigureWith(cfg, mix, fixedThreads, nil)
}

// ReconfigureWith is Reconfigure with a reusable arena: passing a non-nil
// arena makes a steady-state round — capacity allocation (step 1) and the
// placement pipeline (steps 2-4) — allocation-free across rounds, and a
// sealed mix (workload.Mix.Seal) additionally skips every per-round map walk.
// The returned Result then borrows the arena's memory (VCSizes, Assignment,
// ThreadCore, Optimistic) and stays valid only until the arena's next use;
// pass nil to get an independent Result.
func ReconfigureWith(cfg Config, mix *workload.Mix, fixedThreads []mesh.Tile, ar *Arena) (Result, error) {
	nThreads := len(mix.Threads)
	if nThreads > cfg.Chip.Banks() {
		return Result{}, fmt.Errorf("core: %d threads exceed %d cores", nThreads, cfg.Chip.Banks())
	}
	if !cfg.Feats.ThreadPlace {
		if len(fixedThreads) < nThreads {
			return Result{}, fmt.Errorf("core: fixed thread placement covers %d of %d threads", len(fixedThreads), nThreads)
		}
	}
	var aa *alloc.Arena
	if ar == nil {
		ar = NewArena()
	} else {
		aa = &ar.Alloc
	}
	pa := &ar.Place

	var res Result

	// Step 1: capacity allocation.
	start := time.Now()
	res.VCSizes = allocate(cfg, mix, aa)
	res.Timing.Alloc = time.Since(start)

	totalAcc := 0
	for v := range mix.VCs {
		totalAcc += len(mix.VCs[v].Accessors)
	}
	demands := pa.StartDemands(len(mix.VCs), totalAcc)
	for v := range mix.VCs {
		if ids, rates := mix.VCs[v].DenseAccessors(); ids != nil {
			// Sealed mix: the dense views are already in ascending thread-id
			// order, exactly what AppendDemand would produce — alias them.
			demands = pa.AppendDemandSorted(demands, res.VCSizes[v], ids, rates)
		} else {
			demands = pa.AppendDemand(demands, res.VCSizes[v], mix.VCs[v].Accessors)
		}
	}

	// Steps 2-4 dispatch on chip size: above place.HierarchyThreshold banks
	// the flat pipeline's O(banks²) scans would dominate, so placement runs
	// hierarchically over the mesh's cluster view. At or below the threshold
	// the hierarchical path is never taken and results are bit-identical to
	// the flat pipeline by construction.
	hier := place.Hierarchical(cfg.Chip)

	// Step 2: optimistic contention-aware VC placement.
	start = time.Now()
	if hier {
		res.Optimistic = place.HierOptimisticPlaceIn(pa, cfg.Chip, demands)
	} else {
		res.Optimistic = place.OptimisticPlaceIn(pa, cfg.Chip, demands)
	}
	res.Timing.VCPlace = time.Since(start)

	// Step 3: thread placement.
	start = time.Now()
	if !cfg.Feats.ThreadPlace {
		res.ThreadCore = append([]mesh.Tile(nil), fixedThreads[:nThreads]...)
	} else if hier {
		res.ThreadCore = place.HierPlaceThreadsIn(pa, cfg.Chip, demands, res.Optimistic, nThreads)
	} else {
		res.ThreadCore = place.PlaceThreadsIn(pa, cfg.Chip, demands, res.Optimistic, nThreads)
	}
	res.Timing.ThreadPlace = time.Since(start)

	// Step 4: refined data placement.
	start = time.Now()
	if hier {
		res.Assignment, res.Trades, res.TradeGain = place.HierGreedyRefineIn(
			pa, cfg.Chip, demands, res.ThreadCore, cfg.chunk(), cfg.Feats.RefinedTrades)
	} else {
		res.Assignment = place.GreedyIn(pa, cfg.Chip, demands, res.ThreadCore, cfg.chunk())
		if cfg.Feats.RefinedTrades {
			res.Trades, res.TradeGain = place.RefineIn(pa, cfg.Chip, demands, res.Assignment, res.ThreadCore)
		}
	}
	res.Timing.DataPlace = time.Since(start)

	return res, nil
}

// allocate sizes all VCs (step 1). Latency-aware mode uses total-latency
// curves and may leave capacity unused; otherwise miss-cost curves are used
// and all capacity is handed out (Jigsaw). A non-nil arena reuses curve
// backings, hull storage and the segment heap across calls; results are bit-
// identical either way (same knot merges, same arithmetic, same heap order).
func allocate(cfg Config, mix *workload.Mix, aa *alloc.Arena) []float64 {
	total := cfg.Chip.TotalLines()
	if aa != nil {
		dist := aa.CompactDistance(cfg.Chip.Topo, cfg.Chip.BankLines)
		costs := aa.Costs(len(mix.VCs))
		for v := range mix.VCs {
			vc := &mix.VCs[v]
			apki := vc.TotalAPKI()
			if cfg.Feats.LatencyAware {
				costs[v] = alloc.TotalLatencyCurveInto(costs[v], vc.MissRatio, apki, dist, cfg.Model, total)
			} else {
				costs[v] = alloc.MissLatencyCurveInto(costs[v], vc.MissRatio, apki, cfg.Model, total)
			}
		}
		if cfg.BankGranular {
			return alloc.PeekaheadQuantizedIn(aa, costs, total, cfg.Chip.BankLines)
		}
		if cfg.Feats.LatencyAware {
			return alloc.PeekaheadIn(aa, costs, total)
		}
		return alloc.PeekaheadFullIn(aa, costs, total)
	}
	dist := alloc.CompactDistance(cfg.Chip.Topo, cfg.Chip.BankLines)
	costs := make([]curves.Curve, len(mix.VCs))
	for v := range mix.VCs {
		vc := &mix.VCs[v]
		apki := vc.TotalAPKI()
		if cfg.Feats.LatencyAware {
			costs[v] = alloc.TotalLatencyCurve(vc.MissRatio, apki, dist, cfg.Model, total)
		} else {
			costs[v] = alloc.MissLatencyCurve(vc.MissRatio, apki, cfg.Model, total)
		}
	}
	if cfg.BankGranular {
		return alloc.PeekaheadQuantized(costs, total, cfg.Chip.BankLines)
	}
	if cfg.Feats.LatencyAware {
		return alloc.Peekahead(costs, total)
	}
	return alloc.PeekaheadFull(costs, total)
}

// OnChipLatency evaluates Eq. 2 (access·hops) for a result.
func (r Result) OnChipLatency(cfg Config, mix *workload.Mix) float64 {
	demands := make([]place.Demand, len(mix.VCs))
	for v := range mix.VCs {
		demands[v] = place.NewDemand(r.VCSizes[v], mix.VCs[v].Accessors)
	}
	return place.OnChipLatency(cfg.Chip, demands, r.Assignment, r.ThreadCore)
}
