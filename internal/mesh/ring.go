package mesh

// RingCursor enumerates the tiles of a mesh in exactly the ByDistance order
// (distance ascending from a center, ties by ascending tile index), one tile
// per Next call, without materializing the ordering. On an eager topology it
// walks the precomputed row; on a lazy one it counts over distance shells —
// for each ring d it visits rows top to bottom and, within a row, the left
// arm point before the right — which is precisely the (distance, index)
// ordering the eager counting sort produces. Cursors are values: creating
// one allocates nothing, so early-terminating spirals on 16k-tile meshes
// cost O(tiles visited), not O(n) per walk.
type RingCursor struct {
	t      *Topology
	center Tile
	last   Tile

	// Eager walk.
	row []Tile
	idx int

	// Lazy enumeration state.
	cx, cy int
	d      int // current ring distance
	y      int // current row within the ring
	side   int // 0: left arm point next, 1: right arm point next
}

// RingFrom returns a cursor over the tiles in ByDistance(center) order,
// starting at the center itself.
func (t *Topology) RingFrom(center Tile) RingCursor {
	if !t.lazy {
		return RingCursor{t: t, center: center, row: t.byDistance[center]}
	}
	cx, cy := t.Coords(center)
	return RingCursor{t: t, center: center, cx: cx, cy: cy, y: cy}
}

// Next returns the next tile in the ordering, or ok=false once all Tiles()
// tiles have been produced. The eager path stays small enough to inline, so
// cursor walks on a precomputed topology cost the same as ranging over the
// ByDistance row directly.
func (c *RingCursor) Next() (Tile, bool) {
	if c.row != nil {
		if c.idx >= len(c.row) {
			return 0, false
		}
		c.last = c.row[c.idx]
		c.idx++
		return c.last, true
	}
	return c.nextLazy()
}

// nextLazy advances the shell-enumeration state machine (lazy topologies).
func (c *RingCursor) nextLazy() (Tile, bool) {
	t := c.t
	w, h := t.width, t.height
	maxDist := t.MaxDistance()
	for {
		if c.d > maxDist {
			return 0, false
		}
		if yBot := min(h-1, c.cy+c.d); c.y > yBot {
			// Ring exhausted: advance to the next shell's top row.
			c.d++
			c.y = max(0, c.cy-c.d)
			c.side = 0
			continue
		}
		dx := c.d - abs(c.y-c.cy)
		if dx == 0 {
			c.last = Tile(c.y*w + c.cx)
			c.y++
			c.side = 0
			return c.last, true
		}
		if c.side == 0 {
			c.side = 1
			if x := c.cx - dx; x >= 0 {
				c.last = Tile(c.y*w + x)
				return c.last, true
			}
			// Left arm clipped off-mesh; fall through to the right arm.
		}
		c.side = 0
		y := c.y
		c.y++
		if x := c.cx + dx; x < w {
			c.last = Tile(y*w + x)
			return c.last, true
		}
		// Both arm points clipped; keep scanning rows.
	}
}

// Dist returns the distance from the cursor's center to the tile most
// recently returned by Next. It is only meaningful after a successful Next.
func (c *RingCursor) Dist() int {
	return c.t.Distance(c.center, c.last)
}
