// Package mesh models the on-chip network of a tiled CMP: a 2-D mesh with
// X-Y routing, one tile per router, and memory controllers at the chip edges.
//
// The rest of the system measures locality in router-to-router hop counts on
// this mesh (the paper's D(t1, t2) distance function). All placement
// algorithms in internal/place and internal/core consume distances through
// this package, so alternative topologies only need to implement the same
// distance interface.
//
// Memory model: at or below LazyThreshold tiles a Topology precomputes the
// full distance matrix and per-tile distance rings (O(n²) ints — microseconds
// of lookup in the placement hot loops, and the representation every
// committed result hash was recorded against). Above the threshold those
// arrays would need gigabytes (a 128×128 mesh is 2 GB of ring indices alone),
// so the topology switches to a lazy mode: distances come from coordinate
// arithmetic, ByDistance orderings are enumerated on demand by RingCursor,
// and the per-tile mean distances are computed in closed form. Every lazy
// answer is bit-identical to what the eager arrays would have held — integer
// hop counts and integer-sum means have exact float64 representations — so
// the mode switch is an implementation detail, not a semantic one.
package mesh

import (
	"fmt"
	"maps"
	"slices"
	"sync"
)

// Tile identifies a tile (core + LLC bank slice) by its index in row-major
// order: tile = y*Width + x.
type Tile int

// LazyThreshold is the tile count above which New builds a lazy topology:
// no O(n²) distance matrix or ring arrays, coordinate arithmetic and
// RingCursor enumeration instead. At or below the threshold the eager arrays
// survive untouched, so every existing ordering is byte-identical to prior
// releases. The value matches place.HierarchyThreshold: a chip is lazy
// exactly when placement goes hierarchical.
const LazyThreshold = 4096

// Topology is an immutable W×H mesh. The zero value is not usable; construct
// with New.
type Topology struct {
	width  int
	height int

	// lazy marks a topology built without the O(n²) arrays below (see
	// LazyThreshold). Distance queries fall back to coordinate arithmetic.
	lazy bool

	// distance[a][b] is the Manhattan distance in hops between tiles a and b.
	// Nil in lazy mode.
	distance [][]int

	// byDistance[c] lists all tiles sorted by increasing distance from c,
	// with ties broken by tile index so orderings are deterministic. Nil in
	// lazy mode (RingCursor produces the identical ordering on demand).
	byDistance [][]Tile

	// ringStart[c][d] is the index in byDistance[c] of the first tile at
	// distance >= d from c; ringStart[c] has maxDist+2 entries so that
	// byDistance[c][ringStart[c][d]:ringStart[c][d+1]] is exactly the ring of
	// tiles at distance d. Placement search uses these precomputed rings to
	// bound spirals and candidate sets without scanning the whole mesh. Nil
	// in lazy mode.
	ringStart [][]int

	// memControllers are the tiles adjacent to memory controllers. Pages are
	// interleaved across controllers, so the average distance from a tile to
	// all controllers is what matters for LLC-to-memory traffic.
	memControllers []Tile

	// avgMCDist[t] is the mean distance from tile t to the memory controllers.
	avgMCDist []float64

	// avgDist[t] is the mean distance from tile t to all tiles (the expected
	// hop count from t to a uniformly hashed bank).
	avgDist []float64

	// meanMCDist is the mean of avgMCDist over all tiles.
	meanMCDist float64

	// meanPairDist is the mean distance between two uniformly random tiles
	// (the expected hop count of an S-NUCA access).
	meanPairDist float64

	// clusters is the default cluster view (built on first use; see
	// Clusters).
	clustersOnce sync.Once
	clusters     *Clusters
}

// New builds a width×height mesh: eager at or below LazyThreshold tiles,
// lazy above it. It panics if either dimension is < 1; topology construction
// errors are programming errors, not runtime input.
func New(width, height int) *Topology {
	if width >= 1 && height >= 1 && width*height > LazyThreshold {
		return NewLazy(width, height)
	}
	return NewEager(width, height)
}

// NewEager builds a mesh with the full precomputed distance matrix and ring
// arrays regardless of size. Exported so tests and benchmarks can compare the
// two representations; production code should use New.
func NewEager(width, height int) *Topology {
	if width < 1 || height < 1 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", width, height))
	}
	n := width * height
	t := &Topology{width: width, height: height}

	t.distance = make([][]int, n)
	for a := 0; a < n; a++ {
		t.distance[a] = make([]int, n)
		ax, ay := a%width, a/width
		for b := 0; b < n; b++ {
			bx, by := b%width, b/width
			t.distance[a][b] = abs(ax-bx) + abs(ay-by)
		}
	}

	// Build byDistance with a counting sort over distance rings: two passes
	// over the tiles in ascending index order yield the canonical
	// (distance asc, index asc) ordering directly — the same ordering a
	// stable sort produces, at O(n) per center instead of O(n log n) — and
	// the ring boundaries fall out as a prefix-sum byproduct.
	maxDist := width - 1 + height - 1
	t.byDistance = make([][]Tile, n)
	t.ringStart = make([][]int, n)
	for c := 0; c < n; c++ {
		d := t.distance[c]
		start := make([]int, maxDist+2)
		for b := 0; b < n; b++ {
			start[d[b]+1]++
		}
		for r := 1; r <= maxDist+1; r++ {
			start[r] += start[r-1]
		}
		t.ringStart[c] = start
		order := make([]Tile, n)
		cursor := append([]int(nil), start...)
		for b := 0; b < n; b++ {
			order[cursor[d[b]]] = Tile(b)
			cursor[d[b]]++
		}
		t.byDistance[c] = order
	}

	t.memControllers = edgeControllers(width, height)
	t.avgMCDist = make([]float64, n)
	for a := 0; a < n; a++ {
		sum := 0
		for _, mc := range t.memControllers {
			sum += t.distance[a][mc]
		}
		t.avgMCDist[a] = float64(sum) / float64(len(t.memControllers))
	}

	// Per-tile mean distances, accumulated in ascending tile order with the
	// exact float operations the policy models previously performed inline,
	// so hoisting them here changes no result bits.
	t.avgDist = make([]float64, n)
	for a := 0; a < n; a++ {
		sum := 0.0
		for b := 0; b < n; b++ {
			sum += float64(t.distance[a][b])
		}
		t.avgDist[a] = sum / float64(n)
	}
	meanMC := 0.0
	for a := 0; a < n; a++ {
		meanMC += t.avgMCDist[a]
	}
	t.meanMCDist = meanMC / float64(n)

	total := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			total += t.distance[a][b]
		}
	}
	t.meanPairDist = float64(total) / float64(n*n)

	return t
}

// NewLazy builds a mesh without the O(n²) arrays: O(n) memory total. All
// distance queries are answered arithmetically and are bit-identical to the
// eager representation (the equality is tested exhaustively on small meshes).
// Exported for tests and benchmarks; production code should use New.
func NewLazy(width, height int) *Topology {
	if width < 1 || height < 1 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", width, height))
	}
	n := width * height
	t := &Topology{width: width, height: height, lazy: true}

	t.memControllers = edgeControllers(width, height)
	t.avgMCDist = make([]float64, n)
	for a := 0; a < n; a++ {
		sum := 0
		for _, mc := range t.memControllers {
			sum += t.Distance(Tile(a), mc)
		}
		t.avgMCDist[a] = float64(sum) / float64(len(t.memControllers))
	}

	// Closed-form per-tile distance sums. The sum of |ax-x| over a row (and
	// |ay-y| over a column) is a pair of triangular numbers, so the total
	// distance from tile a to all tiles is h·Sx(ax) + w·Sy(ay). These are
	// exact integers well below 2^53, and the eager path's float64
	// accumulation of integer hop counts is also exact, so float64(total)/n
	// reproduces the eager means bit for bit.
	lineSum := func(p, n int) int { return p*(p+1)/2 + (n-1-p)*(n-p)/2 }
	xSum := make([]int, width)
	for x := 0; x < width; x++ {
		xSum[x] = lineSum(x, width)
	}
	ySum := make([]int, height)
	for y := 0; y < height; y++ {
		ySum[y] = lineSum(y, height)
	}
	t.avgDist = make([]float64, n)
	total := 0
	for a := 0; a < n; a++ {
		sum := height*xSum[a%width] + width*ySum[a/width]
		t.avgDist[a] = float64(sum) / float64(n)
		total += sum
	}
	t.meanPairDist = float64(total) / float64(n*n)

	meanMC := 0.0
	for a := 0; a < n; a++ {
		meanMC += t.avgMCDist[a]
	}
	t.meanMCDist = meanMC / float64(n)

	return t
}

// edgeControllers spreads 8 memory controllers around the chip edge (2 per
// side, as in the paper's Fig. 3), degrading gracefully for small meshes.
func edgeControllers(width, height int) []Tile {
	at := func(x, y int) Tile { return Tile(y*width + x) }
	if width < 2 || height < 2 {
		// Degenerate mesh: put a single controller at tile 0.
		return []Tile{0}
	}
	third := func(n int) (int, int) { return n / 3, (2 * n) / 3 }
	x1, x2 := third(width)
	y1, y2 := third(height)
	mcs := []Tile{
		at(x1, 0), at(x2, 0), // top edge
		at(x1, height-1), at(x2, height-1), // bottom edge
		at(0, y1), at(0, y2), // left edge
		at(width-1, y1), at(width-1, y2), // right edge
	}
	// Dedup (small meshes can collapse positions).
	seen := make(map[Tile]bool, len(mcs))
	out := mcs[:0]
	for _, m := range mcs {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Width returns the mesh width in tiles.
func (t *Topology) Width() int { return t.width }

// Height returns the mesh height in tiles.
func (t *Topology) Height() int { return t.height }

// Tiles returns the number of tiles in the mesh.
func (t *Topology) Tiles() int { return t.width * t.height }

// Lazy reports whether the topology was built without the precomputed
// distance matrix and ring arrays (tile count above LazyThreshold). Callers
// on hot paths use it to pick allocation-free access patterns
// (FillDistanceRow, RingFrom) over the shared-slice accessors.
func (t *Topology) Lazy() bool { return t.lazy }

// Coords returns the (x, y) coordinates of a tile.
func (t *Topology) Coords(tile Tile) (x, y int) {
	return int(tile) % t.width, int(tile) / t.width
}

// TileAt returns the tile at coordinates (x, y).
func (t *Topology) TileAt(x, y int) Tile {
	return Tile(y*t.width + x)
}

// Distance returns the X-Y routing hop count between two tiles.
func (t *Topology) Distance(a, b Tile) int {
	if !t.lazy {
		return t.distance[a][b]
	}
	ax, ay := int(a)%t.width, int(a)/t.width
	bx, by := int(b)%t.width, int(b)/t.width
	return abs(ax-bx) + abs(ay-by)
}

// DistanceRow returns the hop counts from tile a to every tile, indexed by
// tile id. The slice is shared; callers must not modify it. Hot placement
// loops use it to hoist the row lookup out of per-bank iteration.
//
// In lazy mode the row is computed into a fresh allocation per call; loops
// that care should use FillDistanceRow with a reused buffer instead.
func (t *Topology) DistanceRow(a Tile) []int {
	if !t.lazy {
		return t.distance[a]
	}
	return t.FillDistanceRow(a, make([]int, t.Tiles()))
}

// FillDistanceRow writes the hop counts from tile a to every tile into row
// (which must have length Tiles()) and returns it. In eager mode it copies
// the precomputed row, so values are identical across modes by construction.
func (t *Topology) FillDistanceRow(a Tile, row []int) []int {
	if !t.lazy {
		copy(row, t.distance[a])
		return row
	}
	ax, ay := int(a)%t.width, int(a)/t.width
	i := 0
	for y := 0; y < t.height; y++ {
		dy := abs(y - ay)
		for x := 0; x < t.width; x++ {
			row[i] = abs(x-ax) + dy
			i++
		}
	}
	return row
}

// MeanDistanceFrom returns the mean hop count from tile a to all tiles: the
// expected distance to a uniformly hashed bank (S-NUCA's per-core distance).
func (t *Topology) MeanDistanceFrom(a Tile) float64 {
	return t.avgDist[a]
}

// MeanMemDistance returns the mean over all tiles of the average distance to
// the memory controllers (the chip-wide expected LLC-to-memory distance).
func (t *Topology) MeanMemDistance() float64 {
	return t.meanMCDist
}

// ByDistance returns all tiles ordered by increasing distance from center
// (deterministic tie-break by tile index). The returned slice is shared in
// eager mode and freshly built per call in lazy mode; callers must not
// modify it. Loops that terminate early on large lazy meshes should use
// RingFrom instead, which enumerates the same ordering incrementally without
// materializing it.
func (t *Topology) ByDistance(center Tile) []Tile {
	if !t.lazy {
		return t.byDistance[center]
	}
	return t.byDistanceLazy(center)
}

// byDistanceLazy materializes the ordering a lazy topology never stores,
// kept out of ByDistance so the eager fast path stays a plain inlinable
// array access (hot placement loops range over it).
func (t *Topology) byDistanceLazy(center Tile) []Tile {
	out := make([]Tile, 0, t.Tiles())
	cur := t.RingFrom(center)
	for {
		tile, ok := cur.Next()
		if !ok {
			return out
		}
		out = append(out, tile)
	}
}

// MaxDistance returns the mesh diameter: the largest possible hop count
// between two tiles (corner to corner).
func (t *Topology) MaxDistance() int {
	return t.width - 1 + t.height - 1
}

// Ring returns the tiles at exactly distance d from center, in ascending
// tile-index order (in eager mode a shared slice of ByDistance(center); do
// not modify). Out-of-range distances return an empty ring.
func (t *Topology) Ring(center Tile, d int) []Tile {
	if d < 0 || d > t.MaxDistance() {
		return nil
	}
	if !t.lazy {
		s := t.ringStart[center]
		return t.byDistance[center][s[d]:s[d+1]]
	}
	cx, cy := t.Coords(center)
	var out []Tile
	for y := max(0, cy-d); y <= min(t.height-1, cy+d); y++ {
		dx := d - abs(y-cy)
		if dx == 0 {
			out = append(out, t.TileAt(cx, y))
			continue
		}
		if x := cx - dx; x >= 0 {
			out = append(out, t.TileAt(x, y))
		}
		if x := cx + dx; x < t.width {
			out = append(out, t.TileAt(x, y))
		}
	}
	return out
}

// WithinCount returns the number of tiles at distance <= d from center: the
// length of the ByDistance(center) prefix a spiral of radius d covers.
// Negative d counts zero tiles; d beyond the diameter counts all of them.
func (t *Topology) WithinCount(center Tile, d int) int {
	if d < 0 {
		return 0
	}
	if d >= t.MaxDistance() {
		return t.Tiles()
	}
	if !t.lazy {
		return t.ringStart[center][d+1]
	}
	cx, cy := t.Coords(center)
	count := 0
	for y := max(0, cy-d); y <= min(t.height-1, cy+d); y++ {
		dx := d - abs(y-cy)
		lo := max(0, cx-dx)
		hi := min(t.width-1, cx+dx)
		count += hi - lo + 1
	}
	return count
}

// RadiusCovering returns the smallest radius r such that at least k tiles lie
// within distance r of center (the compact-footprint radius of a k-bank
// virtual cache). k above the tile count saturates to the mesh diameter;
// k <= 1 is radius 0.
func (t *Topology) RadiusCovering(center Tile, k int) int {
	if !t.lazy {
		s := t.ringStart[center]
		for r := 0; r <= t.MaxDistance(); r++ {
			if s[r+1] >= k {
				return r
			}
		}
		return t.MaxDistance()
	}
	for r := 0; r <= t.MaxDistance(); r++ {
		if t.WithinCount(center, r) >= k {
			return r
		}
	}
	return t.MaxDistance()
}

// MemControllers returns the tiles adjacent to memory controllers.
func (t *Topology) MemControllers() []Tile {
	return t.memControllers
}

// AvgMemDistance returns the mean hop count from tile a to the memory
// controllers (pages are interleaved across controllers).
func (t *Topology) AvgMemDistance(a Tile) float64 {
	return t.avgMCDist[a]
}

// MeanPairDistance returns the mean distance between two uniformly random
// tiles: the expected hop count of an S-NUCA LLC access.
func (t *Topology) MeanPairDistance() float64 {
	return t.meanPairDist
}

// CenterTile returns a tile closest to the geometric center of the chip. For
// even dimensions it picks the upper-left of the four central tiles, matching
// the paper's convention of placing large VCs "around the center of the chip".
func (t *Topology) CenterTile() Tile {
	return t.TileAt((t.width-1)/2, (t.height-1)/2)
}

// CenterOfMass computes the continuous center of mass of a weighted set of
// tiles and returns it as fractional coordinates. Zero total weight returns
// the chip center. Tiles are accumulated in index order so the result does
// not depend on map iteration order (placement tie-breaks are sensitive to
// the last ulp).
func (t *Topology) CenterOfMass(weight map[Tile]float64) (x, y float64) {
	var wx, wy, wsum float64
	for _, tile := range slices.Sorted(maps.Keys(weight)) {
		w := weight[tile]
		tx, ty := t.Coords(tile)
		wx += w * float64(tx)
		wy += w * float64(ty)
		wsum += w
	}
	if wsum == 0 {
		cx, cy := t.Coords(t.CenterTile())
		return float64(cx), float64(cy)
	}
	return wx / wsum, wy / wsum
}

// NearestTile maps fractional coordinates back to the nearest tile, clamping
// to the mesh boundary.
func (t *Topology) NearestTile(x, y float64) Tile {
	xi := clamp(int(x+0.5), 0, t.width-1)
	yi := clamp(int(y+0.5), 0, t.height-1)
	return t.TileAt(xi, yi)
}

// DistanceToPoint returns the Manhattan distance from a tile to fractional
// coordinates (used to rank cores around a thread's center of mass).
func (t *Topology) DistanceToPoint(tile Tile, x, y float64) float64 {
	tx, ty := t.Coords(tile)
	return absF(float64(tx)-x) + absF(float64(ty)-y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
