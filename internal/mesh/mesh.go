// Package mesh models the on-chip network of a tiled CMP: a 2-D mesh with
// X-Y routing, one tile per router, and memory controllers at the chip edges.
//
// The rest of the system measures locality in router-to-router hop counts on
// this mesh (the paper's D(t1, t2) distance function). All placement
// algorithms in internal/place and internal/core consume distances through
// this package, so alternative topologies only need to implement the same
// distance interface.
package mesh

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

// Tile identifies a tile (core + LLC bank slice) by its index in row-major
// order: tile = y*Width + x.
type Tile int

// Topology is an immutable W×H mesh. The zero value is not usable; construct
// with New.
type Topology struct {
	width  int
	height int

	// distance[a][b] is the Manhattan distance in hops between tiles a and b.
	distance [][]int

	// byDistance[c] lists all tiles sorted by increasing distance from c,
	// with ties broken by tile index so orderings are deterministic.
	byDistance [][]Tile

	// memControllers are the tiles adjacent to memory controllers. Pages are
	// interleaved across controllers, so the average distance from a tile to
	// all controllers is what matters for LLC-to-memory traffic.
	memControllers []Tile

	// avgMCDist[t] is the mean distance from tile t to the memory controllers.
	avgMCDist []float64

	// meanPairDist is the mean distance between two uniformly random tiles
	// (the expected hop count of an S-NUCA access).
	meanPairDist float64
}

// New builds a width×height mesh. It panics if either dimension is < 1;
// topology construction errors are programming errors, not runtime input.
func New(width, height int) *Topology {
	if width < 1 || height < 1 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", width, height))
	}
	n := width * height
	t := &Topology{width: width, height: height}

	t.distance = make([][]int, n)
	for a := 0; a < n; a++ {
		t.distance[a] = make([]int, n)
		ax, ay := a%width, a/width
		for b := 0; b < n; b++ {
			bx, by := b%width, b/width
			t.distance[a][b] = abs(ax-bx) + abs(ay-by)
		}
	}

	t.byDistance = make([][]Tile, n)
	for c := 0; c < n; c++ {
		order := make([]Tile, n)
		for i := range order {
			order[i] = Tile(i)
		}
		d := t.distance[c]
		sort.SliceStable(order, func(i, j int) bool {
			di, dj := d[order[i]], d[order[j]]
			if di != dj {
				return di < dj
			}
			return order[i] < order[j]
		})
		t.byDistance[c] = order
	}

	t.memControllers = edgeControllers(width, height)
	t.avgMCDist = make([]float64, n)
	for a := 0; a < n; a++ {
		sum := 0
		for _, mc := range t.memControllers {
			sum += t.distance[a][mc]
		}
		t.avgMCDist[a] = float64(sum) / float64(len(t.memControllers))
	}

	total := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			total += t.distance[a][b]
		}
	}
	t.meanPairDist = float64(total) / float64(n*n)

	return t
}

// edgeControllers spreads 8 memory controllers around the chip edge (2 per
// side, as in the paper's Fig. 3), degrading gracefully for small meshes.
func edgeControllers(width, height int) []Tile {
	at := func(x, y int) Tile { return Tile(y*width + x) }
	if width < 2 || height < 2 {
		// Degenerate mesh: put a single controller at tile 0.
		return []Tile{0}
	}
	third := func(n int) (int, int) { return n / 3, (2 * n) / 3 }
	x1, x2 := third(width)
	y1, y2 := third(height)
	mcs := []Tile{
		at(x1, 0), at(x2, 0), // top edge
		at(x1, height-1), at(x2, height-1), // bottom edge
		at(0, y1), at(0, y2), // left edge
		at(width-1, y1), at(width-1, y2), // right edge
	}
	// Dedup (small meshes can collapse positions).
	seen := make(map[Tile]bool, len(mcs))
	out := mcs[:0]
	for _, m := range mcs {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Width returns the mesh width in tiles.
func (t *Topology) Width() int { return t.width }

// Height returns the mesh height in tiles.
func (t *Topology) Height() int { return t.height }

// Tiles returns the number of tiles in the mesh.
func (t *Topology) Tiles() int { return t.width * t.height }

// Coords returns the (x, y) coordinates of a tile.
func (t *Topology) Coords(tile Tile) (x, y int) {
	return int(tile) % t.width, int(tile) / t.width
}

// TileAt returns the tile at coordinates (x, y).
func (t *Topology) TileAt(x, y int) Tile {
	return Tile(y*t.width + x)
}

// Distance returns the X-Y routing hop count between two tiles.
func (t *Topology) Distance(a, b Tile) int {
	return t.distance[a][b]
}

// ByDistance returns all tiles ordered by increasing distance from center
// (deterministic tie-break by tile index). The returned slice is shared;
// callers must not modify it.
func (t *Topology) ByDistance(center Tile) []Tile {
	return t.byDistance[center]
}

// MemControllers returns the tiles adjacent to memory controllers.
func (t *Topology) MemControllers() []Tile {
	return t.memControllers
}

// AvgMemDistance returns the mean hop count from tile a to the memory
// controllers (pages are interleaved across controllers).
func (t *Topology) AvgMemDistance(a Tile) float64 {
	return t.avgMCDist[a]
}

// MeanPairDistance returns the mean distance between two uniformly random
// tiles: the expected hop count of an S-NUCA LLC access.
func (t *Topology) MeanPairDistance() float64 {
	return t.meanPairDist
}

// CenterTile returns a tile closest to the geometric center of the chip. For
// even dimensions it picks the upper-left of the four central tiles, matching
// the paper's convention of placing large VCs "around the center of the chip".
func (t *Topology) CenterTile() Tile {
	return t.TileAt((t.width-1)/2, (t.height-1)/2)
}

// CenterOfMass computes the continuous center of mass of a weighted set of
// tiles and returns it as fractional coordinates. Zero total weight returns
// the chip center. Tiles are accumulated in index order so the result does
// not depend on map iteration order (placement tie-breaks are sensitive to
// the last ulp).
func (t *Topology) CenterOfMass(weight map[Tile]float64) (x, y float64) {
	var wx, wy, wsum float64
	for _, tile := range slices.Sorted(maps.Keys(weight)) {
		w := weight[tile]
		tx, ty := t.Coords(tile)
		wx += w * float64(tx)
		wy += w * float64(ty)
		wsum += w
	}
	if wsum == 0 {
		cx, cy := t.Coords(t.CenterTile())
		return float64(cx), float64(cy)
	}
	return wx / wsum, wy / wsum
}

// NearestTile maps fractional coordinates back to the nearest tile, clamping
// to the mesh boundary.
func (t *Topology) NearestTile(x, y float64) Tile {
	xi := clamp(int(x+0.5), 0, t.width-1)
	yi := clamp(int(y+0.5), 0, t.height-1)
	return t.TileAt(xi, yi)
}

// DistanceToPoint returns the Manhattan distance from a tile to fractional
// coordinates (used to rank cores around a thread's center of mass).
func (t *Topology) DistanceToPoint(tile Tile, x, y float64) float64 {
	tx, ty := t.Coords(tile)
	return absF(float64(tx)-x) + absF(float64(ty)-y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
