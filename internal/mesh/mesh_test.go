package mesh

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	cases := []struct {
		w, h int
	}{
		{1, 1}, {2, 2}, {6, 6}, {8, 8}, {4, 2},
	}
	for _, c := range cases {
		m := New(c.w, c.h)
		if m.Width() != c.w || m.Height() != c.h {
			t.Errorf("New(%d,%d): got %dx%d", c.w, c.h, m.Width(), m.Height())
		}
		if m.Tiles() != c.w*c.h {
			t.Errorf("New(%d,%d): Tiles=%d", c.w, c.h, m.Tiles())
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	m := New(8, 8)
	for i := 0; i < m.Tiles(); i++ {
		x, y := m.Coords(Tile(i))
		if m.TileAt(x, y) != Tile(i) {
			t.Fatalf("tile %d: coords (%d,%d) round-trips to %d", i, x, y, m.TileAt(x, y))
		}
	}
}

func TestDistanceKnownValues(t *testing.T) {
	m := New(8, 8)
	cases := []struct {
		a, b Tile
		want int
	}{
		{0, 0, 0},
		{0, 7, 7},   // across top row
		{0, 56, 7},  // down left column
		{0, 63, 14}, // corner to corner
		{m.TileAt(3, 3), m.TileAt(4, 3), 1},
		{m.TileAt(3, 3), m.TileAt(4, 4), 2},
	}
	for _, c := range cases {
		if got := m.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d)=%d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	m := New(6, 6)
	n := m.Tiles()
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(Tile(r.Intn(n)))
			v[1] = reflect.ValueOf(Tile(r.Intn(n)))
			v[2] = reflect.ValueOf(Tile(r.Intn(n)))
		},
	}
	// Symmetry, identity, triangle inequality.
	prop := func(a, b, c Tile) bool {
		if m.Distance(a, b) != m.Distance(b, a) {
			return false
		}
		if (m.Distance(a, b) == 0) != (a == b) {
			return false
		}
		return m.Distance(a, c) <= m.Distance(a, b)+m.Distance(b, c)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestByDistanceOrdering(t *testing.T) {
	m := New(8, 8)
	for c := 0; c < m.Tiles(); c++ {
		order := m.ByDistance(Tile(c))
		if len(order) != m.Tiles() {
			t.Fatalf("ByDistance(%d): len=%d", c, len(order))
		}
		if order[0] != Tile(c) {
			t.Errorf("ByDistance(%d): first tile is %d, want center", c, order[0])
		}
		seen := make(map[Tile]bool)
		prev := -1
		for _, tl := range order {
			if seen[tl] {
				t.Fatalf("ByDistance(%d): duplicate tile %d", c, tl)
			}
			seen[tl] = true
			d := m.Distance(Tile(c), tl)
			if d < prev {
				t.Fatalf("ByDistance(%d): distance decreased (%d after %d)", c, d, prev)
			}
			prev = d
		}
	}
}

func TestByDistanceDeterministicTieBreak(t *testing.T) {
	m := New(4, 4)
	a := m.ByDistance(0)
	b := New(4, 4).ByDistance(0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("orderings differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestByDistanceMatchesStableSort(t *testing.T) {
	// The counting-sort construction must reproduce the canonical
	// (distance asc, index asc) ordering exactly — placement tie-breaks are
	// sensitive to the last entry, so this is a bit-identity property.
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {8, 8}, {12, 7}} {
		m := New(dims[0], dims[1])
		n := m.Tiles()
		for c := 0; c < n; c++ {
			want := make([]Tile, n)
			for i := range want {
				want[i] = Tile(i)
			}
			sort.SliceStable(want, func(i, j int) bool {
				di, dj := m.Distance(Tile(c), want[i]), m.Distance(Tile(c), want[j])
				if di != dj {
					return di < dj
				}
				return want[i] < want[j]
			})
			if got := m.ByDistance(Tile(c)); !reflect.DeepEqual(got, want) {
				t.Fatalf("%dx%d ByDistance(%d) diverged from stable sort", dims[0], dims[1], c)
			}
		}
	}
}

func TestRings(t *testing.T) {
	m := New(8, 8)
	if got, want := m.MaxDistance(), 14; got != want {
		t.Fatalf("MaxDistance=%d, want %d", got, want)
	}
	for c := 0; c < m.Tiles(); c++ {
		total := 0
		for d := 0; d <= m.MaxDistance(); d++ {
			ring := m.Ring(Tile(c), d)
			for i, tl := range ring {
				if m.Distance(Tile(c), tl) != d {
					t.Fatalf("Ring(%d,%d) contains tile %d at distance %d", c, d, tl, m.Distance(Tile(c), tl))
				}
				if i > 0 && ring[i-1] >= tl {
					t.Fatalf("Ring(%d,%d) not in ascending index order", c, d)
				}
			}
			total += len(ring)
			if got := m.WithinCount(Tile(c), d); got != total {
				t.Fatalf("WithinCount(%d,%d)=%d, want %d", c, d, got, total)
			}
		}
		if total != m.Tiles() {
			t.Fatalf("rings of %d cover %d tiles, want %d", c, total, m.Tiles())
		}
	}
	// Center of the chip: ring d has 4d tiles while it fits.
	center := m.CenterTile()
	if got := len(m.Ring(center, 1)); got != 4 {
		t.Errorf("center ring 1 has %d tiles, want 4", got)
	}
	if got := len(m.Ring(center, 2)); got != 8 {
		t.Errorf("center ring 2 has %d tiles, want 8", got)
	}
	// Out-of-range distances.
	if len(m.Ring(center, -1)) != 0 || len(m.Ring(center, 99)) != 0 {
		t.Error("out-of-range rings not empty")
	}
	if m.WithinCount(center, -1) != 0 || m.WithinCount(center, 99) != m.Tiles() {
		t.Error("out-of-range WithinCount wrong")
	}
}

func TestRadiusCovering(t *testing.T) {
	m := New(8, 8)
	center := m.CenterTile()
	cases := []struct {
		k, want int
	}{
		// Center is (3,3): the far corner (7,7) sits at distance 8, so
		// covering all 64 tiles needs radius 8.
		{0, 0}, {1, 0}, {2, 1}, {5, 1}, {6, 2}, {13, 2}, {64, 8},
		{1000, m.MaxDistance()}, // saturates
	}
	for _, c := range cases {
		if got := m.RadiusCovering(center, c.k); got != c.want {
			t.Errorf("RadiusCovering(center,%d)=%d, want %d", c.k, got, c.want)
		}
	}
	// Property: the radius returned really covers k tiles, and r-1 does not.
	for c := 0; c < m.Tiles(); c++ {
		for _, k := range []int{1, 3, 7, 20, 64} {
			r := m.RadiusCovering(Tile(c), k)
			if m.WithinCount(Tile(c), r) < k {
				t.Fatalf("RadiusCovering(%d,%d)=%d covers only %d", c, k, r, m.WithinCount(Tile(c), r))
			}
			if r > 0 && m.WithinCount(Tile(c), r-1) >= k {
				t.Fatalf("RadiusCovering(%d,%d)=%d not minimal", c, k, r)
			}
		}
	}
}

func TestMemControllers(t *testing.T) {
	m := New(8, 8)
	mcs := m.MemControllers()
	if len(mcs) != 8 {
		t.Fatalf("8x8 mesh: %d controllers, want 8", len(mcs))
	}
	for _, mc := range mcs {
		x, y := m.Coords(mc)
		if x != 0 && x != 7 && y != 0 && y != 7 {
			t.Errorf("controller %d at (%d,%d) is not on an edge", mc, x, y)
		}
	}
}

func TestMemControllersSmallMesh(t *testing.T) {
	m := New(1, 1)
	if len(m.MemControllers()) != 1 {
		t.Fatalf("1x1 mesh should have one controller")
	}
}

func TestAvgMemDistanceSymmetricTiles(t *testing.T) {
	m := New(8, 8)
	// Chip is symmetric under 180-degree rotation, so opposite corners see
	// the same average MC distance.
	if d1, d2 := m.AvgMemDistance(0), m.AvgMemDistance(63); !close(d1, d2, 1e-9) {
		t.Errorf("corner MC distances differ: %f vs %f", d1, d2)
	}
	// Center tiles should be no farther from MCs than the worst corner... and
	// all distances are positive on an 8x8 mesh.
	for i := 0; i < m.Tiles(); i++ {
		if m.AvgMemDistance(Tile(i)) <= 0 {
			t.Errorf("tile %d: non-positive MC distance", i)
		}
	}
}

func TestMeanPairDistance(t *testing.T) {
	// For a WxW mesh, mean 1-D distance is (W^2-1)/(3W); Manhattan doubles it.
	m := New(8, 8)
	want := 2 * (64.0 - 1) / (3 * 8)
	if got := m.MeanPairDistance(); !close(got, want, 1e-9) {
		t.Errorf("MeanPairDistance=%f, want %f", got, want)
	}
}

func TestCenterTile(t *testing.T) {
	if c := New(8, 8).CenterTile(); c != Tile(3*8+3) {
		t.Errorf("8x8 center = %d, want 27", c)
	}
	if c := New(3, 3).CenterTile(); c != Tile(1*3+1) {
		t.Errorf("3x3 center = %d, want 4", c)
	}
}

func TestCenterOfMass(t *testing.T) {
	m := New(8, 8)
	// Single tile: center of mass is that tile.
	x, y := m.CenterOfMass(map[Tile]float64{m.TileAt(2, 5): 3.0})
	if !close(x, 2, 1e-9) || !close(y, 5, 1e-9) {
		t.Errorf("single-tile CoM = (%f,%f), want (2,5)", x, y)
	}
	// Two equal weights: midpoint.
	x, y = m.CenterOfMass(map[Tile]float64{m.TileAt(0, 0): 1, m.TileAt(4, 2): 1})
	if !close(x, 2, 1e-9) || !close(y, 1, 1e-9) {
		t.Errorf("two-tile CoM = (%f,%f), want (2,1)", x, y)
	}
	// Zero weight: chip center.
	x, y = m.CenterOfMass(nil)
	cx, cy := m.Coords(m.CenterTile())
	if !close(x, float64(cx), 1e-9) || !close(y, float64(cy), 1e-9) {
		t.Errorf("empty CoM = (%f,%f), want center (%d,%d)", x, y, cx, cy)
	}
}

func TestNearestTileClamps(t *testing.T) {
	m := New(8, 8)
	cases := []struct {
		x, y float64
		want Tile
	}{
		{0, 0, 0},
		{7.4, 7.4, 63},
		{-3, -3, 0},
		{100, 100, 63},
		{3.6, 0, m.TileAt(4, 0)},
	}
	for _, c := range cases {
		if got := m.NearestTile(c.x, c.y); got != c.want {
			t.Errorf("NearestTile(%f,%f)=%d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestDistanceToPoint(t *testing.T) {
	m := New(8, 8)
	if d := m.DistanceToPoint(m.TileAt(3, 3), 3, 3); d != 0 {
		t.Errorf("distance to own point = %f", d)
	}
	if d := m.DistanceToPoint(m.TileAt(0, 0), 1.5, 2.5); !close(d, 4, 1e-9) {
		t.Errorf("distance = %f, want 4", d)
	}
}

func close(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
