package mesh

import "fmt"

// DefaultMaxClusters bounds the coarse mesh of the default cluster view to
// place.PruneThreshold tiles, so coarse-grained placement scans every cluster
// exhaustively — the exact-search machinery of the paper, applied one level
// up.
const DefaultMaxClusters = 256

// Clusters partitions a mesh into square super-tiles of side Side() (ragged
// at the right/bottom edges when the side does not divide the dimensions) and
// exposes the partition as a coarse Topology whose tiles are the clusters.
// Distances on the coarse mesh are exact inter-cluster Manhattan distances in
// cluster hops; multiply by Side() to approximate fine hops between cluster
// centroids (exact for interior clusters, off by at most the edge raggedness
// otherwise). Hierarchical placement (internal/place) places over the coarse
// mesh and refines within each cluster.
//
// A Clusters view is immutable and safe for concurrent use.
type Clusters struct {
	base   *Topology
	coarse *Topology
	side   int
	cw, ch int

	xOf, yOf []int // fine coordinate → cluster column / row
	count    []int // tiles per cluster, indexed by coarse tile
	cx, cy   []float64
	rep      []Tile
}

// Clusters returns the mesh's default cluster view (at most
// DefaultMaxClusters clusters), building it on first use. Meshes at or below
// DefaultMaxClusters tiles are their own view: one tile per cluster.
func (t *Topology) Clusters() *Clusters {
	t.clustersOnce.Do(func() { t.clusters = NewClusters(t, DefaultMaxClusters) })
	return t.clusters
}

// NewClusters partitions t into at most maxClusters square super-tiles. It
// panics when maxClusters < 1. Exported with an explicit bound so tests can
// force multi-tile clusters on small meshes.
func NewClusters(t *Topology, maxClusters int) *Clusters {
	if maxClusters < 1 {
		panic(fmt.Sprintf("mesh: invalid cluster bound %d", maxClusters))
	}
	w, h := t.width, t.height
	side := 1
	for ((w+side-1)/side)*((h+side-1)/side) > maxClusters {
		side++
	}
	cw, ch := (w+side-1)/side, (h+side-1)/side
	c := &Clusters{
		base: t, coarse: New(cw, ch), side: side, cw: cw, ch: ch,
		xOf: make([]int, w), yOf: make([]int, h),
		count: make([]int, cw*ch),
		cx:    make([]float64, cw*ch),
		cy:    make([]float64, cw*ch),
		rep:   make([]Tile, cw*ch),
	}
	for x := 0; x < w; x++ {
		c.xOf[x] = x / side
	}
	for y := 0; y < h; y++ {
		c.yOf[y] = y / side
	}
	for cl := 0; cl < cw*ch; cl++ {
		x0, y0, x1, y1 := c.Bounds(Tile(cl))
		c.count[cl] = (x1 - x0) * (y1 - y0)
		// Centroid of the covered rectangle, in fine fractional coordinates.
		c.cx[cl] = float64(x0+x1-1) / 2
		c.cy[cl] = float64(y0+y1-1) / 2
		c.rep[cl] = t.NearestTile(c.cx[cl], c.cy[cl])
	}
	return c
}

// Base returns the fine mesh the view partitions.
func (c *Clusters) Base() *Topology { return c.base }

// Coarse returns the cluster-granularity mesh: one tile per cluster, row-
// major in cluster coordinates, distances in cluster hops.
func (c *Clusters) Coarse() *Topology { return c.coarse }

// Side returns the super-tile side length in fine tiles.
func (c *Clusters) Side() int { return c.side }

// N returns the number of clusters.
func (c *Clusters) N() int { return c.cw * c.ch }

// Of maps a fine tile to its cluster (a coarse-mesh tile).
func (c *Clusters) Of(t Tile) Tile {
	x, y := c.base.Coords(t)
	return Tile(c.yOf[y]*c.cw + c.xOf[x])
}

// Count returns the number of fine tiles in a cluster.
func (c *Clusters) Count(cl Tile) int { return c.count[cl] }

// Bounds returns the half-open fine-coordinate rectangle [x0,x1)×[y0,y1) a
// cluster covers.
func (c *Clusters) Bounds(cl Tile) (x0, y0, x1, y1 int) {
	cx, cy := int(cl)%c.cw, int(cl)/c.cw
	x0, y0 = cx*c.side, cy*c.side
	x1, y1 = min(x0+c.side, c.base.width), min(y0+c.side, c.base.height)
	return x0, y0, x1, y1
}

// Centroid returns a cluster's center in fine fractional coordinates.
func (c *Clusters) Centroid(cl Tile) (x, y float64) { return c.cx[cl], c.cy[cl] }

// Rep returns the fine tile nearest a cluster's centroid: the cluster's
// representative on the fine mesh.
func (c *Clusters) Rep(cl Tile) Tile { return c.rep[cl] }
