package mesh

import "testing"

// checkPartition asserts the cluster-view invariants the hierarchical
// placement path depends on: every fine tile belongs to exactly one cluster,
// the Of map agrees with Bounds, counts sum to the tile count, centroids and
// representatives lie inside their cluster, and the coarse mesh's distances
// are a metric (symmetric, triangle-consistent) over the clusters.
func checkPartition(t *testing.T, w, h, maxClusters int) {
	t.Helper()
	topo := New(w, h)
	cl := NewClusters(topo, maxClusters)
	if cl.N() > maxClusters {
		t.Fatalf("%dx%d/%d: %d clusters exceed the bound", w, h, maxClusters, cl.N())
	}
	if cl.Base() != topo {
		t.Fatalf("%dx%d/%d: Base does not round-trip", w, h, maxClusters)
	}
	if got := cl.Coarse().Tiles(); got != cl.N() {
		t.Fatalf("%dx%d/%d: coarse mesh has %d tiles, N()=%d", w, h, maxClusters, got, cl.N())
	}

	// Exactly-one-cluster: membership via Of must match membership via
	// Bounds, and each tile must fall in precisely one cluster's rectangle.
	seen := make([]int, topo.Tiles())
	total := 0
	for c := 0; c < cl.N(); c++ {
		ct := Tile(c)
		x0, y0, x1, y1 := cl.Bounds(ct)
		if x0 >= x1 || y0 >= y1 {
			t.Fatalf("%dx%d/%d: cluster %d has empty bounds [%d,%d)x[%d,%d)", w, h, maxClusters, c, x0, x1, y0, y1)
		}
		if got := (x1 - x0) * (y1 - y0); got != cl.Count(ct) {
			t.Fatalf("%dx%d/%d: cluster %d Count=%d, bounds give %d", w, h, maxClusters, c, cl.Count(ct), got)
		}
		total += cl.Count(ct)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				tile := topo.TileAt(x, y)
				seen[tile]++
				if cl.Of(tile) != ct {
					t.Fatalf("%dx%d/%d: tile %d in cluster %d's bounds but Of=%d", w, h, maxClusters, tile, c, cl.Of(tile))
				}
			}
		}
		cx, cy := cl.Centroid(ct)
		if cx < float64(x0) || cx > float64(x1-1) || cy < float64(y0) || cy > float64(y1-1) {
			t.Fatalf("%dx%d/%d: cluster %d centroid (%g,%g) outside bounds", w, h, maxClusters, c, cx, cy)
		}
		if cl.Of(cl.Rep(ct)) != ct {
			t.Fatalf("%dx%d/%d: cluster %d representative %d is in cluster %d", w, h, maxClusters, c, cl.Rep(ct), cl.Of(cl.Rep(ct)))
		}
	}
	if total != topo.Tiles() {
		t.Fatalf("%dx%d/%d: cluster counts sum to %d of %d tiles", w, h, maxClusters, total, topo.Tiles())
	}
	for tile, k := range seen {
		if k != 1 {
			t.Fatalf("%dx%d/%d: tile %d covered by %d clusters", w, h, maxClusters, tile, k)
		}
	}

	// Cluster distances: symmetric and triangle-consistent (a metric on the
	// coarse mesh). Bounded triple scan — coarse meshes are small.
	co := cl.Coarse()
	n := co.Tiles()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if co.Distance(Tile(a), Tile(b)) != co.Distance(Tile(b), Tile(a)) {
				t.Fatalf("%dx%d/%d: cluster distance asymmetric at (%d,%d)", w, h, maxClusters, a, b)
			}
		}
	}
	step := 1
	if n > 24 {
		step = n / 24
	}
	for a := 0; a < n; a += step {
		for b := 0; b < n; b += step {
			for c := 0; c < n; c += step {
				ab := co.Distance(Tile(a), Tile(b))
				bc := co.Distance(Tile(b), Tile(c))
				ac := co.Distance(Tile(a), Tile(c))
				if ac > ab+bc {
					t.Fatalf("%dx%d/%d: triangle violation d(%d,%d)=%d > %d+%d", w, h, maxClusters, a, c, ac, ab, bc)
				}
			}
		}
	}
}

func TestClustersPartition(t *testing.T) {
	cases := []struct{ w, h, max int }{
		{1, 1, 1}, {8, 8, 4}, {8, 8, 64}, {8, 8, 256}, {16, 16, 16},
		{12, 5, 6}, {5, 12, 6}, {7, 7, 10}, {64, 1, 16}, {1, 64, 16},
		{33, 17, 25},
	}
	for _, c := range cases {
		checkPartition(t, c.w, c.h, c.max)
	}
}

// TestClustersDefaultView pins the production geometry: a 128×128 mesh under
// DefaultMaxClusters splits into 16×16 clusters of side 8, and the view is
// memoized on the topology.
func TestClustersDefaultView(t *testing.T) {
	topo := New(128, 128)
	cl := topo.Clusters()
	if cl != topo.Clusters() {
		t.Error("Clusters() not memoized")
	}
	if cl.N() != 256 || cl.Side() != 8 {
		t.Errorf("128x128 default view: %d clusters of side %d, want 256 of side 8", cl.N(), cl.Side())
	}
	small := New(8, 8)
	if v := small.Clusters(); v.N() != 64 || v.Side() != 1 {
		t.Errorf("8x8 default view: %d clusters of side %d, want 64 of side 1 (identity)", v.N(), v.Side())
	}
}

// FuzzClusterPartition drives the partition invariants over arbitrary mesh
// shapes and cluster bounds.
func FuzzClusterPartition(f *testing.F) {
	f.Add(8, 8, 4)
	f.Add(128, 1, 16)
	f.Add(17, 23, 100)
	f.Add(1, 1, 1)
	f.Fuzz(func(t *testing.T, w, h, maxClusters int) {
		if w < 1 || h < 1 || w > 64 || h > 64 || maxClusters < 1 || maxClusters > 512 {
			t.Skip()
		}
		checkPartition(t, w, h, maxClusters)
	})
}
