package mesh

import (
	"math"
	"reflect"
	"runtime"
	"testing"
)

// lazyTestDims are small enough to build both representations exhaustively,
// and include degenerate strips, non-square meshes, and even/odd centers.
var lazyTestDims = [][2]int{{1, 1}, {1, 7}, {5, 1}, {2, 2}, {4, 4}, {5, 3}, {3, 8}, {8, 8}, {9, 5}}

// TestLazyMatchesEager proves the lazy representation is bit-identical to the
// eager arrays on every query the rest of the system uses: distances, rows,
// orderings, ring geometry, and the precomputed float means. This equality is
// what lets New switch representation at LazyThreshold without perturbing a
// single committed result hash.
func TestLazyMatchesEager(t *testing.T) {
	for _, dims := range lazyTestDims {
		w, h := dims[0], dims[1]
		eager, lazy := NewEager(w, h), NewLazy(w, h)
		if !lazy.Lazy() || eager.Lazy() {
			t.Fatalf("%dx%d: mode flags wrong", w, h)
		}
		n := eager.Tiles()
		row := make([]int, n)
		for a := 0; a < n; a++ {
			at := Tile(a)
			for b := 0; b < n; b++ {
				if eager.Distance(at, Tile(b)) != lazy.Distance(at, Tile(b)) {
					t.Fatalf("%dx%d: Distance(%d,%d) differs", w, h, a, b)
				}
			}
			if !reflect.DeepEqual(eager.DistanceRow(at), lazy.DistanceRow(at)) {
				t.Fatalf("%dx%d: DistanceRow(%d) differs", w, h, a)
			}
			if got := lazy.FillDistanceRow(at, row); !reflect.DeepEqual(eager.DistanceRow(at), got) {
				t.Fatalf("%dx%d: FillDistanceRow(%d) differs", w, h, a)
			}
			if !reflect.DeepEqual(eager.ByDistance(at), lazy.ByDistance(at)) {
				t.Fatalf("%dx%d: ByDistance(%d) differs", w, h, a)
			}
			for d := -1; d <= eager.MaxDistance()+1; d++ {
				er, lr := eager.Ring(at, d), lazy.Ring(at, d)
				if len(er) != len(lr) || (len(er) > 0 && !reflect.DeepEqual(er, lr)) {
					t.Fatalf("%dx%d: Ring(%d,%d) differs: %v vs %v", w, h, a, d, er, lr)
				}
				if eager.WithinCount(at, d) != lazy.WithinCount(at, d) {
					t.Fatalf("%dx%d: WithinCount(%d,%d) differs", w, h, a, d)
				}
			}
			for k := 0; k <= n+2; k++ {
				if eager.RadiusCovering(at, k) != lazy.RadiusCovering(at, k) {
					t.Fatalf("%dx%d: RadiusCovering(%d,%d) differs", w, h, a, k)
				}
			}
			if math.Float64bits(eager.MeanDistanceFrom(at)) != math.Float64bits(lazy.MeanDistanceFrom(at)) {
				t.Fatalf("%dx%d: MeanDistanceFrom(%d) differs: %v vs %v",
					w, h, a, eager.MeanDistanceFrom(at), lazy.MeanDistanceFrom(at))
			}
			if math.Float64bits(eager.AvgMemDistance(at)) != math.Float64bits(lazy.AvgMemDistance(at)) {
				t.Fatalf("%dx%d: AvgMemDistance(%d) differs", w, h, a)
			}
		}
		if !reflect.DeepEqual(eager.MemControllers(), lazy.MemControllers()) {
			t.Fatalf("%dx%d: MemControllers differ", w, h)
		}
		if math.Float64bits(eager.MeanPairDistance()) != math.Float64bits(lazy.MeanPairDistance()) {
			t.Fatalf("%dx%d: MeanPairDistance differs: %v vs %v",
				w, h, eager.MeanPairDistance(), lazy.MeanPairDistance())
		}
		if math.Float64bits(eager.MeanMemDistance()) != math.Float64bits(lazy.MeanMemDistance()) {
			t.Fatalf("%dx%d: MeanMemDistance differs", w, h)
		}
	}
}

// TestRingCursorOrder proves RingFrom enumerates exactly the ByDistance
// ordering — on both representations — and that Dist is non-decreasing.
func TestRingCursorOrder(t *testing.T) {
	for _, dims := range lazyTestDims {
		w, h := dims[0], dims[1]
		eager, lazy := NewEager(w, h), NewLazy(w, h)
		n := eager.Tiles()
		for c := 0; c < n; c++ {
			want := eager.ByDistance(Tile(c))
			for name, topo := range map[string]*Topology{"eager": eager, "lazy": lazy} {
				cur := topo.RingFrom(Tile(c))
				prev := -1
				for i := 0; i < n; i++ {
					tile, ok := cur.Next()
					if !ok {
						t.Fatalf("%dx%d %s: cursor from %d ended after %d of %d tiles", w, h, name, c, i, n)
					}
					if tile != want[i] {
						t.Fatalf("%dx%d %s: cursor from %d: tile %d is %d, want %d", w, h, name, c, i, tile, want[i])
					}
					if d := cur.Dist(); d < prev {
						t.Fatalf("%dx%d %s: cursor from %d: distance decreased to %d", w, h, name, c, d)
					} else {
						prev = d
					}
				}
				if _, ok := cur.Next(); ok {
					t.Fatalf("%dx%d %s: cursor from %d produced more than %d tiles", w, h, name, c, n)
				}
			}
		}
	}
}

// TestNewSwitchesAtThreshold pins the representation switch: New stays eager
// through LazyThreshold tiles and goes lazy just above it.
func TestNewSwitchesAtThreshold(t *testing.T) {
	if New(64, 64).Lazy() {
		t.Error("64x64 (= LazyThreshold) built lazy; must stay eager for bit-stability")
	}
	if !New(65, 64).Lazy() {
		t.Error("65x64 (> LazyThreshold) built eager; expected lazy")
	}
}

// topoAllocBytes measures the heap bytes a topology construction allocates.
func topoAllocBytes(build func() *Topology) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	topo := build()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(topo)
	return after.TotalAlloc - before.TotalAlloc
}

// TestTopologyMemory is the acceptance check for the lazy-ring memory model:
// topology construction at 128×128 (16,384 tiles) must be O(n) — the eager
// arrays would need ~2 GB of ring indices plus a 2 GB distance matrix, so an
// accidental eager construction trips the bound by orders of magnitude. The
// scaling check (64×64 lazy → 128×128 lazy grows ~4×, not ~16×) guards
// against an O(n²) structure sneaking back in under the absolute bound.
func TestTopologyMemory(t *testing.T) {
	at128 := topoAllocBytes(func() *Topology { return New(128, 128) })
	if limit := uint64(16 << 20); at128 > limit {
		t.Fatalf("128x128 topology construction allocated %d bytes, want <= %d (O(n) lazy mode)", at128, limit)
	}
	at64 := topoAllocBytes(func() *Topology { return NewLazy(64, 64) })
	if at64 > 0 && at128 > 8*at64 {
		t.Errorf("lazy construction scaled %dB (64x64) -> %dB (128x128): worse than O(n)", at64, at128)
	}
}

// BenchmarkNewTopology gates topology-construction cost and footprint at the
// 64×64 representation boundary: B/op is the headline — lazy must stay O(n)
// while eager pays the full O(n²) matrix and rings.
func BenchmarkNewTopology(b *testing.B) {
	for _, bc := range []struct {
		name  string
		build func() *Topology
	}{
		{"64x64-lazy", func() *Topology { return NewLazy(64, 64) }},
		{"64x64-eager", func() *Topology { return NewEager(64, 64) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.build()
			}
		})
	}
}
