package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cdcs/internal/testutil"
)

// TestFleetMetricsAndBreakerTrip pins the serving side of the fleet view: a
// server with peers exports per-replica cdcs_fleet_* gauges, and when a
// peer dies its prober trips the breaker — observable in /metrics and in
// Stats — then recovery closes it again.
func TestFleetMetricsAndBreakerTrip(t *testing.T) {
	// A healthy peer behind a fault proxy, so it can be killed and revived
	// on a stable address.
	_, hPeer := testServer(t, Options{})
	backend := httptest.NewServer(hPeer)
	t.Cleanup(backend.Close)
	proxy, err := testutil.NewFaultProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)

	s, h := testServer(t, Options{
		Peers:                 []string{proxy.URL()},
		FleetProbeInterval:    20 * time.Millisecond,
		FleetBreakerThreshold: 2,
	})

	// Probes against the live peer keep the breaker closed.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := s.Stats()
		if len(st.Fleet) == 1 && st.Fleet[0].State == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never settled closed: %+v", st.Fleet)
		}
		time.Sleep(5 * time.Millisecond)
	}

	m := do(h, "GET", "/metrics", "")
	for _, want := range []string{
		"cdcs_fleet_state{replica=",
		"cdcs_fleet_ewma_latency_ms{replica=",
		"cdcs_fleet_inflight{replica=",
		"cdcs_fleet_requests_total{replica=",
		"cdcs_fleet_errors_total{replica=",
		"cdcs_fleet_breaker_trips_total{replica=",
	} {
		if !strings.Contains(m.Body.String(), want) {
			t.Errorf("metrics missing %s:\n%s", want, m.Body)
		}
	}

	// Kill the peer: consecutive probe failures must trip the breaker open
	// and count one trip.
	proxy.Kill()
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if len(st.Fleet) == 1 && st.Fleet[0].State == "open" && st.Fleet[0].Trips >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened after peer death: %+v", st.Fleet)
		}
		time.Sleep(5 * time.Millisecond)
	}
	m = do(h, "GET", "/metrics", "")
	if !strings.Contains(m.Body.String(), "cdcs_fleet_state{replica=") ||
		!strings.Contains(m.Body.String(), "cdcs_fleet_breaker_trips_total{replica=") {
		t.Errorf("fleet gauges missing after trip:\n%s", m.Body)
	}

	// Revive: the half-open probe must close the breaker again without a
	// new trip being required.
	proxy.Revive()
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if len(st.Fleet) == 1 && st.Fleet[0].State == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after revival: %+v", st.Fleet)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The fleet also rides the JSON stats surface.
	var st Stats
	if b, err := json.Marshal(s.Stats()); err != nil || json.Unmarshal(b, &st) != nil {
		t.Fatalf("stats round-trip: %v", err)
	}
	if len(st.Fleet) != 1 || st.Fleet[0].URL == "" {
		t.Errorf("fleet stats not serialized: %+v", st.Fleet)
	}
}

// TestFleetOptionsRequirePeers pins the option validation: fleet knobs
// without peers are configuration mistakes, rejected loudly.
func TestFleetOptionsRequirePeers(t *testing.T) {
	for _, bad := range []Options{
		{FleetProbeInterval: time.Second},
		{FleetBreakerThreshold: 2},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%+v) accepted fleet options without peers", bad)
		}
	}
}
