package server

import (
	"encoding/json"
	"strings"
	"testing"
)

// smallSweep expands to two fast cells (4x4 chip, 6 apps, two hop latencies).
const smallSweep = `{
	"mesh": [{"width": 4, "height": 4}],
	"bank_kb": [256],
	"hop_latency": [2, 4],
	"mixes": [{"kind": "random", "seed": 11, "n": 6}],
	"schemes": ["S-NUCA", "CDCS"],
	"seed": 1
}`

// sweepBody mirrors the handler's sweepResponse for decoding in tests.
type sweepBody struct {
	Hash  string `json:"hash"`
	Cells []struct {
		Index  int             `json:"index"`
		Result json.RawMessage `json:"result"`
	} `json:"cells"`
}

func TestSweepEndpointValidation(t *testing.T) {
	_, h := testServer(t, Options{})
	cases := []struct {
		name       string
		body       string
		wantCode   int
		wantInBody string
	}{
		{"bad JSON", `{nope`, 400, "bad request body"},
		{"unknown field", `{"mseh": []}`, 400, "unknown field"},
		{"no mixes", `{"schemes": ["CDCS"]}`, 400, "at least one mix"},
		{"oversize mesh", `{"mesh": [{"width": 129, "height": 128}], "mixes": [{"kind": "casestudy"}]}`, 400, "exceeds"},
		{"unknown scheme", `{"mixes": [{"kind": "casestudy"}], "schemes": ["NUCA-9000"]}`, 400, "unknown scheme"},
		{"unknown bench", `{"mixes": [{"kind": "apps", "apps": [{"bench": "no-such"}]}]}`, 400, "unknown benchmark"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(h, "POST", "/v1/sweep", tc.body)
			if w.Code != tc.wantCode {
				t.Fatalf("-> %d, want %d (body: %s)", w.Code, tc.wantCode, w.Body)
			}
			if !strings.Contains(w.Body.String(), tc.wantInBody) {
				t.Errorf("body %q does not contain %q", w.Body, tc.wantInBody)
			}
		})
	}
	if w := do(h, "GET", "/v1/sweep", ""); w.Code != 405 {
		t.Errorf("GET /v1/sweep -> %d, want 405", w.Code)
	}
}

func TestSweepColdWarmAndCompareCacheSharing(t *testing.T) {
	s, h := testServer(t, Options{})

	// Cold sweep: both cells simulate.
	cold := do(h, "POST", "/v1/sweep", smallSweep)
	if cold.Code != 200 {
		t.Fatalf("cold sweep -> %d: %s", cold.Code, cold.Body)
	}
	if got := cold.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("cold sweep X-Cache=%q, want miss", got)
	}
	if got := cold.Header().Get("X-Cells-Cached"); got != "0/2" {
		t.Errorf("cold sweep X-Cells-Cached=%q, want 0/2", got)
	}
	var coldBody sweepBody
	if err := json.Unmarshal(cold.Body.Bytes(), &coldBody); err != nil {
		t.Fatal(err)
	}
	if len(coldBody.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(coldBody.Cells))
	}
	if got := s.Stats().Simulations; got != 2 {
		t.Errorf("%d simulations after cold sweep, want 2", got)
	}

	// Warm sweep: identical request, zero simulations, byte-identical cells.
	warm := do(h, "POST", "/v1/sweep", smallSweep)
	if warm.Code != 200 {
		t.Fatalf("warm sweep -> %d: %s", warm.Code, warm.Body)
	}
	if got := warm.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("warm sweep X-Cache=%q, want hit", got)
	}
	if got := warm.Header().Get("X-Cells-Cached"); got != "2/2" {
		t.Errorf("warm sweep X-Cells-Cached=%q, want 2/2", got)
	}
	// The body carries no provenance, so the warm replay is byte-identical
	// to the cold run, whole-envelope.
	if warm.Body.String() != cold.Body.String() {
		t.Error("warm sweep body differs from cold")
	}
	if got := s.Stats().Simulations; got != 2 {
		t.Errorf("%d simulations after warm sweep, want 2 (no new work)", got)
	}

	// A /v1/compare for one cell's request hits the shared cache and returns
	// exactly the cell's result bytes.
	var cell0 struct {
		Request json.RawMessage `json:"request"`
	}
	if err := json.Unmarshal(coldBody.Cells[0].Result, &cell0); err != nil {
		t.Fatal(err)
	}
	cw := do(h, "POST", "/v1/compare", string(cell0.Request))
	if cw.Code != 200 {
		t.Fatalf("compare of cell 0 -> %d: %s", cw.Code, cw.Body)
	}
	if got := cw.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("compare of sweep cell X-Cache=%q, want hit", got)
	}
	if cw.Body.String() != string(coldBody.Cells[0].Result) {
		t.Error("compare response bytes differ from the sweep cell's result")
	}
	if got := s.Stats().Simulations; got != 2 {
		t.Errorf("%d simulations after compare, want 2 (served from sweep's cache)", got)
	}

	// An overlapping sweep (one extra hop-latency value) only simulates the
	// new cell.
	bigger := strings.Replace(smallSweep, `"hop_latency": [2, 4]`, `"hop_latency": [2, 4, 6]`, 1)
	over := do(h, "POST", "/v1/sweep", bigger)
	if over.Code != 200 {
		t.Fatalf("overlapping sweep -> %d: %s", over.Code, over.Body)
	}
	if got := over.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("overlapping sweep X-Cache=%q, want miss (one new cell)", got)
	}
	if got := over.Header().Get("X-Cells-Cached"); got != "2/3" { // hop 2 and 4 reused, hop 6 new
		t.Errorf("overlapping sweep X-Cells-Cached=%q, want 2/3", got)
	}
	var overBody sweepBody
	if err := json.Unmarshal(over.Body.Bytes(), &overBody); err != nil {
		t.Fatal(err)
	}
	if len(overBody.Cells) != 3 {
		t.Fatalf("%d cells, want 3", len(overBody.Cells))
	}
	if got := s.Stats().Simulations; got != 3 {
		t.Errorf("%d simulations after overlapping sweep, want 3", got)
	}
}
