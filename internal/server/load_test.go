package server

// Load test for the acceptance bar: the service must sustain >= 64
// concurrent /v1/compare requests under the race detector, serve the cached
// path byte-identical to the cold path, and serve cache hits without
// touching sim.Engine (tracked by the server's simulation counter).

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// postCompare issues one real HTTP request and returns status, body and the
// X-Cache header.
func postCompare(t *testing.T, client *http.Client, url, body string) (int, []byte, string) {
	t.Helper()
	resp, err := client.Post(url+"/v1/compare", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("POST /v1/compare: %v", err)
		return 0, nil, ""
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read body: %v", err)
		return resp.StatusCode, nil, ""
	}
	return resp.StatusCode, b, resp.Header.Get("X-Cache")
}

func TestLoad64ConcurrentIdenticalCompares(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	const concurrency = 64
	body := smallCompare

	wave := func() [][]byte {
		results := make([][]byte, concurrency)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < concurrency; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				code, b, _ := postCompare(t, client, ts.URL, body)
				if code != http.StatusOK {
					t.Errorf("request %d: status %d (%s)", i, code, b)
					return
				}
				results[i] = b
			}(i)
		}
		close(start)
		wg.Wait()
		return results
	}

	// Cold wave: a thundering herd of identical requests must coalesce onto
	// exactly one simulation, with every caller handed the same bytes.
	cold := wave()
	for i, b := range cold {
		if b == nil {
			t.Fatalf("request %d failed", i)
		}
		if !bytes.Equal(b, cold[0]) {
			t.Fatalf("request %d got different bytes than request 0", i)
		}
	}
	if n := s.Stats().Simulations; n != 1 {
		t.Errorf("cold wave ran %d simulations, want exactly 1 (singleflight)", n)
	}

	// Warm wave: all hits, zero new engine work, bytes identical to cold.
	warm := wave()
	for i, b := range warm {
		if b == nil {
			t.Fatalf("warm request %d failed", i)
		}
		if !bytes.Equal(b, cold[0]) {
			t.Fatalf("warm request %d differs from the cold response", i)
		}
	}
	if n := s.Stats().Simulations; n != 1 {
		t.Errorf("warm wave touched the engine: %d simulations, want 1", n)
	}
	st := s.Stats().Cache
	if st.Hits() == 0 {
		t.Error("warm wave recorded no cache hits")
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after both waves", st.Inflight)
	}
}

func TestLoadDistinctRequestsEachSimulateOnce(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// 8 distinct requests x 8 callers each, all concurrent: one simulation
	// per distinct request, identical bytes within each group.
	const groups, per = 8, 8
	results := make([][][]byte, groups)
	for g := range results {
		results[g] = make([][]byte, per)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < groups; g++ {
		body := fmt.Sprintf(`{
			"config": {"mesh_width": 4, "mesh_height": 4, "bank_kb": 256,
			           "bank_latency": 9, "hop_latency": 4, "mem_latency": 120, "mem_channels": 4},
			"mix": {"kind": "random", "seed": %d, "n": 4},
			"schemes": ["S-NUCA", "CDCS"],
			"seed": 1
		}`, 100+g)
		for p := 0; p < per; p++ {
			wg.Add(1)
			go func(g, p int, body string) {
				defer wg.Done()
				<-start
				code, b, _ := postCompare(t, client, ts.URL, body)
				if code != http.StatusOK {
					t.Errorf("group %d caller %d: status %d (%s)", g, p, code, b)
					return
				}
				results[g][p] = b
			}(g, p, body)
		}
	}
	close(start)
	wg.Wait()

	for g := 0; g < groups; g++ {
		for p := 0; p < per; p++ {
			if results[g][p] == nil {
				t.Fatalf("group %d caller %d failed", g, p)
			}
			if !bytes.Equal(results[g][p], results[g][0]) {
				t.Fatalf("group %d caller %d bytes diverge", g, p)
			}
		}
		for o := 0; o < g; o++ {
			if bytes.Equal(results[g][0], results[o][0]) {
				t.Fatalf("groups %d and %d unexpectedly share a response", g, o)
			}
		}
	}
	if n := s.Stats().Simulations; n != groups {
		t.Errorf("simulations = %d, want %d (one per distinct request)", n, groups)
	}
}
