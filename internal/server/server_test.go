package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer builds a server with a small footprint and its handler.
func testServer(t *testing.T, opts Options) (*Server, http.Handler) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, s.Handler()
}

// do runs one request through the handler and returns the recorder.
func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// smallCompare is a fast request: a 4x4 chip, 6 apps, two schemes.
const smallCompare = `{
	"config": {"mesh_width": 4, "mesh_height": 4, "bank_kb": 256,
	           "bank_latency": 9, "hop_latency": 4, "mem_latency": 120, "mem_channels": 4},
	"mix": {"kind": "random", "seed": 11, "n": 6},
	"schemes": ["S-NUCA", "CDCS"],
	"seed": 1
}`

func TestHandlerTable(t *testing.T) {
	_, h := testServer(t, Options{})
	cases := []struct {
		name         string
		method, path string
		body         string
		wantCode     int
		wantInBody   string
	}{
		{"compare bad JSON", "POST", "/v1/compare", `{not json`, 400, "bad request body"},
		{"compare unknown field", "POST", "/v1/compare", `{"mxi": {}}`, 400, "unknown field"},
		{"compare trailing garbage", "POST", "/v1/compare", `{"mix":{"kind":"casestudy"}} trailing`, 400, ""},
		{"compare no mix kind", "POST", "/v1/compare", `{"seed": 1}`, 400, "kind"},
		{"compare bad mix kind", "POST", "/v1/compare", `{"mix": {"kind": "wat"}}`, 400, "unknown mix kind"},
		{"compare unknown scheme", "POST", "/v1/compare", `{"mix": {"kind": "casestudy"}, "schemes": ["NUCA-9000"]}`, 400, "unknown scheme"},
		{"compare unknown bench", "POST", "/v1/compare", `{"mix": {"kind": "apps", "apps": [{"bench": "no-such"}]}}`, 400, "unknown benchmark"},
		{"compare bad config", "POST", "/v1/compare", `{"config": {"mesh_width": -3}, "mix": {"kind": "casestudy"}}`, 400, "invalid mesh"},
		{"compare GET rejected", "GET", "/v1/compare", "", 405, ""},
		{"experiment bad JSON", "POST", "/v1/experiment", `[]`, 400, "bad request body"},
		{"experiment unknown id", "POST", "/v1/experiment", `{"id": "fig99"}`, 404, "unknown experiment"},
		{"experiment empty id", "POST", "/v1/experiment", `{}`, 400, "needs an id"},
		{"job unknown", "GET", "/v1/jobs/j999", "", 404, "unknown job"},
		{"job cancel unknown", "DELETE", "/v1/jobs/j999", "", 404, "unknown job"},
		{"healthz", "GET", "/healthz", "", 200, `"ok"`},
		{"metrics", "GET", "/metrics", "", 200, "cdcs_cache_hits_total"},
		{"experiments list", "GET", "/v1/experiments", "", 200, "fig11"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(h, tc.method, tc.path, tc.body)
			if w.Code != tc.wantCode {
				t.Fatalf("%s %s -> %d, want %d (body: %s)", tc.method, tc.path, w.Code, tc.wantCode, w.Body)
			}
			if tc.wantInBody != "" && !strings.Contains(w.Body.String(), tc.wantInBody) {
				t.Errorf("body %q does not contain %q", w.Body, tc.wantInBody)
			}
		})
	}
}

func TestCompareColdThenCachedIdentical(t *testing.T) {
	s, h := testServer(t, Options{})
	cold := do(h, "POST", "/v1/compare", smallCompare)
	if cold.Code != 200 {
		t.Fatalf("cold: %d %s", cold.Code, cold.Body)
	}
	if got := cold.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("cold X-Cache = %q, want miss", got)
	}
	warm := do(h, "POST", "/v1/compare", smallCompare)
	if warm.Code != 200 {
		t.Fatalf("warm: %d %s", warm.Code, warm.Body)
	}
	if got := warm.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("warm X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("cached response is not byte-identical to the cold response")
	}
	if n := s.Stats().Simulations; n != 1 {
		t.Errorf("simulations = %d, want 1 (the hit must not touch the engine)", n)
	}
	// Field order in the request body must not defeat the cache.
	reordered := do(h, "POST", "/v1/compare", `{
		"seed": 1,
		"schemes": ["S-NUCA", "CDCS"],
		"mix": {"n": 6, "kind": "random", "seed": 11},
		"config": {"mem_channels": 4, "mesh_height": 4, "mesh_width": 4,
		           "bank_kb": 256, "mem_latency": 120, "hop_latency": 4, "bank_latency": 9}
	}`)
	if reordered.Header().Get("X-Cache") != "hit" {
		t.Error("reordered request missed the cache")
	}
	if !bytes.Equal(cold.Body.Bytes(), reordered.Body.Bytes()) {
		t.Error("reordered request got different bytes")
	}
	var resp struct {
		Hash       string `json:"hash"`
		Comparison struct {
			Baseline        string             `json:"baseline"`
			WeightedSpeedup map[string]float64 `json:"weighted_speedup"`
		} `json:"comparison"`
	}
	if err := json.Unmarshal(cold.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if resp.Comparison.Baseline != "S-NUCA" || len(resp.Comparison.WeightedSpeedup) != 2 {
		t.Errorf("unexpected comparison: %+v", resp.Comparison)
	}
	if resp.Hash != cold.Header().Get("X-Request-Hash") {
		t.Error("body hash differs from X-Request-Hash header")
	}
}

// waitJob polls a job until it reaches a terminal status.
func waitJob(t *testing.T, h http.Handler, id string, timeout time.Duration) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		w := do(h, "GET", "/v1/jobs/"+id, "")
		if w.Code != 200 {
			t.Fatalf("GET job %s: %d %s", id, w.Code, w.Body)
		}
		var v View
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Fatalf("job view: %v", err)
		}
		switch v.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExperimentAsyncThenCached(t *testing.T) {
	s, h := testServer(t, Options{})
	body := `{"id": "fig2", "quick": true}`
	w := do(h, "POST", "/v1/experiment", body)
	if w.Code != 202 {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var v View
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || w.Header().Get("Location") != "/v1/jobs/"+v.ID {
		t.Fatalf("bad job view/Location: %+v %q", v, w.Header().Get("Location"))
	}
	final := waitJob(t, h, v.ID, 30*time.Second)
	if final.Status != StatusDone {
		t.Fatalf("job finished %s: %s", final.Status, final.Error)
	}
	var res struct {
		Report string `json:"report"`
	}
	if err := json.Unmarshal(final.Result, &res); err != nil || !strings.Contains(res.Report, "fig2") {
		t.Fatalf("result report missing: %v %q", err, res.Report)
	}
	sims := s.Stats().Simulations

	// Same request again: served from cache as an instantly-done job.
	w2 := do(h, "POST", "/v1/experiment", body)
	if w2.Code != 200 {
		t.Fatalf("cached submit: %d %s", w2.Code, w2.Body)
	}
	var v2 View
	if err := json.Unmarshal(w2.Body.Bytes(), &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusDone || !v2.Cached {
		t.Fatalf("cached job view: %+v", v2)
	}
	if !bytes.Equal(v2.Result, final.Result) {
		t.Error("cached experiment result differs from the fresh one")
	}
	if s.Stats().Simulations != sims {
		t.Error("cached experiment touched the engine")
	}
}

func TestExperimentCancellationMidJob(t *testing.T) {
	_, h := testServer(t, Options{Workers: 1})
	// fig11 at paper scale is long enough to be mid-flight when the cancel
	// lands.
	w := do(h, "POST", "/v1/experiment", `{"id": "fig11", "mixes": 40}`)
	if w.Code != 202 {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var v View
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	// Wait for it to leave the queue so we cancel a *running* job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		g := do(h, "GET", "/v1/jobs/"+v.ID, "")
		var cur View
		if err := json.Unmarshal(g.Body.Bytes(), &cur); err != nil {
			t.Fatal(err)
		}
		if cur.Status == StatusRunning {
			break
		}
		if cur.Status != StatusQueued || time.Now().After(deadline) {
			t.Fatalf("job never ran: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	del := do(h, "DELETE", "/v1/jobs/"+v.ID, "")
	if del.Code != 202 {
		t.Fatalf("cancel: %d %s", del.Code, del.Body)
	}
	final := waitJob(t, h, v.ID, 30*time.Second)
	if final.Status != StatusCanceled {
		t.Fatalf("status after cancel = %s (err %q), want canceled", final.Status, final.Error)
	}
	// Canceling a finished job conflicts.
	again := do(h, "DELETE", "/v1/jobs/"+v.ID, "")
	if again.Code != 409 {
		t.Errorf("second cancel: %d, want 409", again.Code)
	}
}

func TestQueueFullReturns503(t *testing.T) {
	_, h := testServer(t, Options{Workers: 1, QueueDepth: 1})
	// Occupy the single worker with a long job, then fill the single queue
	// slot, then overflow with a third distinct request.
	first := do(h, "POST", "/v1/experiment", `{"id": "fig11", "mixes": 30}`)
	if first.Code != 202 {
		t.Fatalf("first submit: %d %s", first.Code, first.Body)
	}
	var v View
	if err := json.Unmarshal(first.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for { // wait until it occupies the worker, freeing the queue slot
		g := do(h, "GET", "/v1/jobs/"+v.ID, "")
		var cur View
		if err := json.Unmarshal(g.Body.Bytes(), &cur); err != nil {
			t.Fatal(err)
		}
		if cur.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never ran: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	second := do(h, "POST", "/v1/experiment", `{"id": "fig11", "mixes": 31}`)
	if second.Code != 202 {
		t.Fatalf("second submit: %d %s", second.Code, second.Body)
	}
	third := do(h, "POST", "/v1/experiment", `{"id": "fig11", "mixes": 32}`)
	if third.Code != 503 {
		t.Fatalf("overflow submit: %d, want 503 (%s)", third.Code, third.Body)
	}
	if !strings.Contains(third.Body.String(), "queue full") {
		t.Errorf("overflow body: %s", third.Body)
	}
}

func TestSubmitAfterCloseReturns503(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	s.Close()
	// A request racing shutdown must be rejected, not stranded on a queue
	// no worker drains.
	w := do(h, "POST", "/v1/compare", smallCompare)
	if w.Code != 503 {
		t.Fatalf("compare after close: %d %s", w.Code, w.Body)
	}
	w = do(h, "POST", "/v1/experiment", `{"id": "fig2", "quick": true}`)
	if w.Code != 503 {
		t.Fatalf("experiment after close: %d %s", w.Code, w.Body)
	}
}

func TestJobRegistryRetentionBounded(t *testing.T) {
	m := newManager(1, 1, 0)
	defer m.close()
	var last *Job
	for i := 0; i < 4*maxRetainedJobs; i++ {
		last = m.completed("compare", "h", []byte("r"))
	}
	m.mu.Lock()
	n := len(m.jobs)
	m.mu.Unlock()
	if n > maxRetainedJobs {
		t.Errorf("registry holds %d jobs, want <= %d", n, maxRetainedJobs)
	}
	if _, ok := m.get(last.ID); !ok {
		t.Error("most recent job was evicted")
	}
}

func TestJobSSEStream(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/experiment", "application/json",
		strings.NewReader(`{"id": "fig2", "quick": true, "seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID, nil)
	req.Header.Set("Accept", "text/event-stream")
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []string
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if len(events) > 0 && events[len(events)-1] == "done" {
			break
		}
	}
	if len(events) == 0 || events[0] != "job" || events[len(events)-1] != "done" {
		t.Fatalf("event sequence = %v, want job ... done", events)
	}
}

// TestPprofMountedOnlyWhenEnabled pins the -pprof contract: the profiling
// endpoints exist exactly when Options.Pprof is set. The default server must
// expose no introspection surface (404, with the API still up), and the
// opt-in server must serve the pprof index and sub-handlers.
func TestPprofMountedOnlyWhenEnabled(t *testing.T) {
	paths := []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
	}

	_, off := testServer(t, Options{})
	for _, p := range paths {
		if w := do(off, "GET", p, ""); w.Code != http.StatusNotFound {
			t.Errorf("Pprof off: GET %s -> %d, want 404", p, w.Code)
		}
	}

	_, on := testServer(t, Options{Pprof: true})
	for _, p := range paths {
		if w := do(on, "GET", p, ""); w.Code != http.StatusOK {
			t.Errorf("Pprof on: GET %s -> %d, want 200 (body: %s)", p, w.Code, w.Body)
		}
	}
	// The index actually is the pprof page, not some other 200.
	if w := do(on, "GET", "/debug/pprof/", ""); !strings.Contains(w.Body.String(), "goroutine") {
		t.Errorf("pprof index does not look like a profile listing: %q", w.Body)
	}
	// Mounting pprof must not displace the API routes.
	if w := do(on, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("Pprof on: /healthz -> %d, want 200", w.Code)
	}
}
