package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWarmRestartServesFromDisk is the tentpole's acceptance check at the
// server layer: a replica restarted onto the same -cache-dir replays a
// completed sweep with zero simulations and byte-identical responses.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	s1, h1 := testServer(t, Options{CacheDir: dir})
	cold := do(h1, "POST", "/v1/sweep", smallSweep)
	if cold.Code != 200 {
		t.Fatalf("cold sweep: %d %s", cold.Code, cold.Body)
	}
	coldSims := s1.Stats().Simulations
	if coldSims == 0 {
		t.Fatal("cold sweep ran no simulations")
	}
	s1.Close()

	// A fresh process: new Server, same directory, empty memory tier.
	s2, h2 := testServer(t, Options{CacheDir: dir})
	warm := do(h2, "POST", "/v1/sweep", smallSweep)
	if warm.Code != 200 {
		t.Fatalf("warm sweep: %d %s", warm.Code, warm.Body)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("restarted replica's sweep is not byte-identical")
	}
	if got := warm.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("warm sweep X-Cache = %q, want hit (every cell from disk)", got)
	}
	if n := s2.Stats().Simulations; n != 0 {
		t.Errorf("restarted replica ran %d simulations, want 0", n)
	}
	st := s2.Stats().Cache
	if st.Tier("disk").Hits == 0 {
		t.Error("no disk-tier hits recorded on the warm replica")
	}

	// The same cells as individual compares also come from disk, and the
	// second lookup is served by the promoted memory entry.
	cmp1 := do(h2, "POST", "/v1/compare", smallCompareHop(2))
	cmp2 := do(h2, "POST", "/v1/compare", smallCompareHop(2))
	if cmp1.Header().Get("X-Cache") != "hit" || cmp2.Header().Get("X-Cache") != "hit" {
		t.Errorf("compares on warm replica: X-Cache %q then %q, want hit/hit",
			cmp1.Header().Get("X-Cache"), cmp2.Header().Get("X-Cache"))
	}
	if !bytes.Equal(cmp1.Body.Bytes(), cmp2.Body.Bytes()) {
		t.Error("repeated compare bytes differ")
	}
	if n := s2.Stats().Simulations; n != 0 {
		t.Errorf("warm compares ran %d simulations, want 0", n)
	}
}

// smallCompareHop is smallSweep's cell (see sweep_test.go) at the given hop
// latency, spelled as a standalone compare body.
func smallCompareHop(hop int) string {
	return fmt.Sprintf(`{
		"config": {"mesh_width": 4, "mesh_height": 4, "bank_kb": 256,
		           "bank_latency": 9, "hop_latency": %d, "mem_latency": 120, "mem_channels": 8},
		"mix": {"kind": "random", "seed": 11, "n": 6},
		"schemes": ["S-NUCA", "CDCS"],
		"seed": 1
	}`, hop)
}

// TestMetricsCarryTierLabels pins the exposition format the CI smoke job
// greps for.
func TestMetricsCarryTierLabels(t *testing.T) {
	dir := t.TempDir()
	_, h := testServer(t, Options{CacheDir: dir})
	if w := do(h, "POST", "/v1/compare", smallCompare); w.Code != 200 {
		t.Fatalf("compare: %d %s", w.Code, w.Body)
	}
	m := do(h, "GET", "/metrics", "")
	for _, want := range []string{
		`cdcs_cache_hits_total{tier="memory"} `,
		`cdcs_cache_hits_total{tier="disk"} `,
		`cdcs_cache_misses_total{tier="disk"} `,
		`cdcs_cache_evictions_total{tier="memory"} `,
		`cdcs_cache_bytes{tier="disk"} `,
		`cdcs_cache_errors_total{tier="disk"} 0`,
		"cdcs_simulations_total 1",
	} {
		if !strings.Contains(m.Body.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, m.Body)
		}
	}
}

// TestCorruptDiskEntryResimulatedByServer ties the corruption-tolerance
// path end to end: damage the one disk entry under a restarted replica and
// the request re-simulates (exactly once) instead of failing or panicking.
func TestCorruptDiskEntryResimulatedByServer(t *testing.T) {
	dir := t.TempDir()
	s1, h1 := testServer(t, Options{CacheDir: dir})
	cold := do(h1, "POST", "/v1/compare", smallCompare)
	if cold.Code != 200 {
		t.Fatalf("cold: %d %s", cold.Code, cold.Body)
	}
	s1.Close()

	// Bit-flip every entry file's payload region.
	n := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".e") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		raw[len(raw)-1] ^= 0x01
		n++
		return os.WriteFile(path, raw, 0o644)
	})
	if err != nil || n == 0 {
		t.Fatalf("damaged %d entries, err=%v", n, err)
	}

	s2, h2 := testServer(t, Options{CacheDir: dir})
	warm := do(h2, "POST", "/v1/compare", smallCompare)
	if warm.Code != 200 {
		t.Fatalf("after corruption: %d %s", warm.Code, warm.Body)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("re-simulated response differs from the original")
	}
	if got := warm.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss (corrupt entry must not serve)", got)
	}
	if sims := s2.Stats().Simulations; sims != 1 {
		t.Errorf("simulations = %d, want 1", sims)
	}
	if errs := s2.Stats().Cache.Tier("disk").Errors; errs == 0 {
		t.Error("corruption not counted in disk-tier errors")
	}
	// The write-through repaired the entry: one more restart serves it.
	s2.Close()
	s3, h3 := testServer(t, Options{CacheDir: dir})
	again := do(h3, "POST", "/v1/compare", smallCompare)
	if again.Header().Get("X-Cache") != "hit" || s3.Stats().Simulations != 0 {
		t.Errorf("entry not repaired: X-Cache=%q, sims=%d",
			again.Header().Get("X-Cache"), s3.Stats().Simulations)
	}
}
