package server

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdcs/internal/resultstore"
)

// TestBlobEndpointServesFramedEntries pins the peer-fill wire format: a
// stored entry comes back in the keyed blob frame (resultstore.EncodeBlob)
// bound to the requested address, and unknown hashes are clean 404s.
func TestBlobEndpointServesFramedEntries(t *testing.T) {
	_, h := testServer(t, Options{CacheDir: t.TempDir()})
	cmp := do(h, "POST", "/v1/compare", smallCompare)
	if cmp.Code != 200 {
		t.Fatalf("compare: %d %s", cmp.Code, cmp.Body)
	}
	hash := cmp.Header().Get("X-Request-Hash")
	if hash == "" {
		t.Fatal("compare response carries no X-Request-Hash")
	}

	blob := do(h, "GET", "/v1/blob/"+hash, "")
	if blob.Code != 200 {
		t.Fatalf("blob: %d %s", blob.Code, blob.Body)
	}
	if ct := blob.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("blob Content-Type = %q", ct)
	}
	val, err := resultstore.DecodeBlob(hash, blob.Body.Bytes())
	if err != nil {
		t.Fatalf("blob frame does not decode: %v", err)
	}
	if !bytes.Equal(val, cmp.Body.Bytes()) {
		t.Error("blob payload differs from the compare response")
	}
	// The frame is bound to the address it answers: verifying it against a
	// different key must fail, which is what protects a peer from a stale
	// response for the wrong hash.
	if _, err := resultstore.DecodeBlob(strings.Repeat("0", 64), blob.Body.Bytes()); err == nil {
		t.Error("blob frame verified against the wrong content address")
	}

	if w := do(h, "GET", "/v1/blob/"+strings.Repeat("0", 64), ""); w.Code != 404 {
		t.Errorf("unknown hash: %d, want 404", w.Code)
	}
	if w := do(h, "GET", "/v1/blob/"+strings.Repeat("a", 200), ""); w.Code != 400 {
		t.Errorf("oversized hash: %d, want 400", w.Code)
	}
}

// TestPeerFillServesColdReplica is the tentpole's fleet-level acceptance
// check: a replica with an empty cache directory and a warm peer replays
// the peer's sweep byte-identically with zero local simulations — every
// cell arrives through the peer tier and is promoted into local tiers.
func TestPeerFillServesColdReplica(t *testing.T) {
	// Replica B: warm — it computed the sweep.
	dirB := t.TempDir()
	sB, hB := testServer(t, Options{CacheDir: dirB})
	warm := do(hB, "POST", "/v1/sweep", smallSweep)
	if warm.Code != 200 {
		t.Fatalf("warm sweep on B: %d %s", warm.Code, warm.Body)
	}
	if sB.Stats().Simulations == 0 {
		t.Fatal("B computed nothing")
	}
	peerB := httptest.NewServer(hB)
	defer peerB.Close()

	// Replica A: cold — empty directory, B as its only peer.
	sA, hA := testServer(t, Options{CacheDir: t.TempDir(), Peers: []string{peerB.URL}})
	cold := do(hA, "POST", "/v1/sweep", smallSweep)
	if cold.Code != 200 {
		t.Fatalf("sweep on A: %d %s", cold.Code, cold.Body)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("A's peer-filled sweep is not byte-identical to B's")
	}
	if n := sA.Stats().Simulations; n != 0 {
		t.Errorf("cold replica ran %d simulations with a warm peer, want 0", n)
	}
	st := sA.Stats().Cache
	if st.Tier("peer").Hits == 0 {
		t.Error("no peer-tier hits recorded on the cold replica")
	}
	if st.Tier("peer").Errors != 0 {
		t.Errorf("peer-tier errors = %d", st.Tier("peer").Errors)
	}

	// The fetched entries were promoted: a replay with B gone never leaves
	// the process.
	peerB.Close()
	replay := do(hA, "POST", "/v1/sweep", smallSweep)
	if replay.Code != 200 || !bytes.Equal(replay.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("promoted entries did not survive the peer going away")
	}
	if n := sA.Stats().Simulations; n != 0 {
		t.Errorf("replay after peer death ran %d simulations", n)
	}

	// And the peer-tier metrics are observable.
	m := do(hA, "GET", "/metrics", "")
	if !strings.Contains(m.Body.String(), `cdcs_cache_hits_total{tier="peer"} `) {
		t.Errorf("metrics missing peer tier:\n%s", m.Body)
	}
}

// TestCompressedWarmRestart mirrors TestWarmRestartServesFromDisk on the
// chunked tier: restart onto the same compressed cache directory, replay
// with zero simulations and byte-identical responses.
func TestCompressedWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1, h1 := testServer(t, Options{CacheDir: dir, CacheCompress: true})
	cold := do(h1, "POST", "/v1/sweep", smallSweep)
	if cold.Code != 200 {
		t.Fatalf("cold sweep: %d %s", cold.Code, cold.Body)
	}
	if s1.Stats().Simulations == 0 {
		t.Fatal("cold sweep ran no simulations")
	}
	s1.Close()

	s2, h2 := testServer(t, Options{CacheDir: dir, CacheCompress: true})
	warm := do(h2, "POST", "/v1/sweep", smallSweep)
	if warm.Code != 200 {
		t.Fatalf("warm sweep: %d %s", warm.Code, warm.Body)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("chunked warm replay is not byte-identical")
	}
	if got := warm.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache = %q, want hit", got)
	}
	if n := s2.Stats().Simulations; n != 0 {
		t.Errorf("restarted replica ran %d simulations, want 0", n)
	}
	disk := s2.Stats().Cache.Tier("disk")
	if disk.Hits == 0 {
		t.Error("no disk-tier hits on the chunked warm replica")
	}
	// The chunked tier reports both physical and logical occupancy, and
	// compression must pay even on this two-cell corpus (whose sub-chunk
	// entries get no cross-entry dedup — the ≤ 0.5 corpus-level ratio is
	// pinned on a realistic sweep corpus in resultstore and EXPERIMENTS.md).
	if disk.LogicalBytes == 0 || disk.Bytes == 0 {
		t.Fatalf("occupancy not reported: %+v", disk)
	}
	if disk.Bytes >= disk.LogicalBytes {
		t.Errorf("stored %d bytes for %d logical; compression did not pay",
			disk.Bytes, disk.LogicalBytes)
	}
	m := do(h2, "GET", "/metrics", "")
	if !strings.Contains(m.Body.String(), `cdcs_cache_logical_bytes{tier="disk"} `) {
		t.Errorf("metrics missing logical bytes:\n%s", m.Body)
	}
}

// TestCorruptChunkResimulatedByServer is the chunked twin of
// TestCorruptDiskEntryResimulatedByServer: damage every chunk file under a
// restarted replica and requests re-simulate instead of failing, then the
// write-through repairs the store.
func TestCorruptChunkResimulatedByServer(t *testing.T) {
	dir := t.TempDir()
	s1, h1 := testServer(t, Options{CacheDir: dir, CacheCompress: true})
	cold := do(h1, "POST", "/v1/compare", smallCompare)
	if cold.Code != 200 {
		t.Fatalf("cold: %d %s", cold.Code, cold.Body)
	}
	s1.Close()

	n := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".c") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		raw[len(raw)/2] ^= 0x01
		n++
		return os.WriteFile(path, raw, 0o644)
	})
	if err != nil || n == 0 {
		t.Fatalf("damaged %d chunks, err=%v", n, err)
	}

	s2, h2 := testServer(t, Options{CacheDir: dir, CacheCompress: true})
	warm := do(h2, "POST", "/v1/compare", smallCompare)
	if warm.Code != 200 {
		t.Fatalf("after corruption: %d %s", warm.Code, warm.Body)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("re-simulated response differs from the original")
	}
	if got := warm.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	if sims := s2.Stats().Simulations; sims != 1 {
		t.Errorf("simulations = %d, want 1", sims)
	}
	if s2.Stats().Cache.Tier("disk").Errors == 0 {
		t.Error("chunk corruption not counted in disk-tier errors")
	}
	s2.Close()
	s3, h3 := testServer(t, Options{CacheDir: dir, CacheCompress: true})
	again := do(h3, "POST", "/v1/compare", smallCompare)
	if again.Header().Get("X-Cache") != "hit" || s3.Stats().Simulations != 0 {
		t.Errorf("entry not repaired: X-Cache=%q, sims=%d",
			again.Header().Get("X-Cache"), s3.Stats().Simulations)
	}
}

// TestStoreInjection pins the dependency inversion: a caller-composed chain
// is used as-is, and conflicting cache settings are rejected loudly.
func TestStoreInjection(t *testing.T) {
	store := resultstore.Chain(resultstore.MemoryTier(8))
	s, h := testServer(t, Options{Store: store})
	if w := do(h, "POST", "/v1/compare", smallCompare); w.Code != 200 {
		t.Fatalf("compare: %d %s", w.Code, w.Body)
	}
	// The injected store saw the traffic.
	if store.Stats().Tiers[0].Misses == 0 {
		t.Error("injected store saw no lookups")
	}
	if got := len(s.Stats().Cache.Tiers); got != 1 {
		t.Errorf("server stats report %d tiers, want the injected chain's 1", got)
	}

	for _, bad := range []Options{
		{Store: store, CacheEntries: 16},
		{Store: store, CacheDir: t.TempDir()},
		{Store: store, Peers: []string{"http://x:1"}},
		{CacheCompress: true},     // requires CacheDir
		{CacheDiskBytes: 1 << 20}, // requires CacheDir
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%+v) accepted conflicting options", bad)
		}
	}
}
