package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// liveServer starts a server on a real listener with dynamic membership:
// Advertise is derived from the bound address the way `cdcs-serve
// -advertise auto` does, so gossip and warm joins run over real HTTP.
func liveServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	opts.Advertise = url
	s, err := New(opts)
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { s.Close(); hs.Close() })
	return s, url
}

// membersOf polls GET /v1/members on url.
func membersOf(t *testing.T, url string) (members []string, epoch uint64, status string) {
	t.Helper()
	resp, err := http.Get(url + "/v1/members")
	if err != nil {
		t.Fatalf("GET %s/v1/members: %v", url, err)
	}
	defer resp.Body.Close()
	var body struct {
		Members []string `json:"members"`
		Epoch   uint64   `json:"epoch"`
		Status  string   `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Members, body.Epoch, body.Status
}

func waitUntil(t *testing.T, pred func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestMembershipEndpointsConverge pins the gossip transport: announcing a
// join on one member propagates the grown view to the others, a leave
// shrinks it back, and both sides agree on list and epoch.
func TestMembershipEndpointsConverge(t *testing.T) {
	sa, urlA := liveServer(t, Options{})
	_, urlB := liveServer(t, Options{})

	// a and b start knowing only themselves. Announce b's join on a: a's
	// view grows and gossips to b, whose equal-epoch different list merges
	// to the same union.
	resp := postJSON(t, urlA+"/v1/join", fmt.Sprintf(`{"url":%q}`, urlB))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join -> %d", resp.StatusCode)
	}
	var snap struct {
		Members []string `json:"members"`
		Epoch   uint64   `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Members) != 2 {
		t.Fatalf("join response members = %v", snap.Members)
	}
	waitUntil(t, func() bool {
		m, _, _ := membersOf(t, urlB)
		return len(m) == 2
	}, "the join to gossip to b")
	ma, ea, _ := membersOf(t, urlA)
	mb, eb, _ := membersOf(t, urlB)
	if strings.Join(ma, ",") != strings.Join(mb, ",") || ea != eb {
		t.Fatalf("views diverged: %v@%d vs %v@%d", ma, ea, mb, eb)
	}

	// Leave: announced on a, converges on b too.
	resp = postJSON(t, urlA+"/v1/leave", fmt.Sprintf(`{"url":%q}`, urlB))
	resp.Body.Close()
	waitUntil(t, func() bool {
		m, _, _ := membersOf(t, urlB)
		return len(m) == 1 && m[0] == urlA
	}, "the leave to gossip to b")
	if got := sa.membership.Members(); len(got) != 1 || got[0] != urlA {
		t.Fatalf("a's members after leave = %v", got)
	}

	// Malformed bodies are rejected.
	for _, body := range []string{``, `{}`, `{"bogus":1}`} {
		resp = postJSON(t, urlA+"/v1/join", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("join %q -> %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestHealthzCarriesIdentityAndMembership pins the probe payload: /healthz
// stays a 200 "ok" for liveness, but now also carries the instance id and
// the (members, epoch) snapshot that fleet probers and sweep coordinators
// parse.
func TestHealthzCarriesIdentityAndMembership(t *testing.T) {
	s, h := testServer(t, Options{Advertise: "http://self:1"})
	w := do(h, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz -> %d", w.Code)
	}
	var body struct {
		Status  string   `json:"status"`
		ID      string   `json:"id"`
		Members []string `json:"members"`
		Epoch   *uint64  `json:"epoch"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.ID == "" || body.ID != s.ID() {
		t.Errorf("healthz status/id = %q/%q", body.Status, body.ID)
	}
	if len(body.Members) != 1 || body.Members[0] != "http://self:1" || body.Epoch == nil {
		t.Errorf("healthz membership = %v epoch %v", body.Members, body.Epoch)
	}

	// Without membership the fields stay absent — and two servers never
	// share an id.
	s2, h2 := testServer(t, Options{})
	w = do(h2, "GET", "/healthz", "")
	if strings.Contains(w.Body.String(), `"members"`) {
		t.Errorf("membership-less healthz leaked members: %s", w.Body)
	}
	if s2.ID() == s.ID() {
		t.Error("two instances minted the same identity token")
	}
}

// TestDrainLifecycle pins graceful drain: work endpoints refuse with a
// retryable 503 the moment the drain starts, the replica leaves the member
// list once idle, healthz flips to 503 "drained", and the read side —
// blobs, manifest, metrics — stays up.
func TestDrainLifecycle(t *testing.T) {
	s, url := liveServer(t, Options{})

	// Populate the cache so the manifest has something to serve post-drain.
	resp := postJSON(t, url+"/v1/compare", smallCompare)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare -> %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, url+"/v1/drain", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain -> %d", resp.StatusCode)
	}
	resp.Body.Close()

	// New work is refused with the retryable status the fan-out client
	// treats as "try the next replica".
	resp = postJSON(t, url+"/v1/compare", smallCompare)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("compare while draining -> %d (Retry-After %q), want 503 + Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	// Idle, so the drain completes: the replica leaves its own member list
	// and healthz reports drained with a non-200 code.
	waitUntil(t, func() bool {
		hr, err := http.Get(url + "/healthz")
		if err != nil {
			return false
		}
		defer hr.Body.Close()
		var body struct {
			Status string `json:"status"`
		}
		json.NewDecoder(hr.Body).Decode(&body)
		return hr.StatusCode == http.StatusServiceUnavailable && body.Status == "drained"
	}, "the drain to complete")
	if s.membership.Contains(url) {
		t.Error("drained replica still in its own member list")
	}

	// Idempotent: a second drain just reports the state.
	resp = postJSON(t, url+"/v1/drain", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("second drain -> %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The read side survives: manifest and metrics still answer, and the
	// drain is counted.
	mresp, err := http.Get(url + "/v1/manifest")
	if err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("manifest after drain: %v (%v)", mresp, err)
	}
	var manifest struct {
		Keys  []string `json:"keys"`
		Count int      `json:"count"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&manifest); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if manifest.Count == 0 {
		t.Error("manifest empty after a served compare")
	}
	metrics, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := new(strings.Builder)
	if _, err := io.Copy(mb, metrics.Body); err != nil {
		t.Fatal(err)
	}
	metrics.Body.Close()
	if !strings.Contains(mb.String(), "cdcs_fleet_drains_total 1") {
		t.Errorf("metrics missing drain count:\n%s", mb.String())
	}
}

// TestJoinFleetWarmFill pins the warm-join protocol end to end: the joiner
// adopts the seed's view, batch-fills its local store from the seed's
// manifest via /v1/blob, announces itself, and then serves the warmed cells
// with zero simulations.
func TestJoinFleetWarmFill(t *testing.T) {
	_, seedURL := liveServer(t, Options{})

	// Give the seed a corpus: one computed compare.
	resp := postJSON(t, seedURL+"/v1/compare", smallCompare)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed compare -> %d", resp.StatusCode)
	}
	seedBody := new(strings.Builder)
	if _, err := io.Copy(seedBody, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	joiner, joinerURL := liveServer(t, Options{Join: seedURL})
	st, err := joiner.JoinFleet(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys == 0 || st.Filled != st.Keys || st.Failed != 0 {
		t.Fatalf("warm fill stats = %+v, want every manifest key filled", st)
	}
	if st.Members != 2 {
		t.Fatalf("post-join fleet size = %d, want 2", st.Members)
	}

	// Both sides agree the joiner is a member.
	waitUntil(t, func() bool {
		m, _, _ := membersOf(t, seedURL)
		return len(m) == 2
	}, "the seed to admit the joiner")
	if !joiner.membership.Contains(joinerURL) || !joiner.membership.Contains(seedURL) {
		t.Fatalf("joiner's view = %v", joiner.membership.Members())
	}

	// The warmed cell is served from the joiner's local tiers: identical
	// bytes, zero simulations.
	resp = postJSON(t, joinerURL+"/v1/compare", smallCompare)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("joiner compare -> %d", resp.StatusCode)
	}
	joinerBody := new(strings.Builder)
	if _, err := io.Copy(joinerBody, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if joinerBody.String() != seedBody.String() {
		t.Error("joiner's warmed response differs from the seed's")
	}
	if sims := joiner.Stats().Simulations; sims != 0 {
		t.Errorf("joiner simulated %d times, want 0 (warm fill must cover the corpus)", sims)
	}

	// The joins metric moved on both sides.
	for _, url := range []string{seedURL, joinerURL} {
		mr, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		mb := new(strings.Builder)
		io.Copy(mb, mr.Body)
		mr.Body.Close()
		if !strings.Contains(mb.String(), "cdcs_fleet_members 2") {
			t.Errorf("%s metrics missing cdcs_fleet_members 2:\n%s", url, mb.String())
		}
		joins := false
		for _, line := range strings.Split(mb.String(), "\n") {
			if strings.HasPrefix(line, "cdcs_fleet_joins_total ") && !strings.HasSuffix(line, " 0") {
				joins = true
			}
		}
		if !joins {
			t.Errorf("%s metrics missing nonzero cdcs_fleet_joins_total", url)
		}
	}
}

// TestJoinFleetRequiresReachableSeed pins the abort contract: a join that
// cannot complete the handshake fails with the fleet unchanged.
func TestJoinFleetRequiresReachableSeed(t *testing.T) {
	// A seed address nothing listens on.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + dead.Addr().String()
	dead.Close()

	joiner, joinerURL := liveServer(t, Options{Join: deadURL})
	if _, err := joiner.JoinFleet(context.Background()); err == nil {
		t.Fatal("JoinFleet through a dead seed succeeded")
	}
	// A joiner starts outside its own member list and the failed join must
	// not have admitted it anywhere — not even in its own view.
	if joiner.membership.Contains(joinerURL) {
		t.Fatalf("failed join admitted the joiner: %v", joiner.membership.Members())
	}
}
