package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"cdcs/internal/resultstore"
)

// This file is the dynamic-membership half of the serving layer: the
// join/leave/drain endpoints, gossip propagation of (members, epoch)
// snapshots over the existing peer links, graceful drain, and the warm-join
// client (JoinFleet) a starting replica uses to adopt the fleet's view and
// batch-fill its store from a seed peer before announcing itself.
//
// The registry itself (epoch rules, conflict resolution) lives in
// internal/fleet.Membership; this file is only its HTTP transport plus the
// server-side lifecycle that hangs off membership changes.

// Drain states. A replica serves normally (active), then refuses new work
// while finishing what it has (draining), then has left the member list and
// only answers read-side requests — blobs, manifest, metrics — until the
// process is retired (drained).
const (
	drainStateActive   int32 = 0
	drainStateDraining int32 = 1
	drainStateDrained  int32 = 2
)

// newInstanceID mints the identity token /healthz carries: random, fresh
// per process, so a restarted replica on a reused address is recognized as
// a new instance (empty cache, clean record) rather than a revival.
func newInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Timestamp fallback: uniqueness across restarts is all that's
		// needed, unpredictability is not.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// ID returns this server's instance identity token.
func (s *Server) ID() string { return s.id }

// refuseDraining rejects a work-accepting request while draining or
// drained, with a retryable status: 503 is what the fan-out client already
// treats as "try the next replica in the ranking", so a coordinator
// mid-sweep re-routes refused cells exactly like cells of a breaker-open
// replica, with zero failures.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	state := s.draining.Load()
	if state == drainStateActive {
		return false
	}
	status := "draining"
	if state == drainStateDrained {
		status = "drained"
	}
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, "replica is %s; retry on another member", status)
	return true
}

// drainStatus names the current drain state for response bodies.
func (s *Server) drainStatus() string {
	switch s.draining.Load() {
	case drainStateDraining:
		return "draining"
	case drainStateDrained:
		return "drained"
	}
	return "ok"
}

// handleDrain starts a graceful drain: the replica immediately refuses new
// work (retryable 503s steer it to other members), finishes the jobs it
// already accepted, leaves the member list once idle, and then idles as a
// read-only blob server until the operator retires the process. Idempotent:
// repeated drains report the current state.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if s.draining.CompareAndSwap(drainStateActive, drainStateDraining) {
		s.drains.Add(1)
		s.wg.Add(1)
		go s.drainLoop()
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"status": s.drainStatus(),
		"id":     s.id,
	})
}

// drainLoop waits for the job queue to empty and the last accepted job to
// finish, then removes this replica from the member list (gossiping the
// shrunk view to the survivors) and marks the drain complete.
func (s *Server) drainLoop() {
	defer s.wg.Done()
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		_, active := s.jobs.counts()
		if active == 0 && s.jobs.depth() == 0 {
			if s.membership != nil && s.advertise != "" {
				s.membership.Leave(s.advertise)
			}
			s.draining.Store(drainStateDrained)
			return
		}
	}
}

// membershipMessage is the body of join/leave requests and of every
// membership response: an announcement names one URL; gossip carries a
// whole (members, epoch) snapshot. Responses always carry the responder's
// snapshot, so every exchange synchronizes both directions.
type membershipMessage struct {
	URL     string   `json:"url,omitempty"`
	Members []string `json:"members,omitempty"`
	Epoch   uint64   `json:"epoch,omitempty"`
}

// handleJoin admits a member. Two forms: {"url": ...} announces one new
// replica (the warm joiner's final step), {"members": [...], "epoch": N}
// gossips a snapshot from another member (applied under the epoch rules).
// Either way the response is this replica's resulting snapshot, and any
// local change gossips onward so the fleet converges.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	s.handleMembershipChange(w, r, s.membership.Join)
}

// handleLeave removes a member; forms and propagation mirror handleJoin.
// Announcing a leave for a URL that is not a member is a no-op, so retried
// leaves are safe.
func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	s.handleMembershipChange(w, r, s.membership.Leave)
}

// handleMembershipChange decodes an announcement-or-gossip body, applies it
// via change (Join or Leave) or Membership.Apply, and responds with the
// resulting snapshot. Gossip of local changes rides the registry's OnChange
// hook (see New), not this handler.
func (s *Server) handleMembershipChange(w http.ResponseWriter, r *http.Request, change func(string) bool) {
	var msg membershipMessage
	if err := decodeStrict(w, r, &msg); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	switch {
	case msg.URL != "":
		change(msg.URL)
	case len(msg.Members) > 0 || msg.Epoch > 0:
		s.membership.Apply(msg.Members, msg.Epoch)
	default:
		writeErr(w, http.StatusBadRequest, "need url (announcement) or members+epoch (gossip)")
		return
	}
	members, epoch := s.membership.Snapshot()
	writeJSON(w, http.StatusOK, membershipMessage{Members: members, Epoch: epoch})
}

// handleMembers reports the replica's current membership view.
func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	members, epoch := s.membership.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"members": members,
		"epoch":   epoch,
		"id":      s.id,
		"status":  s.drainStatus(),
	})
}

// manifestLister is the store surface manifest export needs; the default
// tier chain implements it.
type manifestLister interface {
	LocalKeys() []string
}

// handleManifest lists the content addresses this replica's local tiers
// hold — the corpus a warm joiner batch-fills from via /v1/blob/{hash}.
// Stays up while draining: a draining replica's corpus is exactly what the
// survivors may want to copy out.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	var keys []string
	if ml, ok := s.cache.(manifestLister); ok {
		keys = ml.LocalKeys()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"keys":  keys,
		"count": len(keys),
	})
}

// propagate gossips a membership snapshot to every member except this
// replica, in the background. Each response carries the receiver's own
// snapshot and is applied locally, so a receiver holding a *newer* view
// corrects this replica in the same exchange. Deliveries are best-effort —
// a member that misses gossip converges later through any exchange with a
// member that has the newer epoch (every response resynchronizes) — and the
// recursion terminates because snapshots only propagate when they changed
// the receiver's view, which epoch monotonicity bounds.
func (s *Server) propagate(members []string, epoch uint64) {
	// Targets are the union of the previous and new lists: members just
	// removed still get the shrunk snapshot, so a kicked replica learns it
	// is out instead of holding a stale self-including view.
	s.gossipMu.Lock()
	prev := s.gossipPrev
	s.gossipPrev = members
	s.gossipMu.Unlock()
	seen := map[string]bool{}
	var targets []string
	for _, u := range without(append(append([]string(nil), members...), prev...), s.advertise) {
		if !seen[u] {
			seen[u] = true
			targets = append(targets, u)
		}
	}
	if len(targets) == 0 {
		return
	}
	body, err := json.Marshal(membershipMessage{Members: members, Epoch: epoch})
	if err != nil {
		return
	}
	for _, target := range targets {
		target := target
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			req, err := http.NewRequestWithContext(s.ctx, http.MethodPost, target+"/v1/join", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := s.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var theirs membershipMessage
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&theirs) == nil &&
				len(theirs.Members) > 0 {
				s.membership.Apply(theirs.Members, theirs.Epoch)
			}
		}()
	}
}

// JoinStats summarizes a JoinFleet run.
type JoinStats struct {
	// Seed is the peer joined through.
	Seed string `json:"seed"`
	// Members is the fleet size after joining.
	Members int `json:"members"`
	// Keys is the seed's manifest size; Filled counts entries fetched and
	// stored locally, Present entries already held, Failed per-key fetch
	// errors (tolerated — a failed key is simply served cold later).
	Keys    int `json:"keys"`
	Filled  int `json:"filled"`
	Present int `json:"present"`
	Failed  int `json:"failed"`
	// Elapsed is the whole join's wall time.
	Elapsed time.Duration `json:"elapsed"`
}

// joinFillWorkers bounds concurrent warm-fill blob fetches.
const joinFillWorkers = 8

// warmFiller is the store surface a warm fill needs — uncounted local
// lookups and write-through puts; the default tier chain implements it.
type warmFiller interface {
	GetLocal(key string) ([]byte, bool)
	Put(key string, val []byte)
}

// JoinFleet joins the fleet through the seed peer in Options.Join: adopt
// the seed's membership view, batch-fill the local store from the seed's
// corpus manifest (so the replica starts *warm* — cells the fleet already
// computed are served from local tiers with zero simulations), and only
// then announce Options.Advertise to the fleet. Call it after the listener
// is serving (peers learning of this replica will probe it back).
//
// Per-key fill failures are tolerated — a missing entry just means that
// cell is served cold later — but a failure to reach the seed's membership,
// manifest or join endpoint aborts the join with the fleet unchanged: a
// replica that cannot complete the handshake never becomes a member.
func (s *Server) JoinFleet(ctx context.Context) (JoinStats, error) {
	st := JoinStats{Seed: normalizeURL(s.opts.Join)}
	if st.Seed == "" {
		return st, fmt.Errorf("server: JoinFleet without Options.Join")
	}
	if s.membership == nil || s.advertise == "" {
		return st, fmt.Errorf("server: JoinFleet requires Advertise")
	}
	start := time.Now()

	// 1. Adopt the seed's view of the fleet, so the peer tier and routing
	// already know the members while the fill below runs.
	var view membershipMessage
	if err := s.getJSON(ctx, st.Seed+"/v1/members", &view); err != nil {
		return st, fmt.Errorf("server: join %s: members: %w", st.Seed, err)
	}
	s.membership.Apply(view.Members, view.Epoch)

	// 2. Fetch the seed's corpus manifest and batch-fill everything the
	// local tiers don't already hold.
	var manifest struct {
		Keys  []string `json:"keys"`
		Count int      `json:"count"`
	}
	if err := s.getJSON(ctx, st.Seed+"/v1/manifest", &manifest); err != nil {
		return st, fmt.Errorf("server: join %s: manifest: %w", st.Seed, err)
	}
	st.Keys = len(manifest.Keys)
	if filler, ok := s.cache.(warmFiller); ok && len(manifest.Keys) > 0 {
		var (
			mu   sync.Mutex
			wg   sync.WaitGroup
			work = make(chan string)
		)
		for w := 0; w < joinFillWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for key := range work {
					if _, ok := filler.GetLocal(key); ok {
						mu.Lock()
						st.Present++
						mu.Unlock()
						continue
					}
					val, err := s.fetchBlob(ctx, st.Seed, key)
					mu.Lock()
					if err != nil {
						st.Failed++
					} else {
						filler.Put(key, val)
						st.Filled++
					}
					mu.Unlock()
				}
			}()
		}
		for _, key := range manifest.Keys {
			work <- key
		}
		close(work)
		wg.Wait()
	}

	// 3. Announce: only now does the fleet route cells here — with the
	// corpus already local, they are served warm. The announcement response
	// is the seed's post-join snapshot; adopting it lands this replica's
	// own URL in its member list.
	body, err := json.Marshal(membershipMessage{URL: s.advertise})
	if err != nil {
		return st, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, st.Seed+"/v1/join", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return st, fmt.Errorf("server: join %s: announce: %w", st.Seed, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return st, fmt.Errorf("server: join %s: announce: %s: %s", st.Seed, resp.Status, bytes.TrimSpace(b))
	}
	var joined membershipMessage
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&joined); err != nil {
		return st, fmt.Errorf("server: join %s: announce response: %w", st.Seed, err)
	}
	s.membership.Apply(joined.Members, joined.Epoch)

	st.Members = len(s.membership.Members())
	st.Elapsed = time.Since(start)
	return st, nil
}

// fetchBlob fetches and verifies one framed entry from a peer.
func (s *Server) fetchBlob(ctx context.Context, peer, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/blob/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%s", resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return resultstore.DecodeBlob(key, raw)
}

// getJSON issues one GET and decodes the JSON response into v.
func (s *Server) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(v)
}
