package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// blockingJob returns a runFunc that signals `started` (if non-nil) and then
// blocks until its context is canceled, returning the context's error.
func blockingJob(started chan<- struct{}) runFunc {
	return func(ctx context.Context, progress func(int, int)) ([]byte, error) {
		if started != nil {
			close(started)
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

func TestJobTimeoutFiresMidRun(t *testing.T) {
	m := newManager(1, 4, 30*time.Millisecond)
	defer m.close()
	started := make(chan struct{})
	job, err := m.submit("compare", "h1", blockingJob(started))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is running when the timeout fires
	select {
	case <-job.Done:
	case <-time.After(5 * time.Second):
		t.Fatal("job never reached a terminal state after its timeout")
	}
	v := job.view(true)
	if v.Status != StatusFailed {
		t.Errorf("status %q, want %q", v.Status, StatusFailed)
	}
	if !strings.Contains(v.Error, "timed out") {
		t.Errorf("error %q does not mention the timeout", v.Error)
	}
	if jerr := job.terminalErr(); !errors.Is(jerr, context.DeadlineExceeded) {
		t.Errorf("terminal error %v does not wrap DeadlineExceeded", jerr)
	}
}

func TestJobCancelAfterComplete(t *testing.T) {
	m := newManager(1, 4, -1)
	defer m.close()
	job, err := m.submit("compare", "h1", func(ctx context.Context, progress func(int, int)) ([]byte, error) {
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done
	if got := job.view(true).Status; got != StatusDone {
		t.Fatalf("status %q, want done", got)
	}
	// Cancel after completion: rejected, and the job stays done with its
	// result intact (the API layer turns this into 409).
	if m.cancelJob(job) {
		t.Error("cancelJob succeeded on a completed job")
	}
	v := job.view(true)
	if v.Status != StatusDone || string(v.Result) != "done" {
		t.Errorf("cancel-after-complete mutated the job: status %q result %q", v.Status, v.Result)
	}
	// Idempotent: a second attempt is rejected the same way.
	if m.cancelJob(job) {
		t.Error("second cancelJob succeeded on a completed job")
	}
}

func TestJobCancelWhileQueuedAndRunning(t *testing.T) {
	m := newManager(1, 4, -1)
	defer m.close()
	started := make(chan struct{})
	running, err := m.submit("compare", "h-running", blockingJob(started))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.submit("compare", "h-queued", blockingJob(nil))
	if err != nil {
		t.Fatal(err)
	}
	// The queued job cancels instantly, never having run.
	if !m.cancelJob(queued) {
		t.Error("cancelJob rejected a queued job")
	}
	<-queued.Done
	if got := queued.view(false).Status; got != StatusCanceled {
		t.Errorf("queued job status %q, want canceled", got)
	}
	// The running job cancels via its context.
	if !m.cancelJob(running) {
		t.Error("cancelJob rejected a running job")
	}
	select {
	case <-running.Done:
	case <-time.After(5 * time.Second):
		t.Fatal("running job never finished after cancel")
	}
	if got := running.view(false).Status; got != StatusCanceled {
		t.Errorf("running job status %q, want canceled", got)
	}
}

func TestQueueFullRejectsSubmit(t *testing.T) {
	m := newManager(1, 1, -1)
	defer m.close()
	started := make(chan struct{})
	if _, err := m.submit("compare", "h-run", blockingJob(started)); err != nil {
		t.Fatal(err)
	}
	<-started // worker occupied
	if _, err := m.submit("compare", "h-q1", blockingJob(nil)); err != nil {
		t.Fatalf("queue slot rejected: %v", err)
	}
	job3, err := m.submit("compare", "h-q2", blockingJob(nil))
	if !errors.Is(err, errQueueFull) {
		t.Fatalf("overflow submit: err=%v, want errQueueFull", err)
	}
	if job3 != nil {
		t.Error("overflow submit returned a job")
	}
}

func TestQueueFull503OnCompare(t *testing.T) {
	// The HTTP layer must translate a full queue into 503 for synchronous
	// compares (and sweeps), not hang or 500.
	s, h := testServer(t, Options{Workers: 1, QueueDepth: 1})
	started := make(chan struct{})
	if _, err := s.jobs.submit("block", "h-run", blockingJob(started)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.jobs.submit("block", "h-q1", blockingJob(nil)); err != nil {
		t.Fatal(err)
	}
	if w := do(h, "POST", "/v1/compare", smallCompare); w.Code != 503 {
		t.Errorf("compare with full queue -> %d, want 503 (body: %s)", w.Code, w.Body)
	}
	if w := do(h, "POST", "/v1/sweep", smallSweep); w.Code != 503 {
		t.Errorf("sweep with full queue -> %d, want 503 (body: %s)", w.Code, w.Body)
	}
	if w := do(h, "POST", "/v1/experiment", `{"id":"fig11","quick":true}`); w.Code != 503 {
		t.Errorf("experiment with full queue -> %d, want 503 (body: %s)", w.Code, w.Body)
	}
}

func TestManagerCloseDrainsQueuedJobs(t *testing.T) {
	m := newManager(1, 4, -1)
	started := make(chan struct{})
	running, err := m.submit("compare", "h-run", blockingJob(started))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.submit("compare", "h-q", blockingJob(nil))
	if err != nil {
		t.Fatal(err)
	}
	m.close()
	<-running.Done
	<-queued.Done
	if got := queued.view(false).Status; got != StatusCanceled {
		t.Errorf("queued job after close: status %q, want canceled", got)
	}
	// Submissions after close are rejected with errClosed.
	if _, err := m.submit("compare", "h-late", blockingJob(nil)); !errors.Is(err, errClosed) {
		t.Errorf("submit after close: err=%v, want errClosed", err)
	}
}
