// Package server is the HTTP serving layer over the cdcs simulator: a JSON
// API backed by a bounded job queue that fans work onto sim.Engine, with a
// content-addressed result cache in front so repeated requests are absorbed
// without re-simulation.
//
// Endpoints:
//
//	POST /v1/compare         evaluate schemes on one mix (synchronous, cached)
//	POST /v1/sweep           evaluate a config grid; cached cell-by-cell
//	POST /v1/experiment      run a paper experiment by id (async job, cached)
//	GET  /v1/experiments     list experiment ids and scheme names
//	GET  /v1/jobs/{id}       job status; SSE progress with Accept: text/event-stream
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET  /healthz            liveness
//	GET  /metrics            counters in Prometheus text format (also on expvar)
//
// Correctness of the cache rests on PR 1's bit-determinism: a request's
// SHA-256 content address (see cdcs.CompareRequest.Hash) fully determines
// the response bytes, so cached and freshly computed responses are
// byte-identical by construction.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cdcs"
	"cdcs/internal/fleet"
	"cdcs/internal/resultstore"
)

// Options configures a Server. The zero value picks sensible defaults.
//
// The result store comes from exactly one of two places. When Store is set
// the server uses it as-is and every Cache* / Peers convenience field must
// be left zero (New rejects the conflict: the injected store would silently
// shadow them). Otherwise the convenience fields build the default chain:
// memory (CacheEntries) → disk (CacheDir, CacheDiskBytes, CacheCompress) →
// peer replicas (Peers), each tier present only when configured.
type Options struct {
	// Store, when non-nil, is the result store the server uses verbatim —
	// the dependency-inversion seam for tests and custom tier chains.
	// Conflicts with CacheEntries, CacheDir, CacheDiskBytes, CacheCompress
	// and Peers.
	Store resultstore.Store
	// CacheEntries bounds the memory tier of the result store (default 4096
	// entries).
	CacheEntries int
	// CacheDir, when non-empty, adds a persistent disk tier under that
	// directory: results survive restarts (a warm replica replays a
	// completed sweep with zero simulations) and disk hits are promoted
	// into the memory tier.
	CacheDir string
	// CacheDiskBytes caps the disk tier's size; least-recently-used entries
	// are evicted past it. 0 means DefaultCacheDiskBytes; negative means
	// uncapped. Requires CacheDir.
	CacheDiskBytes int64
	// CacheCompress stores the disk tier chunked: payloads are split into
	// content-defined chunks, deduplicated by SHA-256 and DEFLATE-
	// compressed, so corpora of neighboring sweep cells take a fraction of
	// their logical bytes (see resultstore.ChunkedDisk). Requires CacheDir.
	CacheCompress bool
	// Peers lists sibling replica base URLs. When non-empty, a read-only
	// peer tier is appended after the local tiers: a local miss fetches the
	// entry from the replicas rendezvous-ranked for its key (via GET
	// /v1/blob/{hash}) before falling back to simulation, so a cold replica
	// joins the fleet warm and only a fleet-wide miss burns a simulation.
	// Peer membership is health-checked: a fleet view (internal/fleet)
	// probes each peer's /healthz and runs a per-peer circuit breaker, so
	// dead peers are skipped without a dial and rejoin automatically when
	// their probes recover. Per-peer state is exported as cdcs_fleet_*
	// metrics.
	//
	// Peers is the *initial* member list. With Advertise set the list is
	// live: replicas joining via POST /v1/join (and leaving via /v1/leave
	// or a drain) change it at runtime, and the peer tier, fleet view and
	// /metrics follow.
	Peers []string
	// Advertise is this replica's own base URL as its peers reach it
	// (e.g. "http://10.0.0.3:8080"). Setting it makes the replica a
	// first-class fleet member: it is included in the membership registry
	// it shares with its peers, processes join/leave announcements,
	// serves the corpus manifest warm joiners fill from, and can drain
	// out gracefully. Conflicts with Store (dynamic membership needs the
	// default tier chain for manifest export and warm fill).
	Advertise string
	// Join is a seed peer base URL to join the fleet through at startup:
	// JoinFleet adopts the seed's member list, warm-fills the local store
	// from the seed's corpus manifest, then announces Advertise to the
	// fleet. Requires Advertise. New does not join by itself — call
	// JoinFleet once the listener is serving, so peers that learn of this
	// replica can immediately reach it.
	Join string
	// FleetProbeInterval is the period of the health probes over the
	// peer members (default 2s; negative disables probing, leaving fetch
	// outcomes alone to drive the breakers). Requires Peers or Advertise.
	FleetProbeInterval time.Duration
	// FleetBreakerThreshold is the number of consecutive failures (probes
	// or fetches) that opens a peer's circuit breaker (default 3).
	// Requires Peers or Advertise.
	FleetBreakerThreshold int
	// QueueDepth bounds the job queue; submissions beyond it get 503
	// (default 256).
	QueueDepth int
	// Workers is the number of jobs running concurrently (default
	// max(1, GOMAXPROCS/2) — each job itself fans out on the sim engine).
	Workers int
	// JobTimeout bounds each job's run; 0 means 15m, negative means none.
	JobTimeout time.Duration
	// SimParallelism caps each job's engine workers; 0 means GOMAXPROCS.
	// Results are bit-identical for any value.
	SimParallelism int
	// Pprof mounts net/http/pprof profiling endpoints under /debug/pprof/.
	// Off by default so the standard deployment exposes no introspection
	// surface; with it on, hot-path investigations (placement, cache tiers)
	// start from a CPU/heap profile instead of a guess:
	//
	//	go tool pprof http://HOST/debug/pprof/profile?seconds=30
	//	go tool pprof http://HOST/debug/pprof/heap
	Pprof bool
}

// DefaultCacheDiskBytes is the disk-tier cap when CacheDir is set without
// an explicit size: 1 GiB, roomy for hundreds of thousands of cells.
const DefaultCacheDiskBytes = 1 << 30

func (o Options) withDefaults() Options {
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.CacheDiskBytes == 0 {
		o.CacheDiskBytes = DefaultCacheDiskBytes
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.JobTimeout == 0 {
		o.JobTimeout = 15 * time.Minute
	}
	return o
}

// Server wires the cache, the job manager and the handlers together. Create
// with New, serve via Handler, release with Close.
type Server struct {
	opts        Options
	cache       resultstore.Store
	fleet       *fleet.Fleet      // health view over peer members; nil without any
	membership  *fleet.Membership // live member registry; nil without Peers/Advertise
	id          string            // instance identity token, fresh per process
	advertise   string            // normalized Options.Advertise ("" when unset)
	jobs        *manager
	simulations atomic.Int64 // actual sim.Engine fan-outs (full store misses)
	draining    atomic.Int32 // 0 serving, 1 draining, 2 drained
	drains      atomic.Int64 // drain requests accepted
	started     time.Time

	// gossipPrev is the member list as of the last gossip round, so a
	// membership change also notifies members it *removed* (a kicked or
	// drained replica must learn it is out, or its stale view lingers).
	gossipMu   sync.Mutex
	gossipPrev []string

	// ctx scopes the background goroutines — gossip propagation and the
	// drain loop; Close cancels it and waits on wg.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	client *http.Client // gossip, manifest and warm-fill requests
}

// New builds a ready-to-serve Server and starts its worker pool. The
// result store is the injected Options.Store, or the default chain built
// from the Cache*/Peers fields (see the Options godoc for precedence); New
// fails on conflicting settings or an unopenable cache directory.
func New(opts Options) (*Server, error) {
	if opts.Store != nil {
		if opts.CacheEntries != 0 || opts.CacheDir != "" || opts.CacheDiskBytes != 0 ||
			opts.CacheCompress || len(opts.Peers) > 0 || opts.Advertise != "" || opts.Join != "" {
			return nil, fmt.Errorf("server: Options.Store conflicts with CacheEntries/CacheDir/CacheDiskBytes/CacheCompress/Peers/Advertise/Join — configure tiers on the injected store instead")
		}
	}
	if opts.CacheDir == "" {
		if opts.CacheCompress {
			return nil, fmt.Errorf("server: CacheCompress requires CacheDir")
		}
		if opts.CacheDiskBytes != 0 {
			return nil, fmt.Errorf("server: CacheDiskBytes requires CacheDir")
		}
	}
	if opts.Join != "" && opts.Advertise == "" {
		return nil, fmt.Errorf("server: Join requires Advertise (the fleet needs a URL to reach this replica back)")
	}
	if len(opts.Peers) == 0 && opts.Advertise == "" {
		if opts.FleetProbeInterval != 0 {
			return nil, fmt.Errorf("server: FleetProbeInterval requires Peers or Advertise")
		}
		if opts.FleetBreakerThreshold != 0 {
			return nil, fmt.Errorf("server: FleetBreakerThreshold requires Peers or Advertise")
		}
	}
	opts = opts.withDefaults()
	advertise := normalizeURL(opts.Advertise)
	var membership *fleet.Membership
	if advertise != "" || len(opts.Peers) > 0 {
		// A replica that will join through a seed (Options.Join) starts
		// *outside* its own member list: its URL enters the fleet only via
		// the announce at the end of JoinFleet, so an aborted join leaves
		// every view — including this replica's own — without it.
		initial := append([]string(nil), opts.Peers...)
		if opts.Join == "" {
			initial = append(initial, advertise)
		}
		membership = fleet.NewMembership(initial)
	}
	store := opts.Store
	var fl *fleet.Fleet
	if store == nil {
		tiers := []resultstore.Tier{resultstore.MemoryTier(opts.CacheEntries)}
		if opts.CacheDir != "" {
			var (
				disk resultstore.Tier
				err  error
			)
			if opts.CacheCompress {
				disk, err = resultstore.OpenChunkedDisk(opts.CacheDir, opts.CacheDiskBytes)
			} else {
				disk, err = resultstore.OpenDisk(opts.CacheDir, opts.CacheDiskBytes)
			}
			if err != nil {
				return nil, err
			}
			tiers = append(tiers, disk)
		}
		if membership != nil {
			peer := resultstore.NewPeerTier(opts.Peers, nil, 0)
			peer.UseMembership(membership, advertise)
			fl = fleet.New(without(membership.Members(), advertise), fleet.Options{
				ProbeInterval:    opts.FleetProbeInterval,
				BreakerThreshold: opts.FleetBreakerThreshold,
			})
			peer.UseFleet(fl)
			tiers = append(tiers, peer)
		}
		store = resultstore.Chain(tiers...)
	}
	s := &Server{
		opts:       opts,
		cache:      store,
		fleet:      fl,
		membership: membership,
		id:         newInstanceID(),
		advertise:  advertise,
		jobs:       newManager(opts.Workers, opts.QueueDepth, opts.JobTimeout),
		started:    time.Now().UTC(),
		client:     &http.Client{Timeout: 10 * time.Second},
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if membership != nil {
		s.gossipPrev = membership.Members()
		// Every membership change re-targets the fleet view (this replica
		// never probes or routes to itself) and gossips the new snapshot to
		// the other members so the fleet converges without a coordinator.
		membership.OnChange(func(members []string, epoch uint64) {
			if s.fleet != nil {
				s.fleet.SetMembers(without(members, s.advertise))
			}
			s.propagate(members, epoch)
		})
	}
	if fl != nil {
		fl.Start()
	}
	publishExpvar(s)
	return s, nil
}

// without returns urls minus self (pass "" to copy).
func without(urls []string, self string) []string {
	out := make([]string, 0, len(urls))
	for _, u := range urls {
		if u != self {
			out = append(out, u)
		}
	}
	return out
}

// normalizeURL trims a base URL the way fanout.NormalizeReplicas does, so
// the serving layer names replicas with the same strings the routing layers
// rank.
func normalizeURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// Close stops the background goroutines (gossip, drain loop), the worker
// pool (canceling running jobs) and the fleet prober.
func (s *Server) Close() {
	s.cancel()
	s.jobs.close()
	if s.fleet != nil {
		s.fleet.Close()
	}
	s.wg.Wait()
}

// Stats is a point-in-time snapshot of the serving counters. Fleet is
// present only when the server has peers: one entry per peer with its
// breaker state and load instrumentation.
type Stats struct {
	Cache       resultstore.Stats    `json:"cache"`
	Fleet       []fleet.ReplicaStats `json:"fleet,omitempty"`
	QueueDepth  int                  `json:"queue_depth"`
	JobsTotal   uint64               `json:"jobs_total"`
	JobsRunning int                  `json:"jobs_running"`
	Simulations int64                `json:"simulations"`
	UptimeSec   float64              `json:"uptime_sec"`
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	total, active := s.jobs.counts()
	st := Stats{
		Cache:       s.cache.Stats(),
		QueueDepth:  s.jobs.depth(),
		JobsTotal:   total,
		JobsRunning: active,
		Simulations: s.simulations.Load(),
		UptimeSec:   time.Since(s.started).Seconds(),
	}
	if s.fleet != nil {
		st.Fleet = s.fleet.Snapshot()
	}
	return st
}

// current is the server expvar reads from; expvar registration is global and
// permanent, so it indirects through a pointer the newest Server owns.
var (
	current    atomic.Pointer[Server]
	expvarOnce sync.Once
)

func publishExpvar(s *Server) {
	current.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("cdcs_serve", expvar.Func(func() any {
			if srv := current.Load(); srv != nil {
				return srv.Stats()
			}
			return nil
		}))
	})
}

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/blob/{hash}", s.handleBlob)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	if s.membership != nil {
		mux.HandleFunc("POST /v1/join", s.handleJoin)
		mux.HandleFunc("POST /v1/leave", s.handleLeave)
		mux.HandleFunc("GET /v1/members", s.handleMembers)
		mux.HandleFunc("GET /v1/manifest", s.handleManifest)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.Pprof {
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // client gone: nothing to do
}

// writeErr writes a {"error": ...} body.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeStrict parses a JSON body, rejecting unknown fields and trailing
// garbage so request typos fail loudly instead of hashing to a surprise key.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("unexpected data after JSON body")
	}
	return nil
}

// compareResponse is the /v1/compare body. It is marshaled once and cached;
// cold and cached responses are the same bytes.
type compareResponse struct {
	Hash       string              `json:"hash"`
	Request    cdcs.CompareRequest `json:"request"`
	Comparison *cdcs.Comparison    `json:"comparison"`
}

// handleCompare runs (or serves from cache) one scheme comparison,
// synchronously. Identical in-flight requests coalesce onto one simulation.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req cdcs.CompareRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	canon, err := req.Canonical()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := canon.Hash()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Hot path: a cached hash proves an identical request already built and
	// simulated successfully, so hits skip mix construction entirely.
	if body, ok := s.cache.Get(hash); ok {
		writeCompare(w, hash, true, body)
		return
	}
	if _, err := canon.Mix.Build(); err != nil { // validate benchmark names up front
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	body, hit, err := s.cache.Compute(r.Context(), hash, func() ([]byte, error) {
		job, err := s.jobs.submit("compare", hash, func(ctx context.Context, progress func(int, int)) ([]byte, error) {
			s.simulations.Add(1)
			cmp, err := canon.Run(cdcs.RunOptions{
				Parallelism: s.opts.SimParallelism,
				Context:     ctx,
				Progress:    progress,
			})
			if err != nil {
				return nil, err
			}
			return json.Marshal(compareResponse{Hash: hash, Request: canon, Comparison: cmp})
		})
		if err != nil {
			return nil, err
		}
		<-job.Done
		if jerr := job.terminalErr(); jerr != nil {
			// Keep the cause wrapped (errCanceled, DeadlineExceeded) so the
			// status-code switch below can classify it.
			return nil, fmt.Errorf("compare job %s: %w", job.ID, jerr)
		}
		return job.resultBytes(), nil
	})
	switch {
	case errors.Is(err, errQueueFull), errors.Is(err, errClosed):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, errCanceled), errors.Is(err, context.Canceled):
		writeErr(w, http.StatusServiceUnavailable, "request canceled: %v", err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeCompare(w, hash, hit, body)
}

// writeCompare writes a /v1/compare success response. The body bytes are
// written verbatim, so cached and cold responses are identical.
func writeCompare(w http.ResponseWriter, hash string, hit bool, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Hash", hash)
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	_, _ = w.Write(body)
}

// sweepCellView is one cell of a /v1/sweep response. Result carries the
// exact compareResponse bytes the cell's content address maps to, so a sweep
// cell is byte-identical to the equivalent /v1/compare response body — the
// two endpoints share one store namespace. The body is a pure function of
// the request (no provenance flags), so replaying a sweep on a warm replica
// — or after a restart onto the same cache directory — returns exactly the
// same bytes; cache provenance rides in the X-Cache and X-Cells-Cached
// response headers instead.
type sweepCellView struct {
	Index int `json:"index"`
	// Result is the cell's compareResponse (hash, canonical request,
	// comparison), verbatim from the shared store.
	Result json.RawMessage `json:"result"`
}

// sweepResponse is the /v1/sweep body.
type sweepResponse struct {
	Hash    string            `json:"hash"`
	Request cdcs.SweepRequest `json:"request"`
	Cells   []sweepCellView   `json:"cells"`
}

// handleSweep expands a config grid and evaluates it cell by cell,
// synchronously, as one queued job. Each cell is cached under its own
// CompareRequest hash — the same namespace /v1/compare uses — so a sweep
// overlapping a prior sweep (or prior compares) only simulates the cells the
// cache hasn't seen, and concurrent identical cells coalesce.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req cdcs.SweepRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	canon, err := req.Canonical()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := canon.Hash()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells, err := canon.Cells()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	for i, mix := range canon.Mixes { // validate benchmark names up front
		if _, err := mix.Build(); err != nil {
			writeErr(w, http.StatusBadRequest, "mix %d: %v", i, err)
			return
		}
	}

	// cachedCells is written by the job's worker goroutine and read by this
	// handler only after <-job.Done, which orders the accesses.
	cachedCells := 0
	job, err := s.jobs.submit("sweep", hash, func(ctx context.Context, progress func(int, int)) ([]byte, error) {
		views := make([]sweepCellView, len(cells))
		for i, cell := range cells {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cmp := func() ([]byte, error) {
				s.simulations.Add(1)
				res, err := cell.Request.Run(cdcs.RunOptions{
					Parallelism: s.opts.SimParallelism,
					Context:     ctx,
				})
				if err != nil {
					return nil, err
				}
				return json.Marshal(compareResponse{Hash: cell.Hash, Request: cell.Request, Comparison: res})
			}
			body, hit, err := s.cache.GetOrCompute(ctx, cell.Hash, cmp)
			if err != nil {
				return nil, fmt.Errorf("cell %d: %w", i, err)
			}
			if hit {
				cachedCells++
			}
			views[i] = sweepCellView{Index: cell.Index, Result: json.RawMessage(body)}
			progress(i+1, len(cells))
		}
		return json.Marshal(sweepResponse{Hash: hash, Request: canon, Cells: views})
	})
	if err != nil { // queue full or shutting down
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	select {
	case <-job.Done:
	case <-r.Context().Done():
		// Client gone: stop pinning this handler goroutine. The job runs on
		// — every cell it finishes lands in the shared cache, so a retry of
		// the same sweep picks up where this one got to.
		return
	}
	if jerr := job.terminalErr(); jerr != nil {
		switch {
		case errors.Is(jerr, errCanceled), errors.Is(jerr, context.Canceled):
			writeErr(w, http.StatusServiceUnavailable, "sweep job %s canceled: %v", job.ID, jerr)
		case errors.Is(jerr, context.DeadlineExceeded):
			writeErr(w, http.StatusGatewayTimeout, "sweep job %s: %v", job.ID, jerr)
		default:
			writeErr(w, http.StatusInternalServerError, "sweep job %s: %v", job.ID, jerr)
		}
		return
	}
	// X-Cells-Cached reports how much of the grid the store already held;
	// X-Cache is "hit" only when no cell needed work.
	w.Header().Set("X-Cells-Cached", fmt.Sprintf("%d/%d", cachedCells, len(cells)))
	writeCompare(w, hash, cachedCells == len(cells), job.resultBytes())
}

// experimentResponse is the cached /v1/experiment result body (embedded in
// the job view's "result" field).
type experimentResponse struct {
	Hash    string                 `json:"hash"`
	Request cdcs.ExperimentRequest `json:"request"`
	Report  string                 `json:"report"`
}

// handleExperiment enqueues an experiment run as an async job; a cache hit
// completes instantly. 202 + job id while queued/running, 200 when done.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req cdcs.ExperimentRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.ID != "" && !cdcs.KnownExperiment(req.ID) {
		writeErr(w, http.StatusNotFound, "unknown experiment %q (see GET /v1/experiments)", req.ID)
		return
	}
	canon, err := req.Canonical()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := canon.Hash()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	if body, ok := s.cache.Get(hash); ok {
		job := s.jobs.completed("experiment", hash, body)
		writeJSON(w, http.StatusOK, job.view(true))
		return
	}
	job, err := s.jobs.submit("experiment", hash, func(ctx context.Context, progress func(int, int)) ([]byte, error) {
		// Compute coalesces with any identical in-flight run; only the
		// leader touches the engine.
		body, _, err := s.cache.Compute(ctx, hash, func() ([]byte, error) {
			s.simulations.Add(1)
			report, err := canon.Run(cdcs.RunOptions{
				Parallelism: s.opts.SimParallelism,
				Context:     ctx,
				Progress:    progress,
			})
			if err != nil {
				return nil, err
			}
			return json.Marshal(experimentResponse{Hash: hash, Request: canon, Report: report})
		})
		return body, err
	})
	if err != nil { // queue full or shutting down
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.view(false))
}

// handleExperiments lists what the service can run.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"experiments": cdcs.ExperimentIDs(),
		"schemes":     cdcs.SchemeNames(),
	})
}

// handleJobGet returns a job's status, or streams progress as SSE when the
// client asks for text/event-stream (or ?watch=1).
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") || r.URL.Query().Get("watch") != "" {
		s.streamJob(w, r, job)
		return
	}
	writeJSON(w, http.StatusOK, job.view(true))
}

// streamJob writes SSE: a "job" snapshot on open, "progress" ticks while the
// job runs, and a terminal "done" event carrying the final job view.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotAcceptable, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	sub := job.subscribe()
	defer job.unsubscribe(sub)
	if !emit("job", job.view(false)) {
		return
	}
	for {
		select {
		case ev := <-sub:
			if !emit("progress", ev) {
				return
			}
		case <-job.Done:
			emit("done", job.view(true))
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleJobCancel cancels a queued or running job.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !s.jobs.cancelJob(job) {
		writeJSON(w, http.StatusConflict, job.view(false)) // already terminal
		return
	}
	writeJSON(w, http.StatusAccepted, job.view(false))
}

// localGetter is the store surface the blob endpoint wants: a lookup that
// consults only this process's tiers. resultstore.TierChain implements it;
// an injected store that contains remote tiers should too, or its blob
// lookups would cascade across the fleet.
type localGetter interface {
	GetLocal(key string) ([]byte, bool)
}

// handleBlob serves one stored entry to a sibling replica, framed with the
// keyed blob envelope (resultstore.EncodeBlob) so the peer can verify both
// payload integrity and that the response answers the address it asked for.
// Only local tiers are consulted — a blob lookup never recurses into this
// replica's own peer tier — and the lookup is uncounted, so peer traffic
// does not skew this replica's hit/miss counters or reshape its working
// set.
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if hash == "" || len(hash) > 128 {
		writeErr(w, http.StatusBadRequest, "bad content address %q", hash)
		return
	}
	var (
		val []byte
		ok  bool
	)
	if lg, isLocal := s.cache.(localGetter); isLocal {
		val, ok = lg.GetLocal(hash)
	} else {
		val, ok = s.cache.Get(hash)
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "no entry for %s", hash)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(resultstore.EncodeBlob(hash, val))
}

// handleHealthz is the liveness probe, and the carrier of this replica's
// identity and membership view: fleet probers parse the body for the
// instance id (a restarted process on a reused address is a *new* member —
// its record, breaker verdict included, must reset) and for the (members,
// epoch) snapshot, which is how a sweep coordinator discovers joins and
// drains without any membership endpoint of its own. A draining or drained
// replica answers 503 so probers steer traffic away, but the body still
// carries the membership view it is leaving behind.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	switch s.draining.Load() {
	case drainStateDraining:
		status, code = "draining", http.StatusServiceUnavailable
	case drainStateDrained:
		status, code = "drained", http.StatusServiceUnavailable
	}
	resp := map[string]any{
		"status":  status,
		"uptime":  time.Since(s.started).String(),
		"version": "v1",
		"id":      s.id,
	}
	if s.membership != nil {
		members, epoch := s.membership.Snapshot()
		resp["members"] = members
		resp["epoch"] = epoch
	}
	writeJSON(w, code, resp)
}

// handleMetrics emits the counters in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	line := func(name string, v any) {
		fmt.Fprintf(&b, "%s %v\n", name, v)
	}
	// Cache counters carry a tier label ("memory", plus "disk" when the
	// store is persistent and "peer" when it consults sibling replicas) so
	// dashboards can tell a RAM hit from a warm-start disk hit from a
	// peer-filled one. cdcs_cache_bytes is physical occupancy (compressed,
	// deduplicated for the chunked disk tier); cdcs_cache_logical_bytes is
	// the payload volume represented, so bytes/logical_bytes is the live
	// dedup+compression ratio.
	for _, tier := range st.Cache.Tiers {
		tl := func(name string, v any) {
			fmt.Fprintf(&b, "%s{tier=%q} %v\n", name, tier.Name, v)
		}
		tl("cdcs_cache_hits_total", tier.Hits)
		tl("cdcs_cache_misses_total", tier.Misses)
		tl("cdcs_cache_evictions_total", tier.Evictions)
		tl("cdcs_cache_entries", tier.Entries)
		tl("cdcs_cache_bytes", tier.Bytes)
		tl("cdcs_cache_logical_bytes", tier.LogicalBytes)
		tl("cdcs_cache_errors_total", tier.Errors)
	}
	line("cdcs_cache_coalesced_total", st.Cache.Coalesced)
	line("cdcs_cache_inflight", st.Cache.Inflight)
	// Fleet gauges carry a replica label (the peer's base URL) so a
	// dashboard shows each peer's breaker state (0 closed, 1 open, 2
	// half-open) next to the load signals the router steers by.
	for _, rep := range st.Fleet {
		rl := func(name string, v any) {
			fmt.Fprintf(&b, "%s{replica=%q} %v\n", name, rep.URL, v)
		}
		rl("cdcs_fleet_state", fleet.StateCode(rep.State))
		rl("cdcs_fleet_ewma_latency_ms", fmt.Sprintf("%.3f", rep.EWMALatencyMs))
		rl("cdcs_fleet_inflight", rep.Inflight)
		rl("cdcs_fleet_requests_total", rep.Requests)
		rl("cdcs_fleet_errors_total", rep.Errors)
		rl("cdcs_fleet_breaker_trips_total", rep.Trips)
	}
	// Membership gauges: the live member count and epoch, plus cumulative
	// joins/leaves the registry has seen (from announcements and adopted
	// snapshots alike) and drains this replica accepted.
	if s.membership != nil {
		members, epoch := s.membership.Snapshot()
		line("cdcs_fleet_members", len(members))
		line("cdcs_fleet_epoch", epoch)
		line("cdcs_fleet_joins_total", s.membership.Joins())
		line("cdcs_fleet_leaves_total", s.membership.Leaves())
	}
	line("cdcs_fleet_drains_total", s.drains.Load())
	line("cdcs_queue_depth", st.QueueDepth)
	line("cdcs_jobs_total", st.JobsTotal)
	line("cdcs_jobs_running", st.JobsRunning)
	line("cdcs_simulations_total", st.Simulations)
	line("cdcs_uptime_seconds", fmt.Sprintf("%.3f", st.UptimeSec))
	_, _ = w.Write([]byte(b.String()))
}
