package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Job statuses.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// errQueueFull is returned by submit when the bounded queue is at capacity;
// handlers translate it to 503.
var errQueueFull = errors.New("job queue full")

// errClosed is returned by submit after the manager shut down; handlers
// translate it to 503 (the process is draining).
var errClosed = errors.New("server shutting down")

// errCanceled marks a job canceled via the API (vs failed on its own).
var errCanceled = errors.New("job canceled")

// runFunc executes a job's work. It must honor ctx and may report progress
// through the callback (already serialized by the engine).
type runFunc func(ctx context.Context, progress func(done, total int)) ([]byte, error)

// Job is one unit of queued work. All mutable state is behind mu; Done is
// closed exactly once when the job reaches a terminal status.
type Job struct {
	ID   string
	Kind string // "compare" | "sweep" | "experiment"
	Hash string // content address of the request
	run  runFunc

	// Done is closed when the job finishes (any terminal status).
	Done chan struct{}

	mu              sync.Mutex
	status          string
	err             error
	result          []byte
	cached          bool
	progressDone    int
	progressTotal   int
	created         time.Time
	started         time.Time
	finished        time.Time
	cancelRequested bool
	cancel          context.CancelFunc // set while running
	subs            map[chan jobEvent]struct{}
}

// jobEvent is one SSE-able progress tick.
type jobEvent struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// setProgress records a progress tick and fans it out to subscribers without
// blocking (a slow subscriber skips ticks; the terminal event is delivered
// via Done).
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	j.progressDone, j.progressTotal = done, total
	ev := jobEvent{Done: done, Total: total}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe registers a progress channel; pair with unsubscribe.
func (j *Job) subscribe() chan jobEvent {
	ch := make(chan jobEvent, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *Job) unsubscribe(ch chan jobEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// finish moves the job to a terminal status. It is a no-op if the job is
// already terminal (e.g. canceled while the worker was finishing).
func (j *Job) finish(result []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled {
		return
	}
	j.finished = time.Now().UTC()
	j.cancel = nil
	switch {
	case err == nil:
		j.status, j.result = StatusDone, result
	case errors.Is(err, errCanceled) || (j.cancelRequested && errors.Is(err, context.Canceled)):
		j.status, j.err = StatusCanceled, errCanceled
	default:
		j.status, j.err = StatusFailed, err
	}
	close(j.Done)
}

// resultBytes returns the serialized result of a finished job.
func (j *Job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// terminalErr returns the error a finished job ended with (nil if done).
// Cancellation and timeout causes stay wrapped so callers can classify.
func (j *Job) terminalErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// View is the JSON shape of a job returned by the API.
type View struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Hash     string          `json:"hash,omitempty"`
	Status   string          `json:"status"`
	Cached   bool            `json:"cached,omitempty"`
	Error    string          `json:"error,omitempty"`
	Progress *jobEvent       `json:"progress,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Created  string          `json:"created,omitempty"`
	Started  string          `json:"started,omitempty"`
	Finished string          `json:"finished,omitempty"`
}

// view snapshots the job. includeResult controls whether the (possibly
// large) result body is embedded.
func (j *Job) view(includeResult bool) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:     j.ID,
		Kind:   j.Kind,
		Hash:   j.Hash,
		Status: j.status,
		Cached: j.cached,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.progressTotal > 0 {
		v.Progress = &jobEvent{Done: j.progressDone, Total: j.progressTotal}
	}
	if includeResult && j.status == StatusDone {
		v.Result = json.RawMessage(j.result)
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.Format(time.RFC3339Nano)
	}
	v.Created, v.Started, v.Finished = stamp(j.created), stamp(j.started), stamp(j.finished)
	return v
}

// manager owns the bounded queue and the worker pool draining it.
type manager struct {
	queue   chan *Job
	timeout time.Duration

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job
	order  []string // job ids in creation order, for retention eviction
	nextID uint64
	total  uint64 // jobs ever submitted
	active int    // jobs currently running on a worker
}

// maxRetainedJobs bounds the job registry: once exceeded, the oldest
// *terminal* jobs (and their result bytes) are dropped so sustained traffic
// cannot grow the map without bound. Live (queued/running) jobs are never
// evicted; result bytes themselves live on in the LRU result cache.
const maxRetainedJobs = 1024

// newManager starts workers goroutines draining a queue of the given depth.
// timeout bounds each job's run (<= 0 means no per-job timeout).
func newManager(workers, depth int, timeout time.Duration) *manager {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &manager{
		queue:   make(chan *Job, depth),
		timeout: timeout,
		baseCtx: ctx,
		stop:    stop,
		jobs:    map[string]*Job{},
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// newJob allocates and registers a job record (not yet queued).
func (m *manager) newJob(kind, hash string, run runFunc) *Job {
	m.mu.Lock()
	m.nextID++
	m.total++
	id := fmt.Sprintf("j%d", m.nextID)
	j := &Job{
		ID:      id,
		Kind:    kind,
		Hash:    hash,
		run:     run,
		Done:    make(chan struct{}),
		status:  StatusQueued,
		created: time.Now().UTC(),
		subs:    map[chan jobEvent]struct{}{},
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.evictLocked()
	m.mu.Unlock()
	return j
}

// evictLocked drops the oldest terminal jobs while the registry exceeds
// maxRetainedJobs. Called with m.mu held; j.mu nests inside m.mu (job code
// never takes m.mu), so the order check is deadlock-free.
func (m *manager) evictLocked() {
	if len(m.jobs) <= maxRetainedJobs {
		return
	}
	kept := m.order[:0]
	for i, id := range m.order {
		if len(m.jobs) <= maxRetainedJobs {
			kept = append(kept, m.order[i:]...)
			break
		}
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		j.mu.Lock()
		terminal := j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled
		j.mu.Unlock()
		if terminal {
			delete(m.jobs, id)
		} else {
			kept = append(kept, id)
		}
	}
	m.order = kept
}

// completed registers an already-finished job (a cache hit served without
// queueing): it is born terminal, with Done closed.
func (m *manager) completed(kind, hash string, result []byte) *Job {
	j := m.newJob(kind, hash, nil)
	j.mu.Lock()
	j.status = StatusDone
	j.cached = true
	j.result = result
	j.started = j.created
	j.finished = j.created
	j.mu.Unlock()
	close(j.Done)
	return j
}

// submit queues a new job, failing fast with errQueueFull when the queue is
// at capacity and errClosed after close. The enqueue happens under m.mu so
// it cannot race close()'s drain: a job is either enqueued before the closed
// flag is set (and drained as canceled) or rejected — never stranded in the
// queue with no worker and no drain.
func (m *manager) submit(kind, hash string, run runFunc) (*Job, error) {
	j := m.newJob(kind, hash, run)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		j.finish(nil, errClosed)
		return nil, errClosed
	}
	select {
	case m.queue <- j:
		m.mu.Unlock()
		return j, nil
	default:
		m.mu.Unlock()
		j.finish(nil, fmt.Errorf("server overloaded: %w", errQueueFull))
		return nil, errQueueFull
	}
}

// get looks up a job by id.
func (m *manager) get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// cancelJob requests cancellation: a queued job finishes immediately as
// canceled; a running job has its context canceled and finishes when its
// runFunc returns. Returns false if the job is already terminal.
func (m *manager) cancelJob(j *Job) bool {
	j.mu.Lock()
	switch j.status {
	case StatusDone, StatusFailed, StatusCanceled:
		j.mu.Unlock()
		return false
	case StatusQueued:
		j.cancelRequested = true
		j.mu.Unlock()
		j.finish(nil, errCanceled)
		return true
	default: // running
		j.cancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
}

// depth reports how many jobs sit in the queue right now.
func (m *manager) depth() int { return len(m.queue) }

// counts snapshots (total submitted, currently running).
func (m *manager) counts() (total uint64, active int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total, m.active
}

// close rejects new submissions, stops the workers and cancels running
// jobs. Queued jobs are drained as canceled. Safe to call more than once.
func (m *manager) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
	for {
		select {
		case j := <-m.queue:
			j.finish(nil, errCanceled)
		default:
			return
		}
	}
}

// worker drains the queue until the manager closes.
func (m *manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob executes one job with its own (optionally timed) context.
func (m *manager) runJob(j *Job) {
	if m.baseCtx.Err() != nil {
		// Shutdown raced the worker's queue read: a closing manager's worker
		// can pull a queued job instead of observing baseCtx.Done (select
		// picks ready channels at random). Drain it as canceled, the same
		// terminal status close() gives the jobs it drains itself.
		j.finish(nil, errCanceled)
		return
	}
	ctx := m.baseCtx
	var cancel context.CancelFunc
	if m.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	j.mu.Lock()
	if j.status != StatusQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	if j.cancelRequested {
		j.mu.Unlock()
		j.finish(nil, errCanceled)
		return
	}
	j.status = StatusRunning
	j.started = time.Now().UTC()
	j.cancel = cancel
	j.mu.Unlock()

	m.mu.Lock()
	m.active++
	m.mu.Unlock()
	res, err := j.run(ctx, j.setProgress)
	m.mu.Lock()
	m.active--
	m.mu.Unlock()

	if err != nil && ctx.Err() != nil {
		// Distinguish API cancellation from shutdown/timeout for the view.
		j.mu.Lock()
		requested := j.cancelRequested
		j.mu.Unlock()
		switch {
		case requested:
			err = errCanceled
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			err = fmt.Errorf("job timed out: %w", err)
		default:
			// Neither the API nor the timeout: the base context died, i.e.
			// the server is shutting down. Canceled, not failed.
			err = errCanceled
		}
	}
	j.finish(res, err)
}
