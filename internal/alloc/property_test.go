package alloc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cdcs/internal/curves"
)

// genCurves builds a random allocation instance for property tests.
func genCurves(rng *rand.Rand) []curves.Curve {
	n := 1 + rng.Intn(8)
	cs := make([]curves.Curve, n)
	for i := range cs {
		cs[i] = randomDecreasing(rng)
	}
	return cs
}

func totalCost(cs []curves.Curve, alloc []float64) float64 {
	sum := 0.0
	for i, a := range alloc {
		sum += cs[i].Eval(a)
	}
	return sum
}

func TestPropertyPeekaheadNeverOverAllocates(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(genCurves(rng))
			v[1] = reflect.ValueOf(rng.Float64() * 800)
		},
	}
	prop := func(cs []curves.Curve, budget float64) bool {
		for _, fn := range []func([]curves.Curve, float64) []float64{Peekahead, PeekaheadFull} {
			got := fn(cs, budget)
			sum := 0.0
			for i, a := range got {
				if a < -1e-9 || a > cs[i].MaxX()+1e-9 {
					return false
				}
				sum += a
			}
			if sum > budget+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyPeekaheadMonotoneInBudget(t *testing.T) {
	// More budget never yields a worse (higher) total cost.
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 150; trial++ {
		cs := genCurves(rng)
		b1 := rng.Float64() * 400
		b2 := b1 + rng.Float64()*400
		c1 := totalCost(cs, Peekahead(cs, b1))
		c2 := totalCost(cs, Peekahead(cs, b2))
		if c2 > c1+1e-6 {
			t.Fatalf("trial %d: budget %g cost %g < budget %g cost %g", trial, b1, c1, b2, c2)
		}
	}
}

func TestPropertyPeekaheadBeatsUniformSplitOnConvexCurves(t *testing.T) {
	// On convex curves the hull equals the curve, so the greedy hull walk is
	// exactly optimal and in particular never loses to an even split. (On
	// non-convex curves Peekahead — like UCP Lookahead — can stop mid-hull-
	// segment above the true curve, so the guarantee is hull-relative only.)
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(6)
		cs := make([]curves.Curve, n)
		for i := range cs {
			cs[i] = randomConvexDecreasing(rng, 10, 3+rng.Intn(10))
		}
		budget := rng.Float64() * 600
		smart := totalCost(cs, Peekahead(cs, budget))
		uniform := make([]float64, len(cs))
		for i := range uniform {
			u := budget / float64(len(cs))
			if u > cs[i].MaxX() {
				u = cs[i].MaxX()
			}
			uniform[i] = u
		}
		if smart > totalCost(cs, uniform)+1e-6 {
			t.Fatalf("trial %d: peekahead %g worse than uniform %g", trial, smart, totalCost(cs, uniform))
		}
	}
}

func TestPropertyFullUsesAtLeastAsMuch(t *testing.T) {
	// PeekaheadFull always hands out at least as much capacity as Peekahead.
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 150; trial++ {
		cs := genCurves(rng)
		budget := rng.Float64() * 600
		sum := func(a []float64) float64 {
			s := 0.0
			for _, v := range a {
				s += v
			}
			return s
		}
		if sum(PeekaheadFull(cs, budget)) < sum(Peekahead(cs, budget))-1e-6 {
			t.Fatalf("trial %d: full allocated less than latency-aware", trial)
		}
	}
}

func TestPropertyQuantizedWithinChunkOfExact(t *testing.T) {
	// Quantized allocations are chunk-aligned, within budget, and each VC's
	// allocation is within one chunk of some feasible refinement.
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 100; trial++ {
		cs := genCurves(rng)
		budget := 100 + rng.Float64()*600
		chunk := 8 + rng.Float64()*32
		q := PeekaheadQuantized(cs, budget, chunk)
		sum := 0.0
		for _, a := range q {
			mod := a - float64(int(a/chunk))*chunk
			if mod > 1e-6 && chunk-mod > 1e-6 {
				t.Fatalf("trial %d: allocation %g not aligned to %g", trial, a, chunk)
			}
			sum += a
		}
		if sum > budget+1e-6 {
			t.Fatalf("trial %d: quantized total %g over budget %g", trial, sum, budget)
		}
	}
}
