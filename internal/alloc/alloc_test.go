package alloc

import (
	"math"
	"math/rand"
	"testing"

	"cdcs/internal/curves"
	"cdcs/internal/mesh"
	"cdcs/internal/workload"
)

func TestPeekaheadSingleCurve(t *testing.T) {
	// One convex decreasing curve: allocator gives it everything useful.
	c := curves.New([]float64{0, 100, 200}, []float64{100, 20, 10})
	got := Peekahead([]curves.Curve{c}, 150)
	if !approx(got[0], 150, 1e-9) {
		t.Errorf("alloc=%v, want all 150", got)
	}
}

func TestPeekaheadPrefersSteeperCurve(t *testing.T) {
	// VC a drops 100 cost over 100 lines; VC b drops 10 over 100 lines.
	a := curves.New([]float64{0, 100}, []float64{100, 0})
	b := curves.New([]float64{0, 100}, []float64{10, 0})
	got := Peekahead([]curves.Curve{a, b}, 100)
	if !approx(got[0], 100, 1e-9) || !approx(got[1], 0, 1e-9) {
		t.Errorf("alloc=%v, want [100 0]", got)
	}
}

func TestPeekaheadSplitsAtEqualMarginal(t *testing.T) {
	// Identical curves: equal split (after each takes its first segment).
	c := curves.New([]float64{0, 50, 100}, []float64{100, 40, 10})
	got := Peekahead([]curves.Curve{c, c}, 100)
	if !approx(got[0], 50, 1e-9) || !approx(got[1], 50, 1e-9) {
		t.Errorf("alloc=%v, want [50 50]", got)
	}
}

func TestPeekaheadStopsAtSweetSpot(t *testing.T) {
	// U-shaped latency curve: minimum at 60 lines. Latency-aware allocation
	// must leave the rest unused.
	c := curves.New([]float64{0, 30, 60, 90, 120}, []float64{100, 40, 20, 30, 50})
	got := Peekahead([]curves.Curve{c}, 120)
	if !approx(got[0], 60, 1e-9) {
		t.Errorf("alloc=%v, want 60 (sweet spot), leaving capacity unused", got)
	}
}

func TestPeekaheadStreamingGetsNothing(t *testing.T) {
	// milc-like flat curve next to an omnet-like cliff: streaming VC gets
	// nothing, fitting VC gets its footprint.
	flat := curves.Constant(100, 200)
	cliffy := curves.New([]float64{0, 80, 100, 200}, []float64{100, 90, 5, 5})
	got := Peekahead([]curves.Curve{flat, cliffy}, 150)
	if got[0] != 0 {
		t.Errorf("streaming VC got %g lines", got[0])
	}
	if got[1] < 100-1e-9 {
		t.Errorf("fitting VC got %g lines, want >=100", got[1])
	}
}

func TestPeekaheadRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		cs := make([]curves.Curve, n)
		for i := range cs {
			cs[i] = randomDecreasing(rng)
		}
		budget := rng.Float64() * 500
		got := Peekahead(cs, budget)
		sum := 0.0
		for i, a := range got {
			if a < -1e-9 {
				t.Fatalf("negative allocation %g", a)
			}
			if a > cs[i].MaxX()+1e-9 {
				t.Fatalf("allocation %g beyond curve domain %g", a, cs[i].MaxX())
			}
			sum += a
		}
		if sum > budget+1e-6 {
			t.Fatalf("allocated %g over budget %g", sum, budget)
		}
	}
}

// TestPeekaheadMatchesBruteForce checks optimality against exhaustive search
// on small quantized instances.
func TestPeekaheadMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const chunk = 10.0
	const budgetChunks = 12
	for trial := 0; trial < 30; trial++ {
		cs := []curves.Curve{
			randomConvexDecreasing(rng, chunk, 8),
			randomConvexDecreasing(rng, chunk, 8),
			randomConvexDecreasing(rng, chunk, 8),
		}
		got := Peekahead(cs, budgetChunks*chunk)
		gotCost := 0.0
		for i, a := range got {
			gotCost += cs[i].Eval(a)
		}
		// Brute force over chunk allocations.
		best := math.Inf(1)
		for a := 0; a <= budgetChunks; a++ {
			for b := 0; a+b <= budgetChunks; b++ {
				for c := 0; a+b+c <= budgetChunks; c++ {
					cost := cs[0].Eval(float64(a)*chunk) +
						cs[1].Eval(float64(b)*chunk) +
						cs[2].Eval(float64(c)*chunk)
					if cost < best {
						best = cost
					}
				}
			}
		}
		if gotCost > best+1e-6 {
			t.Errorf("trial %d: peekahead cost %g worse than brute force %g (alloc %v)",
				trial, gotCost, best, got)
		}
	}
}

func TestPeekaheadQuantized(t *testing.T) {
	a := curves.New([]float64{0, 100}, []float64{100, 0})
	b := curves.New([]float64{0, 100}, []float64{50, 0})
	got := PeekaheadQuantized([]curves.Curve{a, b}, 96, 32)
	sum := 0.0
	for _, v := range got {
		if rem := math.Mod(v, 32); rem > 1e-9 && rem < 32-1e-9 {
			t.Errorf("allocation %g not chunk-aligned", v)
		}
		sum += v
	}
	if sum > 96+1e-9 {
		t.Errorf("quantized total %g over budget", sum)
	}
}

func TestPeekaheadQuantizedPanicsOnBadChunk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("chunk 0 accepted")
		}
	}()
	PeekaheadQuantized(nil, 100, 0)
}

func TestCompactDistance(t *testing.T) {
	topo := mesh.New(8, 8)
	const bank = 8192.0
	d := CompactDistance(topo, bank)
	// First bank is the center tile: average distance 0.
	if v := d.Eval(bank); !approx(v, 0, 1e-9) {
		t.Errorf("distance with 1 bank = %g, want 0", v)
	}
	// Distance grows monotonically with capacity.
	prev := -1.0
	for s := bank; s <= 64*bank; s += bank {
		v := d.Eval(s)
		if v < prev-1e-9 {
			t.Fatalf("compact distance decreased at %g lines", s)
		}
		prev = v
	}
	// Paper Fig. 6: an ~8-bank VC around the center averages ~1.3 hops.
	if v := d.Eval(8.2 * bank); v < 0.9 || v > 1.7 {
		t.Errorf("8.2-bank compact distance = %g hops, want ~1.27", v)
	}
	// Full chip: mean distance from center to all tiles.
	full := d.Eval(64 * bank)
	want := 0.0
	for i := 0; i < 64; i++ {
		want += float64(topo.Distance(topo.CenterTile(), mesh.Tile(i)))
	}
	want /= 64
	if !approx(full, want, 1e-9) {
		t.Errorf("full-chip distance %g, want %g", full, want)
	}
}

func TestTotalLatencyCurveSweetSpot(t *testing.T) {
	// An omnet-like VC on a 64-tile chip has a U-shaped total-latency curve
	// whose minimum sits near its footprint — not at maximum capacity.
	topo := mesh.New(8, 8)
	const bank = 8192.0
	dist := CompactDistance(topo, bank)
	omnet := workload.ByName(workload.SPECCPU(), "omnet")
	m := LatencyModel{MemLatency: 150, HopLatency: 4, RoundTrip: 2}
	lat := TotalLatencyCurve(omnet.MissRatio, omnet.APKI, dist, m, 64*bank)

	xStar, _ := lat.ArgMin()
	if xStar <= 0 || xStar >= 64*bank-1 {
		t.Errorf("sweet spot at %g lines, want interior", xStar)
	}
	// Latency at the sweet spot beats both extremes.
	_, yStar := lat.ArgMin()
	if yStar >= lat.Eval(0) || yStar >= lat.Eval(64*bank) {
		t.Errorf("sweet spot %g not below extremes (%g, %g)", yStar, lat.Eval(0), lat.Eval(64*bank))
	}
	// Sweet spot is near the footprint (2.5MB = 40960 lines), within 2 banks.
	if math.Abs(xStar-2.5*workload.LinesPerMB) > 2*bank {
		t.Errorf("sweet spot %g lines, want near %g", xStar, 2.5*workload.LinesPerMB)
	}
}

func TestMissLatencyCurveIgnoresDistance(t *testing.T) {
	// Miss-only curves are non-increasing: Jigsaw never leaves capacity
	// unused voluntarily.
	omnet := workload.ByName(workload.SPECCPU(), "omnet")
	m := LatencyModel{MemLatency: 150, HopLatency: 4, RoundTrip: 2}
	lat := MissLatencyCurve(omnet.MissRatio, omnet.APKI, m, 64*8192)
	if !lat.IsNonIncreasing() {
		t.Error("miss-latency curve should be non-increasing")
	}
	if v := lat.Eval(0); !approx(v, omnet.APKI*0.90*150, 1) {
		t.Errorf("zero-capacity cost %g", v)
	}
}

func TestLatencyAwareVsMissOnlyAllocation(t *testing.T) {
	// With plentiful capacity (few apps), latency-aware allocation gives a
	// small-footprint VC less capacity than miss-only allocation would.
	topo := mesh.New(8, 8)
	const bank = 8192.0
	dist := CompactDistance(topo, bank)
	m := LatencyModel{MemLatency: 150, HopLatency: 4, RoundTrip: 2}

	profiles := []*workload.Profile{
		workload.ByName(workload.SPECCPU(), "omnet"),
		workload.ByName(workload.SPECCPU(), "milc"),
	}
	total := 64 * bank
	latCurves := make([]curves.Curve, len(profiles))
	missCurves := make([]curves.Curve, len(profiles))
	for i, p := range profiles {
		latCurves[i] = TotalLatencyCurve(p.MissRatio, p.APKI, dist, m, total)
		missCurves[i] = MissLatencyCurve(p.MissRatio, p.APKI, m, total)
	}
	latAlloc := Peekahead(latCurves, total)
	missAlloc := PeekaheadFull(missCurves, total)

	sumLat := latAlloc[0] + latAlloc[1]
	sumMiss := missAlloc[0] + missAlloc[1]
	if sumLat >= sumMiss {
		t.Errorf("latency-aware used %g lines, miss-only %g: expected latency-aware to leave capacity unused",
			sumLat, sumMiss)
	}
	// Both give omnet at least its footprint.
	if latAlloc[0] < 2.4*workload.LinesPerMB {
		t.Errorf("latency-aware gave omnet only %g lines", latAlloc[0])
	}
}

// randomDecreasing builds a random non-increasing curve.
func randomDecreasing(rng *rand.Rand) curves.Curve {
	n := 3 + rng.Intn(8)
	xs := make([]float64, n)
	ys := make([]float64, n)
	x, y := 0.0, 50+rng.Float64()*100
	for i := 0; i < n; i++ {
		xs[i] = x
		ys[i] = y
		x += 5 + rng.Float64()*50
		y -= rng.Float64() * 30
		if y < 0 {
			y = 0
		}
	}
	return curves.New(xs, ys)
}

// randomConvexDecreasing builds a convex non-increasing curve with knots at
// chunk multiples (so brute force over chunks is exact).
func randomConvexDecreasing(rng *rand.Rand, chunk float64, nChunks int) curves.Curve {
	xs := make([]float64, nChunks+1)
	ys := make([]float64, nChunks+1)
	y := 100.0
	slope := -(10 + rng.Float64()*20)
	for i := 0; i <= nChunks; i++ {
		xs[i] = float64(i) * chunk
		ys[i] = y
		y += slope
		slope *= 0.5 + rng.Float64()*0.4 // decreasing magnitude: convex
		if y < 0 {
			y = 0
		}
	}
	return curves.New(xs, ys)
}

func approx(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
