package alloc

import (
	"math/rand"
	"testing"

	"cdcs/internal/curves"
	"cdcs/internal/mesh"
	"cdcs/internal/workload"
)

// specCosts builds n total-latency cost curves from the SPEC profiles, the
// allocator's production diet.
func specCosts(n int, topo *mesh.Topology, bankLines float64) ([]curves.Curve, float64) {
	dist := CompactDistance(topo, bankLines)
	m := LatencyModel{MemLatency: 130, HopLatency: 4, RoundTrip: 2}
	profiles := workload.SPECCPU()
	total := float64(topo.Tiles()) * bankLines
	costs := make([]curves.Curve, n)
	for i := range costs {
		p := profiles[i%len(profiles)]
		costs[i] = TotalLatencyCurve(p.MissRatio, p.APKI, dist, m, total)
	}
	return costs, total
}

func float64sBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPeekaheadInBitIdentical proves the arena entry points reproduce the
// allocating allocator bit for bit, across repeated reuse of one arena.
func TestPeekaheadInBitIdentical(t *testing.T) {
	topo := mesh.New(8, 8)
	ar := NewArena()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(64)
		costs, total := specCosts(n, topo, 8192)
		budget := total * (0.25 + rng.Float64()*0.75)

		if got, want := PeekaheadIn(ar, costs, budget), Peekahead(costs, budget); !float64sBitEqual(got, want) {
			t.Fatalf("trial %d: PeekaheadIn differs:\n  %v\n  %v", trial, got, want)
		}
		if got, want := PeekaheadFullIn(ar, costs, budget), PeekaheadFull(costs, budget); !float64sBitEqual(got, want) {
			t.Fatalf("trial %d: PeekaheadFullIn differs", trial)
		}
		if got, want := PeekaheadQuantizedIn(ar, costs, budget, 8192), PeekaheadQuantized(costs, budget, 8192); !float64sBitEqual(got, want) {
			t.Fatalf("trial %d: PeekaheadQuantizedIn differs:\n  %v\n  %v", trial, got, want)
		}
	}
}

// TestLatencyCurveIntoBitIdentical proves the Into curve builders match the
// allocating builders bit for bit while reusing destination backings.
func TestLatencyCurveIntoBitIdentical(t *testing.T) {
	topo := mesh.New(8, 8)
	dist := CompactDistance(topo, 8192)
	m := LatencyModel{MemLatency: 130, HopLatency: 4, RoundTrip: 2}
	maxLines := 64 * 8192.0
	var dTotal, dMiss curves.Curve
	for _, p := range workload.SPECCPU() {
		want := TotalLatencyCurve(p.MissRatio, p.APKI, dist, m, maxLines)
		dTotal = TotalLatencyCurveInto(dTotal, p.MissRatio, p.APKI, dist, m, maxLines)
		if !curvesBitEqual(want, dTotal) {
			t.Fatalf("%s: TotalLatencyCurveInto differs", p.Name)
		}
		wantMiss := MissLatencyCurve(p.MissRatio, p.APKI, m, maxLines)
		dMiss = MissLatencyCurveInto(dMiss, p.MissRatio, p.APKI, m, maxLines)
		if !curvesBitEqual(wantMiss, dMiss) {
			t.Fatalf("%s: MissLatencyCurveInto differs", p.Name)
		}
	}
}

func curvesBitEqual(a, b curves.Curve) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ax, ay := a.Knot(i)
		bx, by := b.Knot(i)
		if ax != bx || ay != by {
			return false
		}
	}
	return true
}

// TestArenaCompactDistanceMemo checks the memo hits on repeated (topo, lines)
// and misses when either changes.
func TestArenaCompactDistanceMemo(t *testing.T) {
	ar := NewArena()
	topo := mesh.New(4, 4)
	c1 := ar.CompactDistance(topo, 8192)
	c2 := ar.CompactDistance(topo, 8192)
	if !curvesBitEqual(c1, c2) {
		t.Fatal("memoized CompactDistance differs from first call")
	}
	want := CompactDistance(topo, 8192)
	if !curvesBitEqual(c1, want) {
		t.Fatal("memoized CompactDistance differs from package-level call")
	}
	other := ar.CompactDistance(topo, 4096)
	if curvesBitEqual(c1, other) {
		t.Fatal("memo failed to rebuild for a different bank size")
	}
}

// TestAllocArenaSteadyStateZeroAlloc proves a full steady-state allocation
// round — cost-curve builds plus quantized Peekahead — allocates nothing
// once the arena is warm.
func TestAllocArenaSteadyStateZeroAlloc(t *testing.T) {
	topo := mesh.New(8, 8)
	m := LatencyModel{MemLatency: 130, HopLatency: 4, RoundTrip: 2}
	profiles := workload.SPECCPU()
	total := 64 * 8192.0
	ar := NewArena()
	round := func() {
		dist := ar.CompactDistance(topo, 8192)
		costs := ar.Costs(64)
		for i := range costs {
			p := profiles[i%len(profiles)]
			costs[i] = TotalLatencyCurveInto(costs[i], p.MissRatio, p.APKI, dist, m, total)
		}
		PeekaheadQuantizedIn(ar, costs, total, 8192)
	}
	round() // warm the arena
	if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
		t.Fatalf("steady-state allocation round allocated %.1f times per run", allocs)
	}
}
