package alloc

import (
	"cdcs/internal/curves"
	"cdcs/internal/mesh"
)

// Arena holds reusable storage for the capacity-allocation hot path: per-VC
// cost curves and convex hulls, the Peekahead segment heap, allocation
// vectors, and a memoized compact-distance curve. Reusing one arena across
// reconfiguration rounds makes steady-state allocation (step 1 of the
// pipeline) heap-allocation-free, matching the arena treatment the placement
// steps already have (place.Arena).
//
// An Arena is not safe for concurrent use. Allocations returned by the *In
// entry points borrow the arena's memory and stay valid only until its next
// allocation call; callers that retain results must copy them or use the
// allocating wrappers.
type Arena struct {
	costs []curves.Curve // per-VC cost-curve slots (backings reused)
	hulls []curves.Curve // per-VC hull slots (backings reused)
	heap  segHeap
	alloc []float64
	quant []float64
	fracs []frac

	// CompactDistance memo: the curve depends only on the topology and the
	// bank size, both constant across a campaign's rounds.
	distTopo  *mesh.Topology
	distLines float64
	dist      curves.Curve
}

// NewArena returns an empty arena; buffers grow on first use.
func NewArena() *Arena { return &Arena{} }

// growFloats returns a zeroed []float64 of length n reusing buf's capacity.
func growFloats(buf *[]float64, n int) []float64 {
	s := *buf
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// growCurves returns a slice of n curve slots, preserving the slots'
// existing backing arrays so the *Into builders can reuse them.
func growCurves(buf *[]curves.Curve, n int) []curves.Curve {
	s := *buf
	if cap(s) < n {
		ns := make([]curves.Curve, n)
		copy(ns, s[:cap(s)])
		s = ns
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}

// Costs returns n cost-curve slots backed by the arena. Build each slot with
// TotalLatencyCurveInto / MissLatencyCurveInto, then feed the slice to a
// Peekahead*In call.
func (a *Arena) Costs(n int) []curves.Curve {
	return growCurves(&a.costs, n)
}

// CompactDistance is the package-level CompactDistance memoized on (topo,
// bankLines): campaigns re-run the allocator on the same chip every round,
// and the curve never changes.
func (a *Arena) CompactDistance(topo *mesh.Topology, bankLines float64) curves.Curve {
	if a.distTopo == topo && a.distLines == bankLines {
		return a.dist
	}
	a.dist = CompactDistance(topo, bankLines)
	a.distTopo, a.distLines = topo, bankLines
	return a.dist
}

// PeekaheadIn is Peekahead with hull storage, the segment heap and the
// result vector reused from ar. The result borrows ar.
func PeekaheadIn(ar *Arena, costs []curves.Curve, totalLines float64) []float64 {
	return peekaheadIn(ar, costs, totalLines, true)
}

// PeekaheadFullIn is PeekaheadFull with storage reused from ar.
func PeekaheadFullIn(ar *Arena, costs []curves.Curve, totalLines float64) []float64 {
	return peekaheadIn(ar, costs, totalLines, false)
}

func peekaheadIn(ar *Arena, costs []curves.Curve, totalLines float64, stopAtZero bool) []float64 {
	hulls := growCurves(&ar.hulls, len(costs))
	for i, c := range costs {
		hulls[i] = c.ConvexHullInto(hulls[i])
	}
	return peekaheadHulls(hulls, totalLines, stopAtZero, ar)
}

// PeekaheadQuantizedIn is PeekaheadQuantized with all scratch reused from
// ar. The result borrows ar.
func PeekaheadQuantizedIn(ar *Arena, costs []curves.Curve, totalLines, chunkLines float64) []float64 {
	raw := PeekaheadIn(ar, costs, totalLines)
	out := growFloats(&ar.quant, len(raw))
	ar.fracs = quantize(raw, out, ar.fracs[:0], totalLines, chunkLines)
	return out
}

// knotUnionInto is knotUnion built by a linear merge into dst (resliced to
// empty) instead of a map and a sort: both knot lists are already strictly
// ascending, so merging them while skipping values outside (0, maxLines)
// yields exactly the same sorted unique set.
func knotUnionInto(dst []float64, a, b curves.Curve, maxLines float64) []float64 {
	dst = append(dst[:0], 0)
	i, j := 0, 0
	an, bn := a.Len(), b.Len()
	for i < an || j < bn {
		var v float64
		switch {
		case i >= an:
			v, _ = b.Knot(j)
			j++
		case j >= bn:
			v, _ = a.Knot(i)
			i++
		default:
			av, _ := a.Knot(i)
			bv, _ := b.Knot(j)
			if av <= bv {
				v = av
				i++
				if av == bv {
					j++
				}
			} else {
				v = bv
				j++
			}
		}
		if v >= maxLines {
			// Knot lists are ascending, so everything left is out of range.
			break
		}
		if v <= dst[len(dst)-1] {
			continue // below zero, or a duplicate of the previous knot
		}
		dst = append(dst, v)
	}
	return append(dst, maxLines)
}

// TotalLatencyCurveInto is TotalLatencyCurve with the result built in dst's
// backing arrays: the knot union is a linear merge and both curve sweeps use
// monotone cursors, so it is allocation-free in steady state and bit-
// identical to the allocating form. dst must not alias ratio or dist.
func TotalLatencyCurveInto(dst curves.Curve, ratio curves.Curve, apki float64, dist curves.Curve, m LatencyModel, maxLines float64) curves.Curve {
	xs, ys := dst.Reuse()
	xs = knotUnionInto(xs, ratio, dist, maxLines)
	var rw, dw curves.Walker
	rw.Reset(ratio)
	dw.Reset(dist)
	for _, x := range xs {
		miss := rw.Eval(x)
		onChip := apki * dw.Eval(x) * m.HopLatency * m.RoundTrip
		offChip := apki * miss * m.MemLatency
		ys = append(ys, onChip+offChip)
	}
	return curves.Wrap(xs, ys)
}

// MissLatencyCurveInto is MissLatencyCurve with the result built in dst's
// backing arrays. dst must not alias ratio.
func MissLatencyCurveInto(dst curves.Curve, ratio curves.Curve, apki float64, m LatencyModel, maxLines float64) curves.Curve {
	xs, ys := dst.Reuse()
	// The zero-distance constant curve contributes no interior knots, so the
	// union is just ratio's knots clipped to the domain.
	xs = knotUnionInto(xs, ratio, curves.Curve{}, maxLines)
	var rw curves.Walker
	rw.Reset(ratio)
	for _, x := range xs {
		ys = append(ys, apki*rw.Eval(x)*m.MemLatency)
	}
	return curves.Wrap(xs, ys)
}
