// Package alloc implements capacity allocation for partitioned NUCA caches.
//
// It provides the Peekahead-style allocator (§IV-C): an exact greedy walk
// over the convex lower hulls of per-VC cost curves. Fed miss curves scaled
// by memory latency it reproduces Jigsaw's miss-minimizing allocation; fed
// total-latency curves (off-chip + optimistic on-chip latency) it becomes
// CDCS's latency-aware allocation, which deliberately leaves capacity unused
// when extra capacity would cost more in network hops than it saves in
// misses (Fig. 5's sweet spot).
package alloc

import (
	"fmt"
	"slices"

	"cdcs/internal/curves"
	"cdcs/internal/mesh"
)

// Peekahead allocates totalLines among the given cost curves, minimizing the
// summed cost. Curves map capacity (lines) to cost (any consistent unit,
// e.g. latency cycles per kilo-instruction). Allocation works on convex
// hulls, so each greedy step is globally optimal for the continuous
// relaxation — the same property the paper's Peekahead exploits.
//
// Allocation stops early when no curve offers a cost reduction (possible
// with latency-aware curves); leftover capacity stays unallocated.
func Peekahead(costs []curves.Curve, totalLines float64) []float64 {
	hulls := make([]curves.Curve, len(costs))
	for i, c := range costs {
		hulls[i] = c.ConvexHull()
	}
	return peekaheadHulls(hulls, totalLines, true, nil)
}

// PeekaheadFull allocates like Peekahead but never stops early: segments
// with zero marginal utility are still taken, so all capacity is handed out
// whenever the curves' domains allow. This models Jigsaw's miss-curve
// allocation, which has no reason to leave capacity unused — and is exactly
// why Jigsaw over-expands VCs when capacity is plentiful (§VI-A, Fig. 14).
func PeekaheadFull(costs []curves.Curve, totalLines float64) []float64 {
	hulls := make([]curves.Curve, len(costs))
	for i, c := range costs {
		hulls[i] = c.ConvexHull()
	}
	return peekaheadHulls(hulls, totalLines, false, nil)
}

// segment is one candidate hull advance for a VC.
type segment struct {
	vc   int
	dx   float64 // capacity the advance consumes
	dy   float64 // cost change (negative is improvement)
	rate float64 // dy/dx, the marginal utility (most negative first)
	knot int     // hull knot index this segment ends at
}

// segHeap is a binary min-heap of segments ordered by steepest descent. It
// implements push/pop directly (the classic sift-up/sift-down, identical
// element ordering to container/heap) rather than through heap.Interface:
// the interface's Push(any) boxes every segment, which was the last
// allocation left in the steady-state allocation round.
type segHeap []segment

func (h segHeap) less(i, j int) bool {
	if h[i].rate != h[j].rate {
		return h[i].rate < h[j].rate
	}
	return h[i].vc < h[j].vc
}

func (h segHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h segHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func (h segHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i, len(h))
	}
}

func (h *segHeap) push(s segment) {
	*h = append(*h, s)
	h.up(len(*h) - 1)
}

func (h *segHeap) pop() segment {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	s := old[n]
	*h = old[:n]
	return s
}

func peekaheadHulls(hulls []curves.Curve, totalLines float64, stopAtZero bool, ar *Arena) []float64 {
	var alloc []float64
	var h segHeap
	if ar != nil {
		alloc = growFloats(&ar.alloc, len(hulls))
		h = ar.heap[:0]
	} else {
		alloc = make([]float64, len(hulls))
		h = make(segHeap, 0, len(hulls))
	}
	remaining := totalLines

	next := func(vc, fromKnot int) (segment, bool) {
		hull := hulls[vc]
		if fromKnot+1 >= hull.Len() {
			return segment{}, false
		}
		x0, y0 := hull.Knot(fromKnot)
		x1, y1 := hull.Knot(fromKnot + 1)
		return segment{
			vc: vc, dx: x1 - x0, dy: y1 - y0,
			rate: (y1 - y0) / (x1 - x0), knot: fromKnot + 1,
		}, true
	}
	for vc := range hulls {
		if s, ok := next(vc, 0); ok {
			h = append(h, s)
		}
	}
	h.init()

	for remaining > 1e-9 && len(h) > 0 {
		s := h.pop()
		if s.rate >= 0 && (stopAtZero || s.rate > 0) {
			// No curve improves with more capacity: stop (latency-aware);
			// in full mode only strictly harmful segments stop allocation.
			break
		}
		if s.dx <= remaining {
			alloc[s.vc] += s.dx
			remaining -= s.dx
			if nx, ok := next(s.vc, s.knot); ok {
				h.push(nx)
			}
		} else {
			// Partial advance along a linear hull segment keeps the same
			// marginal rate, so taking the remainder is still optimal.
			alloc[s.vc] += remaining
			remaining = 0
		}
	}
	if ar != nil {
		ar.heap = h[:0] // keep the (possibly grown) backing for the next round
	}
	return alloc
}

// frac is a VC's sub-chunk remainder, ranked for largest-remainder rounding.
type frac struct {
	vc int
	f  float64
}

// quantize rounds raw down to multiples of chunkLines into out, then hands
// leftover chunks to the largest remainders (VC index breaks ties, a total
// order, so the sort result is unique). fracs is scratch; the possibly-grown
// slice is returned so arena callers can keep the backing.
func quantize(raw, out []float64, fracs []frac, totalLines, chunkLines float64) []frac {
	if chunkLines <= 0 {
		panic(fmt.Sprintf("alloc: invalid chunk %g", chunkLines))
	}
	used := 0.0
	for i, a := range raw {
		whole := float64(int(a / chunkLines))
		out[i] = whole * chunkLines
		used += out[i]
		fracs = append(fracs, frac{i, a - out[i]})
	}
	slices.SortFunc(fracs, func(a, b frac) int {
		if a.f != b.f {
			if a.f > b.f {
				return -1
			}
			return 1
		}
		return a.vc - b.vc
	})
	for _, fr := range fracs {
		if used+chunkLines > totalLines+1e-9 {
			break
		}
		if fr.f <= 1e-9 {
			break
		}
		out[fr.vc] += chunkLines
		used += chunkLines
	}
	return fracs
}

// PeekaheadQuantized allocates like Peekahead but rounds each VC's
// allocation to a multiple of chunkLines (whole-bank allocation in the
// §VI-C bank-partitioned configuration uses chunk = bank size). Rounding is
// largest-remainder so the total never exceeds totalLines.
func PeekaheadQuantized(costs []curves.Curve, totalLines, chunkLines float64) []float64 {
	raw := Peekahead(costs, totalLines)
	out := make([]float64, len(raw))
	quantize(raw, out, make([]frac, 0, len(raw)), totalLines, chunkLines)
	return out
}

// CompactDistance returns the average network distance (hops) from a center
// tile to data placed compactly around it, as a function of placed capacity
// in lines: the optimistic on-chip distance the paper uses when sizing VCs
// before placement (Fig. 6). The curve's knots fall at cumulative bank
// capacities.
func CompactDistance(topo *mesh.Topology, bankLines float64) curves.Curve {
	center := topo.CenterTile()
	n := topo.Tiles()
	xs := make([]float64, 0, n+1)
	ys := make([]float64, 0, n+1)
	xs = append(xs, 0)
	ys = append(ys, 0)
	cum := 0.0     // lines placed
	distSum := 0.0 // sum of distance×lines
	cur := topo.RingFrom(center)
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
		d := float64(cur.Dist())
		cum += bankLines
		distSum += d * bankLines
		xs = append(xs, cum)
		ys = append(ys, distSum/cum)
	}
	return curves.New(xs, ys)
}

// LatencyModel holds the constants that turn miss curves into latency curves.
type LatencyModel struct {
	// MemLatency is the effective memory access latency in cycles.
	MemLatency float64
	// HopLatency is the per-hop one-way network latency in cycles.
	HopLatency float64
	// RoundTrip multiplies hop counts to account for request+response
	// traversal (2 for symmetric paths).
	RoundTrip float64
}

// TotalLatencyCurve builds a VC's total memory-latency curve (cost per
// kilo-instruction): Eq. 1 off-chip latency plus Eq. 2 on-chip latency under
// the optimistic compact placement given by dist. apki is the VC's total
// access intensity; ratio its miss-ratio curve.
//
// All LLC accesses pay the on-chip distance to the VC's banks; misses
// additionally pay memory latency. Growing a VC therefore trades misses
// against hops, producing the U-shaped curve of Fig. 5.
func TotalLatencyCurve(ratio curves.Curve, apki float64, dist curves.Curve, m LatencyModel, maxLines float64) curves.Curve {
	xs := knotUnion(ratio, dist, maxLines)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		miss := ratio.Eval(x)
		onChip := apki * dist.Eval(x) * m.HopLatency * m.RoundTrip
		offChip := apki * miss * m.MemLatency
		ys[i] = onChip + offChip
	}
	return curves.New(xs, ys)
}

// MissLatencyCurve builds the miss-cost-only curve Jigsaw allocates from
// (off-chip latency alone, no on-chip term).
func MissLatencyCurve(ratio curves.Curve, apki float64, m LatencyModel, maxLines float64) curves.Curve {
	xs := knotUnion(ratio, curves.Constant(0, maxLines), maxLines)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = apki * ratio.Eval(x) * m.MemLatency
	}
	return curves.New(xs, ys)
}

// knotUnion merges the knot sets of two curves, clipped to [0, maxLines],
// always including both endpoints.
func knotUnion(a, b curves.Curve, maxLines float64) []float64 {
	return knotUnionInto(nil, a, b, maxLines)
}
