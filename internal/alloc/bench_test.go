package alloc

import (
	"testing"

	"cdcs/internal/curves"
	"cdcs/internal/mesh"
	"cdcs/internal/workload"
)

// BenchmarkPeekahead64VCs measures the allocator on the paper's hot path:
// 64 total-latency curves over the 32MB LLC (one reconfiguration's step 1).
func BenchmarkPeekahead64VCs(b *testing.B) {
	topo := mesh.New(8, 8)
	dist := CompactDistance(topo, 8192)
	m := LatencyModel{MemLatency: 130, HopLatency: 4, RoundTrip: 2}
	profiles := workload.SPECCPU()
	costs := make([]curves.Curve, 64)
	for i := range costs {
		p := profiles[i%len(profiles)]
		costs[i] = TotalLatencyCurve(p.MissRatio, p.APKI, dist, m, 64*8192)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Peekahead(costs, 64*8192)
	}
}

// BenchmarkPeekahead measures one full arena-backed allocation round — the
// steady-state step-1 hot path: 64 total-latency curves built into arena
// slots plus a quantized Peekahead. Gated in CI on B/op and allocs/op; both
// must stay at zero in steady state.
func BenchmarkPeekahead(b *testing.B) {
	topo := mesh.New(8, 8)
	m := LatencyModel{MemLatency: 130, HopLatency: 4, RoundTrip: 2}
	profiles := workload.SPECCPU()
	total := 64 * 8192.0
	ar := NewArena()
	round := func() {
		dist := ar.CompactDistance(topo, 8192)
		costs := ar.Costs(64)
		for i := range costs {
			p := profiles[i%len(profiles)]
			costs[i] = TotalLatencyCurveInto(costs[i], p.MissRatio, p.APKI, dist, m, total)
		}
		PeekaheadQuantizedIn(ar, costs, total, 8192)
	}
	round()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
}

// BenchmarkTotalLatencyCurve measures cost-curve construction per VC.
func BenchmarkTotalLatencyCurve(b *testing.B) {
	topo := mesh.New(8, 8)
	dist := CompactDistance(topo, 8192)
	m := LatencyModel{MemLatency: 130, HopLatency: 4, RoundTrip: 2}
	omnet := workload.ByName(workload.SPECCPU(), "omnet")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TotalLatencyCurve(omnet.MissRatio, omnet.APKI, dist, m, 64*8192)
	}
}
