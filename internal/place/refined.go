package place

import (
	"slices"

	"cdcs/internal/mesh"
)

// desirable is one candidate target bank in a VC's trade spiral.
type desirable struct {
	bank mesh.Tile
	d    float64
}

// Refine performs the paper's refined VC placement (§IV-F, Fig. 8): starting
// from a greedy placement, each VC spirals outward from its center of mass
// looking at its own data; banks where the VC could hold more data are
// "desirable"; data sitting farther out is offered in trades against VCs
// occupying closer desirable banks. A trade executes only when the summed
// latency change (weighted by each VC's accesses per byte) is negative, so
// total on-chip latency is non-increasing. Each VC trades once, in index
// order — the paper found one pass discovers most beneficial trades.
//
// The assignment is modified in place; Refine reports the number of executed
// trades and the total Eq. 2 latency change (≤ 0).
func Refine(chip Chip, demands []Demand, assign Assignment, threadCore []mesh.Tile) (trades int, delta float64) {
	return RefineIn(NewArena(), chip, demands, assign, threadCore)
}

// RefineIn is Refine with scratch taken from ar.
func RefineIn(ar *Arena, chip Chip, demands []Demand, assign Assignment, threadCore []mesh.Tile) (trades int, delta float64) {
	dist := VCDistancesIn(ar, chip, demands, threadCore)
	used := assign.BankUsageInto(grow(&ar.used, chip.Banks()))

	// accPerLine[v] = accesses per line of allocated capacity: the weight
	// that converts moved capacity into latency change.
	accPerLine := grow(&ar.accPerLine, len(demands))
	for v := range demands {
		if size := assign.Placed(v); size > 0 {
			accPerLine[v] = demands[v].TotalRate() / size
		}
	}
	// residents[b] lists VCs with data in bank b (kept fresh lazily).
	residents := growResidents(&ar.residents, chip.Banks())
	for v := range assign {
		av := &assign[v]
		for i := 0; i < av.Len(); i++ {
			if b, l := av.At(i); l > 1e-9 {
				residents[b] = append(residents[b], v)
			}
		}
	}

	for v := range demands {
		if demands[v].Size <= 0 || accPerLine[v] == 0 {
			continue
		}
		size := assign.Placed(v)
		if size <= 1e-9 {
			continue
		}
		av := &assign[v]
		// Spiral from the VC's preferred location: the rate-weighted center
		// of its accessor threads. (The paper spirals from the VC's center
		// of mass; after greedy placement both coincide, but the accessor
		// center also handles degenerate starts where all data is remote.)
		com := preferredCenter(ar, chip, &demands[v], av, threadCore)

		desirables := ar.desirables[:0]
		seen := 0.0

		// The spiral is data-bounded (it breaks once all of v's data has
		// been seen), so it needs no candidate pruning at scale. Capping its
		// reach was evaluated for kilo-tile meshes and rejected: the
		// long-distance trades it would cut are precisely what recovers
		// latency when greedy scatters late VCs far out (a 4-footprint cap
		// cost CDCS ~5% WS at 1024 tiles on ext-scaling).
		cur := chip.Topo.RingFrom(com)
		for {
			b, ok := cur.Next()
			if !ok {
				break
			}
			have := av.Get(b)
			if have < chip.CapOf(b)-1e-9 {
				desirables = append(desirables, desirable{b, dist[v][b]})
			}
			if have <= 1e-9 {
				continue
			}
			seen += have
			// Try to move v's data in b into closer desirable banks.
			slices.SortStableFunc(desirables, func(x, y desirable) int {
				if x.d != y.d {
					if x.d < y.d {
						return -1
					}
					return 1
				}
				return int(x.bank) - int(y.bank)
			})
			for _, cand := range desirables {
				if av.Get(b) <= 1e-9 {
					break
				}
				if cand.d >= dist[v][b]-1e-12 {
					break // sorted: no closer candidates remain
				}
				moveGain := accPerLine[v] * (cand.d - dist[v][b]) // < 0

				// Free space first: a move into unclaimed capacity has no
				// counterparty and always helps.
				if room := chip.CapOf(cand.bank) - used[cand.bank]; room > 1e-9 {
					m := minF(av.Get(b), room)
					moveCapacity(assign, used, residents, v, b, cand.bank, m)
					trades++
					delta += moveGain * m
					if av.Get(b) <= 1e-9 {
						continue
					}
				}
				// Offer trades to resident VCs.
				for _, u := range residents[cand.bank] {
					if u == v || assign[u].Get(cand.bank) <= 1e-9 {
						continue
					}
					if av.Get(b) <= 1e-9 {
						break
					}
					gainU := accPerLine[u] * (dist[u][b] - dist[u][cand.bank])
					if moveGain+gainU >= -1e-12 {
						continue
					}
					m := minF(av.Get(b), assign[u].Get(cand.bank))
					// Swap m lines: v moves b→cand, u moves cand→b.
					av.Add(b, -m)
					av.Add(cand.bank, m)
					assign[u].Add(cand.bank, -m)
					assign[u].Add(b, m)
					addResident(residents, cand.bank, v)
					addResident(residents, b, u)
					trades++
					delta += (moveGain + gainU) * m
				}
			}
			if seen >= size-1e-9 {
				break // the spiral has seen all of v's data
			}
		}
		ar.desirables = desirables
	}
	return trades, delta
}

// RefineRounds runs the trade pass repeatedly (the paper trades once per VC
// per reconfiguration, having found empirically that one pass discovers most
// trades; this wrapper exists to reproduce that ablation). Returns total
// trades and latency change, stopping early once a round finds nothing.
func RefineRounds(chip Chip, demands []Demand, assign Assignment, threadCore []mesh.Tile, rounds int) (trades int, delta float64) {
	ar := NewArena()
	for r := 0; r < rounds; r++ {
		tr, d := RefineIn(ar, chip, demands, assign, threadCore)
		trades += tr
		delta += d
		if tr == 0 {
			break
		}
	}
	return trades, delta
}

// preferredCenter returns the tile a VC's data would ideally cluster around:
// the rate-weighted center of its accessors, falling back to the data's own
// center of mass for accessorless VCs. Tile weights accumulate in a dense
// scratch array (only the touched tiles are reset), and the center-of-mass
// walk visits touched tiles in ascending id order — the same order the
// previous map-keyed reduction sorted into.
func preferredCenter(ar *Arena, chip Chip, d *Demand, alloc *BankAlloc, threadCore []mesh.Tile) mesh.Tile {
	if d.TotalRate() > 0 {
		w := ensure(&ar.tileW, chip.Banks())
		for _, t := range d.Threads {
			w[threadCore[t]] = 0
		}
		for i, t := range d.Threads {
			w[threadCore[t]] += d.Rates[i]
		}
		ts := ensure(&ar.pcTiles, len(d.Threads))[:0]
		for _, t := range d.Threads {
			ts = append(ts, threadCore[t])
		}
		slices.Sort(ts)
		ar.pcTiles = ts
		var wx, wy, wsum float64
		prev := mesh.Tile(-1)
		for _, tile := range ts {
			if tile == prev {
				continue
			}
			prev = tile
			wt := w[tile]
			tx, ty := chip.Topo.Coords(tile)
			wx += wt * float64(tx)
			wy += wt * float64(ty)
			wsum += wt
		}
		if wsum == 0 {
			cx, cy := chip.Topo.Coords(chip.Topo.CenterTile())
			return chip.Topo.NearestTile(float64(cx), float64(cy))
		}
		return chip.Topo.NearestTile(wx/wsum, wy/wsum)
	}
	x, y := CenterOfMass(chip, alloc)
	return chip.Topo.NearestTile(x, y)
}

// moveCapacity moves m lines of VC v from bank b to free space in bank nb.
func moveCapacity(assign Assignment, used []float64, residents [][]int, v int, b, nb mesh.Tile, m float64) {
	assign[v].Add(b, -m)
	assign[v].Add(nb, m)
	used[b] -= m
	used[nb] += m
	addResident(residents, nb, v)
}

// addResident registers VC v in bank b's resident list if absent.
func addResident(residents [][]int, b mesh.Tile, v int) {
	for _, u := range residents[b] {
		if u == v {
			return
		}
	}
	residents[b] = append(residents[b], v)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
