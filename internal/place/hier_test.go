package place

import (
	"math"
	"testing"

	"cdcs/internal/mesh"
)

// TestHierarchicalThreshold pins the dispatch boundary: 64×64 (= the
// threshold) stays on the flat pipeline — the regime the golden corpus
// covers — and anything larger goes hierarchical.
func TestHierarchicalThreshold(t *testing.T) {
	if Hierarchical(Chip{Topo: mesh.New(64, 64), BankLines: 8192}) {
		t.Error("64x64 (= HierarchyThreshold) dispatched hierarchical; must stay flat")
	}
	if !Hierarchical(Chip{Topo: mesh.New(65, 64), BankLines: 8192}) {
		t.Error("65x64 (> HierarchyThreshold) dispatched flat; expected hierarchical")
	}
}

// hierAssignEqual compares two assignments value-for-value (bitwise).
func hierAssignEqual(t *testing.T, name string, banks int, a, b Assignment) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d VCs", name, len(a), len(b))
	}
	for v := range a {
		for bk := 0; bk < banks; bk++ {
			x, y := a[v].Get(mesh.Tile(bk)), b[v].Get(mesh.Tile(bk))
			if math.Float64bits(x) != math.Float64bits(y) {
				t.Fatalf("%s: VC %d bank %d: %v vs %v", name, v, bk, x, y)
			}
		}
	}
}

// TestHierMatchesFlatOnUnitClusters runs the hierarchical pipeline on a mesh
// whose default cluster view is the identity partition (16×16 = 256 tiles =
// DefaultMaxClusters, so every cluster is one tile). There the coarse mesh IS
// the fine mesh and every interior subproblem is a single bank, so each
// hierarchical stage must reproduce its flat counterpart bit-for-bit — the
// strongest form of the "provably inert at small scale" contract, exercised
// through the hierarchical code rather than around it.
func TestHierMatchesFlatOnUnitClusters(t *testing.T) {
	chip, demands, _ := pipelineInstance(16, 16)
	n := chip.Banks()

	fOpt := OptimisticPlaceIn(NewArena(), chip, demands)
	hOpt := HierOptimisticPlaceIn(NewArena(), chip, demands)
	for v := range demands {
		if fOpt.Center[v] != hOpt.Center[v] {
			t.Fatalf("VC %d: center %d vs %d", v, fOpt.Center[v], hOpt.Center[v])
		}
		if fOpt.CoM[v] != hOpt.CoM[v] {
			t.Fatalf("VC %d: CoM %v vs %v", v, fOpt.CoM[v], hOpt.CoM[v])
		}
	}
	hierAssignEqual(t, "claims", n, fOpt.Claims, hOpt.Claims)

	fThreads := PlaceThreadsIn(NewArena(), chip, demands, fOpt, n)
	hThreads := HierPlaceThreadsIn(NewArena(), chip, demands, hOpt, n)
	for i := range fThreads {
		if fThreads[i] != hThreads[i] {
			t.Fatalf("thread %d: core %d vs %d", i, fThreads[i], hThreads[i])
		}
	}

	chunk := chip.BankLines / 8
	fAssign := GreedyIn(NewArena(), chip, demands, fThreads, chunk)
	fTrades, fDelta := RefineIn(NewArena(), chip, demands, fAssign, fThreads)
	hAssign, hTrades, hDelta := HierGreedyRefineIn(NewArena(), chip, demands, hThreads, chunk, true)
	hierAssignEqual(t, "assignment", n, fAssign, hAssign)
	if fTrades != hTrades || math.Float64bits(fDelta) != math.Float64bits(hDelta) {
		t.Fatalf("trades/delta: flat (%d, %v) vs hier (%d, %v)", fTrades, fDelta, hTrades, hDelta)
	}
}

// TestHierBoundedGap forces the hierarchical path onto a mesh the flat
// pipeline still handles (32×32: clusters of side 2) and bounds the on-chip
// latency it gives up for the two-level approximation. The hierarchical
// result must also be a valid placement under real capacities.
func TestHierBoundedGap(t *testing.T) {
	chip, demands, _ := pipelineInstance(32, 32)
	n := chip.Banks()
	chunk := chip.BankLines / 8

	fOpt := OptimisticPlaceIn(NewArena(), chip, demands)
	fThreads := PlaceThreadsIn(NewArena(), chip, demands, fOpt, n)
	fAssign := GreedyIn(NewArena(), chip, demands, fThreads, chunk)
	RefineIn(NewArena(), chip, demands, fAssign, fThreads)
	flat := OnChipLatency(chip, demands, fAssign, fThreads)

	hOpt := HierOptimisticPlaceIn(NewArena(), chip, demands)
	hThreads := HierPlaceThreadsIn(NewArena(), chip, demands, hOpt, n)
	hAssign, _, delta := HierGreedyRefineIn(NewArena(), chip, demands, hThreads, chunk, true)
	if err := hAssign.Validate(chip, demands, 1e-6); err != nil {
		t.Fatalf("hierarchical assignment invalid: %v", err)
	}
	if delta > 1e-9 {
		t.Fatalf("refine increased latency: delta=%v", delta)
	}
	hier := OnChipLatency(chip, demands, hAssign, hThreads)
	if hier > 1.5*flat {
		t.Fatalf("hierarchical on-chip latency %.4g vs flat %.4g: gap above 50%%", hier, flat)
	}
	t.Logf("on-chip latency: flat %.4g, hier %.4g (%.2fx)", flat, hier, hier/flat)
}

// TestHierWorkerDeterminism proves the interior-refinement fan-out's
// deterministic-merge contract: the assignment, trade count, and latency
// delta are bitwise identical for any worker count.
func TestHierWorkerDeterminism(t *testing.T) {
	w, h := 48, 48
	if testing.Short() {
		w, h = 24, 24
	}
	chip, demands, _ := pipelineInstance(w, h)
	n := chip.Banks()
	chunk := chip.BankLines / 8
	opt := HierOptimisticPlaceIn(NewArena(), chip, demands)
	threads := HierPlaceThreadsIn(NewArena(), chip, demands, opt, n)

	defer func() { hierWorkers = 0 }()
	hierWorkers = 1
	a1, t1, d1 := HierGreedyRefineIn(NewArena(), chip, demands, threads, chunk, true)
	ref := a1.Clone()
	for _, nw := range []int{2, 8} {
		hierWorkers = nw
		an, tn, dn := HierGreedyRefineIn(NewArena(), chip, demands, threads, chunk, true)
		hierAssignEqual(t, "workers", n, ref, an)
		if tn != t1 || math.Float64bits(dn) != math.Float64bits(d1) {
			t.Fatalf("workers=%d: trades/delta (%d, %v) vs (%d, %v)", nw, tn, dn, t1, d1)
		}
	}
}

// TestHierPipelineAtScale runs the full hierarchical pipeline on a genuinely
// above-threshold (lazy-mesh) chip and checks the result is a valid
// placement with all capacity placed. This is the 128×128 frontier the flat
// pipeline cannot reach (its distance matrix alone would need ~2 GB).
func TestHierPipelineAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 96x96 pipeline in -short mode")
	}
	chip, demands, _ := pipelineInstance(96, 96)
	if !Hierarchical(chip) || !chip.Topo.Lazy() {
		t.Fatal("96x96 should be hierarchical over a lazy mesh")
	}
	n := chip.Banks()
	opt := HierOptimisticPlaceIn(NewArena(), chip, demands)
	threads := HierPlaceThreadsIn(NewArena(), chip, demands, opt, n)
	seen := make([]bool, n)
	for _, c := range threads {
		if seen[c] {
			t.Fatalf("core %d assigned twice", c)
		}
		seen[c] = true
	}
	assign, _, delta := HierGreedyRefineIn(NewArena(), chip, demands, threads, chip.BankLines/8, true)
	if err := assign.Validate(chip, demands, 1e-6); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	if delta > 1e-9 {
		t.Fatalf("refine increased latency: delta=%v", delta)
	}
}
