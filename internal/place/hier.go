package place

import (
	"math"
	"runtime"
	"sync"

	"cdcs/internal/mesh"
)

// HierarchyThreshold is the bank count above which placement dispatches
// through the two-level hierarchical path (internal/core does the dispatch).
// At or below the threshold — which covers every configuration up through the
// 64×64 ext-scaling point — the hierarchical functions are never invoked, so
// placement stays bit-identical to the flat pipeline by construction; the
// golden corpus enforces that. Above it, the flat pipeline's remaining
// O(banks²) work (per-VC distance rows, full-mesh candidate scans) would
// dominate, so placement runs over the mesh's cluster view instead: the exact
// scans of the paper applied to at most DefaultMaxClusters super-tiles, then
// refined independently within each cluster.
const HierarchyThreshold = 4096

// hierWorkers overrides the interior-refinement worker count when positive.
// Tests use it to prove placements are identical for any worker count.
var hierWorkers = 0

// Hierarchical reports whether chip is large enough that placement dispatches
// through the hierarchical path.
func Hierarchical(chip Chip) bool { return chip.Banks() > HierarchyThreshold }

// coarseChipIn builds the cluster-granularity chip: one "bank" per cluster
// whose capacity is the cluster's total fine capacity (ragged edge clusters
// hold fewer tiles, hence less).
func coarseChipIn(ar *Arena, chip Chip, cl *mesh.Clusters) Chip {
	caps := grow(&ar.hCaps, cl.N())
	for c := range caps {
		caps[c] = float64(cl.Count(mesh.Tile(c))) * chip.BankLines
	}
	return Chip{Topo: cl.Coarse(), BankLines: chip.BankLines, BankCap: caps}
}

// HierOptimisticPlaceIn is the hierarchical form of OptimisticPlaceIn: the
// optimistic contention-aware search (§IV-D) runs exhaustively over the
// coarse cluster mesh — the same machinery, one level up — and each VC's
// coarse claims land on the claiming cluster's representative tile, which is
// all thread placement needs (it only consumes the claims' centers of mass).
func HierOptimisticPlaceIn(ar *Arena, chip Chip, demands []Demand) Optimistic {
	cl := chip.Topo.Clusters()
	copt := OptimisticPlaceIn(ar.coarse(), coarseChipIn(ar, chip, cl), demands)

	out := Optimistic{
		Center: grow(&ar.centers, len(demands)),
		Claims: arenaAssignment(&ar.claims, len(demands), chip.Banks()),
		CoM:    grow(&ar.com, len(demands)),
	}
	for v := range demands {
		out.Center[v] = cl.Rep(copt.Center[v])
		cv := &copt.Claims[v]
		for i := 0; i < cv.Len(); i++ {
			c, l := cv.At(i)
			out.Claims[v].Set(cl.Rep(c), l)
		}
		x, y := CenterOfMass(chip, &out.Claims[v])
		out.CoM[v] = Point{x, y}
	}
	return out
}

// HierPlaceThreadsIn is the hierarchical form of PlaceThreadsIn (§IV-E).
// Threads are ranked exactly as in the flat placer; each then picks the
// free-slot cluster whose centroid is closest to its preferred point
// (ascending cluster scan, strict improvement — deterministic), and finally
// the free core within that cluster under the flat placer's comparator,
// scanning member tiles in ascending global index. Per thread this costs
// O(clusters + cluster size) instead of O(banks).
func HierPlaceThreadsIn(ar *Arena, chip Chip, demands []Demand, opt Optimistic, nThreads int) []mesh.Tile {
	cl := chip.Topo.Clusters()
	infos := threadInfosIn(ar, chip, demands, opt, nThreads)

	slots := grow(&ar.hSlots, cl.N())
	for c := range slots {
		slots[c] = cl.Count(mesh.Tile(c))
	}
	free := grow(&ar.freeCore, chip.Banks())
	for i := range free {
		free[i] = true
	}
	out := grow(&ar.threads, nThreads)
	for i := range infos {
		info := &infos[i]
		best := -1
		bestDist := 0.0
		for c := 0; c < cl.N(); c++ {
			if slots[c] == 0 {
				continue
			}
			cx, cy := cl.Centroid(mesh.Tile(c))
			d := math.Abs(cx-info.comX) + math.Abs(cy-info.comY)
			if best < 0 || d < bestDist-1e-12 {
				best, bestDist = c, d
			}
		}
		if best < 0 {
			panic("place: more threads than cores")
		}
		slots[best]--
		x0, y0, x1, y1 := cl.Bounds(mesh.Tile(best))
		bc := -1
		bcd := 0.0
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				t := chip.Topo.TileAt(x, y)
				if !free[t] {
					continue
				}
				d := chip.Topo.DistanceToPoint(t, info.comX, info.comY)
				if bc < 0 || d < bcd-1e-12 {
					bc, bcd = int(t), d
				}
			}
		}
		free[bc] = false
		out[info.id] = mesh.Tile(bc)
	}
	return out
}

// hierVC is one VC's capacity slice inside one cluster.
type hierVC struct {
	v     int
	lines float64
}

// hierEntry is one merged placement record: VC v holds lines in fine bank b.
type hierEntry struct {
	v     int
	bank  mesh.Tile
	lines float64
}

// hierWorker holds one interior-refinement worker's private scratch. Workers
// never share mutable state: each owns its arena and demand backings, writes
// only its clusters' entry buffers, and results are merged sequentially.
type hierWorker struct {
	ar    *Arena
	ds    []Demand
	ths   []int
	rates []float64
	cores []mesh.Tile
}

// HierGreedyRefineIn is the hierarchical form of GreedyIn (+ RefineIn when
// refine is set): steps that replace the flat §IV-F data placement above
// HierarchyThreshold banks.
//
// Level 1 places capacity greedily over the coarse cluster mesh (threads
// projected to their clusters) and, when refine is set, runs the bounded
// trade spiral there — inter-cluster moves in cluster hops, whose latency
// gain is reported scaled by the cluster side to approximate fine hops.
//
// Level 2 refines each cluster's interior independently: the VC slices the
// coarse pass left in a cluster become single-accessor local demands pulled
// toward the VC's rate-weighted accessor centroid (clamped into the cluster),
// placed and trade-refined on a small eager sub-mesh. Interiors fan out
// across a bounded worker pool; every cluster's subproblem is independent and
// buffers are merged in ascending cluster order, so the result is identical
// for any worker count. Sub-meshes are memoized per distinct cluster shape
// (at most four: interior, right edge, bottom edge, corner).
func HierGreedyRefineIn(ar *Arena, chip Chip, demands []Demand, threadCore []mesh.Tile, chunk float64, refine bool) (Assignment, int, float64) {
	cl := chip.Topo.Clusters()
	cchip := coarseChipIn(ar, chip, cl)

	// Level 1: coarse placement with threads projected onto clusters.
	cCores := grow(&ar.hCCores, len(threadCore))
	for t, core := range threadCore {
		cCores[t] = cl.Of(core)
	}
	ca := ar.coarse()
	cAssign := GreedyIn(ca, cchip, demands, cCores, chunk)
	trades, delta := 0, 0.0
	if refine {
		tr, dl := RefineIn(ca, cchip, demands, cAssign, cCores)
		trades, delta = tr, dl*float64(cl.Side())
	}

	// Group the coarse result by cluster: ascending VC order within each.
	cvcs := growClusterVCs(&ar.hCVCs, cl.N())
	for v := range demands {
		cv := &cAssign[v]
		for i := 0; i < cv.Len(); i++ {
			if c, l := cv.At(i); l > 1e-9 {
				cvcs[c] = append(cvcs[c], hierVC{v, l})
			}
		}
	}

	// Pull points: where each VC's data wants to sit on the fine mesh.
	pullX := grow(&ar.hPullX, len(demands))
	pullY := grow(&ar.hPullY, len(demands))
	ccx, ccy := chip.Topo.Coords(chip.Topo.CenterTile())
	for v := range demands {
		d := &demands[v]
		if total := d.TotalRate(); total > 0 {
			var wx, wy float64
			for i, t := range d.Threads {
				tx, ty := chip.Topo.Coords(threadCore[t])
				wx += d.Rates[i] * float64(tx)
				wy += d.Rates[i] * float64(ty)
			}
			pullX[v], pullY[v] = wx/total, wy/total
		} else {
			pullX[v], pullY[v] = float64(ccx), float64(ccy)
		}
	}

	// Memoize the sub-meshes every needed cluster shape uses, before the
	// parallel phase (map writes are not synchronized).
	if ar.hSubTopo == nil {
		ar.hSubTopo = make(map[[2]int]*mesh.Topology)
	}
	for c := 0; c < cl.N(); c++ {
		x0, y0, x1, y1 := cl.Bounds(mesh.Tile(c))
		k := [2]int{x1 - x0, y1 - y0}
		if ar.hSubTopo[k] == nil {
			ar.hSubTopo[k] = mesh.NewEager(k[0], k[1])
		}
	}

	// Level 2: independent per-cluster interiors across a bounded pool.
	entries := growClusterEntries(&ar.hEntries, cl.N())
	cTrades := grow(&ar.hTrades, cl.N())
	cDeltas := grow(&ar.hDeltas, cl.N())
	nw := runtime.GOMAXPROCS(0)
	if nw > 8 {
		nw = 8
	}
	if hierWorkers > 0 {
		nw = hierWorkers
	}
	if nw > cl.N() {
		nw = cl.N()
	}
	for len(ar.hWorkers) < nw {
		ar.hWorkers = append(ar.hWorkers, &hierWorker{ar: NewArena()})
	}
	per := (cl.N() + nw - 1) / nw
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		lo, hi := k*per, min((k+1)*per, cl.N())
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w *hierWorker, lo, hi int) {
			defer wg.Done()
			for c := lo; c < hi; c++ {
				entries[c] = w.interior(chip, cl, ar.hSubTopo, c, cvcs[c],
					pullX, pullY, demands, chunk, refine,
					entries[c][:0], &cTrades[c], &cDeltas[c])
			}
		}(ar.hWorkers[k], lo, hi)
	}
	wg.Wait()

	// Merge in ascending cluster order. Every fine bank belongs to exactly
	// one cluster and each (VC, bank) pair appears at most once per cluster,
	// so Set never collides; the order fixes the sparse-index build but the
	// values themselves are independent of it.
	out := arenaAssignment(&ar.assign, len(demands), chip.Banks())
	for c := 0; c < cl.N(); c++ {
		for _, e := range entries[c] {
			out[e.v].Set(e.bank, e.lines)
		}
		trades += cTrades[c]
		delta += cDeltas[c]
	}
	return out, trades, delta
}

// interior solves one cluster's placement subproblem: each VC slice becomes a
// single-accessor demand whose synthetic core is the VC's pull point clamped
// into the cluster, placed greedily (and trade-refined) on the cluster's
// sub-mesh. Appends the resulting fine-bank records to entries.
func (w *hierWorker) interior(chip Chip, cl *mesh.Clusters, subTopo map[[2]int]*mesh.Topology,
	c int, vcs []hierVC, pullX, pullY []float64, demands []Demand,
	chunk float64, refine bool, entries []hierEntry, trades *int, delta *float64) []hierEntry {
	*trades, *delta = 0, 0
	if len(vcs) == 0 {
		return entries
	}
	x0, y0, x1, y1 := cl.Bounds(mesh.Tile(c))
	sub := subTopo[[2]int{x1 - x0, y1 - y0}]
	schip := Chip{Topo: sub, BankLines: chip.BankLines}

	nv := len(vcs)
	ths := ensure(&w.ths, nv)
	rates := ensure(&w.rates, nv)
	cores := ensure(&w.cores, nv)
	ds := ensure(&w.ds, nv)
	for i, e := range vcs {
		ths[i] = i
		rates[i] = demands[e.v].TotalRate()
		ds[i] = Demand{Size: e.lines, Threads: ths[i : i+1 : i+1], Rates: rates[i : i+1 : i+1]}
		px := clampF(pullX[e.v], float64(x0), float64(x1-1))
		py := clampF(pullY[e.v], float64(y0), float64(y1-1))
		cores[i] = sub.NearestTile(px-float64(x0), py-float64(y0))
	}

	assign := GreedyIn(w.ar, schip, ds, cores, chunk)
	if refine {
		*trades, *delta = RefineIn(w.ar, schip, ds, assign, cores)
	}
	for i := range assign {
		av := &assign[i]
		for j := 0; j < av.Len(); j++ {
			b, l := av.At(j)
			bx, by := sub.Coords(b)
			entries = append(entries, hierEntry{vcs[i].v, chip.Topo.TileAt(x0+bx, y0+by), l})
		}
	}
	return entries
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
