package place

import (
	"math"
	"math/rand"

	"cdcs/internal/mesh"
)

// AnnealThreads is the §VI-C simulated-annealing thread placer: it improves
// a thread placement by Metropolis-accepted core swaps against the Eq. 2
// on-chip latency with the data placement held fixed. The paper runs 5000
// swap rounds and finds it only ~0.6% better than CDCS at far higher cost;
// this implementation exists to reproduce that comparison.
//
// Returns the improved placement and its Eq. 2 latency (access·hops).
func AnnealThreads(chip Chip, demands []Demand, assign Assignment, threadCore []mesh.Tile, rounds int, rng *rand.Rand) ([]mesh.Tile, float64) {
	nT := len(threadCore)
	nC := chip.Banks()

	// threadCost[t][c] = Eq. 2 contribution of thread t if placed on core c.
	// Precomputing it makes each swap O(1) to evaluate.
	vcFrac := make([][]float64, len(demands)) // dense per-bank fractions; nil for empty VCs
	for v := range demands {
		size := assign.Placed(v)
		if size <= 0 {
			continue
		}
		av := &assign[v]
		f := make([]float64, nC)
		for _, b := range av.Banks() {
			f[b] = av.Get(b) / size
		}
		vcFrac[v] = f
	}
	threadCost := make([][]float64, nT)
	for t := 0; t < nT; t++ {
		threadCost[t] = make([]float64, nC)
	}
	for v := range demands {
		if vcFrac[v] == nil {
			continue
		}
		d := &demands[v]
		banks := assign[v].Banks()
		for i, t := range d.Threads {
			if t >= nT {
				continue
			}
			rate := d.Rates[i]
			for c := 0; c < nC; c++ {
				sum := 0.0
				for _, b := range banks {
					sum += vcFrac[v][b] * float64(chip.Topo.Distance(mesh.Tile(c), b))
				}
				threadCost[t][c] += rate * sum
			}
		}
	}

	cur := append([]mesh.Tile(nil), threadCore...)
	occupant := make([]int, nC) // core -> thread (-1 empty)
	for i := range occupant {
		occupant[i] = -1
	}
	for t, c := range cur {
		occupant[c] = t
	}
	cost := 0.0
	for t := 0; t < nT; t++ {
		cost += threadCost[t][cur[t]]
	}

	// Geometric cooling from a temperature comparable to typical deltas.
	temp := cost / float64(nT+1)
	if temp <= 0 {
		temp = 1
	}
	cooling := math.Pow(1e-3, 1/math.Max(1, float64(rounds)))

	for round := 0; round < rounds; round++ {
		t := rng.Intn(nT)
		c2 := mesh.Tile(rng.Intn(nC))
		c1 := cur[t]
		if c1 == c2 {
			temp *= cooling
			continue
		}
		other := occupant[c2]
		delta := threadCost[t][c2] - threadCost[t][c1]
		if other >= 0 {
			delta += threadCost[other][c1] - threadCost[other][c2]
		}
		if delta < 0 || rng.Float64() < math.Exp(-delta/math.Max(temp, 1e-12)) {
			cur[t] = c2
			occupant[c2] = t
			occupant[c1] = other
			if other >= 0 {
				cur[other] = c1
			}
			cost += delta
		}
		temp *= cooling
	}
	return cur, cost
}
