package place

import (
	"cdcs/internal/mesh"
)

// PruneThreshold is the bank count above which the optimistic placement's
// candidate-center search switches to the pruned two-level form that scales
// to kilo-tile meshes. At or below the threshold —
// which covers every configuration the paper evaluates, up to the 16×16
// ext-scaling point — the pruned paths are never taken, so placement is
// bit-identical to exhaustive search by construction. The golden corpus at
// the repo root (TestGoldenStability) and the exhaustive-equivalence test in
// this package enforce that property.
const PruneThreshold = 256

// latticeTopK is how many coarse-lattice winners seed the exact neighborhood
// re-scan of the pruned candidate search.
const latticeTopK = 4

// centerSearch accumulates the best candidate center under the optimistic
// comparator (§IV-D): least claimed-capacity contention, near-ties (within
// 1e-9) broken by distance to the chip center, remaining ties by scan order.
// Candidates are always scanned in ascending tile-index order, so the result
// is deterministic.
type centerSearch struct {
	chip    Chip
	claimed []float64
	size    float64
	center  mesh.Tile // chip center, the tie-break anchor

	best     mesh.Tile
	bestCont float64
	bestDist int
}

func newCenterSearch(chip Chip, claimed []float64, size float64) *centerSearch {
	return &centerSearch{
		chip: chip, claimed: claimed, size: size,
		center: chip.Topo.CenterTile(), bestCont: -1,
	}
}

// consider scores one candidate and keeps it if it beats the best so far.
func (s *centerSearch) consider(c mesh.Tile) {
	cont := footprintContention(s.chip, s.claimed, c, s.size)
	dc := s.chip.Topo.Distance(c, s.center)
	if s.bestCont < 0 ||
		cont < s.bestCont-1e-9 ||
		(cont < s.bestCont+1e-9 && dc < s.bestDist) {
		s.best, s.bestCont, s.bestDist = c, cont, dc
	}
}

// bestCenter picks the least-contended center for a VC of the given size.
// Chips at or below PruneThreshold banks scan every tile — exactly the
// paper's search; larger chips run the two-level pruned scan.
func bestCenter(chip Chip, claimed []float64, size float64) mesh.Tile {
	s := newCenterSearch(chip, claimed, size)
	n := chip.Banks()
	if n <= PruneThreshold {
		for c := 0; c < n; c++ {
			s.consider(mesh.Tile(c))
		}
		return s.best
	}
	prunedScan(s)
	return s.best
}

// latticeStride returns the smallest stride >= 1 whose coarse lattice over a
// w×h mesh has at most PruneThreshold points.
func latticeStride(w, h int) int {
	s := 1
	for ((w+s-1)/s)*((h+s-1)/s) > PruneThreshold {
		s++
	}
	return s
}

// latticeScored is one coarse-lattice candidate's score in the pruned scan.
type latticeScored struct {
	tile mesh.Tile
	cont float64
	dist int
}

// latticeBetter is the pruned scan's total order over lattice scores: the
// exhaustive comparator's criteria (contention, then distance to the chip
// center) with an index tie-break so ranking is deterministic.
func latticeBetter(a, b latticeScored) bool {
	if a.cont != b.cont {
		return a.cont < b.cont
	}
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.tile < b.tile
}

// prunedScan is the beyond-paper-scale candidate search: score a coarse
// lattice of at most PruneThreshold tiles (plus the chip center, so an
// uncontended chip still resolves to the center exactly as the exhaustive
// scan does), keep the top latticeTopK via a fixed-size insertion (no
// allocation, no reflection — this runs once per VC), then re-scan those
// winners' lattice cells exactly. The footprint-contention surface varies on
// the scale of a VC footprint, so a winner's cell almost always contains the
// exhaustive optimum; either way the placement stays a valid relaxed claim —
// the refined pass enforces real capacities later.
func prunedScan(se *centerSearch) {
	topo := se.chip.Topo
	w, h := topo.Width(), topo.Height()
	stride := latticeStride(w, h)
	center := se.center
	cx, cy := topo.Coords(center)

	var top [latticeTopK]latticeScored
	nTop := 0
	score := func(c mesh.Tile) {
		s := latticeScored{c, footprintContention(se.chip, se.claimed, c, se.size), topo.Distance(c, center)}
		i := nTop
		if i < latticeTopK {
			nTop++
		} else if !latticeBetter(s, top[latticeTopK-1]) {
			return
		} else {
			i = latticeTopK - 1
		}
		for i > 0 && latticeBetter(s, top[i-1]) {
			top[i] = top[i-1]
			i--
		}
		top[i] = s
	}
	for y := 0; y < h; y += stride {
		for x := 0; x < w; x += stride {
			score(topo.TileAt(x, y))
		}
	}
	if cx%stride != 0 || cy%stride != 0 { // not already a lattice point
		score(center)
	}

	// Exact re-scan of each winner's lattice cell. A cell's far corner sits
	// at Manhattan distance 2(stride-1) from its lattice point, so that is
	// the radius that guarantees full cell coverage for any stride (for the
	// stride-2 lattice of a 32×32 mesh it equals the stride). Overlapping
	// cells may score a tile twice, which the strict-improvement comparator
	// absorbs; the scan order is fixed by the deterministic top-K ranking,
	// so the final tie-break is deterministic too.
	radius := 2 * (stride - 1)
	if radius < stride {
		radius = stride
	}
	for i := 0; i < nTop; i++ {
		c := top[i].tile
		if !topo.Lazy() {
			for _, b := range topo.ByDistance(c)[:topo.WithinCount(c, radius)] {
				se.consider(b)
			}
			continue
		}
		cur := topo.RingFrom(c)
		for {
			b, ok := cur.Next()
			if !ok || cur.Dist() > radius {
				break
			}
			se.consider(b)
		}
	}
}
