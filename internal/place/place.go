// Package place implements thread and data (virtual-cache) placement on a
// tiled CMP: the paper's optimistic contention-aware VC placement (§IV-D),
// center-of-mass thread placement (§IV-E), greedy closest-first data
// placement and the bounded-spiral trading pass (§IV-F), plus the expensive
// comparators evaluated in §VI-C (exact transportation solve standing in for
// ILP, simulated annealing, and recursive-bisection graph partitioning).
//
// Representation: bank ids are dense (0..Banks()-1), so allocations are kept
// as flat per-bank arrays with a sorted sparse index for iteration
// (BankAlloc). Every order-sensitive floating-point reduction walks banks in
// ascending id order and accessor threads in ascending thread-id order —
// deterministic by construction, with no sorting on any read path. The
// previous map-based representation paid for the same determinism by sorting
// map keys on every reduction.
package place

import (
	"fmt"
	"slices"
	"sort"

	"cdcs/internal/mesh"
)

// Chip is the placement substrate: a mesh of tiles, each with one core and
// one LLC bank of BankLines lines.
type Chip struct {
	Topo      *mesh.Topology
	BankLines float64
	// BankCap optionally overrides per-bank capacity (indexed by bank id);
	// nil means every bank holds BankLines. The hierarchical path uses it to
	// present a cluster-granularity chip whose "banks" are whole clusters of
	// differing size (ragged edge clusters hold fewer tiles).
	BankCap []float64
}

// Banks returns the number of banks (== tiles).
func (c Chip) Banks() int { return c.Topo.Tiles() }

// CapOf returns bank b's capacity in lines.
func (c Chip) CapOf(b mesh.Tile) float64 {
	if c.BankCap != nil {
		return c.BankCap[b]
	}
	return c.BankLines
}

// TotalLines returns chip-wide LLC capacity in lines.
func (c Chip) TotalLines() float64 {
	if c.BankCap != nil {
		s := 0.0
		for _, v := range c.BankCap {
			s += v
		}
		return s
	}
	return float64(c.Banks()) * c.BankLines
}

// Demand describes one VC to the placement algorithms. Accessors are stored
// densely, sorted by thread id at construction, so reductions over them are
// linear walks with no per-call sorting or allocation.
type Demand struct {
	// Size is the VC's capacity allocation in lines (from internal/alloc).
	Size float64
	// Threads lists the accessor thread ids in ascending order.
	Threads []int
	// Rates[i] is Threads[i]'s access rate into this VC (any consistent
	// unit; APKI throughout this repo).
	Rates []float64
}

// NewDemand builds a Demand from an accessor-rate map, sorting the accessor
// ids once up front (the map is not retained).
func NewDemand(size float64, accessors map[int]float64) Demand {
	ths := make([]int, 0, len(accessors))
	for t := range accessors {
		ths = append(ths, t)
	}
	sort.Ints(ths)
	rates := make([]float64, len(ths))
	for i, t := range ths {
		rates[i] = accessors[t]
	}
	return Demand{Size: size, Threads: ths, Rates: rates}
}

// TotalRate sums accessor rates (in thread-id order, for bit-reproducible
// results) without allocating.
func (d Demand) TotalRate() float64 {
	s := 0.0
	for _, r := range d.Rates {
		s += r
	}
	return s
}

// sparseBankThreshold is the bank count above which a BankAlloc stores only
// its touched banks. The dense arrays cost O(banks) per VC regardless of use;
// with one VC per tile that is O(n²) per assignment — ~150 MB at 64×64 and
// 2.4 GB at 128×128 — while a VC's footprint only ever spans a handful of
// banks. The sparse form holds the same values in the same ascending-bank
// iteration order, so every reduction walks the identical sequence and
// results are bit-identical across representations (the map-reference
// oracle in denseref_test pins this through 96×96).
const sparseBankThreshold = 2048

// BankAlloc is one VC's per-bank allocation. At or below
// sparseBankThreshold banks it stores lines indexed directly by bank id plus
// a sorted sparse index of the banks ever written; above the threshold the
// dense arrays are dropped and values live in vals, parallel to the sorted
// index. Iteration over Banks() is a linear walk in ascending bank order in
// both forms.
//
// A touched bank stays in the index even when arithmetic drives its lines
// back to exactly zero, mirroring the key semantics of the map
// representation this replaced (trade passes leave zero-line entries
// behind); reductions are unaffected because zero entries contribute
// exactly 0.0 to every sum.
type BankAlloc struct {
	sparse  bool
	lines   []float64   // dense: lines per bank, indexed by bank id
	touched []bool      // dense: whether the bank is in the sparse index
	banks   []mesh.Tile // touched banks in ascending id order
	vals    []float64   // sparse: vals[i] is banks[i]'s lines
}

// init prepares the alloc for the given bank count, clearing any previous
// contents while reusing capacity, and picks the representation.
func (a *BankAlloc) init(banks int) {
	if !a.sparse {
		for _, b := range a.banks {
			a.lines[b] = 0
			a.touched[b] = false
		}
	}
	a.banks = a.banks[:0]
	a.vals = a.vals[:0]
	if banks > sparseBankThreshold {
		a.sparse = true
		return
	}
	a.sparse = false
	if cap(a.lines) < banks {
		a.lines = make([]float64, banks)
		a.touched = make([]bool, banks)
		return
	}
	a.lines = a.lines[:banks]
	a.touched = a.touched[:banks]
}

// Get returns the lines held in bank b (zero when the bank was never
// written).
func (a *BankAlloc) Get(b mesh.Tile) float64 {
	if !a.sparse {
		return a.lines[b]
	}
	if i, ok := slices.BinarySearch(a.banks, b); ok {
		return a.vals[i]
	}
	return 0
}

// touch inserts b into the sorted sparse index if absent (dense form only).
func (a *BankAlloc) touch(b mesh.Tile) {
	if a.touched[b] {
		return
	}
	a.touched[b] = true
	i, _ := slices.BinarySearch(a.banks, b)
	a.banks = append(a.banks, 0)
	copy(a.banks[i+1:], a.banks[i:])
	a.banks[i] = b
}

// idx returns b's position in the sparse index, inserting a zero entry if
// absent (sparse form only).
func (a *BankAlloc) idx(b mesh.Tile) int {
	i, ok := slices.BinarySearch(a.banks, b)
	if !ok {
		a.banks = append(a.banks, 0)
		copy(a.banks[i+1:], a.banks[i:])
		a.banks[i] = b
		a.vals = append(a.vals, 0)
		copy(a.vals[i+1:], a.vals[i:])
		a.vals[i] = 0
	}
	return i
}

// Add adds delta lines to bank b (negative deltas remove capacity). The bank
// stays in the iteration index even if its lines reach zero.
func (a *BankAlloc) Add(b mesh.Tile, delta float64) {
	if !a.sparse {
		a.touch(b)
		a.lines[b] += delta
		return
	}
	a.vals[a.idx(b)] += delta
}

// Set sets bank b's lines.
func (a *BankAlloc) Set(b mesh.Tile, v float64) {
	if !a.sparse {
		a.touch(b)
		a.lines[b] = v
		return
	}
	a.vals[a.idx(b)] = v
}

// Banks returns the touched banks in ascending id order. The slice is shared
// with the BankAlloc; callers must not modify it.
func (a *BankAlloc) Banks() []mesh.Tile { return a.banks }

// Len returns the number of touched banks.
func (a *BankAlloc) Len() int { return len(a.banks) }

// At returns the i'th touched bank (ascending id order) and its lines:
// the representation-agnostic iteration primitive for reductions.
func (a *BankAlloc) At(i int) (mesh.Tile, float64) {
	b := a.banks[i]
	if a.sparse {
		return b, a.vals[i]
	}
	return b, a.lines[b]
}

// clone returns an independent deep copy.
func (a *BankAlloc) clone() BankAlloc {
	return BankAlloc{
		sparse:  a.sparse,
		lines:   append([]float64(nil), a.lines...),
		touched: append([]bool(nil), a.touched...),
		banks:   append([]mesh.Tile(nil), a.banks...),
		vals:    append([]float64(nil), a.vals...),
	}
}

// Assignment is a data placement: per VC, lines claimed in each bank.
type Assignment []BankAlloc

// NewAssignment allocates an empty assignment for n VCs over the given
// number of banks.
func NewAssignment(n, banks int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i].init(banks)
	}
	return a
}

// Placed returns the total lines VC v has placed (summed in bank order, for
// bit-reproducible results).
func (a Assignment) Placed(v int) float64 {
	al := &a[v]
	s := 0.0
	for i := 0; i < al.Len(); i++ {
		_, l := al.At(i)
		s += l
	}
	return s
}

// BankUsage returns per-bank occupied lines across all VCs.
func (a Assignment) BankUsage(banks int) []float64 {
	return a.BankUsageInto(make([]float64, banks))
}

// BankUsageInto accumulates per-bank occupied lines into use (which must be
// zeroed and sized to the bank count) and returns it.
func (a Assignment) BankUsageInto(use []float64) []float64 {
	for v := range a {
		al := &a[v]
		for i := 0; i < al.Len(); i++ {
			b, l := al.At(i)
			use[b] += l
		}
	}
	return use
}

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for i := range a {
		out[i] = a[i].clone()
	}
	return out
}

// Validate checks capacity feasibility and per-VC size consistency within
// tol lines; it returns the first violation found.
func (a Assignment) Validate(chip Chip, demands []Demand, tol float64) error {
	if len(a) != len(demands) {
		return fmt.Errorf("place: %d assignments for %d demands", len(a), len(demands))
	}
	use := a.BankUsage(chip.Banks())
	for b, u := range use {
		if u > chip.CapOf(mesh.Tile(b))+tol {
			return fmt.Errorf("place: bank %d over capacity: %g > %g", b, u, chip.CapOf(mesh.Tile(b)))
		}
	}
	for v := range a {
		al := &a[v]
		for i := 0; i < al.Len(); i++ {
			b, l := al.At(i)
			if l < -tol {
				return fmt.Errorf("place: VC %d negative allocation %g in bank %d", v, l, b)
			}
			if int(b) < 0 || int(b) >= chip.Banks() {
				return fmt.Errorf("place: VC %d uses invalid bank %d", v, b)
			}
		}
		if placed, want := a.Placed(v), demands[v].Size; placed < want-tol || placed > want+tol {
			return fmt.Errorf("place: VC %d placed %g lines, want %g", v, placed, want)
		}
	}
	return nil
}

// VCDistances returns D(vc, bank): the access-weighted mean distance from
// the VC's accessor threads to each bank (the distance the trade pass and
// Eq. 2 use). VCs with no accessors measure from the chip center.
func VCDistances(chip Chip, demands []Demand, threadCore []mesh.Tile) [][]float64 {
	return VCDistancesIn(NewArena(), chip, demands, threadCore)
}

// VCDistancesIn is VCDistances with scratch from ar; the rows are valid only
// until the arena's next placement call.
func VCDistancesIn(ar *Arena, chip Chip, demands []Demand, threadCore []mesh.Tile) [][]float64 {
	n := chip.Banks()
	flat := grow(&ar.distFlat, len(demands)*n)
	rows := grow(&ar.dist, len(demands))
	centerRow := topoRow(&ar.rowA, chip.Topo, chip.Topo.CenterTile())
	for v := range demands {
		d := &demands[v]
		row := flat[v*n : (v+1)*n : (v+1)*n]
		rows[v] = row
		total := d.TotalRate()
		if total == 0 {
			for b := 0; b < n; b++ {
				row[b] = float64(centerRow[b])
			}
			continue
		}
		// Accumulate per bank in ascending accessor order (t outer keeps the
		// per-slot addition order identical to the per-bank inner loop the
		// map representation used, while letting the distance row hoist out).
		for i, t := range d.Threads {
			rate := d.Rates[i]
			tr := topoRow(&ar.rowB, chip.Topo, threadCore[t])
			for b := 0; b < n; b++ {
				row[b] += rate * float64(tr[b])
			}
		}
		for b := 0; b < n; b++ {
			row[b] /= total
		}
	}
	return rows
}

// topoRow returns a's full distance row: the topology's own precomputed row
// when eager (zero cost), or buf filled in place when lazy (DistanceRow on a
// lazy mesh would allocate a fresh O(n) slice per call).
func topoRow(buf *[]int, topo *mesh.Topology, a mesh.Tile) []int {
	if !topo.Lazy() {
		return topo.DistanceRow(a)
	}
	return topo.FillDistanceRow(a, ensure(buf, topo.Tiles()))
}

// OnChipLatency evaluates Eq. 2 in access·hops: for every thread and bank,
// accesses spread in proportion to the VC's per-bank capacity share times
// the thread-to-bank distance. Scale by hop latency externally.
func OnChipLatency(chip Chip, demands []Demand, assign Assignment, threadCore []mesh.Tile) float64 {
	total := 0.0
	for v := range demands {
		d := &demands[v]
		size := assign.Placed(v)
		if size <= 0 {
			continue
		}
		av := &assign[v]
		if chip.Topo.Lazy() {
			for i := 0; i < av.Len(); i++ {
				b, l := av.At(i)
				frac := l / size
				for j, t := range d.Threads {
					total += d.Rates[j] * frac * float64(chip.Topo.Distance(b, threadCore[t]))
				}
			}
		} else {
			for i := 0; i < av.Len(); i++ {
				b, l := av.At(i)
				frac := l / size
				row := chip.Topo.DistanceRow(b)
				for j, t := range d.Threads {
					total += d.Rates[j] * frac * float64(row[threadCore[t]])
				}
			}
		}
	}
	return total
}

// CenterOfMass returns the fractional-coordinate center of mass of a VC's
// placed capacity (chip center when nothing is placed), accumulating in
// ascending bank order without allocating.
func CenterOfMass(chip Chip, alloc *BankAlloc) (x, y float64) {
	var wx, wy, wsum float64
	for i := 0; i < alloc.Len(); i++ {
		b, w := alloc.At(i)
		tx, ty := chip.Topo.Coords(b)
		wx += w * float64(tx)
		wy += w * float64(ty)
		wsum += w
	}
	if wsum == 0 {
		cx, cy := chip.Topo.Coords(chip.Topo.CenterTile())
		return float64(cx), float64(cy)
	}
	return wx / wsum, wy / wsum
}

// orderBySizeIn returns VC indices sorted by descending demand size with
// deterministic index tie-break, skipping zero-size VCs. The slice is arena
// scratch.
func orderBySizeIn(ar *Arena, demands []Demand) []int {
	idx := grow(&ar.order, len(demands))[:0]
	for i := range demands {
		if demands[i].Size > 0 {
			idx = append(idx, i)
		}
	}
	slices.SortFunc(idx, func(a, b int) int {
		if demands[a].Size != demands[b].Size {
			if demands[a].Size > demands[b].Size {
				return -1
			}
			return 1
		}
		return a - b
	})
	ar.order = idx
	return idx
}
