// Package place implements thread and data (virtual-cache) placement on a
// tiled CMP: the paper's optimistic contention-aware VC placement (§IV-D),
// center-of-mass thread placement (§IV-E), greedy closest-first data
// placement and the bounded-spiral trading pass (§IV-F), plus the expensive
// comparators evaluated in §VI-C (exact transportation solve standing in for
// ILP, simulated annealing, and recursive-bisection graph partitioning).
//
// Representation: bank ids are dense (0..Banks()-1), so allocations are kept
// as flat per-bank arrays with a sorted sparse index for iteration
// (BankAlloc). Every order-sensitive floating-point reduction walks banks in
// ascending id order and accessor threads in ascending thread-id order —
// deterministic by construction, with no sorting on any read path. The
// previous map-based representation paid for the same determinism by sorting
// map keys on every reduction.
package place

import (
	"fmt"
	"slices"
	"sort"

	"cdcs/internal/mesh"
)

// Chip is the placement substrate: a mesh of tiles, each with one core and
// one LLC bank of BankLines lines.
type Chip struct {
	Topo      *mesh.Topology
	BankLines float64
}

// Banks returns the number of banks (== tiles).
func (c Chip) Banks() int { return c.Topo.Tiles() }

// TotalLines returns chip-wide LLC capacity in lines.
func (c Chip) TotalLines() float64 { return float64(c.Banks()) * c.BankLines }

// Demand describes one VC to the placement algorithms. Accessors are stored
// densely, sorted by thread id at construction, so reductions over them are
// linear walks with no per-call sorting or allocation.
type Demand struct {
	// Size is the VC's capacity allocation in lines (from internal/alloc).
	Size float64
	// Threads lists the accessor thread ids in ascending order.
	Threads []int
	// Rates[i] is Threads[i]'s access rate into this VC (any consistent
	// unit; APKI throughout this repo).
	Rates []float64
}

// NewDemand builds a Demand from an accessor-rate map, sorting the accessor
// ids once up front (the map is not retained).
func NewDemand(size float64, accessors map[int]float64) Demand {
	ths := make([]int, 0, len(accessors))
	for t := range accessors {
		ths = append(ths, t)
	}
	sort.Ints(ths)
	rates := make([]float64, len(ths))
	for i, t := range ths {
		rates[i] = accessors[t]
	}
	return Demand{Size: size, Threads: ths, Rates: rates}
}

// TotalRate sums accessor rates (in thread-id order, for bit-reproducible
// results) without allocating.
func (d Demand) TotalRate() float64 {
	s := 0.0
	for _, r := range d.Rates {
		s += r
	}
	return s
}

// BankAlloc is one VC's per-bank allocation: lines indexed directly by bank
// id, plus a sorted sparse index of the banks ever written. Iteration over
// Banks() is a linear walk in ascending bank order.
//
// A touched bank stays in the index even when arithmetic drives its lines
// back to exactly zero, mirroring the key semantics of the map
// representation this replaced (trade passes leave zero-line entries
// behind); reductions are unaffected because zero entries contribute
// exactly 0.0 to every sum.
type BankAlloc struct {
	lines   []float64   // lines per bank, indexed by bank id
	touched []bool      // whether the bank is in the sparse index
	banks   []mesh.Tile // touched banks in ascending id order
}

// init prepares the alloc for the given bank count, clearing any previous
// contents while reusing capacity.
func (a *BankAlloc) init(banks int) {
	for _, b := range a.banks {
		a.lines[b] = 0
		a.touched[b] = false
	}
	a.banks = a.banks[:0]
	if cap(a.lines) < banks {
		a.lines = make([]float64, banks)
		a.touched = make([]bool, banks)
		a.banks = make([]mesh.Tile, 0, 8)
		return
	}
	a.lines = a.lines[:banks]
	a.touched = a.touched[:banks]
}

// Get returns the lines held in bank b (zero when the bank was never
// written).
func (a *BankAlloc) Get(b mesh.Tile) float64 { return a.lines[b] }

// touch inserts b into the sorted sparse index if absent.
func (a *BankAlloc) touch(b mesh.Tile) {
	if a.touched[b] {
		return
	}
	a.touched[b] = true
	i, _ := slices.BinarySearch(a.banks, b)
	a.banks = append(a.banks, 0)
	copy(a.banks[i+1:], a.banks[i:])
	a.banks[i] = b
}

// Add adds delta lines to bank b (negative deltas remove capacity). The bank
// stays in the iteration index even if its lines reach zero.
func (a *BankAlloc) Add(b mesh.Tile, delta float64) {
	a.touch(b)
	a.lines[b] += delta
}

// Set sets bank b's lines.
func (a *BankAlloc) Set(b mesh.Tile, v float64) {
	a.touch(b)
	a.lines[b] = v
}

// Banks returns the touched banks in ascending id order. The slice is shared
// with the BankAlloc; callers must not modify it.
func (a *BankAlloc) Banks() []mesh.Tile { return a.banks }

// Len returns the number of touched banks.
func (a *BankAlloc) Len() int { return len(a.banks) }

// clone returns an independent deep copy.
func (a *BankAlloc) clone() BankAlloc {
	return BankAlloc{
		lines:   append([]float64(nil), a.lines...),
		touched: append([]bool(nil), a.touched...),
		banks:   append([]mesh.Tile(nil), a.banks...),
	}
}

// Assignment is a data placement: per VC, lines claimed in each bank.
type Assignment []BankAlloc

// NewAssignment allocates an empty assignment for n VCs over the given
// number of banks.
func NewAssignment(n, banks int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i].init(banks)
	}
	return a
}

// Placed returns the total lines VC v has placed (summed in bank order, for
// bit-reproducible results).
func (a Assignment) Placed(v int) float64 {
	al := &a[v]
	s := 0.0
	for _, b := range al.banks {
		s += al.lines[b]
	}
	return s
}

// BankUsage returns per-bank occupied lines across all VCs.
func (a Assignment) BankUsage(banks int) []float64 {
	return a.BankUsageInto(make([]float64, banks))
}

// BankUsageInto accumulates per-bank occupied lines into use (which must be
// zeroed and sized to the bank count) and returns it.
func (a Assignment) BankUsageInto(use []float64) []float64 {
	for v := range a {
		al := &a[v]
		for _, b := range al.banks {
			use[b] += al.lines[b]
		}
	}
	return use
}

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for i := range a {
		out[i] = a[i].clone()
	}
	return out
}

// Validate checks capacity feasibility and per-VC size consistency within
// tol lines; it returns the first violation found.
func (a Assignment) Validate(chip Chip, demands []Demand, tol float64) error {
	if len(a) != len(demands) {
		return fmt.Errorf("place: %d assignments for %d demands", len(a), len(demands))
	}
	use := a.BankUsage(chip.Banks())
	for b, u := range use {
		if u > chip.BankLines+tol {
			return fmt.Errorf("place: bank %d over capacity: %g > %g", b, u, chip.BankLines)
		}
	}
	for v := range a {
		al := &a[v]
		for _, b := range al.banks {
			if l := al.lines[b]; l < -tol {
				return fmt.Errorf("place: VC %d negative allocation %g in bank %d", v, l, b)
			}
			if int(b) < 0 || int(b) >= chip.Banks() {
				return fmt.Errorf("place: VC %d uses invalid bank %d", v, b)
			}
		}
		if placed, want := a.Placed(v), demands[v].Size; placed < want-tol || placed > want+tol {
			return fmt.Errorf("place: VC %d placed %g lines, want %g", v, placed, want)
		}
	}
	return nil
}

// VCDistances returns D(vc, bank): the access-weighted mean distance from
// the VC's accessor threads to each bank (the distance the trade pass and
// Eq. 2 use). VCs with no accessors measure from the chip center.
func VCDistances(chip Chip, demands []Demand, threadCore []mesh.Tile) [][]float64 {
	return VCDistancesIn(NewArena(), chip, demands, threadCore)
}

// VCDistancesIn is VCDistances with scratch from ar; the rows are valid only
// until the arena's next placement call.
func VCDistancesIn(ar *Arena, chip Chip, demands []Demand, threadCore []mesh.Tile) [][]float64 {
	n := chip.Banks()
	flat := grow(&ar.distFlat, len(demands)*n)
	rows := grow(&ar.dist, len(demands))
	centerRow := chip.Topo.DistanceRow(chip.Topo.CenterTile())
	for v := range demands {
		d := &demands[v]
		row := flat[v*n : (v+1)*n : (v+1)*n]
		rows[v] = row
		total := d.TotalRate()
		if total == 0 {
			for b := 0; b < n; b++ {
				row[b] = float64(centerRow[b])
			}
			continue
		}
		// Accumulate per bank in ascending accessor order (t outer keeps the
		// per-slot addition order identical to the per-bank inner loop the
		// map representation used, while letting the distance row hoist out).
		for i, t := range d.Threads {
			rate := d.Rates[i]
			tr := chip.Topo.DistanceRow(threadCore[t])
			for b := 0; b < n; b++ {
				row[b] += rate * float64(tr[b])
			}
		}
		for b := 0; b < n; b++ {
			row[b] /= total
		}
	}
	return rows
}

// OnChipLatency evaluates Eq. 2 in access·hops: for every thread and bank,
// accesses spread in proportion to the VC's per-bank capacity share times
// the thread-to-bank distance. Scale by hop latency externally.
func OnChipLatency(chip Chip, demands []Demand, assign Assignment, threadCore []mesh.Tile) float64 {
	total := 0.0
	for v := range demands {
		d := &demands[v]
		size := assign.Placed(v)
		if size <= 0 {
			continue
		}
		av := &assign[v]
		for _, b := range av.banks {
			frac := av.lines[b] / size
			row := chip.Topo.DistanceRow(b)
			for i, t := range d.Threads {
				total += d.Rates[i] * frac * float64(row[threadCore[t]])
			}
		}
	}
	return total
}

// CenterOfMass returns the fractional-coordinate center of mass of a VC's
// placed capacity (chip center when nothing is placed), accumulating in
// ascending bank order without allocating.
func CenterOfMass(chip Chip, alloc *BankAlloc) (x, y float64) {
	var wx, wy, wsum float64
	for _, b := range alloc.banks {
		w := alloc.lines[b]
		tx, ty := chip.Topo.Coords(b)
		wx += w * float64(tx)
		wy += w * float64(ty)
		wsum += w
	}
	if wsum == 0 {
		cx, cy := chip.Topo.Coords(chip.Topo.CenterTile())
		return float64(cx), float64(cy)
	}
	return wx / wsum, wy / wsum
}

// orderBySizeIn returns VC indices sorted by descending demand size with
// deterministic index tie-break, skipping zero-size VCs. The slice is arena
// scratch.
func orderBySizeIn(ar *Arena, demands []Demand) []int {
	idx := grow(&ar.order, len(demands))[:0]
	for i := range demands {
		if demands[i].Size > 0 {
			idx = append(idx, i)
		}
	}
	slices.SortFunc(idx, func(a, b int) int {
		if demands[a].Size != demands[b].Size {
			if demands[a].Size > demands[b].Size {
				return -1
			}
			return 1
		}
		return a - b
	})
	ar.order = idx
	return idx
}
