// Package place implements thread and data (virtual-cache) placement on a
// tiled CMP: the paper's optimistic contention-aware VC placement (§IV-D),
// center-of-mass thread placement (§IV-E), greedy closest-first data
// placement and the bounded-spiral trading pass (§IV-F), plus the expensive
// comparators evaluated in §VI-C (exact transportation solve standing in for
// ILP, simulated annealing, and recursive-bisection graph partitioning).
package place

import (
	"fmt"
	"maps"
	"slices"
	"sort"

	"cdcs/internal/mesh"
)

// sortedBanks returns an allocation map's bank keys in ascending order.
// Placement sums floating-point contributions across banks and threads;
// iterating maps directly would make results depend on Go's randomized map
// order, so every order-sensitive reduction walks keys sorted.
func sortedBanks(m map[mesh.Tile]float64) []mesh.Tile {
	return slices.Sorted(maps.Keys(m))
}

// sortedAccessors returns a demand's accessor thread ids in ascending order.
func sortedAccessors(m map[int]float64) []int {
	return slices.Sorted(maps.Keys(m))
}

// Chip is the placement substrate: a mesh of tiles, each with one core and
// one LLC bank of BankLines lines.
type Chip struct {
	Topo      *mesh.Topology
	BankLines float64
}

// Banks returns the number of banks (== tiles).
func (c Chip) Banks() int { return c.Topo.Tiles() }

// TotalLines returns chip-wide LLC capacity in lines.
func (c Chip) TotalLines() float64 { return float64(c.Banks()) * c.BankLines }

// Demand describes one VC to the placement algorithms.
type Demand struct {
	// Size is the VC's capacity allocation in lines (from internal/alloc).
	Size float64
	// Accessors maps thread index to that thread's access rate into this VC
	// (any consistent unit; APKI throughout this repo).
	Accessors map[int]float64
}

// TotalRate sums accessor rates (in thread-id order, for bit-reproducible
// results).
func (d Demand) TotalRate() float64 {
	s := 0.0
	for _, t := range sortedAccessors(d.Accessors) {
		s += d.Accessors[t]
	}
	return s
}

// Assignment is a data placement: per VC, lines claimed in each bank.
type Assignment []map[mesh.Tile]float64

// NewAssignment allocates an empty assignment for n VCs.
func NewAssignment(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = map[mesh.Tile]float64{}
	}
	return a
}

// Placed returns the total lines VC v has placed (summed in bank order, for
// bit-reproducible results).
func (a Assignment) Placed(v int) float64 {
	s := 0.0
	for _, b := range sortedBanks(a[v]) {
		s += a[v][b]
	}
	return s
}

// BankUsage returns per-bank occupied lines across all VCs.
func (a Assignment) BankUsage(banks int) []float64 {
	use := make([]float64, banks)
	for _, m := range a {
		for b, lines := range m {
			use[b] += lines
		}
	}
	return use
}

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for i, m := range a {
		out[i] = make(map[mesh.Tile]float64, len(m))
		for b, l := range m {
			out[i][b] = l
		}
	}
	return out
}

// Validate checks capacity feasibility and per-VC size consistency within
// tol lines; it returns the first violation found.
func (a Assignment) Validate(chip Chip, demands []Demand, tol float64) error {
	if len(a) != len(demands) {
		return fmt.Errorf("place: %d assignments for %d demands", len(a), len(demands))
	}
	use := a.BankUsage(chip.Banks())
	for b, u := range use {
		if u > chip.BankLines+tol {
			return fmt.Errorf("place: bank %d over capacity: %g > %g", b, u, chip.BankLines)
		}
	}
	for v := range a {
		for b, l := range a[v] {
			if l < -tol {
				return fmt.Errorf("place: VC %d negative allocation %g in bank %d", v, l, b)
			}
			if int(b) < 0 || int(b) >= chip.Banks() {
				return fmt.Errorf("place: VC %d uses invalid bank %d", v, b)
			}
		}
		if placed, want := a.Placed(v), demands[v].Size; placed < want-tol || placed > want+tol {
			return fmt.Errorf("place: VC %d placed %g lines, want %g", v, placed, want)
		}
	}
	return nil
}

// VCDistances returns D(vc, bank): the access-weighted mean distance from
// the VC's accessor threads to each bank (the distance the trade pass and
// Eq. 2 use). VCs with no accessors measure from the chip center.
func VCDistances(chip Chip, demands []Demand, threadCore []mesh.Tile) [][]float64 {
	n := chip.Banks()
	out := make([][]float64, len(demands))
	center := chip.Topo.CenterTile()
	for v, d := range demands {
		row := make([]float64, n)
		total := d.TotalRate()
		accessors := sortedAccessors(d.Accessors)
		for b := 0; b < n; b++ {
			if total == 0 {
				row[b] = float64(chip.Topo.Distance(center, mesh.Tile(b)))
				continue
			}
			sum := 0.0
			for _, t := range accessors {
				sum += d.Accessors[t] * float64(chip.Topo.Distance(threadCore[t], mesh.Tile(b)))
			}
			row[b] = sum / total
		}
		out[v] = row
	}
	return out
}

// OnChipLatency evaluates Eq. 2 in access·hops: for every thread and bank,
// accesses spread in proportion to the VC's per-bank capacity share times
// the thread-to-bank distance. Scale by hop latency externally.
func OnChipLatency(chip Chip, demands []Demand, assign Assignment, threadCore []mesh.Tile) float64 {
	total := 0.0
	for v, d := range demands {
		size := assign.Placed(v)
		if size <= 0 {
			continue
		}
		accessors := sortedAccessors(d.Accessors)
		for _, b := range sortedBanks(assign[v]) {
			frac := assign[v][b] / size
			for _, t := range accessors {
				total += d.Accessors[t] * frac * float64(chip.Topo.Distance(threadCore[t], b))
			}
		}
	}
	return total
}

// CenterOfMass returns the fractional-coordinate center of mass of a VC's
// placed capacity (chip center when nothing is placed).
func CenterOfMass(chip Chip, alloc map[mesh.Tile]float64) (x, y float64) {
	w := make(map[mesh.Tile]float64, len(alloc))
	for b, l := range alloc {
		w[b] = l
	}
	return chip.Topo.CenterOfMass(w)
}

// orderBySize returns VC indices sorted by descending demand size with
// deterministic index tie-break, skipping zero-size VCs.
func orderBySize(demands []Demand) []int {
	idx := make([]int, 0, len(demands))
	for i, d := range demands {
		if d.Size > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if demands[idx[a]].Size != demands[idx[b]].Size {
			return demands[idx[a]].Size > demands[idx[b]].Size
		}
		return idx[a] < idx[b]
	})
	return idx
}
