package place

import (
	"math"
	"math/rand"
	"testing"

	"cdcs/internal/mesh"
)

// chip36 returns a 6x6 chip with 8192-line banks (the §II-B case study CMP).
func chip36() Chip {
	return Chip{Topo: mesh.New(6, 6), BankLines: 8192}
}

// chip64 returns the 8x8 evaluation chip.
func chip64() Chip {
	return Chip{Topo: mesh.New(8, 8), BankLines: 8192}
}

// singleThreadDemands builds n VCs, each with one accessor thread i and the
// given sizes/rates.
func singleThreadDemands(sizes, rates []float64) []Demand {
	out := make([]Demand, len(sizes))
	for i := range sizes {
		out[i] = NewDemand(sizes[i], map[int]float64{i: rates[i]})
	}
	return out
}

// assignmentOf builds an Assignment over the given bank count from per-VC
// bank→lines maps (test convenience mirroring the old map literals).
func assignmentOf(banks int, vcs ...map[mesh.Tile]float64) Assignment {
	a := NewAssignment(len(vcs), banks)
	for v, m := range vcs {
		for b, lines := range m {
			a[v].Set(b, lines)
		}
	}
	return a
}

func TestAssignmentBasics(t *testing.T) {
	a := NewAssignment(2, 8)
	a[0].Add(3, 100)
	a[0].Add(4, 50)
	a[1].Add(3, 25)
	if got := a.Placed(0); got != 150 {
		t.Errorf("Placed(0)=%g", got)
	}
	use := a.BankUsage(8)
	if use[3] != 125 || use[4] != 50 {
		t.Errorf("BankUsage=%v", use)
	}
	c := a.Clone()
	c[0].Set(3, 1)
	if a[0].Get(3) != 100 {
		t.Error("Clone is shallow")
	}
}

func TestBankAllocIndexSorted(t *testing.T) {
	var a BankAlloc
	a.init(16)
	for _, b := range []mesh.Tile{9, 2, 14, 2, 0, 7} {
		a.Add(b, 1)
	}
	want := []mesh.Tile{0, 2, 7, 9, 14}
	got := a.Banks()
	if len(got) != len(want) {
		t.Fatalf("Banks()=%v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Banks()=%v, want %v", got, want)
		}
	}
	if a.Get(2) != 2 {
		t.Errorf("Get(2)=%g, want 2 (two Adds)", a.Get(2))
	}
	// Driving an entry to zero keeps it in the index (map-key semantics).
	a.Add(7, -1)
	if a.Get(7) != 0 || a.Len() != 5 {
		t.Errorf("zeroed entry dropped: Get(7)=%g Len=%d", a.Get(7), a.Len())
	}
}

func TestAssignmentValidate(t *testing.T) {
	chip := chip36()
	d := singleThreadDemands([]float64{100}, []float64{10})
	a := NewAssignment(1, chip.Banks())
	a[0].Set(0, 100)
	if err := a.Validate(chip, d, 1); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	// Over-capacity bank.
	b := NewAssignment(1, chip.Banks())
	b[0].Set(0, chip.BankLines+100)
	db := singleThreadDemands([]float64{chip.BankLines + 100}, []float64{10})
	if err := b.Validate(chip, db, 1); err == nil {
		t.Error("over-capacity assignment accepted")
	}
	// Wrong size.
	cAssign := NewAssignment(1, chip.Banks())
	cAssign[0].Set(0, 50)
	if err := cAssign.Validate(chip, d, 1); err == nil {
		t.Error("short assignment accepted")
	}
}

func TestVCDistances(t *testing.T) {
	chip := chip36()
	d := []Demand{
		NewDemand(100, map[int]float64{0: 10}),
		NewDemand(100, map[int]float64{0: 10, 1: 10}),
		NewDemand(100, map[int]float64{}), // no accessors
	}
	threads := []mesh.Tile{0, 5} // corners of the top row
	dist := VCDistances(chip, d, threads)
	// VC 0: distance from tile 0.
	if dist[0][0] != 0 || dist[0][5] != 5 {
		t.Errorf("VC0 distances wrong: %v, %v", dist[0][0], dist[0][5])
	}
	// VC 1: equal-weight mean of both threads.
	want := (float64(chip.Topo.Distance(0, 2)) + float64(chip.Topo.Distance(5, 2))) / 2
	if !approxEq(dist[1][2], want, 1e-9) {
		t.Errorf("VC1 distance at bank 2 = %g, want %g", dist[1][2], want)
	}
	// VC 2: measured from chip center.
	c := chip.Topo.CenterTile()
	if dist[2][int(c)] != 0 {
		t.Errorf("accessorless VC not centered")
	}
}

func TestOnChipLatencyHandComputed(t *testing.T) {
	chip := chip36()
	// One VC split 75/25 across banks 0 and 5, accessed by thread 0 at tile 0
	// with rate 10: latency = 10×(0.75×0 + 0.25×5) = 12.5 access-hops.
	d := []Demand{NewDemand(100, map[int]float64{0: 10})}
	a := NewAssignment(1, chip.Banks())
	a[0].Set(0, 75)
	a[0].Set(5, 25)
	got := OnChipLatency(chip, d, a, []mesh.Tile{0})
	if !approxEq(got, 12.5, 1e-9) {
		t.Errorf("OnChipLatency=%g, want 12.5", got)
	}
}

func TestOptimisticPlaceSingleVC(t *testing.T) {
	chip := chip36()
	d := singleThreadDemands([]float64{3 * 8192}, []float64{50})
	opt := OptimisticPlace(chip, d)
	// A lone VC should sit at the chip center (least contention, central
	// tie-break) and claim 3 banks compactly.
	if opt.Center[0] != chip.Topo.CenterTile() {
		t.Errorf("center=%d, want chip center %d", opt.Center[0], chip.Topo.CenterTile())
	}
	if got := opt.Claims.Placed(0); !approxEq(got, 3*8192, 1e-6) {
		t.Errorf("claimed %g lines", got)
	}
	for _, b := range opt.Claims[0].Banks() {
		lines := opt.Claims[0].Get(b)
		if lines > chip.BankLines+1e-9 {
			t.Errorf("bank %d claim %g exceeds bank size", b, lines)
		}
		if chip.Topo.Distance(opt.Center[0], b) > 1 {
			t.Errorf("claim in bank %d is %d hops from center", b, chip.Topo.Distance(opt.Center[0], b))
		}
	}
}

func TestOptimisticPlaceSpreadsLargeVCs(t *testing.T) {
	// Six omnet-like 5-bank VCs on a 36-tile chip: centers must not collide
	// — the whole point of contention-aware placement (vs Fig. 1b).
	chip := chip36()
	sizes := make([]float64, 6)
	rates := make([]float64, 6)
	for i := range sizes {
		sizes[i] = 5 * 8192
		rates[i] = 90
	}
	opt := OptimisticPlace(chip, singleThreadDemands(sizes, rates))
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if opt.Center[i] == opt.Center[j] {
				t.Errorf("VCs %d and %d share center %d", i, j, opt.Center[i])
			}
		}
	}
	// Pairwise center distance should be meaningful (spread over the chip).
	minD := 100
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if d := chip.Topo.Distance(opt.Center[i], opt.Center[j]); d < minD {
				minD = d
			}
		}
	}
	if minD < 2 {
		t.Errorf("min center distance %d, want >=2 (contention avoidance)", minD)
	}
}

func TestOptimisticPlaceSmallVCsAfterLarge(t *testing.T) {
	chip := chip36()
	// One big VC and many tiny ones: big goes first (center), tiny ones fill
	// least-contended spots; everything gets placed.
	sizes := []float64{10 * 8192, 100, 100, 100}
	rates := []float64{50, 5, 5, 5}
	opt := OptimisticPlace(chip, singleThreadDemands(sizes, rates))
	for v := range sizes {
		if got := opt.Claims.Placed(v); !approxEq(got, sizes[v], 1e-6) {
			t.Errorf("VC %d claimed %g, want %g", v, got, sizes[v])
		}
	}
}

func TestOptimisticZeroSizeVC(t *testing.T) {
	chip := chip36()
	opt := OptimisticPlace(chip, singleThreadDemands([]float64{0}, []float64{10}))
	if got := opt.Claims.Placed(0); got != 0 {
		t.Errorf("zero-size VC claimed %g", got)
	}
	if opt.Center[0] != chip.Topo.CenterTile() {
		t.Error("zero-size VC center not defaulted")
	}
}

func TestPlaceThreadsNearData(t *testing.T) {
	chip := chip36()
	// Two threads, VC data pinned at opposite corners: each thread lands on
	// its data's corner.
	d := []Demand{
		NewDemand(8192, map[int]float64{0: 50}),
		NewDemand(8192, map[int]float64{1: 50}),
	}
	opt := Optimistic{
		Center: []mesh.Tile{0, 35},
		Claims: assignmentOf(36, map[mesh.Tile]float64{0: 8192}, map[mesh.Tile]float64{35: 8192}),
		CoM:    []Point{{0, 0}, {5, 5}},
	}
	cores := PlaceThreads(chip, d, opt, 2)
	if cores[0] != 0 {
		t.Errorf("thread 0 at %d, want 0", cores[0])
	}
	if cores[1] != 35 {
		t.Errorf("thread 1 at %d, want 35", cores[1])
	}
}

func TestPlaceThreadsDistinctCores(t *testing.T) {
	chip := chip64()
	n := 64
	sizes := make([]float64, n)
	rates := make([]float64, n)
	for i := range sizes {
		sizes[i] = 4096
		rates[i] = 20
	}
	d := singleThreadDemands(sizes, rates)
	opt := OptimisticPlace(chip, d)
	cores := PlaceThreads(chip, d, opt, n)
	seen := map[mesh.Tile]bool{}
	for t2, c := range cores {
		if seen[c] {
			t.Fatalf("core %d assigned twice (thread %d)", c, t2)
		}
		seen[c] = true
	}
}

func TestPlaceThreadsPriorityOrder(t *testing.T) {
	chip := chip36()
	// Both threads want the same spot; the one with higher intensity×capacity
	// gets it.
	d := []Demand{
		NewDemand(4*8192, map[int]float64{0: 90}), // heavy
		NewDemand(1024, map[int]float64{1: 5}),    // light
	}
	com := Point{2, 2}
	opt := Optimistic{
		Center: []mesh.Tile{chip.Topo.TileAt(2, 2), chip.Topo.TileAt(2, 2)},
		Claims: assignmentOf(36,
			map[mesh.Tile]float64{chip.Topo.TileAt(2, 2): 4 * 8192},
			map[mesh.Tile]float64{chip.Topo.TileAt(2, 2): 1024}),
		CoM: []Point{com, com},
	}
	cores := PlaceThreads(chip, d, opt, 2)
	if cores[0] != chip.Topo.TileAt(2, 2) {
		t.Errorf("heavy thread at %d, want the contended tile", cores[0])
	}
	if cores[1] == cores[0] {
		t.Error("threads share a core")
	}
}

func TestClusteredAndRandomThreads(t *testing.T) {
	chip := chip36()
	cl := ClusteredThreads(chip, 4)
	for i, c := range cl {
		if c != mesh.Tile(i) {
			t.Errorf("clustered thread %d at %d", i, c)
		}
	}
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(36)
	r1 := RandomThreads(chip, 10, perm)
	seen := map[mesh.Tile]bool{}
	for _, c := range r1 {
		if seen[c] {
			t.Fatal("random placement reused a core")
		}
		seen[c] = true
	}
}

func TestGreedyRespectsCapacityAndPlacesAll(t *testing.T) {
	chip := chip36()
	rng := rand.New(rand.NewSource(17))
	n := 12
	sizes := make([]float64, n)
	rates := make([]float64, n)
	total := 0.0
	for i := range sizes {
		sizes[i] = float64(rng.Intn(4*8192) + 512)
		rates[i] = rng.Float64()*80 + 5
		total += sizes[i]
	}
	if total > chip.TotalLines() {
		t.Fatal("test demand exceeds chip capacity; adjust generator")
	}
	d := singleThreadDemands(sizes, rates)
	threads := ClusteredThreads(chip, n)
	a := Greedy(chip, d, threads, 512)
	if err := a.Validate(chip, d, 1); err != nil {
		t.Fatalf("greedy assignment invalid: %v", err)
	}
}

func TestGreedyPrefersLocalBank(t *testing.T) {
	chip := chip36()
	// A small VC accessed by a thread at tile 7 should land entirely in
	// bank 7 when the chip is otherwise empty.
	d := []Demand{NewDemand(2048, map[int]float64{0: 50})}
	a := Greedy(chip, d, []mesh.Tile{7}, 512)
	if got := a[0].Get(7); !approxEq(got, 2048, 1e-9) {
		t.Errorf("local bank got %g of 2048 lines in banks %v", got, a[0].Banks())
	}
}

func TestGreedyContentionPushesDataOut(t *testing.T) {
	chip := chip36()
	// Two adjacent threads each demanding 3 banks: their data cannot all be
	// local; total placed must still match and capacity hold.
	d := []Demand{
		NewDemand(3*8192, map[int]float64{0: 90}),
		NewDemand(3*8192, map[int]float64{1: 90}),
	}
	threads := []mesh.Tile{0, 1}
	a := Greedy(chip, d, threads, 512)
	if err := a.Validate(chip, d, 1); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestRefineNeverIncreasesLatency(t *testing.T) {
	chip := chip64()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(16)
		sizes := make([]float64, n)
		rates := make([]float64, n)
		for i := range sizes {
			sizes[i] = float64(rng.Intn(3*8192) + 256)
			rates[i] = rng.Float64()*80 + 5
		}
		d := singleThreadDemands(sizes, rates)
		perm := rng.Perm(64)
		threads := RandomThreads(chip, n, perm)
		a := Greedy(chip, d, threads, 512)
		before := OnChipLatency(chip, d, a, threads)
		trades, delta := Refine(chip, d, a, threads)
		after := OnChipLatency(chip, d, a, threads)
		if after > before+1e-6 {
			t.Fatalf("trial %d: refine increased latency %g -> %g", trial, before, after)
		}
		if !approxEq(after-before, delta, 1e-6*math.Max(1, before)) {
			t.Fatalf("trial %d: reported delta %g, actual %g", trial, delta, after-before)
		}
		if err := a.Validate(chip, d, 1); err != nil {
			t.Fatalf("trial %d: refined assignment invalid: %v", trial, err)
		}
		_ = trades
	}
}

func TestRefineFindsObviousTrade(t *testing.T) {
	chip := chip36()
	// VC 0 (hot) has data far away; VC 1 (cold) sits next to thread 0.
	// Refinement should swap them.
	d := []Demand{
		NewDemand(8192, map[int]float64{0: 100}),
		NewDemand(8192, map[int]float64{1: 1}),
	}
	threads := []mesh.Tile{0, 35}
	a := NewAssignment(2, chip.Banks())
	a[0].Set(35, 8192) // hot VC's data in the far corner
	a[1].Set(0, 8192)  // cold VC's data next to the hot thread
	before := OnChipLatency(chip, d, a, threads)
	trades, _ := Refine(chip, d, a, threads)
	after := OnChipLatency(chip, d, a, threads)
	if trades == 0 {
		t.Fatal("no trades executed")
	}
	if after >= before {
		t.Errorf("latency did not improve: %g -> %g", before, after)
	}
	// Hot VC should now be local.
	if a[0].Get(0) < 8192-1 {
		t.Errorf("hot VC not moved local: banks %v", a[0].Banks())
	}
}

func TestRefineUsesFreeSpace(t *testing.T) {
	chip := chip36()
	// Hot VC far away, near bank empty: move without counterparty.
	d := []Demand{NewDemand(4096, map[int]float64{0: 100})}
	threads := []mesh.Tile{0}
	a := NewAssignment(1, chip.Banks())
	a[0].Set(35, 4096)
	trades, delta := Refine(chip, d, a, threads)
	if trades == 0 || delta >= 0 {
		t.Fatalf("free-space move not taken: trades=%d delta=%g", trades, delta)
	}
	if a[0].Get(0) < 4096-1 {
		t.Errorf("data not moved to local bank: banks %v", a[0].Banks())
	}
}

func TestOptimalTransportBeatsOrMatchesGreedy(t *testing.T) {
	chip := chip64()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		n := 16
		sizes := make([]float64, n)
		rates := make([]float64, n)
		for i := range sizes {
			sizes[i] = float64((rng.Intn(6) + 1)) * 4096
			rates[i] = rng.Float64()*80 + 5
		}
		d := singleThreadDemands(sizes, rates)
		threads := RandomThreads(chip, n, rng.Perm(64))
		greedy := Greedy(chip, d, threads, 512)
		Refine(chip, d, greedy, threads)
		opt := OptimalTransport(chip, d, threads, 512)
		gl := OnChipLatency(chip, d, greedy, threads)
		ol := OnChipLatency(chip, d, opt, threads)
		if ol > gl+1e-6 {
			t.Fatalf("trial %d: optimal %g worse than greedy+refine %g", trial, ol, gl)
		}
		if err := opt.Validate(chip, d, 1); err != nil {
			t.Fatalf("trial %d: optimal assignment invalid: %v", trial, err)
		}
	}
}

func TestOptimalTransportExactOnTinyInstance(t *testing.T) {
	// 2x1 mesh, 2 VCs, hand-checkable: VC0 (hot, at tile 0) must get bank 0.
	chip := Chip{Topo: mesh.New(2, 1), BankLines: 100}
	d := []Demand{
		NewDemand(100, map[int]float64{0: 10}), // thread 0 at tile 0
		NewDemand(100, map[int]float64{1: 1}),  // thread 1 at tile 1... also wants bank 1
	}
	threads := []mesh.Tile{0, 1}
	a := OptimalTransport(chip, d, threads, 50)
	if a[0].Get(0) < 99 {
		t.Errorf("hot VC not fully local: banks %v", a[0].Banks())
	}
	if a[1].Get(1) < 99 {
		t.Errorf("second VC not local: banks %v", a[1].Banks())
	}
}

func TestAnnealThreadsImprovesBadPlacement(t *testing.T) {
	chip := chip36()
	// Data placed at corners, threads placed at the *opposite* corners.
	d := []Demand{
		NewDemand(8192, map[int]float64{0: 100}),
		NewDemand(8192, map[int]float64{1: 100}),
	}
	a := NewAssignment(2, chip.Banks())
	a[0].Set(0, 8192)
	a[1].Set(35, 8192)
	threads := []mesh.Tile{35, 0} // deliberately swapped
	before := OnChipLatency(chip, d, a, threads)
	improved, cost := AnnealThreads(chip, d, a, threads, 3000, rand.New(rand.NewSource(7)))
	after := OnChipLatency(chip, d, a, improved)
	if after >= before {
		t.Errorf("annealing failed to improve: %g -> %g", before, after)
	}
	if !approxEq(cost, after, 1e-6) {
		t.Errorf("reported cost %g != recomputed %g", cost, after)
	}
	// The optimum swaps the threads back onto their data.
	if after > 1e-9 {
		t.Errorf("annealing missed the zero-latency optimum: %g", after)
	}
}

func TestGraphPartitionKeepsSharersTogether(t *testing.T) {
	chip := chip64()
	// Two 8-thread processes, each sharing one VC heavily. Partitioning
	// should keep co-sharers on the same half of the chip.
	d := []Demand{
		NewDemand(8192, map[int]float64{0: 10, 1: 10, 2: 10, 3: 10, 4: 10, 5: 10, 6: 10, 7: 10}),
		NewDemand(8192, map[int]float64{8: 10, 9: 10, 10: 10, 11: 10, 12: 10, 13: 10, 14: 10, 15: 10}),
	}
	cores := GraphPartition(chip, d, 16)
	seen := map[mesh.Tile]bool{}
	for _, c := range cores {
		if seen[c] {
			t.Fatal("graph partition reused a core")
		}
		seen[c] = true
	}
	spread := func(ts []int) int {
		max := 0
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if d := chip.Topo.Distance(cores[ts[i]], cores[ts[j]]); d > max {
					max = d
				}
			}
		}
		return max
	}
	g1 := []int{0, 1, 2, 3, 4, 5, 6, 7}
	g2 := []int{8, 9, 10, 11, 12, 13, 14, 15}
	if s := spread(g1); s > 9 {
		t.Errorf("process 1 spread %d hops, want clustered", s)
	}
	if s := spread(g2); s > 9 {
		t.Errorf("process 2 spread %d hops, want clustered", s)
	}
}

func approxEq(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
