package place

import (
	"math"

	"cdcs/internal/mesh"
)

// OptimalTransport computes the data placement that exactly minimizes Eq. 2
// on-chip latency for fixed thread positions and VC sizes, subject to bank
// capacities. The paper solves this with Gurobi ILP (§VI-C); with fixed
// sizes the problem is a transportation problem, which min-cost max-flow
// solves exactly — so this is a faithful stand-in for the ILP upper bound.
//
// Sizes are quantized to chunk lines (largest-remainder, never exceeding the
// original totals). Typical use: chunk = bankLines/16.
func OptimalTransport(chip Chip, demands []Demand, threadCore []mesh.Tile, chunk float64) Assignment {
	if chunk <= 0 {
		chunk = chip.BankLines / 16
	}
	dist := VCDistances(chip, demands, threadCore)
	nV := len(demands)
	nB := chip.Banks()

	// Quantize demand sizes to chunks.
	supply := make([]int, nV)
	for v, d := range demands {
		supply[v] = int(math.Round(d.Size / chunk))
	}
	bankCap := int(chip.BankLines / chunk)

	// Node ids: 0 = source, 1..nV = VCs, nV+1..nV+nB = banks, nV+nB+1 = sink.
	src := 0
	sink := nV + nB + 1
	g := newFlowGraph(sink + 1)
	for v := 0; v < nV; v++ {
		if supply[v] > 0 {
			g.addEdge(src, 1+v, supply[v], 0)
		}
	}
	const costScale = 1 << 22
	for v := 0; v < nV; v++ {
		if supply[v] == 0 {
			continue
		}
		// accPerLine weighting: the objective is Σ rate×frac×D; with fixed
		// size, minimizing Σ_b lines_b×rate/size×D_b per VC is equivalent to
		// minimizing Σ_b lines_b×(rate/size)×D_b. Scale costs per VC.
		w := demands[v].TotalRate() / demands[v].Size
		for b := 0; b < nB; b++ {
			c := int(math.Round(dist[v][b] * w * costScale))
			g.addEdge(1+v, 1+nV+b, supply[v], c)
		}
	}
	for b := 0; b < nB; b++ {
		g.addEdge(1+nV+b, sink, bankCap, 0)
	}

	g.minCostMaxFlow(src, sink)

	assign := NewAssignment(nV, nB)
	for v := 0; v < nV; v++ {
		for _, eid := range g.adj[1+v] {
			e := &g.edges[eid]
			if e.to >= 1+nV && e.to < 1+nV+nB && e.flow > 0 {
				bank := mesh.Tile(e.to - 1 - nV)
				assign[v].Add(bank, float64(e.flow)*chunk)
			}
		}
	}
	return assign
}

// flowGraph is a standard successive-shortest-paths MCMF with SPFA (costs
// can start at zero; potentials are unnecessary at this scale).
type flowGraph struct {
	edges []flowEdge
	adj   [][]int
}

type flowEdge struct {
	to, cap, flow, cost int
}

func newFlowGraph(n int) *flowGraph {
	return &flowGraph{adj: make([][]int, n)}
}

func (g *flowGraph) addEdge(from, to, cap, cost int) {
	g.adj[from] = append(g.adj[from], len(g.edges))
	g.edges = append(g.edges, flowEdge{to: to, cap: cap, cost: cost})
	g.adj[to] = append(g.adj[to], len(g.edges))
	g.edges = append(g.edges, flowEdge{to: from, cap: 0, cost: -cost})
}

// minCostMaxFlow augments along successive shortest (by cost) paths until no
// augmenting path remains, returning (flow, cost).
func (g *flowGraph) minCostMaxFlow(src, sink int) (int, int) {
	n := len(g.adj)
	totalFlow, totalCost := 0, 0
	for {
		// SPFA shortest path by cost.
		const inf = math.MaxInt / 2
		distN := make([]int, n)
		inQueue := make([]bool, n)
		prevEdge := make([]int, n)
		for i := range distN {
			distN[i] = inf
			prevEdge[i] = -1
		}
		distN[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for _, eid := range g.adj[u] {
				e := &g.edges[eid]
				if e.cap-e.flow <= 0 {
					continue
				}
				if nd := distN[u] + e.cost; nd < distN[e.to] {
					distN[e.to] = nd
					prevEdge[e.to] = eid
					if !inQueue[e.to] {
						inQueue[e.to] = true
						queue = append(queue, e.to)
					}
				}
			}
		}
		if prevEdge[sink] == -1 {
			return totalFlow, totalCost
		}
		// Bottleneck along the path.
		push := math.MaxInt
		for v := sink; v != src; {
			e := &g.edges[prevEdge[v]]
			if r := e.cap - e.flow; r < push {
				push = r
			}
			v = g.edges[prevEdge[v]^1].to
		}
		for v := sink; v != src; {
			eid := prevEdge[v]
			g.edges[eid].flow += push
			g.edges[eid^1].flow -= push
			totalCost += push * g.edges[eid].cost
			v = g.edges[eid^1].to
		}
		totalFlow += push
	}
}
