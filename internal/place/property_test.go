package place

import (
	"math/rand"
	"testing"

	"cdcs/internal/mesh"
)

// randomInstance builds a random feasible placement problem on an 8x8 chip.
func randomInstance(rng *rand.Rand) (Chip, []Demand, []mesh.Tile) {
	chip := Chip{Topo: mesh.New(8, 8), BankLines: 8192}
	n := 4 + rng.Intn(24)
	demands := make([]Demand, n)
	budget := chip.TotalLines() * 0.9
	for i := range demands {
		size := rng.Float64() * budget / float64(n) * 2
		if size > budget {
			size = budget
		}
		budget -= size
		demands[i] = NewDemand(size, map[int]float64{i % 64: 5 + rng.Float64()*90})
	}
	threads := RandomThreads(chip, 64, rng.Perm(64))
	return chip, demands, threads
}

func TestPropertyGreedyFeasibleAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 60; trial++ {
		chip, demands, threads := randomInstance(rng)
		a := Greedy(chip, demands, threads, 512)
		if err := a.Validate(chip, demands, 1); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropertyRefinePreservesFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 60; trial++ {
		chip, demands, threads := randomInstance(rng)
		a := Greedy(chip, demands, threads, 512)
		before := OnChipLatency(chip, demands, a, threads)
		Refine(chip, demands, a, threads)
		if err := a.Validate(chip, demands, 1); err != nil {
			t.Fatalf("trial %d after refine: %v", trial, err)
		}
		after := OnChipLatency(chip, demands, a, threads)
		if after > before+1e-6 {
			t.Fatalf("trial %d: refine regressed %g -> %g", trial, before, after)
		}
	}
}

func TestPropertyRefineRoundsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 20; trial++ {
		chip, demands, threads := randomInstance(rng)
		base := Greedy(chip, demands, threads, 512)
		prev := OnChipLatency(chip, demands, base, threads)
		for _, rounds := range []int{1, 2, 4} {
			a := base.Clone()
			RefineRounds(chip, demands, a, threads, rounds)
			lat := OnChipLatency(chip, demands, a, threads)
			if lat > prev+1e-6 {
				t.Fatalf("trial %d: %d rounds latency %g above previous %g", trial, rounds, lat, prev)
			}
			prev = lat
		}
	}
}

func TestPropertyOptimalIsLowerBound(t *testing.T) {
	// The exact transportation solve lower-bounds greedy, greedy+refine, and
	// random feasible placements.
	rng := rand.New(rand.NewSource(204))
	for trial := 0; trial < 8; trial++ {
		chip := Chip{Topo: mesh.New(8, 8), BankLines: 8192}
		n := 8
		demands := make([]Demand, n)
		for i := range demands {
			demands[i] = NewDemand(float64(1+rng.Intn(4))*4096, map[int]float64{i: 5 + rng.Float64()*90})
		}
		threads := RandomThreads(chip, n, rng.Perm(64))
		opt := OptimalTransport(chip, demands, threads, 512)
		optLat := OnChipLatency(chip, demands, opt, threads)

		greedy := Greedy(chip, demands, threads, 512)
		if optLat > OnChipLatency(chip, demands, greedy, threads)+1e-6 {
			t.Fatalf("trial %d: optimal above greedy", trial)
		}
		Refine(chip, demands, greedy, threads)
		if optLat > OnChipLatency(chip, demands, greedy, threads)+1e-6 {
			t.Fatalf("trial %d: optimal above greedy+refine", trial)
		}
	}
}

func TestPropertyOptimisticClaimsMatchSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	for trial := 0; trial < 60; trial++ {
		chip, demands, _ := randomInstance(rng)
		opt := OptimisticPlace(chip, demands)
		for v := range demands {
			if got := opt.Claims.Placed(v); got < demands[v].Size-1 || got > demands[v].Size+1 {
				t.Fatalf("trial %d: VC %d claimed %g of %g", trial, v, got, demands[v].Size)
			}
			// Per-bank claims never exceed a bank (per-VC).
			for _, b := range opt.Claims[v].Banks() {
				if lines := opt.Claims[v].Get(b); lines > chip.BankLines+1e-9 {
					t.Fatalf("trial %d: VC %d claims %g in bank %d", trial, v, lines, b)
				}
			}
		}
	}
}

func TestPropertyPlaceThreadsBijective(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	for trial := 0; trial < 40; trial++ {
		chip, demands, _ := randomInstance(rng)
		opt := OptimisticPlace(chip, demands)
		nThreads := 1 + rng.Intn(64)
		cores := PlaceThreads(chip, demands, opt, nThreads)
		seen := map[mesh.Tile]bool{}
		for _, c := range cores {
			if seen[c] {
				t.Fatalf("trial %d: core %d reused", trial, c)
			}
			if int(c) < 0 || int(c) >= chip.Banks() {
				t.Fatalf("trial %d: core %d out of range", trial, c)
			}
			seen[c] = true
		}
	}
}

func TestPropertyAnnealNeverWorseThanStart(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	for trial := 0; trial < 10; trial++ {
		chip, demands, threads := randomInstance(rng)
		a := Greedy(chip, demands, threads, 512)
		before := OnChipLatency(chip, demands, a, threads)
		improved, _ := AnnealThreads(chip, demands, a, threads, 2000, rng)
		after := OnChipLatency(chip, demands, a, improved)
		// Annealing keeps the best-so-far implicitly via cooling; allow a
		// tiny tolerance for late accepted uphill moves.
		if after > before*1.05+1e-6 {
			t.Fatalf("trial %d: annealing regressed %g -> %g", trial, before, after)
		}
	}
}
