package place

import (
	"cdcs/internal/mesh"
)

// Optimistic is the result of contention-aware optimistic VC placement: a
// rough picture of where data should live, used to steer thread placement.
// Claims are relaxed — banks may be over-committed — exactly as in §IV-D.
type Optimistic struct {
	// Center[v] is the tile around which VC v was compacted.
	Center []mesh.Tile
	// Claims[v] holds the lines VC v claimed per bank.
	Claims Assignment
	// CoM[v] is the fractional center of mass of VC v's claims.
	CoM []Point
}

// Point is a fractional tile coordinate.
type Point struct{ X, Y float64 }

// OptimisticPlace runs the paper's optimistic contention-aware VC placement
// (§IV-D, Fig. 7): VCs are placed largest-first; for each VC every tile is
// evaluated as a candidate center by summing the capacity already claimed in
// the banks its compact footprint would cover, and the least-contended tile
// wins. Capacity constraints are relaxed (a claim may exceed bank capacity);
// the refined pass later enforces real capacities.
//
// Above PruneThreshold banks the per-VC candidate search switches to the
// pruned two-level scan (see prune.go); at or below it, every tile is
// evaluated exactly as in the paper.
func OptimisticPlace(chip Chip, demands []Demand) Optimistic {
	return OptimisticPlaceIn(NewArena(), chip, demands)
}

// OptimisticPlaceIn is OptimisticPlace with scratch (and the returned
// placement's backing) taken from ar.
func OptimisticPlaceIn(ar *Arena, chip Chip, demands []Demand) Optimistic {
	n := chip.Banks()
	out := Optimistic{
		Center: grow(&ar.centers, len(demands)),
		Claims: arenaAssignment(&ar.claims, len(demands), n),
		CoM:    grow(&ar.com, len(demands)),
	}
	center := chip.Topo.CenterTile()
	cx, cy := chip.Topo.Coords(center)
	for v := range out.Center {
		out.Center[v] = center // zero-size VCs default to the chip center
		out.CoM[v] = Point{float64(cx), float64(cy)}
	}

	claimed := grow(&ar.claimed, n) // relaxed per-bank claim tally, in lines

	for _, v := range orderBySizeIn(ar, demands) {
		size := demands[v].Size
		best := bestCenter(chip, claimed, size)
		out.Center[v] = best
		// Claim compactly around the chosen center (up to a full bank per
		// tile, regardless of other VCs' claims: relaxed constraints). Eager
		// topologies range the precomputed ordering directly — the cursor's
		// per-tile call is measurable on this hot path — and lazy ones walk
		// the ring cursor.
		remaining := size
		if !chip.Topo.Lazy() {
			for _, b := range chip.Topo.ByDistance(best) {
				take := chip.CapOf(b)
				if take > remaining {
					take = remaining
				}
				out.Claims[v].Set(b, take)
				claimed[b] += take
				remaining -= take
				if remaining <= 1e-9 {
					break
				}
			}
		} else {
			cur := chip.Topo.RingFrom(best)
			for {
				b, ok := cur.Next()
				if !ok {
					break
				}
				take := chip.CapOf(b)
				if take > remaining {
					take = remaining
				}
				out.Claims[v].Set(b, take)
				claimed[b] += take
				remaining -= take
				if remaining <= 1e-9 {
					break
				}
			}
		}
		x, y := CenterOfMass(chip, &out.Claims[v])
		out.CoM[v] = Point{x, y}
	}
	return out
}

// footprintContention sums already-claimed capacity over the banks a compact
// placement of size lines around c would cover, weighting the last,
// partially covered bank by the fraction needed (Fig. 7b's hatched area).
func footprintContention(chip Chip, claimed []float64, c mesh.Tile, size float64) float64 {
	if !chip.Topo.Lazy() {
		if chip.BankCap == nil {
			return footprintUniform(chip.BankLines, claimed, chip.Topo.ByDistance(c), size)
		}
		return footprintCapped(chip.BankCap, claimed, chip.Topo.ByDistance(c), size)
	}
	return footprintLazy(chip, claimed, c, size)
}

// footprintUniform is the hot flat-path case — eager topology, uniform bank
// capacity — kept minimal so it inlines into the candidate scans exactly as
// the pre-hierarchy single-loop version did.
func footprintUniform(bankLines float64, claimed []float64, order []mesh.Tile, size float64) float64 {
	cont := 0.0
	remaining := size
	for _, b := range order {
		if remaining <= 1e-9 {
			break
		}
		take := bankLines
		if take > remaining {
			take = remaining
		}
		cont += claimed[b] * (take / bankLines)
		remaining -= take
	}
	return cont
}

// footprintCapped handles eager topologies with per-bank capacities (the
// hierarchical path's coarse cluster chip).
func footprintCapped(bankCap, claimed []float64, order []mesh.Tile, size float64) float64 {
	cont := 0.0
	remaining := size
	for _, b := range order {
		if remaining <= 1e-9 {
			break
		}
		bcap := bankCap[b]
		take := bcap
		if take > remaining {
			take = remaining
		}
		cont += claimed[b] * (take / bcap)
		remaining -= take
	}
	return cont
}

// footprintLazy walks the ring cursor (lazy topologies have no precomputed
// ordering to range over).
func footprintLazy(chip Chip, claimed []float64, c mesh.Tile, size float64) float64 {
	cont := 0.0
	remaining := size
	cur := chip.Topo.RingFrom(c)
	for {
		b, ok := cur.Next()
		if !ok || remaining <= 1e-9 {
			break
		}
		bcap := chip.CapOf(b)
		take := bcap
		if take > remaining {
			take = remaining
		}
		cont += claimed[b] * (take / bcap)
		remaining -= take
	}
	return cont
}
