package place

import (
	"slices"

	"cdcs/internal/mesh"
)

// Greedy is Jigsaw's data placement and CDCS's refined-placement starting
// point (§IV-F): VCs round-robin over chunk-sized claims, each taking
// capacity from the closest bank (by access-weighted distance) that still
// has room. Real capacity constraints are enforced. Returns the assignment;
// all demand is always placed as long as total demand fits on the chip.
func Greedy(chip Chip, demands []Demand, threadCore []mesh.Tile, chunk float64) Assignment {
	return GreedyIn(NewArena(), chip, demands, threadCore, chunk)
}

// GreedyIn is Greedy with scratch (and the returned assignment's backing)
// taken from ar.
func GreedyIn(ar *Arena, chip Chip, demands []Demand, threadCore []mesh.Tile, chunk float64) Assignment {
	if chunk <= 0 {
		chunk = chip.BankLines / 16
	}
	nb := chip.Banks()
	assign := arenaAssignment(&ar.assign, len(demands), nb)
	free := grow(&ar.free, nb)
	for i := range free {
		free[i] = chip.CapOf(mesh.Tile(i))
	}

	// Per-VC bank preference order and a cursor over it. Two kinds of rows:
	//
	//   - A VC whose preference order is distance from a single tile — one
	//     accessor with positive rate (sort key rate·distance orders exactly
	//     like distance), or no access at all (the VCDistances center-tile
	//     convention) — reuses the topology's precomputed ByDistance row.
	//     Both sorts share the ascending-tile-index tie-break, so the row is
	//     the very permutation SortStableFunc would produce: bit-identical
	//     placements, no per-VC O(nb log nb) sort, no distance row at all.
	//     On single-threaded mixes this covers every VC, which is what lets
	//     64×64 sweep cells through the greedy step at full speed.
	//
	//   - Multi-accessor VCs sort a flat arena region by their weighted
	//     distance row, as before.
	orders := grow(&ar.gOrders, len(demands))
	byDistance := func(v int) []mesh.Tile {
		d := &demands[v]
		if len(d.Threads) == 1 && d.Rates[0] > 0 {
			return chip.Topo.ByDistance(threadCore[d.Threads[0]])
		}
		if d.TotalRate() == 0 {
			return chip.Topo.ByDistance(chip.Topo.CenterTile())
		}
		return nil
	}
	nSorted := 0
	for v := range demands {
		if byDistance(v) == nil {
			nSorted++
		}
	}
	var dist [][]float64
	if nSorted > 0 {
		dist = VCDistancesIn(ar, chip, demands, threadCore)
	}
	orderFlat := grow(&ar.gOrder, nSorted*nb)
	cursor := grow(&ar.gCur, len(demands))
	remaining := grow(&ar.gRem, len(demands))
	active := 0
	slot := 0
	for v := range demands {
		remaining[v] = demands[v].Size
		if demands[v].Size > 0 {
			active++
		}
		if row := byDistance(v); row != nil {
			orders[v] = row
			continue
		}
		order := orderFlat[slot*nb : (slot+1)*nb]
		slot++
		for b := range order {
			order[b] = mesh.Tile(b)
		}
		d := dist[v]
		slices.SortStableFunc(order, func(x, y mesh.Tile) int {
			if d[x] != d[y] {
				if d[x] < d[y] {
					return -1
				}
				return 1
			}
			return int(x) - int(y)
		})
		orders[v] = order
	}

	for active > 0 {
		progressed := false
		for v := range demands {
			if remaining[v] <= 1e-9 {
				continue
			}
			order := orders[v]
			// Advance to a bank with free space.
			for cursor[v] < len(order) && free[order[cursor[v]]] <= 1e-9 {
				cursor[v]++
			}
			if cursor[v] >= len(order) {
				// Chip full: drop the rest of this VC's demand (can only
				// happen when total demand exceeds capacity).
				remaining[v] = 0
				active--
				continue
			}
			b := order[cursor[v]]
			take := chunk
			if take > remaining[v] {
				take = remaining[v]
			}
			if take > free[b] {
				take = free[b]
			}
			assign[v].Add(b, take)
			free[b] -= take
			remaining[v] -= take
			progressed = true
			if remaining[v] <= 1e-9 {
				active--
			}
		}
		if !progressed {
			break
		}
	}
	return assign
}
