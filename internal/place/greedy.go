package place

import (
	"sort"

	"cdcs/internal/mesh"
)

// Greedy is Jigsaw's data placement and CDCS's refined-placement starting
// point (§IV-F): VCs round-robin over chunk-sized claims, each taking
// capacity from the closest bank (by access-weighted distance) that still
// has room. Real capacity constraints are enforced. Returns the assignment;
// all demand is always placed as long as total demand fits on the chip.
func Greedy(chip Chip, demands []Demand, threadCore []mesh.Tile, chunk float64) Assignment {
	if chunk <= 0 {
		chunk = chip.BankLines / 16
	}
	dist := VCDistances(chip, demands, threadCore)
	assign := NewAssignment(len(demands))
	free := make([]float64, chip.Banks())
	for i := range free {
		free[i] = chip.BankLines
	}

	// Per-VC bank preference order and a cursor over it.
	type state struct {
		order     []mesh.Tile
		cursor    int
		remaining float64
	}
	states := make([]state, len(demands))
	active := 0
	for v := range demands {
		states[v].remaining = demands[v].Size
		if demands[v].Size > 0 {
			active++
		}
		order := make([]mesh.Tile, chip.Banks())
		for b := range order {
			order[b] = mesh.Tile(b)
		}
		d := dist[v]
		sort.SliceStable(order, func(i, j int) bool {
			if d[order[i]] != d[order[j]] {
				return d[order[i]] < d[order[j]]
			}
			return order[i] < order[j]
		})
		states[v].order = order
	}

	for active > 0 {
		progressed := false
		for v := range demands {
			st := &states[v]
			if st.remaining <= 1e-9 {
				continue
			}
			// Advance to a bank with free space.
			for st.cursor < len(st.order) && free[st.order[st.cursor]] <= 1e-9 {
				st.cursor++
			}
			if st.cursor >= len(st.order) {
				// Chip full: drop the rest of this VC's demand (can only
				// happen when total demand exceeds capacity).
				st.remaining = 0
				active--
				continue
			}
			b := st.order[st.cursor]
			take := chunk
			if take > st.remaining {
				take = st.remaining
			}
			if take > free[b] {
				take = free[b]
			}
			assign[v][b] += take
			free[b] -= take
			st.remaining -= take
			progressed = true
			if st.remaining <= 1e-9 {
				active--
			}
		}
		if !progressed {
			break
		}
	}
	return assign
}
