package place

import (
	"math/rand"
	"testing"

	"cdcs/internal/mesh"
)

// benchInstance builds a 64-VC placement problem (one reconfiguration's
// steps 2-4 at paper scale).
func benchInstance() (Chip, []Demand, []mesh.Tile) {
	chip := Chip{Topo: mesh.New(8, 8), BankLines: 8192}
	rng := rand.New(rand.NewSource(1))
	demands := make([]Demand, 64)
	budget := chip.TotalLines()
	for i := range demands {
		size := rng.Float64() * budget / 48
		demands[i] = Demand{Size: size, Accessors: map[int]float64{i: 5 + rng.Float64()*90}}
	}
	threads := RandomThreads(chip, 64, rng.Perm(64))
	return chip, demands, threads
}

func BenchmarkOptimisticPlace64(b *testing.B) {
	chip, demands, _ := benchInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimisticPlace(chip, demands)
	}
}

func BenchmarkGreedy64(b *testing.B) {
	chip, demands, threads := benchInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(chip, demands, threads, 1024)
	}
}

func BenchmarkRefine64(b *testing.B) {
	chip, demands, threads := benchInstance()
	base := Greedy(chip, demands, threads, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := base.Clone()
		b.StartTimer()
		Refine(chip, demands, a, threads)
	}
}

func BenchmarkPlaceThreads64(b *testing.B) {
	chip, demands, _ := benchInstance()
	opt := OptimisticPlace(chip, demands)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlaceThreads(chip, demands, opt, 64)
	}
}

func BenchmarkOptimalTransport16(b *testing.B) {
	chip := Chip{Topo: mesh.New(8, 8), BankLines: 8192}
	rng := rand.New(rand.NewSource(2))
	demands := make([]Demand, 16)
	for i := range demands {
		demands[i] = Demand{Size: float64(1+rng.Intn(4)) * 8192, Accessors: map[int]float64{i: 50}}
	}
	threads := RandomThreads(chip, 16, rng.Perm(64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimalTransport(chip, demands, threads, 1024)
	}
}
