package place

import (
	"math/rand"
	"testing"

	"cdcs/internal/mesh"
)

// benchInstance builds a 64-VC placement problem (one reconfiguration's
// steps 2-4 at paper scale).
func benchInstance() (Chip, []Demand, []mesh.Tile) {
	chip := Chip{Topo: mesh.New(8, 8), BankLines: 8192}
	rng := rand.New(rand.NewSource(1))
	demands := make([]Demand, 64)
	budget := chip.TotalLines()
	for i := range demands {
		size := rng.Float64() * budget / 48
		demands[i] = Demand{Size: size, Accessors: map[int]float64{i: 5 + rng.Float64()*90}}
	}
	threads := RandomThreads(chip, 64, rng.Perm(64))
	return chip, demands, threads
}

func BenchmarkOptimisticPlace64(b *testing.B) {
	chip, demands, _ := benchInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimisticPlace(chip, demands)
	}
}

// benchInstance1024 builds a kilo-tile placement problem (beyond paper
// scale, where the pruned candidate search is active).
func benchInstance1024() (Chip, []Demand) {
	chip := Chip{Topo: mesh.New(32, 32), BankLines: 8192}
	rng := rand.New(rand.NewSource(1))
	demands := make([]Demand, 1024)
	budget := chip.TotalLines()
	for i := range demands {
		size := rng.Float64() * budget / 768
		demands[i] = Demand{Size: size, Accessors: map[int]float64{i: 5 + rng.Float64()*90}}
	}
	return chip, demands
}

func BenchmarkOptimisticPlace1024(b *testing.B) {
	chip, demands := benchInstance1024()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimisticPlace(chip, demands)
	}
}

// BenchmarkOptimisticPlace1024Exhaustive is the unpruned reference at the
// same scale, so `go test -bench OptimisticPlace1024` shows what the pruned
// candidate search buys.
func BenchmarkOptimisticPlace1024Exhaustive(b *testing.B) {
	chip, demands := benchInstance1024()
	claimed := make([]float64, chip.Banks())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for b := range claimed {
			claimed[b] = 0
		}
		for _, v := range orderBySize(demands) {
			exhaustiveBestCenter(chip, claimed, demands[v].Size)
		}
	}
}

func BenchmarkGreedy64(b *testing.B) {
	chip, demands, threads := benchInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(chip, demands, threads, 1024)
	}
}

func BenchmarkRefine64(b *testing.B) {
	chip, demands, threads := benchInstance()
	base := Greedy(chip, demands, threads, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := base.Clone()
		b.StartTimer()
		Refine(chip, demands, a, threads)
	}
}

func BenchmarkPlaceThreads64(b *testing.B) {
	chip, demands, _ := benchInstance()
	opt := OptimisticPlace(chip, demands)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlaceThreads(chip, demands, opt, 64)
	}
}

func BenchmarkOptimalTransport16(b *testing.B) {
	chip := Chip{Topo: mesh.New(8, 8), BankLines: 8192}
	rng := rand.New(rand.NewSource(2))
	demands := make([]Demand, 16)
	for i := range demands {
		demands[i] = Demand{Size: float64(1+rng.Intn(4)) * 8192, Accessors: map[int]float64{i: 50}}
	}
	threads := RandomThreads(chip, 16, rng.Perm(64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimalTransport(chip, demands, threads, 1024)
	}
}
