package place

import (
	"fmt"
	"math/rand"
	"testing"

	"cdcs/internal/mesh"
)

// benchInstance builds a 64-VC placement problem (one reconfiguration's
// steps 2-4 at paper scale).
func benchInstance() (Chip, []Demand, []mesh.Tile) {
	chip := Chip{Topo: mesh.New(8, 8), BankLines: 8192}
	rng := rand.New(rand.NewSource(1))
	demands := make([]Demand, 64)
	budget := chip.TotalLines()
	for i := range demands {
		size := rng.Float64() * budget / 48
		demands[i] = NewDemand(size, map[int]float64{i: 5 + rng.Float64()*90})
	}
	threads := RandomThreads(chip, 64, rng.Perm(64))
	return chip, demands, threads
}

func BenchmarkOptimisticPlace64(b *testing.B) {
	chip, demands, _ := benchInstance()
	ar := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimisticPlaceIn(ar, chip, demands)
	}
}

// benchInstance1024 builds a kilo-tile placement problem (beyond paper
// scale, where the pruned candidate search is active).
func benchInstance1024() (Chip, []Demand) {
	chip := Chip{Topo: mesh.New(32, 32), BankLines: 8192}
	rng := rand.New(rand.NewSource(1))
	demands := make([]Demand, 1024)
	budget := chip.TotalLines()
	for i := range demands {
		size := rng.Float64() * budget / 768
		demands[i] = NewDemand(size, map[int]float64{i: 5 + rng.Float64()*90})
	}
	return chip, demands
}

func BenchmarkOptimisticPlace1024(b *testing.B) {
	chip, demands := benchInstance1024()
	ar := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimisticPlaceIn(ar, chip, demands)
	}
}

// BenchmarkOptimisticPlace1024Exhaustive is the unpruned reference at the
// same scale, so `go test -bench OptimisticPlace1024` shows what the pruned
// candidate search buys.
func BenchmarkOptimisticPlace1024Exhaustive(b *testing.B) {
	chip, demands := benchInstance1024()
	claimed := make([]float64, chip.Banks())
	ar := NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for b := range claimed {
			claimed[b] = 0
		}
		for _, v := range orderBySizeIn(ar, demands) {
			exhaustiveBestCenter(chip, claimed, demands[v].Size)
		}
	}
}

func BenchmarkGreedy64(b *testing.B) {
	chip, demands, threads := benchInstance()
	ar := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyIn(ar, chip, demands, threads, 1024)
	}
}

func BenchmarkRefine64(b *testing.B) {
	chip, demands, threads := benchInstance()
	base := Greedy(chip, demands, threads, 1024)
	ar := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := base.Clone()
		b.StartTimer()
		RefineIn(ar, chip, demands, a, threads)
	}
}

func BenchmarkPlaceThreads64(b *testing.B) {
	chip, demands, _ := benchInstance()
	opt := OptimisticPlace(chip, demands)
	ar := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlaceThreadsIn(ar, chip, demands, opt, 64)
	}
}

func BenchmarkOptimalTransport16(b *testing.B) {
	chip := Chip{Topo: mesh.New(8, 8), BankLines: 8192}
	rng := rand.New(rand.NewSource(2))
	demands := make([]Demand, 16)
	for i := range demands {
		demands[i] = NewDemand(float64(1+rng.Intn(4))*8192, map[int]float64{i: 50})
	}
	threads := RandomThreads(chip, 16, rng.Perm(64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimalTransport(chip, demands, threads, 1024)
	}
}

// pipelineInstance builds a fully-committed w×h placement problem: one VC
// per tile, sized so total demand fills ~2/3 of the chip.
func pipelineInstance(w, h int) (Chip, []Demand, []mesh.Tile) {
	chip := Chip{Topo: mesh.New(w, h), BankLines: 8192}
	n := chip.Banks()
	rng := rand.New(rand.NewSource(7))
	demands := make([]Demand, n)
	budget := chip.TotalLines()
	for i := range demands {
		size := rng.Float64() * budget / float64(n) * 4 / 3
		demands[i] = NewDemand(size, map[int]float64{i: 5 + rng.Float64()*90})
	}
	threads := RandomThreads(chip, n, rng.Perm(n))
	return chip, demands, threads
}

// pipelineOnce runs steps 2-4 with the same size dispatch internal/core
// uses: flat at or below HierarchyThreshold banks, hierarchical above.
func pipelineOnce(ar *Arena, chip Chip, demands []Demand) {
	if Hierarchical(chip) {
		opt := HierOptimisticPlaceIn(ar, chip, demands)
		threads := HierPlaceThreadsIn(ar, chip, demands, opt, len(demands))
		HierGreedyRefineIn(ar, chip, demands, threads, chip.BankLines/8, true)
		return
	}
	opt := OptimisticPlaceIn(ar, chip, demands)
	threads := PlaceThreadsIn(ar, chip, demands, opt, len(demands))
	assign := GreedyIn(ar, chip, demands, threads, chip.BankLines/8)
	RefineIn(ar, chip, demands, assign, threads)
}

// BenchmarkPlacePipeline runs the full steps-2-4 pipeline (optimistic VC
// placement, thread placement, greedy data placement, one refine pass) on
// one reused arena, at the paper's 8×8 scale, the 24×24 and 32×32 scaling
// points, the 64×64 (stride-4 lattice) kilo-tile ceiling of the flat path,
// and the 96×96/128×128 hierarchical frontier. allocs/op is the headline
// number: after warm-up the flat pipeline must not allocate (the
// hierarchical sizes retain only the bounded goroutine fan-out).
func BenchmarkPlacePipeline(b *testing.B) {
	for _, dims := range [][2]int{{8, 8}, {24, 24}, {32, 32}, {64, 64}, {96, 96}, {128, 128}} {
		b.Run(fmt.Sprintf("%dx%d", dims[0], dims[1]), func(b *testing.B) {
			chip, demands, _ := pipelineInstance(dims[0], dims[1])
			ar := NewArena()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pipelineOnce(ar, chip, demands)
			}
		})
	}
}
