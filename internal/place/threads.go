package place

import (
	"slices"

	"cdcs/internal/mesh"
)

// threadInfo is one thread's placement priority and preferred location.
type threadInfo struct {
	id       int
	priority float64 // Σ_d rate × size
	comX     float64
	comY     float64
}

// comAcc accumulates a thread's access-weighted center of mass.
type comAcc struct {
	wx, wy, w float64
}

// PlaceThreads implements §IV-E: each thread is placed as close as possible
// to the access-weighted center of mass of the VCs it uses (per the
// optimistic placement), in descending intensity×capacity order so the
// threads for which locality matters most — and whose data is hardest to
// move — pick cores first. Returns thread→core, one thread per core.
//
// nThreads may be smaller than the core count (under-committed systems);
// unused cores stay empty.
func PlaceThreads(chip Chip, demands []Demand, opt Optimistic, nThreads int) []mesh.Tile {
	return PlaceThreadsIn(NewArena(), chip, demands, opt, nThreads)
}

// threadInfosIn accumulates per-thread priority and preferred center of mass
// over the accessed VCs and returns the threads sorted by descending priority
// (index tie-break): the shared front half of the flat and hierarchical
// thread placers. The slice is arena scratch.
func threadInfosIn(ar *Arena, chip Chip, demands []Demand, opt Optimistic, nThreads int) []threadInfo {
	infos := grow(&ar.infos, nThreads)
	for t := 0; t < nThreads; t++ {
		infos[t].id = t
	}
	coms := grow(&ar.coms, nThreads)
	for v := range demands {
		d := &demands[v]
		for i, t := range d.Threads {
			if t >= nThreads {
				continue
			}
			rate := d.Rates[i]
			infos[t].priority += rate * d.Size
			// Weight VC centers by the thread's access rate; VCs with zero
			// allocated size still pull mildly so milc-like threads have a
			// defined (if weak) preference.
			w := rate * (d.Size + 1)
			coms[t].wx += w * opt.CoM[v].X
			coms[t].wy += w * opt.CoM[v].Y
			coms[t].w += w
		}
	}
	ccx, ccy := chip.Topo.Coords(chip.Topo.CenterTile())
	for t := range infos {
		if coms[t].w > 0 {
			infos[t].comX = coms[t].wx / coms[t].w
			infos[t].comY = coms[t].wy / coms[t].w
		} else {
			infos[t].comX, infos[t].comY = float64(ccx), float64(ccy)
		}
	}
	slices.SortStableFunc(infos, func(a, b threadInfo) int {
		if a.priority != b.priority {
			if a.priority > b.priority {
				return -1
			}
			return 1
		}
		return a.id - b.id
	})
	return infos
}

// PlaceThreadsIn is PlaceThreads with scratch (and the returned placement's
// backing) taken from ar.
func PlaceThreadsIn(ar *Arena, chip Chip, demands []Demand, opt Optimistic, nThreads int) []mesh.Tile {
	infos := threadInfosIn(ar, chip, demands, opt, nThreads)

	free := grow(&ar.freeCore, chip.Banks())
	for i := range free {
		free[i] = true
	}
	out := grow(&ar.threads, nThreads)
	for i := range infos {
		info := &infos[i]
		best := -1
		bestDist := 0.0
		for c := 0; c < chip.Banks(); c++ {
			if !free[c] {
				continue
			}
			d := chip.Topo.DistanceToPoint(mesh.Tile(c), info.comX, info.comY)
			if best < 0 || d < bestDist-1e-12 {
				best, bestDist = c, d
			}
		}
		if best < 0 {
			// More threads than cores is a configuration error upstream.
			panic("place: more threads than cores")
		}
		free[best] = false
		out[info.id] = mesh.Tile(best)
	}
	return out
}

// ClusteredThreads packs threads onto cores in index order (tile 0, 1, 2…):
// the "clustered" scheduler of §II-B/§VI (Jigsaw+C) that groups instances of
// the same process next to each other.
func ClusteredThreads(chip Chip, nThreads int) []mesh.Tile {
	out := make([]mesh.Tile, nThreads)
	for t := 0; t < nThreads; t++ {
		out[t] = mesh.Tile(t % chip.Banks())
	}
	return out
}

// RandomThreads places threads on distinct random cores (Jigsaw+R): the rng
// must be seeded by the caller for reproducibility.
func RandomThreads(chip Chip, nThreads int, perm []int) []mesh.Tile {
	out := make([]mesh.Tile, nThreads)
	for t := 0; t < nThreads; t++ {
		out[t] = mesh.Tile(perm[t%len(perm)])
	}
	return out
}
