package place

import (
	"sort"

	"cdcs/internal/mesh"
)

// Arena holds reusable scratch buffers for one placement pipeline (one
// reconfiguration of one simulated cell). Threading one arena through
// demand construction, OptimisticPlace, PlaceThreads, Greedy and Refine
// makes the steady-state placement round allocation-free: every buffer is
// grown once and reused on subsequent rounds.
//
// An Arena is not safe for concurrent use. Results produced through an
// arena (assignments, claims, thread placements, distance rows, demands)
// borrow its memory: they stay valid only until the arena's next placement
// call, so callers that retain results across rounds must either copy what
// they need or use the allocating wrappers (which hand each call a private
// arena).
type Arena struct {
	// Demand backing (StartDemands / AppendDemand).
	demands []Demand
	accTh   []int
	accRate []float64

	// VCDistancesIn (rowA/rowB also back other lazy-mesh distance rows via
	// topoRow).
	dist     [][]float64
	distFlat []float64
	rowA     []int
	rowB     []int

	// orderBySizeIn.
	order []int

	// OptimisticPlaceIn.
	claimed []float64
	centers []mesh.Tile
	com     []Point
	claims  Assignment

	// GreedyIn.
	free    []float64
	gOrder  []mesh.Tile
	gOrders [][]mesh.Tile
	gCur    []int
	gRem    []float64
	assign  Assignment

	// RefineIn.
	used       []float64
	accPerLine []float64
	residents  [][]int
	desirables []desirable
	tileW      []float64
	pcTiles    []mesh.Tile

	// PlaceThreadsIn.
	infos    []threadInfo
	coms     []comAcc
	freeCore []bool
	threads  []mesh.Tile

	// Hierarchical placement (hier.go).
	hCaps    []float64
	hSlots   []int
	hCCores  []mesh.Tile
	hPullX   []float64
	hPullY   []float64
	hCVCs    [][]hierVC
	hEntries [][]hierEntry
	hTrades  []int
	hDeltas  []float64
	hWorkers []*hierWorker
	hSubTopo map[[2]int]*mesh.Topology
	hCoarse  *Arena
}

// coarse returns the sub-arena hierarchical placement threads through the
// coarse-mesh calls, so coarse scratch never clobbers the fine results being
// assembled in the parent arena.
func (a *Arena) coarse() *Arena {
	if a.hCoarse == nil {
		a.hCoarse = NewArena()
	}
	return a.hCoarse
}

// growClusterVCs returns n per-cluster VC-slice lists, each truncated to
// empty while keeping its capacity.
func growClusterVCs(buf *[][]hierVC, n int) [][]hierVC {
	s := *buf
	if cap(s) < n {
		ns := make([][]hierVC, n)
		copy(ns, s[:cap(s)])
		s = ns
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	*buf = s
	return s
}

// growClusterEntries returns n per-cluster entry buffers with their
// capacities retained. Entries are truncated by the workers that own them.
func growClusterEntries(buf *[][]hierEntry, n int) [][]hierEntry {
	s := *buf
	if cap(s) < n {
		ns := make([][]hierEntry, n)
		copy(ns, s[:cap(s)])
		s = ns
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}

// NewArena returns an empty arena; buffers grow on first use.
func NewArena() *Arena { return &Arena{} }

// grow returns a zeroed slice of length n, reusing buf's capacity when it
// suffices and recording the result back into *buf.
func grow[T any](buf *[]T, n int) []T {
	s := *buf
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// ensure returns a slice of length n without clearing reused contents (for
// buffers whose users reset exactly the entries they touch).
func ensure[T any](buf *[]T, n int) []T {
	s := *buf
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}

// arenaAssignment returns a reset Assignment of n VCs over the given bank
// count, reusing *buf's per-VC buffers.
func arenaAssignment(buf *Assignment, n, banks int) Assignment {
	a := *buf
	if cap(a) < n {
		na := make(Assignment, n)
		copy(na, a[:cap(a)])
		a = na
	} else {
		a = a[:n]
	}
	for i := range a {
		a[i].init(banks)
	}
	*buf = a
	return a
}

// growResidents returns n per-bank resident lists, each truncated to empty
// while keeping its capacity.
func growResidents(buf *[][]int, n int) [][]int {
	s := *buf
	if cap(s) < n {
		ns := make([][]int, n)
		copy(ns, s[:cap(s)])
		s = ns
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	*buf = s
	return s
}

// StartDemands prepares arena storage for n demands totalling totalAcc
// accessor entries and returns the empty demand slice to AppendDemand into.
func (a *Arena) StartDemands(n, totalAcc int) []Demand {
	grow(&a.demands, n)
	grow(&a.accTh, totalAcc)
	grow(&a.accRate, totalAcc)
	a.demands = a.demands[:0]
	a.accTh = a.accTh[:0]
	a.accRate = a.accRate[:0]
	return a.demands
}

// AppendDemand appends a dense Demand built from an accessor map, reusing
// the backing prepared by StartDemands (accessor ids are sorted here, once,
// exactly as NewDemand does). Earlier demands stay valid even if the backing
// grows: their slices keep aliasing the block they were written to.
func (a *Arena) AppendDemand(ds []Demand, size float64, accessors map[int]float64) []Demand {
	start := len(a.accTh)
	for t := range accessors {
		a.accTh = append(a.accTh, t)
	}
	seg := a.accTh[start:]
	sort.Ints(seg)
	for _, t := range seg {
		a.accRate = append(a.accRate, accessors[t])
	}
	ds = append(ds, Demand{Size: size, Threads: seg, Rates: a.accRate[start:]})
	a.demands = ds
	return ds
}

// AppendDemandSorted appends a Demand that aliases caller-owned accessor
// slices already sorted by ascending thread id — a sealed mix's dense views
// fit directly. Nothing is copied; the caller must keep the slices alive and
// unmutated for the demand's lifetime (placement only reads them).
func (a *Arena) AppendDemandSorted(ds []Demand, size float64, ids []int, rates []float64) []Demand {
	ds = append(ds, Demand{Size: size, Threads: ids, Rates: rates})
	a.demands = ds
	return ds
}
