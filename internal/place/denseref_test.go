package place

// The map-based reference implementation the dense representation replaced,
// retained verbatim (modulo the Demand/Assignment types) as the oracle for
// the bit-identity property: the dense pipeline must produce exactly the
// placements, claims, centers of mass, thread placements, trades and Eq. 2
// hop sums the sorted-map-key implementation produced, at every scale from
// the paper's 8×8 up to the 32×32 pruning regime. Weighted speedups are
// covered end-to-end by TestRunMixArenaBitIdentical in internal/sim and by
// the golden corpus at the repo root.

import (
	"fmt"
	"maps"
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"cdcs/internal/mesh"
)

// refDemand is the map-keyed demand the reference implementation consumes.
type refDemand struct {
	Size      float64
	Accessors map[int]float64
}

// refAssignment is the old representation: per VC, bank→lines.
type refAssignment []map[mesh.Tile]float64

func refNewAssignment(n int) refAssignment {
	a := make(refAssignment, n)
	for i := range a {
		a[i] = map[mesh.Tile]float64{}
	}
	return a
}

func refSortedBanks(m map[mesh.Tile]float64) []mesh.Tile {
	return slices.Sorted(maps.Keys(m))
}

func refSortedAccessors(m map[int]float64) []int {
	return slices.Sorted(maps.Keys(m))
}

func (d refDemand) totalRate() float64 {
	s := 0.0
	for _, t := range refSortedAccessors(d.Accessors) {
		s += d.Accessors[t]
	}
	return s
}

func (a refAssignment) placed(v int) float64 {
	s := 0.0
	for _, b := range refSortedBanks(a[v]) {
		s += a[v][b]
	}
	return s
}

func (a refAssignment) bankUsage(banks int) []float64 {
	use := make([]float64, banks)
	for _, m := range a {
		for b, lines := range m {
			use[b] += lines
		}
	}
	return use
}

func refVCDistances(chip Chip, demands []refDemand, threadCore []mesh.Tile) [][]float64 {
	n := chip.Banks()
	out := make([][]float64, len(demands))
	center := chip.Topo.CenterTile()
	for v, d := range demands {
		row := make([]float64, n)
		total := d.totalRate()
		accessors := refSortedAccessors(d.Accessors)
		for b := 0; b < n; b++ {
			if total == 0 {
				row[b] = float64(chip.Topo.Distance(center, mesh.Tile(b)))
				continue
			}
			sum := 0.0
			for _, t := range accessors {
				sum += d.Accessors[t] * float64(chip.Topo.Distance(threadCore[t], mesh.Tile(b)))
			}
			row[b] = sum / total
		}
		out[v] = row
	}
	return out
}

func refOnChipLatency(chip Chip, demands []refDemand, assign refAssignment, threadCore []mesh.Tile) float64 {
	total := 0.0
	for v, d := range demands {
		size := assign.placed(v)
		if size <= 0 {
			continue
		}
		accessors := refSortedAccessors(d.Accessors)
		for _, b := range refSortedBanks(assign[v]) {
			frac := assign[v][b] / size
			for _, t := range accessors {
				total += d.Accessors[t] * frac * float64(chip.Topo.Distance(threadCore[t], b))
			}
		}
	}
	return total
}

func refCenterOfMass(chip Chip, alloc map[mesh.Tile]float64) (x, y float64) {
	w := make(map[mesh.Tile]float64, len(alloc))
	for b, l := range alloc {
		w[b] = l
	}
	return chip.Topo.CenterOfMass(w)
}

func refOrderBySize(demands []refDemand) []int {
	idx := make([]int, 0, len(demands))
	for i, d := range demands {
		if d.Size > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if demands[idx[a]].Size != demands[idx[b]].Size {
			return demands[idx[a]].Size > demands[idx[b]].Size
		}
		return idx[a] < idx[b]
	})
	return idx
}

// refOptimistic mirrors Optimistic over the map representation.
type refOptimistic struct {
	Center []mesh.Tile
	Claims refAssignment
	CoM    []Point
}

func refOptimisticPlace(chip Chip, demands []refDemand) refOptimistic {
	n := chip.Banks()
	out := refOptimistic{
		Center: make([]mesh.Tile, len(demands)),
		Claims: refNewAssignment(len(demands)),
		CoM:    make([]Point, len(demands)),
	}
	center := chip.Topo.CenterTile()
	for v := range out.Center {
		out.Center[v] = center
		cx, cy := chip.Topo.Coords(center)
		out.CoM[v] = Point{float64(cx), float64(cy)}
	}
	claimed := make([]float64, n)
	for _, v := range refOrderBySize(demands) {
		size := demands[v].Size
		best := bestCenter(chip, claimed, size)
		out.Center[v] = best
		remaining := size
		for _, b := range chip.Topo.ByDistance(best) {
			take := chip.BankLines
			if take > remaining {
				take = remaining
			}
			out.Claims[v][b] = take
			claimed[b] += take
			remaining -= take
			if remaining <= 1e-9 {
				break
			}
		}
		x, y := refCenterOfMass(chip, out.Claims[v])
		out.CoM[v] = Point{x, y}
	}
	return out
}

func refPlaceThreads(chip Chip, demands []refDemand, opt refOptimistic, nThreads int) []mesh.Tile {
	type ti struct {
		id         int
		priority   float64
		comX, comY float64
	}
	infos := make([]ti, nThreads)
	for t := 0; t < nThreads; t++ {
		infos[t].id = t
	}
	type acc struct{ wx, wy, w float64 }
	coms := make([]acc, nThreads)
	for v, d := range demands {
		for t, rate := range d.Accessors {
			if t >= nThreads {
				continue
			}
			infos[t].priority += rate * d.Size
			w := rate * (d.Size + 1)
			coms[t].wx += w * opt.CoM[v].X
			coms[t].wy += w * opt.CoM[v].Y
			coms[t].w += w
		}
	}
	ccx, ccy := chip.Topo.Coords(chip.Topo.CenterTile())
	for t := range infos {
		if coms[t].w > 0 {
			infos[t].comX = coms[t].wx / coms[t].w
			infos[t].comY = coms[t].wy / coms[t].w
		} else {
			infos[t].comX, infos[t].comY = float64(ccx), float64(ccy)
		}
	}
	sort.SliceStable(infos, func(i, j int) bool {
		if infos[i].priority != infos[j].priority {
			return infos[i].priority > infos[j].priority
		}
		return infos[i].id < infos[j].id
	})
	free := make([]bool, chip.Banks())
	for i := range free {
		free[i] = true
	}
	out := make([]mesh.Tile, nThreads)
	for _, info := range infos {
		best := -1
		bestDist := 0.0
		for c := 0; c < chip.Banks(); c++ {
			if !free[c] {
				continue
			}
			d := chip.Topo.DistanceToPoint(mesh.Tile(c), info.comX, info.comY)
			if best < 0 || d < bestDist-1e-12 {
				best, bestDist = c, d
			}
		}
		free[best] = false
		out[info.id] = mesh.Tile(best)
	}
	return out
}

func refGreedy(chip Chip, demands []refDemand, threadCore []mesh.Tile, chunk float64) refAssignment {
	if chunk <= 0 {
		chunk = chip.BankLines / 16
	}
	dist := refVCDistances(chip, demands, threadCore)
	assign := refNewAssignment(len(demands))
	free := make([]float64, chip.Banks())
	for i := range free {
		free[i] = chip.BankLines
	}
	type state struct {
		order     []mesh.Tile
		cursor    int
		remaining float64
	}
	states := make([]state, len(demands))
	active := 0
	for v := range demands {
		states[v].remaining = demands[v].Size
		if demands[v].Size > 0 {
			active++
		}
		order := make([]mesh.Tile, chip.Banks())
		for b := range order {
			order[b] = mesh.Tile(b)
		}
		d := dist[v]
		sort.SliceStable(order, func(i, j int) bool {
			if d[order[i]] != d[order[j]] {
				return d[order[i]] < d[order[j]]
			}
			return order[i] < order[j]
		})
		states[v].order = order
	}
	for active > 0 {
		progressed := false
		for v := range demands {
			st := &states[v]
			if st.remaining <= 1e-9 {
				continue
			}
			for st.cursor < len(st.order) && free[st.order[st.cursor]] <= 1e-9 {
				st.cursor++
			}
			if st.cursor >= len(st.order) {
				st.remaining = 0
				active--
				continue
			}
			b := st.order[st.cursor]
			take := chunk
			if take > st.remaining {
				take = st.remaining
			}
			if take > free[b] {
				take = free[b]
			}
			assign[v][b] += take
			free[b] -= take
			st.remaining -= take
			progressed = true
			if st.remaining <= 1e-9 {
				active--
			}
		}
		if !progressed {
			break
		}
	}
	return assign
}

func refPreferredCenter(chip Chip, d refDemand, alloc map[mesh.Tile]float64, threadCore []mesh.Tile) mesh.Tile {
	if d.totalRate() > 0 {
		w := make(map[mesh.Tile]float64, len(d.Accessors))
		for _, t := range refSortedAccessors(d.Accessors) {
			w[threadCore[t]] += d.Accessors[t]
		}
		x, y := chip.Topo.CenterOfMass(w)
		return chip.Topo.NearestTile(x, y)
	}
	x, y := refCenterOfMass(chip, alloc)
	return chip.Topo.NearestTile(x, y)
}

func refMoveCapacity(assign refAssignment, used []float64, residents [][]int, v int, b, nb mesh.Tile, m float64) {
	assign[v][b] -= m
	assign[v][nb] += m
	used[b] -= m
	used[nb] += m
	refAddResident(residents, nb, v)
}

func refAddResident(residents [][]int, b mesh.Tile, v int) {
	for _, u := range residents[b] {
		if u == v {
			return
		}
	}
	residents[b] = append(residents[b], v)
}

func refRefine(chip Chip, demands []refDemand, assign refAssignment, threadCore []mesh.Tile) (trades int, delta float64) {
	dist := refVCDistances(chip, demands, threadCore)
	used := assign.bankUsage(chip.Banks())
	accPerLine := make([]float64, len(demands))
	for v, d := range demands {
		if size := assign.placed(v); size > 0 {
			accPerLine[v] = d.totalRate() / size
		}
	}
	residents := make([][]int, chip.Banks())
	for v := range assign {
		for b, lines := range assign[v] {
			if lines > 1e-9 {
				residents[b] = append(residents[b], v)
			}
		}
	}
	for v := range demands {
		if demands[v].Size <= 0 || accPerLine[v] == 0 {
			continue
		}
		size := assign.placed(v)
		if size <= 1e-9 {
			continue
		}
		com := refPreferredCenter(chip, demands[v], assign[v], threadCore)
		type desirableRef struct {
			bank mesh.Tile
			d    float64
		}
		var desirables []desirableRef
		seen := 0.0
		for _, b := range chip.Topo.ByDistance(com) {
			have := assign[v][b]
			if have < chip.BankLines-1e-9 {
				desirables = append(desirables, desirableRef{b, dist[v][b]})
			}
			if have <= 1e-9 {
				continue
			}
			seen += have
			sort.SliceStable(desirables, func(i, j int) bool {
				if desirables[i].d != desirables[j].d {
					return desirables[i].d < desirables[j].d
				}
				return desirables[i].bank < desirables[j].bank
			})
			for _, cand := range desirables {
				if assign[v][b] <= 1e-9 {
					break
				}
				if cand.d >= dist[v][b]-1e-12 {
					break
				}
				moveGain := accPerLine[v] * (cand.d - dist[v][b])
				if room := chip.BankLines - used[cand.bank]; room > 1e-9 {
					m := minF(assign[v][b], room)
					refMoveCapacity(assign, used, residents, v, b, cand.bank, m)
					trades++
					delta += moveGain * m
					if assign[v][b] <= 1e-9 {
						continue
					}
				}
				for _, u := range residents[cand.bank] {
					if u == v || assign[u][cand.bank] <= 1e-9 {
						continue
					}
					if assign[v][b] <= 1e-9 {
						break
					}
					gainU := accPerLine[u] * (dist[u][b] - dist[u][cand.bank])
					if moveGain+gainU >= -1e-12 {
						continue
					}
					m := minF(assign[v][b], assign[u][cand.bank])
					assign[v][b] -= m
					assign[v][cand.bank] += m
					assign[u][cand.bank] -= m
					assign[u][b] += m
					refAddResident(residents, cand.bank, v)
					refAddResident(residents, b, u)
					trades++
					delta += (moveGain + gainU) * m
				}
			}
			if seen >= size-1e-9 {
				break
			}
		}
	}
	return trades, delta
}

// randomRefInstance builds parallel reference/dense views of the same random
// placement problem: mostly single-accessor VCs plus some multi-accessor
// (shared) VCs, threads on random distinct cores.
func randomRefInstance(rng *rand.Rand, w, h int) (Chip, []refDemand, []Demand, []mesh.Tile) {
	chip := Chip{Topo: mesh.New(w, h), BankLines: 8192}
	n := chip.Banks()
	nVC := 8 + rng.Intn(n/2)
	budget := chip.TotalLines() * 0.85
	refs := make([]refDemand, nVC)
	dense := make([]Demand, nVC)
	for i := range refs {
		size := rng.Float64() * budget / float64(nVC) * 1.5
		acc := map[int]float64{i % n: 5 + rng.Float64()*90}
		if rng.Intn(4) == 0 { // shared VC: several accessors
			for k := 0; k < 3+rng.Intn(5); k++ {
				acc[rng.Intn(n)] = 5 + rng.Float64()*40
			}
		}
		if rng.Intn(8) == 0 {
			size = 0 // zero-size VCs exercise the degenerate paths
		}
		refs[i] = refDemand{Size: size, Accessors: acc}
		dense[i] = NewDemand(size, acc)
	}
	threads := RandomThreads(chip, n, rng.Perm(n))
	return chip, refs, dense, threads
}

// assignEqual asserts the dense assignment matches the reference bank maps
// bit for bit (same touched-bank sets, same line values).
func assignEqual(t *testing.T, label string, ref refAssignment, got Assignment) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d VCs vs %d", label, len(got), len(ref))
	}
	for v := range ref {
		banks := got[v].Banks()
		if len(banks) != len(ref[v]) {
			t.Fatalf("%s: VC %d has %d banks, reference %d", label, v, len(banks), len(ref[v]))
		}
		for _, b := range banks {
			rl, ok := ref[v][b]
			if !ok {
				t.Fatalf("%s: VC %d bank %d not in reference", label, v, b)
			}
			if got[v].Get(b) != rl {
				t.Fatalf("%s: VC %d bank %d = %v, reference %v", label, v, b, got[v].Get(b), rl)
			}
		}
	}
}

// TestDenseMatchesMapReference is the bit-identity property: across
// randomized demands from the paper's 8×8 up to 96×96 (past PruneThreshold,
// through every lattice-stride regime, past sparseBankThreshold into the
// sparse BankAlloc representation, and past mesh.LazyThreshold onto the
// lazy cursor-driven topology), the dense pipeline — optimistic placement,
// thread placement, greedy, refine — produces exactly the reference's
// placements, and the Eq. 2 hop reductions are bit-equal floats, not
// approximately equal.
func TestDenseMatchesMapReference(t *testing.T) {
	dims := [][2]int{{8, 8}, {16, 16}, {24, 24}, {32, 32}, {48, 48}, {64, 64}, {96, 96}}
	for _, wh := range dims {
		w, h := wh[0], wh[1]
		trials := 6
		if w*h > 256 {
			trials = 2 // the 24×24/32×32 points are slow; two trials suffice
		}
		if w*h > 1024 {
			if testing.Short() {
				continue
			}
			trials = 1 // kilo-tile references are very slow; one trial each
		}
		t.Run(fmt.Sprintf("%dx%d", w, h), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(301 + w)))
			ar := NewArena() // reused across trials: reuse must not leak state
			for trial := 0; trial < trials; trial++ {
				chip, refs, dense, threads := randomRefInstance(rng, w, h)

				// Step 2: optimistic placement.
				refOpt := refOptimisticPlace(chip, refs)
				opt := OptimisticPlaceIn(ar, chip, dense)
				for v := range refs {
					if opt.Center[v] != refOpt.Center[v] {
						t.Fatalf("trial %d: VC %d center %d, reference %d", trial, v, opt.Center[v], refOpt.Center[v])
					}
					if opt.CoM[v] != refOpt.CoM[v] {
						t.Fatalf("trial %d: VC %d CoM %v, reference %v", trial, v, opt.CoM[v], refOpt.CoM[v])
					}
				}
				assignEqual(t, "claims", refOpt.Claims, opt.Claims)

				// Step 3: thread placement.
				nThreads := chip.Banks()
				refThreads := refPlaceThreads(chip, refs, refOpt, nThreads)
				gotThreads := PlaceThreadsIn(ar, chip, dense, opt, nThreads)
				for i := range refThreads {
					if gotThreads[i] != refThreads[i] {
						t.Fatalf("trial %d: thread %d on core %d, reference %d", trial, i, gotThreads[i], refThreads[i])
					}
				}

				// Step 4: greedy + refine, against the fixed random threads
				// (exercises VCDistances with multi-accessor demands too).
				refAssign := refGreedy(chip, refs, threads, chip.BankLines/8)
				gotAssign := GreedyIn(ar, chip, dense, threads, chip.BankLines/8)
				assignEqual(t, "greedy", refAssign, gotAssign)

				refLat := refOnChipLatency(chip, refs, refAssign, threads)
				gotLat := OnChipLatency(chip, dense, gotAssign, threads)
				if refLat != gotLat {
					t.Fatalf("trial %d: greedy hops %v, reference %v (diff %g)", trial, gotLat, refLat, math.Abs(refLat-gotLat))
				}

				refTrades, refDelta := refRefine(chip, refs, refAssign, threads)
				gotTrades, gotDelta := RefineIn(ar, chip, dense, gotAssign, threads)
				if refTrades != gotTrades || refDelta != gotDelta {
					t.Fatalf("trial %d: refine (%d, %v), reference (%d, %v)", trial, gotTrades, gotDelta, refTrades, refDelta)
				}
				assignEqual(t, "refined", refAssign, gotAssign)

				refLat = refOnChipLatency(chip, refs, refAssign, threads)
				gotLat = OnChipLatency(chip, dense, gotAssign, threads)
				if refLat != gotLat {
					t.Fatalf("trial %d: refined hops %v, reference %v", trial, gotLat, refLat)
				}
			}
		})
	}
}

// BenchmarkMapReferencePipeline is the before side of the dense-refactor
// before/after table in EXPERIMENTS.md: the retained map-based pipeline on
// the same instances BenchmarkPlacePipeline runs.
func BenchmarkMapReferencePipeline(b *testing.B) {
	for _, dims := range [][2]int{{8, 8}, {24, 24}, {32, 32}} {
		b.Run(fmt.Sprintf("%dx%d", dims[0], dims[1]), func(b *testing.B) {
			chip, demands, _ := pipelineInstance(dims[0], dims[1])
			refs := make([]refDemand, len(demands))
			for i, d := range demands {
				acc := map[int]float64{}
				for j, t := range d.Threads {
					acc[t] = d.Rates[j]
				}
				refs[i] = refDemand{Size: d.Size, Accessors: acc}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt := refOptimisticPlace(chip, refs)
				threads := refPlaceThreads(chip, refs, opt, len(refs))
				assign := refGreedy(chip, refs, threads, chip.BankLines/8)
				refRefine(chip, refs, assign, threads)
			}
		})
	}
}
