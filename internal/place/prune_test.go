package place

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cdcs/internal/mesh"
)

// exhaustiveBestCenter is the paper's unpruned candidate search, kept as the
// reference the pruned path must degenerate to at paper scale.
func exhaustiveBestCenter(chip Chip, claimed []float64, size float64) mesh.Tile {
	s := newCenterSearch(chip, claimed, size)
	for c := 0; c < chip.Banks(); c++ {
		s.consider(mesh.Tile(c))
	}
	return s.best
}

func TestBestCenterExhaustiveAtOrBelowThreshold(t *testing.T) {
	// Every chip the paper evaluates (up to 16x16 = PruneThreshold banks)
	// must take the exhaustive path bit for bit.
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][2]int{{6, 6}, {8, 8}, {16, 16}} {
		chip := Chip{Topo: mesh.New(dims[0], dims[1]), BankLines: 8192}
		if chip.Banks() > PruneThreshold {
			t.Fatalf("%dx%d unexpectedly above threshold", dims[0], dims[1])
		}
		for trial := 0; trial < 50; trial++ {
			claimed := make([]float64, chip.Banks())
			for b := range claimed {
				claimed[b] = rng.Float64() * 2 * chip.BankLines
			}
			size := rng.Float64() * chip.TotalLines() / 4
			if got, want := bestCenter(chip, claimed, size), exhaustiveBestCenter(chip, claimed, size); got != want {
				t.Fatalf("%dx%d trial %d: bestCenter=%d, exhaustive=%d", dims[0], dims[1], trial, got, want)
			}
		}
	}
}

func TestBestCenterPrunedUncontendedIsChipCenter(t *testing.T) {
	// With no claims, every candidate ties at zero contention and the
	// distance tie-break must resolve to the chip center — on the pruned
	// path too (the lattice always includes the center).
	chip := Chip{Topo: mesh.New(32, 32), BankLines: 8192}
	if chip.Banks() <= PruneThreshold {
		t.Fatal("32x32 should be above threshold")
	}
	claimed := make([]float64, chip.Banks())
	if got := bestCenter(chip, claimed, 3*chip.BankLines); got != chip.Topo.CenterTile() {
		t.Errorf("uncontended pruned center=%d, want chip center %d", got, chip.Topo.CenterTile())
	}
}

func TestBestCenterPrunedNearOptimal(t *testing.T) {
	// The pruned search is a heuristic above threshold, but on smooth
	// contention surfaces it should land within a small factor of the
	// exhaustive optimum's contention — including in the stride-2 (32×32),
	// stride-3 (48×48) and stride-4 (64×64) lattice regimes.
	cases := []struct {
		w, h, trials int
	}{
		{32, 32, 10},
		{48, 48, 3},
		{64, 64, 3},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%dx%d", c.w, c.h), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			chip := Chip{Topo: mesh.New(c.w, c.h), BankLines: 8192}
			for trial := 0; trial < c.trials; trial++ {
				claimed := make([]float64, chip.Banks())
				// A few hot regions of claimed capacity, decaying with distance.
				for hot := 0; hot < 4; hot++ {
					ct := mesh.Tile(rng.Intn(chip.Banks()))
					for _, b := range chip.Topo.ByDistance(ct)[:chip.Topo.WithinCount(ct, 6)] {
						claimed[b] += chip.BankLines / float64(1+chip.Topo.Distance(ct, b))
					}
				}
				size := 5 * chip.BankLines
				pruned := bestCenter(chip, claimed, size)
				exact := exhaustiveBestCenter(chip, claimed, size)
				pc := footprintContention(chip, claimed, pruned, size)
				ec := footprintContention(chip, claimed, exact, size)
				if pc > ec+chip.BankLines {
					t.Errorf("trial %d: pruned contention %.0f far above exhaustive %.0f", trial, pc, ec)
				}
			}
		})
	}
}

func TestLatticeStride(t *testing.T) {
	cases := []struct {
		w, h, want int
	}{
		{8, 8, 1},   // 64 <= 256: no coarsening
		{16, 16, 1}, // exactly the threshold
		{32, 32, 2}, // 1024 -> 16x16 lattice
		{64, 64, 4},
		{100, 1, 1},
	}
	for _, c := range cases {
		if got := latticeStride(c.w, c.h); got != c.want {
			t.Errorf("latticeStride(%d,%d)=%d, want %d", c.w, c.h, got, c.want)
		}
		s := latticeStride(c.w, c.h)
		if pts := ((c.w + s - 1) / s) * ((c.h + s - 1) / s); pts > PruneThreshold {
			t.Errorf("latticeStride(%d,%d)=%d leaves %d lattice points", c.w, c.h, s, pts)
		}
	}
}

func TestOptimisticPlaceAboveThreshold(t *testing.T) {
	// Kilo-tile chips: placement must stay structurally sound (full claims,
	// compact footprints) and bit-deterministic across repeated runs — on
	// the stride-2 32x32 mesh and on a 33x31 mesh whose lattice coarsens to
	// stride 3 (where the re-scan radius must still cover whole cells).
	for _, dims := range [][2]int{{32, 32}, {33, 31}} {
		t.Run(fmt.Sprintf("%dx%d", dims[0], dims[1]), func(t *testing.T) {
			testOptimisticPlaceAboveThreshold(t, dims[0], dims[1])
		})
	}
}

func testOptimisticPlaceAboveThreshold(t *testing.T, w, h int) {
	chip := Chip{Topo: mesh.New(w, h), BankLines: 8192}
	if chip.Banks() <= PruneThreshold {
		t.Fatalf("%dx%d not above threshold", w, h)
	}
	rng := rand.New(rand.NewSource(3))
	demands := make([]Demand, 64)
	for v := range demands {
		demands[v] = NewDemand(float64(1+rng.Intn(6))*chip.BankLines, map[int]float64{v: 10 + rng.Float64()*40})
	}
	opt := OptimisticPlace(chip, demands)
	for v, d := range demands {
		placed := opt.Claims.Placed(v)
		if !approxEq(placed, d.Size, 1e-6) {
			t.Errorf("VC %d claimed %g lines, want %g", v, placed, d.Size)
		}
		// Claims must be compact around the chosen center: within the radius
		// covering the footprint (ties can spill one ring).
		k := int(d.Size/chip.BankLines) + 1
		maxR := chip.Topo.RadiusCovering(opt.Center[v], k) + 1
		for _, b := range opt.Claims[v].Banks() {
			if chip.Topo.Distance(opt.Center[v], b) > maxR {
				t.Errorf("VC %d claim in bank %d, %d hops from center (footprint radius %d)",
					v, b, chip.Topo.Distance(opt.Center[v], b), maxR)
			}
		}
	}
	again := OptimisticPlace(chip, demands)
	if !reflect.DeepEqual(opt, again) {
		t.Error("OptimisticPlace not deterministic above threshold")
	}
}

func TestRefineAboveThreshold(t *testing.T) {
	// Refine on a 1024-tile chip: trades still only ever lower Eq. 2 latency
	// and the assignment stays valid (the spiral is data-bounded, not
	// candidate-pruned — see the comment in Refine).
	chip := Chip{Topo: mesh.New(32, 32), BankLines: 8192}
	rng := rand.New(rand.NewSource(9))
	demands := make([]Demand, 32)
	threadCore := make([]mesh.Tile, 32)
	for v := range demands {
		demands[v] = NewDemand(float64(1+rng.Intn(4))*chip.BankLines, map[int]float64{v: 20})
		threadCore[v] = mesh.Tile(rng.Intn(chip.Banks()))
	}
	assign := Greedy(chip, demands, threadCore, 0)
	if err := assign.Validate(chip, demands, 1e-6); err != nil {
		t.Fatalf("greedy assignment invalid: %v", err)
	}
	before := OnChipLatency(chip, demands, assign, threadCore)
	trades, delta := Refine(chip, demands, assign, threadCore)
	if delta > 1e-9 {
		t.Errorf("refine increased latency: delta=%g over %d trades", delta, trades)
	}
	if err := assign.Validate(chip, demands, 1e-6); err != nil {
		t.Errorf("refined assignment invalid: %v", err)
	}
	after := OnChipLatency(chip, demands, assign, threadCore)
	if after > before+1e-6 {
		t.Errorf("Eq.2 latency rose from %g to %g", before, after)
	}
}
