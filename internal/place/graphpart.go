package place

import (
	"sort"

	"cdcs/internal/mesh"
)

// GraphPartition places threads by recursive bisection with Kernighan-Lin
// style refinement: the METIS-like comparator of §VI-C. Threads form a graph
// whose edge weights are shared-VC affinities; the chip is split recursively
// into halves and the thread set is bipartitioned to minimize cut affinity
// while balancing counts. The paper observes this family splits around the
// chip center first — where CDCS instead likes to cluster one hot app — and
// ends up ~2.5% worse in network latency.
func GraphPartition(chip Chip, demands []Demand, nThreads int) []mesh.Tile {
	// Affinity: threads sharing a VC attract proportionally to their rates.
	aff := make([][]float64, nThreads)
	for i := range aff {
		aff[i] = make([]float64, nThreads)
	}
	for di := range demands {
		d := &demands[di]
		if len(d.Threads) < 2 {
			continue
		}
		total := d.TotalRate()
		if total <= 0 {
			continue
		}
		for i, t1 := range d.Threads {
			r1 := d.Rates[i]
			for j, t2 := range d.Threads {
				if t1 >= nThreads || t2 >= nThreads || t1 >= t2 {
					continue
				}
				w := r1 * d.Rates[j] / total
				aff[t1][t2] += w
				aff[t2][t1] += w
			}
		}
	}

	out := make([]mesh.Tile, nThreads)
	threads := make([]int, nThreads)
	for i := range threads {
		threads[i] = i
	}
	region := rect{0, 0, chip.Topo.Width(), chip.Topo.Height()}
	bisect(chip, aff, threads, region, out)
	return out
}

// rect is a sub-rectangle of the mesh in tile coordinates.
type rect struct{ x, y, w, h int }

func (r rect) tiles() int { return r.w * r.h }

// bisect assigns the thread set to tiles in region, splitting recursively.
func bisect(chip Chip, aff [][]float64, threads []int, region rect, out []mesh.Tile) {
	if len(threads) == 0 {
		return
	}
	if region.tiles() == 1 || len(threads) == 1 {
		// Assign threads round-robin over the region's tiles (at most one
		// each in well-formed calls).
		i := 0
		for ty := region.y; ty < region.y+region.h; ty++ {
			for tx := region.x; tx < region.x+region.w; tx++ {
				if i >= len(threads) {
					return
				}
				out[threads[i]] = chip.Topo.TileAt(tx, ty)
				i++
			}
		}
		return
	}
	// Split along the longer axis.
	var ra, rb rect
	if region.w >= region.h {
		wa := region.w / 2
		ra = rect{region.x, region.y, wa, region.h}
		rb = rect{region.x + wa, region.y, region.w - wa, region.h}
	} else {
		ha := region.h / 2
		ra = rect{region.x, region.y, region.w, ha}
		rb = rect{region.x, region.y + ha, region.w, region.h - ha}
	}
	// Capacity-balanced initial bipartition: pack threads in index order.
	capA := ra.tiles()
	if capA > len(threads) {
		capA = len(threads)
	}
	nA := len(threads) * ra.tiles() / region.tiles()
	if nA > capA {
		nA = capA
	}
	if rem := len(threads) - nA; rem > rb.tiles() {
		nA = len(threads) - rb.tiles()
	}
	side := make(map[int]bool, len(threads)) // true = side A
	ordered := append([]int(nil), threads...)
	sort.Ints(ordered)
	for i, t := range ordered {
		side[t] = i < nA
	}
	klRefine(aff, ordered, side, nA, ra.tiles(), rb.tiles())

	var ta, tb []int
	for _, t := range ordered {
		if side[t] {
			ta = append(ta, t)
		} else {
			tb = append(tb, t)
		}
	}
	bisect(chip, aff, ta, ra, out)
	bisect(chip, aff, tb, rb, out)
}

// klRefine runs single-swap Kernighan-Lin passes: repeatedly swap the pair
// (one from each side) with the best cut-weight gain until no positive gain
// remains (bounded passes for determinism and speed).
func klRefine(aff [][]float64, threads []int, side map[int]bool, nA, capA, capB int) {
	// gain of moving t to the other side: external - internal affinity.
	gain := func(t int) float64 {
		ext, int_ := 0.0, 0.0
		for _, u := range threads {
			if u == t {
				continue
			}
			if side[u] == side[t] {
				int_ += aff[t][u]
			} else {
				ext += aff[t][u]
			}
		}
		return ext - int_
	}
	for pass := 0; pass < 8; pass++ {
		bestGain := 0.0
		bestA, bestB := -1, -1
		for _, a := range threads {
			if !side[a] {
				continue
			}
			for _, b := range threads {
				if side[b] {
					continue
				}
				g := gain(a) + gain(b) - 2*aff[a][b]
				if g > bestGain+1e-12 {
					bestGain, bestA, bestB = g, a, b
				}
			}
		}
		if bestA < 0 {
			return
		}
		side[bestA] = false
		side[bestB] = true
	}
}
