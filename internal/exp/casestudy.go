package exp

import (
	"fmt"
	"maps"
	"math/rand"
	"slices"
	"strings"

	"cdcs/internal/alloc"
	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/workload"
)

func init() {
	register("table1", runTable1)
	register("fig1", runFig1)
	register("fig2", runFig2)
	register("fig5", runFig5)
}

// caseStudySchemes are the §II-B columns of Table 1.
func caseStudySchemes() []policy.Scheme {
	return []policy.Scheme{
		policy.SchemeSNUCA, policy.SchemeRNUCA,
		policy.SchemeJigsawC, policy.SchemeJigsawR, policy.SchemeCDCS,
	}
}

// runTable1 reproduces Table 1: per-app and weighted speedups on the
// §II-B mix (36-tile CMP, omnet×6 + milc×14 + ilbdc×2).
func runTable1(opts Options) (*Report, error) {
	rep := newReport("table1", "Case study: per-app and weighted speedups (36-tile CMP)")
	env := policy.ScaledEnv(6, 6)
	mix := workload.CaseStudy()

	// All five schemes evaluate the same mix independently (scheme i seeded
	// opts.Seed+i, as before): one engine job per scheme, reported in order
	// against scheme 0 (S-NUCA) as baseline.
	schemes := caseStudySchemes()
	results := make([]sim.MixResult, len(schemes))
	if err := opts.engine().ForEach(len(schemes), func(i int) error {
		res, err := sim.RunMix(env, schemes[i], mix, rand.New(rand.NewSource(opts.Seed+int64(i))))
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	base := results[0]
	rep.addf("%-10s %8s %8s %8s %8s", "scheme", "omnet", "ilbdc", "milc", "WS")
	for i := range schemes {
		res := results[i]
		per := map[string][]float64{}
		for p, proc := range mix.Procs {
			per[proc.Bench] = append(per[proc.Bench], res.PerApp[p]/base.PerApp[p])
		}
		ws := sim.WeightedSpeedup(res, base)
		rep.addf("%-10s %8.2f %8.2f %8.2f %8.2f",
			res.Scheme, mean(per["omnet"]), mean(per["ilbdc"]), mean(per["milc"]), ws)
		rep.Series["ws"] = append(rep.Series["ws"], ws)
		rep.Series["omnet:"+res.Scheme] = per["omnet"]
		rep.Scalars["ws:"+res.Scheme] = ws
		rep.Scalars["omnet:"+res.Scheme] = mean(per["omnet"])
		rep.Scalars["ilbdc:"+res.Scheme] = mean(per["ilbdc"])
		rep.Scalars["milc:"+res.Scheme] = mean(per["milc"])
	}
	return rep, nil
}

// runFig1 renders the Fig. 1 chip maps: thread placement and per-bank data
// occupancy for Jigsaw+C, Jigsaw+R and CDCS on the case-study mix.
func runFig1(opts Options) (*Report, error) {
	rep := newReport("fig1", "Case study: thread and data placement maps (Fig. 1)")
	env := policy.ScaledEnv(6, 6)
	mix := workload.CaseStudy()

	schemes := []policy.Scheme{policy.SchemeJigsawC, policy.SchemeJigsawR, policy.SchemeCDCS}
	results := make([]sim.MixResult, len(schemes))
	if err := opts.engine().ForEach(len(schemes), func(i int) error {
		res, err := sim.RunMix(env, schemes[i], mix, rand.New(rand.NewSource(opts.Seed+int64(i))))
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	for _, res := range results {
		rep.addf("%s:", res.Scheme)
		renderChipMap(rep, env, mix, res)
		// Mean distance from omnet threads to their data (the Fig. 1b vs 1c
		// contrast: 3.2 hops clustered vs 1.2 random).
		if res.Sched.Core != nil {
			rep.Scalars["omnetHops:"+res.Scheme] = omnetDataHops(env, mix, res)
			rep.addf("  mean omnet data distance: %.2f hops", rep.Scalars["omnetHops:"+res.Scheme])
		}
		rep.addf("")
	}
	return rep, nil
}

// renderChipMap draws the tile grid with thread labels.
func renderChipMap(rep *Report, env policy.Env, mix *workload.Mix, res sim.MixResult) {
	w, h := env.Chip.Topo.Width(), env.Chip.Topo.Height()
	label := make([]string, w*h)
	for i := range label {
		label[i] = "...."
	}
	for t, core := range res.Sched.ThreadCore {
		proc := mix.Procs[mix.Threads[t].Proc]
		short := strings.ToUpper(proc.Bench[:1])
		label[core] = fmt.Sprintf("%s%-3d", short, mix.Threads[t].Proc)
	}
	for y := 0; y < h; y++ {
		row := make([]string, w)
		for x := 0; x < w; x++ {
			row[x] = label[env.Chip.Topo.TileAt(x, y)]
		}
		rep.addf("  %s", strings.Join(row, " "))
	}
}

// omnetDataHops averages, over omnet threads, the access-weighted distance
// to their VC data under a partitioned schedule.
func omnetDataHops(env policy.Env, mix *workload.Mix, res sim.MixResult) float64 {
	core := res.Sched.Core
	sum, n := 0.0, 0
	for t := range mix.Threads {
		proc := mix.Procs[mix.Threads[t].Proc]
		if proc.Bench != "omnet" {
			continue
		}
		// Sorted iteration keeps the float sums map-order independent.
		for _, v := range slices.Sorted(maps.Keys(mix.Threads[t].Access)) {
			size := core.VCSizes[v]
			if size <= 0 {
				continue
			}
			hops := 0.0
			av := &core.Assignment[v]
			for _, b := range av.Banks() {
				hops += av.Get(b) / size * float64(env.Chip.Topo.Distance(res.Sched.ThreadCore[t], b))
			}
			sum += hops
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// runFig2 prints the calibrated miss curves of omnet, milc and ilbdc
// (the paper's Fig. 2, in MPKI vs MB).
func runFig2(Options) (*Report, error) {
	rep := newReport("fig2", "Application miss curves (Fig. 2)")
	cpu := workload.SPECCPU()
	omp := workload.SPECOMP()
	omnet := workload.ByName(cpu, "omnet")
	milc := workload.ByName(cpu, "milc")
	ilbdc := workload.MTByName(omp, "ilbdc")

	rep.addf("%8s %10s %10s %10s", "MB", "omnet", "milc", "ilbdc(sh)")
	for _, mb := range []float64{0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0} {
		lines := mb * workload.LinesPerMB
		o := omnet.MPKI(lines)
		m := milc.MPKI(lines)
		il := ilbdc.APKI * ilbdc.SharedFrac * 8 * ilbdc.SharedRatio.Eval(lines)
		rep.addf("%8.2f %10.1f %10.1f %10.1f", mb, o, m, il)
		rep.Series["omnet"] = append(rep.Series["omnet"], o)
		rep.Series["milc"] = append(rep.Series["milc"], m)
		rep.Series["ilbdc"] = append(rep.Series["ilbdc"], il)
	}
	rep.Scalars["omnet@1MB"] = omnet.MPKI(1 * workload.LinesPerMB)
	rep.Scalars["omnet@3MB"] = omnet.MPKI(3 * workload.LinesPerMB)
	return rep, nil
}

// runFig5 prints the total-latency decomposition for an omnet-like VC on the
// 64-tile chip: the off-chip/on-chip trade-off and its sweet spot (Fig. 5).
func runFig5(Options) (*Report, error) {
	rep := newReport("fig5", "Access latency vs capacity allocation (Fig. 5)")
	env := policy.DefaultEnv()
	omnet := workload.ByName(workload.SPECCPU(), "omnet")
	dist := alloc.CompactDistance(env.Chip.Topo, env.Chip.BankLines)
	total := env.Chip.TotalLines()

	rep.addf("%8s %12s %12s %12s", "MB", "off-chip", "on-chip", "total (cyc/ki)")
	for _, mb := range []float64{0.5, 1, 1.5, 2, 2.5, 3, 4, 6, 8, 12, 16, 24, 32} {
		lines := mb * workload.LinesPerMB
		if lines > total {
			break
		}
		off := omnet.APKI * omnet.MissRatio.Eval(lines) * env.Model.MemLatency
		on := omnet.APKI * dist.Eval(lines) * env.Model.HopLatency * env.Model.RoundTrip
		rep.addf("%8.1f %12.1f %12.1f %12.1f", mb, off, on, off+on)
		rep.Series["off"] = append(rep.Series["off"], off)
		rep.Series["on"] = append(rep.Series["on"], on)
		rep.Series["total"] = append(rep.Series["total"], off+on)
	}
	lat := alloc.TotalLatencyCurve(omnet.MissRatio, omnet.APKI, dist, env.Model, total)
	x, y := lat.ArgMin()
	rep.Scalars["sweetSpotMB"] = x / workload.LinesPerMB
	rep.Scalars["sweetSpotLatency"] = y
	rep.addf("sweet spot: %.2f MB (%.1f cycles/ki)", x/workload.LinesPerMB, y)
	return rep, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
