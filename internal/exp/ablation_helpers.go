package exp

import (
	"cdcs/internal/alloc"
	"cdcs/internal/curves"
	"cdcs/internal/policy"
)

// Thin aliases keeping ablation.go readable without dotted import chains.

func allocCompactDist(env policy.Env) curves.Curve {
	return alloc.CompactDistance(env.Chip.Topo, env.Chip.BankLines)
}

func allocTotalCurve(env policy.Env, ratio curves.Curve, apki float64, dist curves.Curve) curves.Curve {
	return alloc.TotalLatencyCurve(ratio, apki, dist, env.Model, env.Chip.TotalLines())
}

func allocPeekahead(costs []curves.Curve, total float64) []float64 {
	return alloc.Peekahead(costs, total)
}
