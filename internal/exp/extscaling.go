package exp

import (
	"fmt"
	"math/rand"

	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/workload"
)

func init() {
	register("ext-scaling", runExtScaling)
}

// runExtScaling measures the paper's title claim directly: as the chip
// scales from 16 to 1024 tiles (with mixes filling every core), S-NUCA's
// mean access distance grows with the mesh diameter while CDCS keeps data
// local, so the co-scheduling win should widen with scale. The 24x24 and
// 32x32 points run beyond the paper's largest chip on the pruned placement
// search (internal/place, active above 256 banks).
func runExtScaling(opts Options) (*Report, error) {
	rep := newReport("ext-scaling", "CDCS advantage vs chip size (16-1024 tiles)")
	cpu := workload.SPECCPU()
	sizes := []struct{ w, h int }{{4, 4}, {6, 6}, {8, 8}, {12, 12}, {16, 16}, {24, 24}, {32, 32}}
	if opts.Quick {
		sizes = sizes[:4]
	}
	mixes := opts.Mixes
	if mixes > 10 {
		mixes = 10
	}
	schemes := []policy.Scheme{policy.SchemeSNUCA, policy.SchemeJigsawR, policy.SchemeCDCS}
	rep.addf("%8s %10s %10s %12s", "tiles", "Jigsaw+R", "CDCS", "CDCS on-chip")
	for _, sz := range sizes {
		env := policy.ScaledEnv(sz.w, sz.h)
		n := sz.w * sz.h
		res, err := opts.engine().RunCampaign(env, schemes, mixes, opts.Seed, func(rng *rand.Rand) *workload.Mix {
			return workload.RandomST(rng, cpu, n)
		})
		if err != nil {
			return nil, err
		}
		var jig, cdcs sim.CampaignResult
		for _, r := range res {
			switch r.Scheme {
			case "Jigsaw+R":
				jig = r
			case "CDCS":
				cdcs = r
			}
		}
		rep.addf("%8d %10.3f %10.3f %12.1f", n, jig.Gmean, cdcs.Gmean, cdcs.OnChipPKI)
		rep.Scalars[fmt.Sprintf("cdcs:%d", n)] = cdcs.Gmean
		rep.Scalars[fmt.Sprintf("jigsaw:%d", n)] = jig.Gmean
		rep.Series["cdcs"] = append(rep.Series["cdcs"], cdcs.Gmean)
		rep.Series["jigsaw"] = append(rep.Series["jigsaw"], jig.Gmean)
	}
	rep.addf("CDCS's advantage over S-NUCA grows with the mesh diameter: locality")
	rep.addf("matters more the bigger the chip, which is the paper's scaling thesis.")
	return rep, nil
}
