package exp

import (
	"fmt"
	"math/rand"

	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/workload"
)

func init() {
	register("ext-scaling", runExtScaling)
	register("ext-scaling-mt", runExtScalingMT)
}

// runExtScaling measures the paper's title claim directly: as the chip
// scales from 16 to 16,384 tiles (with mixes filling every core), S-NUCA's
// mean access distance grows with the mesh diameter while CDCS keeps data
// local, so the co-scheduling win should widen with scale. Everything past
// 16x16 runs beyond the paper's largest chip on the pruned placement search
// (internal/place, active above 256 banks); the 48x48 and 64x64 points
// exercise the stride-3 and stride-4 candidate lattices and the arena-backed
// kilo-tile reconfiguration hot path, and the 96x96 and 128x128 points run
// the lazy-topology hierarchical two-level placement path (active above
// 4096 banks).
func runExtScaling(opts Options) (*Report, error) {
	rep := newReport("ext-scaling", "CDCS advantage vs chip size (16-16384 tiles)")
	cpu := workload.SPECCPU()
	sizes := []struct{ w, h int }{{4, 4}, {6, 6}, {8, 8}, {12, 12}, {16, 16}, {24, 24}, {32, 32}, {48, 48}, {64, 64}, {96, 96}, {128, 128}}
	if opts.Quick {
		sizes = sizes[:4]
	}
	schemes := []policy.Scheme{policy.SchemeSNUCA, policy.SchemeJigsawR, policy.SchemeCDCS}
	rep.addf("%8s %10s %10s %12s", "tiles", "Jigsaw+R", "CDCS", "CDCS on-chip")
	for _, sz := range sizes {
		env := policy.ScaledEnv(sz.w, sz.h)
		n := sz.w * sz.h
		mixes := scaleMixes(opts.Mixes, n)
		res, err := opts.engine().RunCampaign(env, schemes, mixes, opts.Seed, func(rng *rand.Rand) *workload.Mix {
			return workload.RandomST(rng, cpu, n)
		})
		if err != nil {
			return nil, err
		}
		jig, cdcs := pickSchemes(res)
		rep.addf("%8d %10.3f %10.3f %12.1f", n, jig.Gmean, cdcs.Gmean, cdcs.OnChipPKI)
		rep.Scalars[fmt.Sprintf("cdcs:%d", n)] = cdcs.Gmean
		rep.Scalars[fmt.Sprintf("jigsaw:%d", n)] = jig.Gmean
		rep.Series["cdcs"] = append(rep.Series["cdcs"], cdcs.Gmean)
		rep.Series["jigsaw"] = append(rep.Series["jigsaw"], jig.Gmean)
	}
	rep.addf("CDCS's advantage over S-NUCA grows with the mesh diameter: locality")
	rep.addf("matters more the bigger the chip, which is the paper's scaling thesis.")
	return rep, nil
}

// runExtScalingMT is ext-scaling with 8-thread SPEC OMP apps filling the
// chip (128-4096 cores), where thread clustering actually bites: every app
// has a shared VC pulled between eight cores, so CDCS's joint thread+data
// placement must keep each app's threads compact while private VCs compete
// for nearby banks.
func runExtScalingMT(opts Options) (*Report, error) {
	rep := newReport("ext-scaling-mt", "CDCS advantage vs chip size, 8-thread apps (128-16384 cores)")
	omp := workload.SPECOMP()
	sizes := []struct{ w, h int }{{16, 8}, {16, 16}, {24, 24}, {32, 32}, {48, 48}, {64, 64}, {96, 96}, {128, 128}}
	if opts.Quick {
		sizes = sizes[:2]
	}
	schemes := []policy.Scheme{policy.SchemeSNUCA, policy.SchemeJigsawR, policy.SchemeCDCS}
	rep.addf("%8s %6s %10s %10s %12s", "cores", "apps", "Jigsaw+R", "CDCS", "CDCS on-chip")
	for _, sz := range sizes {
		env := policy.ScaledEnv(sz.w, sz.h)
		n := sz.w * sz.h
		apps := n / 8 // every SPEC OMP profile runs 8 threads
		mixes := scaleMixes(opts.Mixes, n)
		res, err := opts.engine().RunCampaign(env, schemes, mixes, opts.Seed, func(rng *rand.Rand) *workload.Mix {
			return workload.RandomMT(rng, omp, apps)
		})
		if err != nil {
			return nil, err
		}
		jig, cdcs := pickSchemes(res)
		rep.addf("%8d %6d %10.3f %10.3f %12.1f", n, apps, jig.Gmean, cdcs.Gmean, cdcs.OnChipPKI)
		rep.Scalars[fmt.Sprintf("cdcs:%d", n)] = cdcs.Gmean
		rep.Scalars[fmt.Sprintf("jigsaw:%d", n)] = jig.Gmean
		rep.Series["cdcs"] = append(rep.Series["cdcs"], cdcs.Gmean)
		rep.Series["jigsaw"] = append(rep.Series["jigsaw"], jig.Gmean)
	}
	rep.addf("Shared VCs couple eight threads each, so clustering pressure grows")
	rep.addf("with scale; CDCS holds its lead where fixed placements spread apps.")
	return rep, nil
}

// scaleMixes bounds the per-point mix count: 10 as before up to 1024 tiles,
// then fewer — kilo-tile cells cost ~1s each and 16K-tile cells several
// seconds, and the scaling trend is stable across mixes at those sizes.
func scaleMixes(mixes, tiles int) int {
	limit := 10
	if tiles > 1024 {
		limit = 3
	}
	if tiles > 4096 {
		limit = 2
	}
	if mixes > limit {
		return limit
	}
	return mixes
}

// pickSchemes extracts the Jigsaw+R and CDCS rows from campaign results.
func pickSchemes(res []sim.CampaignResult) (jig, cdcs sim.CampaignResult) {
	for _, r := range res {
		switch r.Scheme {
		case "Jigsaw+R":
			jig = r
		case "CDCS":
			cdcs = r
		}
	}
	return jig, cdcs
}
