package exp

import (
	"fmt"
	"math"
	"math/rand"

	"cdcs/internal/curves"
	"cdcs/internal/monitor"
	"cdcs/internal/place"
	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/stats"
	"cdcs/internal/trace"
	"cdcs/internal/workload"
)

func init() {
	register("ablation-trades", runAblationTrades)
	register("ablation-gmon-ways", runAblationGMONWays)
	register("ablation-chunk", runAblationChunk)
	register("ext-numa", runExtNUMA)
	register("ext-monitor", runExtMonitor)
}

// runAblationTrades checks the paper's design choice that each VC trades
// only once per reconfiguration (§IV-F: "we have empirically found this
// discovers most trades"): it measures how much of the achievable trade gain
// additional rounds recover.
func runAblationTrades(opts Options) (*Report, error) {
	rep := newReport("ablation-trades", "Refined-placement trade rounds (§IV-F design choice)")
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	n := opts.Mixes
	if n > 10 {
		n = 10
	}
	rounds := []int{1, 2, 4, 8}
	// gains[k][m] is mix m's recovered latency under rounds[k]; each mix is
	// an independent engine job writing only its own column.
	gains := make([][]float64, len(rounds))
	for k := range gains {
		gains[k] = make([]float64, n)
	}
	if err := opts.engine().ForEach(n, func(m int) error {
		mix := workload.RandomST(rand.New(rand.NewSource(opts.Seed+int64(m))), cpu, 64)
		s, err := policy.Build(env, policy.SchemeCDCS, mix, nil)
		if err != nil {
			return err
		}
		demands := cdcsDemands(mix, s)
		perm := rand.New(rand.NewSource(opts.Seed + 50 + int64(m))).Perm(env.Chip.Banks())
		threads := place.RandomThreads(env.Chip, len(mix.Threads), perm)
		base := place.Greedy(env.Chip, demands, threads, env.Chip.BankLines/8)
		baseLat := place.OnChipLatency(env.Chip, demands, base, threads)
		for k, r := range rounds {
			a := base.Clone()
			place.RefineRounds(env.Chip, demands, a, threads, r)
			lat := place.OnChipLatency(env.Chip, demands, a, threads)
			gains[k][m] = baseLat - lat
		}
		return nil
	}); err != nil {
		return nil, err
	}
	full := stats.Mean(gains[len(rounds)-1])
	rep.addf("%8s %14s %12s", "rounds", "gain (acc-hop)", "of max gain")
	for k, r := range rounds {
		g := stats.Mean(gains[k])
		frac := 1.0
		if full > 0 {
			frac = g / full
		}
		rep.addf("%8d %14.0f %11.1f%%", r, g, frac*100)
		rep.Scalars[fmt.Sprintf("gainFrac:%d", r)] = frac
	}
	return rep, nil
}

// runAblationGMONWays sweeps GMON way counts: fidelity vs hardware cost
// around the paper's 64-way design point.
func runAblationGMONWays(opts Options) (*Report, error) {
	rep := newReport("ablation-gmon-ways", "GMON way-count sweep (§IV-G design choice)")
	omnet := workload.ByName(workload.SPECCPU(), "omnet")
	xs := omnet.MissRatio.Xs()
	ys := omnet.MissRatio.Ys()
	for i := range xs {
		xs[i] /= 8
	}
	target := curves.New(xs, ys)
	maxLines := target.MaxX()
	nAccess := 400000
	if opts.Quick {
		nAccess = 200000
	}
	wayCounts := []int{16, 32, 64, 128}
	type wayResult struct {
		rms   float64
		state int
	}
	// Each way count's GMON simulation is an independent engine job with
	// its own trace generator (all seeded opts.Seed, as before).
	results := make([]wayResult, len(wayCounts))
	if err := opts.engine().ForEach(len(wayCounts), func(k int) error {
		m := monitor.NewGMON(16, wayCounts[k], 128, maxLines)
		gen := trace.NewGenerator(target, 0, rand.New(rand.NewSource(opts.Seed)))
		for i := 0; i < nAccess; i++ {
			m.Access(gen.Next())
		}
		got := m.MissRatioCurve()
		var se float64
		probes := []float64{256, 1024, 4096, 16384, maxLines / 2, maxLines}
		for _, x := range probes {
			d := got.Eval(x) - target.Eval(x)
			se += d * d
		}
		results[k] = wayResult{math.Sqrt(se / float64(len(probes))), m.StateBytes()}
		return nil
	}); err != nil {
		return nil, err
	}
	rep.addf("%6s %10s %10s", "ways", "RMS err", "state B")
	for k, ways := range wayCounts {
		rep.addf("%6d %10.4f %10d", ways, results[k].rms, results[k].state)
		rep.Scalars[fmt.Sprintf("rms:%d", ways)] = results[k].rms
	}
	return rep, nil
}

// runAblationChunk sweeps the allocation/placement granularity from 1/64 of
// a bank to whole banks: the fine-vs-coarse trade the paper's Vantage
// partitioning enables.
func runAblationChunk(opts Options) (*Report, error) {
	rep := newReport("ablation-chunk", "Allocation granularity sweep (Vantage's value)")
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	divs := []float64{64, 8, 2, 1}
	n := opts.Mixes
	rep.addf("%12s %10s", "chunk", "gmean WS")
	for _, div := range divs {
		scheme := policy.SchemeCDCS
		scheme.BankGranular = div == 1
		scheme.Label = fmt.Sprintf("CDCS/chunk=bank/%g", div)
		res, err := opts.engine().RunCampaign(env,
			[]policy.Scheme{policy.SchemeSNUCA, scheme},
			n, opts.Seed, func(rng *rand.Rand) *workload.Mix {
				return workload.RandomST(rng, cpu, 64)
			})
		if err != nil {
			return nil, err
		}
		rep.addf("%12s %10.3f", fmt.Sprintf("bank/%g", div), res[1].Gmean)
		rep.Scalars[fmt.Sprintf("gmean:div%g", div)] = res[1].Gmean
	}
	return rep, nil
}

// runExtNUMA evaluates the paper's future-work extension: distance-dependent
// memory latency (Eq. 1 with per-bank controller distances). CDCS was not
// designed for it, but its locality should keep it ahead.
func runExtNUMA(opts Options) (*Report, error) {
	rep := newReport("ext-numa", "NUMA-aware memory latency extension (§III future work)")
	env := policy.DefaultEnv()
	env.Params.NUMAAware = true
	cpu := workload.SPECCPU()
	res, err := opts.engine().RunCampaign(env, allSchemes(), opts.Mixes, opts.Seed, func(rng *rand.Rand) *workload.Mix {
		return workload.RandomST(rng, cpu, 64)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range res {
		rep.addf("%-10s gmean WS %.3f", r.Scheme, r.Gmean)
		rep.Scalars["gmean:"+r.Scheme] = r.Gmean
	}
	return rep, nil
}

// runExtMonitor closes the Fig. 4 loop: GMON-measured miss curves (from
// synthetic traces) replace true curves in the allocator, and the report
// compares the resulting allocations' quality.
func runExtMonitor(opts Options) (*Report, error) {
	rep := newReport("ext-monitor", "GMON-driven allocation vs true curves (Fig. 4 loop)")
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	nApps := 16
	accesses := 500000
	if opts.Quick {
		accesses = 250000
	}
	mix := workload.RandomST(rand.New(rand.NewSource(opts.Seed)), cpu, nApps)

	// Each VC's GMON trace is an independent engine job.
	measured, err := opts.engine().MonitoredMix(mix, env.Chip.TotalLines(), accesses, opts.Seed)
	if err != nil {
		return nil, err
	}
	var curveErr float64
	for v := range mix.VCs {
		curveErr += sim.CurveError(measured[v], mix.VCs[v].MissRatio, env.Chip.TotalLines())
	}
	curveErr /= float64(len(mix.VCs))
	rep.Scalars["curveMAE"] = curveErr
	rep.addf("mean monitored-curve error: %.4f (miss-ratio MAE)", curveErr)

	// Allocate from true vs measured curves; evaluate both allocations
	// against the TRUE curves (what the hardware would experience).
	cost := func(curveOf func(int) curves.Curve) float64 {
		costs := make([]curves.Curve, len(mix.VCs))
		dist := allocCompactDist(env)
		for v := range mix.VCs {
			costs[v] = allocTotalCurve(env, curveOf(v), mix.VCs[v].TotalAPKI(), dist)
		}
		sizes := allocPeekahead(costs, env.Chip.TotalLines())
		total := 0.0
		for v, s := range sizes {
			apki := mix.VCs[v].TotalAPKI()
			total += apki * mix.VCs[v].MissRatio.Eval(s) * env.Model.MemLatency
		}
		return total
	}
	trueCost := cost(func(v int) curves.Curve { return mix.VCs[v].MissRatio })
	measCost := cost(func(v int) curves.Curve { return measured[v] })
	rel := measCost / trueCost
	rep.Scalars["measuredOverTrue"] = rel
	rep.addf("off-chip cost with GMON curves vs true curves: %.3fx", rel)
	return rep, nil
}
