package exp

import (
	"maps"
	"slices"

	"cdcs/internal/core"
	"cdcs/internal/mesh"
	"cdcs/internal/perfmodel"
	"cdcs/internal/place"
	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/stats"
	"cdcs/internal/workload"
)

func init() {
	register("ext-phases", runExtPhases)
}

// runExtPhases explores the §VI-C caveat that stable SPEC phases understate
// reconfiguration costs: phased applications change working sets every few
// epochs, and the experiment compares (a) reconfiguring every epoch with
// CDCS's background invalidations, (b) reconfiguring with Jigsaw's bulk
// invalidations, and (c) configuring once and never adapting. Adaptation
// must beat the static schedule, and cheap moves must beat bulk moves.
func runExtPhases(opts Options) (*Report, error) {
	rep := newReport("ext-phases", "Phased workloads: adaptation vs reconfiguration cost")
	env := policy.DefaultEnv()
	apps := phasedApps()
	epochs := 12
	if opts.Quick {
		epochs = 8
	}
	const epochCycles = 50e6 // 25ms at 2GHz

	// Reconfiguration penalties (lost cycles per core per reconfiguration).
	rp := sim.DefaultReconfigParams()
	bgPenalty := sim.ReconfigPenalty(rp, sim.BackgroundInvs) / epochCycles
	bulkPenalty := sim.ReconfigPenalty(rp, sim.BulkInvs) / epochCycles

	// Pass 1: each epoch's mix materialization, reconfiguration and adaptive
	// evaluation is an independent engine job.
	mixes := make([]*workload.Mix, epochs)
	epochRes := make([]core.Result, epochs)
	adaptiveIPC := make([]float64, epochs)
	if err := opts.engine().ForEach(epochs, func(e int) error {
		mixes[e] = mixAtEpoch(apps, e)
		cfg := core.Config{Chip: env.Chip, Model: env.Model, Feats: core.AllCDCS()}
		res, err := core.Reconfigure(cfg, mixes[e], nil)
		if err != nil {
			return err
		}
		epochRes[e] = res
		adaptiveIPC[e] = evalSchedule(env, mixes[e], res)
		return nil
	}); err != nil {
		return nil, err
	}

	// Pass 2: the static schedule is epoch 0's reconfiguration evaluated
	// against every later phase (needs pass 1's first result). evalSchedule
	// is a cheap in-memory model evaluation, so no fan-out.
	staticRes := epochRes[0]
	staticIPC := make([]float64, epochs)
	for e := range staticIPC {
		staticIPC[e] = evalSchedule(env, mixes[e], staticRes)
	}

	bgIPC := make([]float64, epochs)
	bulkIPC := make([]float64, epochs)
	oracleIPC := make([]float64, epochs)
	for e := 0; e < epochs; e++ {
		bgIPC[e] = adaptiveIPC[e] * (1 - bgPenalty)
		bulkIPC[e] = adaptiveIPC[e] * (1 - bulkPenalty)
		oracleIPC[e] = adaptiveIPC[e]
	}

	report := func(name string, xs []float64) float64 {
		m := stats.Mean(xs)
		rep.addf("%-22s mean aggregate IPC %.2f", name, m)
		rep.Scalars["ipc:"+name] = m
		return m
	}
	report("oracle(free moves)", oracleIPC)
	report("adaptive+background", bgIPC)
	report("adaptive+bulk", bulkIPC)
	report("static(no adaptation)", staticIPC)
	rep.Scalars["adaptGain"] = stats.Mean(bgIPC) / stats.Mean(staticIPC)
	rep.addf("adaptation gain over static: %.3fx", rep.Scalars["adaptGain"])
	return rep, nil
}

// phasedApps builds the phased working set: 16 apps (4 of each phased
// profile) so phase changes shift multi-MB allocations every few epochs.
func phasedApps() []*workload.PhasedProfile {
	set := workload.PhasedSet()
	out := make([]*workload.PhasedProfile, 0, 16)
	for i := 0; i < 4; i++ {
		out = append(out, set...)
	}
	return out
}

// mixAtEpoch materializes the mix for one epoch (same shape every epoch:
// VC/thread ids line up across epochs, only curves and intensities change).
func mixAtEpoch(apps []*workload.PhasedProfile, epoch int) *workload.Mix {
	m := workload.NewMix()
	for _, a := range apps {
		m.AddST(a.At(epoch))
	}
	return m
}

// evalSchedule evaluates an existing reconfiguration result against a mix's
// current curves (the static schedule keeps epoch-0 sizes and placements but
// experiences the current phase's miss ratios and intensities).
func evalSchedule(env policy.Env, mix *workload.Mix, res core.Result) float64 {
	inputs := make([]perfmodel.ThreadInput, len(mix.Threads))
	for t := range mix.Threads {
		th := &mix.Threads[t]
		in := perfmodel.ThreadInput{CPIBase: th.CPIBase, MLP: th.MLP}
		corePos := res.ThreadCore[t]
		// VC-id order keeps the model's reductions map-order independent.
		for _, v := range slices.Sorted(maps.Keys(th.Access)) {
			size := res.VCSizes[v]
			ratio := mix.VCs[v].MissRatio.Eval(size)
			hops, memHops := resultHops(env, &res.Assignment[v], size, corePos)
			in.Accesses = append(in.Accesses, perfmodel.VCAccess{
				APKI: th.Access[v], MissRatio: ratio, AvgHops: hops, MemHops: memHops,
			})
		}
		inputs[t] = in
	}
	return perfmodel.Evaluate(env.Params, inputs).AggIPC
}

// resultHops mirrors the policy package's assignment-distance computation:
// the dense bank index iterates in ascending bank order, so the float sums
// are reproducible without sorting.
func resultHops(env policy.Env, alloc *place.BankAlloc, size float64, corePos mesh.Tile) (float64, float64) {
	if size <= 0 || alloc.Len() == 0 {
		return 0, env.Chip.Topo.AvgMemDistance(corePos)
	}
	var hops, memHops float64
	for _, b := range alloc.Banks() {
		frac := alloc.Get(b) / size
		hops += frac * float64(env.Chip.Topo.Distance(corePos, b))
		memHops += frac * env.Chip.Topo.AvgMemDistance(b)
	}
	return hops, memHops
}
