package exp

import (
	"math/rand"

	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/workload"
)

func init() {
	register("fig17", runFig17)
	register("fig18", runFig18)
}

// reconfigParamsFromCampaign derives the transient-model inputs from an
// actual CDCS run (steady IPC, APKI, hit ratio) so Figs. 17-18 share state
// with the epoch simulations.
func reconfigParamsFromCampaign(opts Options) (sim.ReconfigParams, float64, error) {
	env := policy.DefaultEnv()
	mix := workload.RandomST(rand.New(rand.NewSource(opts.Seed)), workload.SPECCPU(), 64)
	// The S-NUCA baseline and the CDCS run are independent engine jobs.
	schemes := []policy.Scheme{policy.SchemeSNUCA, policy.SchemeCDCS}
	runs := make([]sim.MixResult, len(schemes))
	if err := opts.engine().ForEach(len(schemes), func(i int) error {
		r, err := sim.RunMix(env, schemes[i], mix, rand.New(rand.NewSource(opts.Seed+1+int64(i))))
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	}); err != nil {
		return sim.ReconfigParams{}, 0, err
	}
	base, res := runs[0], runs[1]
	p := sim.DefaultReconfigParams()
	p.Cores = env.Chip.Banks()
	p.SteadyIPC = res.Chip.AggIPC / float64(p.Cores)
	var apki, mpki float64
	for _, t := range res.Chip.Threads {
		apki += t.APKI
		mpki += t.MPKI
	}
	apki /= float64(len(res.Chip.Threads))
	mpki /= float64(len(res.Chip.Threads))
	p.APKI = apki
	if apki > 0 {
		p.HitRatio = 1 - mpki/apki
	}
	p.MemLatency = res.Chip.MemLatency
	return p, sim.WeightedSpeedup(res, base), nil
}

// runFig17 reproduces Fig. 17: the aggregate-IPC trace through one
// reconfiguration under instant moves, background invalidations (CDCS) and
// bulk invalidations (Jigsaw).
func runFig17(opts Options) (*Report, error) {
	rep := newReport("fig17", "IPC during one reconfiguration (Fig. 17)")
	p, _, err := reconfigParamsFromCampaign(opts)
	if err != nil {
		return nil, err
	}
	const window, at, bucket = 2e6, 2e5, 5e4
	schemes := []sim.MoveScheme{sim.InstantMoves, sim.BackgroundInvs, sim.BulkInvs}
	traces := make([][]sim.IPCPoint, len(schemes))
	// The transient model is closed-form arithmetic (~40 points per scheme):
	// not worth a fan-out.
	for i, s := range schemes {
		traces[i] = sim.SimulateReconfig(p, s, window, at, bucket)
		key := "ipc:" + s.String()
		for _, pt := range traces[i] {
			rep.Series[key] = append(rep.Series[key], pt.AggIPC)
		}
	}
	rep.addf("%10s %10s %12s %10s", "Kcycle", "instant", "background", "bulk")
	for j := range traces[0] {
		rep.addf("%10.0f %10.1f %12.1f %10.1f",
			traces[0][j].Cycle/1000, traces[0][j].AggIPC, traces[1][j].AggIPC, traces[2][j].AggIPC)
	}
	for i, s := range schemes {
		_ = i
		rep.Scalars["penalty:"+s.String()] = sim.ReconfigPenalty(p, s)
	}
	rep.addf("per-reconfig lost cycles/core: instant %.0f, background %.0f, bulk %.0f",
		rep.Scalars["penalty:instant-moves"], rep.Scalars["penalty:background-invs"], rep.Scalars["penalty:bulk-invs"])
	return rep, nil
}

// runFig18 reproduces Fig. 18: weighted speedup of 64-app mixes vs
// reconfiguration period for the three movement schemes.
func runFig18(opts Options) (*Report, error) {
	rep := newReport("fig18", "Weighted speedup vs reconfiguration period (Fig. 18)")
	p, steadyWS, err := reconfigParamsFromCampaign(opts)
	if err != nil {
		return nil, err
	}
	rep.Scalars["steadyWS"] = steadyWS
	periods := []float64{10e6, 25e6, 50e6, 100e6}
	rep.addf("%10s %10s %12s %10s", "period(M)", "instant", "background", "bulk")
	for _, period := range periods {
		inst := sim.EffectiveWS(steadyWS, p, sim.InstantMoves, period)
		bg := sim.EffectiveWS(steadyWS, p, sim.BackgroundInvs, period)
		bulk := sim.EffectiveWS(steadyWS, p, sim.BulkInvs, period)
		rep.addf("%10.0f %10.3f %12.3f %10.3f", period/1e6, inst, bg, bulk)
		rep.Series["instant"] = append(rep.Series["instant"], inst)
		rep.Series["background"] = append(rep.Series["background"], bg)
		rep.Series["bulk"] = append(rep.Series["bulk"], bulk)
	}
	return rep, nil
}
