package exp

import (
	"math/rand"

	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/workload"
)

func init() {
	register("fig15", runFig15)
	register("fig16", runFig16)
}

// runFig15 reproduces Fig. 15: 50 mixes of eight 8-thread SPEC OMP-like apps
// (64 threads) under the five schemes — weighted speedups and traffic.
func runFig15(opts Options) (*Report, error) {
	rep := newReport("fig15", "Multithreaded mixes: 8x 8-thread apps (Fig. 15)")
	env := policy.DefaultEnv()
	omp := workload.SPECOMP()
	res, err := opts.engine().RunCampaign(env, allSchemes(), opts.Mixes, opts.Seed, func(rng *rand.Rand) *workload.Mix {
		return workload.RandomMT(rng, omp, 8)
	})
	if err != nil {
		return nil, err
	}
	reportCampaign(rep, res)
	return rep, nil
}

// runFig16 reproduces Fig. 16: under-committed multithreaded mixes (4x
// 8-thread apps on 64 cores) plus the mgrid/md/ilbdc/nab case study.
func runFig16(opts Options) (*Report, error) {
	rep := newReport("fig16", "Under-committed MT mixes: 4x 8-thread apps (Fig. 16)")
	env := policy.DefaultEnv()
	omp := workload.SPECOMP()
	res, err := opts.engine().RunCampaign(env, allSchemes(), opts.Mixes, opts.Seed, func(rng *rand.Rand) *workload.Mix {
		return workload.RandomMT(rng, omp, 4)
	})
	if err != nil {
		return nil, err
	}
	reportCampaign(rep, res)

	// Case study (Fig. 16b): per-process thread spread under CDCS.
	mix := workload.Fig16CaseStudy()
	cdcsRes, err := sim.RunMix(env, policy.SchemeCDCS, mix, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, err
	}
	rep.addf("")
	rep.addf("case study (mgrid/md/ilbdc/nab) thread spreads under CDCS:")
	for _, proc := range mix.Procs {
		spread := meanPairwise(env, cdcsRes, proc.ThreadIDs)
		rep.addf("  %-8s mean pairwise distance %.2f hops", proc.Bench, spread)
		rep.Scalars["spread:"+proc.Bench] = spread
	}
	return rep, nil
}

// meanPairwise averages pairwise core distances among a process's threads.
func meanPairwise(env policy.Env, res sim.MixResult, ids []int) float64 {
	sum, n := 0.0, 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			sum += float64(env.Chip.Topo.Distance(res.Sched.ThreadCore[ids[i]], res.Sched.ThreadCore[ids[j]]))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
