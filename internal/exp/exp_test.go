package exp

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// quick runs an experiment with small options and basic sanity checks.
func quick(t *testing.T, id string) *Report {
	t.Helper()
	opts := QuickOptions()
	opts.Mixes = 4
	rep, err := Run(id, opts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Errorf("%s: report id %q", id, rep.ID)
	}
	if len(rep.Lines) == 0 {
		t.Errorf("%s: empty report", id)
	}
	if !strings.Contains(rep.String(), rep.Title) {
		t.Errorf("%s: String() missing title", id)
	}
	return rep
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", QuickOptions()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig2", "fig5", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "table3",
		"sec6c-ilp", "sec6c-anneal", "sec6c-graph", "sec6c-gmon", "sec6c-bank",
		"ablation-trades", "ablation-gmon-ways", "ablation-chunk",
		"ext-numa", "ext-monitor", "ext-noc", "ext-phases", "ext-hwsim",
		"ext-scaling", "ext-scaling-mt",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registered %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	if !sort.StringsAreSorted(ids) {
		t.Errorf("IDs() not sorted: %v", ids)
	}
}

// TestParallelismBitIdentical runs campaign-backed experiments at worker
// counts 1 and 8 and requires identical reports: the engine's determinism
// guarantee surfaced at the experiment layer.
func TestParallelismBitIdentical(t *testing.T) {
	for _, id := range []string{"fig11", "fig15", "sec6c-anneal"} {
		t.Run(id, func(t *testing.T) {
			opts := QuickOptions()
			opts.Mixes = 3
			opts.Parallelism = 1
			seq, err := Run(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Parallelism = 8
			par, err := Run(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Scalars, par.Scalars) {
				t.Errorf("scalars differ across parallelism:\nseq: %v\npar: %v", seq.Scalars, par.Scalars)
			}
			if !reflect.DeepEqual(seq.Lines, par.Lines) {
				t.Error("report lines differ across parallelism")
			}
		})
	}
}

// TestCanceledContext verifies every experiment aborts with ctx.Err() on a
// pre-canceled context instead of running to completion.
func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"fig11", "table3", "ext-hwsim", "ext-phases"} {
		opts := QuickOptions()
		opts.Mixes = 2
		opts.Context = ctx
		if _, err := Run(id, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", id, err)
		}
	}
}

// TestProgressReported checks the Progress callback fires for a
// campaign-backed experiment and reaches its total.
func TestProgressReported(t *testing.T) {
	opts := QuickOptions()
	opts.Mixes = 2
	var last, total int
	opts.Progress = func(d, n int) { last, total = d, n }
	if _, err := Run("fig11", opts); err != nil {
		t.Fatal(err)
	}
	if total == 0 || last != total {
		t.Errorf("progress ended at %d/%d, want full completion", last, total)
	}
}

func TestTable1Shape(t *testing.T) {
	rep := quick(t, "table1")
	// Table 1 ordering: CDCS WS highest; R-NUCA modest; omnet gains most
	// under CDCS.
	if rep.Scalars["ws:CDCS"] <= rep.Scalars["ws:Jigsaw+C"] {
		t.Errorf("CDCS WS %.3f <= Jigsaw+C %.3f", rep.Scalars["ws:CDCS"], rep.Scalars["ws:Jigsaw+C"])
	}
	if rep.Scalars["ws:R-NUCA"] <= 1.0 {
		t.Errorf("R-NUCA WS %.3f", rep.Scalars["ws:R-NUCA"])
	}
	if rep.Scalars["omnet:CDCS"] <= rep.Scalars["omnet:R-NUCA"] {
		t.Error("omnet should gain far more under CDCS than R-NUCA")
	}
	// Jigsaw+R gives omnet more than Jigsaw+C (Table 1: 3.99 vs 2.88).
	if rep.Scalars["omnet:Jigsaw+R"] <= rep.Scalars["omnet:Jigsaw+C"] {
		t.Errorf("omnet Jigsaw+R %.2f <= Jigsaw+C %.2f",
			rep.Scalars["omnet:Jigsaw+R"], rep.Scalars["omnet:Jigsaw+C"])
	}
}

func TestFig1OmnetDistance(t *testing.T) {
	rep := quick(t, "fig1")
	// Fig. 1b vs 1c: omnet's data is much closer under random/CDCS placement
	// than clustered.
	if rep.Scalars["omnetHops:Jigsaw+C"] <= rep.Scalars["omnetHops:CDCS"] {
		t.Errorf("clustered omnet distance %.2f not above CDCS %.2f",
			rep.Scalars["omnetHops:Jigsaw+C"], rep.Scalars["omnetHops:CDCS"])
	}
}

func TestFig2Calibration(t *testing.T) {
	rep := quick(t, "fig2")
	if v := rep.Scalars["omnet@1MB"]; v < 60 || v > 100 {
		t.Errorf("omnet@1MB = %.1f MPKI, want ~85", v)
	}
	if v := rep.Scalars["omnet@3MB"]; v > 5 {
		t.Errorf("omnet@3MB = %.1f MPKI, want ~0", v)
	}
}

func TestFig5SweetSpot(t *testing.T) {
	rep := quick(t, "fig5")
	if v := rep.Scalars["sweetSpotMB"]; v < 1.5 || v > 4 {
		t.Errorf("sweet spot at %.2f MB, want ~2.5", v)
	}
}

func TestFig11Ordering(t *testing.T) {
	rep := quick(t, "fig11")
	g := func(s string) float64 { return rep.Scalars["gmean:"+s] }
	if !(g("CDCS") > g("Jigsaw+R") && g("Jigsaw+R") > g("Jigsaw+C") &&
		g("Jigsaw+C") > g("R-NUCA") && g("R-NUCA") > 1.0) {
		t.Errorf("Fig11 ordering broken: CDCS %.3f Jig+R %.3f Jig+C %.3f R-NUCA %.3f",
			g("CDCS"), g("Jigsaw+R"), g("Jigsaw+C"), g("R-NUCA"))
	}
	// S-NUCA has much higher on-chip latency than CDCS (paper: 11x).
	if rep.Scalars["onchip:S-NUCA"] < 3*rep.Scalars["onchip:CDCS"] {
		t.Errorf("S-NUCA on-chip %.1f not >> CDCS %.1f",
			rep.Scalars["onchip:S-NUCA"], rep.Scalars["onchip:CDCS"])
	}
	// CDCS saves energy over S-NUCA (paper: 36%).
	if rep.Scalars["energy:CDCS"] >= rep.Scalars["energy:S-NUCA"] {
		t.Error("CDCS energy not below S-NUCA")
	}
}

func TestFig12FactorTrends(t *testing.T) {
	rep := quick(t, "fig12")
	// At 64 apps thread placement and trades dominate; +LTD is best overall.
	if rep.Scalars["gmean:+LTD:64"] < rep.Scalars["gmean:Jigsaw+R:64"] {
		t.Error("+LTD below Jigsaw+R at 64 apps")
	}
	// At 4 apps latency-aware allocation carries most of the gain:
	// +L beats Jigsaw+R by more at 4 apps than at 64 apps.
	gain4 := rep.Scalars["gmean:+L:4"] - rep.Scalars["gmean:Jigsaw+R:4"]
	gain64 := rep.Scalars["gmean:+L:64"] - rep.Scalars["gmean:Jigsaw+R:64"]
	if gain4 <= gain64 {
		t.Errorf("+L gain at 4 apps (%.3f) not above 64 apps (%.3f)", gain4, gain64)
	}
	if rep.Scalars["gmean:+LTD:4"] < rep.Scalars["gmean:Jigsaw+R:4"] {
		t.Error("+LTD below Jigsaw+R at 4 apps")
	}
}

func TestFig13CDCSHoldsUp(t *testing.T) {
	rep := quick(t, "fig13")
	// CDCS maintains its lead at every occupancy level.
	for _, n := range []int{2, 4, 16, 64} {
		c := rep.Scalars[keyN("gmean", "CDCS", n)]
		jr := rep.Scalars[keyN("gmean", "Jigsaw+R", n)]
		jc := rep.Scalars[keyN("gmean", "Jigsaw+C", n)]
		if c < jr-1e-9 || c < jc-1e-9 {
			t.Errorf("%d apps: CDCS %.3f below Jigsaw (%.3f / %.3f)", n, c, jr, jc)
		}
	}
	// Jigsaw works poorly on small mixes relative to CDCS (paper: 28% vs
	// 17%/6% at 4 apps): the CDCS-Jigsaw gap shrinks as occupancy grows.
	gap4 := rep.Scalars[keyN("gmean", "CDCS", 4)] - rep.Scalars[keyN("gmean", "Jigsaw+C", 4)]
	gap64 := rep.Scalars[keyN("gmean", "CDCS", 64)] - rep.Scalars[keyN("gmean", "Jigsaw+C", 64)]
	if gap4 <= 0 {
		t.Errorf("no CDCS advantage at 4 apps (gap %.3f)", gap4)
	}
	_ = gap64 // magnitude comparison recorded in EXPERIMENTS.md
}

func TestFig15MTReversal(t *testing.T) {
	rep := quick(t, "fig15")
	if rep.Scalars["gmean:Jigsaw+C"] <= rep.Scalars["gmean:Jigsaw+R"] {
		t.Errorf("MT: Jigsaw+C %.3f <= Jigsaw+R %.3f (should reverse)",
			rep.Scalars["gmean:Jigsaw+C"], rep.Scalars["gmean:Jigsaw+R"])
	}
	if rep.Scalars["gmean:CDCS"] < rep.Scalars["gmean:Jigsaw+C"]-0.01 {
		t.Error("CDCS clearly below Jigsaw+C on MT mixes")
	}
}

func TestFig16CaseStudySpreads(t *testing.T) {
	rep := quick(t, "fig16")
	// mgrid (private-heavy) spreads; shared-heavy apps cluster.
	for _, bench := range []string{"md", "ilbdc", "nab"} {
		if rep.Scalars["spread:"+bench] >= rep.Scalars["spread:mgrid"] {
			t.Errorf("%s spread %.2f not tighter than mgrid %.2f",
				bench, rep.Scalars["spread:"+bench], rep.Scalars["spread:mgrid"])
		}
	}
}

func TestFig17Penalties(t *testing.T) {
	rep := quick(t, "fig17")
	pi := rep.Scalars["penalty:instant-moves"]
	pb := rep.Scalars["penalty:background-invs"]
	pk := rep.Scalars["penalty:bulk-invs"]
	if !(pi == 0 && pb > 0 && pk > pb) {
		t.Errorf("penalty ordering wrong: %f / %f / %f", pi, pb, pk)
	}
}

func TestFig18Convergence(t *testing.T) {
	rep := quick(t, "fig18")
	inst := rep.Series["instant"]
	bulk := rep.Series["bulk"]
	if len(inst) != 4 || len(bulk) != 4 {
		t.Fatalf("series lengths %d/%d", len(inst), len(bulk))
	}
	if !(inst[0]-bulk[0] > inst[3]-bulk[3]) {
		t.Error("bulk gap did not shrink with period")
	}
}

func TestTable3Overheads(t *testing.T) {
	rep := quick(t, "table3")
	// The paper's claim: small overheads, growing with scale. Go wall time
	// is not zsim cycles, so assert only the qualitative claims: nonzero,
	// and below a generous bound (paper: 0.2% at 64/64).
	for _, label := range []string{"16/16", "16/64", "64/64"} {
		ovh := rep.Scalars["overheadPct:"+label]
		if ovh <= 0 {
			t.Errorf("%s: zero overhead recorded", label)
		}
		if ovh > 5 {
			t.Errorf("%s: overhead %.2f%% implausibly high", label, ovh)
		}
	}
}

func TestSec6CILPCloseToOptimal(t *testing.T) {
	opts := QuickOptions()
	opts.Mixes = 3
	rep, err := Run("sec6c-ilp", opts)
	if err != nil {
		t.Fatal(err)
	}
	// CDCS within a few percent of the exact optimum (paper: ~0.5% WS).
	if rel := rep.Scalars["cdcsOverOptimal"]; rel < 1.0-1e-9 || rel > 1.25 {
		t.Errorf("CDCS/optimal latency ratio %.3f, want [1, 1.25]", rel)
	}
}

func TestSec6CAnnealClose(t *testing.T) {
	opts := QuickOptions()
	opts.Mixes = 2
	rep, err := Run("sec6c-anneal", opts)
	if err != nil {
		t.Fatal(err)
	}
	if rel := rep.Scalars["cdcsOverAnneal"]; rel > 1.35 {
		t.Errorf("annealing beats CDCS by %.3fx, want close", rel)
	}
}

func TestSec6CGMONFidelity(t *testing.T) {
	rep := quick(t, "sec6c-gmon")
	// GMON-64 matches the large UMONs and beats UMON-64, at ~1/8 the state
	// of UMON-512.
	if rep.Scalars["rms:GMON-64w"] > rep.Scalars["rms:UMON-64w"] {
		t.Errorf("GMON RMS %.4f worse than UMON-64 %.4f",
			rep.Scalars["rms:GMON-64w"], rep.Scalars["rms:UMON-64w"])
	}
	if rep.Scalars["rms:GMON-64w"] > 2.5*rep.Scalars["rms:UMON-512w"]+0.02 {
		t.Errorf("GMON RMS %.4f far above UMON-512 %.4f",
			rep.Scalars["rms:GMON-64w"], rep.Scalars["rms:UMON-512w"])
	}
	if rep.Scalars["kb:GMON-64w"] >= rep.Scalars["kb:UMON-512w"] {
		t.Error("GMON not smaller than UMON-512")
	}
}

func TestSec6CBankGranularity(t *testing.T) {
	rep := quick(t, "sec6c-bank")
	if rep.Scalars["gmean:CDCS-bank"] > rep.Scalars["gmean:CDCS"] {
		t.Errorf("bank-granular CDCS %.3f above fine-grained %.3f",
			rep.Scalars["gmean:CDCS-bank"], rep.Scalars["gmean:CDCS"])
	}
	if rep.Scalars["gmean:CDCS-bank"] <= 1.0 {
		t.Error("bank-granular CDCS should still beat S-NUCA")
	}
}
