package exp

import (
	"math"
	"math/rand"

	"cdcs/internal/curves"
	"cdcs/internal/monitor"
	"cdcs/internal/place"
	"cdcs/internal/policy"
	"cdcs/internal/stats"
	"cdcs/internal/trace"
	"cdcs/internal/workload"
)

func init() {
	register("sec6c-ilp", runSec6CILP)
	register("sec6c-anneal", runSec6CAnneal)
	register("sec6c-graph", runSec6CGraph)
	register("sec6c-gmon", runSec6CGMON)
	register("sec6c-bank", runSec6CBank)
}

// cdcsDemands rebuilds the place.Demand view of a CDCS schedule.
func cdcsDemands(mix *workload.Mix, s policy.Sched) []place.Demand {
	d := make([]place.Demand, len(mix.VCs))
	for v := range mix.VCs {
		d[v] = place.NewDemand(s.VCSizes[v], mix.VCs[v].Accessors)
	}
	return d
}

// runSec6CILP compares CDCS data placement against the exact transportation
// optimum (the paper's Gurobi ILP stand-in): the paper reports the optimum
// is only ~0.5% better at ~1000x the cost.
func runSec6CILP(opts Options) (*Report, error) {
	rep := newReport("sec6c-ilp", "CDCS vs optimal (ILP/MCMF) data placement (§VI-C)")
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	n := opts.Mixes
	if n > 10 {
		n = 10 // the exact solve is expensive; 10 mixes give a stable mean
	}
	// One engine job per mix; perMix[m] stays NaN when the optimum is
	// degenerate so the mean skips it (matching the sequential filter).
	perMix := make([]float64, n)
	if err := opts.engine().ForEach(n, func(m int) error {
		perMix[m] = math.NaN()
		mix := workload.RandomST(rand.New(rand.NewSource(opts.Seed+int64(m))), cpu, 64)
		s, err := policy.Build(env, policy.SchemeCDCS, mix, nil)
		if err != nil {
			return err
		}
		demands := cdcsDemands(mix, s)
		cdcsLat := place.OnChipLatency(env.Chip, demands, s.Core.Assignment, s.ThreadCore)
		optAssign := place.OptimalTransport(env.Chip, demands, s.ThreadCore, env.Chip.BankLines/16)
		optLat := place.OnChipLatency(env.Chip, demands, optAssign, s.ThreadCore)
		if optLat > 0 {
			perMix[m] = cdcsLat / optLat
		}
		return nil
	}); err != nil {
		return nil, err
	}
	meanRel := stats.Mean(finite(perMix))
	rep.Scalars["cdcsOverOptimal"] = meanRel
	rep.addf("CDCS on-chip latency vs exact optimum: %.3fx (paper: optimal ~0.5%% better WS)", meanRel)
	return rep, nil
}

// runSec6CAnneal compares CDCS thread placement against 5000-round simulated
// annealing (paper: annealing is ~0.6% better at ~1000x the runtime).
func runSec6CAnneal(opts Options) (*Report, error) {
	rep := newReport("sec6c-anneal", "CDCS vs simulated-annealing thread placement (§VI-C)")
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	n := opts.Mixes
	if n > 10 {
		n = 10
	}
	perMix := make([]float64, n)
	if err := opts.engine().ForEach(n, func(m int) error {
		perMix[m] = math.NaN()
		mix := workload.RandomST(rand.New(rand.NewSource(opts.Seed+int64(m))), cpu, 64)
		s, err := policy.Build(env, policy.SchemeCDCS, mix, nil)
		if err != nil {
			return err
		}
		demands := cdcsDemands(mix, s)
		cdcsLat := place.OnChipLatency(env.Chip, demands, s.Core.Assignment, s.ThreadCore)
		_, annealLat := place.AnnealThreads(env.Chip, demands, s.Core.Assignment, s.ThreadCore,
			5000, rand.New(rand.NewSource(opts.Seed+100+int64(m))))
		if annealLat > 0 {
			perMix[m] = cdcsLat / annealLat
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rels := finite(perMix)
	rep.Scalars["cdcsOverAnneal"] = stats.Mean(rels)
	rep.addf("CDCS on-chip latency vs annealed threads: %.3fx (paper: annealing ~0.6%% better)", stats.Mean(rels))
	return rep, nil
}

// runSec6CGraph compares CDCS against recursive-bisection graph partitioning
// for thread placement (paper: graph partitioning is ~2.5% worse net
// latency because it splits around the chip center).
func runSec6CGraph(opts Options) (*Report, error) {
	rep := newReport("sec6c-graph", "CDCS vs graph-partitioned thread placement (§VI-C)")
	env := policy.DefaultEnv()
	omp := workload.SPECOMP()
	n := opts.Mixes
	if n > 10 {
		n = 10
	}
	perMix := make([]float64, n)
	if err := opts.engine().ForEach(n, func(m int) error {
		perMix[m] = math.NaN()
		mix := workload.RandomMT(rand.New(rand.NewSource(opts.Seed+int64(m))), omp, 8)
		s, err := policy.Build(env, policy.SchemeCDCS, mix, nil)
		if err != nil {
			return err
		}
		demands := cdcsDemands(mix, s)
		cdcsLat := place.OnChipLatency(env.Chip, demands, s.Core.Assignment, s.ThreadCore)

		gpThreads := place.GraphPartition(env.Chip, demands, len(mix.Threads))
		gpAssign := place.Greedy(env.Chip, demands, gpThreads, env.Chip.BankLines/16)
		place.Refine(env.Chip, demands, gpAssign, gpThreads)
		gpLat := place.OnChipLatency(env.Chip, demands, gpAssign, gpThreads)
		if cdcsLat > 0 {
			perMix[m] = gpLat / cdcsLat
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rels := finite(perMix)
	rep.Scalars["graphOverCDCS"] = stats.Mean(rels)
	rep.addf("graph-partitioned net latency vs CDCS: %.3fx (paper: +2.5%%)", stats.Mean(rels))
	return rep, nil
}

// runSec6CGMON compares monitor designs: a 64-way GMON against UMONs of
// several way counts, measuring miss-curve reconstruction error over the
// full 64KB-32MB range (paper: 64-way GMONs match 256-way UMONs; 64-way
// UMONs lose ~3% performance).
func runSec6CGMON(opts Options) (*Report, error) {
	rep := newReport("sec6c-gmon", "GMON vs UMON miss-curve fidelity (§VI-C)")
	// Ground truth: an omnet-like curve over the full LLC domain, scaled to
	// a tractable exact-LRU region (1/8 of 32MB).
	omnet := workload.ByName(workload.SPECCPU(), "omnet")
	xs := omnet.MissRatio.Xs()
	ys := omnet.MissRatio.Ys()
	for i := range xs {
		xs[i] /= 8
	}
	target := curves.New(xs, ys)
	maxLines := target.MaxX()

	nAccess := 600000
	if opts.Quick {
		nAccess = 250000
	}
	monitors := []struct {
		name string
		m    *monitor.Monitor
	}{
		{"GMON-64w", monitor.NewGMON(16, 64, 128, maxLines)},
		{"UMON-64w", monitor.NewUMON(16, 64, maxLines)},
		{"UMON-256w", monitor.NewUMON(16, 256, maxLines)},
		{"UMON-512w", monitor.NewUMON(16, 512, maxLines)},
	}
	probes := []float64{256, 1024, 4096, 16384, maxLines / 2, maxLines}
	// Each monitor design replays its own trace (same seed, as before): one
	// engine job apiece.
	rms := make([]float64, len(monitors))
	if err := opts.engine().ForEach(len(monitors), func(k int) error {
		mo := monitors[k]
		gen := trace.NewGenerator(target, 0, rand.New(rand.NewSource(opts.Seed)))
		for i := 0; i < nAccess; i++ {
			mo.m.Access(gen.Next())
		}
		got := mo.m.MissRatioCurve()
		var se float64
		for _, x := range probes {
			d := got.Eval(x) - target.Eval(x)
			se += d * d
		}
		rms[k] = math.Sqrt(se / float64(len(probes)))
		return nil
	}); err != nil {
		return nil, err
	}
	rep.addf("%-10s %10s %10s", "monitor", "RMS err", "state KB")
	for k, mo := range monitors {
		kb := float64(mo.m.StateBytes()) / 1024
		rep.addf("%-10s %10.4f %10.2f", mo.name, rms[k], kb)
		rep.Scalars["rms:"+mo.name] = rms[k]
		rep.Scalars["kb:"+mo.name] = kb
	}
	return rep, nil
}

// runSec6CBank evaluates CDCS at whole-bank allocation granularity (the
// §VI-C partitioning-free configuration: 36% vs 46% gmean WS in the paper).
func runSec6CBank(opts Options) (*Report, error) {
	rep := newReport("sec6c-bank", "CDCS with whole-bank allocations (§VI-C)")
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	coarse := policy.SchemeCDCS
	coarse.BankGranular = true
	coarse.Label = "CDCS-bank"
	schemes := []policy.Scheme{policy.SchemeSNUCA, coarse, policy.SchemeCDCS}
	res, err := opts.engine().RunCampaign(env, schemes, opts.Mixes, opts.Seed, func(rng *rand.Rand) *workload.Mix {
		return workload.RandomST(rng, cpu, 64)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range res[1:] {
		rep.addf("%-10s gmean WS %.3f (max %.3f)", r.Scheme, r.Gmean, r.Max)
		rep.Scalars["gmean:"+r.Scheme] = r.Gmean
	}
	return rep, nil
}
