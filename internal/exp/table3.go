package exp

import (
	"math/rand"
	"strconv"
	"time"

	"cdcs/internal/alloc"
	"cdcs/internal/core"
	"cdcs/internal/mesh"
	"cdcs/internal/place"
	"cdcs/internal/policy"
	"cdcs/internal/workload"
)

func init() {
	register("table3", runTable3)
}

// runTable3 reproduces Table 3: the runtime of each reconfiguration step at
// 16 threads / 16 cores, 16 / 64 and 64 / 64, reported in Mcycles at 2GHz
// and as overhead of a 25ms reconfiguration period. Wall time is measured
// over repeated runs of the actual Go implementation; the comparison target
// is the paper's claim that overheads stay ~0.2% of system cycles.
func runTable3(opts Options) (*Report, error) {
	rep := newReport("table3", "CDCS runtime per reconfiguration step (Table 3)")
	type point struct {
		threads int
		w, h    int
	}
	// The paper reports 16/16, 16/64 and 64/64 and projects 1.2% overhead at
	// 1024 cores; the 256/256 point measures the quadratic scaling directly.
	points := []point{{16, 4, 4}, {16, 8, 8}, {64, 8, 8}, {256, 16, 16}}
	const freqGHz = 2.0
	const periodMs = 25.0
	reps := 5
	if opts.Quick {
		reps = 2
	}

	rep.addf("%-14s %12s %12s %12s %12s %10s", "threads/cores",
		"alloc(Mcyc)", "thread(Mcyc)", "data(Mcyc)", "total(Mcyc)", "ovh@25ms")
	// Table 3 measures wall time of the reconfiguration steps, so the runs
	// stay strictly sequential — concurrent jobs would contend for cores and
	// inflate the measured latencies. Cancellation is still honored between
	// points.
	ctx := opts.ctx()
	for _, pt := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		env := policy.ScaledEnv(pt.w, pt.h)
		cfg := core.Config{
			Chip:  place.Chip{Topo: mesh.New(pt.w, pt.h), BankLines: env.Chip.BankLines},
			Model: alloc.LatencyModel{MemLatency: env.Model.MemLatency, HopLatency: env.Model.HopLatency, RoundTrip: env.Model.RoundTrip},
			Feats: core.AllCDCS(),
		}
		var tAlloc, tThread, tData time.Duration
		for r := 0; r < reps; r++ {
			mix := workload.RandomST(rand.New(rand.NewSource(opts.Seed+int64(r))), workload.SPECCPU(), pt.threads)
			res, err := core.Reconfigure(cfg, mix, nil)
			if err != nil {
				return nil, err
			}
			tAlloc += res.Timing.Alloc
			tThread += res.Timing.ThreadPlace
			// VC placement is part of the data-placement budget in Table 3.
			tData += res.Timing.VCPlace + res.Timing.DataPlace
		}
		toMcyc := func(d time.Duration) float64 {
			return d.Seconds() / float64(reps) * freqGHz * 1e9 / 1e6
		}
		aM, tM, dM := toMcyc(tAlloc), toMcyc(tThread), toMcyc(tData)
		total := aM + tM + dM
		// The runtime occupies one core for `total` cycles out of
		// period×cores system cycles (the paper's "0.2% of system cycles").
		systemMcyc := periodMs * 1e-3 * freqGHz * 1e9 / 1e6 * float64(pt.w*pt.h)
		ovh := total / systemMcyc * 100
		label := strconv.Itoa(pt.threads) + "/" + strconv.Itoa(pt.w*pt.h)
		rep.addf("%-14s %12.2f %12.2f %12.2f %12.2f %9.3f%%", label, aM, tM, dM, total, ovh)
		rep.Scalars["totalMcyc:"+label] = total
		rep.Scalars["overheadPct:"+label] = ovh
	}
	return rep, nil
}
