package exp

import (
	"math/rand"

	"cdcs/internal/mesh"
	"cdcs/internal/noc"
	"cdcs/internal/perfmodel"
	"cdcs/internal/policy"
	"cdcs/internal/workload"
)

func init() {
	register("ext-noc", runExtNoC)
}

// runExtNoC validates the analytic Eq. 2 network model against the
// event-driven NoC simulator: a schedule's LLC access stream is replayed as
// request/response packets with link contention, and measured round-trip
// network latency is compared to the hops×HopLatency×RoundTrip abstraction.
// Requests and responses ride separate networks, as real chips separate
// protocol classes to avoid deadlock.
func runExtNoC(opts Options) (*Report, error) {
	rep := newReport("ext-noc", "Event-driven NoC vs analytic Eq. 2 (validation)")
	env := policy.DefaultEnv()
	mix := workload.RandomST(rand.New(rand.NewSource(opts.Seed)), workload.SPECCPU(), 64)
	samples := 200000
	if opts.Quick {
		samples = 60000
	}

	// The two schemes' event-driven replays are independent engine jobs
	// (each builds its own schedule and NoC state from the same seeds).
	schemes := []policy.Scheme{policy.SchemeCDCS, policy.SchemeSNUCA}
	type replay struct {
		name                     string
		analytic, zero, measured float64
	}
	rows := make([]replay, len(schemes))
	if err := opts.engine().ForEach(len(schemes), func(k int) error {
		s, err := policy.Build(env, schemes[k], mix, rand.New(rand.NewSource(opts.Seed+1)))
		if err != nil {
			return err
		}
		chip := perfmodel.Evaluate(env.Params, s.Inputs)
		a, z, m := replaySchedule(env, s, chip, samples, opts.Seed)
		rows[k] = replay{s.Name, a, z, m}
		return nil
	}); err != nil {
		return nil, err
	}
	rep.addf("%-10s %10s %10s %10s %10s", "scheme", "Eq.2", "zero-load", "measured", "queueing")
	for _, r := range rows {
		queueing := r.measured - r.zero
		rep.addf("%-10s %10.2f %10.2f %10.2f %10.2f", r.name, r.analytic, r.zero, r.measured, queueing)
		rep.Scalars["analytic:"+r.name] = r.analytic
		rep.Scalars["zeroload:"+r.name] = r.zero
		rep.Scalars["measured:"+r.name] = r.measured
		rep.Scalars["queueing:"+r.name] = queueing
	}
	rep.addf("Eq.2 counts hop traversals only; the event model adds router pipeline")
	rep.addf("and flit serialization (constants) plus contention (queueing column).")
	rep.addf("Queueing stays small at real loads, so the analytic abstraction is")
	rep.addf("sound — and S-NUCA queues hardest, so its reported gap is conservative.")
	return rep, nil
}

// replaySchedule drives the event NoC with the schedule's access stream and
// returns per-access means of: the Eq. 2 analytic cost, the event model's
// zero-load round trip, and the measured (contended) round trip.
func replaySchedule(env policy.Env, s policy.Sched, chip perfmodel.ChipResult, samples int, seed int64) (analytic, zero, measured float64) {
	rng := rand.New(rand.NewSource(seed + 7))

	// Per-(thread, VC-stream) access rates in accesses/cycle, flattened into
	// a sampling table of (core, bank distribution).
	type stream struct {
		core mesh.Tile
		rate float64
		in   perfmodel.VCAccess
	}
	var streams []stream
	totalRate := 0.0
	for t, in := range s.Inputs {
		ipc := chip.Threads[t].IPC
		for _, a := range in.Accesses {
			r := ipc * a.APKI / 1000
			if r <= 0 {
				continue
			}
			streams = append(streams, stream{core: s.ThreadCore[t], rate: r, in: a})
			totalRate += r
		}
	}
	if totalRate <= 0 {
		return 0, 0, 0
	}

	topo := env.Chip.Topo
	reqNet := noc.New(topo, env.Params.HopLatency-1, 1)
	rspNet := noc.New(topo, env.Params.HopLatency-1, 1)

	// Destination banks: sample by each stream's AvgHops by picking the bank
	// whose distance is closest to it among a ring around the core. For
	// exactness we reuse the analytic expectation: inject to a bank at the
	// stream's mean distance (rounded), which preserves mean path length.
	pickBank := func(st stream) mesh.Tile {
		want := st.in.AvgHops
		order := topo.ByDistance(st.core)
		best := order[0]
		bestD := 1e18
		// Among tiles at the two distances bracketing `want`, pick randomly.
		lo := int(want)
		for _, b := range order {
			d := float64(topo.Distance(st.core, b))
			if d < float64(lo) {
				continue
			}
			if diff := absF(d - want); diff < bestD {
				best, bestD = b, diff
			} else if diff == bestD && rng.Intn(2) == 0 {
				best = b
			}
			if d > want+1 {
				break
			}
		}
		return best
	}

	tm := 0.0
	interval := 1 / totalRate
	var sumAnalytic, sumZero, sumMeasured float64
	for i := 0; i < samples; i++ {
		// Pick a stream proportional to its rate.
		u := rng.Float64() * totalRate
		k := 0
		for ; k < len(streams)-1; k++ {
			if u < streams[k].rate {
				break
			}
			u -= streams[k].rate
		}
		st := streams[k]
		bank := pickBank(st)

		reqArr := reqNet.Inject(tm, st.core, bank, 1)
		rspArr := rspNet.Inject(tm, bank, st.core, 5)
		sumMeasured += (reqArr - tm) + (rspArr - tm)
		sumZero += reqNet.ZeroLoadLatency(st.core, bank, 1) + rspNet.ZeroLoadLatency(bank, st.core, 5)
		sumAnalytic += float64(topo.Distance(st.core, bank)) * env.Params.HopLatency * env.Params.RoundTrip
		tm += interval * rng.ExpFloat64()
	}
	n := float64(samples)
	return sumAnalytic / n, sumZero / n, sumMeasured / n
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
