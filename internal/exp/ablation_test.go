package exp

import (
	"testing"
)

func TestAblationTradesOnePassSuffices(t *testing.T) {
	opts := QuickOptions()
	opts.Mixes = 3
	rep, err := Run("ablation-trades", opts)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's design choice: one pass discovers most trades. Require
	// round 1 to capture the majority of the 8-round gain.
	one := rep.Scalars["gainFrac:1"]
	if one < 0.5 {
		t.Errorf("one trade round captures only %.1f%% of the gain", one*100)
	}
	// Gains are monotone in rounds.
	prev := 0.0
	for _, r := range []string{"gainFrac:1", "gainFrac:2", "gainFrac:4", "gainFrac:8"} {
		if rep.Scalars[r] < prev-1e-9 {
			t.Errorf("gain fraction decreased at %s", r)
		}
		prev = rep.Scalars[r]
	}
}

func TestAblationGMONWays(t *testing.T) {
	rep := quick(t, "ablation-gmon-ways")
	// More ways never dramatically worse; 64 ways (paper design point)
	// should be within 2x of 128 and clearly better than 16.
	if rep.Scalars["rms:64"] > rep.Scalars["rms:16"] {
		t.Errorf("64-way GMON (%.4f) worse than 16-way (%.4f)",
			rep.Scalars["rms:64"], rep.Scalars["rms:16"])
	}
	if rep.Scalars["rms:64"] > 2.5*rep.Scalars["rms:128"]+0.02 {
		t.Errorf("64-way GMON (%.4f) far worse than 128-way (%.4f)",
			rep.Scalars["rms:64"], rep.Scalars["rms:128"])
	}
}

func TestAblationChunkFinerIsBetter(t *testing.T) {
	opts := QuickOptions()
	opts.Mixes = 4
	rep, err := Run("ablation-chunk", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Whole-bank allocation is never better than fine-grained.
	if rep.Scalars["gmean:div1"] > rep.Scalars["gmean:div64"]+1e-9 {
		t.Errorf("whole-bank WS %.3f above fine-grained %.3f",
			rep.Scalars["gmean:div1"], rep.Scalars["gmean:div64"])
	}
}

func TestExtNUMAOrderingPreserved(t *testing.T) {
	opts := QuickOptions()
	opts.Mixes = 4
	rep, err := Run("ext-numa", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Distance-dependent memory latency does not change who wins.
	if rep.Scalars["gmean:CDCS"] <= rep.Scalars["gmean:Jigsaw+C"] {
		t.Errorf("NUMA-aware: CDCS %.3f not above Jigsaw+C %.3f",
			rep.Scalars["gmean:CDCS"], rep.Scalars["gmean:Jigsaw+C"])
	}
	if rep.Scalars["gmean:R-NUCA"] <= 1.0 {
		t.Errorf("NUMA-aware: R-NUCA %.3f below baseline", rep.Scalars["gmean:R-NUCA"])
	}
}

func TestExtNoCValidation(t *testing.T) {
	rep := quick(t, "ext-noc")
	// The event model validates Eq. 2: queueing on top of zero-load latency
	// is negligible for CDCS and modest even for S-NUCA at real loads.
	if q := rep.Scalars["queueing:CDCS"]; q > 1.0 {
		t.Errorf("CDCS queueing %.2f cycles, want ~0", q)
	}
	if rep.Scalars["queueing:S-NUCA"] <= rep.Scalars["queueing:CDCS"] {
		t.Error("S-NUCA should queue more than CDCS")
	}
	// Measured never below zero-load.
	for _, s := range []string{"CDCS", "S-NUCA"} {
		if rep.Scalars["measured:"+s] < rep.Scalars["zeroload:"+s]-1e-9 {
			t.Errorf("%s: measured below zero-load", s)
		}
	}
}

func TestExtPhasesAdaptationWins(t *testing.T) {
	rep := quick(t, "ext-phases")
	oracle := rep.Scalars["ipc:oracle(free moves)"]
	bg := rep.Scalars["ipc:adaptive+background"]
	bulk := rep.Scalars["ipc:adaptive+bulk"]
	static := rep.Scalars["ipc:static(no adaptation)"]
	if !(oracle >= bg && bg > bulk && bulk > static) {
		t.Errorf("ordering violated: oracle %.2f bg %.2f bulk %.2f static %.2f",
			oracle, bg, bulk, static)
	}
	if gain := rep.Scalars["adaptGain"]; gain < 1.05 {
		t.Errorf("adaptation gain %.3f too small for phased workloads", gain)
	}
}

func TestExtScalingAdvantageGrows(t *testing.T) {
	opts := QuickOptions()
	opts.Mixes = 3
	rep, err := Run("ext-scaling", opts)
	if err != nil {
		t.Fatal(err)
	}
	// CDCS beats Jigsaw+R at every size, and its S-NUCA-relative win grows
	// from the smallest to the largest measured chip.
	c := rep.Series["cdcs"]
	j := rep.Series["jigsaw"]
	for i := range c {
		if c[i] < j[i]-1e-9 {
			t.Errorf("size index %d: CDCS %.3f below Jigsaw+R %.3f", i, c[i], j[i])
		}
	}
	if c[len(c)-1] <= c[0] {
		t.Errorf("CDCS advantage did not grow with scale: %.3f -> %.3f", c[0], c[len(c)-1])
	}
}

func TestExtHWSimValidatesCapacityModel(t *testing.T) {
	rep := quick(t, "ext-hwsim")
	// Streaming and comfortably-fitting VCs validate tightly; VCs allocated
	// exactly their footprint lose some hits to set conflicts and partition
	// enforcement slack (the fully-associative analytic model is optimistic
	// right at the cliff), so the max tolerance is looser.
	if mean := rep.Scalars["meanErr"]; mean > 0.10 {
		t.Errorf("mean hit-ratio error %.3f, want <= 0.10", mean)
	}
	if max := rep.Scalars["maxErr"]; max > 0.25 {
		t.Errorf("max hit-ratio error %.3f, want <= 0.25", max)
	}
}

func TestExtMonitorClosedLoop(t *testing.T) {
	rep := quick(t, "ext-monitor")
	// Monitored curves are close to truth...
	if mae := rep.Scalars["curveMAE"]; mae > 0.12 {
		t.Errorf("monitored-curve MAE %.4f too large", mae)
	}
	// ...and allocations driven by them lose little: within 15% of the
	// true-curve allocation's off-chip cost.
	if rel := rep.Scalars["measuredOverTrue"]; rel > 1.15 || rel < 0.85 {
		t.Errorf("GMON-driven allocation cost %.3fx of true-curve allocation", rel)
	}
}
