// Package exp contains one runner per table and figure in the paper's
// evaluation (plus the §II-B case study and the §VI-C analyses). Each runner
// regenerates the corresponding rows or series — workload generation,
// parameter sweep, baselines and formatting — so the whole evaluation is
// reproducible from the command line (cmd/cdcs) and from benchmarks
// (bench_test.go). Absolute numbers differ from the paper (our substrate is
// an analytic simulator, not zsim on SPEC); the shapes and orderings are the
// reproduction targets, recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Options configures an experiment run.
type Options struct {
	// Mixes is the number of workload mixes per point (the paper uses 50).
	Mixes int
	// Seed anchors all randomness.
	Seed int64
	// Quick trims sweeps for benchmark/CI use.
	Quick bool
}

// DefaultOptions mirrors the paper's methodology.
func DefaultOptions() Options {
	return Options{Mixes: 50, Seed: 1}
}

// QuickOptions is a scaled-down configuration for benchmarks and smoke runs.
func QuickOptions() Options {
	return Options{Mixes: 8, Seed: 1, Quick: true}
}

// Report is an experiment's output: formatted lines for humans plus raw
// series and scalars for tests and benchmarks.
type Report struct {
	ID      string
	Title   string
	Lines   []string
	Series  map[string][]float64
	Scalars map[string]float64
}

// newReport initializes an empty report.
func newReport(id, title string) *Report {
	return &Report{
		ID: id, Title: title,
		Series:  map[string][]float64{},
		Scalars: map[string]float64{},
	}
}

// addf appends a formatted line.
func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner produces a report.
type Runner func(Options) (*Report, error)

// registry maps experiment ids to runners, populated by init() calls in the
// per-experiment files.
var registry = map[string]Runner{}

// order preserves a stable listing order.
var order []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("exp: duplicate experiment id " + id)
	}
	registry[id] = r
	order = append(order, id)
}

// Run executes the experiment with the given id.
func Run(id string, opts Options) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(opts)
}

// IDs lists registered experiments in registration order.
func IDs() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}
