// Package exp contains one runner per table and figure in the paper's
// evaluation (plus the §II-B case study and the §VI-C analyses). Each runner
// regenerates the corresponding rows or series — workload generation,
// parameter sweep, baselines and formatting — so the whole evaluation is
// reproducible from the command line (cmd/cdcs) and from benchmarks
// (bench_test.go). Absolute numbers differ from the paper (our substrate is
// an analytic simulator, not zsim on SPEC); the shapes and orderings are the
// reproduction targets, recorded in EXPERIMENTS.md.
package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cdcs/internal/sim"
)

// Options configures an experiment run.
type Options struct {
	// Mixes is the number of workload mixes per point (the paper uses 50).
	Mixes int
	// Seed anchors all randomness.
	Seed int64
	// Quick trims sweeps for benchmark/CI use.
	Quick bool
	// Parallelism caps concurrent simulation jobs; 0 means GOMAXPROCS.
	// Results are bit-identical for any value (see sim.Engine).
	Parallelism int
	// Context cancels a long run early; nil means background.
	Context context.Context
	// Progress, when non-nil, receives (done, total) after each completed
	// job of the experiment's current fan-out stage. Experiments with
	// several stages restart the count per stage.
	Progress func(done, total int)
}

// DefaultOptions mirrors the paper's methodology.
func DefaultOptions() Options {
	return Options{Mixes: 50, Seed: 1}
}

// QuickOptions is a scaled-down configuration for benchmarks and smoke runs.
func QuickOptions() Options {
	return Options{Mixes: 8, Seed: 1, Quick: true}
}

// engine builds the sim.Engine all runners execute on.
func (o Options) engine() sim.Engine {
	return sim.Engine{Parallelism: o.Parallelism, Ctx: o.Context, OnProgress: o.Progress}
}

// ctx returns the run's context (never nil).
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Report is an experiment's output: formatted lines for humans plus raw
// series and scalars for tests and benchmarks.
type Report struct {
	ID      string
	Title   string
	Lines   []string
	Series  map[string][]float64
	Scalars map[string]float64
}

// newReport initializes an empty report.
func newReport(id, title string) *Report {
	return &Report{
		ID: id, Title: title,
		Series:  map[string][]float64{},
		Scalars: map[string]float64{},
	}
}

// addf appends a formatted line.
func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// finite filters out NaN slots (used by fan-outs whose per-job results are
// conditionally valid, preserving job order).
func finite(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x == x { // not NaN
			out = append(out, x)
		}
	}
	return out
}

// Runner produces a report.
type Runner func(Options) (*Report, error)

// registry maps experiment ids to runners, populated by init() calls in the
// per-experiment files.
var registry = map[string]Runner{}

// order preserves a stable listing order.
var order []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("exp: duplicate experiment id " + id)
	}
	registry[id] = r
	order = append(order, id)
}

// Run executes the experiment with the given id.
func Run(id string, opts Options) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(opts)
}

// IDs lists registered experiments sorted alphabetically. (Registration
// order follows Go's per-file init sequence, which is a compilation detail;
// sorting keeps `cdcs -list`, `cdcs -all` and error messages stable and
// identical.)
func IDs() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}
