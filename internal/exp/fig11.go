package exp

import (
	"math/rand"
	"strconv"

	"cdcs/internal/core"
	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/stats"
	"cdcs/internal/workload"
)

func init() {
	register("fig11", runFig11)
	register("fig12", runFig12)
	register("fig13", runFig13)
	register("fig14", runFig14)
}

// allSchemes returns the five evaluation columns.
func allSchemes() []policy.Scheme {
	return []policy.Scheme{
		policy.SchemeSNUCA, policy.SchemeRNUCA,
		policy.SchemeJigsawC, policy.SchemeJigsawR, policy.SchemeCDCS,
	}
}

// stCampaign runs nApps-sized single-threaded mixes under all schemes on
// the options' engine.
func stCampaign(opts Options, nApps int) ([]sim.CampaignResult, error) {
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	return opts.engine().RunCampaign(env, allSchemes(), opts.Mixes, opts.Seed, func(rng *rand.Rand) *workload.Mix {
		return workload.RandomST(rng, cpu, nApps)
	})
}

// reportCampaign formats a campaign the way Fig. 11 reports it: WS
// distribution stats, latency ratios vs CDCS, traffic and energy breakdowns.
func reportCampaign(rep *Report, res []sim.CampaignResult) {
	var cdcs sim.CampaignResult
	for _, r := range res {
		if r.Scheme == "CDCS" {
			cdcs = r
		}
	}
	rep.addf("%-10s %7s %7s | %9s %9s | %7s %7s %7s | %8s",
		"scheme", "gmeanWS", "maxWS", "on-chip", "off-chip", "L2LLC", "LLCMem", "other", "pJ/instr")
	for _, r := range res {
		onRel := ratio(r.OnChipPKI, cdcs.OnChipPKI)
		offRel := ratio(r.OffChipPKI, cdcs.OffChipPKI)
		rep.addf("%-10s %7.3f %7.3f | %8.2fx %8.2fx | %7.2f %7.2f %7.2f | %8.0f",
			r.Scheme, r.Gmean, r.Max, onRel, offRel,
			r.Traffic.L2LLC, r.Traffic.LLCMem, r.Traffic.Other, r.Energy.Total())
		rep.Series["ws:"+r.Scheme] = stats.Sorted(r.WS)
		rep.Scalars["gmean:"+r.Scheme] = r.Gmean
		rep.Scalars["max:"+r.Scheme] = r.Max
		rep.Scalars["onchip:"+r.Scheme] = r.OnChipPKI
		rep.Scalars["offchip:"+r.Scheme] = r.OffChipPKI
		rep.Scalars["traffic:"+r.Scheme] = r.Traffic.Total()
		rep.Scalars["energy:"+r.Scheme] = r.Energy.Total()
		rep.Scalars["energyStatic:"+r.Scheme] = r.Energy.Static
		rep.Scalars["energyNet:"+r.Scheme] = r.Energy.Net
		rep.Scalars["energyMem:"+r.Scheme] = r.Energy.Mem
	}
}

// runFig11 reproduces Fig. 11: 50 mixes of 64 SPEC-like apps under the five
// schemes — weighted-speedup distribution (a), on-chip latency (b), off-chip
// latency (c), traffic (d), energy (e).
func runFig11(opts Options) (*Report, error) {
	rep := newReport("fig11", "64-app mixes: speedups, latency, traffic, energy (Fig. 11)")
	res, err := stCampaign(opts, 64)
	if err != nil {
		return nil, err
	}
	reportCampaign(rep, res)
	return rep, nil
}

// runFig12 reproduces the factor analysis of Fig. 12: Jigsaw+R plus each
// CDCS technique alone (+L, +T, +D) and all together (+LTD = CDCS), on 64-
// and 4-app mixes.
func runFig12(opts Options) (*Report, error) {
	rep := newReport("fig12", "Factor analysis: +L, +T, +D over Jigsaw+R (Fig. 12)")
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()

	variant := func(label string, f core.Features) policy.Scheme {
		threads := policy.Random
		if f.ThreadPlace {
			threads = policy.Placed
		}
		return policy.Scheme{Kind: policy.CDCS, Threads: threads, Feats: f, Label: label}
	}
	schemes := []policy.Scheme{
		policy.SchemeSNUCA,
		policy.SchemeJigsawR,
		variant("+L", core.Features{LatencyAware: true}),
		variant("+T", core.Features{ThreadPlace: true}),
		variant("+D", core.Features{RefinedTrades: true}),
		variant("+LTD", core.AllCDCS()),
	}
	for _, nApps := range []int{64, 4} {
		res, err := opts.engine().RunCampaign(env, schemes, opts.Mixes, opts.Seed, func(rng *rand.Rand) *workload.Mix {
			return workload.RandomST(rng, cpu, nApps)
		})
		if err != nil {
			return nil, err
		}
		rep.addf("%d apps:", nApps)
		for _, r := range res[1:] { // skip the S-NUCA baseline row
			rep.addf("  %-8s gmean WS %.3f", r.Scheme, r.Gmean)
			rep.Scalars[keyN("gmean", r.Scheme, nApps)] = r.Gmean
		}
	}
	return rep, nil
}

// runFig13 reproduces Fig. 13: gmean weighted speedups as the chip runs
// 1-64 apps (under-committed systems).
func runFig13(opts Options) (*Report, error) {
	rep := newReport("fig13", "Under-committed systems: 1-64 apps (Fig. 13)")
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	if opts.Quick {
		counts = []int{2, 4, 16, 64}
	}
	rep.addf("%6s %8s %8s %8s %8s %8s", "apps", "S-NUCA", "R-NUCA", "Jig+C", "Jig+R", "CDCS")
	for _, n := range counts {
		res, err := stCampaign(opts, n)
		if err != nil {
			return nil, err
		}
		row := make(map[string]float64, len(res))
		for _, r := range res {
			row[r.Scheme] = r.Gmean
			rep.Scalars[keyN("gmean", r.Scheme, n)] = r.Gmean
			rep.Series["gmean:"+r.Scheme] = append(rep.Series["gmean:"+r.Scheme], r.Gmean)
		}
		rep.addf("%6d %8.3f %8.3f %8.3f %8.3f %8.3f",
			n, row["S-NUCA"], row["R-NUCA"], row["Jigsaw+C"], row["Jigsaw+R"], row["CDCS"])
	}
	return rep, nil
}

// runFig14 reproduces Fig. 14: the 4-app campaign in distribution + traffic
// detail (where latency-aware allocation matters most).
func runFig14(opts Options) (*Report, error) {
	rep := newReport("fig14", "4-app mixes: speedup distribution and traffic (Fig. 14)")
	res, err := stCampaign(opts, 4)
	if err != nil {
		return nil, err
	}
	reportCampaign(rep, res)
	return rep, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func keyN(metric, scheme string, n int) string {
	return metric + ":" + scheme + ":" + strconv.Itoa(n)
}
