package exp

import (
	"fmt"
	"maps"
	"math/rand"
	"slices"

	"cdcs/internal/cachesim"
	"cdcs/internal/core"
	"cdcs/internal/curves"
	"cdcs/internal/mesh"
	"cdcs/internal/place"
	"cdcs/internal/policy"
	"cdcs/internal/sim"
	"cdcs/internal/trace"
	"cdcs/internal/vtb"
	"cdcs/internal/workload"
)

func init() {
	register("ext-hwsim", runExtHWSim)
}

// runExtHWSim validates the analytic capacity model against array-level
// simulation: a CDCS reconfiguration is computed for a scaled chip, its
// assignment is installed as VTB descriptors and Vantage partition targets
// on real set-associative banks, synthetic traces with each VC's true
// stack-distance profile drive the LLC, and measured per-VC hit ratios are
// compared against the model's 1 − MissRatio(allocation) prediction. This is
// the end-to-end check that partitioned banks ganged by descriptors behave
// like one cache of their aggregate size (§III).
func runExtHWSim(opts Options) (*Report, error) {
	rep := newReport("ext-hwsim", "Array-level validation of the capacity model (§III)")

	// Scaled chip: 4×4 tiles, 2048-line banks (the full chip scaled 1/16;
	// curve domains scale with it).
	chip := place.Chip{Topo: mesh.New(4, 4), BankLines: 2048}
	env := policy.DefaultEnv()

	mix := scaledMix()
	cfg := core.Config{Chip: chip, Model: env.Model, Feats: core.AllCDCS()}
	res, err := core.Reconfigure(cfg, mix, nil)
	if err != nil {
		return nil, err
	}

	// 2048-line banks: 128 sets × 16 ways.
	llc := sim.NewMoveLLC(chip.Banks(), 128, 16, len(mix.VCs))
	gens := make([]*trace.Generator, len(mix.VCs))
	weights := make([]float64, len(mix.VCs))
	rng := rand.New(rand.NewSource(opts.Seed))
	for v := range mix.VCs {
		alloc := map[int]float64{}
		av := &res.Assignment[v]
		for _, b := range av.Banks() {
			alloc[int(b)] = av.Get(b)
		}
		if len(alloc) == 0 {
			// Zero-capacity VCs still need a home bank for lookups: the
			// lowest-id accessor's local bank, with a zero partition target
			// (deterministic pick; map iteration order is random).
			if ts := slices.Sorted(maps.Keys(mix.VCs[v].Accessors)); len(ts) > 0 {
				alloc[int(res.ThreadCore[ts[0]])] = 1
			}
		}
		d, err := vtb.BuildDescriptor(vtb.DefaultBuckets, alloc, partIDs(alloc, v))
		if err != nil {
			return nil, fmt.Errorf("VC %d: %w", v, err)
		}
		if err := llc.Install(v, d, res.VCSizes[v]); err != nil {
			return nil, err
		}
		gens[v] = trace.NewGenerator(mix.VCs[v].MissRatio, cachesim.Addr(v)<<40, rng)
		weights[v] = mix.VCs[v].TotalAPKI()
	}

	total := 900000
	warmup := 400000
	if opts.Quick {
		total, warmup = 450000, 200000
	}
	hits := make([]int64, len(mix.VCs))
	accs := make([]int64, len(mix.VCs))
	wsum := 0.0
	for _, w := range weights {
		wsum += w
	}
	ctx := opts.ctx()
	for i := 0; i < total; i++ {
		// The trace replay is inherently sequential (one stateful LLC, one
		// rng stream) but long; poll for cancellation periodically.
		if i&0xffff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		u := rng.Float64() * wsum
		v := 0
		for ; v < len(weights)-1; v++ {
			if u < weights[v] {
				break
			}
			u -= weights[v]
		}
		hit, err := llc.Access(v, gens[v].Next())
		if err != nil {
			return nil, err
		}
		if i >= warmup {
			accs[v]++
			if hit {
				hits[v]++
			}
		}
	}

	rep.addf("%6s %10s %12s %12s %10s", "VC", "alloc", "predicted", "measured", "|err|")
	var maxErr, meanErr float64
	n := 0
	for v := range mix.VCs {
		if accs[v] < 1000 {
			continue
		}
		pred := 1 - mix.VCs[v].MissRatio.Eval(res.VCSizes[v])
		meas := float64(hits[v]) / float64(accs[v])
		errv := meas - pred
		if errv < 0 {
			errv = -errv
		}
		rep.addf("%6d %10.0f %12.3f %12.3f %10.3f", v, res.VCSizes[v], pred, meas, errv)
		meanErr += errv
		if errv > maxErr {
			maxErr = errv
		}
		n++
	}
	if n > 0 {
		meanErr /= float64(n)
	}
	rep.Scalars["meanErr"] = meanErr
	rep.Scalars["maxErr"] = maxErr
	rep.addf("hit-ratio error vs analytic model: mean %.3f, max %.3f", meanErr, maxErr)
	return rep, nil
}

// scaledMix builds a 1/16-scale heterogeneous mix: two fitting apps, two
// streaming apps, and two small-footprint apps on 16 cores.
func scaledMix() *workload.Mix {
	scale := 1.0 / 16
	mb := func(m float64) float64 { return m * workload.LinesPerMB * scale }
	cliffCurve := func(high, low, fp float64) curves.Curve {
		return curves.New(
			[]float64{0, 0.6 * fp, 0.95 * fp, fp, 32768},
			[]float64{high, high * 0.9, high * 0.5, low, low})
	}
	fitting := &workload.Profile{Name: "fit", APKI: 60, CPIBase: 0.75, MLP: 1.5,
		MissRatio: cliffCurve(0.9, 0.03, mb(2.5))}
	streaming := &workload.Profile{Name: "str", APKI: 25, CPIBase: 0.8, MLP: 3,
		MissRatio: curves.Constant(0.96, 32768)}
	small := &workload.Profile{Name: "sml", APKI: 15, CPIBase: 0.8, MLP: 2,
		MissRatio: cliffCurve(0.7, 0.05, mb(0.5))}
	m := workload.NewMix()
	m.AddST(fitting).AddST(fitting)
	m.AddST(streaming).AddST(streaming)
	m.AddST(small).AddST(small)
	return m
}

// partIDs maps each bank in an allocation to the VC's partition id (the VC
// id itself: MoveLLC keys partitions by VC).
func partIDs(alloc map[int]float64, vc int) map[int]int {
	out := make(map[int]int, len(alloc))
	for b := range alloc {
		out[b] = vc
	}
	return out
}
