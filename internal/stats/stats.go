// Package stats provides the summary statistics the paper reports: weighted
// speedups, geometric means across workload mixes, confidence intervals, and
// sorted inverse-CDF series for distribution plots (Fig. 11a style).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values, or 0 for an empty
// slice. It panics on non-positive inputs: speedups are strictly positive by
// construction, so a non-positive value is a bug upstream.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 when
// fewer than two values are supplied.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// using the normal approximation (the paper runs enough mixes for CLT to
// apply; it reports <=1% CIs).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// WeightedSpeedup computes the paper's metric: the mean of per-app IPC ratios
// against a baseline run of the same mix. The slices must be parallel
// (ipc[i] and base[i] describe the same app); it panics otherwise.
func WeightedSpeedup(ipc, base []float64) float64 {
	if len(ipc) != len(base) {
		panic("stats: WeightedSpeedup slice length mismatch")
	}
	if len(ipc) == 0 {
		return 0
	}
	sum := 0.0
	for i := range ipc {
		sum += ipc[i] / base[i]
	}
	return sum / float64(len(ipc))
}

// Sorted returns a descending-sorted copy: the inverse-CDF ordering used in
// the paper's distribution plots (workloads sorted by improvement).
func Sorted(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Percentile returns the p-th percentile (0..100) by linear interpolation on
// the sorted data, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// HarmonicMean returns the harmonic mean of positive values, or 0 for an
// empty slice.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: HarmonicMean of non-positive value")
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}
