package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !eq(got, c.want) {
			t.Errorf("Mean(%v)=%g, want %g", c.xs, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !eq(got, 2) {
		t.Errorf("GeoMean(1,4)=%g, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !eq(got, 2) {
		t.Errorf("GeoMean(2,2,2)=%g, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil)=%g, want 0", got)
	}
	// GeoMean <= Mean (AM-GM).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		xs := make([]float64, 10)
		for j := range xs {
			xs[j] = rng.Float64()*10 + 0.1
		}
		if GeoMean(xs) > Mean(xs)+1e-12 {
			t.Fatalf("AM-GM violated: gm=%g am=%g", GeoMean(xs), Mean(xs))
		}
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeoMean(0) did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestStdDevAndCI(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !within(got, 2.138, 0.01) {
		t.Errorf("StdDev=%g, want ~2.138", got)
	}
	if StdDev([]float64{3}) != 0 || StdDev(nil) != 0 {
		t.Error("StdDev of <2 samples should be 0")
	}
	// CI shrinks with sqrt(n).
	xs := make([]float64, 100)
	rng := rand.New(rand.NewSource(2))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	ci100 := CI95(xs)
	ci25 := CI95(xs[:25])
	if ci100 >= ci25 {
		t.Errorf("CI95 did not shrink with n: %g (n=100) vs %g (n=25)", ci100, ci25)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	// Two apps: one 2x faster, one unchanged -> WS 1.5.
	ws := WeightedSpeedup([]float64{2, 1}, []float64{1, 1})
	if !eq(ws, 1.5) {
		t.Errorf("WS=%g, want 1.5", ws)
	}
	// Identity.
	if ws := WeightedSpeedup([]float64{3, 4}, []float64{3, 4}); !eq(ws, 1) {
		t.Errorf("identity WS=%g", ws)
	}
	if ws := WeightedSpeedup(nil, nil); ws != 0 {
		t.Errorf("empty WS=%g", ws)
	}
}

func TestWeightedSpeedupPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched WS did not panic")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2})
}

func TestSorted(t *testing.T) {
	in := []float64{1, 3, 2}
	out := Sorted(in)
	if out[0] != 3 || out[1] != 2 || out[2] != 1 {
		t.Errorf("Sorted=%v", out)
	}
	// Input untouched.
	if in[0] != 1 || in[2] != 2 {
		t.Errorf("Sorted mutated input: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {105, 50},
		{12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !eq(got, c.want) {
			t.Errorf("Percentile(%g)=%g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max wrong: %g/%g", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1}); !eq(got, 1) {
		t.Errorf("HM=%g", got)
	}
	if got := HarmonicMean([]float64{2, 6, 6}); !within(got, 3.6, 1e-12) {
		t.Errorf("HM(2,6,6)=%g, want 3.6", got)
	}
	// HM <= GM <= AM chain.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		xs := make([]float64, 8)
		for j := range xs {
			xs[j] = rng.Float64()*5 + 0.1
		}
		hm, gm, am := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		if hm > gm+1e-12 || gm > am+1e-12 {
			t.Fatalf("mean chain violated: hm=%g gm=%g am=%g", hm, gm, am)
		}
	}
}

func eq(a, b float64) bool { return within(a, b, 1e-12) }

func within(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
