// Package rnuca implements R-NUCA's page-level mechanisms (Hardavellas et
// al., ISCA'09; §II-A of the CDCS paper): OS page classification into
// private data, shared data and instructions, placement of each class
// (local bank / chip-wide interleave / rotational interleaving among a
// 4-bank cluster), and the reclassification state machine that re-homes a
// page when a second core touches it.
//
// The analytic R-NUCA policy in internal/policy models the steady-state
// capacity effects of these mechanisms; this package provides the
// mechanism-level substrate itself, so the classification behaviour the
// baseline depends on is implemented and tested rather than assumed.
package rnuca

import (
	"fmt"

	"cdcs/internal/cachesim"
	"cdcs/internal/mesh"
)

// Class is a page's R-NUCA classification.
type Class uint8

const (
	// Unknown: never touched.
	Unknown Class = iota
	// PrivateData: touched by exactly one core; homed at its local bank.
	PrivateData
	// SharedData: touched by multiple cores; interleaved chip-wide.
	SharedData
	// Instruction: code pages; rotationally interleaved in a 4-bank cluster.
	Instruction
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Unknown:
		return "unknown"
	case PrivateData:
		return "private"
	case SharedData:
		return "shared"
	case Instruction:
		return "instruction"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Page identifies a virtual page (address >> pageShift).
type Page uint64

// pageShift for 4KB pages of 64B lines: 6 line-offset bits.
const pageShift = 6

// PageOf returns the page containing a line address.
func PageOf(addr cachesim.Addr) Page {
	return Page(addr >> pageShift)
}

// Stats counts classification events.
type Stats struct {
	// FirstTouches is the number of pages classified on first access.
	FirstTouches int64
	// Reclassifications counts private→shared transitions.
	Reclassifications int64
	// Shootdowns counts the TLB shootdowns those transitions require (one
	// per reclassification in this model; the expensive part of R-NUCA's
	// re-homing that CDCS's two-level translation avoids, §III).
	Shootdowns int64
}

// pageInfo is the OS-visible state of one page.
type pageInfo struct {
	class Class
	owner int // first-touch core for private pages
}

// Runtime is the R-NUCA OS layer: page table classification plus placement.
type Runtime struct {
	topo *mesh.Topology
	// table maps pages to classification state.
	table map[Page]*pageInfo
	// clusters[c] is core c's rotational-interleaving cluster (itself plus
	// its nearest neighbours, 4 banks where the mesh allows).
	clusters [][]mesh.Tile

	// Stats is the exported event accounting.
	Stats Stats
}

// New builds an R-NUCA runtime over a mesh.
func New(topo *mesh.Topology) *Runtime {
	r := &Runtime{
		topo:     topo,
		table:    map[Page]*pageInfo{},
		clusters: make([][]mesh.Tile, topo.Tiles()),
	}
	for c := 0; c < topo.Tiles(); c++ {
		// Rotational interleaving: the core's bank plus its closest
		// neighbours form the 4-bank instruction cluster.
		order := topo.ByDistance(mesh.Tile(c))
		n := 4
		if len(order) < n {
			n = len(order)
		}
		r.clusters[c] = append([]mesh.Tile(nil), order[:n]...)
	}
	return r
}

// Access classifies (or reclassifies) the page of addr for an access by
// core, and returns the bank the line maps to. isInstr marks instruction
// fetches.
func (r *Runtime) Access(core int, addr cachesim.Addr, isInstr bool) mesh.Tile {
	page := PageOf(addr)
	info, ok := r.table[page]
	if !ok {
		info = &pageInfo{owner: core}
		if isInstr {
			info.class = Instruction
		} else {
			info.class = PrivateData
		}
		r.table[page] = info
		r.Stats.FirstTouches++
	} else if info.class == PrivateData && core != info.owner && !isInstr {
		// Second core touches a private page: reclassify to shared. The
		// page's lines re-home from the owner's bank to the chip-wide
		// interleave, which requires a TLB shootdown and invalidations —
		// R-NUCA's expensive remapping path.
		info.class = SharedData
		r.Stats.Reclassifications++
		r.Stats.Shootdowns++
	}
	return r.home(core, addr, info)
}

// home places a line according to its page's class.
func (r *Runtime) home(core int, addr cachesim.Addr, info *pageInfo) mesh.Tile {
	switch info.class {
	case PrivateData:
		// Private data lives in the owner's local bank.
		return mesh.Tile(info.owner)
	case SharedData:
		// Shared data interleaves chip-wide by line address.
		return mesh.Tile(hash64(uint64(addr)) % uint64(r.topo.Tiles()))
	case Instruction:
		// Instructions rotate within the requesting core's cluster, so hot
		// code is always within ~1 hop without chip-wide replication.
		cl := r.clusters[core]
		return cl[hash64(uint64(addr))%uint64(len(cl))]
	}
	return mesh.Tile(core)
}

// ClassOf returns a page's current class (Unknown if untouched).
func (r *Runtime) ClassOf(page Page) Class {
	if info, ok := r.table[page]; ok {
		return info.class
	}
	return Unknown
}

// OwnerOf returns the first-touch core of a page (-1 if untouched).
func (r *Runtime) OwnerOf(page Page) int {
	if info, ok := r.table[page]; ok {
		return info.owner
	}
	return -1
}

// Pages returns the number of classified pages.
func (r *Runtime) Pages() int { return len(r.table) }

// ClassCounts tallies pages per class.
func (r *Runtime) ClassCounts() map[Class]int {
	out := map[Class]int{}
	for _, info := range r.table {
		out[info.class]++
	}
	return out
}

// Cluster returns core's rotational-interleaving banks.
func (r *Runtime) Cluster(core int) []mesh.Tile {
	return r.clusters[core]
}

// hash64 is splitmix64 (shared mixing with the rest of the repo).
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
