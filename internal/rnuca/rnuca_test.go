package rnuca

import (
	"math/rand"
	"testing"

	"cdcs/internal/cachesim"
	"cdcs/internal/mesh"
)

func newRT() *Runtime {
	return New(mesh.New(8, 8))
}

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(63) != 0 || PageOf(64) != 1 {
		t.Error("PageOf boundaries wrong (64 lines per page)")
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Unknown: "unknown", PrivateData: "private",
		SharedData: "shared", Instruction: "instruction",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String()=%q, want %q", c, c.String(), s)
		}
	}
}

func TestFirstTouchIsPrivateAndLocal(t *testing.T) {
	r := newRT()
	bank := r.Access(13, 1000, false)
	if bank != mesh.Tile(13) {
		t.Errorf("private page homed at %d, want owner 13", bank)
	}
	if cl := r.ClassOf(PageOf(1000)); cl != PrivateData {
		t.Errorf("class %v, want private", cl)
	}
	if r.OwnerOf(PageOf(1000)) != 13 {
		t.Error("owner wrong")
	}
	if r.Stats.FirstTouches != 1 {
		t.Errorf("first touches %d", r.Stats.FirstTouches)
	}
}

func TestOwnerRepeatedAccessStaysPrivate(t *testing.T) {
	r := newRT()
	for i := 0; i < 100; i++ {
		r.Access(5, cachesim.Addr(i), false) // all in pages 0-1
	}
	if r.Stats.Reclassifications != 0 {
		t.Error("owner-only accesses caused reclassification")
	}
	if cl := r.ClassOf(0); cl != PrivateData {
		t.Errorf("class %v", cl)
	}
}

func TestSecondCoreReclassifiesToShared(t *testing.T) {
	r := newRT()
	r.Access(3, 500, false)
	bank := r.Access(9, 500, false)
	if cl := r.ClassOf(PageOf(500)); cl != SharedData {
		t.Errorf("class %v after second core, want shared", cl)
	}
	if r.Stats.Reclassifications != 1 || r.Stats.Shootdowns != 1 {
		t.Errorf("reclass/shootdown counts: %+v", r.Stats)
	}
	_ = bank
	// Further accesses by anyone keep it shared (no more shootdowns).
	r.Access(3, 500, false)
	r.Access(30, 500, false)
	if r.Stats.Shootdowns != 1 {
		t.Error("extra shootdowns on already-shared page")
	}
}

func TestSharedPagesInterleaveChipWide(t *testing.T) {
	r := newRT()
	// Make one page shared, then check its lines spread over many banks.
	r.Access(0, 0, false)
	r.Access(1, 0, false)
	banks := map[mesh.Tile]bool{}
	for i := 0; i < 64; i++ {
		banks[r.Access(0, cachesim.Addr(i), false)] = true
	}
	if len(banks) < 24 {
		t.Errorf("shared page lines hit only %d banks, want wide spread", len(banks))
	}
}

func TestInstructionPagesUseCluster(t *testing.T) {
	r := newRT()
	core := 27 // interior tile
	cluster := r.Cluster(core)
	if len(cluster) != 4 {
		t.Fatalf("cluster size %d, want 4", len(cluster))
	}
	inCluster := map[mesh.Tile]bool{}
	for _, b := range cluster {
		inCluster[b] = true
	}
	for i := 0; i < 256; i++ {
		bank := r.Access(core, cachesim.Addr(1<<20+i), true)
		if !inCluster[bank] {
			t.Fatalf("instruction line homed at %d outside cluster %v", bank, cluster)
		}
	}
	// Every cluster bank is within 1 hop of the core (rotational
	// interleaving keeps code close).
	topo := mesh.New(8, 8)
	for _, b := range cluster {
		if topo.Distance(mesh.Tile(core), b) > 1 {
			t.Errorf("cluster bank %d is %d hops away", b, topo.Distance(mesh.Tile(core), b))
		}
	}
}

func TestInstructionPagesNotReclassified(t *testing.T) {
	r := newRT()
	r.Access(0, 1<<20, true)
	r.Access(5, 1<<20, true)
	if cl := r.ClassOf(PageOf(1 << 20)); cl != Instruction {
		t.Errorf("instruction page became %v", cl)
	}
	if r.Stats.Reclassifications != 0 {
		t.Error("instruction sharing caused reclassification")
	}
}

func TestClassCounts(t *testing.T) {
	r := newRT()
	r.Access(0, 0, false)    // private page 0
	r.Access(1, 64, false)   // private page 1
	r.Access(2, 64, false)   // page 1 -> shared
	r.Access(0, 1<<20, true) // instruction page
	counts := r.ClassCounts()
	if counts[PrivateData] != 1 || counts[SharedData] != 1 || counts[Instruction] != 1 {
		t.Errorf("class counts %v", counts)
	}
	if r.Pages() != 3 {
		t.Errorf("pages %d, want 3", r.Pages())
	}
}

func TestUnknownPage(t *testing.T) {
	r := newRT()
	if r.ClassOf(999) != Unknown || r.OwnerOf(999) != -1 {
		t.Error("untouched page not Unknown")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	r1, r2 := newRT(), newRT()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		core := rng.Intn(64)
		addr := cachesim.Addr(rng.Intn(1 << 16))
		isInstr := rng.Intn(8) == 0
		if r1.Access(core, addr, isInstr) != r2.Access(core, addr, isInstr) {
			t.Fatalf("placement diverged at op %d", i)
		}
	}
}

func TestPrivateWorkloadMostlyLocal(t *testing.T) {
	// The §II-B claim: with per-thread private working sets, nearly all
	// R-NUCA accesses are local-bank hits in placement terms.
	r := newRT()
	local, total := 0, 0
	for core := 0; core < 64; core++ {
		base := cachesim.Addr(core) << 20
		for i := 0; i < 500; i++ {
			bank := r.Access(core, base+cachesim.Addr(i), false)
			if bank == mesh.Tile(core) {
				local++
			}
			total++
		}
	}
	if frac := float64(local) / float64(total); frac < 0.99 {
		t.Errorf("private accesses local fraction %.3f, want ~1", frac)
	}
}

func TestCornerCoreClusterClamped(t *testing.T) {
	// Corner tiles still get a 4-bank cluster (nearest neighbours).
	r := newRT()
	cl := r.Cluster(0)
	if len(cl) != 4 {
		t.Fatalf("corner cluster size %d", len(cl))
	}
	topo := mesh.New(8, 8)
	for _, b := range cl {
		if topo.Distance(0, b) > 2 {
			t.Errorf("corner cluster bank %d too far (%d hops)", b, topo.Distance(0, b))
		}
	}
}
