package sim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"cdcs/internal/policy"
	"cdcs/internal/workload"
)

// campaignCase is one (mix generator, schemes) campaign configuration used
// by the determinism tests.
type campaignCase struct {
	name    string
	schemes []policy.Scheme
	genMix  func(*rand.Rand) *workload.Mix
}

func campaignCases() []campaignCase {
	cpu := workload.SPECCPU()
	omp := workload.SPECOMP()
	return []campaignCase{
		{
			name:    "ST-64apps",
			schemes: []policy.Scheme{policy.SchemeSNUCA, policy.SchemeJigsawR, policy.SchemeCDCS},
			genMix: func(rng *rand.Rand) *workload.Mix {
				return workload.RandomST(rng, cpu, 64)
			},
		},
		{
			name:    "ST-4apps",
			schemes: []policy.Scheme{policy.SchemeSNUCA, policy.SchemeRNUCA, policy.SchemeCDCS},
			genMix: func(rng *rand.Rand) *workload.Mix {
				return workload.RandomST(rng, cpu, 4)
			},
		},
		{
			name:    "MT-8apps",
			schemes: []policy.Scheme{policy.SchemeSNUCA, policy.SchemeJigsawC, policy.SchemeCDCS},
			genMix: func(rng *rand.Rand) *workload.Mix {
				return workload.RandomMT(rng, omp, 8)
			},
		},
	}
}

// TestEngineCampaignDeterminism asserts that campaign results are
// bit-identical across worker counts, for both ST and MT mixes: same WS
// vectors, same Traffic/Energy aggregates, same everything.
func TestEngineCampaignDeterminism(t *testing.T) {
	env := policy.DefaultEnv()
	const nMixes, seed = 4, 1
	for _, tc := range campaignCases() {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := Engine{Parallelism: 1}.RunCampaign(env, tc.schemes, nMixes, seed, tc.genMix)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				par, err := Engine{Parallelism: workers}.RunCampaign(env, tc.schemes, nMixes, seed, tc.genMix)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("Parallelism=%d diverges from sequential:\nseq: %+v\npar: %+v", workers, seq, par)
				}
			}
		})
	}
}

// TestEngineMatchesSeedStream asserts the engine reproduces the historical
// sequential implementation's exact seed streams: mix m from
// baseSeed + m*7919, run (m, i) from baseSeed + m*7919 + i + 1.
func TestEngineMatchesSeedStream(t *testing.T) {
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	schemes := []policy.Scheme{policy.SchemeSNUCA, policy.SchemeJigsawR}
	const nMixes, baseSeed = 3, 42

	got, err := Engine{Parallelism: 4}.RunCampaign(env, schemes, nMixes, baseSeed, func(rng *rand.Rand) *workload.Mix {
		return workload.RandomST(rng, cpu, 16)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Hand-rolled sequential reference with explicit seeds.
	for m := 0; m < nMixes; m++ {
		mix := workload.RandomST(rand.New(rand.NewSource(baseSeed+int64(m)*7919)), cpu, 16)
		var base MixResult
		for i, s := range schemes {
			res, err := RunMix(env, s, mix, rand.New(rand.NewSource(baseSeed+int64(m)*7919+int64(i)+1)))
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				base = res
			}
			if ws := WeightedSpeedup(res, base); got[i].WS[m] != ws {
				t.Errorf("mix %d scheme %s: WS %v != reference %v", m, s.Name(), got[i].WS[m], ws)
			}
		}
	}
}

// TestEngineCanceledContext asserts a pre-canceled context returns
// immediately with ctx.Err() and runs no jobs.
func TestEngineCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()

	calls := 0
	err := Engine{Ctx: ctx, Parallelism: 4}.ForEach(100, func(int) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach on canceled ctx: err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("%d jobs ran on a canceled context", calls)
	}

	if _, err := (Engine{Ctx: ctx}).RunCampaign(env,
		[]policy.Scheme{policy.SchemeSNUCA}, 4, 1,
		func(rng *rand.Rand) *workload.Mix { return workload.RandomST(rng, cpu, 4) },
	); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCampaign on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestEngineMidRunCancellation cancels while jobs are in flight and asserts
// the run returns promptly with ctx.Err() instead of draining all work.
func TestEngineMidRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 1000
	var mu sync.Mutex
	ran := 0
	start := time.Now()
	err := Engine{Ctx: ctx, Parallelism: 4}.ForEach(n, func(i int) error {
		mu.Lock()
		ran++
		if ran == 8 {
			cancel()
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran >= n {
		t.Error("cancellation did not stop the run early")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestEngineFailFast asserts the first job error cancels remaining work and
// propagates.
func TestEngineFailFast(t *testing.T) {
	boom := errors.New("boom")
	var mu sync.Mutex
	ran := 0
	err := Engine{Parallelism: 4}.ForEach(1000, func(i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran >= 1000 {
		t.Error("fail-fast did not stop the run early")
	}
}

// TestEngineProgress asserts the progress callback sees strictly increasing
// done counts ending at the total.
func TestEngineProgress(t *testing.T) {
	const n = 50
	last, calls := 0, 0
	e := Engine{
		Parallelism: 4,
		OnProgress: func(done, total int) {
			calls++
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			if done != last+1 {
				t.Errorf("done jumped from %d to %d", last, done)
			}
			last = done
		},
	}
	if err := e.ForEach(n, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != n || last != n {
		t.Errorf("progress calls = %d (last done %d), want %d", calls, last, n)
	}
}

// TestEngineMonitoredMixDeterminism asserts the parallel monitored-curve
// path is worker-count independent.
func TestEngineMonitoredMixDeterminism(t *testing.T) {
	cpu := workload.SPECCPU()
	mix := workload.RandomST(rand.New(rand.NewSource(3)), cpu, 8)
	one, err := Engine{Parallelism: 1}.MonitoredMix(mix, 1<<16, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Engine{Parallelism: 8}.MonitoredMix(mix, 1<<16, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Error("MonitoredMix differs across worker counts")
	}
}
