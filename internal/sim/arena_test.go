package sim

import (
	"math/rand"
	"testing"

	"cdcs/internal/policy"
	"cdcs/internal/workload"
)

// TestRunMixArenaBitIdentical asserts the arena-pooled hot path changes no
// result bits: for every scheme, running a mix through one arena reused
// across runs produces exactly the per-app progress rates — and therefore
// exactly the weighted speedups — of independent arena-free runs. This is
// the sim-level half of the dense-representation bit-identity property (the
// placement-level half is TestDenseMatchesMapReference in internal/place).
func TestRunMixArenaBitIdentical(t *testing.T) {
	env := policy.DefaultEnv()
	cpu := workload.SPECCPU()
	omp := workload.SPECOMP()
	mixes := []*workload.Mix{
		workload.RandomST(rand.New(rand.NewSource(11)), cpu, 64),
		workload.RandomMT(rand.New(rand.NewSource(12)), omp, 8),
	}
	schemes := []policy.Scheme{
		policy.SchemeSNUCA, policy.SchemeRNUCA,
		policy.SchemeJigsawC, policy.SchemeJigsawR, policy.SchemeCDCS,
	}
	ar := policy.NewArena() // deliberately shared across every run below
	for mi, mix := range mixes {
		var basePerApp, baseArPerApp [][]float64
		for si, sc := range schemes {
			seed := int64(100 + 10*mi + si)
			fresh, err := RunMix(env, sc, mix, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := RunMixWith(env, sc, mix, rand.New(rand.NewSource(seed)), ar)
			if err != nil {
				t.Fatal(err)
			}
			if len(fresh.PerApp) != len(pooled.PerApp) {
				t.Fatalf("mix %d %s: per-app lengths differ", mi, sc.Name())
			}
			// Copy before the arena's next use: pooled.Sched borrows ar.
			perApp := append([]float64(nil), pooled.PerApp...)
			for p := range fresh.PerApp {
				if fresh.PerApp[p] != perApp[p] {
					t.Errorf("mix %d %s app %d: pooled %v != fresh %v", mi, sc.Name(), p, perApp[p], fresh.PerApp[p])
				}
			}
			if fresh.OnChipPKI != pooled.OnChipPKI || fresh.OffChipPKI != pooled.OffChipPKI {
				t.Errorf("mix %d %s: latency breakdown drifted", mi, sc.Name())
			}
			basePerApp = append(basePerApp, fresh.PerApp)
			baseArPerApp = append(baseArPerApp, perApp)
		}
		// Weighted speedups vs scheme 0 are bit-equal too (they are pure
		// functions of bit-equal per-app rates, asserted for completeness).
		for si := range schemes {
			wsFresh := MixResult{PerApp: basePerApp[si]}
			wsPooled := MixResult{PerApp: baseArPerApp[si]}
			baseFresh := MixResult{PerApp: basePerApp[0]}
			basePooled := MixResult{PerApp: baseArPerApp[0]}
			if WeightedSpeedup(wsFresh, baseFresh) != WeightedSpeedup(wsPooled, basePooled) {
				t.Errorf("mix %d scheme %d: weighted speedup drifted under arena reuse", mi, si)
			}
		}
	}
}
