package sim

import (
	"fmt"
	"math"
)

// MoveScheme selects how a reconfiguration migrates LLC contents (§IV-H,
// Figs. 17-18).
type MoveScheme int

const (
	// InstantMoves is the idealized scheme: lines teleport to their new
	// banks at reconfiguration time.
	InstantMoves MoveScheme = iota
	// BackgroundInvs is CDCS: demand moves plus a background invalidation
	// walk; cores never pause.
	BackgroundInvs
	// BulkInvs is Jigsaw: cores pause while banks walk their arrays and
	// invalidate relocated lines, which then refill from memory.
	BulkInvs
)

// String names the scheme.
func (m MoveScheme) String() string {
	switch m {
	case InstantMoves:
		return "instant-moves"
	case BackgroundInvs:
		return "background-invs"
	case BulkInvs:
		return "bulk-invs"
	}
	return fmt.Sprintf("MoveScheme(%d)", int(m))
}

// ReconfigParams describes the chip state around one reconfiguration.
type ReconfigParams struct {
	// Cores on the chip.
	Cores int
	// SteadyIPC is per-core steady-state IPC.
	SteadyIPC float64
	// APKI is mean LLC accesses per kilo-instruction per core.
	APKI float64
	// HitRatio is the steady-state LLC hit ratio.
	HitRatio float64
	// MovedFraction is the fraction of cached lines whose home changed.
	MovedFraction float64
	// MemLatency is the effective miss penalty in cycles.
	MemLatency float64
	// ExtraLookupCycles is the added latency of the two-level lookup when a
	// moved line misses its new bank (old-bank forward + move response).
	ExtraLookupCycles float64
	// PauseCycles is the bulk-invalidation pause (paper: 114K average, up to
	// 230K on 64 cores).
	PauseCycles float64
	// BGDelayCycles is how long demand moves run before the background walk
	// starts (paper example: 50K).
	BGDelayCycles float64
	// BGWalkCycles is the background walk duration (paper example: 100K at
	// one set per 200 cycles).
	BGWalkCycles float64
	// RefillTau is the time constant (cycles) for refilling bulk-invalidated
	// working sets from memory.
	RefillTau float64
}

// DefaultReconfigParams returns constants matching the paper's examples.
func DefaultReconfigParams() ReconfigParams {
	return ReconfigParams{
		Cores:             64,
		SteadyIPC:         0.65,
		APKI:              25,
		HitRatio:          0.6,
		MovedFraction:     0.5,
		MemLatency:        130,
		ExtraLookupCycles: 40,
		PauseCycles:       114000,
		BGDelayCycles:     50000,
		BGWalkCycles:      100000,
		RefillTau:         250000,
	}
}

// IPCPoint is one sample of the aggregate-IPC trace.
type IPCPoint struct {
	// Cycle is the sample time.
	Cycle float64
	// AggIPC is chip-wide instructions per cycle.
	AggIPC float64
}

// SimulateReconfig produces the aggregate IPC trace around one
// reconfiguration (Fig. 17): the window covers [0, windowCycles) with the
// reconfiguration at reconfigAt, sampled every bucketCycles.
func SimulateReconfig(p ReconfigParams, scheme MoveScheme, windowCycles, reconfigAt, bucketCycles float64) []IPCPoint {
	if bucketCycles <= 0 || windowCycles <= 0 {
		panic("sim: invalid reconfig window")
	}
	var out []IPCPoint
	for t := 0.0; t < windowCycles; t += bucketCycles {
		out = append(out, IPCPoint{Cycle: t, AggIPC: float64(p.Cores) * instIPC(p, scheme, t-reconfigAt)})
	}
	return out
}

// instIPC returns per-core IPC at time dt relative to the reconfiguration
// (negative = before).
func instIPC(p ReconfigParams, scheme MoveScheme, dt float64) float64 {
	if dt < 0 {
		return p.SteadyIPC
	}
	steadyCPI := 1 / p.SteadyIPC
	switch scheme {
	case InstantMoves:
		return p.SteadyIPC
	case BulkInvs:
		if dt < p.PauseCycles {
			return 0 // chip paused during the tag walk
		}
		// Relocated lines were invalidated: extra misses decay as working
		// sets refill from memory.
		extraMissRatio := p.HitRatio * p.MovedFraction * math.Exp(-(dt-p.PauseCycles)/p.RefillTau)
		cpi := steadyCPI + p.APKI/1000*extraMissRatio*p.MemLatency
		return 1 / cpi
	case BackgroundInvs:
		// Unmigrated moved lines add a two-level lookup penalty; demand
		// moves migrate hot lines quickly (time constant set by the access
		// rate), and the background walk clears the rest without a pause.
		demandTau := 30000.0
		unmigrated := p.MovedFraction * math.Exp(-dt/demandTau)
		walkEnd := p.BGDelayCycles + p.BGWalkCycles
		if dt > walkEnd {
			unmigrated = 0
		}
		extraLookup := p.APKI / 1000 * p.HitRatio * unmigrated * p.ExtraLookupCycles
		// Cold moved lines invalidated by the walk refetch lazily: a small
		// extra-miss term while and shortly after the walk runs.
		extraMiss := 0.0
		if dt > p.BGDelayCycles {
			coldFrac := 0.25 * p.MovedFraction * math.Exp(-(dt-p.BGDelayCycles)/p.RefillTau)
			extraMiss = p.APKI / 1000 * p.HitRatio * coldFrac * p.MemLatency * 0.2
		}
		cpi := steadyCPI + extraLookup + extraMiss
		return 1 / cpi
	}
	return p.SteadyIPC
}

// ReconfigPenalty integrates the IPC loss of one reconfiguration in
// equivalent lost cycles (per core): ∫ (1 - IPC(t)/steady) dt.
func ReconfigPenalty(p ReconfigParams, scheme MoveScheme) float64 {
	const step = 1000.0
	horizon := 3 * (p.PauseCycles + p.RefillTau + p.BGDelayCycles + p.BGWalkCycles)
	lost := 0.0
	for dt := 0.0; dt < horizon; dt += step {
		lost += (1 - instIPC(p, scheme, dt)/p.SteadyIPC) * step
	}
	return lost
}

// EffectiveWS scales a steady-state weighted speedup by the reconfiguration
// overhead at a given period (Fig. 18's x-axis: 10M-100M cycles).
func EffectiveWS(steadyWS float64, p ReconfigParams, scheme MoveScheme, periodCycles float64) float64 {
	penalty := ReconfigPenalty(p, scheme)
	frac := penalty / periodCycles
	if frac > 0.5 {
		frac = 0.5
	}
	return steadyWS * (1 - frac)
}
