package sim

import (
	"fmt"

	"cdcs/internal/cachesim"
	"cdcs/internal/vtb"
)

// MoveLLC couples a VTB with real per-bank cache arrays and implements the
// incremental-reconfiguration protocol of §IV-H at the state level: while
// shadow descriptors are active, a miss in a line's new bank checks the old
// bank; an old-bank hit moves the line (demand move), otherwise the access
// goes to memory. Background invalidation walks the arrays set by set,
// dropping lines whose current home is elsewhere. Bank partitions are keyed
// by VC id.
type MoveLLC struct {
	banks []*cachesim.Bank
	vtb   *vtb.VTB

	// walkSet is the background-invalidation cursor (sets walked so far).
	walkSet int

	// Statistics.
	Hits        int64
	DemandMoves int64
	Misses      int64
	BGInvals    int64
}

// NewMoveLLC builds an LLC of n banks with the given geometry and a VTB with
// room for all VCs.
func NewMoveLLC(nBanks, sets, ways, vcs int) *MoveLLC {
	banks := make([]*cachesim.Bank, nBanks)
	for i := range banks {
		banks[i] = cachesim.NewBank(sets, ways)
	}
	return &MoveLLC{banks: banks, vtb: vtb.New(vcs)}
}

// Install sets a VC's descriptor (starting a reconfiguration when the VC
// already had one) and sizes the bank partitions to the descriptor's
// fractions.
func (l *MoveLLC) Install(vc int, d vtb.Descriptor, totalLines float64) error {
	if err := l.vtb.Install(vc, d); err != nil {
		return err
	}
	for b, frac := range d.Fractions() {
		if b < 0 || b >= len(l.banks) {
			return fmt.Errorf("sim: descriptor names bank %d of %d", b, len(l.banks))
		}
		l.banks[b].SetTarget(cachesim.PartID(vc), int(frac*totalLines))
	}
	l.walkSet = 0
	return nil
}

// Access performs one LLC access for a VC: the §IV-H two-virtual-level
// lookup. It reports whether the access hit (demand moves count as hits —
// the data was on chip).
func (l *MoveLLC) Access(vc int, addr cachesim.Addr) (bool, error) {
	cur, old, moved, err := l.vtb.Lookup(vc, addr)
	if err != nil {
		return false, err
	}
	part := cachesim.PartID(vc)
	if l.banks[cur.Bank].Contains(addr) {
		l.banks[cur.Bank].Access(addr, part)
		l.Hits++
		return true, nil
	}
	if moved && l.banks[old.Bank].Contains(addr) {
		// Demand move: old bank invalidates its copy; the line (and its
		// coherence state) installs at the new home.
		l.banks[old.Bank].InvalidateAddr(addr)
		l.banks[cur.Bank].Access(addr, part)
		l.DemandMoves++
		l.Hits++
		return true, nil
	}
	// Miss: fetch from memory into the current home.
	l.banks[cur.Bank].Access(addr, part)
	l.Misses++
	return false, nil
}

// BackgroundStep walks one set in every bank, invalidating lines whose
// current home is a different bank (the §IV-H background invalidation).
// It returns true while the walk is still in progress.
func (l *MoveLLC) BackgroundStep() bool {
	if !l.vtb.ShadowActive() {
		return false
	}
	sets := l.banks[0].Sets()
	if l.walkSet >= sets {
		// Walk complete: drop shadows; cores resume single-level lookups.
		l.vtb.ClearShadows()
		return false
	}
	for bi, bank := range l.banks {
		n := bank.WalkSet(l.walkSet, func(addr cachesim.Addr, p cachesim.PartID) bool {
			cur, _, _, err := l.vtb.Lookup(int(p), addr)
			if err != nil {
				// Lines of unknown VCs (stale partitions) are dropped.
				return false
			}
			return cur.Bank == bi
		})
		l.BGInvals += int64(n)
	}
	l.walkSet++
	return true
}

// Reconfiguring reports whether shadow descriptors are still active.
func (l *MoveLLC) Reconfiguring() bool { return l.vtb.ShadowActive() }

// Resident returns how many banks currently hold addr (coherence invariant:
// at most one).
func (l *MoveLLC) Resident(addr cachesim.Addr) int {
	n := 0
	for _, b := range l.banks {
		if b.Contains(addr) {
			n++
		}
	}
	return n
}

// BulkInvalidate models Jigsaw's reconfiguration instead: walk everything
// immediately, dropping all lines whose home changed, and clear shadows.
// Returns the number of invalidated lines (the cost the §IV-H hardware
// avoids paying synchronously).
func (l *MoveLLC) BulkInvalidate() int64 {
	var n int64
	sets := l.banks[0].Sets()
	for s := 0; s < sets; s++ {
		for bi, bank := range l.banks {
			n += int64(bank.WalkSet(s, func(addr cachesim.Addr, p cachesim.PartID) bool {
				cur, _, _, err := l.vtb.Lookup(int(p), addr)
				if err != nil {
					return false
				}
				return cur.Bank == bi
			}))
		}
	}
	l.vtb.ClearShadows()
	l.BGInvals += n
	return n
}
