package sim

import (
	"math/rand"

	"cdcs/internal/cachesim"
	"cdcs/internal/curves"
	"cdcs/internal/monitor"
	"cdcs/internal/trace"
	"cdcs/internal/workload"
)

// MonitoredCurve samples one VC's miss curve the way the hardware would
// (Fig. 4's first stage): a synthetic address stream with the VC's true
// stack-distance profile drives a GMON, and the monitor's reconstructed
// curve is returned. base separates the VC's address space.
func MonitoredCurve(trueCurve curves.Curve, totalLines float64, accesses int, base cachesim.Addr, seed int64) curves.Curve {
	// Paper geometry scaled to the curve's domain: way 0 models 1/512 of
	// the covered capacity (64KB of 32MB), floor 64 lines for tiny VCs.
	way0 := totalLines / 512
	if way0 < 64 {
		way0 = 64
	}
	m := monitor.NewGMON(16, 64, way0, totalLines)
	gen := trace.NewGenerator(trueCurve, base, rand.New(rand.NewSource(seed)))
	for i := 0; i < accesses; i++ {
		m.Access(gen.Next())
	}
	return m.MissRatioCurve()
}

// MonitoredMix reconstructs every VC miss curve in a mix through GMONs,
// returning measured curves parallel to mix.VCs. Access counts per VC are
// proportional to the VC's intensity (heavier VCs get better-sampled
// curves, as in the real system where monitors see live traffic). Each VC's
// monitor runs as an independent job on a default Engine.
func MonitoredMix(mix *workload.Mix, totalLines float64, baseAccesses int, seed int64) []curves.Curve {
	out, err := Engine{}.MonitoredMix(mix, totalLines, baseAccesses, seed)
	if err != nil {
		// A default Engine has a background context and the per-VC jobs
		// cannot fail, so this is unreachable.
		panic(err)
	}
	return out
}

// CurveError returns the mean absolute error between two miss-ratio curves
// sampled at geometric capacities up to maxLines.
func CurveError(a, b curves.Curve, maxLines float64) float64 {
	sum, n := 0.0, 0
	for x := 256.0; x <= maxLines; x *= 2 {
		d := a.Eval(x) - b.Eval(x)
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
