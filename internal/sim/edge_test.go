package sim

import (
	"math/rand"
	"testing"

	"cdcs/internal/policy"
	"cdcs/internal/workload"
)

// Edge cases and failure injection for the simulation stack: degenerate
// systems, over-committed mixes, and pathological workloads must either
// work or fail loudly — never return garbage.

func TestSingleTileSystem(t *testing.T) {
	env := policy.ScaledEnv(1, 1)
	mix := workload.NewMix().AddST(workload.ByName(workload.SPECCPU(), "milc"))
	for _, sc := range []policy.Scheme{policy.SchemeSNUCA, policy.SchemeRNUCA, policy.SchemeCDCS} {
		res, err := RunMix(env, sc, mix, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s on 1x1: %v", sc.Name(), err)
		}
		if res.Chip.AggIPC <= 0 {
			t.Fatalf("%s on 1x1: non-positive IPC", sc.Name())
		}
		// One bank: every access is local under any scheme.
		if res.OnChipPKI != 0 {
			t.Errorf("%s on 1x1: on-chip latency %g, want 0", sc.Name(), res.OnChipPKI)
		}
	}
}

func TestOverCommittedMixFailsLoudly(t *testing.T) {
	env := policy.ScaledEnv(2, 2)
	mix := workload.RandomST(rand.New(rand.NewSource(1)), workload.SPECCPU(), 5)
	for _, sc := range []policy.Scheme{policy.SchemeSNUCA, policy.SchemeCDCS} {
		if _, err := RunMix(env, sc, mix, rand.New(rand.NewSource(2))); err == nil {
			t.Errorf("%s accepted 5 threads on 4 cores", sc.Name())
		}
	}
}

func TestAllStreamingMix(t *testing.T) {
	// Every VC is streaming: CDCS allocates (nearly) nothing, and nothing
	// breaks downstream (zero-size VCs, empty assignments).
	env := policy.DefaultEnv()
	mix := workload.NewMix()
	milc := workload.ByName(workload.SPECCPU(), "milc")
	for i := 0; i < 32; i++ {
		mix.AddST(milc)
	}
	res, err := RunMix(env, policy.SchemeCDCS, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, size := range res.Sched.VCSizes {
		if size > 1024 {
			t.Errorf("streaming VC %d allocated %g lines", v, size)
		}
	}
	if res.Chip.AggIPC <= 0 {
		t.Error("all-streaming mix produced non-positive IPC")
	}
	// Memory is the bottleneck: utilization should be high.
	if res.Chip.MemUtilization < 0.5 {
		t.Errorf("mem utilization %.2f for 32 streaming apps, want high", res.Chip.MemUtilization)
	}
}

func TestSingleAppFullChip(t *testing.T) {
	// One omnet alone on 64 tiles: CDCS should beat S-NUCA through locality
	// even with zero capacity contention.
	env := policy.DefaultEnv()
	mix := workload.NewMix().AddST(workload.ByName(workload.SPECCPU(), "omnet"))
	base, err := RunMix(env, policy.SchemeSNUCA, mix, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	cdcs, err := RunMix(env, policy.SchemeCDCS, mix, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if ws := WeightedSpeedup(cdcs, base); ws <= 1.0 {
		t.Errorf("lone omnet: CDCS WS %.3f, want > 1", ws)
	}
}

func TestCampaignPropagatesErrors(t *testing.T) {
	env := policy.ScaledEnv(2, 2)
	_, err := RunCampaign(env, []policy.Scheme{policy.SchemeSNUCA}, 1, 1,
		func(rng *rand.Rand) *workload.Mix {
			return workload.RandomST(rng, workload.SPECCPU(), 10) // too many
		})
	if err == nil {
		t.Error("campaign swallowed an over-commit error")
	}
}

func TestMixedSTAndMTMix(t *testing.T) {
	// Heterogeneous mixes (the §II-B shape) run under every scheme.
	env := policy.DefaultEnv()
	mix := workload.NewMix()
	cpu := workload.SPECCPU()
	omp := workload.SPECOMP()
	mix.AddST(workload.ByName(cpu, "omnet"))
	mix.AddMT(workload.MTByName(omp, "ilbdc"))
	mix.AddST(workload.ByName(cpu, "milc"))
	for _, sc := range []policy.Scheme{
		policy.SchemeSNUCA, policy.SchemeRNUCA,
		policy.SchemeJigsawC, policy.SchemeJigsawR, policy.SchemeCDCS,
	} {
		res, err := RunMix(env, sc, mix, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if len(res.PerApp) != 3 {
			t.Fatalf("%s: %d per-app entries, want 3", sc.Name(), len(res.PerApp))
		}
		for p, rate := range res.PerApp {
			if rate <= 0 {
				t.Fatalf("%s: app %d progress %g", sc.Name(), p, rate)
			}
		}
	}
}

func TestReconfigParamsDegenerate(t *testing.T) {
	// Zero moved fraction: every scheme behaves like instant moves.
	p := DefaultReconfigParams()
	p.MovedFraction = 0
	for _, s := range []MoveScheme{BackgroundInvs} {
		if pen := ReconfigPenalty(p, s); pen > 1 {
			t.Errorf("%v penalty %g with nothing moved", s, pen)
		}
	}
	// Bulk still pauses (the tag walk happens regardless).
	if pen := ReconfigPenalty(p, BulkInvs); pen < p.PauseCycles {
		t.Errorf("bulk penalty %g below pause time", pen)
	}
}

func TestSimulateReconfigPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid window accepted")
		}
	}()
	SimulateReconfig(DefaultReconfigParams(), BulkInvs, 0, 0, 0)
}
