package sim

import (
	"cdcs/internal/cachesim"
	"cdcs/internal/vtb"
	"math/rand"
	"testing"

	"cdcs/internal/policy"
	"cdcs/internal/workload"
)

func TestRunMixCaseStudy(t *testing.T) {
	env := policy.ScaledEnv(6, 6)
	mix := workload.CaseStudy()
	base, err := RunMix(env, policy.SchemeSNUCA, mix, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	cdcs, err := RunMix(env, policy.SchemeCDCS, mix, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.PerApp) != 22 { // 6 omnet + 14 milc + 2 ilbdc
		t.Fatalf("PerApp has %d entries, want 22", len(base.PerApp))
	}
	ws := WeightedSpeedup(cdcs, base)
	if ws < 1.2 {
		t.Errorf("CDCS case-study WS=%.3f, want >1.2 (paper: 1.56)", ws)
	}
	// Per-app shape (Table 1): omnet speeds up the most.
	var omnetSp, milcSp float64
	for p, proc := range mix.Procs {
		sp := cdcs.PerApp[p] / base.PerApp[p]
		switch proc.Bench {
		case "omnet":
			omnetSp += sp / 6
		case "milc":
			milcSp += sp / 14
		}
	}
	if omnetSp < 1.8 {
		t.Errorf("omnet speedup %.2f, want large (paper: 4.0)", omnetSp)
	}
	if milcSp < 1.0 {
		t.Errorf("milc slowed down: %.2f (bandwidth relief should help)", milcSp)
	}
	if omnetSp <= milcSp {
		t.Errorf("omnet (%.2f) should gain more than milc (%.2f)", omnetSp, milcSp)
	}
}

func TestRunMixLatencyBreakdownOrdering(t *testing.T) {
	env := policy.DefaultEnv()
	mix := workload.RandomST(rand.New(rand.NewSource(3)), workload.SPECCPU(), 64)
	snuca, err := RunMix(env, policy.SchemeSNUCA, mix, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rnuca, err := RunMix(env, policy.SchemeRNUCA, mix, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cdcs, err := RunMix(env, policy.SchemeCDCS, mix, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 11b: S-NUCA has far higher on-chip latency than CDCS; R-NUCA the
	// lowest (everything local).
	if snuca.OnChipPKI < 3*cdcs.OnChipPKI {
		t.Errorf("S-NUCA on-chip %.1f not >> CDCS %.1f", snuca.OnChipPKI, cdcs.OnChipPKI)
	}
	if rnuca.OnChipPKI > cdcs.OnChipPKI {
		t.Errorf("R-NUCA on-chip %.1f above CDCS %.1f", rnuca.OnChipPKI, cdcs.OnChipPKI)
	}
	// Fig. 11c: R-NUCA pays in off-chip latency vs CDCS.
	if rnuca.OffChipPKI < 1.15*cdcs.OffChipPKI {
		t.Errorf("R-NUCA off-chip %.1f not clearly above CDCS %.1f", rnuca.OffChipPKI, cdcs.OffChipPKI)
	}
	// Fig. 11d: S-NUCA generates much more traffic than CDCS.
	if snuca.Chip.TrafficPerInstr.Total() < 1.5*cdcs.Chip.TrafficPerInstr.Total() {
		t.Errorf("S-NUCA traffic %.2f not >> CDCS %.2f",
			snuca.Chip.TrafficPerInstr.Total(), cdcs.Chip.TrafficPerInstr.Total())
	}
	// Fig. 11e: CDCS uses less energy than S-NUCA.
	if cdcs.Chip.EnergyPerInstr.Total() >= snuca.Chip.EnergyPerInstr.Total() {
		t.Error("CDCS energy not below S-NUCA")
	}
}

func TestRunCampaignOrdering(t *testing.T) {
	env := policy.DefaultEnv()
	schemes := []policy.Scheme{
		policy.SchemeSNUCA, policy.SchemeRNUCA,
		policy.SchemeJigsawC, policy.SchemeJigsawR, policy.SchemeCDCS,
	}
	cpu := workload.SPECCPU()
	res, err := RunCampaign(env, schemes, 5, 42, func(rng *rand.Rand) *workload.Mix {
		return workload.RandomST(rng, cpu, 64)
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CampaignResult{}
	for _, r := range res {
		byName[r.Scheme] = r
	}
	// Fig. 11a ordering: CDCS > Jigsaw+R > Jigsaw+C > R-NUCA > 1.0.
	if !(byName["CDCS"].Gmean > byName["Jigsaw+R"].Gmean) {
		t.Errorf("CDCS %.3f <= Jigsaw+R %.3f", byName["CDCS"].Gmean, byName["Jigsaw+R"].Gmean)
	}
	if !(byName["Jigsaw+R"].Gmean > byName["Jigsaw+C"].Gmean) {
		t.Errorf("Jigsaw+R %.3f <= Jigsaw+C %.3f", byName["Jigsaw+R"].Gmean, byName["Jigsaw+C"].Gmean)
	}
	if !(byName["Jigsaw+C"].Gmean > byName["R-NUCA"].Gmean) {
		t.Errorf("Jigsaw+C %.3f <= R-NUCA %.3f", byName["Jigsaw+C"].Gmean, byName["R-NUCA"].Gmean)
	}
	if !(byName["R-NUCA"].Gmean > 1.0) {
		t.Errorf("R-NUCA gmean %.3f <= 1", byName["R-NUCA"].Gmean)
	}
	// Baseline is exactly 1 for every mix.
	for _, ws := range byName["S-NUCA"].WS {
		if ws != 1 {
			t.Errorf("baseline WS %.3f != 1", ws)
		}
	}
}

func TestRunCampaignMTOrderReversal(t *testing.T) {
	// §VI-B: on multithreaded mixes Jigsaw+C beats Jigsaw+R, and CDCS is at
	// least as good as both.
	env := policy.DefaultEnv()
	schemes := []policy.Scheme{
		policy.SchemeSNUCA, policy.SchemeJigsawC, policy.SchemeJigsawR, policy.SchemeCDCS,
	}
	omp := workload.SPECOMP()
	res, err := RunCampaign(env, schemes, 5, 17, func(rng *rand.Rand) *workload.Mix {
		return workload.RandomMT(rng, omp, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CampaignResult{}
	for _, r := range res {
		byName[r.Scheme] = r
	}
	if !(byName["Jigsaw+C"].Gmean > byName["Jigsaw+R"].Gmean) {
		t.Errorf("MT: Jigsaw+C %.3f <= Jigsaw+R %.3f (trend should reverse)",
			byName["Jigsaw+C"].Gmean, byName["Jigsaw+R"].Gmean)
	}
	if byName["CDCS"].Gmean < byName["Jigsaw+C"].Gmean-0.005 {
		t.Errorf("MT: CDCS %.3f below Jigsaw+C %.3f", byName["CDCS"].Gmean, byName["Jigsaw+C"].Gmean)
	}
}

func TestMoveLLCDemandMoves(t *testing.T) {
	llc := NewMoveLLC(4, 64, 8, 2)
	// VC 0 initially lives in bank 0.
	d0 := mustDescriptor(t, map[int]float64{0: 1})
	if err := llc.Install(0, d0, 512); err != nil {
		t.Fatal(err)
	}
	// Warm 200 lines.
	for i := 0; i < 200; i++ {
		llc.Access(0, cachesim.Addr(i))
	}
	warmMisses := llc.Misses
	// Re-access: all hits.
	for i := 0; i < 200; i++ {
		hit, err := llc.Access(0, cachesim.Addr(i))
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("warm line %d missed", i)
		}
	}
	// Reconfigure VC 0 to bank 2: demand moves should serve hot lines
	// without memory misses.
	d2 := mustDescriptor(t, map[int]float64{2: 1})
	if err := llc.Install(0, d2, 512); err != nil {
		t.Fatal(err)
	}
	if !llc.Reconfiguring() {
		t.Fatal("shadow not active after reinstall")
	}
	for i := 0; i < 200; i++ {
		hit, err := llc.Access(0, cachesim.Addr(i))
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("moved line %d missed (should demand-move)", i)
		}
	}
	if llc.DemandMoves == 0 {
		t.Fatal("no demand moves recorded")
	}
	if llc.Misses != warmMisses {
		t.Errorf("reconfiguration added %d memory misses", llc.Misses-warmMisses)
	}
	// Coherence invariant: one copy per line.
	for i := 0; i < 200; i++ {
		if n := llc.Resident(cachesim.Addr(i)); n > 1 {
			t.Fatalf("line %d resident in %d banks", i, n)
		}
	}
}

func TestMoveLLCBackgroundWalk(t *testing.T) {
	llc := NewMoveLLC(4, 64, 8, 2)
	d0 := mustDescriptor(t, map[int]float64{0: 1})
	llc.Install(0, d0, 512)
	for i := 0; i < 300; i++ {
		llc.Access(0, cachesim.Addr(i))
	}
	d1 := mustDescriptor(t, map[int]float64{1: 1})
	llc.Install(0, d1, 512)
	// Without any accesses, the background walk alone must finish the
	// reconfiguration and drop stale lines.
	steps := 0
	for llc.BackgroundStep() {
		steps++
		if steps > 1000 {
			t.Fatal("background walk did not terminate")
		}
	}
	if llc.Reconfiguring() {
		t.Error("shadow still active after walk")
	}
	if llc.BGInvals == 0 {
		t.Error("walk invalidated nothing")
	}
	// All old-bank copies are gone.
	for i := 0; i < 300; i++ {
		if llc.banks[0].Contains(cachesim.Addr(i)) {
			t.Fatalf("stale line %d still in old bank after walk", i)
		}
	}
}

func TestMoveLLCBulkInvalidate(t *testing.T) {
	llc := NewMoveLLC(2, 32, 8, 1)
	d0 := mustDescriptor(t, map[int]float64{0: 1})
	llc.Install(0, d0, 256)
	for i := 0; i < 100; i++ {
		llc.Access(0, cachesim.Addr(i))
	}
	d1 := mustDescriptor(t, map[int]float64{1: 1})
	llc.Install(0, d1, 256)
	n := llc.BulkInvalidate()
	if n == 0 {
		t.Fatal("bulk invalidation dropped nothing")
	}
	if llc.Reconfiguring() {
		t.Error("shadow active after bulk invalidation")
	}
	// Unlike demand moves, re-access now misses (refetch from memory).
	missesBefore := llc.Misses
	for i := 0; i < 100; i++ {
		llc.Access(0, cachesim.Addr(i))
	}
	if llc.Misses == missesBefore {
		t.Error("bulk-invalidated lines did not miss on re-access")
	}
}

func TestSimulateReconfigShapes(t *testing.T) {
	p := DefaultReconfigParams()
	const window, at, bucket = 2e6, 2e5, 1e4
	instant := SimulateReconfig(p, InstantMoves, window, at, bucket)
	bg := SimulateReconfig(p, BackgroundInvs, window, at, bucket)
	bulk := SimulateReconfig(p, BulkInvs, window, at, bucket)

	steady := float64(p.Cores) * p.SteadyIPC
	// Instant: flat at steady state.
	for _, pt := range instant {
		if !within(pt.AggIPC, steady, 1e-9) {
			t.Fatalf("instant trace not flat: %v", pt)
		}
	}
	minOf := func(tr []IPCPoint) float64 {
		m := tr[0].AggIPC
		for _, pt := range tr {
			if pt.AggIPC < m {
				m = pt.AggIPC
			}
		}
		return m
	}
	// Bulk: full pause (IPC 0); background: a dip but never a pause.
	if minOf(bulk) != 0 {
		t.Errorf("bulk trace min %.2f, want 0 (pause)", minOf(bulk))
	}
	bgMin := minOf(bg)
	if bgMin <= 0.5*steady || bgMin >= steady {
		t.Errorf("background dip %.2f, want shallow (between 50%% and 100%% of %.2f)", bgMin, steady)
	}
	// Both recover to steady by the end of the window.
	if last := bulk[len(bulk)-1].AggIPC; last < 0.95*steady {
		t.Errorf("bulk did not recover: %.2f", last)
	}
	if last := bg[len(bg)-1].AggIPC; last < 0.99*steady {
		t.Errorf("background did not recover: %.2f", last)
	}
}

func TestReconfigPenaltyOrdering(t *testing.T) {
	p := DefaultReconfigParams()
	pi := ReconfigPenalty(p, InstantMoves)
	pb := ReconfigPenalty(p, BackgroundInvs)
	pk := ReconfigPenalty(p, BulkInvs)
	if pi != 0 {
		t.Errorf("instant penalty %.0f, want 0", pi)
	}
	if !(pb > 0 && pb < pk) {
		t.Errorf("penalty ordering wrong: instant %.0f, background %.0f, bulk %.0f", pi, pb, pk)
	}
	// Bulk pause alone is >= PauseCycles.
	if pk < p.PauseCycles {
		t.Errorf("bulk penalty %.0f below pause %.0f", pk, p.PauseCycles)
	}
}

func TestEffectiveWSConvergesWithPeriod(t *testing.T) {
	p := DefaultReconfigParams()
	steady := 1.46
	periods := []float64{10e6, 25e6, 50e6, 100e6}
	prevGap := 1.0
	for _, period := range periods {
		bulk := EffectiveWS(steady, p, BulkInvs, period)
		bg := EffectiveWS(steady, p, BackgroundInvs, period)
		inst := EffectiveWS(steady, p, InstantMoves, period)
		if !(inst >= bg && bg >= bulk) {
			t.Fatalf("period %g: ordering violated inst=%.4f bg=%.4f bulk=%.4f", period, inst, bg, bulk)
		}
		gap := inst - bulk
		if gap >= prevGap {
			t.Fatalf("gap did not shrink with period: %.4f -> %.4f", prevGap, gap)
		}
		prevGap = gap
	}
}

func mustDescriptor(t *testing.T, alloc map[int]float64) vtb.Descriptor {
	t.Helper()
	d, err := vtb.BuildDescriptor(vtb.DefaultBuckets, alloc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func within(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
