package curves

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		ys   []float64
	}{
		{"mismatched", []float64{0, 1}, []float64{0}},
		{"empty", nil, nil},
		{"non-increasing", []float64{0, 1, 1}, []float64{3, 2, 1}},
		{"decreasing", []float64{0, 2, 1}, []float64{3, 2, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v,%v) did not panic", c.xs, c.ys)
				}
			}()
			New(c.xs, c.ys)
		})
	}
}

func TestEvalInterpolationAndClamping(t *testing.T) {
	c := New([]float64{0, 10, 20}, []float64{100, 50, 50})
	cases := []struct {
		x, want float64
	}{
		{-5, 100}, // clamp left
		{0, 100},  // knot
		{5, 75},   // midpoint interpolation
		{10, 50},  // knot
		{15, 50},  // flat segment
		{20, 50},  // last knot
		{100, 50}, // clamp right
		{2.5, 87.5},
	}
	for _, cs := range cases {
		if got := c.Eval(cs.x); !approx(got, cs.want, 1e-12) {
			t.Errorf("Eval(%g)=%g, want %g", cs.x, got, cs.want)
		}
	}
}

func TestConstant(t *testing.T) {
	c := Constant(7, 100)
	for _, x := range []float64{0, 50, 100, 200} {
		if got := c.Eval(x); got != 7 {
			t.Errorf("Constant.Eval(%g)=%g", x, got)
		}
	}
	// Degenerate domain still evaluates.
	d := Constant(3, 0)
	if d.Eval(10) != 3 {
		t.Errorf("Constant with xMax=0 broken")
	}
}

func TestScaleAndShift(t *testing.T) {
	c := New([]float64{0, 4}, []float64{10, 2})
	s := c.Scale(2)
	if !approx(s.Eval(0), 20, 1e-12) || !approx(s.Eval(4), 4, 1e-12) {
		t.Errorf("Scale wrong: %v", s.Ys())
	}
	sh := c.ShiftY(5)
	if !approx(sh.Eval(2), 11, 1e-12) {
		t.Errorf("ShiftY wrong: Eval(2)=%g", sh.Eval(2))
	}
	// Original unchanged.
	if !approx(c.Eval(0), 10, 1e-12) {
		t.Errorf("Scale mutated receiver")
	}
}

func TestAdd(t *testing.T) {
	a := New([]float64{0, 10}, []float64{10, 0})
	b := New([]float64{0, 5, 10}, []float64{0, 5, 0})
	sum := Add(a, b)
	for _, x := range []float64{0, 2.5, 5, 7.5, 10} {
		want := a.Eval(x) + b.Eval(x)
		if got := sum.Eval(x); !approx(got, want, 1e-12) {
			t.Errorf("Add.Eval(%g)=%g, want %g", x, got, want)
		}
	}
	// Union of knots: 0, 5, 10.
	if sum.Len() != 3 {
		t.Errorf("Add knot count = %d, want 3", sum.Len())
	}
}

func TestAddProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomCurve(rng, 8))
			v[1] = reflect.ValueOf(randomCurve(rng, 8))
			v[2] = reflect.ValueOf(rng.Float64() * 120)
		},
	}
	prop := func(a, b Curve, x float64) bool {
		return approx(Add(a, b).Eval(x), a.Eval(x)+b.Eval(x), 1e-9)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestResample(t *testing.T) {
	c := New([]float64{0, 100}, []float64{50, 0})
	r := c.Resample([]float64{0, 25, 50, 75, 100})
	if r.Len() != 5 {
		t.Fatalf("Resample len=%d", r.Len())
	}
	if !approx(r.Eval(25), 37.5, 1e-12) {
		t.Errorf("resampled value wrong: %g", r.Eval(25))
	}
}

func TestIsNonIncreasing(t *testing.T) {
	if !New([]float64{0, 1, 2}, []float64{5, 3, 3}).IsNonIncreasing() {
		t.Error("non-increasing curve misclassified")
	}
	if New([]float64{0, 1, 2}, []float64{5, 3, 4}).IsNonIncreasing() {
		t.Error("increasing tail misclassified")
	}
}

func TestArgMin(t *testing.T) {
	// U-shaped latency curve: sweet spot in the middle.
	c := New([]float64{0, 1, 2, 3, 4}, []float64{10, 6, 3, 5, 9})
	x, y := c.ArgMin()
	if x != 2 || y != 3 {
		t.Errorf("ArgMin=(%g,%g), want (2,3)", x, y)
	}
	// Tie prefers smaller x.
	c2 := New([]float64{0, 1, 2}, []float64{3, 1, 1})
	x2, _ := c2.ArgMin()
	if x2 != 1 {
		t.Errorf("ArgMin tie-break: x=%g, want 1", x2)
	}
}

func TestConvexHullKnownShape(t *testing.T) {
	// A miss curve with a bump: the hull should skip the bump knot.
	c := New([]float64{0, 1, 2, 3}, []float64{10, 9, 4, 3})
	h := c.ConvexHull()
	// Knot (1,9) lies above the chord from (0,10) to (2,4); hull drops it.
	if h.Len() != 3 {
		t.Fatalf("hull has %d knots, want 3 (got xs=%v ys=%v)", h.Len(), h.Xs(), h.Ys())
	}
	if h.Eval(1) >= c.Eval(1) {
		t.Errorf("hull not strictly below curve at bump: %g vs %g", h.Eval(1), c.Eval(1))
	}
}

func TestConvexHullProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		c := randomCurve(rng, 3+rng.Intn(20))
		h := c.ConvexHull()
		// 1. Hull is below or equal to curve at every original knot.
		for i := 0; i < c.Len(); i++ {
			x, y := c.Knot(i)
			if h.Eval(x) > y+1e-9 {
				t.Fatalf("trial %d: hull above curve at x=%g: %g > %g", trial, x, h.Eval(x), y)
			}
		}
		// 2. Hull endpoints match curve endpoints.
		if h.MinX() != c.MinX() || h.MaxX() != c.MaxX() {
			t.Fatalf("trial %d: hull domain changed", trial)
		}
		x0, y0 := h.Knot(0)
		xn, yn := h.Knot(h.Len() - 1)
		if !approx(y0, c.Eval(x0), 1e-9) || !approx(yn, c.Eval(xn), 1e-9) {
			t.Fatalf("trial %d: hull endpoints moved", trial)
		}
		// 3. Hull slopes are non-decreasing (convexity).
		prevSlope := math.Inf(-1)
		for i := 1; i < h.Len(); i++ {
			x1, y1 := h.Knot(i - 1)
			x2, y2 := h.Knot(i)
			slope := (y2 - y1) / (x2 - x1)
			if slope < prevSlope-1e-9 {
				t.Fatalf("trial %d: hull not convex: slope %g after %g", trial, slope, prevSlope)
			}
			prevSlope = slope
		}
		// 4. Idempotent.
		if hh := h.ConvexHull(); !Equal(h, hh, 1e-9) {
			t.Fatalf("trial %d: hull not idempotent", trial)
		}
	}
}

func TestConvexHullOfConvexCurveIsIdentity(t *testing.T) {
	c := New([]float64{0, 1, 2, 3}, []float64{9, 4, 2, 1.5})
	if h := c.ConvexHull(); !Equal(c, h, 1e-12) {
		t.Errorf("hull of convex curve changed knots: %v -> %v", c.Ys(), h.Ys())
	}
}

func TestAreaUnder(t *testing.T) {
	// Linear curve from (0,0) to (10,10): area over [0,10] = 50.
	c := New([]float64{0, 10}, []float64{0, 10})
	if a := c.AreaUnder(0, 10); !approx(a, 50, 1e-6) {
		t.Errorf("AreaUnder=%g, want 50", a)
	}
	if a := c.AreaUnder(10, 0); !approx(a, 50, 1e-6) {
		t.Errorf("AreaUnder reversed=%g, want 50", a)
	}
	if a := c.AreaUnder(3, 3); a != 0 {
		t.Errorf("zero-width area = %g", a)
	}
}

func TestEqual(t *testing.T) {
	a := New([]float64{0, 1}, []float64{2, 3})
	b := New([]float64{0, 1}, []float64{2, 3 + 1e-12})
	if !Equal(a, b, 1e-9) {
		t.Error("nearly equal curves reported different")
	}
	c := New([]float64{0, 1, 2}, []float64{2, 3, 4})
	if Equal(a, c, 1e-9) {
		t.Error("different-length curves reported equal")
	}
}

// randomCurve builds a random monotone-X curve with n knots.
func randomCurve(rng *rand.Rand, n int) Curve {
	if n < 2 {
		n = 2
	}
	xs := make([]float64, n)
	seen := map[float64]bool{}
	for i := range xs {
		v := math.Floor(rng.Float64()*1000) / 10
		for seen[v] {
			v += 0.1
		}
		seen[v] = true
		xs[i] = v
	}
	sort.Float64s(xs)
	// Re-dedup after sort (floating addition above could collide).
	uniq := xs[:1]
	for _, v := range xs[1:] {
		if v > uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	xs = uniq
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = rng.Float64() * 100
	}
	return New(xs, ys)
}

func approx(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
