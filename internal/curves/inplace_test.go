package curves

import (
	"math"
	"math/rand"
	"testing"
)

// bitEqual reports exact (bit-level) knot equality.
func bitEqual(a, b Curve) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ax, ay := a.Knot(i)
		bx, by := b.Knot(i)
		if ax != bx || ay != by || math.Signbit(ay) != math.Signbit(by) {
			return false
		}
	}
	return true
}

func TestWrapMatchesNew(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{5, 2, 4}
	if !bitEqual(Wrap(xs, ys), New(xs, ys)) {
		t.Fatal("Wrap and New disagree")
	}
	for _, bad := range []struct{ xs, ys []float64 }{
		{[]float64{0, 1}, []float64{1}},
		{nil, nil},
		{[]float64{1, 1}, []float64{0, 0}},
		{[]float64{2, 1}, []float64{0, 0}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Wrap(%v, %v) did not panic", bad.xs, bad.ys)
				}
			}()
			Wrap(bad.xs, bad.ys)
		}()
	}
}

func TestConvexHullIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var dst Curve
	for trial := 0; trial < 500; trial++ {
		c := randomCurve(rng, 2+rng.Intn(40))
		want := c.ConvexHull()
		dst = c.ConvexHullInto(dst) // reuse the same backing every trial
		if !bitEqual(want, dst) {
			t.Fatalf("trial %d: hulls differ: %v vs %v", trial, want, dst)
		}
	}
}

func TestAddIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var dst Curve
	for trial := 0; trial < 300; trial++ {
		a := randomCurve(rng, 2+rng.Intn(30))
		b := randomCurve(rng, 2+rng.Intn(30))
		want := Add(a, b)
		dst = AddInto(dst, a, b)
		if !bitEqual(want, dst) {
			t.Fatalf("trial %d: sums differ", trial)
		}
	}
}

func TestScaleCloneInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var s, cl Curve
	for trial := 0; trial < 200; trial++ {
		c := randomCurve(rng, 2+rng.Intn(20))
		k := rng.NormFloat64()
		s = c.ScaleInto(s, k)
		if !bitEqual(c.Scale(k), s) {
			t.Fatalf("trial %d: ScaleInto differs from Scale", trial)
		}
		cl = c.CloneInto(cl)
		if !bitEqual(c, cl) {
			t.Fatalf("trial %d: CloneInto differs from source", trial)
		}
	}
}

func TestWalkerMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		c := randomCurve(rng, 2+rng.Intn(25))
		var w Walker
		w.Reset(c)
		// A non-decreasing query sweep spanning beyond both curve ends,
		// including exact knot hits.
		x := c.MinX() - 10
		for x <= c.MaxX()+10 {
			if got, want := w.Eval(x), c.Eval(x); got != want {
				t.Fatalf("trial %d: Walker.Eval(%g)=%g, Eval=%g", trial, x, got, want)
			}
			x += rng.Float64() * 5
			if rng.Intn(4) == 0 {
				// Jump exactly onto a knot.
				kx, _ := c.Knot(rng.Intn(c.Len()))
				if kx >= x {
					x = kx
				}
			}
		}
	}
}

func TestIntoVariantsDoNotAllocateSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomCurve(rng, 64)
	d := randomCurve(rng, 64)
	var hull, sum Curve
	// Warm up the destination backings.
	hull = c.ConvexHullInto(hull)
	sum = AddInto(sum, c, d)
	allocs := testing.AllocsPerRun(50, func() {
		hull = c.ConvexHullInto(hull)
		sum = AddInto(sum, c, d)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Into variants allocated %.1f times per run", allocs)
	}
}
