package curves

// In-place variants of the hot-path operations. The capacity allocator
// rebuilds cost curves and convex hulls every reconfiguration round; the
// allocating entry points (New, ConvexHull, Add, Scale) copy their knot
// slices defensively, which dominates the allocator's heap profile in
// steady state. The *Into forms below reuse a destination curve's backing
// arrays instead, and Wrap adopts caller-built slices without a copy.
//
// Borrowing contract: a curve built by Wrap or an Into variant shares
// memory with its source slices or destination curve. Callers own that
// memory and must not mutate it while the curve is in use, and must not
// pass a destination that aliases an input. Results are bit-identical to
// the allocating forms: same arithmetic, same order of operations.

// Wrap builds a curve that adopts the given slices without copying. The
// same validity rules as New apply (equal lengths, at least one knot,
// strictly increasing X) and violations panic. The caller must not mutate
// the slices for the curve's lifetime.
func Wrap(xs, ys []float64) Curve {
	if len(xs) != len(ys) {
		panic("curves: mismatched knot slices")
	}
	if len(xs) == 0 {
		panic("curves: empty curve")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			panic("curves: non-increasing x")
		}
	}
	return Curve{xs: xs, ys: ys}
}

// Reuse returns the curve's backing arrays truncated to zero length, for
// rebuilding a curve in place (append knots, then Wrap). The zero Curve
// returns nil slices, which append handles. After Reuse the original curve
// must not be evaluated again: its knots will be overwritten.
func (c Curve) Reuse() (xs, ys []float64) {
	return c.xs[:0], c.ys[:0]
}

// CloneInto copies c's knots into dst's backing arrays (growing them as
// needed) and returns the result. dst must not alias c.
func (c Curve) CloneInto(dst Curve) Curve {
	xs, ys := dst.Reuse()
	return Curve{xs: append(xs, c.xs...), ys: append(ys, c.ys...)}
}

// ScaleInto is Scale with the result built in dst's backing arrays. dst
// must not alias c.
func (c Curve) ScaleInto(dst Curve, k float64) Curve {
	xs, ys := dst.Reuse()
	xs = append(xs, c.xs...)
	for _, y := range c.ys {
		ys = append(ys, y*k)
	}
	return Curve{xs: xs, ys: ys}
}

// ConvexHullInto is ConvexHull with the hull built in dst's backing
// arrays: identical monotone chain, identical cross-product test, so the
// result matches ConvexHull bit for bit. dst must not alias c.
func (c Curve) ConvexHullInto(dst Curve) Curve {
	xs, ys := dst.Reuse()
	n := len(c.xs)
	if n <= 2 {
		return Curve{xs: append(xs, c.xs...), ys: append(ys, c.ys...)}
	}
	for i := 0; i < n; i++ {
		px, py := c.xs[i], c.ys[i]
		for len(xs) >= 2 {
			ax, ay := xs[len(xs)-2], ys[len(ys)-2]
			bx, by := xs[len(xs)-1], ys[len(ys)-1]
			// Same right-turn test as ConvexHull's cross().
			if (bx-ax)*(py-ay)-(px-ax)*(by-ay) <= 0 {
				xs = xs[:len(xs)-1]
				ys = ys[:len(ys)-1]
			} else {
				break
			}
		}
		xs = append(xs, px)
		ys = append(ys, py)
	}
	return Curve{xs: xs, ys: ys}
}

// AddInto is Add with the sum built in dst's backing arrays. dst must not
// alias a or b.
func AddInto(dst, a, b Curve) Curve {
	xs, ys := dst.Reuse()
	xs = mergeXsInto(xs, a.xs, b.xs)
	var wa, wb Walker
	wa.Reset(a)
	wb.Reset(b)
	for _, x := range xs {
		ys = append(ys, wa.Eval(x)+wb.Eval(x))
	}
	return Curve{xs: xs, ys: ys}
}

// mergeXsInto is mergeXs appending into dst instead of a fresh slice.
func mergeXsInto(dst, a, b []float64) []float64 {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v float64
		switch {
		case i >= len(a):
			v = b[j]
			j++
		case j >= len(b):
			v = a[i]
			i++
		case a[i] < b[j]:
			v = a[i]
			i++
		case b[j] < a[i]:
			v = b[j]
			j++
		default:
			v = a[i]
			i++
			j++
		}
		if len(dst) == 0 || v > dst[len(dst)-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

// Walker evaluates a curve at a non-decreasing sequence of points with an
// amortized O(1) cursor instead of Eval's per-call binary search. The
// interpolation arithmetic is Eval's exactly, so for any query sequence the
// results are bit-identical to calling Eval. Reset before each new sweep.
type Walker struct {
	c Curve
	i int
}

// Reset points the walker at c and rewinds the cursor.
func (w *Walker) Reset(c Curve) {
	w.c = c
	w.i = 1
}

// Eval returns y(x). x must be >= the previous Eval argument since Reset;
// smaller arguments return wrong interval lookups.
func (w *Walker) Eval(x float64) float64 {
	c := w.c
	n := len(c.xs)
	if x <= c.xs[0] {
		return c.ys[0]
	}
	if x >= c.xs[n-1] {
		return c.ys[n-1]
	}
	// Advance to the first knot with xs[i] >= x — the same index Eval's
	// sort.SearchFloat64s finds (queries are non-decreasing, so the cursor
	// never has to move back).
	i := w.i
	for c.xs[i] < x {
		i++
	}
	w.i = i
	if c.xs[i] == x {
		return c.ys[i]
	}
	x0, y0 := c.xs[i-1], c.ys[i-1]
	x1, y1 := c.xs[i], c.ys[i]
	f := (x - x0) / (x1 - x0)
	return y0 + f*(y1-y0)
}
