package curves

import (
	"math"
	"testing"
)

// FuzzConvexHull feeds arbitrary (including malformed) knot data through
// hull construction and checks three invariants:
//
//  1. malformed input never panics with anything but the documented
//     construction panics (New/Wrap reject it up front);
//  2. the in-place hull matches the allocating hull bit for bit;
//  3. hull-of-hull is the identity — a lower convex hull is already convex,
//     so taking it twice must change nothing.
func FuzzConvexHull(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the byte stream into knot pairs. Construction is expected
		// to reject bad shapes by panicking in New — that is the documented
		// contract ("construction errors are programming errors") — so the
		// harness recovers around it and only keeps inputs New accepts.
		n := len(data) / 16
		xs := make([]float64, 0, n)
		ys := make([]float64, 0, n)
		for i := 0; i+16 <= len(data); i += 16 {
			xs = append(xs, decodeFloat(data[i:i+8]))
			ys = append(ys, decodeFloat(data[i+8:i+16]))
		}
		var c Curve
		ok := func() (ok bool) {
			defer func() { recover() }()
			c = New(xs, ys)
			return true
		}()
		if !ok {
			return // malformed by New's rules; rejection is the correct behavior
		}
		for i := range xs {
			// NaN xs sneak past New's ordering check (every comparison with
			// NaN is false); hull geometry is undefined on non-finite values.
			if !finite(xs[i]) || !finite(ys[i]) {
				return
			}
		}

		hull := c.ConvexHull()
		inPlace := c.ConvexHullInto(Curve{})
		if !bitEqual(hull, inPlace) {
			t.Fatalf("ConvexHullInto differs from ConvexHull:\n  %v\n  %v", hull, inPlace)
		}

		again := hull.ConvexHull()
		if !bitEqual(hull, again) {
			t.Fatalf("hull of hull is not identity:\n  %v\n  %v", hull, again)
		}

		// Structural sanity: a hull never has more knots than its source and
		// keeps both endpoints.
		if hull.Len() > c.Len() {
			t.Fatalf("hull has %d knots, source %d", hull.Len(), c.Len())
		}
		if hx, _ := hull.Knot(0); hx != c.MinX() {
			t.Fatalf("hull lost first knot: %g vs %g", hx, c.MinX())
		}
		if hx, _ := hull.Knot(hull.Len() - 1); hx != c.MaxX() {
			t.Fatalf("hull lost last knot: %g vs %g", hx, c.MaxX())
		}
	})
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// decodeFloat reads 8 bytes as a float64 bit pattern.
func decodeFloat(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
