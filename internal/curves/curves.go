// Package curves provides piecewise-linear curves over cache capacity.
//
// Miss curves map allocated capacity (in cache lines) to misses per
// kilo-instruction; latency curves map capacity to total memory access
// latency (the paper's Eq. 1 + Eq. 2). Capacity allocation (internal/alloc)
// works on the convex lower hulls of these curves, which is what makes the
// Lookahead/Peekahead algorithm exact and fast.
package curves

import (
	"fmt"
	"math"
	"sort"
)

// Curve is a piecewise-linear function y(x) defined by knots with strictly
// increasing X. Evaluation clamps outside the knot range (y is constant
// before the first and after the last knot). The zero value is an empty
// curve; construct with New.
type Curve struct {
	xs []float64
	ys []float64
}

// New builds a curve from parallel knot slices. It panics if the slices have
// mismatched lengths, fewer than one point, or non-increasing X: curve
// construction errors are programming errors.
func New(xs, ys []float64) Curve {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("curves: %d xs vs %d ys", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		panic("curves: empty curve")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			panic(fmt.Sprintf("curves: non-increasing x at %d: %g after %g", i, xs[i], xs[i-1]))
		}
	}
	c := Curve{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	return c
}

// Constant returns a curve with constant value y over [0, xMax].
func Constant(y, xMax float64) Curve {
	if xMax <= 0 {
		return New([]float64{0}, []float64{y})
	}
	return New([]float64{0, xMax}, []float64{y, y})
}

// Len returns the number of knots.
func (c Curve) Len() int { return len(c.xs) }

// Knot returns the i-th knot.
func (c Curve) Knot(i int) (x, y float64) { return c.xs[i], c.ys[i] }

// Xs returns a copy of the knot X values.
func (c Curve) Xs() []float64 { return append([]float64(nil), c.xs...) }

// Ys returns a copy of the knot Y values.
func (c Curve) Ys() []float64 { return append([]float64(nil), c.ys...) }

// MaxX returns the largest knot X.
func (c Curve) MaxX() float64 { return c.xs[len(c.xs)-1] }

// MinX returns the smallest knot X.
func (c Curve) MinX() float64 { return c.xs[0] }

// Eval returns y(x) with linear interpolation between knots and clamping
// outside the domain.
func (c Curve) Eval(x float64) float64 {
	n := len(c.xs)
	if x <= c.xs[0] {
		return c.ys[0]
	}
	if x >= c.xs[n-1] {
		return c.ys[n-1]
	}
	// Find first knot with xs[i] >= x.
	i := sort.SearchFloat64s(c.xs, x)
	if c.xs[i] == x {
		return c.ys[i]
	}
	x0, y0 := c.xs[i-1], c.ys[i-1]
	x1, y1 := c.xs[i], c.ys[i]
	f := (x - x0) / (x1 - x0)
	return y0 + f*(y1-y0)
}

// Scale returns the curve with all Y values multiplied by k.
func (c Curve) Scale(k float64) Curve {
	ys := make([]float64, len(c.ys))
	for i, y := range c.ys {
		ys[i] = y * k
	}
	return Curve{xs: append([]float64(nil), c.xs...), ys: ys}
}

// ShiftY returns the curve with dy added to all Y values.
func (c Curve) ShiftY(dy float64) Curve {
	ys := make([]float64, len(c.ys))
	for i, y := range c.ys {
		ys[i] = y + dy
	}
	return Curve{xs: append([]float64(nil), c.xs...), ys: ys}
}

// Add returns the pointwise sum of two curves, defined on the union of their
// knot sets.
func Add(a, b Curve) Curve {
	xs := mergeXs(a.xs, b.xs)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = a.Eval(x) + b.Eval(x)
	}
	return Curve{xs: xs, ys: ys}
}

// Resample returns the curve evaluated at the given ascending X values.
func (c Curve) Resample(xs []float64) Curve {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = c.Eval(x)
	}
	return New(xs, ys)
}

// IsNonIncreasing reports whether the curve never rises as capacity grows
// (true for LRU miss curves, false for total-latency curves, which is why
// latency-aware allocation can leave capacity unused).
func (c Curve) IsNonIncreasing() bool {
	for i := 1; i < len(c.ys); i++ {
		if c.ys[i] > c.ys[i-1]+1e-12 {
			return false
		}
	}
	return true
}

// ArgMin returns the knot (x, y) with minimal y, preferring the smallest x on
// ties. This is the "sweet spot" of a total-latency curve (paper Fig. 5).
func (c Curve) ArgMin() (x, y float64) {
	bi := 0
	for i := 1; i < len(c.ys); i++ {
		if c.ys[i] < c.ys[bi] {
			bi = i
		}
	}
	return c.xs[bi], c.ys[bi]
}

// ConvexHull returns the lower convex hull of the curve: the tightest convex
// piecewise-linear function passing through a subset of the knots with
// hull(x) <= y(x) at knots. Allocation walks this hull so every step takes
// the steepest available marginal-utility segment (the Peekahead insight).
func (c Curve) ConvexHull() Curve {
	n := len(c.xs)
	if n <= 2 {
		return Curve{xs: append([]float64(nil), c.xs...), ys: append([]float64(nil), c.ys...)}
	}
	// Monotone-chain lower hull over knots (X already sorted).
	type pt struct{ x, y float64 }
	hull := make([]pt, 0, n)
	for i := 0; i < n; i++ {
		p := pt{c.xs[i], c.ys[i]}
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Keep b only if it is strictly below segment a-p (right turn test).
			if cross(a, b, p) <= 0 {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, p)
	}
	xs := make([]float64, len(hull))
	ys := make([]float64, len(hull))
	for i, p := range hull {
		xs[i] = p.x
		ys[i] = p.y
	}
	return Curve{xs: xs, ys: ys}
}

// cross computes the z-component of (b-a)×(p-a); negative means b lies on or
// above the segment a-p, so b is not part of the lower hull.
func cross(a, b, p struct{ x, y float64 }) float64 {
	return (b.x-a.x)*(p.y-a.y) - (p.x-a.x)*(b.y-a.y)
}

// mergeXs merges two ascending slices, removing duplicates.
func mergeXs(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v float64
		switch {
		case i >= len(a):
			v = b[j]
			j++
		case j >= len(b):
			v = a[i]
			i++
		case a[i] < b[j]:
			v = a[i]
			i++
		case b[j] < a[i]:
			v = b[j]
			j++
		default:
			v = a[i]
			i++
			j++
		}
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// AreaUnder integrates the curve over [x0, x1] with the same clamped-linear
// semantics as Eval. Used by tests and by average-latency summaries.
func (c Curve) AreaUnder(x0, x1 float64) float64 {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	const steps = 256
	h := (x1 - x0) / steps
	if h == 0 {
		return 0
	}
	sum := 0.5 * (c.Eval(x0) + c.Eval(x1))
	for i := 1; i < steps; i++ {
		sum += c.Eval(x0 + float64(i)*h)
	}
	return sum * h
}

// Equal reports whether two curves have identical knots within eps.
func Equal(a, b Curve, eps float64) bool {
	if len(a.xs) != len(b.xs) {
		return false
	}
	for i := range a.xs {
		if math.Abs(a.xs[i]-b.xs[i]) > eps || math.Abs(a.ys[i]-b.ys[i]) > eps {
			return false
		}
	}
	return true
}
