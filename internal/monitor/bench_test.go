package monitor

import (
	"math/rand"
	"testing"

	"cdcs/internal/cachesim"
	"cdcs/internal/curves"
	"cdcs/internal/trace"
)

// BenchmarkGMONAccess measures the monitor's per-access cost (hardware does
// this off the critical path; software models care about throughput).
func BenchmarkGMONAccess(b *testing.B) {
	m := NewGMON(16, 64, 1024, 524288)
	gen := trace.NewGenerator(
		curves.New([]float64{0, 8192, 16384}, []float64{0.8, 0.3, 0.1}),
		0, rand.New(rand.NewSource(1)))
	addrs := gen.Stream(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(addrs[i&(1<<16-1)])
	}
}

// BenchmarkGMONCurveExtraction measures miss-curve reconstruction.
func BenchmarkGMONCurveExtraction(b *testing.B) {
	m := NewGMON(16, 64, 1024, 524288)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		m.Access(cachesim.Addr(rng.Intn(50000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MissRatioCurve()
	}
}
