// Package monitor implements miss-curve monitors: conventional utility
// monitors (UMONs) and the paper's geometric monitors (GMONs, §IV-G).
//
// Both are small tag-only set-associative arrays fed a hash-sampled slice of
// the access stream. A UMON's ways each model a fixed fraction of the target
// cache, so fine granularity over a large LLC needs impractically many ways
// (512 for 64KB resolution over 32MB). A GMON adds a limit register per way
// that geometrically decreases the sampling rate way by way (factor γ), so
// way w models capacity ∝ 1/γ^w: 64 ways cover 64KB…32MB with high
// resolution at small sizes — the paper's key monitoring contribution.
package monitor

import (
	"fmt"
	"math"

	"cdcs/internal/cachesim"
	"cdcs/internal/curves"
)

// invalidTag marks an empty way; real tags are 16-bit hashes stored in
// int32 so the marker cannot collide.
const invalidTag = int32(-1)

// Monitor is a sampled, tag-only LRU array with per-way limit registers.
// With all limits at maximum it behaves as a UMON; with geometrically
// decreasing limits it is a GMON.
type Monitor struct {
	sets int
	ways int

	// sampleThreshold gates which addresses the monitor observes:
	// an address is sampled iff hash32(addr) < sampleThreshold.
	sampleThreshold uint32
	sigma           float64 // sampling rate implied by sampleThreshold

	// limit[w] is the per-way limit register: a tag moving into way w is
	// kept iff its 16-bit hash is below limit[w].
	limit []uint32
	// rate[w] is the survival probability into way w (γ^w for GMONs).
	rate []float64

	// tags[set*ways+w] holds the 16-bit hashed tag at way w (invalidTag if
	// empty). Position within the set is exact LRU order.
	tags []int32

	hits     []int64 // per-way raw hit counts
	sampled  int64   // sampled accesses observed
	observed int64   // all accesses offered (sampled or not)
}

// NewUMON builds a conventional utility monitor: sets×ways tags modeling
// modeledLines of cache with uniform sampling. Each way models
// modeledLines/ways.
func NewUMON(sets, ways int, modeledLines float64) *Monitor {
	sigma := float64(sets*ways) / modeledLines
	limits := make([]float64, ways)
	for i := range limits {
		limits[i] = 1.0
	}
	return newMonitor(sets, ways, sigma, limits)
}

// NewGMON builds a geometric monitor whose first way models way0Lines and
// whose ways jointly cover totalLines: it derives the sampling rate from
// way0Lines and solves for the γ that reaches totalLines (the paper's
// γ≈0.95 for 64 ways over 64KB…32MB).
func NewGMON(sets, ways int, way0Lines, totalLines float64) *Monitor {
	sigma := float64(sets) / way0Lines
	gamma := solveGamma(ways, totalLines/way0Lines)
	limits := make([]float64, ways)
	v := 1.0
	for i := range limits {
		limits[i] = v
		v *= gamma
	}
	return newMonitor(sets, ways, sigma, limits)
}

// newMonitor builds a monitor with explicit per-way survival rates.
func newMonitor(sets, ways int, sigma float64, rates []float64) *Monitor {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("monitor: invalid geometry %dx%d", sets, ways))
	}
	if sigma <= 0 || sigma > 1 {
		panic(fmt.Sprintf("monitor: invalid sampling rate %g", sigma))
	}
	m := &Monitor{
		sets:            sets,
		ways:            ways,
		sampleThreshold: uint32(sigma * float64(math.MaxUint32)),
		sigma:           sigma,
		limit:           make([]uint32, ways),
		rate:            append([]float64(nil), rates...),
		tags:            make([]int32, sets*ways),
		hits:            make([]int64, ways),
	}
	for i := range m.tags {
		m.tags[i] = invalidTag
	}
	for w, r := range rates {
		m.limit[w] = uint32(r * 65536)
	}
	return m
}

// solveGamma finds γ<1 with sum_{w=0..ways-1} γ^-w = coverRatio by bisection
// (coverRatio = totalLines/way0Lines ≥ ways).
func solveGamma(ways int, coverRatio float64) float64 {
	if coverRatio <= float64(ways) {
		return 1 // UMON degenerate: uniform sampling already covers it
	}
	sum := func(g float64) float64 {
		s, v := 0.0, 1.0
		for i := 0; i < ways; i++ {
			s += 1 / v
			v *= g
		}
		return s
	}
	lo, hi := 0.5, 1.0 // sum is decreasing in γ
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if sum(mid) > coverRatio {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Gamma returns the per-way sampling decay (1.0 for UMONs).
func (m *Monitor) Gamma() float64 {
	if m.ways < 2 {
		return 1
	}
	return m.rate[1] / m.rate[0]
}

// SampleRate returns the address-sampling rate σ.
func (m *Monitor) SampleRate() float64 { return m.sigma }

// Ways returns the way count.
func (m *Monitor) Ways() int { return m.ways }

// hash64 is splitmix64: deterministic, well-mixed, stdlib-only.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Access offers an address to the monitor; it reports whether the address
// was sampled. Monitoring is off the critical path in hardware, so this
// models only state, not latency.
func (m *Monitor) Access(addr cachesim.Addr) bool {
	m.observed++
	h := hash64(uint64(addr))
	if uint32(h) >= m.sampleThreshold {
		return false
	}
	m.sampled++
	set := int((h >> 32) % uint64(m.sets))
	tag16 := int32((h >> 48) & 0xFFFF)
	tags := m.tags[set*m.ways : (set+1)*m.ways]

	// Look up.
	hitWay := -1
	for w, t := range tags {
		if t == tag16 {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		m.hits[hitWay]++
	}

	// Move to front with per-way limit filtering: shifted tags are dropped
	// when their hash exceeds the destination way's limit register, and the
	// shifting process terminates there (paper §IV-G).
	end := m.ways - 1
	if hitWay >= 0 {
		end = hitWay
	}
	carry := tag16
	for w := 0; w <= end; w++ {
		cur := tags[w]
		tags[w] = carry
		if cur == invalidTag {
			// Hole absorbs the shift.
			carry = invalidTag
			break
		}
		if w+1 < m.ways && uint32(cur) >= m.limit[w+1] {
			// cur is filtered out moving into way w+1; terminate.
			carry = invalidTag
			break
		}
		carry = cur
	}
	_ = carry // last tag falls off the end (or was discarded)
	return true
}

// Sampled returns how many accesses were sampled into the monitor.
func (m *Monitor) Sampled() int64 { return m.sampled }

// Observed returns how many accesses were offered.
func (m *Monitor) Observed() int64 { return m.observed }

// WayCapacity returns the real cache capacity (lines) modeled by way w:
// sets/(σ·rate(w)).
func (m *Monitor) WayCapacity(w int) float64 {
	return float64(m.sets) / (m.sigma * m.rate[w])
}

// MissRatioCurve reconstructs the monitored miss-ratio curve. The point for
// cumulative capacity through way w uses hits scaled by the inverse per-way
// sampling rate. With no sampled accesses it returns a flat all-miss curve.
func (m *Monitor) MissRatioCurve() curves.Curve {
	xs := make([]float64, 0, m.ways+1)
	ys := make([]float64, 0, m.ways+1)
	xs = append(xs, 0)
	ys = append(ys, 1)
	if m.sampled == 0 {
		return curves.New([]float64{0, 1}, []float64{1, 1})
	}
	cap := 0.0
	hits := 0.0
	total := float64(m.sampled)
	for w := 0; w < m.ways; w++ {
		cap += m.WayCapacity(w)
		hits += float64(m.hits[w]) / m.rate[w]
		ratio := (total - hits) / total
		if ratio < 0 {
			ratio = 0
		}
		xs = append(xs, cap)
		ys = append(ys, ratio)
	}
	return curves.New(xs, ys)
}

// Reset clears tag state and counters for the next monitoring epoch.
func (m *Monitor) Reset() {
	for i := range m.tags {
		m.tags[i] = invalidTag
	}
	for i := range m.hits {
		m.hits[i] = 0
	}
	m.sampled, m.observed = 0, 0
}

// StateBytes returns the monitor's hardware footprint in bytes: 16-bit tags
// plus one 16-bit limit register per way (paper: 1024 tags × 64 ways ⇒
// ~2.1KB per monitor).
func (m *Monitor) StateBytes() int {
	return m.sets*m.ways*2 + m.ways*2
}
