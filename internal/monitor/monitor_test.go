package monitor

import (
	"math"
	"math/rand"
	"testing"

	"cdcs/internal/cachesim"
	"cdcs/internal/curves"
	"cdcs/internal/trace"
)

func TestSolveGamma(t *testing.T) {
	// 64 ways covering 512x the first way's capacity (the paper's 64KB->32MB)
	// should need γ slightly above 0.95.
	g := solveGamma(64, 512)
	if g < 0.93 || g > 0.97 {
		t.Errorf("gamma=%g, want ~0.95", g)
	}
	// Coverage equal to way count: uniform sampling suffices.
	if g := solveGamma(16, 16); g != 1 {
		t.Errorf("degenerate gamma=%g, want 1", g)
	}
	// Verify the solved γ actually covers.
	sum, v := 0.0, 1.0
	for i := 0; i < 64; i++ {
		sum += 1 / v
		v *= g
	}
	if math.Abs(sum-512) > 1 {
		t.Errorf("solved gamma covers %g way0-units, want 512", sum)
	}
}

func TestGMONPaperGeometry(t *testing.T) {
	// The paper's GMON: 1024 tags, 64 ways (16 sets), way 0 models 64KB
	// (1024 lines), full coverage 32MB (524288 lines).
	m := NewGMON(16, 64, 1024, 524288)
	if g := m.Gamma(); g < 0.93 || g > 0.97 {
		t.Errorf("gamma=%g, want ~0.95", g)
	}
	if s := m.SampleRate(); math.Abs(s-1.0/64) > 1e-9 {
		t.Errorf("sample rate %g, want 1/64", s)
	}
	if c := m.WayCapacity(0); math.Abs(c-1024) > 1e-6 {
		t.Errorf("way 0 models %g lines, want 1024", c)
	}
	// Paper: modeled capacity per way grows ~26x across the array.
	growth := m.WayCapacity(63) / m.WayCapacity(0)
	if growth < 20 || growth > 35 {
		t.Errorf("way growth %gx, want ~26x", growth)
	}
	// Paper: ~2.1KB per monitor.
	if b := m.StateBytes(); b < 2000 || b > 2300 {
		t.Errorf("monitor state %dB, want ~2.1KB", b)
	}
	// Total modeled capacity ~32MB.
	total := 0.0
	for w := 0; w < 64; w++ {
		total += m.WayCapacity(w)
	}
	if total < 0.9*524288 || total > 1.1*524288 {
		t.Errorf("total modeled capacity %g lines, want ~524288", total)
	}
}

func TestUMONWayCapacityUniform(t *testing.T) {
	m := NewUMON(16, 8, 8192)
	for w := 0; w < 8; w++ {
		if c := m.WayCapacity(w); math.Abs(c-1024) > 1e-6 {
			t.Errorf("UMON way %d models %g lines, want 1024", w, c)
		}
	}
	if m.Gamma() != 1 {
		t.Errorf("UMON gamma=%g, want 1", m.Gamma())
	}
}

func TestMonitorSamplingRate(t *testing.T) {
	m := NewGMON(16, 16, 1024, 16384) // σ = 16/1024 = 1/64
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200000; i++ {
		m.Access(cachesim.Addr(rng.Uint64()))
	}
	frac := float64(m.Sampled()) / float64(m.Observed())
	if frac < 0.8/64 || frac > 1.25/64 {
		t.Errorf("sampled fraction %g, want ~1/64", frac)
	}
}

// runMonitored feeds a synthetic stream with the given target curve through a
// monitor and returns the reconstructed curve.
func runMonitored(m *Monitor, target curves.Curve, n int, seed int64) curves.Curve {
	gen := trace.NewGenerator(target, 0, rand.New(rand.NewSource(seed)))
	for i := 0; i < n; i++ {
		m.Access(gen.Next())
	}
	return m.MissRatioCurve()
}

func TestUMONReconstructsCurve(t *testing.T) {
	// Modest domain: 8192 lines, smooth decay curve. A UMON with enough
	// ways should reconstruct it closely at way-boundary capacities.
	target := curves.New(
		[]float64{0, 1024, 2048, 4096, 8192},
		[]float64{0.9, 0.6, 0.4, 0.2, 0.1})
	m := NewUMON(64, 8, 8192)
	got := runMonitored(m, target, 400000, 21)
	for _, x := range []float64{1024, 2048, 4096, 8192} {
		if err := math.Abs(got.Eval(x) - target.Eval(x)); err > 0.08 {
			t.Errorf("UMON error at %g lines: got %.3f want %.3f", x, got.Eval(x), target.Eval(x))
		}
	}
}

func TestGMONReconstructsCurve(t *testing.T) {
	target := curves.New(
		[]float64{0, 256, 1024, 2048, 4096, 8192},
		[]float64{0.95, 0.7, 0.45, 0.3, 0.15, 0.08})
	// GMON: 64 sets × 16 ways, way 0 models 256 lines, covering 8192.
	m := NewGMON(64, 16, 256, 8192)
	got := runMonitored(m, target, 600000, 22)
	for _, x := range []float64{256, 1024, 4096, 8192} {
		if err := math.Abs(got.Eval(x) - target.Eval(x)); err > 0.10 {
			t.Errorf("GMON error at %g lines: got %.3f want %.3f", x, got.Eval(x), target.Eval(x))
		}
	}
}

func TestGMONBeatsCoarseUMONAtSmallSizes(t *testing.T) {
	// The paper's motivation: with few ways, a UMON covering a large cache
	// has no resolution below its first way. A working set far below that
	// boundary is invisible to the UMON but resolved by the GMON.
	target := curves.New(
		[]float64{0, 192, 256, 320, 16384},
		[]float64{0.9, 0.85, 0.1, 0.05, 0.05})

	gmon := NewGMON(64, 16, 128, 16384) // first way models 128 lines
	umon := NewUMON(64, 16, 16384)      // each way models 1024 lines

	const n = 600000
	gc := runMonitored(gmon, target, n, 33)
	uc := runMonitored(umon, target, n, 33)

	// Evaluate fidelity at half the UMON's first-way capacity.
	x := 512.0
	gErr := math.Abs(gc.Eval(x) - target.Eval(x))
	uErr := math.Abs(uc.Eval(x) - target.Eval(x))
	if gErr >= uErr {
		t.Errorf("GMON error %.3f not better than UMON error %.3f at %g lines", gErr, uErr, x)
	}
	if gErr > 0.15 {
		t.Errorf("GMON error %.3f too large at small size", gErr)
	}
}

func TestMissRatioCurveShape(t *testing.T) {
	m := NewGMON(16, 8, 256, 2048)
	// No accesses: all-miss curve.
	c := m.MissRatioCurve()
	if c.Eval(0) != 1 || c.Eval(2048) != 1 {
		t.Errorf("empty monitor curve not all-miss: %v", c.Ys())
	}
	// After traffic: curve starts at 1 at zero capacity, within [0,1].
	gen := trace.NewGenerator(curves.Constant(0.4, 1024), 0, rand.New(rand.NewSource(5)))
	for i := 0; i < 100000; i++ {
		m.Access(gen.Next())
	}
	c = m.MissRatioCurve()
	if y := c.Eval(0); y != 1 {
		t.Errorf("curve at 0 capacity = %g, want 1", y)
	}
	for i := 0; i < c.Len(); i++ {
		_, y := c.Knot(i)
		if y < 0 || y > 1 {
			t.Errorf("curve value %g outside [0,1]", y)
		}
	}
}

func TestReset(t *testing.T) {
	m := NewGMON(16, 8, 256, 2048)
	gen := trace.NewGenerator(curves.Constant(0.3, 512), 0, rand.New(rand.NewSource(6)))
	for i := 0; i < 50000; i++ {
		m.Access(gen.Next())
	}
	if m.Sampled() == 0 {
		t.Fatal("nothing sampled before reset")
	}
	m.Reset()
	if m.Sampled() != 0 || m.Observed() != 0 {
		t.Error("Reset did not clear counters")
	}
	c := m.MissRatioCurve()
	if c.Eval(1024) != 1 {
		t.Error("Reset did not clear tag state")
	}
}

func TestMonitorDeterminism(t *testing.T) {
	run := func() curves.Curve {
		m := NewGMON(32, 8, 256, 4096)
		gen := trace.NewGenerator(curves.Constant(0.5, 1024), 7, rand.New(rand.NewSource(9)))
		for i := 0; i < 50000; i++ {
			m.Access(gen.Next())
		}
		return m.MissRatioCurve()
	}
	a, b := run(), run()
	if !curves.Equal(a, b, 0) {
		t.Error("monitor runs with identical seeds diverged")
	}
}

func TestNewMonitorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewUMON(0, 4, 1024) },
		func() { NewUMON(4, 0, 1024) },
		func() { NewUMON(4, 4, 1) }, // σ > 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid monitor construction did not panic")
				}
			}()
			f()
		}()
	}
}
