package workload

import (
	"fmt"
	"maps"
	"math/rand"
	"slices"

	"cdcs/internal/curves"
)

// VCKind distinguishes the virtual-cache types CDCS creates (§III): one
// thread-private VC per thread and one shared VC per process. (The paper also
// defines a global VC for data shared across processes; workloads in the
// evaluation barely use it, so mixes here omit it and we document that in
// DESIGN.md.)
type VCKind int

const (
	// ThreadPrivate VCs hold data accessed by a single thread.
	ThreadPrivate VCKind = iota
	// ProcessShared VCs hold data accessed by multiple threads of a process.
	ProcessShared
)

// String returns the kind name.
func (k VCKind) String() string {
	if k == ThreadPrivate {
		return "private"
	}
	return "shared"
}

// VC is a virtual cache: the unit of capacity allocation and data placement.
type VC struct {
	// ID indexes the VC within its Mix.
	ID int
	// Proc is the owning process index within the Mix.
	Proc int
	// Kind is the VC type.
	Kind VCKind
	// MissRatio maps allocated lines to miss ratio for accesses to this VC.
	MissRatio curves.Curve
	// Accessors maps thread index to that thread's APKI into this VC.
	Accessors map[int]float64

	// Dense sealed views (ascending thread id); nil until Mix.Seal.
	accIDs   []int
	accRates []float64
}

// TotalAPKI sums access intensity over all accessor threads (in thread-id
// order, so the floating-point sum is reproducible run to run). Sealed mixes
// sum the dense view — same values, same order, no map walk.
func (v *VC) TotalAPKI() float64 {
	sum := 0.0
	if v.accIDs != nil {
		for _, r := range v.accRates {
			sum += r
		}
		return sum
	}
	for _, t := range slices.Sorted(maps.Keys(v.Accessors)) {
		sum += v.Accessors[t]
	}
	return sum
}

// Thread is a schedulable thread with its access split across VCs.
type Thread struct {
	// ID indexes the thread within its Mix.
	ID int
	// Proc is the owning process index.
	Proc int
	// Name is "bench#k[.t]" for diagnostics.
	Name string
	// CPIBase and MLP come from the owning profile.
	CPIBase float64
	MLP     float64
	// Access maps VC id to APKI.
	Access map[int]float64

	// Dense sealed views (ascending VC id); nil until Mix.Seal.
	vcIDs   []int
	vcRates []float64
}

// TotalAPKI sums the thread's access intensity over all VCs (in VC-id order,
// so the floating-point sum is reproducible run to run). Sealed mixes sum
// the dense view — same values, same order, no map walk.
func (t *Thread) TotalAPKI() float64 {
	sum := 0.0
	if t.vcIDs != nil {
		for _, r := range t.vcRates {
			sum += r
		}
		return sum
	}
	for _, v := range slices.Sorted(maps.Keys(t.Access)) {
		sum += t.Access[v]
	}
	return sum
}

// Process groups the threads of one application instance.
type Process struct {
	// Name is "bench#k".
	Name string
	// Bench is the profile name.
	Bench string
	// Multithreaded reports whether this instance came from an MTProfile.
	Multithreaded bool
	// ThreadIDs lists member threads.
	ThreadIDs []int
	// VCIDs lists the VCs owned by this process.
	VCIDs []int
}

// Mix is a complete workload: processes expanded into threads and VCs. Build
// with NewMix and the Add methods; a Mix is immutable once handed to a
// simulator.
type Mix struct {
	Procs   []Process
	Threads []Thread
	VCs     []VC

	counts map[string]int // instances per bench name, for naming
	sealed bool           // dense views materialized (see Seal)
}

// NewMix returns an empty mix.
func NewMix() *Mix {
	return &Mix{counts: map[string]int{}}
}

// AddST appends a single-threaded app instance: one thread, one private VC.
func (m *Mix) AddST(p *Profile) *Mix {
	m.unseal()
	m.counts[p.Name]++
	name := fmt.Sprintf("%s#%d", p.Name, m.counts[p.Name])
	proc := len(m.Procs)
	tid := len(m.Threads)
	vid := len(m.VCs)

	m.VCs = append(m.VCs, VC{
		ID: vid, Proc: proc, Kind: ThreadPrivate,
		MissRatio: p.MissRatio,
		Accessors: map[int]float64{tid: p.APKI},
	})
	m.Threads = append(m.Threads, Thread{
		ID: tid, Proc: proc, Name: name,
		CPIBase: p.CPIBase, MLP: p.MLP,
		Access: map[int]float64{vid: p.APKI},
	})
	m.Procs = append(m.Procs, Process{
		Name: name, Bench: p.Name,
		ThreadIDs: []int{tid}, VCIDs: []int{vid},
	})
	return m
}

// AddMT appends a multithreaded app instance: p.Threads threads, one private
// VC per thread, and one shared VC accessed by all of them.
func (m *Mix) AddMT(p *MTProfile) *Mix {
	m.unseal()
	m.counts[p.Name]++
	name := fmt.Sprintf("%s#%d", p.Name, m.counts[p.Name])
	proc := len(m.Procs)

	shID := len(m.VCs)
	shared := VC{
		ID: shID, Proc: proc, Kind: ProcessShared,
		MissRatio: p.SharedRatio,
		Accessors: map[int]float64{},
	}
	m.VCs = append(m.VCs, shared)

	procRec := Process{Name: name, Bench: p.Name, Multithreaded: true, VCIDs: []int{shID}}
	privAPKI := p.APKI * (1 - p.SharedFrac)
	shAPKI := p.APKI * p.SharedFrac
	for i := 0; i < p.Threads; i++ {
		tid := len(m.Threads)
		vid := len(m.VCs)
		m.VCs = append(m.VCs, VC{
			ID: vid, Proc: proc, Kind: ThreadPrivate,
			MissRatio: p.PrivRatio,
			Accessors: map[int]float64{tid: privAPKI},
		})
		m.Threads = append(m.Threads, Thread{
			ID: tid, Proc: proc, Name: fmt.Sprintf("%s.%d", name, i),
			CPIBase: p.CPIBase, MLP: p.MLP,
			Access: map[int]float64{vid: privAPKI, shID: shAPKI},
		})
		m.VCs[shID].Accessors[tid] = shAPKI
		procRec.ThreadIDs = append(procRec.ThreadIDs, tid)
		procRec.VCIDs = append(procRec.VCIDs, vid)
	}
	m.Procs = append(m.Procs, procRec)
	return m
}

// Validate checks internal consistency; it returns an error describing the
// first violation found. Simulators call this once per mix.
func (m *Mix) Validate() error {
	for ti, th := range m.Threads {
		if th.ID != ti {
			return fmt.Errorf("thread %d has ID %d", ti, th.ID)
		}
		if len(th.Access) == 0 {
			return fmt.Errorf("thread %q accesses no VCs", th.Name)
		}
		for vid := range th.Access {
			if vid < 0 || vid >= len(m.VCs) {
				return fmt.Errorf("thread %q references VC %d out of range", th.Name, vid)
			}
			if _, ok := m.VCs[vid].Accessors[th.ID]; !ok {
				return fmt.Errorf("thread %q -> VC %d missing reverse edge", th.Name, vid)
			}
		}
	}
	for vi, vc := range m.VCs {
		if vc.ID != vi {
			return fmt.Errorf("VC %d has ID %d", vi, vc.ID)
		}
		for tid, apki := range vc.Accessors {
			if tid < 0 || tid >= len(m.Threads) {
				return fmt.Errorf("VC %d accessor thread %d out of range", vi, tid)
			}
			got, ok := m.Threads[tid].Access[vc.ID]
			if !ok || got != apki {
				return fmt.Errorf("VC %d accessor %d rate mismatch", vi, tid)
			}
		}
	}
	return nil
}

// RandomST builds a mix of n single-threaded apps drawn uniformly (with
// replacement) from profiles, using rng for reproducibility.
func RandomST(rng *rand.Rand, profiles []*Profile, n int) *Mix {
	m := NewMix()
	for i := 0; i < n; i++ {
		m.AddST(profiles[rng.Intn(len(profiles))])
	}
	m.Seal()
	return m
}

// RandomMT builds a mix of n multithreaded apps drawn uniformly (with
// replacement) from profiles.
func RandomMT(rng *rand.Rand, profiles []*MTProfile, n int) *Mix {
	m := NewMix()
	for i := 0; i < n; i++ {
		m.AddMT(profiles[rng.Intn(len(profiles))])
	}
	m.Seal()
	return m
}

// CaseStudy returns the §II-B mix: 6×omnet, 14×milc, 2×ilbdc (8 threads
// each) — 36 threads for the 36-tile CMP.
func CaseStudy() *Mix {
	cpu := SPECCPU()
	omp := SPECOMP()
	m := NewMix()
	for i := 0; i < 6; i++ {
		m.AddST(ByName(cpu, "omnet"))
	}
	for i := 0; i < 14; i++ {
		m.AddST(ByName(cpu, "milc"))
	}
	for i := 0; i < 2; i++ {
		m.AddMT(MTByName(omp, "ilbdc"))
	}
	m.Seal()
	return m
}

// Fig16CaseStudy returns the §VI-B under-committed MT mix: mgrid (private-
// heavy, intensive) + md + ilbdc + nab (shared-heavy), 8 threads each.
func Fig16CaseStudy() *Mix {
	omp := SPECOMP()
	m := NewMix()
	for _, name := range []string{"mgrid", "md", "ilbdc", "nab"} {
		m.AddMT(MTByName(omp, name))
	}
	m.Seal()
	return m
}
