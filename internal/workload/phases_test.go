package workload

import (
	"testing"
)

func TestPhasedProfileCycles(t *testing.T) {
	set := PhasedSet()
	pulse := set[0] // 2 phases × 2 epochs
	if pulse.TotalEpochs() != 4 {
		t.Fatalf("pulse cycle length %d, want 4", pulse.TotalEpochs())
	}
	// Phase boundaries: epochs 0-1 phase A, 2-3 phase B, 4 wraps to A.
	a0 := pulse.At(0)
	a1 := pulse.At(1)
	b0 := pulse.At(2)
	wrap := pulse.At(4)
	if a0.MissRatio.Eval(1*LinesPerMB) != a1.MissRatio.Eval(1*LinesPerMB) {
		t.Error("same phase produced different curves")
	}
	if a0.MissRatio.Eval(1*LinesPerMB) == b0.MissRatio.Eval(1*LinesPerMB) {
		t.Error("phase change did not change the curve")
	}
	if wrap.MissRatio.Eval(1*LinesPerMB) != a0.MissRatio.Eval(1*LinesPerMB) {
		t.Error("phases did not wrap around")
	}
}

func TestPhasedProfilesAreValidProfiles(t *testing.T) {
	for _, pp := range PhasedSet() {
		for e := 0; e < pp.TotalEpochs()+2; e++ {
			p := pp.At(e)
			if p.APKI <= 0 || p.CPIBase <= 0 || p.MLP < 1 {
				t.Errorf("%s epoch %d: bad parameters", pp.Name, e)
			}
			if !p.MissRatio.IsNonIncreasing() {
				t.Errorf("%s epoch %d: increasing miss curve", pp.Name, e)
			}
		}
	}
}

func TestPhasedSteadyAppNeverChanges(t *testing.T) {
	steady := MTByNamePhased(PhasedSet(), "steady")
	if steady == nil {
		t.Fatal("steady profile missing")
	}
	for e := 1; e < 6; e++ {
		if steady.At(e).MissRatio.Eval(LinesPerMB) != steady.At(0).MissRatio.Eval(LinesPerMB) {
			t.Fatal("steady app changed across epochs")
		}
	}
}

func TestPhasedEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty phased profile did not panic")
		}
	}()
	(&PhasedProfile{Name: "x"}).At(0)
}

// MTByNamePhased finds a phased profile by name (test helper; exported-style
// naming kept local to the test).
func MTByNamePhased(ps []*PhasedProfile, name string) *PhasedProfile {
	for _, p := range ps {
		if p.Name == name {
			return p
		}
	}
	return nil
}
