// Package workload defines synthetic application profiles and workload mixes.
//
// The paper evaluates on SPEC CPU2006 and SPEC OMP2012, which are proprietary;
// we substitute parameterized synthetic profiles whose miss curves match the
// shapes the paper reports (Fig. 2 gives omnet, milc and ilbdc exactly; the
// others follow published characterizations: streaming, cache-fitting with a
// cliff, friendly with gradual reuse, or insensitive). Each profile captures
// the three quantities that drive every result in the paper: LLC access
// intensity, the miss-ratio curve, and how much latency the core can hide.
package workload

import (
	"fmt"
	"math"

	"cdcs/internal/curves"
)

// LinesPerMB converts capacity in MB to 64-byte cache lines.
const LinesPerMB = 16384

// LineBytes is the cache line size used throughout the model.
const LineBytes = 64

// Class describes the qualitative cache behaviour of an application, in the
// taxonomy CRUISE uses (the paper discusses it in §II-C).
type Class int

const (
	// Streaming apps get no hits regardless of capacity (milc, lbm).
	Streaming Class = iota
	// Fitting apps have a sharp working-set cliff (omnet, xalancbmk).
	Fitting
	// Friendly apps gain gradually with capacity (mcf, bzip2).
	Friendly
	// Insensitive apps have tiny footprints and low intensity (calculix).
	Insensitive
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Streaming:
		return "streaming"
	case Fitting:
		return "fitting"
	case Friendly:
		return "friendly"
	case Insensitive:
		return "insensitive"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Profile is a single-threaded application model. All curves map capacity in
// lines to a miss ratio in [0, 1]; misses per kilo-instruction are
// APKI×ratio.
type Profile struct {
	// Name is the benchmark name (SPEC-like).
	Name string
	// Class is the qualitative cache behaviour.
	Class Class
	// APKI is LLC accesses (L2 misses) per kilo-instruction.
	APKI float64
	// CPIBase is cycles per instruction assuming all LLC accesses hit with
	// zero network latency (core + L1/L2 time).
	CPIBase float64
	// MLP divides exposed miss latency: memory-level parallelism the core
	// extracts on LLC misses (streaming apps overlap many misses).
	MLP float64
	// MissRatio maps LLC capacity in lines to miss ratio.
	MissRatio curves.Curve
}

// MPKI returns misses per kilo-instruction at the given capacity in lines.
func (p *Profile) MPKI(lines float64) float64 {
	return p.APKI * p.MissRatio.Eval(lines)
}

// FootprintLines returns the capacity beyond which the app sees (almost) no
// further miss-ratio improvement: the knee used for classification.
func (p *Profile) FootprintLines() float64 {
	final := p.MissRatio.Eval(p.MissRatio.MaxX())
	for i := 0; i < p.MissRatio.Len(); i++ {
		x, y := p.MissRatio.Knot(i)
		if y <= final+0.005 {
			return x
		}
	}
	return p.MissRatio.MaxX()
}

// maxCurveLines bounds profile curve domains: 64 banks × 8192 lines = 32MB.
const maxCurveLines = 64 * 8192

// cliff builds a fitting-app miss-ratio curve: a high plateau that falls
// steeply once the working set fits. The small shoulder below the cliff
// mirrors real set-conflict behaviour and keeps hulls non-degenerate.
func cliff(high, low, footprintLines float64) curves.Curve {
	f := footprintLines
	xs := []float64{0, 0.5 * f, 0.8 * f, 0.95 * f, f, 1.1 * f}
	ys := []float64{high, high * 0.97, high * 0.9, high * 0.5, low * 1.5, low}
	if xs[len(xs)-1] < maxCurveLines {
		xs = append(xs, maxCurveLines)
		ys = append(ys, low)
	}
	return curves.New(xs, ys)
}

// stream builds a streaming miss-ratio curve: flat, no reuse.
func stream(ratio float64) curves.Curve {
	return curves.Constant(ratio, maxCurveLines)
}

// decay builds a friendly-app curve: exponential decay from r0 toward rInf
// with the given half-capacity, sampled at geometrically spaced knots.
func decay(r0, rInf, halfLines float64) curves.Curve {
	const knots = 24
	xs := make([]float64, 0, knots+1)
	ys := make([]float64, 0, knots+1)
	xs = append(xs, 0)
	ys = append(ys, r0)
	x := 1024.0
	for len(xs) <= knots && x < maxCurveLines {
		r := rInf + (r0-rInf)*math.Exp2(-x/halfLines)
		xs = append(xs, x)
		ys = append(ys, r)
		x *= 1.45
	}
	xs = append(xs, maxCurveLines)
	ys = append(ys, rInf+(r0-rInf)*math.Exp2(-maxCurveLines/halfLines))
	return curves.New(xs, ys)
}

// SPECCPU returns the 16 memory-intensive SPEC CPU2006-like profiles the
// paper uses (the ≥5 L2 MPKI subset listed in §V). Miss-curve shapes follow
// Fig. 2 where given (omnet, milc; ilbdc is in SPECOMP) and published
// characterizations otherwise.
func SPECCPU() []*Profile {
	mb := func(m float64) float64 { return m * LinesPerMB }
	return []*Profile{
		// Fig. 2: omnet suffers ~85 MPKI below 2.5MB, then fits.
		{Name: "omnet", Class: Fitting, APKI: 95, CPIBase: 0.70, MLP: 1.4,
			MissRatio: cliff(0.90, 0.02, mb(2.5))},
		// Fig. 2: milc is streaming, ~25 MPKI at any size.
		{Name: "milc", Class: Streaming, APKI: 26, CPIBase: 0.80, MLP: 3.5,
			MissRatio: stream(0.97)},
		{Name: "mcf", Class: Friendly, APKI: 75, CPIBase: 0.75, MLP: 1.6,
			MissRatio: decay(0.85, 0.25, mb(6))},
		{Name: "libquantum", Class: Streaming, APKI: 28, CPIBase: 0.65, MLP: 4.0,
			MissRatio: stream(0.99)},
		{Name: "lbm", Class: Streaming, APKI: 22, CPIBase: 0.75, MLP: 3.8,
			MissRatio: stream(0.95)},
		{Name: "bwaves", Class: Streaming, APKI: 18, CPIBase: 0.85, MLP: 3.2,
			MissRatio: decay(0.92, 0.80, mb(8))},
		{Name: "GemsFDTD", Class: Friendly, APKI: 20, CPIBase: 0.90, MLP: 2.6,
			MissRatio: decay(0.85, 0.30, mb(5))},
		{Name: "zeusmp", Class: Fitting, APKI: 12, CPIBase: 0.85, MLP: 2.4,
			MissRatio: cliff(0.75, 0.12, mb(2))},
		{Name: "cactusADM", Class: Fitting, APKI: 10, CPIBase: 0.95, MLP: 2.0,
			MissRatio: cliff(0.70, 0.08, mb(4))},
		{Name: "leslie3d", Class: Streaming, APKI: 16, CPIBase: 0.85, MLP: 2.8,
			MissRatio: decay(0.88, 0.62, mb(10))},
		{Name: "gcc", Class: Fitting, APKI: 14, CPIBase: 0.80, MLP: 1.8,
			MissRatio: cliff(0.72, 0.06, mb(1))},
		{Name: "bzip2", Class: Friendly, APKI: 11, CPIBase: 0.75, MLP: 1.9,
			MissRatio: decay(0.70, 0.18, mb(3))},
		{Name: "astar", Class: Friendly, APKI: 13, CPIBase: 0.80, MLP: 1.4,
			MissRatio: decay(0.78, 0.15, mb(4))},
		{Name: "sphinx3", Class: Fitting, APKI: 15, CPIBase: 0.80, MLP: 1.7,
			MissRatio: cliff(0.60, 0.04, mb(8))},
		{Name: "xalancbmk", Class: Fitting, APKI: 20, CPIBase: 0.75, MLP: 1.5,
			MissRatio: cliff(0.65, 0.05, mb(6))},
		{Name: "calculix", Class: Insensitive, APKI: 6, CPIBase: 0.70, MLP: 2.0,
			MissRatio: cliff(0.55, 0.05, mb(0.4))},
	}
}

// ByName returns the profile with the given name from the supplied set, or
// nil when absent.
func ByName(profiles []*Profile, name string) *Profile {
	for _, p := range profiles {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// MTProfile is a multithreaded (SPEC OMP2012-like) application model. Each
// thread accesses a thread-private VC and a process-shared VC; the paper's
// §VI-B behaviour is controlled by how intensity splits between them.
type MTProfile struct {
	// Name is the benchmark name.
	Name string
	// Threads is the thread count per instance (8 in the paper's mixes).
	Threads int
	// APKI is total LLC accesses per kilo-instruction per thread.
	APKI float64
	// SharedFrac is the fraction of accesses that go to the shared VC.
	SharedFrac float64
	// CPIBase and MLP are as in Profile.
	CPIBase float64
	MLP     float64
	// PrivRatio is the per-thread private-data miss-ratio curve.
	PrivRatio curves.Curve
	// SharedRatio is the process-wide shared-data miss-ratio curve.
	SharedRatio curves.Curve
}

// SPECOMP returns 8 SPEC OMP2012-like multithreaded profiles. ilbdc matches
// Fig. 2 (512KB shared footprint, low intensity); mgrid/md/nab follow the
// §VI-B case study (mgrid private-heavy and intensive; md, nab shared-heavy).
func SPECOMP() []*MTProfile {
	mb := func(m float64) float64 { return m * LinesPerMB }
	return []*MTProfile{
		{Name: "ilbdc", Threads: 8, APKI: 11, SharedFrac: 0.85, CPIBase: 0.80, MLP: 2.0,
			PrivRatio:   cliff(0.45, 0.05, mb(0.0625)),
			SharedRatio: cliff(0.80, 0.04, mb(0.5))},
		{Name: "mgrid", Threads: 8, APKI: 30, SharedFrac: 0.10, CPIBase: 0.75, MLP: 2.2,
			PrivRatio:   cliff(0.85, 0.06, mb(1.5)),
			SharedRatio: cliff(0.50, 0.10, mb(0.25))},
		{Name: "md", Threads: 8, APKI: 14, SharedFrac: 0.75, CPIBase: 0.85, MLP: 1.8,
			PrivRatio:   cliff(0.50, 0.08, mb(0.125)),
			SharedRatio: decay(0.75, 0.10, mb(1.5))},
		{Name: "nab", Threads: 8, APKI: 12, SharedFrac: 0.70, CPIBase: 0.80, MLP: 1.9,
			PrivRatio:   cliff(0.55, 0.08, mb(0.125)),
			SharedRatio: cliff(0.70, 0.06, mb(1))},
		{Name: "swim", Threads: 8, APKI: 24, SharedFrac: 0.15, CPIBase: 0.80, MLP: 3.0,
			PrivRatio:   stream(0.92),
			SharedRatio: cliff(0.60, 0.10, mb(0.5))},
		{Name: "applu", Threads: 8, APKI: 16, SharedFrac: 0.30, CPIBase: 0.85, MLP: 2.4,
			PrivRatio:   decay(0.80, 0.25, mb(1)),
			SharedRatio: decay(0.70, 0.20, mb(2))},
		{Name: "bt", Threads: 8, APKI: 13, SharedFrac: 0.40, CPIBase: 0.90, MLP: 2.2,
			PrivRatio:   cliff(0.65, 0.10, mb(0.75)),
			SharedRatio: cliff(0.60, 0.08, mb(1.5))},
		{Name: "fma3d", Threads: 8, APKI: 9, SharedFrac: 0.55, CPIBase: 0.85, MLP: 1.8,
			PrivRatio:   cliff(0.50, 0.10, mb(0.25)),
			SharedRatio: decay(0.65, 0.15, mb(2))},
	}
}

// MTByName returns the MT profile with the given name, or nil when absent.
func MTByName(profiles []*MTProfile, name string) *MTProfile {
	for _, p := range profiles {
		if p.Name == name {
			return p
		}
	}
	return nil
}
