package workload

import (
	"cdcs/internal/curves"
)

// Phase describes one program phase: a miss-ratio curve, an intensity, and a
// duration in reconfiguration epochs. The paper evaluates on SPEC, which is
// stable over long phases, and notes (§VI-C) that its reconfiguration-
// overhead results "may underestimate overheads for apps with more
// time-varying behavior" — PhasedProfile exists to explore exactly that.
type Phase struct {
	// MissRatio is the phase's miss-ratio curve.
	MissRatio curves.Curve
	// APKI is the phase's access intensity.
	APKI float64
	// Epochs is how many reconfiguration intervals the phase lasts.
	Epochs int
}

// PhasedProfile is an application that cycles through phases. At any epoch
// it presents a plain Profile; reconfiguration quality then depends on how
// quickly the runtime tracks the phase changes.
type PhasedProfile struct {
	// Name is the synthetic benchmark name.
	Name string
	// CPIBase and MLP are phase-independent core parameters.
	CPIBase float64
	MLP     float64
	// Phases cycle in order.
	Phases []Phase
}

// At returns the profile in effect at the given epoch (phases cycle).
func (p *PhasedProfile) At(epoch int) *Profile {
	if len(p.Phases) == 0 {
		panic("workload: phased profile with no phases")
	}
	total := 0
	for _, ph := range p.Phases {
		total += ph.Epochs
	}
	e := epoch % total
	for _, ph := range p.Phases {
		if e < ph.Epochs {
			return &Profile{
				Name:      p.Name,
				Class:     Fitting,
				APKI:      ph.APKI,
				CPIBase:   p.CPIBase,
				MLP:       p.MLP,
				MissRatio: ph.MissRatio,
			}
		}
		e -= ph.Epochs
	}
	// Unreachable: e < total by construction.
	panic("workload: phase accounting broken")
}

// TotalEpochs returns the cycle length of the phase sequence.
func (p *PhasedProfile) TotalEpochs() int {
	total := 0
	for _, ph := range p.Phases {
		total += ph.Epochs
	}
	return total
}

// PhasedSet returns synthetic phased applications: working sets that grow,
// shrink, and alternate between streaming and fitting — the adversarial
// input for reconfiguration schemes, since every phase change relocates
// capacity.
func PhasedSet() []*PhasedProfile {
	mb := func(m float64) float64 { return m * LinesPerMB }
	return []*PhasedProfile{
		{
			Name: "pulse", CPIBase: 0.75, MLP: 1.6,
			Phases: []Phase{
				{MissRatio: cliff(0.85, 0.03, mb(0.5)), APKI: 40, Epochs: 2},
				{MissRatio: cliff(0.85, 0.03, mb(4)), APKI: 40, Epochs: 2},
			},
		},
		{
			Name: "drift", CPIBase: 0.80, MLP: 1.8,
			Phases: []Phase{
				{MissRatio: cliff(0.75, 0.05, mb(1)), APKI: 30, Epochs: 3},
				{MissRatio: cliff(0.75, 0.05, mb(2)), APKI: 30, Epochs: 3},
				{MissRatio: cliff(0.75, 0.05, mb(3)), APKI: 30, Epochs: 3},
			},
		},
		{
			Name: "burst", CPIBase: 0.70, MLP: 2.5,
			Phases: []Phase{
				{MissRatio: stream(0.95), APKI: 25, Epochs: 4},
				{MissRatio: cliff(0.80, 0.04, mb(2.5)), APKI: 80, Epochs: 2},
			},
		},
		{
			Name: "steady", CPIBase: 0.80, MLP: 2.0,
			Phases: []Phase{
				{MissRatio: cliff(0.70, 0.05, mb(1.5)), APKI: 20, Epochs: 1},
			},
		},
	}
}
