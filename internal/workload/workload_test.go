package workload

import (
	"math/rand"
	"testing"
)

func TestSPECCPUProfiles(t *testing.T) {
	profiles := SPECCPU()
	if len(profiles) != 16 {
		t.Fatalf("SPECCPU has %d profiles, want 16 (the paper's >=5 MPKI subset)", len(profiles))
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.APKI <= 0 || p.CPIBase <= 0 || p.MLP < 1 {
			t.Errorf("%s: implausible parameters APKI=%g CPI=%g MLP=%g", p.Name, p.APKI, p.CPIBase, p.MLP)
		}
		// Miss ratios stay in [0,1] at all knots.
		for i := 0; i < p.MissRatio.Len(); i++ {
			_, y := p.MissRatio.Knot(i)
			if y < 0 || y > 1 {
				t.Errorf("%s: miss ratio %g out of [0,1]", p.Name, y)
			}
		}
		// LRU-like: miss ratio never increases with capacity.
		if !p.MissRatio.IsNonIncreasing() {
			t.Errorf("%s: miss-ratio curve increases with capacity", p.Name)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	cpu := SPECCPU()
	omnet := ByName(cpu, "omnet")
	milc := ByName(cpu, "milc")
	if omnet == nil || milc == nil {
		t.Fatal("missing omnet or milc")
	}
	// Paper Fig. 2: omnet ~85 MPKI below 2.5MB; near zero above.
	if m := omnet.MPKI(1 * LinesPerMB); m < 60 || m > 100 {
		t.Errorf("omnet MPKI@1MB = %g, want ~85", m)
	}
	if m := omnet.MPKI(3 * LinesPerMB); m > 5 {
		t.Errorf("omnet MPKI@3MB = %g, want near zero (fits)", m)
	}
	// milc: flat ~25 MPKI everywhere.
	lo, hi := milc.MPKI(0.25*LinesPerMB), milc.MPKI(16*LinesPerMB)
	if lo < 20 || lo > 32 || hi < 20 || hi > 32 {
		t.Errorf("milc MPKI not flat ~25: %g @0.25MB, %g @16MB", lo, hi)
	}
	// ilbdc: small 512KB shared footprint.
	ilbdc := MTByName(SPECOMP(), "ilbdc")
	if ilbdc == nil {
		t.Fatal("missing ilbdc")
	}
	before := ilbdc.SharedRatio.Eval(0.25 * LinesPerMB)
	after := ilbdc.SharedRatio.Eval(1 * LinesPerMB)
	if after > before/4 {
		t.Errorf("ilbdc shared data should fit by 1MB: ratio %g -> %g", before, after)
	}
}

func TestFootprintLines(t *testing.T) {
	cpu := SPECCPU()
	omnet := ByName(cpu, "omnet")
	fp := omnet.FootprintLines()
	if fp < 2*LinesPerMB || fp > 3.5*LinesPerMB {
		t.Errorf("omnet footprint = %g lines (%.2f MB), want ~2.5MB", fp, fp/LinesPerMB)
	}
	// Streaming apps have no footprint knee before the end of the domain:
	// the first knot already equals the final ratio.
	milc := ByName(cpu, "milc")
	if fp := milc.FootprintLines(); fp != 0 {
		t.Errorf("milc footprint = %g, want 0 (flat curve)", fp)
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Streaming:   "streaming",
		Fitting:     "fitting",
		Friendly:    "friendly",
		Insensitive: "insensitive",
		Class(99):   "Class(99)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String()=%q, want %q", int(c), got, want)
		}
	}
}

func TestSPECOMPProfiles(t *testing.T) {
	profiles := SPECOMP()
	if len(profiles) != 8 {
		t.Fatalf("SPECOMP has %d profiles, want 8", len(profiles))
	}
	for _, p := range profiles {
		if p.Threads != 8 {
			t.Errorf("%s: %d threads, want 8", p.Name, p.Threads)
		}
		if p.SharedFrac < 0 || p.SharedFrac > 1 {
			t.Errorf("%s: SharedFrac=%g", p.Name, p.SharedFrac)
		}
		if !p.PrivRatio.IsNonIncreasing() || !p.SharedRatio.IsNonIncreasing() {
			t.Errorf("%s: increasing miss-ratio curve", p.Name)
		}
	}
	// Case-study roles: mgrid private-heavy, md/nab/ilbdc shared-heavy.
	if mgrid := MTByName(profiles, "mgrid"); mgrid.SharedFrac > 0.3 {
		t.Errorf("mgrid should be private-heavy, SharedFrac=%g", mgrid.SharedFrac)
	}
	for _, name := range []string{"md", "nab", "ilbdc"} {
		if p := MTByName(profiles, name); p.SharedFrac < 0.5 {
			t.Errorf("%s should be shared-heavy, SharedFrac=%g", name, p.SharedFrac)
		}
	}
}

func TestByNameMissing(t *testing.T) {
	if ByName(SPECCPU(), "nosuch") != nil {
		t.Error("ByName returned non-nil for missing profile")
	}
	if MTByName(SPECOMP(), "nosuch") != nil {
		t.Error("MTByName returned non-nil for missing profile")
	}
}

func TestAddSTStructure(t *testing.T) {
	cpu := SPECCPU()
	m := NewMix().AddST(ByName(cpu, "omnet")).AddST(ByName(cpu, "omnet"))
	if len(m.Procs) != 2 || len(m.Threads) != 2 || len(m.VCs) != 2 {
		t.Fatalf("mix sizes: %d procs %d threads %d VCs", len(m.Procs), len(m.Threads), len(m.VCs))
	}
	if m.Procs[0].Name != "omnet#1" || m.Procs[1].Name != "omnet#2" {
		t.Errorf("instance names: %q, %q", m.Procs[0].Name, m.Procs[1].Name)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	th := m.Threads[0]
	if len(th.Access) != 1 {
		t.Errorf("ST thread accesses %d VCs, want 1", len(th.Access))
	}
	if th.TotalAPKI() != ByName(cpu, "omnet").APKI {
		t.Errorf("thread APKI %g != profile APKI", th.TotalAPKI())
	}
}

func TestAddMTStructure(t *testing.T) {
	omp := SPECOMP()
	ilbdc := MTByName(omp, "ilbdc")
	m := NewMix().AddMT(ilbdc)
	if len(m.Threads) != 8 {
		t.Fatalf("%d threads, want 8", len(m.Threads))
	}
	if len(m.VCs) != 9 { // 8 private + 1 shared
		t.Fatalf("%d VCs, want 9", len(m.VCs))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	shared := 0
	for _, vc := range m.VCs {
		if vc.Kind == ProcessShared {
			shared++
			if len(vc.Accessors) != 8 {
				t.Errorf("shared VC has %d accessors, want 8", len(vc.Accessors))
			}
			// Shared intensity: 8 threads × APKI × SharedFrac.
			want := 8 * ilbdc.APKI * ilbdc.SharedFrac
			if got := vc.TotalAPKI(); !within(got, want, 1e-9) {
				t.Errorf("shared VC TotalAPKI=%g, want %g", got, want)
			}
		}
	}
	if shared != 1 {
		t.Errorf("%d shared VCs, want 1", shared)
	}
	// Thread access split respects SharedFrac.
	th := m.Threads[0]
	if !within(th.TotalAPKI(), ilbdc.APKI, 1e-9) {
		t.Errorf("thread TotalAPKI=%g, want %g", th.TotalAPKI(), ilbdc.APKI)
	}
}

func TestRandomSTDeterministic(t *testing.T) {
	cpu := SPECCPU()
	a := RandomST(rand.New(rand.NewSource(12)), cpu, 64)
	b := RandomST(rand.New(rand.NewSource(12)), cpu, 64)
	if len(a.Procs) != 64 || len(b.Procs) != 64 {
		t.Fatalf("wrong mix size")
	}
	for i := range a.Procs {
		if a.Procs[i].Name != b.Procs[i].Name {
			t.Fatalf("mixes differ at %d: %q vs %q", i, a.Procs[i].Name, b.Procs[i].Name)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRandomMT(t *testing.T) {
	m := RandomMT(rand.New(rand.NewSource(5)), SPECOMP(), 8)
	if len(m.Procs) != 8 {
		t.Fatalf("%d procs, want 8", len(m.Procs))
	}
	if len(m.Threads) != 64 {
		t.Fatalf("%d threads, want 64", len(m.Threads))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCaseStudyMix(t *testing.T) {
	m := CaseStudy()
	if len(m.Threads) != 6+14+16 {
		t.Fatalf("case study has %d threads, want 36", len(m.Threads))
	}
	counts := map[string]int{}
	for _, p := range m.Procs {
		counts[p.Bench]++
	}
	if counts["omnet"] != 6 || counts["milc"] != 14 || counts["ilbdc"] != 2 {
		t.Errorf("case-study composition wrong: %v", counts)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFig16CaseStudyMix(t *testing.T) {
	m := Fig16CaseStudy()
	if len(m.Procs) != 4 || len(m.Threads) != 32 {
		t.Fatalf("fig16 mix: %d procs %d threads", len(m.Procs), len(m.Threads))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestVCKindString(t *testing.T) {
	if ThreadPrivate.String() != "private" || ProcessShared.String() != "shared" {
		t.Error("VCKind strings wrong")
	}
}

func within(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
