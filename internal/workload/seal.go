package workload

import (
	"maps"
	"slices"
)

// Seal materializes dense, sorted accessor views for every VC and thread in
// the mix, backed by four flat arrays (two allocations each for ids and
// rates). The views list the same (id, rate) pairs as the Accessors/Access
// maps in ascending-id order — exactly the iteration order the simulator's
// deterministic reductions already use — so every consumer that switches to
// the dense path produces bit-identical results while skipping the per-round
// map-key sort and map lookups.
//
// Seal is idempotent. It must only be called from single-threaded code (mix
// generators and materialization points); the dense views are then safe for
// concurrent readers, like the rest of an immutable Mix. Any later AddST or
// AddMT unseals the mix, dropping all dense views.
func (m *Mix) Seal() {
	if m.sealed {
		return
	}
	edges := 0
	for i := range m.VCs {
		edges += len(m.VCs[i].Accessors)
	}
	vcIDs := make([]int, 0, edges)
	vcRates := make([]float64, 0, edges)
	for i := range m.VCs {
		v := &m.VCs[i]
		lo := len(vcIDs)
		for _, t := range slices.Sorted(maps.Keys(v.Accessors)) {
			vcIDs = append(vcIDs, t)
			vcRates = append(vcRates, v.Accessors[t])
		}
		v.accIDs = vcIDs[lo:len(vcIDs):len(vcIDs)]
		v.accRates = vcRates[lo:len(vcRates):len(vcRates)]
	}
	thIDs := make([]int, 0, edges)
	thRates := make([]float64, 0, edges)
	for i := range m.Threads {
		t := &m.Threads[i]
		lo := len(thIDs)
		for _, v := range slices.Sorted(maps.Keys(t.Access)) {
			thIDs = append(thIDs, v)
			thRates = append(thRates, t.Access[v])
		}
		t.vcIDs = thIDs[lo:len(thIDs):len(thIDs)]
		t.vcRates = thRates[lo:len(thRates):len(thRates)]
	}
	m.sealed = true
}

// Sealed reports whether dense views are materialized.
func (m *Mix) Sealed() bool { return m.sealed }

// unseal drops every dense view; Add methods call it so stale views can
// never outlive a mutation.
func (m *Mix) unseal() {
	if !m.sealed {
		return
	}
	for i := range m.VCs {
		m.VCs[i].accIDs, m.VCs[i].accRates = nil, nil
	}
	for i := range m.Threads {
		m.Threads[i].vcIDs, m.Threads[i].vcRates = nil, nil
	}
	m.sealed = false
}

// DenseAccessors returns the VC's accessor threads and rates in ascending
// thread-id order, or nil slices when the mix is unsealed. Callers must not
// mutate the returned slices; they alias the mix's sealed backing.
func (v *VC) DenseAccessors() (ids []int, rates []float64) {
	return v.accIDs, v.accRates
}

// DenseAccess returns the thread's VC ids and rates in ascending VC-id
// order, or nil slices when the mix is unsealed. Callers must not mutate the
// returned slices.
func (t *Thread) DenseAccess() (ids []int, rates []float64) {
	return t.vcIDs, t.vcRates
}
