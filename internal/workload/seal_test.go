package workload

import (
	"maps"
	"math/rand"
	"slices"
	"testing"
)

// checkDense verifies every dense view lists the map edges in ascending-id
// order with identical rates.
func checkDense(t *testing.T, m *Mix) {
	t.Helper()
	if !m.Sealed() {
		t.Fatal("mix is not sealed")
	}
	for i := range m.VCs {
		v := &m.VCs[i]
		ids, rates := v.DenseAccessors()
		if ids == nil || rates == nil {
			t.Fatalf("VC %d: nil dense view on sealed mix", v.ID)
		}
		want := slices.Sorted(maps.Keys(v.Accessors))
		if !slices.Equal(ids, want) {
			t.Fatalf("VC %d: dense ids %v, want %v", v.ID, ids, want)
		}
		for k, tid := range ids {
			if rates[k] != v.Accessors[tid] {
				t.Fatalf("VC %d: rate for thread %d is %g, map says %g", v.ID, tid, rates[k], v.Accessors[tid])
			}
		}
	}
	for i := range m.Threads {
		th := &m.Threads[i]
		ids, rates := th.DenseAccess()
		if ids == nil || rates == nil {
			t.Fatalf("thread %d: nil dense view on sealed mix", th.ID)
		}
		want := slices.Sorted(maps.Keys(th.Access))
		if !slices.Equal(ids, want) {
			t.Fatalf("thread %d: dense ids %v, want %v", th.ID, ids, want)
		}
		for k, vid := range ids {
			if rates[k] != th.Access[vid] {
				t.Fatalf("thread %d: rate for VC %d is %g, map says %g", th.ID, vid, rates[k], th.Access[vid])
			}
		}
	}
}

func TestSealDenseViewsMatchMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range []*Mix{
		RandomST(rng, SPECCPU(), 16),
		RandomMT(rng, SPECOMP(), 4),
		CaseStudy(),
		Fig16CaseStudy(),
	} {
		checkDense(t, m)
	}
}

func TestSealTotalAPKIBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := RandomMT(rng, SPECOMP(), 4)
	sealed := make([]float64, len(m.VCs))
	sealedTh := make([]float64, len(m.Threads))
	for i := range m.VCs {
		sealed[i] = m.VCs[i].TotalAPKI()
	}
	for i := range m.Threads {
		sealedTh[i] = m.Threads[i].TotalAPKI()
	}
	// Unseal by mutating, then compare the map-path sums bit for bit.
	m.AddST(SPECCPU()[0])
	if m.Sealed() {
		t.Fatal("AddST did not unseal the mix")
	}
	for i := range sealed {
		if got := m.VCs[i].TotalAPKI(); got != sealed[i] {
			t.Fatalf("VC %d: dense TotalAPKI %g != map TotalAPKI %g", i, sealed[i], got)
		}
	}
	for i := range sealedTh {
		if got := m.Threads[i].TotalAPKI(); got != sealedTh[i] {
			t.Fatalf("thread %d: dense TotalAPKI %g != map TotalAPKI %g", i, sealedTh[i], got)
		}
	}
}

func TestSealIdempotentAndUnseal(t *testing.T) {
	m := NewMix()
	m.AddST(SPECCPU()[0])
	m.Seal()
	ids1, _ := m.VCs[0].DenseAccessors()
	m.Seal() // idempotent: must not rebuild
	ids2, _ := m.VCs[0].DenseAccessors()
	if &ids1[0] != &ids2[0] {
		t.Fatal("second Seal rebuilt dense views")
	}
	m.AddST(SPECCPU()[1])
	if ids, rates := m.VCs[0].DenseAccessors(); ids != nil || rates != nil {
		t.Fatal("unseal left stale dense views")
	}
	m.Seal()
	checkDense(t, m)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
