package resultstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ChunkedDisk is the compressed, deduplicated persistent tier: entry
// payloads are split into content-defined chunks (see chunker.go), each
// chunk is DEFLATE-compressed and stored once under its SHA-256, and a
// per-entry manifest records how to reassemble the payload. Neighboring
// sweep cells share most of their response bytes, so their entries share
// most of their chunks — the corpus stores far more cells per GB than the
// whole-entry Disk tier.
//
// Integrity mirrors Disk's: the manifest carries the whole payload's
// SHA-256 and length, every chunk is verified against its content address
// after inflation, and any mismatch — torn manifest, missing chunk, bit
// rot — counts an error, drops the entry, and reports a miss so the caller
// recomputes (and the next Put repairs it). Writes are atomic
// (temp+rename); a crash between chunk writes and the manifest write only
// leaves orphan chunks, which Open sweeps.
//
// The size cap evicts whole entries LRU by manifest mtime (the persisted
// recency index, exactly like Disk). Chunks are refcounted: evicting an
// entry only deletes the chunks no surviving entry references, so a hot
// shared chunk stays as long as anything uses it. Stats' Bytes is real
// on-disk occupancy — manifests plus unique compressed chunks, the number
// the cap evicts against — while LogicalBytes is the uncompressed payload
// volume represented, so Bytes/LogicalBytes is the observable
// dedup+compression ratio.
type ChunkedDisk struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	lru     *list.List // front = most recently used; values are *chunkedEntry
	idx     map[string]*list.Element
	chunks  map[string]*chunkInfo // chunk hex hash → refcount and on-disk size
	bytes   int64                 // manifests + unique compressed chunks, on disk
	logical int64                 // uncompressed payload bytes represented

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	errors    atomic.Int64
}

// chunkedEntry is the index record for one entry: everything needed to
// reassemble and verify the payload without re-reading the manifest file.
type chunkedEntry struct {
	name         string // manifest file name, also the index key
	gen          uint64 // rewrite counter, same stale-drop protocol as Disk
	sum          [sha256.Size]byte
	logical      int64
	manifestSize int64
	chunks       []chunkRef // never mutated in place; Put installs a new slice
}

// chunkRef is one chunk of an entry.
type chunkRef struct {
	sum  [sha256.Size]byte
	clen uint32 // compressed size on disk
}

// chunkInfo is the store-wide record for one unique chunk.
type chunkInfo struct {
	refs int
	size int64
}

// Manifest framing: magic, payload SHA-256, payload length, chunk count,
// then per chunk its SHA-256 and compressed length.
const chunkedMagic = "cdcsck1\n"

const (
	manifestHeaderLen = len(chunkedMagic) + sha256.Size + 8 + 4
	chunkRefLen       = sha256.Size + 4
	manifestSuffix    = ".m"
	chunkSuffix       = ".c"
)

// OpenChunkedDisk opens (creating if needed) a chunked disk tier rooted at
// dir, capped at maxBytes of on-disk occupancy (0 or negative means
// uncapped). Manifests are parsed at Open to rebuild the chunk refcounts;
// entries whose chunks are missing, and chunks no manifest references, are
// swept. Chunk integrity is verified lazily on Get, so opening a large
// corpus costs one small read per entry, not a full decompression pass.
func OpenChunkedDisk(dir string, maxBytes int64) (*ChunkedDisk, error) {
	for _, sub := range []string{"m", "c"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: open chunked tier: %w", err)
		}
	}
	d := &ChunkedDisk{
		dir:      dir,
		maxBytes: maxBytes,
		lru:      list.New(),
		idx:      map[string]*list.Element{},
		chunks:   map[string]*chunkInfo{},
	}

	// Scan chunk files first: name → size, sweeping temp debris.
	chunkSizes := map[string]int64{}
	err := filepath.WalkDir(filepath.Join(dir, "c"), func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			return nil
		}
		name := de.Name()
		if !strings.HasSuffix(name, chunkSuffix) {
			_ = os.Remove(path) // interrupted atomic write
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return nil // raced with concurrent removal; skip
		}
		chunkSizes[strings.TrimSuffix(name, chunkSuffix)] = info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("resultstore: scanning %s: %w", dir, err)
	}

	// Parse manifests; a manifest that does not parse, or references a
	// chunk that is not on disk, is dead — remove it so the entry is
	// recomputed cleanly later.
	type scanned struct {
		entry *chunkedEntry
		mtime time.Time
	}
	var found []scanned
	err = filepath.WalkDir(filepath.Join(dir, "m"), func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			return nil
		}
		name := de.Name()
		if !strings.HasSuffix(name, manifestSuffix) {
			_ = os.Remove(path)
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		e, derr := decodeManifest(raw)
		if derr != nil {
			d.errors.Add(1)
			_ = os.Remove(path)
			return nil
		}
		for _, cr := range e.chunks {
			if _, ok := chunkSizes[hex.EncodeToString(cr.sum[:])]; !ok {
				d.errors.Add(1)
				_ = os.Remove(path)
				return nil
			}
		}
		e.name = name
		e.manifestSize = info.Size()
		found = append(found, scanned{entry: e, mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("resultstore: scanning %s: %w", dir, err)
	}

	// Oldest first, name as tiebreaker, so the newest ends at the front.
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].entry.name < found[j].entry.name
	})
	for _, f := range found {
		e := f.entry
		d.idx[e.name] = d.lru.PushFront(e)
		d.bytes += e.manifestSize
		d.logical += e.logical
		for _, cr := range e.chunks {
			h := hex.EncodeToString(cr.sum[:])
			if ci, ok := d.chunks[h]; ok {
				ci.refs++
				continue
			}
			size := chunkSizes[h]
			d.chunks[h] = &chunkInfo{refs: 1, size: size}
			d.bytes += size
		}
	}
	// Orphan chunks (no surviving manifest references them — e.g. a crash
	// between chunk writes and the manifest write) are dead weight: sweep.
	for h := range chunkSizes {
		if _, ok := d.chunks[h]; !ok {
			_ = os.Remove(d.chunkPath(h))
		}
	}
	d.mu.Lock()
	d.evictOverCapLocked()
	d.mu.Unlock()
	return d, nil
}

// Dir returns the tier's root directory.
func (d *ChunkedDisk) Dir() string { return d.dir }

// Name implements Tier. The chunked store is the disk tier — same role,
// same metrics label — just a denser encoding.
func (d *ChunkedDisk) Name() string { return "disk" }

// manifestName maps a content address to its manifest file name.
func manifestName(key string) string { return safeName(key) + manifestSuffix }

// manifestPath returns a manifest's path, sharded like Disk entries.
func (d *ChunkedDisk) manifestPath(name string) string {
	shard := "xx"
	if len(name) >= 2 {
		shard = name[:2]
	}
	return filepath.Join(d.dir, "m", shard, name)
}

// chunkPath returns a chunk's path, sharded by hash prefix.
func (d *ChunkedDisk) chunkPath(hexSum string) string {
	shard := "xx"
	if len(hexSum) >= 2 {
		shard = hexSum[:2]
	}
	return filepath.Join(d.dir, "c", shard, hexSum+chunkSuffix)
}

// Get returns the stored bytes for key. A missing entry is a plain miss; a
// damaged one (unreadable manifest state, missing/corrupt chunk, checksum
// mismatch on any chunk or the assembled payload) is counted in Errors,
// dropped, and reported as a miss so the caller recomputes.
func (d *ChunkedDisk) Get(key string) ([]byte, bool) {
	val, ok := d.get(key)
	if ok {
		d.hits.Add(1)
	} else {
		d.misses.Add(1)
	}
	return val, ok
}

// Peek is Get without the hit/miss counters (integrity errors are still
// counted).
func (d *ChunkedDisk) Peek(key string) ([]byte, bool) {
	return d.get(key)
}

// get reassembles an entry from its chunks, verifying every step.
func (d *ChunkedDisk) get(key string) ([]byte, bool) {
	name := manifestName(key)
	d.mu.Lock()
	el, ok := d.idx[name]
	if !ok {
		d.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*chunkedEntry)
	gen := e.gen
	refs := e.chunks // immutable snapshot: Put installs a fresh slice
	wantSum, wantLen := e.sum, e.logical
	d.lru.MoveToFront(el)
	d.mu.Unlock()

	out := make([]byte, 0, wantLen)
	for _, cr := range refs {
		h := hex.EncodeToString(cr.sum[:])
		comp, err := os.ReadFile(d.chunkPath(h))
		if err != nil {
			// Missing or unreadable chunk: drop the entry but leave the
			// chunk slot alone — other entries may reference a fresh copy a
			// concurrent Put just wrote.
			d.errors.Add(1)
			d.dropStale(name, gen, "")
			return nil, false
		}
		chunk, err := decompressChunk(comp)
		if err == nil && sha256.Sum256(chunk) != cr.sum {
			err = fmt.Errorf("resultstore: chunk %s content mismatch", h)
		}
		if err != nil {
			// The chunk file itself is rotten: every entry referencing it is
			// unservable, so remove the file too — each referencing entry
			// degrades to a miss and the next Put of any of them rewrites
			// the chunk.
			d.errors.Add(1)
			d.dropStale(name, gen, h)
			return nil, false
		}
		out = append(out, chunk...)
	}
	if int64(len(out)) != wantLen || sha256.Sum256(out) != wantSum {
		d.errors.Add(1)
		d.dropStale(name, gen, "")
		return nil, false
	}
	// Persist recency so LRU order survives restarts (manifest mtime is the
	// on-disk access index, exactly like Disk's entry files).
	now := time.Now()
	_ = os.Chtimes(d.manifestPath(name), now, now)
	return out, true
}

// Put stores key's bytes: chunk, compress, write the chunks this store does
// not already hold, then the manifest, evicting LRU entries past the cap.
// Failures are tolerated (counted in Errors) — the tier is an accelerator,
// never a correctness dependency.
func (d *ChunkedDisk) Put(key string, val []byte) {
	name := manifestName(key)
	spans := splitChunks(val)
	refs := make([]chunkRef, len(spans))
	comps := make([][]byte, len(spans))
	for i, sp := range spans {
		comps[i] = compressChunk(sp)
		refs[i] = chunkRef{sum: sha256.Sum256(sp), clen: uint32(len(comps[i]))}
	}
	sum := sha256.Sum256(val)
	manifest := encodeManifest(sum, int64(len(val)), refs)

	// Index update and file visibility are atomic with respect to dropStale
	// and eviction, so readers can never remove what this Put just wrote:
	// same protocol as Disk, with chunk writes inside the critical section
	// because the refcount map must agree with the files on disk.
	d.mu.Lock()
	defer d.mu.Unlock()
	written := map[string]int64{} // chunks written by this Put: hex → size
	for i, cr := range refs {
		h := hex.EncodeToString(cr.sum[:])
		if _, ok := d.chunks[h]; ok {
			continue // dedup: already on disk (or just written above)
		}
		if _, ok := written[h]; ok {
			continue // repeated chunk within this payload
		}
		if !d.writeFileLocked(d.chunkPath(h), comps[i]) {
			d.unwindLocked(written)
			return
		}
		written[h] = int64(len(comps[i]))
	}
	if !d.writeFileLocked(d.manifestPath(name), manifest) {
		d.unwindLocked(written)
		return
	}

	for h, size := range written {
		d.chunks[h] = &chunkInfo{refs: 0, size: size}
		d.bytes += size
	}
	entry := &chunkedEntry{
		name:         name,
		sum:          sum,
		logical:      int64(len(val)),
		manifestSize: int64(len(manifest)),
		chunks:       refs,
	}
	// Reference the new generation's chunks before dereferencing the old
	// one's: chunks shared across generations (most of them, when an entry
	// is re-rendered — all of them, on an identical re-Put) must not dip to
	// zero references in between, or deref would delete their files out
	// from under the new entry.
	for _, cr := range refs {
		if ci, ok := d.chunks[hex.EncodeToString(cr.sum[:])]; ok {
			ci.refs++
		}
	}
	if el, ok := d.idx[name]; ok {
		old := el.Value.(*chunkedEntry)
		entry.gen = old.gen + 1
		d.bytes -= old.manifestSize
		d.logical -= old.logical
		d.derefChunksLocked(old.chunks, "")
		el.Value = entry
		d.lru.MoveToFront(el)
	} else {
		d.idx[name] = d.lru.PushFront(entry)
	}
	d.bytes += entry.manifestSize
	d.logical += entry.logical
	d.evictOverCapLocked()
}

// writeFileLocked atomically writes path (temp in the same directory +
// rename), counting failures. Called with d.mu held.
func (d *ChunkedDisk) writeFileLocked(path string, data []byte) bool {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		d.errors.Add(1)
		return false
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		d.errors.Add(1)
		return false
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		d.errors.Add(1)
		return false
	}
	return true
}

// unwindLocked removes chunks a failed Put wrote before its manifest became
// visible; nothing references them yet.
func (d *ChunkedDisk) unwindLocked(written map[string]int64) {
	for h := range written {
		_ = os.Remove(d.chunkPath(h))
	}
}

// derefChunksLocked drops one reference per chunk, deleting chunk files
// that reach zero references. corrupt (hex hash or "") names a chunk whose
// file must be removed even if other entries still reference it — the file
// itself is rotten. Called with d.mu held.
func (d *ChunkedDisk) derefChunksLocked(refs []chunkRef, corrupt string) {
	for _, cr := range refs {
		h := hex.EncodeToString(cr.sum[:])
		ci, ok := d.chunks[h]
		if !ok {
			continue // already removed as corrupt via another entry
		}
		ci.refs--
		if ci.refs <= 0 || h == corrupt {
			delete(d.chunks, h)
			d.bytes -= ci.size
			_ = os.Remove(d.chunkPath(h))
		}
	}
	if corrupt != "" {
		// The corrupt chunk may be shared with entries not being dropped;
		// make sure its file and accounting are gone regardless (surviving
		// referencing entries will miss lazily and be dropped or repaired).
		if ci, ok := d.chunks[corrupt]; ok {
			delete(d.chunks, corrupt)
			d.bytes -= ci.size
			_ = os.Remove(d.chunkPath(corrupt))
		}
	}
}

// dropStale removes an entry after a failed read, but only if its
// generation still matches what the reader observed — a concurrent Put that
// re-rendered the entry bumps gen, telling the reader its observation is
// stale and the fresh state must stay. corrupt optionally names a rotten
// chunk file to remove store-wide.
func (d *ChunkedDisk) dropStale(name string, gen uint64, corrupt string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.idx[name]
	if !ok || el.Value.(*chunkedEntry).gen != gen {
		return
	}
	d.removeEntryLocked(el, corrupt)
}

// removeEntryLocked unlinks an entry: index, manifest file, chunk refs.
// Called with d.mu held.
func (d *ChunkedDisk) removeEntryLocked(el *list.Element, corrupt string) {
	e := el.Value.(*chunkedEntry)
	d.lru.Remove(el)
	delete(d.idx, e.name)
	d.bytes -= e.manifestSize
	d.logical -= e.logical
	_ = os.Remove(d.manifestPath(e.name))
	d.derefChunksLocked(e.chunks, corrupt)
}

// evictOverCapLocked removes least-recently-used entries until on-disk
// occupancy is within the byte cap. The newest entry always stays, so a
// single oversized entry cannot evict itself into a livelock. Called with
// d.mu held.
func (d *ChunkedDisk) evictOverCapLocked() {
	if d.maxBytes <= 0 {
		return
	}
	for d.bytes > d.maxBytes && d.lru.Len() > 1 {
		d.removeEntryLocked(d.lru.Back(), "")
		d.evictions.Add(1)
	}
}

// Keys returns the fetchable addresses of the indexed entries, for manifest
// export (see Disk.Keys — manifest names double as addresses the same way).
func (d *ChunkedDisk) Keys() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.idx))
	for name := range d.idx {
		out = append(out, strings.TrimSuffix(name, manifestSuffix))
	}
	return out
}

// Len returns the number of indexed entries.
func (d *ChunkedDisk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lru.Len()
}

// Chunks returns the number of unique chunks resident on disk.
func (d *ChunkedDisk) Chunks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.chunks)
}

// Stats snapshots the tier's counters. Bytes is compressed, deduplicated
// on-disk occupancy (what the size cap evicts against); LogicalBytes is the
// payload volume represented.
func (d *ChunkedDisk) Stats() TierStats {
	d.mu.Lock()
	entries, bytes, logical := d.lru.Len(), d.bytes, d.logical
	d.mu.Unlock()
	return TierStats{
		Name:         "disk",
		Hits:         d.hits.Load(),
		Misses:       d.misses.Load(),
		Evictions:    d.evictions.Load(),
		Entries:      entries,
		Bytes:        bytes,
		LogicalBytes: logical,
		Errors:       d.errors.Load(),
	}
}

// encodeManifest frames an entry's reassembly record.
func encodeManifest(sum [sha256.Size]byte, logical int64, refs []chunkRef) []byte {
	buf := make([]byte, 0, manifestHeaderLen+len(refs)*chunkRefLen)
	buf = append(buf, chunkedMagic...)
	buf = append(buf, sum[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(logical))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(refs)))
	for _, cr := range refs {
		buf = append(buf, cr.sum[:]...)
		buf = binary.BigEndian.AppendUint32(buf, cr.clen)
	}
	return buf
}

// decodeManifest parses and validates manifest framing (chunk content is
// verified lazily at Get).
func decodeManifest(raw []byte) (*chunkedEntry, error) {
	if len(raw) < manifestHeaderLen || string(raw[:len(chunkedMagic)]) != chunkedMagic {
		return nil, fmt.Errorf("resultstore: bad manifest header")
	}
	e := &chunkedEntry{}
	off := len(chunkedMagic)
	copy(e.sum[:], raw[off:])
	off += sha256.Size
	e.logical = int64(binary.BigEndian.Uint64(raw[off:]))
	off += 8
	n := binary.BigEndian.Uint32(raw[off:])
	off += 4
	if e.logical < 0 || len(raw) != manifestHeaderLen+int(n)*chunkRefLen {
		return nil, fmt.Errorf("resultstore: manifest length %d does not match %d chunks", len(raw), n)
	}
	// A payload's chunk count is bounded by its length (and empty payloads
	// have no chunks); anything else is a torn or forged manifest.
	if (n == 0) != (e.logical == 0) || int64(n) > e.logical/chunkMin+1 {
		return nil, fmt.Errorf("resultstore: manifest chunk count %d inconsistent with length %d", n, e.logical)
	}
	e.chunks = make([]chunkRef, n)
	for i := range e.chunks {
		copy(e.chunks[i].sum[:], raw[off:])
		off += sha256.Size
		e.chunks[i].clen = binary.BigEndian.Uint32(raw[off:])
		off += 4
	}
	return e, nil
}
