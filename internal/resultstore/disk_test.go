package resultstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// diskKey returns a content-address-shaped key (hex-ish, unique per i).
func diskKey(i int) string { return fmt.Sprintf("deadbeef%08x", i) }

func TestDiskPutGetRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("absent"); ok {
		t.Fatal("empty tier reported a hit")
	}
	d.Put(diskKey(1), []byte("payload-one"))
	v, ok := d.Get(diskKey(1))
	if !ok || string(v) != "payload-one" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	if want := int64(diskHeaderLen + len("payload-one")); st.Bytes != want {
		t.Errorf("bytes = %d, want %d (whole entry file)", st.Bytes, want)
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d.Put(diskKey(i), []byte(fmt.Sprintf("value-%d", i)))
	}

	// A new process: same directory, fresh index.
	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 5 {
		t.Fatalf("reopened tier has %d entries, want 5", d2.Len())
	}
	for i := 0; i < 5; i++ {
		v, ok := d2.Get(diskKey(i))
		if !ok || string(v) != fmt.Sprintf("value-%d", i) {
			t.Errorf("after reopen, Get(%d) = %q, %v", i, v, ok)
		}
	}
	if st := d2.Stats(); st.Errors != 0 {
		t.Errorf("reopen produced %d errors", st.Errors)
	}
}

// entryPath finds the single entry file for key.
func entryPath(t *testing.T, d *Disk, key string) string {
	t.Helper()
	p := d.path(fileName(key))
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry file for %q: %v", key, err)
	}
	return p
}

func TestDiskTruncatedEntryIsMissAndRepaired(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := diskKey(7)
	d.Put(key, []byte("full-payload-bytes"))
	p := entryPath(t, d, key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, diskHeaderLen - 1, diskHeaderLen, len(raw) - 1} {
		if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Reopen so the index reflects the damaged file even if a prior
		// iteration's Get dropped it.
		d2, err := OpenDisk(d.Dir(), 0)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if v, ok := d2.Get(key); ok {
			t.Fatalf("cut=%d: truncated entry served as a hit: %q", cut, v)
		}
		if st := d2.Stats(); st.Errors == 0 {
			t.Errorf("cut=%d: corruption not counted", cut)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("cut=%d: corrupt file not removed (err=%v)", cut, err)
		}
		// The next store of the address repairs the entry.
		d2.Put(key, []byte("full-payload-bytes"))
		if v, ok := d2.Get(key); !ok || string(v) != "full-payload-bytes" {
			t.Fatalf("cut=%d: repaired entry Get = %q, %v", cut, v, ok)
		}
		raw, err = os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiskBitFlippedEntryIsMiss(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := diskKey(9)
	d.Put(key, []byte("pristine-payload"))
	p := entryPath(t, d, key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every region: magic, checksum, length, payload.
	for _, off := range []int{0, len(diskMagic) + 1, len(diskMagic) + 33, diskHeaderLen + 2} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		d2, err := OpenDisk(d.Dir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := d2.Get(key); ok {
			t.Fatalf("offset %d: bit-flipped entry served as a hit: %q", off, v)
		}
		d2.Put(key, []byte("pristine-payload"))
		if _, ok := d2.Get(key); !ok {
			t.Fatalf("offset %d: entry not repaired", off)
		}
	}
}

func TestDiskSizeCapEvictsLRU(t *testing.T) {
	entry := int64(diskHeaderLen + 10) // every payload below is 10 bytes
	d, err := OpenDisk(t.TempDir(), 4*entry)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d.Put(diskKey(i), []byte(fmt.Sprintf("payload-%02d", i)))
	}
	st := d.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4 (cap %d bytes)", st.Entries, 4*entry)
	}
	if st.Bytes > 4*entry {
		t.Errorf("bytes = %d exceeds cap %d", st.Bytes, 4*entry)
	}
	if st.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", st.Evictions)
	}
	// The four newest survive; the four oldest are gone from disk too.
	for i := 0; i < 4; i++ {
		if _, ok := d.Get(diskKey(i)); ok {
			t.Errorf("old entry %d survived eviction", i)
		}
		if _, err := os.Stat(d.path(fileName(diskKey(i)))); !os.IsNotExist(err) {
			t.Errorf("old entry %d file still on disk", i)
		}
	}
	for i := 4; i < 8; i++ {
		if _, ok := d.Get(diskKey(i)); !ok {
			t.Errorf("new entry %d evicted", i)
		}
	}
}

func TestDiskRecencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Put(diskKey(0), []byte("aaaaaaaaaa"))
	d.Put(diskKey(1), []byte("bbbbbbbbbb"))
	// Backdate both entries, then touch entry 0 via Get so its mtime — the
	// persisted access index — is newest.
	old := time.Now().Add(-time.Hour)
	for i := 0; i < 2; i++ {
		if err := os.Chtimes(d.path(fileName(diskKey(i))), old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := d.Get(diskKey(0)); !ok {
		t.Fatal("entry 0 missing")
	}

	// Reopen with a cap that forces one eviction: the stale entry 1 goes.
	entry := int64(diskHeaderLen + 10)
	d2, err := OpenDisk(dir, entry)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Get(diskKey(0)); !ok {
		t.Error("recently-accessed entry evicted at reopen")
	}
	if _, ok := d2.Get(diskKey(1)); ok {
		t.Error("least-recently-accessed entry survived reopen eviction")
	}
}

func TestDiskOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "de"), 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "de", "tmp-12345")
	if err := os.WriteFile(tmp, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("temp file was indexed as an entry")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("temp file not swept at open")
	}
}

func TestDiskUnsafeKeysAreRehashed(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"../../etc/passwd", "UPPER", "", strings.Repeat("k", 200), "sp ace"}
	for i, k := range keys {
		val := []byte(fmt.Sprintf("v-%d", i))
		d.Put(k, val)
		got, ok := d.Get(k)
		if !ok || string(got) != string(val) {
			t.Errorf("key %q: Get = %q, %v", k, got, ok)
		}
		name := fileName(k)
		if strings.ContainsAny(name, "/\\ ") || len(name) > 128+len(entrySuffix) {
			t.Errorf("key %q mapped to unsafe file name %q", k, name)
		}
	}
	// Nothing escaped the root.
	err = filepath.Walk(d.Dir(), func(path string, info os.FileInfo, err error) error { return err })
	if err != nil {
		t.Fatal(err)
	}
}

func TestTieredPromotesDiskHitsToMemory(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(64, disk)
	computes := 0
	compute := func() ([]byte, error) { computes++; return []byte("computed"), nil }

	// Cold: compute once, write through to both tiers.
	v, hit, err := tiered.GetOrCompute(context.Background(), diskKey(1), compute)
	if err != nil || hit || string(v) != "computed" {
		t.Fatalf("cold = %q, hit=%v, err=%v", v, hit, err)
	}
	if computes != 1 {
		t.Fatalf("computes = %d", computes)
	}
	if _, ok := disk.Get(diskKey(1)); !ok {
		t.Fatal("value did not reach the disk tier")
	}

	// A "restart": new memory tier over the same directory.
	disk2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t2 := NewTiered(64, disk2)
	v, hit, err = t2.GetOrCompute(context.Background(), diskKey(1), compute)
	if err != nil || !hit || string(v) != "computed" {
		t.Fatalf("warm restart = %q, hit=%v, err=%v", v, hit, err)
	}
	if computes != 1 {
		t.Fatalf("warm restart recomputed (computes = %d)", computes)
	}
	// Promoted: the memory tier now serves it without touching disk.
	diskHits := t2.Stats().Tier("disk").Hits
	if v, ok := t2.Get(diskKey(1)); !ok || string(v) != "computed" {
		t.Fatalf("post-promotion Get = %q, %v", v, ok)
	}
	st := t2.Stats()
	if st.Tier("disk").Hits != diskHits {
		t.Error("promoted entry still read from disk")
	}
	if st.Tier("memory").Hits == 0 {
		t.Error("promotion did not land in the memory tier")
	}
}

func TestTieredSingleflightAcrossTiers(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(64, disk)
	var computes int
	results := make(chan string, 32)
	block := make(chan struct{})
	for i := 0; i < 32; i++ {
		go func() {
			v, _, err := tiered.GetOrCompute(context.Background(), diskKey(2), func() ([]byte, error) {
				computes++ // data race here would trip -race if the flight leaked
				<-block
				return []byte("once"), nil
			})
			if err != nil {
				results <- err.Error()
				return
			}
			results <- string(v)
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the herd pile onto the flight
	close(block)
	for i := 0; i < 32; i++ {
		if got := <-results; got != "once" {
			t.Fatalf("caller got %q", got)
		}
	}
	if computes != 1 {
		t.Errorf("computes = %d, want 1 (singleflight across tiers)", computes)
	}
}

func TestTieredComputeErrorNotStored(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(64, disk)
	_, _, err = tiered.GetOrCompute(context.Background(), diskKey(3), func() ([]byte, error) {
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if _, ok := tiered.Get(diskKey(3)); ok {
		t.Error("failed compute left an entry in a tier")
	}
	if disk.Len() != 0 {
		t.Error("failed compute wrote a disk entry")
	}
}

func TestTieredCountsOneLookupOncePerTier(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(64, disk)
	// One cold GetOrCompute = exactly one counted miss per tier, even
	// though the flight re-probes the disk before computing.
	if _, _, err := tiered.GetOrCompute(context.Background(), diskKey(5), func() ([]byte, error) {
		return []byte("v"), nil
	}); err != nil {
		t.Fatal(err)
	}
	st := tiered.Stats()
	if m := st.Tier("memory"); m.Hits != 0 || m.Misses != 1 {
		t.Errorf("memory tier after cold lookup: %+v", m)
	}
	if d := st.Tier("disk"); d.Hits != 0 || d.Misses != 1 {
		t.Errorf("disk tier after cold lookup: %+v (flight re-probe must be uncounted)", d)
	}
	// The server's compare path does Get (counted) then Compute (probe
	// uncounted): still one miss per tier per lookup.
	if _, ok := tiered.Get(diskKey(6)); ok {
		t.Fatal("unexpected hit")
	}
	if _, _, err := tiered.Compute(context.Background(), diskKey(6), func() ([]byte, error) {
		return []byte("w"), nil
	}); err != nil {
		t.Fatal(err)
	}
	st = tiered.Stats()
	if d := st.Tier("disk"); d.Misses != 2 {
		t.Errorf("disk misses = %d after two cold lookups, want 2", d.Misses)
	}
	if h := st.Hits(); h != 0 {
		t.Errorf("hits = %d, want 0", h)
	}
}

func TestStatsAggregation(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(64, disk)
	if _, ok := tiered.Get("miss-both"); ok {
		t.Fatal("unexpected hit")
	}
	st := tiered.Stats()
	if len(st.Tiers) != 2 || st.Tiers[0].Name != "memory" || st.Tiers[1].Name != "disk" {
		t.Fatalf("tiers = %+v", st.Tiers)
	}
	if st.Misses() != 1 {
		t.Errorf("full misses = %d, want 1", st.Misses())
	}
	if st.Hits() != 0 {
		t.Errorf("hits = %d, want 0", st.Hits())
	}
}
