package resultstore

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cdcs/internal/fanout"
	"cdcs/internal/fleet"
)

// PeerTier consults sibling replicas before the chain falls through to a
// recompute: a read-only tier that fetches entries by content address from
// GET /v1/blob/{hash} on its peers. Replicas are ranked per key with the
// same rendezvous hashing the sweep fan-out uses to route cells
// (fanout.Rank), so the first peers asked are exactly the replicas the
// fleet's clients would have sent the work to — the likely holders. A hit
// is promoted into the faster local tiers by the chain, which is how a
// replica starting with an empty cache directory joins the fleet warm: its
// first pass over a corpus fills memory and disk from its peers, and only
// work the whole fleet has never seen burns a simulation.
//
// Fetched entries arrive in the keyed blob frame (EncodeBlob): the entry
// checksum detects damage in transit exactly like local bit rot, and the
// key binding rejects a stale-but-valid response for the wrong address, so
// a confused peer can never poison this replica's tiers. Both failure
// classes count in Errors and read as misses, never get served.
//
// Concurrent fetches of one address coalesce onto a single network walk:
// the tier keeps its own per-key singleflight, so N simultaneous lookups of
// a cold hash (a sweep's worth of clients converging on one cell) cost one
// peer round trip, not N.
//
// With a fleet view attached (UseFleet), membership is health-checked:
// peers whose circuit breaker is open are skipped outright — a dead peer
// costs nothing after the breaker trips, instead of a dial timeout per
// lookup — and every fetch's outcome feeds the view.
type PeerTier struct {
	peers       []string
	client      *http.Client
	maxAttempts int
	fleet       *fleet.Fleet
	membership  *fleet.Membership // non-nil: live peer list (members − self)
	self        string            // this replica's own advertised URL

	flightMu sync.Mutex
	flight   map[string]*peerFlight

	hits   atomic.Int64
	misses atomic.Int64
	errors atomic.Int64
}

// peerFlight is one in-flight peer walk; latecomers block on done and share
// the result.
type peerFlight struct {
	done chan struct{}
	val  []byte
	ok   bool
}

// DefaultPeerAttempts bounds how many ranked peers one lookup consults. Two
// is enough to cover the key's owner plus its first failover holder without
// turning a fleet-wide cold miss into a full broadcast.
const DefaultPeerAttempts = 2

// NewPeerTier builds a peer tier over sibling base URLs (e.g.
// "http://10.0.0.2:8080"). client may be nil for a default with a 5s
// timeout; maxAttempts ≤ 0 means DefaultPeerAttempts, capped at the number
// of peers.
func NewPeerTier(peers []string, client *http.Client, maxAttempts int) *PeerTier {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	if maxAttempts <= 0 {
		maxAttempts = DefaultPeerAttempts
	}
	return &PeerTier{
		peers:       fanout.NormalizeReplicas(peers),
		client:      client,
		maxAttempts: maxAttempts,
		flight:      map[string]*peerFlight{},
	}
}

// UseFleet attaches a fleet view: breaker-open peers are skipped and fetch
// outcomes feed the view's instrumentation. Call before serving traffic.
func (p *PeerTier) UseFleet(f *fleet.Fleet) { p.fleet = f }

// UseMembership makes the peer list live: lookups walk the registry's
// current members (minus this replica's own advertised URL, self) instead
// of the static list given to NewPeerTier, so peers that join or drain are
// picked up without reconstruction. Call before serving traffic.
func (p *PeerTier) UseMembership(m *fleet.Membership, self string) {
	p.membership = m
	if n := fanout.NormalizeReplicas([]string{self}); len(n) == 1 {
		p.self = n[0]
	}
}

// peerList resolves the peers a lookup may consult right now.
func (p *PeerTier) peerList() []string {
	if p.membership == nil {
		return p.peers
	}
	members := p.membership.Members()
	out := members[:0]
	for _, m := range members {
		if m != p.self {
			out = append(out, m)
		}
	}
	return out
}

// Name implements Tier.
func (p *PeerTier) Name() string { return "peer" }

// TierRemote marks the tier as consulting other processes, so
// TierChain.GetLocal (the /v1/blob lookup path) skips it and a blob request
// can never recurse back into the fleet.
func (p *PeerTier) TierRemote() {}

// Get implements Tier: try the key's ranked holders until one serves a
// verified entry.
func (p *PeerTier) Get(key string) ([]byte, bool) {
	val, ok := p.fetch(key)
	if ok {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
	}
	return val, ok
}

// Peek is Get without the hit/miss counters (fetch failures are still
// counted in Errors).
func (p *PeerTier) Peek(key string) ([]byte, bool) {
	return p.fetch(key)
}

// fetch coalesces concurrent lookups of one key onto a single network walk
// (fetchLocked does the walking).
func (p *PeerTier) fetch(key string) ([]byte, bool) {
	if len(p.peerList()) == 0 {
		return nil, false
	}
	p.flightMu.Lock()
	if fl, ok := p.flight[key]; ok {
		p.flightMu.Unlock()
		<-fl.done
		return fl.val, fl.ok
	}
	fl := &peerFlight{done: make(chan struct{})}
	p.flight[key] = fl
	p.flightMu.Unlock()

	fl.val, fl.ok = p.walk(key)

	p.flightMu.Lock()
	delete(p.flight, key)
	p.flightMu.Unlock()
	close(fl.done)
	return fl.val, fl.ok
}

// walk tries the key's rendezvous ranking. A clean 404 means that peer
// simply does not hold the entry; transport errors, non-200 statuses and
// integrity failures count in Errors. Either way the next ranked holder is
// tried, and running out of holders is a miss. Breaker-open peers are
// skipped without a request when a fleet view is attached.
func (p *PeerTier) walk(key string) ([]byte, bool) {
	ranked := fanout.Rank(p.peerList(), key)
	attempts := 0
	for _, peer := range ranked {
		if attempts >= p.maxAttempts {
			break
		}
		if p.fleet != nil && !p.fleet.Healthy(peer) {
			continue
		}
		attempts++
		var end func(error)
		if p.fleet != nil {
			end = p.fleet.Begin(peer)
		}
		val, err := p.fetchOne(peer, key)
		if end != nil {
			end(err)
		}
		if err != nil {
			p.errors.Add(1)
			continue
		}
		if val != nil {
			return val, true
		}
	}
	return nil, false
}

// fetchOne asks a single peer for the framed entry. Returns (nil, nil) for
// a clean not-found — the peer is healthy, it just doesn't hold the key.
func (p *PeerTier) fetchOne(peer, key string) ([]byte, error) {
	resp, err := p.client.Get(peer + "/v1/blob/" + key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("resultstore: peer %s: %s", peer, resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
	if err != nil {
		return nil, err
	}
	if len(raw) > maxBlobBytes {
		return nil, fmt.Errorf("resultstore: peer %s: blob exceeds %d bytes", peer, maxBlobBytes)
	}
	val, err := DecodeBlob(key, raw)
	if err != nil {
		return nil, fmt.Errorf("resultstore: peer %s: %w", peer, err)
	}
	return val, nil
}

// maxBlobBytes bounds one fetched entry; result bodies are JSON documents
// well under this.
const maxBlobBytes = 64 << 20

// Put implements Tier as a no-op: each replica owns its local tiers, and
// peers are filled by their own compute-and-write-through paths, not pushed
// to.
func (p *PeerTier) Put(string, []byte) {}

// Peers returns the normalized peer list.
func (p *PeerTier) Peers() []string { return p.peers }

// Stats implements Tier. Entries/Bytes stay zero: the tier holds nothing.
func (p *PeerTier) Stats() TierStats {
	return TierStats{
		Name:   "peer",
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
		Errors: p.errors.Load(),
	}
}
