package resultstore

import (
	"context"
	"sync"
	"sync/atomic"
)

// TierChain is a fallback chain of tiers behind a single singleflight head:
// the one Store implementation, built with Chain. Lookups probe tiers
// fastest-first and a hit at tier i is promoted into every faster tier, so
// the working set migrates toward memory (and a cold replica joining a fleet
// with a peer tier fills its local tiers as it serves). A full miss computes
// once and writes through to every tier.
//
// Singleflight lives once, at the chain head: for a given address there is
// at most one probe sequence and at most one computation in flight
// process-wide, no matter how many tiers sit in the path or how many
// callers pile onto the address.
type TierChain struct {
	tiers []Tier

	flightMu sync.Mutex
	flight   map[string]*chainCall

	coalesced atomic.Int64
	inflight  atomic.Int64
}

// chainCall is one in-flight probe-or-compute; waiters block on done.
type chainCall struct {
	done chan struct{}
	val  []byte
	hit  bool
	err  error
}

// Chain composes tiers, fastest first, into a Store. At least one tier is
// required; NewMemory and NewTiered are the common compositions.
func Chain(tiers ...Tier) *TierChain {
	if len(tiers) == 0 {
		panic("resultstore: Chain needs at least one tier")
	}
	return &TierChain{tiers: tiers, flight: map[string]*chainCall{}}
}

// Tiers returns the chain's tiers, fastest first. The slice is shared; do
// not modify it.
func (c *TierChain) Tiers() []Tier { return c.tiers }

// Get implements Store: probe tiers in order, counting a hit or miss on
// each tier probed, and promote a hit into every faster tier.
func (c *TierChain) Get(key string) ([]byte, bool) {
	for i, t := range c.tiers {
		if v, ok := t.Get(key); ok {
			c.promote(key, v, i)
			return v, true
		}
	}
	return nil, false
}

// promote writes val into every tier faster than the one it was found in.
func (c *TierChain) promote(key string, val []byte, foundAt int) {
	for j := 0; j < foundAt; j++ {
		c.tiers[j].Put(key, val)
	}
}

// peek probes every tier without touching hit/miss counters (integrity
// errors are still counted by the tiers themselves). It reports the tier
// index that served the value so the caller can promote.
func (c *TierChain) peek(key string) ([]byte, bool, int) {
	for i, t := range c.tiers {
		if p, ok := t.(peeker); ok {
			if v, ok := p.Peek(key); ok {
				return v, true, i
			}
			continue
		}
		if v, ok := t.Get(key); ok {
			return v, true, i
		}
	}
	return nil, false, 0
}

// GetOrCompute implements Store.
func (c *TierChain) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	// The counted lookup probes the tiers (and promotes a hit), so one
	// logical lookup counts exactly once per tier probed; the flight's own
	// re-probe below is uncounted.
	if v, ok := c.Get(key); ok {
		return v, true, nil
	}
	return c.Compute(ctx, key, compute)
}

// Compute implements Store, for callers whose counted lookup already
// missed. The leader of a flight re-probes every tier uncounted — the value
// may have landed in a tier between the caller's lookup and the flight — so
// a late hit short-circuits the computation and is promoted like any other,
// while a real miss computes and writes through to every tier. Either way
// the result is a hit whenever this caller's compute did not run.
func (c *TierChain) Compute(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	c.flightMu.Lock()
	if cl, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-cl.done:
			return cl.val, true, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	cl := &chainCall{done: make(chan struct{})}
	c.flight[key] = cl
	c.flightMu.Unlock()

	if v, ok, i := c.peek(key); ok {
		cl.val, cl.hit = v, true
		c.promote(key, v, i)
	} else {
		c.inflight.Add(1)
		cl.val, cl.err = compute()
		c.inflight.Add(-1)
		if cl.err == nil {
			for _, t := range c.tiers {
				t.Put(key, cl.val)
			}
		}
	}
	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	close(cl.done)
	return cl.val, cl.hit, cl.err
}

// GetLocal returns key's bytes from this process's own tiers only, skipping
// remote tiers (peer) and all hit/miss counters, with no promotion: the
// lookup a sibling replica's /v1/blob request performs. Skipping remote
// tiers means a blob lookup can never recurse back into the fleet, and
// skipping promotion means peer traffic does not reshape the local working
// set.
func (c *TierChain) GetLocal(key string) ([]byte, bool) {
	for _, t := range c.tiers {
		if _, ok := t.(remoteTier); ok {
			continue
		}
		if p, ok := t.(peeker); ok {
			if v, ok := p.Peek(key); ok {
				return v, true
			}
			continue
		}
		if v, ok := t.Get(key); ok {
			return v, true
		}
	}
	return nil, false
}

// LocalKeys returns the union of content addresses held by this process's
// own tiers (remote tiers hold nothing and are skipped; tiers that cannot
// enumerate contribute nothing): the corpus manifest GET /v1/manifest serves
// and a joining replica warm-fills from. The snapshot is best-effort — keys
// racing in or out during enumeration may or may not appear, which the
// fetcher tolerates (a missing blob is a per-key miss, not a failure).
func (c *TierChain) LocalKeys() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range c.tiers {
		if _, remote := t.(remoteTier); remote {
			continue
		}
		kl, ok := t.(keyLister)
		if !ok {
			continue
		}
		for _, k := range kl.Keys() {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

// Put stores key's bytes in every local tier, bypassing the flight: the
// warm-join fill path, where values arrive already computed (and already
// integrity-verified by DecodeBlob) from a seed peer. Remote tiers are
// skipped — their Put is a no-op anyway, and a fill must never echo back
// into the fleet.
func (c *TierChain) Put(key string, val []byte) {
	for _, t := range c.tiers {
		if _, remote := t.(remoteTier); remote {
			continue
		}
		t.Put(key, val)
	}
}

// Stats implements Store: tier snapshots fastest first, plus the chain-head
// flight counters.
func (c *TierChain) Stats() Stats {
	ts := make([]TierStats, len(c.tiers))
	for i, t := range c.tiers {
		ts[i] = t.Stats()
	}
	return Stats{
		Tiers:     ts,
		Coalesced: c.coalesced.Load(),
		Inflight:  c.inflight.Load(),
	}
}
