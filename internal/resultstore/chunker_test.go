package resultstore

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
)

// randBytes is deterministic test data with enough entropy that gear-hash
// boundaries actually fire.
func randBytes(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestSplitChunksIdentityAndBounds(t *testing.T) {
	for _, n := range []int{0, 1, chunkMin - 1, chunkMin, chunkAvg, chunkMax, chunkMax + 1, 64 << 10, 1 << 20} {
		data := randBytes(int64(n)+1, n)
		chunks := splitChunks(data)
		if n == 0 {
			if chunks != nil {
				t.Errorf("splitChunks(empty) = %d chunks, want nil", len(chunks))
			}
			continue
		}
		var joined []byte
		for i, c := range chunks {
			if len(c) > chunkMax {
				t.Errorf("n=%d chunk %d is %d bytes, over max %d", n, i, len(c), chunkMax)
			}
			if len(c) < chunkMin && i != len(chunks)-1 {
				t.Errorf("n=%d chunk %d is %d bytes, under min %d (only the tail may be)", n, i, len(c), chunkMin)
			}
			joined = append(joined, c...)
		}
		if !bytes.Equal(joined, data) {
			t.Errorf("n=%d: reassembled chunks differ from input", n)
		}
	}
}

// TestSplitChunksBoundaryStability is the property the chunked store's dedup
// rests on: an edit near the front of a payload must not move the chunk
// boundaries of the untouched tail, so neighboring sweep cells (which differ
// in a few fields and share the rest) share most of their chunks.
func TestSplitChunksBoundaryStability(t *testing.T) {
	base := randBytes(7, 256<<10)
	edited := append([]byte("prefix-insertion:"), base...)

	seen := map[[32]byte]bool{}
	for _, c := range chunkSums(base) {
		seen[c] = true
	}
	shared := 0
	editedChunks := chunkSums(edited)
	for _, c := range editedChunks {
		if seen[c] {
			shared++
		}
	}
	// Only the chunks covering the insertion point may differ; with ~128
	// chunks in 256 KiB, well over half must survive the edit verbatim.
	if shared*2 < len(editedChunks) {
		t.Errorf("only %d/%d chunks shared after a prefix insertion; content-defined boundaries are not stable", shared, len(editedChunks))
	}
}

func chunkSums(data []byte) [][32]byte {
	var out [][32]byte
	for _, c := range splitChunks(data) {
		out = append(out, sha256.Sum256(c))
	}
	return out
}

func TestCompressChunkRoundTrip(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte("abcd"), chunkMax/4), // compressible, exactly max-sized
		randBytes(3, chunkAvg),                   // incompressible
	} {
		comp := compressChunk(data)
		got, err := decompressChunk(comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("round trip of %d bytes differs", len(data))
		}
	}
}

func TestDecompressChunkRejectsOversize(t *testing.T) {
	// A stream inflating past chunkMax can never come from splitChunks; the
	// decoder must reject it rather than balloon memory on a forged chunk.
	if _, err := decompressChunk(compressChunk(make([]byte, chunkMax+1))); err == nil {
		t.Error("decompressChunk accepted a stream larger than chunkMax")
	}
	if _, err := decompressChunk([]byte("not a flate stream")); err == nil {
		t.Error("decompressChunk accepted garbage")
	}
}

// FuzzChunkReassemble fuzzes the identity the manifest format depends on:
// split, compress, decompress, rejoin must reproduce any input exactly —
// including inputs that are empty or smaller than one chunk.
func FuzzChunkReassemble(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("a"))
	f.Add(bytes.Repeat([]byte{0}, chunkMin))
	f.Add(randBytes(1, chunkMax+chunkMin))
	f.Add(randBytes(2, 3*chunkMax))
	f.Fuzz(func(t *testing.T, data []byte) {
		chunks := splitChunks(data)
		if (chunks == nil) != (len(data) == 0) {
			t.Fatalf("%d bytes split into %d chunks", len(data), len(chunks))
		}
		joined := make([]byte, 0, len(data))
		for i, c := range chunks {
			if len(c) == 0 || len(c) > chunkMax {
				t.Fatalf("chunk %d has invalid size %d", i, len(c))
			}
			rt, err := decompressChunk(compressChunk(c))
			if err != nil {
				t.Fatalf("chunk %d compress round trip: %v", i, err)
			}
			joined = append(joined, rt...)
		}
		if !bytes.Equal(joined, data) {
			t.Fatal("reassembled payload differs from input")
		}
	})
}
