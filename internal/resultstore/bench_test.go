package resultstore

import (
	"fmt"
	"testing"
)

// BenchmarkStoreWriteRead drives the persistent tiers through the serving
// pattern — write a corpus of near-identical entries (neighboring sweep
// cells), read every entry back verified — so the chunked tier's
// split+compress+dedup cost is visible next to the whole-entry tier it
// replaces. The stored metric reports physical occupancy per logical byte.
func BenchmarkStoreWriteRead(b *testing.B) {
	vals := corpus(16, 8<<10)
	var logical int64
	for _, v := range vals {
		logical += int64(len(v))
	}

	run := func(b *testing.B, open func(dir string) Tier) {
		dir := b.TempDir()
		tier := open(dir)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, v := range vals {
				tier.Put(fmt.Sprintf("key-%d", j), v)
			}
			for j := range vals {
				if _, ok := tier.Get(fmt.Sprintf("key-%d", j)); !ok {
					b.Fatalf("key-%d unreadable", j)
				}
			}
		}
		b.StopTimer()
		st := tier.Stats()
		b.ReportMetric(float64(st.Bytes)/float64(logical), "stored/logical")
	}

	b.Run("disk", func(b *testing.B) {
		run(b, func(dir string) Tier {
			d, err := OpenDisk(dir, 0)
			if err != nil {
				b.Fatal(err)
			}
			return d
		})
	})
	b.Run("chunked", func(b *testing.B) {
		run(b, func(dir string) Tier {
			d, err := OpenChunkedDisk(dir, 0)
			if err != nil {
				b.Fatal(err)
			}
			return d
		})
	})
}
