// Package resultstore layers the content-addressed result caches into a
// tiered store: a fast in-memory tier (internal/resultcache's sharded LRU)
// over an optional persistent disk tier, behind one small Store interface
// the serving layer programs against.
//
// The contract is the same one the memory cache established: simulation is
// an expensive pure function of a request's content address, so any tier
// may serve any address and all tiers hold identical bytes for it. The
// tiered composition preserves singleflight semantics across tiers — for a
// given address there is at most one disk read and at most one simulation
// in flight process-wide, no matter how many tiers sit in the path.
package resultstore

import "context"

// Store is the result-cache surface the serving layer uses: content-hash
// keyed byte lookups with coalesced computation on miss.
//
// All implementations in this package are safe for concurrent use, and the
// byte slices they return are shared — callers must not modify them.
type Store interface {
	// Get returns the stored bytes for key, if present in any tier.
	Get(key string) ([]byte, bool)

	// GetOrCompute returns the bytes for key, computing and storing them on
	// a full miss. Concurrent calls for one key coalesce onto a single
	// computation. hit reports whether the bytes came from a tier (or a
	// coalesced flight) rather than this caller's own compute.
	GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error)

	// Compute is GetOrCompute without the initial counted lookup, for
	// callers that already observed a miss via Get.
	Compute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error)

	// Stats snapshots per-tier counters, fastest tier first.
	Stats() Stats
}

// TierStats are one tier's counters. Bytes includes per-entry overhead
// (the key for the memory tier, the entry-file framing for the disk tier)
// so tiers report comparable occupancy numbers.
type TierStats struct {
	Name      string `json:"name"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Evictions int64  `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	// Errors counts tolerated I/O and integrity failures (corrupt or
	// unreadable disk entries treated as misses, failed writes). Always 0
	// for the memory tier.
	Errors int64 `json:"errors,omitempty"`
}

// Stats is a snapshot of a whole store.
type Stats struct {
	// Tiers is ordered fastest first ("memory", then "disk" when present).
	Tiers []TierStats `json:"tiers"`
	// Coalesced counts callers that waited on another caller's in-flight
	// computation; Inflight is the current number of distinct computations.
	Coalesced int64 `json:"coalesced"`
	Inflight  int64 `json:"inflight"`
}

// Tier returns the named tier's stats (zero value if absent).
func (s Stats) Tier(name string) TierStats {
	for _, t := range s.Tiers {
		if t.Name == name {
			return t
		}
	}
	return TierStats{}
}

// Hits sums hits across tiers; Misses returns the slowest tier's misses
// (a lookup that missed every tier), so Hits+Misses counts lookups.
func (s Stats) Hits() int64 {
	var n int64
	for _, t := range s.Tiers {
		n += t.Hits
	}
	return n
}

// Misses returns the miss count of the slowest tier: lookups no tier could
// serve.
func (s Stats) Misses() int64 {
	if len(s.Tiers) == 0 {
		return 0
	}
	return s.Tiers[len(s.Tiers)-1].Misses
}
