// Package resultstore layers the content-addressed result caches into a
// fallback chain of tiers — memory, persistent disk (whole-entry or
// chunked+compressed), peer replicas — behind one small Store interface the
// serving layer programs against.
//
// The contract is the same one the memory cache established: simulation is
// an expensive pure function of a request's content address, so any tier
// may serve any address and all tiers hold identical bytes for it. The
// chain composition preserves singleflight semantics across tiers — for a
// given address there is at most one probe sequence and at most one
// simulation in flight process-wide, no matter how many tiers sit in the
// path. A miss only reaches the next tier when every faster tier missed,
// so a recompute happens only when the whole chain (including any peer
// replicas) came up empty.
package resultstore

import "context"

// Store is the result-cache surface the serving layer uses: content-hash
// keyed byte lookups with coalesced computation on miss.
//
// All implementations in this package are safe for concurrent use, and the
// byte slices they return are shared — callers must not modify them.
type Store interface {
	// Get returns the stored bytes for key, if present in any tier.
	Get(key string) ([]byte, bool)

	// GetOrCompute returns the bytes for key, computing and storing them on
	// a full miss. Concurrent calls for one key coalesce onto a single
	// computation. hit reports whether the bytes came from a tier (or a
	// coalesced flight) rather than this caller's own compute.
	GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error)

	// Compute is GetOrCompute without the initial counted lookup, for
	// callers that already observed a miss via Get.
	Compute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error)

	// Stats snapshots per-tier counters, fastest tier first.
	Stats() Stats
}

// Tier is the minimal surface a fallback-chain member implements: counted
// lookups, best-effort stores, and counters. Compose tiers with Chain.
//
// All implementations in this package are safe for concurrent use. Put is
// best-effort — a tier that cannot (or does not) store a value simply
// drops it; tiers are accelerators, never correctness dependencies.
type Tier interface {
	// Name labels the tier in Stats and metrics ("memory", "disk", "peer").
	Name() string

	// Get returns the stored bytes for key, counting a hit or miss.
	Get(key string) ([]byte, bool)

	// Put stores key's bytes (best effort). Read-only tiers no-op.
	Put(key string, val []byte)

	// Stats snapshots the tier's counters.
	Stats() TierStats
}

// peeker is implemented by tiers whose lookups can skip the hit/miss
// counters. Chain uses it for the uncounted re-probe inside a flight whose
// triggering lookup was already counted, so one logical lookup counts
// exactly once per tier. Tiers without it are re-probed with a counted Get.
type peeker interface {
	Peek(key string) ([]byte, bool)
}

// remoteTier marks tiers that consult other processes (the peer tier).
// TierChain.GetLocal skips them so one replica's blob lookup can never
// recurse back into the fleet.
type remoteTier interface {
	TierRemote()
}

// keyLister is implemented by tiers that can enumerate the content
// addresses they hold. TierChain.LocalKeys unions them into the corpus
// manifest a joining replica warm-fills from.
type keyLister interface {
	Keys() []string
}

// TierStats are one tier's counters. Bytes includes per-entry overhead
// (the key for the memory tier, the entry-file framing for the disk tier)
// so tiers report comparable occupancy numbers.
type TierStats struct {
	Name      string `json:"name"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Evictions int64  `json:"evictions"`
	Entries   int    `json:"entries"`
	// Bytes is the tier's physical occupancy: for disk tiers the bytes
	// actually resident on disk — compressed, after chunk dedup — which is
	// exactly what the size cap evicts against.
	Bytes int64 `json:"bytes"`
	// LogicalBytes is the uncompressed payload volume the tier represents;
	// Bytes/LogicalBytes is the observable dedup+compression ratio. Zero
	// for tiers that store nothing (peer) — and for the memory tier, where
	// it would equal the payload share of Bytes.
	LogicalBytes int64 `json:"logical_bytes,omitempty"`
	// Errors counts tolerated I/O and integrity failures (corrupt or
	// unreadable disk entries treated as misses, failed writes, failed or
	// damaged peer fetches). Always 0 for the memory tier.
	Errors int64 `json:"errors,omitempty"`
}

// Stats is a snapshot of a whole store.
type Stats struct {
	// Tiers is ordered fastest first ("memory", then "disk" and "peer"
	// when present).
	Tiers []TierStats `json:"tiers"`
	// Coalesced counts callers that waited on another caller's in-flight
	// computation; Inflight is the current number of distinct computations.
	Coalesced int64 `json:"coalesced"`
	Inflight  int64 `json:"inflight"`
}

// Tier returns the named tier's stats (zero value if absent).
func (s Stats) Tier(name string) TierStats {
	for _, t := range s.Tiers {
		if t.Name == name {
			return t
		}
	}
	return TierStats{}
}

// Hits sums hits across tiers; Misses returns the slowest tier's misses
// (a lookup that missed every tier), so Hits+Misses counts lookups.
func (s Stats) Hits() int64 {
	var n int64
	for _, t := range s.Tiers {
		n += t.Hits
	}
	return n
}

// Misses returns the miss count of the slowest tier: lookups no tier could
// serve.
func (s Stats) Misses() int64 {
	if len(s.Tiers) == 0 {
		return 0
	}
	return s.Tiers[len(s.Tiers)-1].Misses
}
