package resultstore

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blobServer is a minimal stand-in for a sibling replica's /v1/blob
// endpoint: it serves framed entries from a map.
func blobServer(t *testing.T, entries map[string][]byte) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		key := strings.TrimPrefix(r.URL.Path, "/v1/blob/")
		val, ok := entries[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(EncodeBlob(key, val))
	}))
	t.Cleanup(srv.Close)
	return srv, &requests
}

func TestPeerTierServesVerifiedEntries(t *testing.T) {
	val := []byte(`{"result": "from-peer"}`)
	srv, _ := blobServer(t, map[string][]byte{"k": val})
	p := NewPeerTier([]string{srv.URL}, nil, 0)

	got, ok := p.Get("k")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := p.Get("absent"); ok {
		t.Error("absent key served")
	}
	st := p.Stats()
	if st.Name != "peer" || st.Hits != 1 || st.Misses != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Entries/Bytes stay zero: the tier holds nothing locally.
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("peer tier reports local occupancy: %+v", st)
	}
}

// TestPeerTierRejectsDamagedFrame: a peer response that fails the entry
// frame's checksum must never be served — it counts as an error and a miss,
// exactly like local bit rot.
func TestPeerTierRejectsDamagedFrame(t *testing.T) {
	frame := EncodeBlob("k", []byte("payload"))
	frame[len(frame)-1] ^= 0x01
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(frame)
	}))
	t.Cleanup(srv.Close)

	p := NewPeerTier([]string{srv.URL}, nil, 0)
	if _, ok := p.Get("k"); ok {
		t.Fatal("damaged frame served")
	}
	st := p.Stats()
	if st.Errors == 0 {
		t.Error("damaged frame not counted in Errors")
	}
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1", st.Misses)
	}
}

// TestPeerTierRejectsWrongKeyBlob: a stale-but-valid frame answering a
// different content address — a confused cache or misrouted proxy replaying
// an old response — must be rejected by the key binding, or it would poison
// the local tiers under the wrong address.
func TestPeerTierRejectsWrongKeyBlob(t *testing.T) {
	stale := EncodeBlob("other-key", []byte(`{"result":"stale"}`))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(stale) // valid frame, wrong address, for every request
	}))
	t.Cleanup(srv.Close)

	p := NewPeerTier([]string{srv.URL}, nil, 0)
	if _, ok := p.Get("k"); ok {
		t.Fatal("blob for a different content address served")
	}
	st := p.Stats()
	if st.Errors == 0 {
		t.Error("wrong-key blob not counted in Errors")
	}
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1", st.Misses)
	}
	// The same bytes under their true address still verify.
	if val, err := DecodeBlob("other-key", stale); err != nil || string(val) != `{"result":"stale"}` {
		t.Fatalf("DecodeBlob under the true key = %q, %v", val, err)
	}
}

// TestPeerTierHangCountsOneErrorWithinDeadline: a peer that accepts the
// connection but never answers must cost exactly one timed-out request —
// bounded by the client deadline, counted once in Errors — and must not
// wedge the lookup.
func TestPeerTierHangCountsOneErrorWithinDeadline(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(func() { close(release); srv.Close() })

	client := &http.Client{Timeout: 150 * time.Millisecond}
	p := NewPeerTier([]string{srv.URL}, client, 0)
	start := time.Now()
	_, ok := p.Get("k")
	elapsed := time.Since(start)
	if ok {
		t.Fatal("hung peer served a value")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("lookup blocked %v; client deadline did not bound the hang", elapsed)
	}
	st := p.Stats()
	if st.Errors != 1 {
		t.Errorf("Errors = %d, want exactly 1 for the timed-out fetch", st.Errors)
	}
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1", st.Misses)
	}
}

// TestPeerTierCoalescesConcurrentFetches: N concurrent lookups of one cold
// key must cost one peer round trip — the tier's per-key singleflight, not
// the chain's compute singleflight, is what bounds network fan-in.
func TestPeerTierCoalescesConcurrentFetches(t *testing.T) {
	val := []byte(`{"result":"shared"}`)
	gate := make(chan struct{})
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		<-gate // hold the leader so the others must pile up behind it
		w.Write(EncodeBlob("k", val))
	}))
	t.Cleanup(srv.Close)

	p := NewPeerTier([]string{srv.URL}, nil, 0)
	const callers = 8
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	oks := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], oks[i] = p.Get("k")
		}(i)
	}
	// Wait until the leader's request is on the server, give the rest a
	// beat to reach the singleflight, then release.
	for requests.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := requests.Load(); n != 1 {
		t.Errorf("%d peer requests for %d concurrent lookups, want 1", n, callers)
	}
	for i := 0; i < callers; i++ {
		if !oks[i] || !bytes.Equal(results[i], val) {
			t.Fatalf("caller %d: got %q, %v", i, results[i], oks[i])
		}
	}
	if st := p.Stats(); st.Hits != callers {
		t.Errorf("Hits = %d, want %d (each caller counts its own outcome)", st.Hits, callers)
	}
}

func TestPeerTierSurvivesDeadPeer(t *testing.T) {
	val := []byte("v")
	alive, _ := blobServer(t, map[string][]byte{"k": val})
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // connection refused from here on

	// Both orders: whichever way rendezvous ranks them, the lookup must
	// fall through the dead peer to the live one.
	p := NewPeerTier([]string{dead.URL, alive.URL}, nil, 0)
	got, ok := p.Get("k")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get with a dead peer in the ranking = %q, %v", got, ok)
	}
}

func TestPeerTierAttemptsBounded(t *testing.T) {
	// Three peers, none holding the key: only maxAttempts of them may be
	// asked, so a fleet-wide cold miss is not a broadcast.
	var asked atomic.Int64
	mk := func() *httptest.Server {
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			asked.Add(1)
			http.NotFound(w, r)
		}))
		t.Cleanup(s.Close)
		return s
	}
	peers := []string{mk().URL, mk().URL, mk().URL}
	p := NewPeerTier(peers, nil, 2)
	if _, ok := p.Get("cold"); ok {
		t.Fatal("miss reported as hit")
	}
	if n := asked.Load(); n != 2 {
		t.Errorf("%d peers asked, want 2", n)
	}
}

// TestPeerTierInChain is the composition the fleet runs: a cold chain with
// a peer tier serves from the peer and promotes the entry into its local
// tiers, so the next lookup never leaves the process.
func TestPeerTierInChain(t *testing.T) {
	val := []byte(`{"result": 42}`)
	srv, requests := blobServer(t, map[string][]byte{"k": val})
	chain := Chain(MemoryTier(16), NewPeerTier([]string{srv.URL}, nil, 0))

	got, ok := chain.Get("k")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("cold Get through chain = %q, %v", got, ok)
	}
	after := requests.Load()
	if after == 0 {
		t.Fatal("peer never consulted")
	}
	if got, ok := chain.Get("k"); !ok || !bytes.Equal(got, val) {
		t.Fatal("promoted entry not served locally")
	}
	if requests.Load() != after {
		t.Error("second Get went back to the peer; promotion failed")
	}
	st := chain.Stats()
	if st.Tier("peer").Hits != 1 || st.Tier("memory").Hits != 1 {
		t.Errorf("tier hits: peer=%d memory=%d, want 1/1", st.Tier("peer").Hits, st.Tier("memory").Hits)
	}
}

func TestPeerTierPutIsNoOp(t *testing.T) {
	srv, requests := blobServer(t, nil)
	p := NewPeerTier([]string{srv.URL}, nil, 0)
	p.Put("k", []byte("v"))
	if requests.Load() != 0 {
		t.Error("Put issued a request; the peer tier must be read-only")
	}
}

func TestPeerTierNormalizesPeers(t *testing.T) {
	p := NewPeerTier([]string{" http://a:1/ ", "", "http://a:1", "http://b:2"}, nil, 0)
	got := p.Peers()
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Peers() = %v, want %v", got, want)
	}
}
