package resultstore

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeTier is a scriptable in-memory Tier for chain-composition tests.
type fakeTier struct {
	name string

	mu    sync.Mutex
	data  map[string][]byte
	gets  int
	peeks int
	puts  int
}

func newFakeTier(name string) *fakeTier {
	return &fakeTier{name: name, data: map[string][]byte{}}
}

func (f *fakeTier) Name() string { return f.name }

func (f *fakeTier) Get(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	v, ok := f.data[key]
	return v, ok
}

func (f *fakeTier) Peek(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.peeks++
	v, ok := f.data[key]
	return v, ok
}

func (f *fakeTier) Put(key string, val []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.data[key] = val
}

func (f *fakeTier) Stats() TierStats { return TierStats{Name: f.name} }

// remoteFakeTier wraps fakeTier so only it carries the TierRemote marker.
type remoteFakeTier struct{ *fakeTier }

func (r remoteFakeTier) TierRemote() {}

func (f *fakeTier) counts() (gets, peeks, puts int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gets, f.peeks, f.puts
}

func TestChainPromotesAcrossAllFasterTiers(t *testing.T) {
	a, b, c := newFakeTier("memory"), newFakeTier("disk"), newFakeTier("far")
	c.data["k"] = []byte("v")
	chain := Chain(a, b, c)

	v, ok := chain.Get("k")
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// The hit at the slowest tier lands in BOTH faster tiers, not just the
	// head: that is what lets a disk tier absorb a peer fetch.
	if _, ok := a.data["k"]; !ok {
		t.Error("hit not promoted to tier 0")
	}
	if _, ok := b.data["k"]; !ok {
		t.Error("hit not promoted to tier 1")
	}
	if _, _, puts := c.counts(); puts != 0 {
		t.Error("promotion wrote back into the serving tier")
	}
}

func TestChainWriteThroughOnCompute(t *testing.T) {
	a, b := newFakeTier("memory"), newFakeTier("disk")
	chain := Chain(a, b)
	computes := 0
	v, hit, err := chain.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		computes++
		return []byte("computed"), nil
	})
	if err != nil || hit || string(v) != "computed" || computes != 1 {
		t.Fatalf("v=%q hit=%v err=%v computes=%d", v, hit, err, computes)
	}
	for _, f := range []*fakeTier{a, b} {
		if string(f.data["k"]) != "computed" {
			t.Errorf("tier %s missing write-through", f.name)
		}
	}
	// Second lookup is a pure tier-0 hit: no compute, no deeper probe.
	bGets, _, _ := b.counts()
	if _, hit, _ := chain.GetOrCompute(context.Background(), "k", nil); !hit {
		t.Error("second lookup missed")
	}
	if gets, _, _ := b.counts(); gets != bGets {
		t.Error("tier-0 hit still probed tier 1")
	}
}

// TestChainSingleflightAtHead pins that coalescing happens once for the
// whole chain: concurrent callers for one key produce one compute and the
// waiters report hits.
func TestChainSingleflightAtHead(t *testing.T) {
	chain := Chain(newFakeTier("memory"), newFakeTier("disk"))
	var computes atomic.Int64
	gate := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, hit, err := chain.Compute(context.Background(), "k", func() ([]byte, error) {
				computes.Add(1)
				<-gate
				return []byte("v"), nil
			})
			if err != nil {
				t.Error(err)
			}
			hits[i] = hit
		}(i)
	}
	// Let callers pile onto the flight, then release the leader.
	for chain.Stats().Coalesced < callers-1 {
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("%d computes for %d concurrent callers", n, callers)
	}
	nHits := 0
	for _, h := range hits {
		if h {
			nHits++
		}
	}
	if nHits != callers-1 {
		t.Errorf("%d waiters reported hit, want %d", nHits, callers-1)
	}
	if st := chain.Stats(); st.Coalesced != callers-1 {
		t.Errorf("Coalesced = %d, want %d", st.Coalesced, callers-1)
	}
}

// TestChainFlightReprobeUsesPeek pins the counting contract: the flight
// leader's re-probe must not double-count the caller's already-counted
// lookup.
func TestChainFlightReprobeUsesPeek(t *testing.T) {
	a := newFakeTier("memory")
	chain := Chain(a)
	_, _, err := chain.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return []byte("v"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gets, peeks, _ := a.counts()
	if gets != 1 {
		t.Errorf("counted Gets = %d for one logical lookup, want 1", gets)
	}
	if peeks != 1 {
		t.Errorf("flight re-probe used %d Peeks, want 1", peeks)
	}
}

func TestChainGetLocalSkipsRemoteTiers(t *testing.T) {
	mem, disk := newFakeTier("memory"), newFakeTier("disk")
	peer := remoteFakeTier{newFakeTier("peer")}
	peer.data["k"] = []byte("remote-only")
	disk.data["d"] = []byte("on-disk")
	chain := Chain(mem, disk, peer)

	// A key only a peer holds is invisible to GetLocal — that is the
	// recursion guard for /v1/blob.
	if _, ok := chain.GetLocal("k"); ok {
		t.Error("GetLocal consulted a remote tier")
	}
	if gets, peeks, _ := peer.counts(); gets+peeks != 0 {
		t.Error("GetLocal probed the peer tier")
	}

	// Local content is served, uncounted and without promotion.
	v, ok := chain.GetLocal("d")
	if !ok || string(v) != "on-disk" {
		t.Fatalf("GetLocal(d) = %q, %v", v, ok)
	}
	if gets, _, _ := disk.counts(); gets != 0 {
		t.Error("GetLocal counted a Get on a peekable tier")
	}
	if _, ok := mem.data["d"]; ok {
		t.Error("GetLocal promoted into the memory tier")
	}
}

func TestChainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Chain() with no tiers did not panic")
		}
	}()
	Chain()
}
