package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openChunked(t *testing.T, dir string, maxBytes int64) *ChunkedDisk {
	t.Helper()
	d, err := OpenChunkedDisk(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// corpus builds near-identical payloads: a shared body with a small
// per-entry header, the shape of neighboring sweep cells.
func corpus(n, size int) [][]byte {
	body := randBytes(42, size)
	out := make([][]byte, n)
	for i := range out {
		out[i] = append([]byte(fmt.Sprintf("entry-%04d:", i)), body...)
	}
	return out
}

func TestChunkedRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	d := openChunked(t, dir, 0)
	vals := corpus(4, 40<<10)
	for i, v := range vals {
		d.Put(fmt.Sprintf("k%d", i), v)
	}
	for i, v := range vals {
		got, ok := d.Get(fmt.Sprintf("k%d", i))
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("k%d: ok=%v, bytes equal=%v", i, ok, bytes.Equal(got, v))
		}
	}
	if _, ok := d.Get("absent"); ok {
		t.Error("absent key reported present")
	}
	st := d.Stats()
	if st.Entries != 4 || st.Hits != 4 || st.Misses != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}

	// A fresh open over the same directory must rebuild identical
	// accounting from the files alone and still serve every entry.
	d2 := openChunked(t, dir, 0)
	st2 := d2.Stats()
	if st2.Entries != st.Entries || st2.Bytes != st.Bytes || st2.LogicalBytes != st.LogicalBytes {
		t.Errorf("reopen accounting drifted: %+v vs %+v", st2, st)
	}
	if d2.Chunks() != d.Chunks() {
		t.Errorf("reopen chunk count %d, want %d", d2.Chunks(), d.Chunks())
	}
	for i, v := range vals {
		if got, ok := d2.Get(fmt.Sprintf("k%d", i)); !ok || !bytes.Equal(got, v) {
			t.Fatalf("reopened k%d unreadable", i)
		}
	}
}

// TestChunkedDedupAndCompression pins the tentpole's storage win: entries
// sharing most of their bytes share most of their chunks, so physical
// occupancy stays far below payload volume.
func TestChunkedDedupAndCompression(t *testing.T) {
	d := openChunked(t, t.TempDir(), 0)
	vals := corpus(8, 50<<10)
	for i, v := range vals {
		d.Put(fmt.Sprintf("k%d", i), v)
	}
	st := d.Stats()
	var logical int64
	for _, v := range vals {
		logical += int64(len(v))
	}
	if st.LogicalBytes != logical {
		t.Errorf("LogicalBytes = %d, want %d", st.LogicalBytes, logical)
	}
	if st.Bytes >= st.LogicalBytes/2 {
		t.Errorf("stored %d bytes for %d logical (ratio %.2f), want ≤ 0.5 on a near-duplicate corpus",
			st.Bytes, st.LogicalBytes, float64(st.Bytes)/float64(st.LogicalBytes))
	}
	// Chunk dedup, not just compression: 8 copies of one body must not
	// store 8 copies of its chunks.
	if perEntry := 8 * len(splitChunks(vals[0])); d.Chunks() >= perEntry {
		t.Errorf("%d unique chunks for 8 near-identical entries (%d without dedup)", d.Chunks(), perEntry)
	}

	// Bytes must equal what is actually on disk.
	var onDisk int64
	err := filepath.Walk(d.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			onDisk += info.Size()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != onDisk {
		t.Errorf("Stats().Bytes = %d, on-disk total = %d", st.Bytes, onDisk)
	}
}

// TestChunkedCorruptChunkMissAndRepair mirrors Disk's corrupt-entry
// contract at chunk granularity: a rotten chunk degrades every entry that
// references it to a miss, counts errors, and a fresh Put repairs them.
func TestChunkedCorruptChunkMissAndRepair(t *testing.T) {
	dir := t.TempDir()
	d := openChunked(t, dir, 0)
	vals := corpus(3, 30<<10)
	for i, v := range vals {
		d.Put(fmt.Sprintf("k%d", i), v)
	}

	// Flip one byte in every chunk file: all entries become unservable.
	damaged := 0
	err := filepath.Walk(filepath.Join(dir, "c"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, chunkSuffix) {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		raw[len(raw)/2] ^= 0x40
		damaged++
		return os.WriteFile(path, raw, 0o644)
	})
	if err != nil || damaged == 0 {
		t.Fatalf("damaged %d chunks, err=%v", damaged, err)
	}

	for i := range vals {
		if _, ok := d.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("k%d served from corrupt chunks", i)
		}
	}
	if errs := d.Stats().Errors; errs == 0 {
		t.Error("corruption not counted in Errors")
	}
	if d.Len() != 0 {
		t.Errorf("%d entries survive store-wide corruption, want 0", d.Len())
	}

	// Put repairs: the same keys round-trip again, fully verified.
	for i, v := range vals {
		d.Put(fmt.Sprintf("k%d", i), v)
	}
	for i, v := range vals {
		if got, ok := d.Get(fmt.Sprintf("k%d", i)); !ok || !bytes.Equal(got, v) {
			t.Fatalf("k%d not repaired by rewrite", i)
		}
	}
}

func TestChunkedTruncatedManifestDroppedAtOpen(t *testing.T) {
	dir := t.TempDir()
	d := openChunked(t, dir, 0)
	d.Put("keep", randBytes(1, 20<<10))
	d.Put("torn", randBytes(2, 20<<10))

	// Truncate one manifest mid-frame, as a crash during write would if the
	// write were not atomic.
	torn := d.manifestPath(manifestName("torn"))
	raw, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openChunked(t, dir, 0)
	if _, ok := d2.Get("torn"); ok {
		t.Error("truncated manifest served")
	}
	if got, ok := d2.Get("keep"); !ok || len(got) != 20<<10 {
		t.Error("intact entry lost while sweeping a torn manifest")
	}
	if d2.Stats().Errors == 0 {
		t.Error("torn manifest not counted in Errors")
	}
	// The torn entry's unshared chunks are orphans now; the sweep must have
	// removed them so accounting matches disk.
	var onDisk int64
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			onDisk += info.Size()
		}
		return nil
	})
	if st := d2.Stats(); st.Bytes != onDisk {
		t.Errorf("Bytes = %d after sweep, on disk = %d", st.Bytes, onDisk)
	}
}

// TestChunkedMissingChunkIsMiss covers the other corruption shape: the
// manifest is intact but a chunk file vanished underneath it.
func TestChunkedMissingChunkIsMiss(t *testing.T) {
	d := openChunked(t, t.TempDir(), 0)
	val := randBytes(5, 30<<10)
	d.Put("k", val)

	removed := 0
	filepath.Walk(filepath.Join(d.Dir(), "c"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && removed == 0 {
			os.Remove(path)
			removed++
		}
		return nil
	})
	if removed != 1 {
		t.Fatal("no chunk file found to remove")
	}
	if _, ok := d.Get("k"); ok {
		t.Error("entry served with a chunk missing")
	}
	if d.Stats().Errors == 0 {
		t.Error("missing chunk not counted in Errors")
	}
	d.Put("k", val)
	if got, ok := d.Get("k"); !ok || !bytes.Equal(got, val) {
		t.Error("entry not repaired after rewrite")
	}
}

// TestChunkedEvictionRespectsSharedChunks: evicting an entry must only
// delete chunks nothing else references, and the cap works against
// physical (deduped, compressed) occupancy.
func TestChunkedEvictionRespectsSharedChunks(t *testing.T) {
	dir := t.TempDir()
	d := openChunked(t, dir, 0)
	vals := corpus(6, 30<<10)
	for i, v := range vals {
		d.Put(fmt.Sprintf("k%d", i), v)
	}
	full := d.Stats().Bytes

	// Reopen with a cap just below current occupancy. Evicting an entry
	// only frees its manifest and its unshared chunks (here, the first
	// chunk, which covers the per-entry header) — the shared body chunks
	// stay as long as any survivor references them — so a near-full cap is
	// satisfiable by dropping the oldest entry or two.
	capBytes := full - 1000
	d2 := openChunked(t, dir, capBytes)
	st := d2.Stats()
	if st.Bytes > capBytes {
		t.Errorf("occupancy %d exceeds cap %d after eviction", st.Bytes, capBytes)
	}
	if st.Entries == 0 || st.Entries == len(vals) {
		t.Errorf("eviction left %d/%d entries; want some but not all", st.Entries, len(vals))
	}
	if st.Evictions == 0 {
		t.Error("evictions not counted")
	}
	survivors := 0
	for i, v := range vals {
		if got, ok := d2.Get(fmt.Sprintf("k%d", i)); ok {
			survivors++
			if !bytes.Equal(got, v) {
				t.Fatalf("surviving k%d corrupted by eviction of its siblings", i)
			}
		}
	}
	if survivors != st.Entries {
		t.Errorf("%d entries readable, stats say %d", survivors, st.Entries)
	}
	// The newest entry is never evicted.
	if _, ok := d2.Get(fmt.Sprintf("k%d", len(vals)-1)); !ok {
		t.Error("newest entry was evicted")
	}
}

func TestChunkedReplaceReleasesOldChunks(t *testing.T) {
	d := openChunked(t, t.TempDir(), 0)
	d.Put("k", randBytes(9, 40<<10))
	after1 := d.Stats()
	d.Put("k", randBytes(10, 40<<10)) // unrelated content: no shared chunks
	after2 := d.Stats()
	if after2.Entries != 1 {
		t.Fatalf("entries = %d after replace, want 1", after2.Entries)
	}
	// Occupancy must reflect only the new content — the old generation's
	// chunks were dereferenced and deleted, not leaked.
	if after2.Bytes > after1.Bytes*3/2 {
		t.Errorf("occupancy grew from %d to %d on in-place replace; old chunks leaked", after1.Bytes, after2.Bytes)
	}
	if after2.LogicalBytes != 40<<10 {
		t.Errorf("LogicalBytes = %d, want %d", after2.LogicalBytes, 40<<10)
	}
}

// TestChunkedIdenticalRePut guards the generation handoff: re-storing a key
// with the same bytes must keep every shared chunk alive (the new
// generation's references are taken before the old one's are dropped) and
// leave accounting unchanged.
func TestChunkedIdenticalRePut(t *testing.T) {
	d := openChunked(t, t.TempDir(), 0)
	val := randBytes(21, 30<<10)
	d.Put("k", val)
	before := d.Stats()
	d.Put("k", val)
	if got, ok := d.Get("k"); !ok || !bytes.Equal(got, val) {
		t.Fatal("entry unreadable after identical re-Put")
	}
	after := d.Stats()
	if after.Entries != 1 || after.Bytes != before.Bytes || after.LogicalBytes != before.LogicalBytes {
		t.Errorf("accounting drifted on identical re-Put: %+v vs %+v", after, before)
	}
	if d.Chunks() == 0 {
		t.Error("chunks vanished on identical re-Put")
	}
}

func TestChunkedEmptyValue(t *testing.T) {
	dir := t.TempDir()
	d := openChunked(t, dir, 0)
	d.Put("empty", nil)
	if got, ok := d.Get("empty"); !ok || len(got) != 0 {
		t.Errorf("empty entry: ok=%v len=%d", ok, len(got))
	}
	d2 := openChunked(t, dir, 0)
	if got, ok := d2.Get("empty"); !ok || len(got) != 0 {
		t.Errorf("empty entry after reopen: ok=%v len=%d", ok, len(got))
	}
}
