package resultstore

import (
	"crypto/sha256"
	"fmt"
)

// Blob framing: what /v1/blob responses travel in between replicas. The
// entry frame (EncodeEntry) proves the payload arrived intact, but not that
// it answers the address that was asked — a stale cache in front of a
// replica, a misrouted proxy, or a buggy peer can return a perfectly valid
// frame for the *wrong* hash, and an unkeyed frame would let that entry
// poison the requester's local tiers under the wrong address forever (keys
// are content addresses of requests, so the payload alone cannot be checked
// against the key). The blob frame therefore binds the key: a digest of the
// content address the responder believes it is answering rides ahead of the
// entry frame, and DecodeBlob rejects any response whose binding does not
// match the address the requester asked for.
const blobMagic = "cdcsbl1\n"

const blobHeaderLen = len(blobMagic) + sha256.Size

// EncodeBlob frames an entry for /v1/blob transport: blob magic, the
// SHA-256 of the content address key, then the full entry frame
// (EncodeEntry) over the payload.
func EncodeBlob(key string, val []byte) []byte {
	buf := make([]byte, 0, blobHeaderLen+diskHeaderLen+len(val))
	buf = append(buf, blobMagic...)
	sum := sha256.Sum256([]byte(key))
	buf = append(buf, sum[:]...)
	return append(buf, EncodeEntry(val)...)
}

// DecodeBlob verifies a /v1/blob response against the content address the
// requester asked for and returns the payload: the key binding must match
// key, and the inner entry frame must verify like a local disk read.
func DecodeBlob(key string, raw []byte) ([]byte, error) {
	if len(raw) < blobHeaderLen || string(raw[:len(blobMagic)]) != blobMagic {
		return nil, fmt.Errorf("resultstore: bad blob header")
	}
	sum := sha256.Sum256([]byte(key))
	if string(raw[len(blobMagic):blobHeaderLen]) != string(sum[:]) {
		return nil, fmt.Errorf("resultstore: blob answers a different content address than %.12s", key)
	}
	return DecodeEntry(raw[blobHeaderLen:])
}
