package resultstore

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// Content-defined chunking (FastCDC-style) for the chunked disk tier.
//
// Entry payloads are split at boundaries chosen by a gear-hash rolling over
// the content, not at fixed offsets, so two payloads that share long byte
// runs (neighboring sweep cells differ in a few config fields but share most
// response bytes) produce mostly identical chunks even when the shared runs
// sit at different offsets. Chunks are content-addressed by SHA-256, so
// identical chunks are stored once no matter how many entries reference
// them.
//
// Sizes are tuned for this store's payloads (JSON result bodies, a few KB
// to a few hundred KB): small enough that a localized edit dirties one or
// two chunks, large enough that per-chunk file overhead stays negligible.
const (
	chunkMin = 512  // no boundary before this many bytes
	chunkAvg = 2048 // target average chunk size (2^11)
	chunkMax = 8192 // forced boundary at this many bytes
)

// FastCDC normalized chunking: before the average-size point boundaries
// must clear a harder mask (avg bits + 2), past it an easier one (avg bits
// - 2), pulling the size distribution toward the average. The gear hash
// mixes old bytes into high bits, so the masks test high bits.
const (
	chunkMaskS = uint64(0xFFF8) << 48 // 13 one-bits
	chunkMaskL = uint64(0xFF80) << 48 // 9 one-bits
)

// gearTable is the byte → random-odd-word table the rolling hash folds over.
// It is derived from SHA-256 so every build and process chunks identically —
// chunk boundaries are part of the on-disk format.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	for i := 0; i < 256; i += 4 {
		sum := sha256.Sum256([]byte{'g', 'e', 'a', 'r', byte(i)})
		for j := 0; j < 4; j++ {
			t[i+j] = binary.BigEndian.Uint64(sum[j*8:])
		}
	}
	return t
}()

// cutPoint returns the length of the next chunk of data (1..chunkMax),
// choosing a content-defined boundary between chunkMin and chunkMax.
// len(data) must be > 0.
func cutPoint(data []byte) int {
	n := len(data)
	if n <= chunkMin {
		return n
	}
	if n > chunkMax {
		n = chunkMax
	}
	normal := chunkAvg
	if n < normal {
		normal = n
	}
	var h uint64
	i := chunkMin
	for ; i < normal; i++ {
		h = (h << 1) + gearTable[data[i]]
		if h&chunkMaskS == 0 {
			return i + 1
		}
	}
	for ; i < n; i++ {
		h = (h << 1) + gearTable[data[i]]
		if h&chunkMaskL == 0 {
			return i + 1
		}
	}
	return n
}

// splitChunks splits data into content-defined chunks. The returned slices
// alias data; concatenated in order they are exactly data. An empty payload
// yields no chunks.
func splitChunks(data []byte) [][]byte {
	var out [][]byte
	for len(data) > 0 {
		n := cutPoint(data)
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// Chunk compression. compress/flate (stdlib DEFLATE) rather than zstd: the
// module is dependency-free and the build environment resolves no external
// modules, so vendoring klauspost/compress is not on the table — and at the
// few-KB chunk sizes used here DEFLATE's ratio on JSON payloads is within a
// few percent of zstd's while keeping the store self-contained.

// compressChunk returns chunk DEFLATE-compressed.
func compressChunk(chunk []byte) []byte {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil { // impossible for a valid level; fall back to stored
		panic(err)
	}
	_, _ = zw.Write(chunk) // bytes.Buffer writes cannot fail
	_ = zw.Close()
	return buf.Bytes()
}

// decompressChunk inflates a compressed chunk, rejecting anything that
// exceeds the chunker's maximum size (a corrupt stream must not balloon).
func decompressChunk(comp []byte) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(comp))
	defer zr.Close()
	out, err := io.ReadAll(io.LimitReader(zr, chunkMax+1))
	if err != nil {
		return nil, fmt.Errorf("resultstore: inflate chunk: %w", err)
	}
	if len(out) > chunkMax {
		return nil, fmt.Errorf("resultstore: inflated chunk exceeds %d bytes", chunkMax)
	}
	return out, nil
}
