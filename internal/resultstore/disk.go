package resultstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Disk is the persistent tier: one file per content address under a root
// directory, each framed with a checksum so torn or bit-rotted entries are
// detected on read and treated as misses (the file is removed, and the next
// store of that address repairs it). Writes are atomic (temp file + rename
// in the same directory), so a crash mid-write never leaves a live entry
// half-written — at worst it leaves a temp file that Open sweeps away.
//
// The tier is size-capped: an in-memory recency index (seeded from file
// mtimes at Open, maintained exactly while the process lives, and persisted
// back via mtime touches on access) drives LRU eviction when the cap is
// exceeded. Sizes are whole entry files, so the cap bounds real disk use.
type Disk struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *diskEntry
	idx   map[string]*list.Element
	bytes int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	errors    atomic.Int64
}

// diskEntry is the index record for one entry file.
type diskEntry struct {
	name string // file name (see fileName), also the index key
	size int64  // whole-file size
	// gen counts rewrites of this entry. A reader that found the file
	// damaged only removes it if gen is still what it read under — a
	// concurrent Put that re-rendered the entry bumps gen, telling the
	// reader its observation is stale and the fresh file must stay.
	gen uint64
}

// Entry-file framing: magic, the SHA-256 of the payload, the payload length,
// then the payload. Reads verify all three; any mismatch is corruption.
const diskMagic = "cdcsrs1\n"

const diskHeaderLen = len(diskMagic) + sha256.Size + 8

// entrySuffix distinguishes live entries from temp files mid-rename.
const entrySuffix = ".e"

// OpenDisk opens (creating if needed) a disk tier rooted at dir, capped at
// maxBytes of entry files (0 or negative means uncapped). Existing entries
// are indexed by file mtime so recency survives restarts; leftover temp
// files from interrupted writes are removed. Entry integrity is verified
// lazily on Get, not at Open, so opening a large corpus is cheap.
func OpenDisk(dir string, maxBytes int64) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: open disk tier: %w", err)
	}
	d := &Disk{
		dir:      dir,
		maxBytes: maxBytes,
		lru:      list.New(),
		idx:      map[string]*list.Element{},
	}

	type scanned struct {
		name  string
		size  int64
		mtime time.Time
	}
	var found []scanned
	err := filepath.WalkDir(dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			return nil
		}
		name := de.Name()
		if !strings.HasSuffix(name, entrySuffix) {
			// Interrupted atomic write (or foreign debris): sweep it.
			_ = os.Remove(path)
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return nil // raced with concurrent removal; skip
		}
		found = append(found, scanned{name: name, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("resultstore: scanning %s: %w", dir, err)
	}
	// Oldest first, name as tiebreaker so rebuilds are deterministic; the
	// loop pushes each to the front, leaving the newest at the front.
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		d.idx[f.name] = d.lru.PushFront(&diskEntry{name: f.name, size: f.size})
		d.bytes += f.size
	}
	d.mu.Lock()
	d.evictOverCapLocked()
	d.mu.Unlock()
	return d, nil
}

// Dir returns the tier's root directory.
func (d *Disk) Dir() string { return d.dir }

// Name implements Tier.
func (d *Disk) Name() string { return "disk" }

// safeName maps a content address to a filesystem-safe base name. Keys from
// the serving layer are hex SHA-256 digests and map through unchanged (so
// the on-disk corpus is human-greppable by content address); anything else
// is rehashed into that shape rather than trusted as a path component.
func safeName(key string) string {
	safe := key != "" && len(key) <= 128
	for i := 0; safe && i < len(key); i++ {
		c := key[i]
		if !('a' <= c && c <= 'z' || '0' <= c && c <= '9') {
			safe = false
		}
	}
	if !safe {
		sum := sha256.Sum256([]byte(key))
		return "x" + hex.EncodeToString(sum[:])
	}
	return key
}

// fileName maps a content address to its entry file name.
func fileName(key string) string {
	return safeName(key) + entrySuffix
}

// path returns the absolute path of an entry file. Entries spread over 256
// shard subdirectories by name prefix so no single directory grows huge.
func (d *Disk) path(name string) string {
	shard := "xx"
	if len(name) >= 2 {
		shard = name[:2]
	}
	return filepath.Join(d.dir, shard, name)
}

// Get returns the stored bytes for key. A missing file is a plain miss; an
// unreadable or corrupt file is counted in Errors, removed, and reported as
// a miss so the caller recomputes (and Put repairs the entry).
func (d *Disk) Get(key string) ([]byte, bool) {
	val, ok := d.get(key)
	if ok {
		d.hits.Add(1)
	} else {
		d.misses.Add(1)
	}
	return val, ok
}

// Peek is Get without the hit/miss counters (integrity errors are still
// counted). The chain uses it inside a flight whose lookup was already
// counted, so one logical lookup counts once per tier.
func (d *Disk) Peek(key string) ([]byte, bool) {
	return d.get(key)
}

// get is the shared lookup path.
func (d *Disk) get(key string) ([]byte, bool) {
	name := fileName(key)
	d.mu.Lock()
	el, ok := d.idx[name]
	if !ok {
		d.mu.Unlock()
		return nil, false
	}
	gen := el.Value.(*diskEntry).gen
	d.lru.MoveToFront(el)
	d.mu.Unlock()

	path := d.path(name)
	raw, err := os.ReadFile(path)
	if err != nil {
		// Indexed but unreadable (deleted underneath us, permissions):
		// drop the index record and miss. The file, if any, stays — a
		// concurrent Put may have just renamed a fresh one into place.
		d.errors.Add(1)
		d.dropStale(name, gen, false)
		return nil, false
	}
	val, err := DecodeEntry(raw)
	if err != nil {
		// Torn write or bit rot: never serve it. Remove the file so the
		// next store of this address rewrites it cleanly — unless a
		// concurrent Put already did exactly that (gen moved on).
		d.errors.Add(1)
		d.dropStale(name, gen, true)
		return nil, false
	}
	// Persist recency so LRU order survives restarts (mtime is the on-disk
	// access index; failure only costs eviction precision after a restart).
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return val, true
}

// Put stores key's bytes, evicting least-recently-used entries if the cap
// is exceeded. Storage failures are tolerated (counted in Errors): the disk
// tier is an accelerator, never a correctness dependency, so a failed write
// only means the address is recomputed later.
func (d *Disk) Put(key string, val []byte) {
	name := fileName(key)
	path := d.path(name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		d.errors.Add(1)
		return
	}
	buf := EncodeEntry(val)
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		d.errors.Add(1)
		return
	}
	_, werr := tmp.Write(buf)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		d.errors.Add(1)
		return
	}

	// The rename happens inside the critical section so that making the
	// file visible and indexing it (with a bumped generation) are atomic
	// with respect to dropStale — a reader that found the old file damaged
	// can never remove this fresh one.
	size := int64(len(buf))
	d.mu.Lock()
	if err := os.Rename(tmp.Name(), path); err != nil {
		d.mu.Unlock()
		_ = os.Remove(tmp.Name())
		d.errors.Add(1)
		return
	}
	if el, ok := d.idx[name]; ok {
		e := el.Value.(*diskEntry)
		d.bytes += size - e.size
		e.size = size
		e.gen++
		d.lru.MoveToFront(el)
	} else {
		d.idx[name] = d.lru.PushFront(&diskEntry{name: name, size: size})
		d.bytes += size
	}
	d.evictOverCapLocked()
	d.mu.Unlock()
}

// dropStale removes name from the index — and, with removeFile, the entry
// file itself — but only if the entry's generation still matches what the
// failed reader observed. A moved-on generation means a concurrent Put
// replaced the entry after the read: the fresh entry stays.
func (d *Disk) dropStale(name string, gen uint64, removeFile bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.idx[name]
	if !ok || el.Value.(*diskEntry).gen != gen {
		return
	}
	d.bytes -= el.Value.(*diskEntry).size
	d.lru.Remove(el)
	delete(d.idx, name)
	if removeFile {
		// Under d.mu: a racing Put cannot rename a fresh file into place
		// between this check and the remove, because Put's rename-then-index
		// sequence also serializes on d.mu before becoming visible.
		_ = os.Remove(d.path(name))
	}
}

// evictOverCapLocked removes least-recently-used entry files until within
// the byte cap. Called with d.mu held. The newest entry always stays, so a
// single oversized entry cannot evict itself into a livelock.
func (d *Disk) evictOverCapLocked() {
	if d.maxBytes <= 0 {
		return
	}
	for d.bytes > d.maxBytes && d.lru.Len() > 1 {
		el := d.lru.Back()
		e := el.Value.(*diskEntry)
		d.lru.Remove(el)
		delete(d.idx, e.name)
		d.bytes -= e.size
		if err := os.Remove(d.path(e.name)); err != nil && !os.IsNotExist(err) {
			d.errors.Add(1)
		}
		d.evictions.Add(1)
	}
}

// Keys returns the fetchable addresses of the indexed entries, for manifest
// export. File names double as addresses: serving-layer keys (lowercase hex
// digests) map through safeName unchanged, and a rehashed name is itself a
// valid address for the same file (safeName is idempotent), so every
// returned key resolves through Get/GetLocal to the entry it names.
func (d *Disk) Keys() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.idx))
	for name := range d.idx {
		out = append(out, strings.TrimSuffix(name, entrySuffix))
	}
	return out
}

// Len returns the number of indexed entries.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lru.Len()
}

// Stats snapshots the tier's counters.
func (d *Disk) Stats() TierStats {
	d.mu.Lock()
	entries, bytes := d.lru.Len(), d.bytes
	d.mu.Unlock()
	return TierStats{
		Name:      "disk",
		Hits:      d.hits.Load(),
		Misses:    d.misses.Load(),
		Evictions: d.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		// Every entry file is exactly header + payload, so the payload
		// volume this uncompressed tier represents is its occupancy minus
		// the per-entry framing.
		LogicalBytes: bytes - int64(entries)*int64(diskHeaderLen),
		Errors:       d.errors.Load(),
	}
}

// EncodeEntry frames a payload with the entry checksum header (magic,
// payload SHA-256, payload length). The disk tier stores entries in this
// frame, and /v1/blob serves them in it, so a peer fetching an entry
// verifies the same integrity envelope a local disk read does.
func EncodeEntry(val []byte) []byte {
	buf := make([]byte, 0, diskHeaderLen+len(val))
	buf = append(buf, diskMagic...)
	sum := sha256.Sum256(val)
	buf = append(buf, sum[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(val)))
	return append(buf, val...)
}

// DecodeEntry verifies an EncodeEntry frame and returns the payload.
func DecodeEntry(raw []byte) ([]byte, error) {
	if len(raw) < diskHeaderLen || string(raw[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("resultstore: bad entry header")
	}
	wantSum := raw[len(diskMagic) : len(diskMagic)+sha256.Size]
	n := binary.BigEndian.Uint64(raw[len(diskMagic)+sha256.Size : diskHeaderLen])
	payload := raw[diskHeaderLen:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("resultstore: entry length %d, header says %d", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(wantSum) {
		return nil, fmt.Errorf("resultstore: entry checksum mismatch")
	}
	return payload, nil
}
