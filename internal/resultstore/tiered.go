package resultstore

import (
	"context"

	"cdcs/internal/resultcache"
)

// Memory adapts internal/resultcache's sharded LRU to the Store interface:
// the single-tier configuration, and the fast tier of Tiered.
type Memory struct {
	c *resultcache.Cache
}

// NewMemory builds a memory-only store holding up to capacity entries.
func NewMemory(capacity int) *Memory {
	return &Memory{c: resultcache.New(capacity)}
}

// Get implements Store.
func (m *Memory) Get(key string) ([]byte, bool) { return m.c.Get(key) }

// GetOrCompute implements Store.
func (m *Memory) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	return m.c.GetOrCompute(ctx, key, compute)
}

// Compute implements Store.
func (m *Memory) Compute(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	return m.c.Compute(ctx, key, compute)
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	st := m.c.Stats()
	return Stats{
		Tiers:     []TierStats{memTier(st)},
		Coalesced: st.Coalesced,
		Inflight:  st.Inflight,
	}
}

// memTier maps the memory cache's counters onto a tier snapshot.
func memTier(st resultcache.Stats) TierStats {
	return TierStats{
		Name:      "memory",
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		Bytes:     st.Bytes,
	}
}

// Tiered composes the memory tier over a disk tier. Lookups try memory
// first; a disk hit is promoted into memory so the working set migrates to
// the fast tier; a full miss computes once and writes through to both
// tiers.
//
// Singleflight spans the tiers: the disk probe and the computation both run
// inside the memory tier's per-key flight, so a thundering herd on one
// address costs at most one disk read and at most one simulation, and every
// caller gets the same bytes.
type Tiered struct {
	mem  *resultcache.Cache
	disk *Disk
}

// NewTiered builds a store with a memory tier of memCapacity entries over
// the given disk tier.
func NewTiered(memCapacity int, disk *Disk) *Tiered {
	return &Tiered{mem: resultcache.New(memCapacity), disk: disk}
}

// Get implements Store: memory first, then disk with promotion.
func (t *Tiered) Get(key string) ([]byte, bool) {
	if v, ok := t.mem.Get(key); ok {
		return v, true
	}
	if v, ok := t.disk.Get(key); ok {
		t.mem.Put(key, v)
		return v, true
	}
	return nil, false
}

// GetOrCompute implements Store.
func (t *Tiered) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	// The counted lookup probes both tiers (and promotes a disk hit), so
	// one logical lookup counts exactly once per tier; the flight's own
	// disk re-probe below is uncounted.
	if v, ok := t.Get(key); ok {
		return v, true, nil
	}
	return t.Compute(ctx, key, compute)
}

// Compute implements Store, for callers whose lookup (a Tiered.Get that
// probed and counted both tiers) already missed. The memory tier's flight
// wraps an uncounted disk probe around the caller's compute — the value
// may have landed on disk between the caller's lookup and the flight — so
// a disk hit short-circuits the computation and lands in memory via the
// flight's normal fill path (promotion), while a real miss computes and
// writes through to disk. Either way the tiered result is a hit whenever
// this caller's compute did not run.
func (t *Tiered) Compute(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	diskServed := false
	val, hit, err := t.mem.Compute(ctx, key, func() ([]byte, error) {
		if v, ok := t.disk.peek(key); ok {
			diskServed = true
			return v, nil
		}
		v, err := compute()
		if err == nil {
			t.disk.Put(key, v)
		}
		return v, err
	})
	return val, hit || diskServed, err
}

// Stats implements Store: memory tier first, then disk.
func (t *Tiered) Stats() Stats {
	mst := t.mem.Stats()
	return Stats{
		Tiers:     []TierStats{memTier(mst), t.disk.Stats()},
		Coalesced: mst.Coalesced,
		Inflight:  mst.Inflight,
	}
}
