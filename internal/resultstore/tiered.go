package resultstore

import (
	"cdcs/internal/resultcache"
)

// MemTier adapts internal/resultcache's sharded LRU to the Tier interface:
// the fast head tier of every chain.
type MemTier struct {
	c *resultcache.Cache
}

// MemoryTier builds a memory tier holding up to capacity entries.
func MemoryTier(capacity int) *MemTier {
	return &MemTier{c: resultcache.New(capacity)}
}

// Name implements Tier.
func (m *MemTier) Name() string { return "memory" }

// Get implements Tier.
func (m *MemTier) Get(key string) ([]byte, bool) { return m.c.Get(key) }

// Peek is Get without the hit/miss counters.
func (m *MemTier) Peek(key string) ([]byte, bool) { return m.c.Peek(key) }

// Put implements Tier.
func (m *MemTier) Put(key string, val []byte) { m.c.Put(key, val) }

// Keys returns the cached content addresses, for manifest export.
func (m *MemTier) Keys() []string { return m.c.Keys() }

// Stats implements Tier.
func (m *MemTier) Stats() TierStats {
	st := m.c.Stats()
	return TierStats{
		Name:      "memory",
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		Bytes:     st.Bytes,
	}
}

// NewMemory builds a memory-only store holding up to capacity entries: a
// single-tier chain.
func NewMemory(capacity int) *TierChain {
	return Chain(MemoryTier(capacity))
}

// NewTiered builds the classic two-tier store — a memory tier of memCapacity
// entries over the given disk tier — as a thin Chain wrapper. Lookups try
// memory first; a disk hit is promoted into memory so the working set
// migrates to the fast tier; a full miss computes once and writes through to
// both tiers.
func NewTiered(memCapacity int, disk *Disk) *TierChain {
	return Chain(MemoryTier(memCapacity), disk)
}
