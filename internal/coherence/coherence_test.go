package coherence

import (
	"math/rand"
	"testing"

	"cdcs/internal/cachesim"
)

func newSys(cores int) *System {
	return NewSystem(cores, 64, func(a cachesim.Addr) int { return int(a) % 4 })
}

func TestStateAndEventStrings(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("state strings wrong")
	}
	if Hit.String() != "hit" || MissMemory.String() != "miss-memory" {
		t.Error("event strings wrong")
	}
}

func TestFirstReadIsExclusive(t *testing.T) {
	s := newSys(4)
	_, ev := s.Read(0, 100)
	if ev != MissMemory {
		t.Errorf("first read event %v", ev)
	}
	if st := s.L2State(0, 100); st != Exclusive {
		t.Errorf("first reader state %v, want E", st)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSecondReaderDowngradesToShared(t *testing.T) {
	s := newSys(4)
	s.Read(0, 100)
	_, ev := s.Read(1, 100)
	if ev != MissForward {
		t.Errorf("second read event %v, want forward", ev)
	}
	if s.L2State(0, 100) != Shared || s.L2State(1, 100) != Shared {
		t.Errorf("states after share: %v / %v", s.L2State(0, 100), s.L2State(1, 100))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSilentEUpgrade(t *testing.T) {
	s := newSys(4)
	s.Read(0, 100) // E
	_, ev := s.Write(0, 100)
	if ev != Hit {
		t.Errorf("E->M upgrade event %v, want hit (silent)", ev)
	}
	if s.L2State(0, 100) != Modified {
		t.Error("not Modified after silent upgrade")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := newSys(4)
	s.Read(0, 100)
	s.Read(1, 100)
	s.Read(2, 100)
	_, ev := s.Write(1, 100)
	if ev != MissUpgrade {
		t.Errorf("upgrade event %v", ev)
	}
	if s.L2State(0, 100) != Invalid || s.L2State(2, 100) != Invalid {
		t.Error("other sharers not invalidated")
	}
	if s.L2State(1, 100) != Modified {
		t.Error("writer not Modified")
	}
	if s.Stats.Invalidations != 2 {
		t.Errorf("invalidations=%d, want 2", s.Stats.Invalidations)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadYourWrites(t *testing.T) {
	s := newSys(4)
	v1, _ := s.Write(0, 50)
	v2, _ := s.Read(0, 50)
	if v1 != v2 {
		t.Errorf("read %d after write %d", v2, v1)
	}
}

func TestReadersSeeLatestWrite(t *testing.T) {
	s := newSys(4)
	s.Write(0, 50)
	s.Write(0, 50)
	vw, _ := s.Write(0, 50)
	vr, ev := s.Read(3, 50)
	if vr != vw {
		t.Errorf("reader saw version %d, writer wrote %d", vr, vw)
	}
	if ev != MissForward {
		t.Errorf("dirty read event %v, want forward", ev)
	}
	// The forward wrote the line back.
	if s.Stats.Writebacks == 0 {
		t.Error("no writeback on dirty forward")
	}
}

func TestWriteAfterRemoteWrite(t *testing.T) {
	s := newSys(4)
	v0, _ := s.Write(0, 50)
	v1, _ := s.Write(1, 50)
	if v1 != v0+1 {
		t.Errorf("second writer version %d, want %d", v1, v0+1)
	}
	if s.L2State(0, 50) != Invalid {
		t.Error("first writer not invalidated")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	s := newSys(2)
	v, _ := s.Write(0, 7)
	s.EvictL2(0, 7)
	if s.L2State(0, 7) != Invalid {
		t.Error("line still present after evict")
	}
	// A later read from memory sees the written version.
	vr, ev := s.Read(1, 7)
	if vr != v {
		t.Errorf("post-eviction read %d, want %d", vr, v)
	}
	if ev != MissMemory {
		t.Errorf("post-eviction read event %v", ev)
	}
}

func TestCapacityEvictionKeepsInvariants(t *testing.T) {
	s := NewSystem(2, 8, func(a cachesim.Addr) int { return 0 })
	for i := 0; i < 100; i++ {
		s.Write(0, cachesim.Addr(i))
	}
	if len(s.priv[0]) > 8 {
		t.Errorf("L2 holds %d lines, capacity 8", len(s.priv[0]))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All evicted versions visible to another core.
	for i := 0; i < 100; i++ {
		if v, _ := s.Read(1, cachesim.Addr(i)); v != 1 {
			t.Fatalf("line %d version %d, want 1", i, v)
		}
	}
}

func TestMoveHomePreservesCoherence(t *testing.T) {
	s := newSys(4)
	s.Write(0, 100) // M at core 0
	s.Read(1, 200)  // E at core 1
	s.Read(2, 300)  // shared later
	s.Read(3, 300)

	for _, addr := range []cachesim.Addr{100, 200, 300} {
		oldHome := s.Home(addr)
		s.MoveHome(addr, (oldHome+2)%4)
		if s.Home(addr) == oldHome {
			t.Errorf("home of %d did not move", addr)
		}
	}
	if s.Stats.HomeMoves != 3 {
		t.Errorf("HomeMoves=%d, want 3", s.Stats.HomeMoves)
	}
	// Private-cache state untouched by the move (§IV-H: only the LLC home
	// changes; coherence state travels with it).
	if s.L2State(0, 100) != Modified {
		t.Error("M state lost across home move")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Consistency across the move: core 3 reads core 0's write.
	v, _ := s.Read(3, 100)
	if v != 1 {
		t.Errorf("post-move read version %d, want 1", v)
	}
}

// TestRandomizedSWMR hammers the protocol with random reads, writes,
// evictions and home moves, checking invariants and version consistency
// throughout — the protocol's property test.
func TestRandomizedSWMR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewSystem(8, 16, func(a cachesim.Addr) int { return int(a) % 8 })
	lastWrite := map[cachesim.Addr]uint64{}
	const addrs = 40
	for op := 0; op < 20000; op++ {
		core := rng.Intn(8)
		addr := cachesim.Addr(rng.Intn(addrs))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // read
			v, _ := s.Read(core, addr)
			if v != lastWrite[addr] {
				t.Fatalf("op %d: read %d saw version %d, want %d", op, addr, v, lastWrite[addr])
			}
		case 5, 6, 7: // write
			v, _ := s.Write(core, addr)
			if v != lastWrite[addr]+1 {
				t.Fatalf("op %d: write %d got version %d, want %d", op, addr, v, lastWrite[addr]+1)
			}
			lastWrite[addr] = v
		case 8: // eviction
			s.EvictL2(core, addr)
		case 9: // reconfiguration move
			s.MoveHome(addr, rng.Intn(8))
		}
		if op%500 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Sanity: all event classes occurred.
	if s.Stats.Hits == 0 || s.Stats.MissesMemory == 0 || s.Stats.MissesForward == 0 ||
		s.Stats.Invalidations == 0 || s.Stats.Writebacks == 0 || s.Stats.HomeMoves == 0 {
		t.Errorf("event coverage incomplete: %+v", s.Stats)
	}
}

func TestNewSystemValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid system accepted")
		}
	}()
	NewSystem(0, 8, func(cachesim.Addr) int { return 0 })
}
