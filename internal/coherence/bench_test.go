package coherence

import (
	"math/rand"
	"testing"

	"cdcs/internal/cachesim"
)

// BenchmarkProtocolMixedOps measures the directory protocol under a mixed
// read/write workload with sharing.
func BenchmarkProtocolMixedOps(b *testing.B) {
	s := NewSystem(8, 64, func(a cachesim.Addr) int { return int(a) % 8 })
	rng := rand.New(rand.NewSource(1))
	ops := make([]struct {
		core  int
		addr  cachesim.Addr
		write bool
	}, 1<<14)
	for i := range ops {
		ops[i].core = rng.Intn(8)
		ops[i].addr = cachesim.Addr(rng.Intn(256))
		ops[i].write = rng.Intn(4) == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i&(1<<14-1)]
		if op.write {
			s.Write(op.core, op.addr)
		} else {
			s.Read(op.core, op.addr)
		}
	}
}
