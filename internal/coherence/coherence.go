// Package coherence models the MESI directory protocol of the modeled CMP
// (Table 2: "MESI, in-cache directory, no silent drops"). Private L2 caches
// hold lines in Modified/Exclusive/Shared state; the LLC keeps an in-cache
// directory tracking sharers and owners. The package exists for two reasons:
// the shared-baseline NUCA design means LLC data itself needs no coherence
// (only the L2 directory state), and §IV-H's demand moves must carry that
// directory state intact when a line's home bank changes — MoveHome models
// exactly that handoff, and the tests verify the single-writer/
// multiple-reader invariant survives arbitrary interleavings of accesses and
// reconfigurations.
//
// Data values are modeled as version counters, so the tests can check not
// just state-machine invariants but actual read-your-writes consistency.
package coherence

import (
	"fmt"

	"cdcs/internal/cachesim"
)

// State is a MESI private-cache state.
type State uint8

const (
	// Invalid: not present.
	Invalid State = iota
	// Shared: clean, possibly multiple readers.
	Shared
	// Exclusive: clean, sole owner (silent upgrade to Modified allowed).
	Exclusive
	// Modified: dirty, sole owner.
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Event classifies the protocol action a request triggered.
type Event int

const (
	// Hit: request satisfied in the local L2.
	Hit Event = iota
	// MissMemory: line fetched from memory.
	MissMemory
	// MissForward: line forwarded from another core's L2.
	MissForward
	// MissUpgrade: write hit a Shared copy and invalidated peers.
	MissUpgrade
)

// String names the event.
func (e Event) String() string {
	switch e {
	case Hit:
		return "hit"
	case MissMemory:
		return "miss-memory"
	case MissForward:
		return "miss-forward"
	case MissUpgrade:
		return "miss-upgrade"
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// privLine is one L2-resident line.
type privLine struct {
	state   State
	version uint64
	lru     uint64
}

// dirEntry is the in-LLC directory state for one line.
type dirEntry struct {
	// sharers[core] true means that core may hold the line.
	sharers map[int]bool
	// owner is the core holding E/M, or -1.
	owner int
	// dirty marks an M owner.
	dirty bool
	// home is the LLC bank currently responsible for the line's directory.
	home int
	// version is the last version written back to the LLC/memory.
	version uint64
}

// Stats counts protocol events.
type Stats struct {
	Hits          int64
	MissesMemory  int64
	MissesForward int64
	Upgrades      int64
	Invalidations int64
	Writebacks    int64
	HomeMoves     int64
}

// System is a directory-coherent multicore: per-core L2s plus an LLC
// directory whose per-line home bank can change (reconfigurations).
type System struct {
	cores   int
	l2Lines int
	home    func(cachesim.Addr) int

	priv  []map[cachesim.Addr]*privLine
	dir   map[cachesim.Addr]*dirEntry
	mem   map[cachesim.Addr]uint64
	clock uint64

	// Stats is exported protocol accounting.
	Stats Stats
}

// NewSystem builds a coherent system with the given core count, per-core L2
// capacity in lines, and home function (line address → LLC bank).
func NewSystem(cores, l2Lines int, home func(cachesim.Addr) int) *System {
	if cores <= 0 || l2Lines <= 0 {
		panic(fmt.Sprintf("coherence: invalid system %d cores, %d lines", cores, l2Lines))
	}
	s := &System{
		cores:   cores,
		l2Lines: l2Lines,
		home:    home,
		priv:    make([]map[cachesim.Addr]*privLine, cores),
		dir:     map[cachesim.Addr]*dirEntry{},
		mem:     map[cachesim.Addr]uint64{},
	}
	for i := range s.priv {
		s.priv[i] = map[cachesim.Addr]*privLine{}
	}
	return s
}

// entry returns (creating if needed) the directory entry for addr.
func (s *System) entry(addr cachesim.Addr) *dirEntry {
	e, ok := s.dir[addr]
	if !ok {
		e = &dirEntry{sharers: map[int]bool{}, owner: -1, home: s.home(addr), version: s.mem[addr]}
		s.dir[addr] = e
	}
	return e
}

// Read performs a load by core, returning the observed version and the
// protocol event.
func (s *System) Read(core int, addr cachesim.Addr) (uint64, Event) {
	s.clock++
	if l, ok := s.priv[core][addr]; ok && l.state != Invalid {
		l.lru = s.clock
		s.Stats.Hits++
		return l.version, Hit
	}
	e := s.entry(addr)
	var version uint64
	var ev Event
	if e.owner >= 0 {
		// Forward from the owner; owner downgrades to Shared, writing back
		// if dirty ("no silent drops").
		owner := s.priv[e.owner][addr]
		version = owner.version
		if e.dirty {
			e.version = owner.version
			s.mem[addr] = owner.version
			s.Stats.Writebacks++
		}
		owner.state = Shared
		e.dirty = false
		e.owner = -1
		s.Stats.MissesForward++
		ev = MissForward
	} else if len(e.sharers) > 0 {
		version = e.version
		s.Stats.MissesForward++
		ev = MissForward
	} else {
		version = s.mem[addr]
		e.version = version
		s.Stats.MissesMemory++
		ev = MissMemory
	}
	state := Shared
	if len(e.sharers) == 0 {
		// Sole reader: Exclusive (MESI's E optimization).
		state = Exclusive
		e.owner = core
	}
	s.install(core, addr, state, version)
	e.sharers[core] = true
	return version, ev
}

// Write performs a store by core, returning the new version and the event.
func (s *System) Write(core int, addr cachesim.Addr) (uint64, Event) {
	s.clock++
	e := s.entry(addr)
	if l, ok := s.priv[core][addr]; ok && l.state != Invalid {
		switch l.state {
		case Modified:
			l.version++
			l.lru = s.clock
			s.Stats.Hits++
			return l.version, Hit
		case Exclusive:
			// Silent upgrade.
			l.state = Modified
			l.version++
			l.lru = s.clock
			e.dirty = true
			s.Stats.Hits++
			return l.version, Hit
		case Shared:
			// Upgrade: invalidate other sharers.
			s.invalidateOthers(e, addr, core)
			l.state = Modified
			l.version = s.latestVersion(e, addr) + 1
			l.lru = s.clock
			e.owner = core
			e.dirty = true
			e.sharers = map[int]bool{core: true}
			s.Stats.Upgrades++
			return l.version, MissUpgrade
		}
	}
	// Write miss: fetch with intent to modify (GETX).
	base := s.latestVersion(e, addr)
	if e.owner >= 0 && e.owner != core {
		if e.dirty {
			s.Stats.Writebacks++
		}
		s.Stats.MissesForward++
	} else {
		s.Stats.MissesMemory++
	}
	s.invalidateOthers(e, addr, core)
	version := base + 1
	s.install(core, addr, Modified, version)
	e.owner = core
	e.dirty = true
	e.sharers = map[int]bool{core: true}
	return version, MissMemory
}

// latestVersion returns the freshest version visible anywhere.
func (s *System) latestVersion(e *dirEntry, addr cachesim.Addr) uint64 {
	v := s.mem[addr]
	if e.version > v {
		v = e.version
	}
	if e.owner >= 0 {
		if l, ok := s.priv[e.owner][addr]; ok && l.version > v {
			v = l.version
		}
	}
	return v
}

// invalidateOthers drops every copy except requester's.
func (s *System) invalidateOthers(e *dirEntry, addr cachesim.Addr, requester int) {
	for c := range e.sharers {
		if c == requester {
			continue
		}
		if l, ok := s.priv[c][addr]; ok {
			if l.state == Modified {
				s.mem[addr] = l.version
				e.version = l.version
				s.Stats.Writebacks++
			}
			delete(s.priv[c], addr)
			s.Stats.Invalidations++
		}
		delete(e.sharers, c)
	}
	if e.owner != requester {
		e.owner = -1
		e.dirty = false
	}
}

// install places a line in a core's L2, evicting LRU past capacity.
func (s *System) install(core int, addr cachesim.Addr, st State, version uint64) {
	s.priv[core][addr] = &privLine{state: st, version: version, lru: s.clock}
	if len(s.priv[core]) <= s.l2Lines {
		return
	}
	// Evict the LRU line (never the one just installed).
	var victim cachesim.Addr
	var oldest uint64 = ^uint64(0)
	for a, l := range s.priv[core] {
		if a != addr && l.lru < oldest {
			oldest = l.lru
			victim = a
		}
	}
	s.EvictL2(core, victim)
}

// EvictL2 removes a line from a core's L2 with writeback (no silent drops:
// the directory is always notified).
func (s *System) EvictL2(core int, addr cachesim.Addr) {
	l, ok := s.priv[core][addr]
	if !ok {
		return
	}
	e := s.entry(addr)
	if l.state == Modified {
		s.mem[addr] = l.version
		e.version = l.version
		s.Stats.Writebacks++
	}
	delete(s.priv[core], addr)
	delete(e.sharers, core)
	if e.owner == core {
		e.owner = -1
		e.dirty = false
	}
}

// MoveHome migrates a line's directory state to a new LLC bank — the §IV-H
// demand move: "B hit, MOVE response with data and coherence, B invalidates
// own copy". Directory contents (sharers, owner, dirtiness, version) travel
// atomically with the line; nothing about the private caches changes.
func (s *System) MoveHome(addr cachesim.Addr, newBank int) {
	e := s.entry(addr)
	if e.home != newBank {
		e.home = newBank
		s.Stats.HomeMoves++
	}
}

// Home returns the line's current directory bank.
func (s *System) Home(addr cachesim.Addr) int {
	return s.entry(addr).home
}

// CheckInvariants verifies the protocol's safety properties and returns the
// first violation: single-writer/multiple-reader, directory/sharer
// agreement, and owner-state consistency.
func (s *System) CheckInvariants() error {
	for addr, e := range s.dir {
		owners := 0
		for c := 0; c < s.cores; c++ {
			l, ok := s.priv[c][addr]
			if !ok {
				if e.sharers[c] {
					return fmt.Errorf("coherence: dir lists core %d for %d but line absent", c, addr)
				}
				continue
			}
			if !e.sharers[c] {
				return fmt.Errorf("coherence: core %d holds %d (%v) unknown to dir", c, addr, l.state)
			}
			switch l.state {
			case Modified, Exclusive:
				owners++
				if e.owner != c {
					return fmt.Errorf("coherence: core %d holds %d in %v but dir owner is %d", c, addr, l.state, e.owner)
				}
				if len(e.sharers) != 1 {
					return fmt.Errorf("coherence: %d owned in %v with %d sharers", addr, l.state, len(e.sharers))
				}
			}
		}
		if owners > 1 {
			return fmt.Errorf("coherence: %d has %d owners", addr, owners)
		}
		if e.dirty && owners == 0 {
			return fmt.Errorf("coherence: %d dirty without owner", addr)
		}
	}
	return nil
}

// L2State returns a core's state for a line (Invalid if absent).
func (s *System) L2State(core int, addr cachesim.Addr) State {
	if l, ok := s.priv[core][addr]; ok {
		return l.state
	}
	return Invalid
}
