// Package perfmodel turns a schedule (thread placement, VC sizes, data
// placement) into performance, traffic and energy numbers. It implements the
// paper's latency accounting — Eq. 1 off-chip latency and Eq. 2 on-chip
// latency — on top of a CPI model with memory-level parallelism, plus an
// M/D/1 queueing model for memory-bandwidth contention (which is what makes
// milc speed up when omnet stops missing, §II-B) and per-event energy
// accounting in the spirit of McPAT (Fig. 11e).
package perfmodel

import (
	"fmt"
	"math"
)

// Params holds the machine constants of the modeled CMP (Table 2).
type Params struct {
	// BankLatency is the LLC bank access latency in cycles.
	BankLatency float64
	// HopLatency is the one-way per-hop NoC latency in cycles (3-cycle
	// router + 1-cycle link).
	HopLatency float64
	// RoundTrip multiplies hop distances (request + response traversal).
	RoundTrip float64
	// MemZeroLoad is the zero-load memory latency in cycles (120).
	MemZeroLoad float64
	// MemBurst is the per-line channel occupancy in cycles (64B at
	// 12.8GB/s and 2GHz ≈ 10 cycles).
	MemBurst float64
	// Channels is the number of memory channels (8).
	Channels int
	// NUMAAware, when set, adds the bank-to-controller network traversal to
	// each miss's latency (the paper's §III notes extending Eq. 1 this way
	// as future work; off by default, matching the paper's uniform-latency
	// interleaved-page model).
	NUMAAware bool

	// Energy constants, picojoules per event.
	CorePJPerInstr  float64
	LLCPJPerAccess  float64
	NetPJPerFlitHop float64
	MemPJPerAccess  float64
	// StaticWatts is chip+DRAM static power; FreqGHz converts time to
	// cycles for the static-energy-per-instruction term.
	StaticWatts float64
	FreqGHz     float64
}

// DefaultParams returns constants for the paper's 64-core CMP at 22nm
// (Table 2 latencies; energies chosen to reproduce the Fig. 11e breakdown
// shape — see DESIGN.md substitutions).
func DefaultParams() Params {
	return Params{
		BankLatency:     9,
		HopLatency:      4,
		RoundTrip:       2,
		MemZeroLoad:     120,
		MemBurst:        10,
		Channels:        8,
		CorePJPerInstr:  65,
		LLCPJPerAccess:  250,
		NetPJPerFlitHop: 17,
		MemPJPerAccess:  22000,
		StaticWatts:     42,
		FreqGHz:         2,
	}
}

// VCAccess is one thread's traffic into one VC under a schedule.
type VCAccess struct {
	// APKI is the thread's LLC accesses per kilo-instruction into this VC.
	APKI float64
	// MissRatio is the VC's effective miss ratio under its allocation.
	MissRatio float64
	// AvgHops is the access-weighted mean one-way hop count from the
	// thread's core to the VC's banks (Eq. 2's D(c_t, b) term).
	AvgHops float64
	// MemHops is the mean one-way hop count from the VC's banks to the
	// memory controllers (LLC-to-memory traffic distance).
	MemHops float64
}

// ThreadInput is everything the model needs about one thread.
type ThreadInput struct {
	// CPIBase is the thread's CPI with a perfect LLC.
	CPIBase float64
	// MLP divides exposed miss latency.
	MLP float64
	// Accesses lists the thread's VC streams.
	Accesses []VCAccess
}

// ThreadResult is the model's per-thread output.
type ThreadResult struct {
	// IPC is instructions per cycle.
	IPC float64
	// OnChipPKI is network latency cycles per kilo-instruction on L2-LLC
	// accesses (Eq. 2, as reported in Fig. 11b: network only, excluding
	// bank access time). OffChipPKI is memory latency per kilo-instruction
	// (Eq. 1).
	OnChipPKI  float64
	OffChipPKI float64
	// MPKI and APKI summarize the thread's LLC behaviour.
	MPKI float64
	APKI float64
}

// Traffic is NoC traffic in flit-hops per instruction, split by class
// (Fig. 11d).
type Traffic struct {
	L2LLC  float64
	LLCMem float64
	Other  float64
}

// Total sums all classes.
func (t Traffic) Total() float64 { return t.L2LLC + t.LLCMem + t.Other }

// Energy is energy per instruction in picojoules, split as in Fig. 11e.
type Energy struct {
	Static float64
	Core   float64
	Net    float64
	LLC    float64
	Mem    float64
}

// Total sums all components.
func (e Energy) Total() float64 { return e.Static + e.Core + e.Net + e.LLC + e.Mem }

// ChipResult is the model's chip-wide output.
type ChipResult struct {
	Threads []ThreadResult
	// MemLatency is the converged effective memory latency (cycles).
	MemLatency float64
	// MemUtilization is channel utilization in [0,1).
	MemUtilization float64
	// AggIPC is the summed IPC of all threads.
	AggIPC float64
	// TrafficPerInstr and EnergyPerInstr are chip-wide per-instruction
	// averages (weighted by each thread's instruction throughput).
	TrafficPerInstr Traffic
	EnergyPerInstr  Energy
}

// flitsPerLine: 64B line over 128-bit flits = 4 data flits + 1 header.
const flitsPerLine = 5

// requestFlits: a request message is a single flit.
const requestFlits = 1

// writebackFraction approximates the fraction of misses that also write back
// a dirty line.
const writebackFraction = 0.35

// Evaluate runs the bandwidth-contention fixed point and returns converged
// per-thread and chip-wide results. It panics on structurally invalid input
// (no threads, bad params); workloads with zero access rates are fine.
func Evaluate(p Params, threads []ThreadInput) ChipResult {
	if len(threads) == 0 {
		panic("perfmodel: no threads")
	}
	validate(p)

	memLat := p.MemZeroLoad + p.MemBurst
	var res ChipResult
	// Fixed point: IPC depends on memory latency; bandwidth demand depends
	// on IPC; memory latency depends on bandwidth demand. Damped iteration
	// converges quickly for all workloads we generate.
	for iter := 0; iter < 60; iter++ {
		res = evaluateAt(p, threads, memLat)
		demand := 0.0 // miss lines per cycle
		for i := range res.Threads {
			demand += res.Threads[i].IPC * res.Threads[i].MPKI / 1000
		}
		// Each miss occupies a channel for MemBurst cycles; dirty evictions
		// add writeback occupancy.
		capacity := float64(p.Channels) / p.MemBurst
		util := demand * (1 + writebackFraction) / capacity
		if util > 0.98 {
			util = 0.98
		}
		// M/D/1 queueing delay on top of zero-load latency.
		queue := p.MemBurst * util / (2 * (1 - util))
		target := p.MemZeroLoad + p.MemBurst + queue
		res.MemLatency = memLat
		res.MemUtilization = util
		if math.Abs(target-memLat) < 0.01 {
			break
		}
		memLat = 0.5*memLat + 0.5*target
	}

	res.addTrafficAndEnergy(p, threads)
	return res
}

// evaluateAt computes per-thread results for a given memory latency.
func evaluateAt(p Params, threads []ThreadInput, memLat float64) ChipResult {
	out := ChipResult{Threads: make([]ThreadResult, len(threads))}
	for i, th := range threads {
		var netPKI, bankPKI, offPKI, mpki, apki float64
		for _, a := range th.Accesses {
			netPKI += a.APKI * a.AvgHops * p.HopLatency * p.RoundTrip
			bankPKI += a.APKI * p.BankLatency
			missPKI := a.APKI * a.MissRatio
			mpki += missPKI
			apki += a.APKI
			lat := memLat
			if p.NUMAAware {
				lat += a.MemHops * p.HopLatency * p.RoundTrip
			}
			offPKI += missPKI * lat
		}
		mlp := th.MLP
		if mlp < 1 {
			mlp = 1
		}
		// The OOO core overlaps both LLC and memory latency up to its MLP;
		// exposed latency is the full Eq. 1 + Eq. 2 sum divided by MLP.
		cpi := th.CPIBase + (netPKI+bankPKI+offPKI)/1000/mlp
		out.Threads[i] = ThreadResult{
			IPC:        1 / cpi,
			OnChipPKI:  netPKI,
			OffChipPKI: offPKI,
			MPKI:       mpki,
			APKI:       apki,
		}
		out.AggIPC += 1 / cpi
	}
	return out
}

// addTrafficAndEnergy fills chip-wide traffic and energy once IPC has
// converged, weighting threads by instruction-throughput share.
func (r *ChipResult) addTrafficAndEnergy(p Params, threads []ThreadInput) {
	if r.AggIPC <= 0 {
		return
	}
	var tr Traffic
	var llcAccessPI, memAccessPI float64
	for i, th := range threads {
		w := r.Threads[i].IPC / r.AggIPC
		for _, a := range th.Accesses {
			accPI := a.APKI / 1000
			missPI := accPI * a.MissRatio
			// L2<->LLC: request flit out, data line back, each over AvgHops.
			tr.L2LLC += w * accPI * a.AvgHops * (requestFlits + flitsPerLine)
			// LLC<->Mem: miss request to the controller, line back, plus
			// writeback traffic at the same distance.
			tr.LLCMem += w * missPI * a.MemHops * (requestFlits + flitsPerLine) * (1 + writebackFraction)
			llcAccessPI += w * accPI
			memAccessPI += w * missPI
		}
	}
	// Control traffic (coherence lookups, invalidations, ACKs).
	tr.Other = 0.08 * (tr.L2LLC + tr.LLCMem)
	r.TrafficPerInstr = tr

	r.EnergyPerInstr = Energy{
		Static: p.StaticWatts * 1e12 / (p.FreqGHz * 1e9) / r.AggIPC,
		Core:   p.CorePJPerInstr,
		Net:    tr.Total() * p.NetPJPerFlitHop,
		LLC:    llcAccessPI * p.LLCPJPerAccess,
		Mem:    memAccessPI * (1 + writebackFraction) * p.MemPJPerAccess,
	}
}

func validate(p Params) {
	if p.Channels <= 0 || p.MemBurst <= 0 || p.FreqGHz <= 0 {
		panic(fmt.Sprintf("perfmodel: invalid params %+v", p))
	}
}
