package perfmodel

import (
	"math"
	"testing"
)

// simpleThread builds a one-VC thread input.
func simpleThread(apki, ratio, hops float64) ThreadInput {
	return ThreadInput{
		CPIBase: 0.8,
		MLP:     1.5,
		Accesses: []VCAccess{
			{APKI: apki, MissRatio: ratio, AvgHops: hops, MemHops: 4},
		},
	}
}

func TestEvaluateHandComputedIPC(t *testing.T) {
	p := DefaultParams()
	// Zero-miss thread: CPI = base + apki/1000×(hops×4×2 + 9)/MLP.
	in := []ThreadInput{simpleThread(20, 0, 2)}
	res := Evaluate(p, in)
	wantCPI := 0.8 + 20.0/1000*(2*4*2+9)/1.5
	if got := 1 / res.Threads[0].IPC; !near(got, wantCPI, 1e-9) {
		t.Errorf("CPI=%g, want %g", got, wantCPI)
	}
	// OnChipPKI reports network cycles only (Fig. 11b), excluding bank time.
	if got := res.Threads[0].OnChipPKI; !near(got, 20*2*4*2, 1e-9) {
		t.Errorf("OnChipPKI=%g, want %g", got, 20.0*2*4*2)
	}
	// No misses: memory stays at zero load.
	if res.MemUtilization > 0.01 {
		t.Errorf("mem utilization %g for hit-only workload", res.MemUtilization)
	}
	if !near(res.MemLatency, p.MemZeroLoad+p.MemBurst, 0.2) {
		t.Errorf("memLat=%g, want zero-load %g", res.MemLatency, p.MemZeroLoad+p.MemBurst)
	}
}

func TestMissLatencyHurtsIPC(t *testing.T) {
	p := DefaultParams()
	hit := Evaluate(p, []ThreadInput{simpleThread(30, 0, 2)})
	miss := Evaluate(p, []ThreadInput{simpleThread(30, 0.9, 2)})
	if miss.Threads[0].IPC >= hit.Threads[0].IPC {
		t.Errorf("missing thread IPC %g >= hitting %g", miss.Threads[0].IPC, hit.Threads[0].IPC)
	}
	// The off-chip PKI should reflect Eq. 1: mpki × memLat.
	want := 30 * 0.9 * miss.MemLatency
	if got := miss.Threads[0].OffChipPKI; !near(got, want, 1) {
		t.Errorf("OffChipPKI=%g, want %g", got, want)
	}
}

func TestDistanceHurtsIPC(t *testing.T) {
	p := DefaultParams()
	near0 := Evaluate(p, []ThreadInput{simpleThread(40, 0.1, 0)})
	far := Evaluate(p, []ThreadInput{simpleThread(40, 0.1, 8)})
	if far.Threads[0].IPC >= near0.Threads[0].IPC {
		t.Error("distant data did not hurt IPC")
	}
	// Eq. 2 delta: 40/1000 × 8hops × 8 cycles = 2.56 extra cycles per
	// kilo-instruction... per instruction 0.00256×1000.
	dOn := far.Threads[0].OnChipPKI - near0.Threads[0].OnChipPKI
	if !near(dOn, 40*8*4*2, 1e-6) {
		t.Errorf("on-chip PKI delta %g, want %g", dOn, 40.0*8*4*2)
	}
}

func TestBandwidthContention(t *testing.T) {
	p := DefaultParams()
	// One streaming thread alone vs with 63 others: queueing should inflate
	// memory latency and depress per-thread IPC.
	single := Evaluate(p, []ThreadInput{simpleThread(30, 1.0, 3)})
	many := make([]ThreadInput, 64)
	for i := range many {
		many[i] = simpleThread(30, 1.0, 3)
	}
	crowd := Evaluate(p, many)
	if crowd.MemLatency <= single.MemLatency {
		t.Errorf("memLat crowd %g <= single %g", crowd.MemLatency, single.MemLatency)
	}
	if crowd.Threads[0].IPC >= single.Threads[0].IPC {
		t.Error("bandwidth contention did not slow threads")
	}
	if crowd.MemUtilization <= single.MemUtilization {
		t.Error("utilization did not grow with demand")
	}
	if crowd.MemUtilization >= 1 {
		t.Error("utilization out of range")
	}
}

func TestBandwidthReliefSpeedsOthers(t *testing.T) {
	// The §II-B milc effect: when a co-runner stops missing, streaming
	// threads speed up. Simulate 32 streaming threads + 32 co-runners that
	// either miss a lot or not at all.
	p := DefaultParams()
	build := func(coRatio float64) []ThreadInput {
		in := make([]ThreadInput, 64)
		for i := 0; i < 32; i++ {
			in[i] = simpleThread(26, 0.97, 3) // milc-like
		}
		for i := 32; i < 64; i++ {
			in[i] = simpleThread(95, coRatio, 3) // omnet-like
		}
		return in
	}
	heavy := Evaluate(p, build(0.9))  // omnet thrashing (S-NUCA-like)
	light := Evaluate(p, build(0.02)) // omnet fitting (CDCS-like)
	if light.Threads[0].IPC <= heavy.Threads[0].IPC {
		t.Errorf("milc IPC did not improve when omnet stopped missing: %g vs %g",
			light.Threads[0].IPC, heavy.Threads[0].IPC)
	}
}

func TestTrafficBreakdown(t *testing.T) {
	p := DefaultParams()
	res := Evaluate(p, []ThreadInput{simpleThread(50, 0.4, 3)})
	tr := res.TrafficPerInstr
	if tr.L2LLC <= 0 || tr.LLCMem <= 0 || tr.Other <= 0 {
		t.Fatalf("traffic breakdown has zero classes: %+v", tr)
	}
	// Hand check L2-LLC: 50/1000 access/instr × 3 hops × 6 flits = 0.9.
	if !near(tr.L2LLC, 0.9, 1e-9) {
		t.Errorf("L2LLC=%g, want 0.9", tr.L2LLC)
	}
	// Zero-distance accesses generate no L2-LLC flit-hops.
	res0 := Evaluate(p, []ThreadInput{simpleThread(50, 0.4, 0)})
	if res0.TrafficPerInstr.L2LLC != 0 {
		t.Errorf("local accesses produced L2LLC traffic %g", res0.TrafficPerInstr.L2LLC)
	}
}

func TestEnergyBreakdown(t *testing.T) {
	p := DefaultParams()
	res := Evaluate(p, []ThreadInput{simpleThread(50, 0.4, 3)})
	e := res.EnergyPerInstr
	for name, v := range map[string]float64{
		"static": e.Static, "core": e.Core, "net": e.Net, "llc": e.LLC, "mem": e.Mem,
	} {
		if v <= 0 {
			t.Errorf("energy component %s is %g", name, v)
		}
	}
	// Faster chip amortizes static energy: compare slow (missy) vs fast.
	fast := Evaluate(p, []ThreadInput{simpleThread(10, 0, 1)})
	if fast.EnergyPerInstr.Static >= res.EnergyPerInstr.Static {
		t.Error("higher IPC did not reduce static energy per instruction")
	}
	// Missier workload spends more memory energy.
	missy := Evaluate(p, []ThreadInput{simpleThread(50, 0.9, 3)})
	if missy.EnergyPerInstr.Mem <= res.EnergyPerInstr.Mem {
		t.Error("more misses did not increase memory energy")
	}
}

func TestMultiVCThread(t *testing.T) {
	p := DefaultParams()
	// Thread with private (local, hitting) and shared (remote, missing) VCs.
	in := ThreadInput{
		CPIBase: 0.8, MLP: 2,
		Accesses: []VCAccess{
			{APKI: 10, MissRatio: 0.05, AvgHops: 0, MemHops: 4},
			{APKI: 5, MissRatio: 0.5, AvgHops: 4, MemHops: 4},
		},
	}
	res := Evaluate(p, []ThreadInput{in})
	if got := res.Threads[0].APKI; !near(got, 15, 1e-9) {
		t.Errorf("APKI=%g, want 15", got)
	}
	if got := res.Threads[0].MPKI; !near(got, 10*0.05+5*0.5, 1e-9) {
		t.Errorf("MPKI=%g", got)
	}
}

func TestMLPReducesExposedMissLatency(t *testing.T) {
	p := DefaultParams()
	lowMLP := ThreadInput{CPIBase: 0.8, MLP: 1, Accesses: []VCAccess{{APKI: 30, MissRatio: 0.9, AvgHops: 3, MemHops: 4}}}
	highMLP := ThreadInput{CPIBase: 0.8, MLP: 4, Accesses: []VCAccess{{APKI: 30, MissRatio: 0.9, AvgHops: 3, MemHops: 4}}}
	r1 := Evaluate(p, []ThreadInput{lowMLP})
	r2 := Evaluate(p, []ThreadInput{highMLP})
	if r2.Threads[0].IPC <= r1.Threads[0].IPC {
		t.Error("MLP did not hide miss latency")
	}
}

func TestEvaluatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty thread list accepted")
		}
	}()
	Evaluate(DefaultParams(), nil)
}

func TestZeroAccessThread(t *testing.T) {
	p := DefaultParams()
	res := Evaluate(p, []ThreadInput{{CPIBase: 0.5, MLP: 1}})
	if got := 1 / res.Threads[0].IPC; !near(got, 0.5, 1e-12) {
		t.Errorf("compute-only thread CPI=%g, want 0.5", got)
	}
}

func TestFixedPointDeterminism(t *testing.T) {
	p := DefaultParams()
	in := make([]ThreadInput, 48)
	for i := range in {
		in[i] = simpleThread(float64(10+i), 0.5, float64(i%8))
	}
	a := Evaluate(p, in)
	b := Evaluate(p, in)
	if a.MemLatency != b.MemLatency || a.AggIPC != b.AggIPC {
		t.Error("evaluation not deterministic")
	}
}

func near(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
