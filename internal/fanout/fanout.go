// Package fanout shards content-addressed work units across HTTP replicas.
//
// Each unit (a "cell" — one JSON POST whose response is fully determined by
// its content address) is assigned to a replica by rendezvous hashing of
// its key: every client ranks the replicas for a key the same way, so
// independent clients route a cell to the same replica and its result cache
// absorbs the repeats. When a replica fails, only the cells it owned move —
// each retries down its own rendezvous ranking onto surviving replicas, the
// same replicas those cells would hash to if the dead one were removed from
// the set. No coordination state exists outside the replicas' caches.
//
// With a fleet view attached (Options.Fleet), routing also reacts to load
// and health: each cell goes to the least-loaded healthy replica among its
// top-K rendezvous holders (cache affinity preserved — the holders don't
// change, only the order among them), breaker-open replicas drop to the
// back of the retry path, and cells whose service latency exceeds
// Options.HotLatency are replicated in the background to a second holder so
// warm copies exist on more than one replica. Routing only ever changes
// *where* a cell is computed, never *what* it returns: responses are a pure
// function of the cell's content address.
package fanout

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"cdcs/internal/fleet"
)

// Cell is one unit of work: Body is POSTed to the chosen replica, and Key
// (the cell's content address) drives replica choice.
type Cell struct {
	Index int
	Key   string
	Body  []byte
}

// Result is one completed cell.
type Result struct {
	Index int
	// Replica is the base URL that served the cell.
	Replica string
	// Attempts is the number of requests issued for this cell (1 = no
	// retry).
	Attempts int
	// Latency is how long the serving request took.
	Latency time.Duration
	// Body is the replica's response body, verbatim.
	Body []byte
}

// ReplicaStats describes one replica's share of a fan-out.
type ReplicaStats struct {
	// Assigned counts cells whose rendezvous ranking put this replica
	// first; Served counts cells whose response this replica produced.
	// They differ when retries or load-aware routing moved work.
	Assigned int `json:"assigned"`
	Served   int `json:"served"`
	// Failed counts requests this replica failed (connection errors and
	// 5xx responses).
	Failed int `json:"failed"`
}

// Stats summarizes a fan-out.
type Stats struct {
	Replicas map[string]ReplicaStats `json:"replicas"`
	// Retried counts cells that were not served by their first-choice
	// replica (the head of their routing order).
	Retried int `json:"retried"`
	// Replicated counts hot cells successfully re-posted to a second
	// rendezvous holder (see Options.HotLatency).
	Replicated int `json:"replicated,omitempty"`
}

// Options tunes Do. The zero value is usable.
type Options struct {
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Path is the request path POSTed on each replica (default
	// "/v1/compare").
	Path string
	// Parallelism caps concurrent in-flight requests (default 4 per
	// replica).
	Parallelism int
	// OnProgress, if set, is called after each completed cell with (done,
	// total).
	OnProgress func(done, total int)
	// Fleet, when non-nil, supplies health-checked, load-aware routing:
	// each cell's rendezvous ranking is reordered by fleet.Order
	// (least-loaded healthy holder among the top-K first, breaker-open
	// replicas last) and every request's outcome feeds the view.
	Fleet *fleet.Fleet
	// HotLatency, with Fleet set, marks a cell hot when its serving
	// request took longer than this. A hot cell is re-POSTed in the
	// background to its next-ranked healthy holder, which warms its cache
	// (from its own compute, or via its peer tier's /v1/blob pull when so
	// configured) so later requests for the cell have a second warm home.
	// 0 disables replication.
	HotLatency time.Duration
	// Members, when non-nil, makes the replica set live: it is consulted
	// when each cell is *dispatched*, so a membership change mid-fan-out
	// re-routes only the cells not yet started — in-flight cells complete
	// on the route they were dispatched with. Rebalancing is incremental
	// by construction: rendezvous ranking moves a key only when the set of
	// its top holders changes (see MovedKeys), so a join or leave touches
	// the joiner's/leaver's share of the keyspace and nothing else. An
	// empty snapshot is ignored (the initial replica list is used) so a
	// transient membership hiccup cannot strand cells with no candidates.
	Members func() []string
}

// deadSet caches per-fan-out death verdicts: once a replica fails a request
// with a retriable error it is skipped by later cells (until a success or a
// recovered breaker clears it), so an N-cell sweep against a dead replica
// pays O(1) dial timeouts instead of O(N).
type deadSet struct {
	mu sync.Mutex
	m  map[string]bool
}

func (d *deadSet) isDead(r string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m[r]
}

func (d *deadSet) mark(r string, dead bool) {
	d.mu.Lock()
	d.m[r] = dead
	d.mu.Unlock()
}

// Do fans cells out across replicas and returns their results ordered by
// cell (results[i] belongs to cells[i]). Each cell is tried on every
// replica in its routing order before the whole fan-out fails; a 4xx
// response fails immediately (the request itself is invalid — no other
// replica will accept it). On error the first failure is returned and
// in-flight work is canceled.
func Do(ctx context.Context, replicas []string, cells []Cell, opts Options) ([]Result, Stats, error) {
	stats := Stats{Replicas: map[string]ReplicaStats{}}
	reps := NormalizeReplicas(replicas)
	if len(reps) == 0 {
		return nil, stats, fmt.Errorf("fanout: no replicas")
	}
	for _, r := range reps {
		stats.Replicas[r] = ReplicaStats{}
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	path := opts.Path
	if path == "" {
		path = "/v1/compare"
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = 4 * len(reps)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}

	// members resolves the replica set a cell is ranked over at dispatch
	// time: the static list, or the live view when Options.Members is set.
	members := func() []string { return reps }
	if opts.Members != nil {
		members = func() []string {
			if m := NormalizeReplicas(opts.Members()); len(m) > 0 {
				return m
			}
			return reps
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex // guards stats, done, firstErr
		done     int
		firstErr error
		wg       sync.WaitGroup
	)
	dead := &deadSet{m: map[string]bool{}}
	results := make([]Result, len(cells))
	next := make(chan int)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// Hot-cell replication rides behind the fan-out: bounded, best-effort
	// background POSTs whose only job is warming a second holder's cache.
	// Do waits for them so callers can observe Replicated deterministically.
	var repWG sync.WaitGroup
	repSem := make(chan struct{}, 2)
	replicate := func(cell Cell, target string) {
		repWG.Add(1)
		go func() {
			defer repWG.Done()
			select {
			case repSem <- struct{}{}:
				defer func() { <-repSem }()
			case <-ctx.Done():
				return
			}
			end := opts.Fleet.Begin(target)
			_, _, err := post(ctx, client, target+path, cell.Body)
			end(err)
			if err == nil {
				mu.Lock()
				stats.Replicated++
				mu.Unlock()
			}
		}()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				cell := cells[i]
				ranked := Rank(members(), cell.Key)
				route := ranked
				if opts.Fleet != nil {
					route = opts.Fleet.Order(ranked)
				}
				mu.Lock()
				rs := stats.Replicas[ranked[0]]
				rs.Assigned++
				stats.Replicas[ranked[0]] = rs
				mu.Unlock()

				res, served, failed, err := tryReplicas(ctx, client, route, path, cell, opts.Fleet, dead)
				mu.Lock()
				for _, r := range failed {
					rs := stats.Replicas[r]
					rs.Failed++
					stats.Replicas[r] = rs
				}
				if err == nil {
					rs := stats.Replicas[served]
					rs.Served++
					stats.Replicas[served] = rs
					if served != route[0] {
						stats.Retried++
					}
					results[i] = res
					done++
					// Invoked under mu so (done, total) reports are
					// monotonic — the callback must not block.
					if opts.OnProgress != nil {
						opts.OnProgress(done, len(cells))
					}
					mu.Unlock()
					if opts.Fleet != nil && opts.HotLatency > 0 && res.Latency > opts.HotLatency {
						if target := opts.Fleet.Alternate(ranked, served); target != "" {
							replicate(cell, target)
						}
					}
					continue
				}
				mu.Unlock()
				fail(err)
				return
			}
		}()
	}

feed:
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	repWG.Wait()

	if firstErr != nil {
		return nil, stats, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// tryReplicas walks a cell's routing order until a replica answers,
// skipping replicas already marked dead this fan-out (unless the fleet
// view says they recovered). If every candidate was skipped on a cached
// verdict, the skipped ones are retried last — verdicts can be stale, and
// exhausting the ranking, not a stale verdict, must be the only way a cell
// fails. Returns the replicas that failed along the way so the caller can
// account them.
func tryReplicas(ctx context.Context, client *http.Client, route []string, path string, cell Cell, fl *fleet.Fleet, dead *deadSet) (res Result, served string, failed []string, err error) {
	var lastErr error
	attempts := 0
	// tryOne issues one request; done reports success, terminal a
	// non-retriable failure.
	tryOne := func(replica string) (ok bool, terminal error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		attempts++
		var end func(error)
		if fl != nil {
			end = fl.Begin(replica)
		}
		start := time.Now()
		body, retriable, perr := post(ctx, client, replica+path, cell.Body)
		if end != nil {
			end(perr)
		}
		if perr == nil {
			dead.mark(replica, false)
			res = Result{Index: cell.Index, Replica: replica, Attempts: attempts, Latency: time.Since(start), Body: body}
			served = replica
			return true, nil
		}
		if !retriable {
			return false, fmt.Errorf("fanout: cell %d on %s: %w", cell.Index, replica, perr)
		}
		dead.mark(replica, true)
		failed = append(failed, replica)
		lastErr = perr
		return false, nil
	}

	var skipped []string
	for _, replica := range route {
		if dead.isDead(replica) && (fl == nil || !fl.Healthy(replica)) {
			skipped = append(skipped, replica)
			continue
		}
		ok, terminal := tryOne(replica)
		if terminal != nil {
			return Result{}, "", failed, terminal
		}
		if ok {
			return res, served, failed, nil
		}
	}
	for _, replica := range skipped {
		ok, terminal := tryOne(replica)
		if terminal != nil {
			return Result{}, "", failed, terminal
		}
		if ok {
			return res, served, failed, nil
		}
	}
	return Result{}, "", failed, fmt.Errorf("fanout: cell %d failed on all %d replicas: %w", cell.Index, len(route), lastErr)
}

// post issues one POST. retriable reports whether another replica might
// succeed where this one failed: true for transport errors and 5xx, false
// for 4xx (the request itself is bad).
func post(ctx context.Context, client *http.Client, url string, body []byte) (respBody []byte, retriable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return b, false, nil
	case resp.StatusCode >= 500:
		return nil, true, fmt.Errorf("%s: %s", resp.Status, trim(b))
	default:
		return nil, false, fmt.Errorf("%s: %s", resp.Status, trim(b))
	}
}

// trim bounds an error body for message embedding.
func trim(b []byte) string {
	s := strings.TrimSpace(string(b))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// NormalizeReplicas trims trailing slashes and drops empties and
// duplicates, preserving first-seen order. Exported so everything that
// names replicas — the sweep fan-out here, the result store's peer tier,
// the fleet view — normalizes identically, which is what keeps their
// rendezvous rankings (Rank) aligned on the same URL strings.
func NormalizeReplicas(replicas []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range replicas {
		r = strings.TrimRight(strings.TrimSpace(r), "/")
		if r == "" || seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	return out
}

// Rank orders replicas for a key by rendezvous (highest-random-weight)
// hashing: every replica is scored by SHA-256(replica NUL key) and sorted
// by descending score. All clients rank identically for a key regardless of
// the order replicas were listed in, and removing one replica only moves
// the keys it owned — everything else keeps its ranking. The full order is
// the retry path: position 0 owns the key, position 1 inherits it if 0 is
// down, and so on.
func Rank(replicas []string, key string) []string {
	type scored struct {
		replica string
		score   uint64
	}
	ss := make([]scored, len(replicas))
	for i, r := range replicas {
		h := sha256.New()
		io.WriteString(h, r)
		h.Write([]byte{0})
		io.WriteString(h, key)
		sum := h.Sum(nil)
		ss[i] = scored{replica: r, score: binary.BigEndian.Uint64(sum[:8])}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].replica < ss[j].replica
	})
	out := make([]string, 0, len(ss))
	for _, s := range ss {
		out = append(out, s.replica)
	}
	return out
}

// TopK returns the first k replicas of a key's rendezvous ranking — the
// key's holder set under top-K routing (k is clamped to the replica count).
func TopK(replicas []string, key string, k int) []string {
	ranked := Rank(replicas, key)
	if k > len(ranked) {
		k = len(ranked)
	}
	if k < 0 {
		k = 0
	}
	return ranked[:k]
}

// MovedKeys returns the keys whose top-k holder *set* differs between two
// replica lists — the cells a membership change actually re-routes. This is
// the incremental-rebalance contract of rendezvous hashing: adding a
// replica moves exactly the keys whose new top-k includes it (each key
// independently with probability k/(n+1) going from n to n+1 replicas), and
// removing one moves exactly the keys whose old top-k contained it — every
// other key keeps its holders, because the relative scores of surviving
// replicas never change.
func MovedKeys(oldReplicas, newReplicas []string, keys []string, k int) []string {
	oldReps := NormalizeReplicas(oldReplicas)
	newReps := NormalizeReplicas(newReplicas)
	var moved []string
	for _, key := range keys {
		if !sameHolders(TopK(oldReps, key, k), TopK(newReps, key, k)) {
			moved = append(moved, key)
		}
	}
	return moved
}

// sameHolders compares two holder slices as sets.
func sameHolders(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[string]bool, len(a))
	for _, r := range a {
		in[r] = true
	}
	for _, r := range b {
		if !in[r] {
			return false
		}
	}
	return true
}
