// Package fanout shards content-addressed work units across HTTP replicas.
//
// Each unit (a "cell" — one JSON POST whose response is fully determined by
// its content address) is assigned to a replica by rendezvous hashing of
// its key: every client ranks the replicas for a key the same way, so
// independent clients route a cell to the same replica and its result cache
// absorbs the repeats. When a replica fails, only the cells it owned move —
// each retries down its own rendezvous ranking onto surviving replicas, the
// same replicas those cells would hash to if the dead one were removed from
// the set. No coordination state exists outside the replicas' caches.
package fanout

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Cell is one unit of work: Body is POSTed to the chosen replica, and Key
// (the cell's content address) drives replica choice.
type Cell struct {
	Index int
	Key   string
	Body  []byte
}

// Result is one completed cell.
type Result struct {
	Index int
	// Replica is the base URL that served the cell.
	Replica string
	// Attempts is the number of requests issued for this cell (1 = no
	// retry).
	Attempts int
	// Body is the replica's response body, verbatim.
	Body []byte
}

// ReplicaStats describes one replica's share of a fan-out.
type ReplicaStats struct {
	// Assigned counts cells whose rendezvous ranking put this replica
	// first; Served counts cells whose response this replica produced.
	// They differ only when retries moved work.
	Assigned int `json:"assigned"`
	Served   int `json:"served"`
	// Failed counts requests this replica failed (connection errors and
	// 5xx responses).
	Failed int `json:"failed"`
}

// Stats summarizes a fan-out.
type Stats struct {
	Replicas map[string]ReplicaStats `json:"replicas"`
	// Retried counts cells that needed more than one attempt.
	Retried int `json:"retried"`
}

// Options tunes Do. The zero value is usable.
type Options struct {
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Path is the request path POSTed on each replica (default
	// "/v1/compare").
	Path string
	// Parallelism caps concurrent in-flight requests (default 4 per
	// replica).
	Parallelism int
	// OnProgress, if set, is called after each completed cell with (done,
	// total).
	OnProgress func(done, total int)
}

// Do fans cells out across replicas and returns their results ordered by
// cell (results[i] belongs to cells[i]). Each cell is tried on every
// replica in its rendezvous order before the whole fan-out fails; a 4xx
// response fails immediately (the request itself is invalid — no other
// replica will accept it). On error the first failure is returned and
// in-flight work is canceled.
func Do(ctx context.Context, replicas []string, cells []Cell, opts Options) ([]Result, Stats, error) {
	stats := Stats{Replicas: map[string]ReplicaStats{}}
	reps := NormalizeReplicas(replicas)
	if len(reps) == 0 {
		return nil, stats, fmt.Errorf("fanout: no replicas")
	}
	for _, r := range reps {
		stats.Replicas[r] = ReplicaStats{}
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	path := opts.Path
	if path == "" {
		path = "/v1/compare"
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = 4 * len(reps)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex // guards stats, done, firstErr
		done     int
		firstErr error
		wg       sync.WaitGroup
	)
	results := make([]Result, len(cells))
	next := make(chan int)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				cell := cells[i]
				ranked := Rank(reps, cell.Key)
				mu.Lock()
				rs := stats.Replicas[ranked[0]]
				rs.Assigned++
				stats.Replicas[ranked[0]] = rs
				mu.Unlock()

				res, served, failed, err := tryReplicas(ctx, client, ranked, path, cell)
				mu.Lock()
				for _, r := range failed {
					rs := stats.Replicas[r]
					rs.Failed++
					stats.Replicas[r] = rs
				}
				if err == nil {
					rs := stats.Replicas[served]
					rs.Served++
					stats.Replicas[served] = rs
					if res.Attempts > 1 {
						stats.Retried++
					}
					results[i] = res
					done++
					// Invoked under mu so (done, total) reports are
					// monotonic — the callback must not block.
					if opts.OnProgress != nil {
						opts.OnProgress(done, len(cells))
					}
					mu.Unlock()
					continue
				}
				mu.Unlock()
				fail(err)
				return
			}
		}()
	}

feed:
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return nil, stats, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// tryReplicas walks a cell's rendezvous ranking until a replica answers.
// It returns the replicas that failed along the way so the caller can
// account them.
func tryReplicas(ctx context.Context, client *http.Client, ranked []string, path string, cell Cell) (res Result, served string, failed []string, err error) {
	var lastErr error
	for attempt, replica := range ranked {
		if err := ctx.Err(); err != nil {
			return Result{}, "", failed, err
		}
		body, retriable, err := post(ctx, client, replica+path, cell.Body)
		if err == nil {
			return Result{Index: cell.Index, Replica: replica, Attempts: attempt + 1, Body: body}, replica, failed, nil
		}
		if !retriable {
			return Result{}, "", failed, fmt.Errorf("fanout: cell %d on %s: %w", cell.Index, replica, err)
		}
		failed = append(failed, replica)
		lastErr = err
	}
	return Result{}, "", failed, fmt.Errorf("fanout: cell %d failed on all %d replicas: %w", cell.Index, len(ranked), lastErr)
}

// post issues one POST. retriable reports whether another replica might
// succeed where this one failed: true for transport errors and 5xx, false
// for 4xx (the request itself is bad).
func post(ctx context.Context, client *http.Client, url string, body []byte) (respBody []byte, retriable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return b, false, nil
	case resp.StatusCode >= 500:
		return nil, true, fmt.Errorf("%s: %s", resp.Status, trim(b))
	default:
		return nil, false, fmt.Errorf("%s: %s", resp.Status, trim(b))
	}
}

// trim bounds an error body for message embedding.
func trim(b []byte) string {
	s := strings.TrimSpace(string(b))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// NormalizeReplicas trims trailing slashes and drops empties and
// duplicates, preserving first-seen order. Exported so everything that
// names replicas — the sweep fan-out here, the result store's peer tier —
// normalizes identically, which is what keeps their rendezvous rankings
// (Rank) aligned on the same URL strings.
func NormalizeReplicas(replicas []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range replicas {
		r = strings.TrimRight(strings.TrimSpace(r), "/")
		if r == "" || seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	return out
}

// Rank orders replicas for a key by rendezvous (highest-random-weight)
// hashing: every replica is scored by SHA-256(replica NUL key) and sorted
// by descending score. All clients rank identically for a key regardless of
// the order replicas were listed in, and removing one replica only moves
// the keys it owned — everything else keeps its ranking. The full order is
// the retry path: position 0 owns the key, position 1 inherits it if 0 is
// down, and so on.
func Rank(replicas []string, key string) []string {
	type scored struct {
		replica string
		score   uint64
	}
	ss := make([]scored, len(replicas))
	for i, r := range replicas {
		h := sha256.New()
		io.WriteString(h, r)
		h.Write([]byte{0})
		io.WriteString(h, key)
		sum := h.Sum(nil)
		ss[i] = scored{replica: r, score: binary.BigEndian.Uint64(sum[:8])}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].replica < ss[j].replica
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.replica
	}
	return out
}
