package fanout

import (
	"fmt"
	"testing"
)

// rebalanceKeys is a deterministic synthetic keyspace, large enough for the
// closed-form move fractions to hold tightly.
func rebalanceKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell-%04d", i)
	}
	return keys
}

func TestTopKClamps(t *testing.T) {
	reps := []string{"http://a:1", "http://b:2", "http://c:3"}
	if got := TopK(reps, "k", 5); len(got) != 3 {
		t.Errorf("TopK over-asks: %v", got)
	}
	if got := TopK(reps, "k", 0); len(got) != 0 {
		t.Errorf("TopK(0) = %v", got)
	}
	if got := TopK(reps, "k", 2); len(got) != 2 || got[0] != Rank(reps, "k")[0] {
		t.Errorf("TopK(2) = %v, want the rank prefix", got)
	}
}

// TestRebalanceIsIncremental pins the tentpole routing invariant: a
// membership change re-routes exactly the keys whose top-K holder set
// changed — adding a replica moves a key iff the newcomer entered its new
// top-K, removing one moves a key iff the leaver was in its old top-K, and
// every other key keeps its holders untouched. The moved fraction matches
// the closed forms K/(N+1) on add and K/N on remove.
func TestRebalanceIsIncremental(t *testing.T) {
	const (
		k = 2
		n = 4 // replicas before the join
	)
	keys := rebalanceKeys(2000)
	old := make([]string, n)
	for i := range old {
		old[i] = fmt.Sprintf("http://r%d:8080", i)
	}
	joined := "http://joined:8080"
	grown := append(append([]string(nil), old...), joined)

	contains := func(list []string, url string) bool {
		for _, u := range list {
			if u == url {
				return true
			}
		}
		return false
	}

	// Join: MovedKeys must equal, key for key, the set whose new top-K
	// includes the newcomer — no other key may move.
	moved := MovedKeys(old, grown, keys, k)
	movedSet := map[string]bool{}
	for _, key := range moved {
		movedSet[key] = true
	}
	for _, key := range keys {
		wantMoved := contains(TopK(grown, key, k), joined)
		if movedSet[key] != wantMoved {
			t.Fatalf("join: key %s moved=%v, want %v (newcomer in new top-%d: %v)",
				key, movedSet[key], wantMoved, k, TopK(grown, key, k))
		}
		if !wantMoved {
			// An unmoved key's holders are identical, not merely
			// set-equal-by-accident.
			o, g := TopK(old, key, k), TopK(grown, key, k)
			for i := range o {
				if o[i] != g[i] {
					t.Fatalf("join: unmoved key %s changed holders %v -> %v", key, o, g)
				}
			}
		}
	}
	// Closed form: each key's new top-K is a uniform K-subset of N+1
	// replicas, so the newcomer appears with probability K/(N+1).
	want := float64(k) / float64(n+1) * float64(len(keys))
	if got := float64(len(moved)); got < 0.8*want || got > 1.2*want {
		t.Errorf("join moved %d keys, want ~%.0f (K/(N+1) of %d)", len(moved), want, len(keys))
	}

	// Leave (the join reversed): a key moves iff the leaver held it.
	movedBack := MovedKeys(grown, old, keys, k)
	if len(movedBack) != len(moved) {
		t.Errorf("remove moved %d keys, join moved %d — they must mirror", len(movedBack), len(moved))
	}
	for _, key := range movedBack {
		if !contains(TopK(grown, key, k), joined) {
			t.Fatalf("remove: key %s moved but the leaver was not a holder", key)
		}
	}

	// No change, no movement.
	if m := MovedKeys(old, old, keys, k); len(m) != 0 {
		t.Errorf("identical member lists moved %d keys", len(m))
	}
}
