package fanout

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// echoReplica serves /v1/compare by echoing "<name>:<body>" so tests can
// see which replica produced which result.
func echoReplica(t *testing.T, name string, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "%s:%s", name, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// makeCells builds n cells with hex-ish keys.
func makeCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{Index: i, Key: fmt.Sprintf("%064x", i*2654435761), Body: []byte(fmt.Sprintf("c%d", i))}
	}
	return cells
}

func TestRankDeterministicAndOrderInvariant(t *testing.T) {
	reps := []string{"http://a", "http://b", "http://c"}
	shuffled := []string{"http://c", "http://a", "http://b"}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%064x", i)
		r1 := Rank(reps, key)
		r2 := Rank(shuffled, key)
		if strings.Join(r1, ",") != strings.Join(r2, ",") {
			t.Fatalf("key %s: ranking depends on listing order: %v vs %v", key, r1, r2)
		}
		if len(r1) != 3 {
			t.Fatalf("ranking lost replicas: %v", r1)
		}
	}
}

func TestRankRemovalOnlyMovesOwnedKeys(t *testing.T) {
	reps := []string{"http://a", "http://b", "http://c"}
	survivors := []string{"http://a", "http://c"}
	moved, kept := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i*31)
		before := Rank(reps, key)[0]
		after := Rank(survivors, key)[0]
		if before == "http://b" {
			moved++
			continue // owned by the removed replica; may land anywhere
		}
		if before != after {
			t.Fatalf("key %s moved from %s to %s although its owner survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestDoSpreadsCellsAcrossReplicas(t *testing.T) {
	a := echoReplica(t, "a", nil)
	b := echoReplica(t, "b", nil)
	cells := makeCells(64)
	results, stats, err := Do(context.Background(), []string{a.URL, b.URL}, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 64 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d (order must be deterministic)", i, r.Index)
		}
		wantSuffix := fmt.Sprintf(":c%d", i)
		if !strings.HasSuffix(string(r.Body), wantSuffix) {
			t.Errorf("result %d body %q does not end with %q", i, r.Body, wantSuffix)
		}
	}
	sa, sb := stats.Replicas[a.URL], stats.Replicas[b.URL]
	if sa.Served+sb.Served != 64 {
		t.Errorf("served %d+%d != 64", sa.Served, sb.Served)
	}
	// Rendezvous hashing balances within loose bounds.
	if sa.Served < 16 || sb.Served < 16 {
		t.Errorf("unbalanced assignment: a=%d b=%d", sa.Served, sb.Served)
	}
	if stats.Retried != 0 {
		t.Errorf("retried = %d with all replicas up", stats.Retried)
	}
}

func TestDoRetriesOnSurvivingReplica(t *testing.T) {
	var aHits atomic.Int64
	a := echoReplica(t, "a", &aHits)
	b := echoReplica(t, "b", nil)
	dead := b.URL
	b.Close() // connection refused: the classic dead replica

	cells := makeCells(32)
	results, stats, err := Do(context.Background(), []string{a.URL, dead}, cells, Options{})
	if err != nil {
		t.Fatalf("fan-out with one dead replica failed: %v", err)
	}
	for i, r := range results {
		if r.Replica != a.URL {
			t.Errorf("cell %d served by %s, want the survivor", i, r.Replica)
		}
	}
	if got := stats.Replicas[a.URL].Served; got != 32 {
		t.Errorf("survivor served %d, want 32", got)
	}
	if stats.Replicas[dead].Failed == 0 {
		t.Error("dead replica's failures not counted")
	}
	if stats.Retried == 0 {
		t.Error("no cells recorded as retried although some were owned by the dead replica")
	}
	if int(aHits.Load()) != 32 {
		t.Errorf("survivor received %d requests, want 32", aHits.Load())
	}
}

func TestDoAllReplicasDownFails(t *testing.T) {
	a := echoReplica(t, "a", nil)
	b := echoReplica(t, "b", nil)
	ua, ub := a.URL, b.URL
	a.Close()
	b.Close()
	_, _, err := Do(context.Background(), []string{ua, ub}, makeCells(4), Options{})
	if err == nil || !strings.Contains(err.Error(), "all 2 replicas") {
		t.Fatalf("err = %v, want all-replicas failure", err)
	}
}

func TestDo4xxIsNotRetried(t *testing.T) {
	var aHits, bHits atomic.Int64
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aHits.Add(1)
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer reject.Close()
	ok := echoReplica(t, "b", &bHits)

	// One cell, so the rejecting replica is deterministically ranked for it
	// in at least one of the two orders; try keys until it owns one.
	var cell Cell
	for i := 0; ; i++ {
		cell = Cell{Index: 0, Key: fmt.Sprintf("%064x", i), Body: []byte("x")}
		if Rank([]string{reject.URL, ok.URL}, cell.Key)[0] == reject.URL {
			break
		}
	}
	_, _, err := Do(context.Background(), []string{reject.URL, ok.URL}, []Cell{cell}, Options{})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("err = %v, want 400 failure", err)
	}
	if bHits.Load() != 0 {
		t.Error("4xx was retried on another replica")
	}
}

func TestDo5xxFailsOverThenErrorsWhenExhausted(t *testing.T) {
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer flaky.Close()
	ok := echoReplica(t, "b", nil)

	results, stats, err := Do(context.Background(), []string{flaky.URL, ok.URL}, makeCells(8), Options{})
	if err != nil {
		t.Fatalf("5xx should fail over: %v", err)
	}
	for _, r := range results {
		if r.Replica != ok.URL {
			t.Errorf("cell %d served by the 503 replica", r.Index)
		}
	}
	if stats.Replicas[flaky.URL].Served != 0 {
		t.Error("503 replica credited with served cells")
	}

	// Alone, the 5xx replica exhausts the ranking.
	_, _, err = Do(context.Background(), []string{flaky.URL}, makeCells(2), Options{})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("err = %v, want 503 failure", err)
	}
}

func TestDoProgressAndCancellation(t *testing.T) {
	var calls atomic.Int64
	a := echoReplica(t, "a", nil)
	_, _, err := Do(context.Background(), []string{a.URL}, makeCells(10), Options{
		OnProgress: func(done, total int) {
			calls.Add(1)
			if total != 10 {
				t.Errorf("total = %d", total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 10 {
		t.Errorf("progress called %d times, want 10", calls.Load())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = Do(ctx, []string{a.URL}, makeCells(10), Options{})
	if err == nil {
		t.Fatal("canceled fan-out returned nil error")
	}
}

func TestNormalizeReplicas(t *testing.T) {
	got := NormalizeReplicas([]string{" http://a/ ", "", "http://a", "http://b"})
	if strings.Join(got, ",") != "http://a,http://b" {
		t.Fatalf("normalize = %v", got)
	}
}
