package fanout

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cdcs/internal/fleet"
	"cdcs/internal/testutil"
)

// echoReplica serves /v1/compare by echoing "<name>:<body>" so tests can
// see which replica produced which result.
func echoReplica(t *testing.T, name string, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "%s:%s", name, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// makeCells builds n cells with hex-ish keys.
func makeCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{Index: i, Key: fmt.Sprintf("%064x", i*2654435761), Body: []byte(fmt.Sprintf("c%d", i))}
	}
	return cells
}

func TestRankDeterministicAndOrderInvariant(t *testing.T) {
	reps := []string{"http://a", "http://b", "http://c"}
	shuffled := []string{"http://c", "http://a", "http://b"}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%064x", i)
		r1 := Rank(reps, key)
		r2 := Rank(shuffled, key)
		if strings.Join(r1, ",") != strings.Join(r2, ",") {
			t.Fatalf("key %s: ranking depends on listing order: %v vs %v", key, r1, r2)
		}
		if len(r1) != 3 {
			t.Fatalf("ranking lost replicas: %v", r1)
		}
	}
}

func TestRankRemovalOnlyMovesOwnedKeys(t *testing.T) {
	reps := []string{"http://a", "http://b", "http://c"}
	survivors := []string{"http://a", "http://c"}
	moved, kept := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i*31)
		before := Rank(reps, key)[0]
		after := Rank(survivors, key)[0]
		if before == "http://b" {
			moved++
			continue // owned by the removed replica; may land anywhere
		}
		if before != after {
			t.Fatalf("key %s moved from %s to %s although its owner survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestDoSpreadsCellsAcrossReplicas(t *testing.T) {
	a := echoReplica(t, "a", nil)
	b := echoReplica(t, "b", nil)
	cells := makeCells(64)
	results, stats, err := Do(context.Background(), []string{a.URL, b.URL}, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 64 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d (order must be deterministic)", i, r.Index)
		}
		wantSuffix := fmt.Sprintf(":c%d", i)
		if !strings.HasSuffix(string(r.Body), wantSuffix) {
			t.Errorf("result %d body %q does not end with %q", i, r.Body, wantSuffix)
		}
	}
	sa, sb := stats.Replicas[a.URL], stats.Replicas[b.URL]
	if sa.Served+sb.Served != 64 {
		t.Errorf("served %d+%d != 64", sa.Served, sb.Served)
	}
	// Rendezvous hashing balances within loose bounds.
	if sa.Served < 16 || sb.Served < 16 {
		t.Errorf("unbalanced assignment: a=%d b=%d", sa.Served, sb.Served)
	}
	if stats.Retried != 0 {
		t.Errorf("retried = %d with all replicas up", stats.Retried)
	}
}

func TestDoRetriesOnSurvivingReplica(t *testing.T) {
	var aHits atomic.Int64
	a := echoReplica(t, "a", &aHits)
	b := echoReplica(t, "b", nil)
	dead := b.URL
	b.Close() // connection refused: the classic dead replica

	cells := makeCells(32)
	results, stats, err := Do(context.Background(), []string{a.URL, dead}, cells, Options{})
	if err != nil {
		t.Fatalf("fan-out with one dead replica failed: %v", err)
	}
	for i, r := range results {
		if r.Replica != a.URL {
			t.Errorf("cell %d served by %s, want the survivor", i, r.Replica)
		}
	}
	if got := stats.Replicas[a.URL].Served; got != 32 {
		t.Errorf("survivor served %d, want 32", got)
	}
	if stats.Replicas[dead].Failed == 0 {
		t.Error("dead replica's failures not counted")
	}
	if stats.Retried == 0 {
		t.Error("no cells recorded as retried although some were owned by the dead replica")
	}
	if int(aHits.Load()) != 32 {
		t.Errorf("survivor received %d requests, want 32", aHits.Load())
	}
}

func TestDoAllReplicasDownFails(t *testing.T) {
	a := echoReplica(t, "a", nil)
	b := echoReplica(t, "b", nil)
	ua, ub := a.URL, b.URL
	a.Close()
	b.Close()
	_, _, err := Do(context.Background(), []string{ua, ub}, makeCells(4), Options{})
	if err == nil || !strings.Contains(err.Error(), "all 2 replicas") {
		t.Fatalf("err = %v, want all-replicas failure", err)
	}
}

func TestDo4xxIsNotRetried(t *testing.T) {
	var aHits, bHits atomic.Int64
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aHits.Add(1)
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer reject.Close()
	ok := echoReplica(t, "b", &bHits)

	// One cell, so the rejecting replica is deterministically ranked for it
	// in at least one of the two orders; try keys until it owns one.
	var cell Cell
	for i := 0; ; i++ {
		cell = Cell{Index: 0, Key: fmt.Sprintf("%064x", i), Body: []byte("x")}
		if Rank([]string{reject.URL, ok.URL}, cell.Key)[0] == reject.URL {
			break
		}
	}
	_, _, err := Do(context.Background(), []string{reject.URL, ok.URL}, []Cell{cell}, Options{})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("err = %v, want 400 failure", err)
	}
	if bHits.Load() != 0 {
		t.Error("4xx was retried on another replica")
	}
}

func TestDo5xxFailsOverThenErrorsWhenExhausted(t *testing.T) {
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer flaky.Close()
	ok := echoReplica(t, "b", nil)

	results, stats, err := Do(context.Background(), []string{flaky.URL, ok.URL}, makeCells(8), Options{})
	if err != nil {
		t.Fatalf("5xx should fail over: %v", err)
	}
	for _, r := range results {
		if r.Replica != ok.URL {
			t.Errorf("cell %d served by the 503 replica", r.Index)
		}
	}
	if stats.Replicas[flaky.URL].Served != 0 {
		t.Error("503 replica credited with served cells")
	}

	// Alone, the 5xx replica exhausts the ranking.
	_, _, err = Do(context.Background(), []string{flaky.URL}, makeCells(2), Options{})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("err = %v, want 503 failure", err)
	}
}

func TestDoProgressAndCancellation(t *testing.T) {
	var calls atomic.Int64
	a := echoReplica(t, "a", nil)
	_, _, err := Do(context.Background(), []string{a.URL}, makeCells(10), Options{
		OnProgress: func(done, total int) {
			calls.Add(1)
			if total != 10 {
				t.Errorf("total = %d", total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 10 {
		t.Errorf("progress called %d times, want 10", calls.Load())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = Do(ctx, []string{a.URL}, makeCells(10), Options{})
	if err == nil {
		t.Fatal("canceled fan-out returned nil error")
	}
}

func TestNormalizeReplicas(t *testing.T) {
	got := NormalizeReplicas([]string{" http://a/ ", "", "http://a", "http://b"})
	if strings.Join(got, ",") != "http://a,http://b" {
		t.Fatalf("normalize = %v", got)
	}
}

// TestDoCachesDeathVerdictPerFanOut is the regression test for the O(N)
// dial-timeout bug: before the per-fan-out dead set, every cell ranked to a
// dead replica paid its own connection attempt. Now the first failure marks
// the replica dead for the rest of the fan-out, so an N-cell sweep against
// a dead replica touches it O(1) times, not O(N).
func TestDoCachesDeathVerdictPerFanOut(t *testing.T) {
	alive := echoReplica(t, "a", nil)
	backend := echoReplica(t, "b", nil)
	proxy, err := testutil.NewFaultProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	proxy.Kill()

	// Parallelism 1 serializes the cells, so after the first verdict no
	// concurrent cell can be mid-flight toward the dead replica.
	cells := makeCells(24)
	results, stats, err := Do(context.Background(), []string{alive.URL, proxy.URL()}, cells, Options{
		Parallelism: 1,
	})
	if err != nil {
		t.Fatalf("fan-out with one dead replica failed: %v", err)
	}
	if len(results) != len(cells) {
		t.Fatalf("%d results, want %d", len(results), len(cells))
	}
	if got := proxy.DeadRequests(); got != 1 {
		t.Errorf("dead replica touched %d times for %d cells, want exactly 1", got, len(cells))
	}
	if got := stats.Replicas[alive.URL].Served; got != len(cells) {
		t.Errorf("survivor served %d, want %d", got, len(cells))
	}
}

// TestDoFleetRevivalClearsDeadVerdict: a dead verdict must not outlive the
// replica's recovery when a fleet view is watching — Healthy overrides the
// cached verdict, so a revived replica regains traffic within the same
// fan-out. (Without a fleet, the verdict correctly lasts the fan-out.)
func TestDoFleetRevivalClearsDeadVerdict(t *testing.T) {
	backend := echoReplica(t, "b", nil)
	proxy, err := testutil.NewFaultProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	alive := echoReplica(t, "a", nil)

	// No prober; breaker threshold 1 so the single failure opens it, and a
	// short cooldown lets Healthy turn true again mid-fan-out.
	fl := fleet.New([]string{alive.URL, proxy.URL()}, fleet.Options{
		ProbeInterval:    -1,
		BreakerThreshold: 1,
		BreakerCooldown:  50 * time.Millisecond,
	})
	defer fl.Close()

	proxy.Kill()
	cells := makeCells(12)
	var revived atomic.Bool
	_, _, err = Do(context.Background(), []string{alive.URL, proxy.URL()}, cells, Options{
		Parallelism: 1,
		Fleet:       fl,
		OnProgress: func(done, total int) {
			if done == 2 && !revived.Load() {
				proxy.Revive()
				revived.Store(true)
			}
		},
	})
	if err != nil {
		t.Fatalf("fan-out across a revival failed: %v", err)
	}
	// After revival + cooldown the proxy must see real traffic again:
	// served requests beyond the initial death touch.
	deadline := time.Now().Add(2 * time.Second)
	for proxy.Requests() <= proxy.DeadRequests() {
		if time.Now().After(deadline) {
			t.Fatalf("revived replica never served traffic: %d requests, %d while dead",
				proxy.Requests(), proxy.DeadRequests())
		}
		// A second fan-out after the cooldown must reach it.
		time.Sleep(60 * time.Millisecond)
		if _, _, err := Do(context.Background(), []string{alive.URL, proxy.URL()}, makeCells(12), Options{
			Parallelism: 1,
			Fleet:       fl,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDoFleetSteersLoadOffSlowReplica: with a fleet view, a slow-but-alive
// replica sheds load to the other top-K holder — fewer served cells, no
// failures, and every response still correct.
func TestDoFleetSteersLoadOffSlowReplica(t *testing.T) {
	fast := echoReplica(t, "fast", nil)
	slowBackend := echoReplica(t, "slow", nil)
	proxy, err := testutil.NewFaultProxy(slowBackend.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	proxy.SetLatency(40 * time.Millisecond)

	reps := []string{fast.URL, proxy.URL()}
	fl := fleet.New(reps, fleet.Options{ProbeInterval: -1, TopK: 2})
	defer fl.Close()

	cells := makeCells(48)
	results, stats, err := Do(context.Background(), reps, cells, Options{
		Parallelism: 2,
		Fleet:       fl,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !strings.HasSuffix(string(r.Body), fmt.Sprintf(":c%d", i)) {
			t.Errorf("cell %d body %q corrupted by steering", i, r.Body)
		}
	}
	sSlow, sFast := stats.Replicas[proxy.URL()], stats.Replicas[fast.URL]
	if sSlow.Failed != 0 || sFast.Failed != 0 {
		t.Errorf("steering produced failures: slow=%d fast=%d", sSlow.Failed, sFast.Failed)
	}
	if sSlow.Served+sFast.Served != len(cells) {
		t.Fatalf("served %d+%d != %d", sSlow.Served, sFast.Served, len(cells))
	}
	// The whole point: the slow replica's share drops below the fast one's
	// (rendezvous alone would split roughly evenly).
	if sSlow.Served >= sFast.Served {
		t.Errorf("slow replica served %d ≥ fast's %d; load was not steered", sSlow.Served, sFast.Served)
	}
}

// TestDoHotCellReplication: with HotLatency below every service time, each
// cell is hot and gets re-POSTed to its alternate holder, so both replicas
// end up warm for every key.
func TestDoHotCellReplication(t *testing.T) {
	var aHits, bHits atomic.Int64
	a := echoReplica(t, "a", &aHits)
	b := echoReplica(t, "b", &bHits)
	reps := []string{a.URL, b.URL}
	fl := fleet.New(reps, fleet.Options{ProbeInterval: -1, TopK: 2})
	defer fl.Close()

	cells := makeCells(16)
	_, stats, err := Do(context.Background(), reps, cells, Options{
		Fleet:      fl,
		HotLatency: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replicated != len(cells) {
		t.Errorf("Replicated = %d, want %d (every cell hot, alternate always available)",
			stats.Replicated, len(cells))
	}
	// Serving plus replication touches both replicas once per cell.
	if total := aHits.Load() + bHits.Load(); total != int64(2*len(cells)) {
		t.Errorf("total requests = %d, want %d", total, 2*len(cells))
	}

	// Without a fleet (or with HotLatency 0) nothing replicates.
	_, stats, err = Do(context.Background(), reps, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replicated != 0 {
		t.Errorf("Replicated = %d without HotLatency, want 0", stats.Replicated)
	}
}
