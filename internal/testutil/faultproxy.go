// Package testutil holds test scaffolding shared across packages. Its
// centerpiece is FaultProxy, the fault-injection harness the fleet, fan-out
// and serving tests use to make a healthy in-process replica misbehave on
// command: added latency, error bursts, hangs, and hard death/revival — all
// toggleable mid-test, so chaos scenarios (a replica flapping in the middle
// of a sweep) are ordinary table stakes instead of sleep-and-hope scripts.
//
// The package is plain library code (not _test files) so any package's
// tests can import it; nothing in it is built into the shipped binaries.
package testutil

import (
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// FaultProxy is an httptest-backed reverse proxy in front of a real
// backend. Its own URL is stable across Kill/Revive — exactly like a
// replica that crashes and restarts on the same address — which is what
// lets tests exercise death and rejoin against rendezvous rankings that
// hash the URL.
//
// Faults compose: a revived proxy with added latency is a slow-but-alive
// replica; FailNext turns it into an error burst. All knobs are safe for
// concurrent use and take effect on the next request.
type FaultProxy struct {
	srv   *httptest.Server
	proxy *httputil.ReverseProxy

	mu       sync.Mutex
	dead     bool
	latency  time.Duration
	hang     time.Duration
	failNext int

	requests     atomic.Int64 // all requests received, faulted or not
	deadRequests atomic.Int64 // requests received while dead
}

// NewFaultProxy starts a proxy in front of backendURL (e.g. an
// httptest.Server's URL). Close it with Close; tests usually defer that.
func NewFaultProxy(backendURL string) (*FaultProxy, error) {
	target, err := url.Parse(backendURL)
	if err != nil {
		return nil, err
	}
	p := &FaultProxy{proxy: httputil.NewSingleHostReverseProxy(target)}
	// A killed proxy hijacks and drops the connection mid-request, which
	// surfaces to the client as a transport error (EOF / connection reset)
	// — the same failure class as a truly dead process, without losing the
	// listening address needed for revival.
	p.proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		w.WriteHeader(http.StatusBadGateway)
	}
	p.srv = httptest.NewServer(http.HandlerFunc(p.handle))
	return p, nil
}

// URL returns the proxy's base URL — the address tests hand to clients in
// place of the backend's.
func (p *FaultProxy) URL() string { return p.srv.URL }

// Close shuts the proxy down for good (Revive cannot bring it back).
func (p *FaultProxy) Close() { p.srv.Close() }

// Requests returns how many requests the proxy has received, including
// ones that were faulted.
func (p *FaultProxy) Requests() int64 { return p.requests.Load() }

// DeadRequests returns how many requests arrived while the proxy was
// killed — each one cost the caller a dial plus a dropped connection, so
// retry-path tests can assert how many times callers paid that price.
func (p *FaultProxy) DeadRequests() int64 { return p.deadRequests.Load() }

// Kill makes the proxy drop every connection without a response, emulating
// a crashed replica. The listener stays up so the address survives.
func (p *FaultProxy) Kill() { p.mu.Lock(); p.dead = true; p.mu.Unlock() }

// Revive undoes Kill.
func (p *FaultProxy) Revive() { p.mu.Lock(); p.dead = false; p.mu.Unlock() }

// SetLatency adds d of delay before each proxied request (0 removes it) —
// the slow-but-alive replica.
func (p *FaultProxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// SetHang makes each request stall d before being served — long enough
// past the client's deadline, it emulates a replica that accepts
// connections but never answers. 0 removes it.
func (p *FaultProxy) SetHang(d time.Duration) {
	p.mu.Lock()
	p.hang = d
	p.mu.Unlock()
}

// FailNext makes the next n requests answer 502 without reaching the
// backend — an error burst.
func (p *FaultProxy) FailNext(n int) {
	p.mu.Lock()
	p.failNext = n
	p.mu.Unlock()
}

// handle applies the faults configured at the moment the request arrives.
func (p *FaultProxy) handle(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	p.mu.Lock()
	dead := p.dead
	delay := p.latency + p.hang
	burst := p.failNext > 0
	if burst {
		p.failNext--
	}
	p.mu.Unlock()

	if dead {
		p.deadRequests.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("testutil: response writer does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
	}
	if burst {
		http.Error(w, `{"error":"injected fault"}`, http.StatusBadGateway)
		return
	}
	p.proxy.ServeHTTP(w, r)
}
