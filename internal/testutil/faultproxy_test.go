package testutil

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, error) {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	return client.Get(url)
}

func TestFaultProxyPassesThrough(t *testing.T) {
	p, err := NewFaultProxy(newBackend(t).URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("proxied response = %d %q", resp.StatusCode, body)
	}
	if p.Requests() != 1 {
		t.Errorf("Requests = %d, want 1", p.Requests())
	}
}

func TestFaultProxyKillAndRevive(t *testing.T) {
	p, err := NewFaultProxy(newBackend(t).URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	p.Kill()
	if _, err := get(t, p.URL()); err == nil {
		t.Fatal("killed proxy answered; want a transport error")
	}
	if p.DeadRequests() != 1 {
		t.Errorf("DeadRequests = %d, want 1", p.DeadRequests())
	}

	// The address survives death: revival serves again on the same URL.
	p.Revive()
	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatalf("revived proxy: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("revived proxy status = %d", resp.StatusCode)
	}
}

func TestFaultProxyLatency(t *testing.T) {
	p, err := NewFaultProxy(newBackend(t).URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	p.SetLatency(60 * time.Millisecond)
	start := time.Now()
	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("request took %v, want ≥ 60ms of injected latency", elapsed)
	}
	p.SetLatency(0)
	start = time.Now()
	resp, err = get(t, p.URL())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("latency removal did not take: %v", elapsed)
	}
}

func TestFaultProxyFailNextBurst(t *testing.T) {
	p, err := NewFaultProxy(newBackend(t).URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	p.FailNext(2)
	for i := 0; i < 2; i++ {
		resp, err := get(t, p.URL())
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("burst request %d = %d, want 502", i, resp.StatusCode)
		}
	}
	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("after burst = %d, want 200", resp.StatusCode)
	}
}

func TestFaultProxyHangRespectsClientDeadline(t *testing.T) {
	p, err := NewFaultProxy(newBackend(t).URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	p.SetHang(10 * time.Second)
	client := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, gerr := client.Get(p.URL())
	if gerr == nil {
		t.Fatal("hung request returned without error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("client deadline did not bound the hang: %v", elapsed)
	}
}
