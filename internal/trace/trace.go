// Package trace generates synthetic cache-line address streams whose LRU
// stack-distance distribution matches a target miss-ratio curve.
//
// For an LRU cache of capacity c lines, the miss ratio equals the probability
// that an access's stack distance is >= c. Inverting that relationship lets
// us sample stack distances directly from any miss-ratio curve in
// internal/workload and synthesize a stream that reproduces it — this is the
// stand-in for SPEC memory traces, and it is what drives the monitor
// (UMON/GMON) validation experiments.
//
// The LRU stack is maintained as a Fenwick tree over recency slots, so both
// "select the d-th most recently used line" and move-to-front cost O(log n)
// rather than O(n) — workloads with multi-megabyte working sets generate
// millions of accesses per second.
package trace

import (
	"math/rand"

	"cdcs/internal/cachesim"
	"cdcs/internal/curves"
)

// Generator emits an address stream matching a miss-ratio curve.
type Generator struct {
	ratio curves.Curve
	rng   *rand.Rand
	next  cachesim.Addr

	// floorRatio is the curve's terminal value: the fraction of accesses
	// that miss at any capacity (streaming/cold component).
	floorRatio float64
	// maxDist is the deepest reuse the curve can produce (the knee where it
	// flattens to the floor); the stack never needs to grow beyond it.
	maxDist int

	// Recency structure: slot indices increase with recency (clock order).
	// bit is a Fenwick tree counting live slots; addrAt maps slot→address.
	bit    []int
	addrAt []cachesim.Addr
	nSlots int
	clock  int // next slot to assign (1-based slots in the tree)
	live   int
}

// NewGenerator builds a generator for the given miss-ratio curve (X in
// lines, Y in [0,1], non-increasing). Base disambiguates address spaces so
// multiple generators can share one cache without aliasing.
func NewGenerator(ratio curves.Curve, base cachesim.Addr, rng *rand.Rand) *Generator {
	floor := ratio.Eval(ratio.MaxX())
	maxDist := 0
	for i := ratio.Len() - 1; i >= 0; i-- {
		x, y := ratio.Knot(i)
		if y > floor+1e-12 {
			// The flat floor starts at the next knot (piecewise-linear
			// descent ends there).
			if i+1 < ratio.Len() {
				x, _ = ratio.Knot(i + 1)
			}
			maxDist = int(x)
			break
		}
	}
	g := &Generator{
		ratio:      ratio,
		rng:        rng,
		next:       base,
		floorRatio: floor,
		maxDist:    maxDist,
	}
	g.nSlots = 4 * (maxDist + 2)
	if g.nSlots < 1024 {
		g.nSlots = 1024
	}
	g.bit = make([]int, g.nSlots+1)
	g.addrAt = make([]cachesim.Addr, g.nSlots+1)
	return g
}

// Next returns the next address in the stream.
func (g *Generator) Next() cachesim.Addr {
	u := g.rng.Float64()
	// With probability floorRatio the access misses everywhere: fresh line.
	if u < g.floorRatio || g.live == 0 {
		return g.fresh()
	}
	// Otherwise sample a stack distance d with P(distance >= x) = ratio(x):
	// solve ratio(d) = u on the non-increasing curve.
	d := g.invert(u)
	if d >= g.live {
		return g.fresh()
	}
	// The d-th most recent live slot is the (live-d)-th oldest.
	slot := g.findKth(g.live - d)
	addr := g.addrAt[slot]
	g.bitAdd(slot, -1)
	g.pushTop(addr)
	return addr
}

// fresh issues a never-seen address and pushes it on the stack. Lines deeper
// than maxDist can never be reselected, so the oldest slot is dropped once
// the stack is full.
func (g *Generator) fresh() cachesim.Addr {
	addr := g.next
	g.next++
	g.pushTop(addr)
	g.live++
	if g.live > g.maxDist+1 {
		oldest := g.findKth(1)
		g.bitAdd(oldest, -1)
		g.live--
	}
	return addr
}

// pushTop places addr in the newest recency slot, compacting when the clock
// runs out of slots.
func (g *Generator) pushTop(addr cachesim.Addr) {
	if g.clock >= g.nSlots {
		g.compact()
	}
	g.clock++
	g.addrAt[g.clock] = addr
	g.bitAdd(g.clock, 1)
}

// compact rebuilds the recency structure with live slots renumbered 1..live.
func (g *Generator) compact() {
	liveAddrs := make([]cachesim.Addr, 0, g.live)
	for slot := 1; slot <= g.clock; slot++ {
		if g.slotLive(slot) {
			liveAddrs = append(liveAddrs, g.addrAt[slot])
		}
	}
	for i := range g.bit {
		g.bit[i] = 0
	}
	for i, a := range liveAddrs {
		g.addrAt[i+1] = a
		g.bitAdd(i+1, 1)
	}
	g.clock = len(liveAddrs)
}

// slotLive reports whether a slot currently holds a live line.
func (g *Generator) slotLive(slot int) bool {
	return g.bitSum(slot)-g.bitSum(slot-1) > 0
}

// bitAdd adds delta at a 1-based slot.
func (g *Generator) bitAdd(slot, delta int) {
	for ; slot <= g.nSlots; slot += slot & (-slot) {
		g.bit[slot] += delta
	}
}

// bitSum returns the count of live slots in [1, slot].
func (g *Generator) bitSum(slot int) int {
	s := 0
	for ; slot > 0; slot -= slot & (-slot) {
		s += g.bit[slot]
	}
	return s
}

// findKth returns the slot of the k-th oldest live line (1-based) via
// Fenwick descent.
func (g *Generator) findKth(k int) int {
	pos := 0
	// Highest power of two <= nSlots.
	mask := 1
	for mask<<1 <= g.nSlots {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := pos + mask
		if next <= g.nSlots && g.bit[next] < k {
			pos = next
			k -= g.bit[pos]
		}
	}
	return pos + 1
}

// invert finds the smallest distance d such that ratio(d) <= u, by binary
// search over the non-increasing curve.
func (g *Generator) invert(u float64) int {
	lo, hi := 0.0, g.ratio.MaxX()
	if g.ratio.Eval(lo) <= u {
		return 0
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if g.ratio.Eval(mid) <= u {
			hi = mid
		} else {
			lo = mid
		}
	}
	return int(hi)
}

// Stream emits n addresses into a slice.
func (g *Generator) Stream(n int) []cachesim.Addr {
	out := make([]cachesim.Addr, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Interleave merges several per-generator streams access-by-access using the
// given weights (relative access rates), producing the mixed reference
// stream a shared cache bank observes. It returns the merged stream and the
// generator index of each access.
func Interleave(rng *rand.Rand, gens []*Generator, weights []float64, n int) ([]cachesim.Addr, []int) {
	if len(gens) != len(weights) {
		panic("trace: generators/weights mismatch")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	addrs := make([]cachesim.Addr, n)
	who := make([]int, n)
	for i := 0; i < n; i++ {
		u := rng.Float64() * total
		k := 0
		for ; k < len(weights)-1; k++ {
			if u < weights[k] {
				break
			}
			u -= weights[k]
		}
		addrs[i] = gens[k].Next()
		who[i] = k
	}
	return addrs, who
}
