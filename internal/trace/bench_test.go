package trace

import (
	"math/rand"
	"testing"

	"cdcs/internal/curves"
)

// BenchmarkGeneratorNext measures per-access synthesis cost with a
// multi-megabyte working set (the Fenwick recency structure keeps this
// O(log n); the naive slice version was O(n)).
func BenchmarkGeneratorNext(b *testing.B) {
	ratio := curves.New(
		[]float64{0, 20000, 40000, 65536},
		[]float64{0.9, 0.5, 0.05, 0.05})
	g := NewGenerator(ratio, 0, rand.New(rand.NewSource(1)))
	// Warm the stack.
	for i := 0; i < 100000; i++ {
		g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
