package trace

import (
	"math"
	"math/rand"
	"testing"

	"cdcs/internal/cachesim"
	"cdcs/internal/curves"
	"cdcs/internal/workload"
)

// reproduces checks that a generator's stream reproduces the target curve on
// an exact LRU simulator within tol at the probe capacities.
func reproduces(t *testing.T, ratio curves.Curve, probes []int, n int, tol float64) {
	t.Helper()
	g := NewGenerator(ratio, 0, rand.New(rand.NewSource(101)))
	lru := cachesim.NewLRUStack(int(ratio.MaxX()) + 1)
	for i := 0; i < n; i++ {
		lru.Access(g.Next())
	}
	for _, c := range probes {
		want := ratio.Eval(float64(c))
		got := lru.MissRatioAt(c)
		if math.Abs(got-want) > tol {
			t.Errorf("capacity %d: measured miss ratio %.3f, target %.3f", c, got, want)
		}
	}
}

func TestGeneratorReproducesCliffCurve(t *testing.T) {
	// omnet-like cliff at 2048 lines.
	ratio := curves.New(
		[]float64{0, 1024, 1843, 1946, 2048, 2253, 8192},
		[]float64{0.9, 0.87, 0.81, 0.45, 0.03, 0.02, 0.02})
	reproduces(t, ratio, []int{256, 1024, 4096, 8192}, 120000, 0.06)
}

func TestGeneratorReproducesStreamingCurve(t *testing.T) {
	ratio := curves.Constant(0.97, 4096)
	g := NewGenerator(ratio, 0, rand.New(rand.NewSource(7)))
	lru := cachesim.NewLRUStack(4097)
	for i := 0; i < 50000; i++ {
		lru.Access(g.Next())
	}
	// Streaming: high miss ratio even at full capacity.
	if r := lru.MissRatioAt(4096); r < 0.9 {
		t.Errorf("streaming trace hit too much: miss ratio %.3f", r)
	}
}

func TestGeneratorReproducesDecayCurve(t *testing.T) {
	// Exponential-decay (friendly) curve, sampled loosely.
	xs := []float64{0, 512, 1024, 2048, 4096, 8192}
	ys := []float64{0.8, 0.55, 0.4, 0.25, 0.15, 0.10}
	reproduces(t, curves.New(xs, ys), []int{512, 2048, 8192}, 120000, 0.06)
}

func TestGeneratorMatchesWorkloadProfile(t *testing.T) {
	// End-to-end: the omnet profile's own curve should be reproducible.
	// Scale the domain down 8x to keep the exact LRU simulation fast; the
	// curve shape is capacity-relative so this preserves the cliff.
	omnet := workload.ByName(workload.SPECCPU(), "omnet")
	xs := omnet.MissRatio.Xs()
	ys := omnet.MissRatio.Ys()
	for i := range xs {
		xs[i] /= 8
	}
	scaled := curves.New(xs, ys)
	reproduces(t, scaled, []int{2048, 4096, 6144}, 100000, 0.07)
}

func TestFreshAddressesAreUnique(t *testing.T) {
	g := NewGenerator(curves.Constant(1.0, 64), 0, rand.New(rand.NewSource(1)))
	seen := map[cachesim.Addr]int{}
	for i := 0; i < 1000; i++ {
		seen[g.Next()]++
	}
	// Pure streaming: all addresses distinct.
	for a, n := range seen {
		if n > 1 {
			t.Fatalf("address %d issued %d times under ratio=1", a, n)
		}
	}
}

func TestBaseSeparatesAddressSpaces(t *testing.T) {
	g1 := NewGenerator(curves.Constant(1, 16), 0, rand.New(rand.NewSource(1)))
	g2 := NewGenerator(curves.Constant(1, 16), 1<<32, rand.New(rand.NewSource(1)))
	s1 := g1.Stream(100)
	s2 := g2.Stream(100)
	inS1 := map[cachesim.Addr]bool{}
	for _, a := range s1 {
		inS1[a] = true
	}
	for _, a := range s2 {
		if inS1[a] {
			t.Fatalf("address collision across bases: %d", a)
		}
	}
}

func TestStreamLength(t *testing.T) {
	g := NewGenerator(curves.Constant(0.5, 128), 0, rand.New(rand.NewSource(2)))
	if got := len(g.Stream(777)); got != 777 {
		t.Errorf("Stream(777) returned %d addresses", got)
	}
}

func TestInterleaveWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g1 := NewGenerator(curves.Constant(0.5, 128), 0, rng)
	g2 := NewGenerator(curves.Constant(0.5, 128), 1<<32, rng)
	_, who := Interleave(rng, []*Generator{g1, g2}, []float64{3, 1}, 40000)
	n1 := 0
	for _, w := range who {
		if w == 0 {
			n1++
		}
	}
	frac := float64(n1) / 40000
	if frac < 0.71 || frac > 0.79 {
		t.Errorf("weight-3 generator got %.3f of accesses, want ~0.75", frac)
	}
}

func TestInterleavePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Interleave mismatch did not panic")
		}
	}()
	Interleave(rand.New(rand.NewSource(1)), nil, []float64{1}, 1)
}
