// Package vtb implements the virtual-cache translation buffer (§III, Fig. 3).
//
// A VC descriptor is an array of N buckets, each naming a bank and a bank
// partition. An address is hashed into a bucket, so a VC spreads its accesses
// across its bank partitions in proportion to their bucket counts — which the
// OS sets proportional to allocated capacity, making the ganged partitions
// behave like one cache of their aggregate size. Each VTB entry holds the
// current descriptor plus a shadow descriptor used during incremental
// reconfigurations (§IV-H): while the shadow is active, lookups also return
// the line's previous location so misses can be forwarded to the old bank
// (demand moves).
package vtb

import (
	"fmt"
	"sort"

	"cdcs/internal/cachesim"
)

// DefaultBuckets is the descriptor size used in the paper (N=64).
const DefaultBuckets = 64

// Loc names a bank and a partition within that bank.
type Loc struct {
	Bank int
	Part int
}

// Descriptor maps hash buckets to locations.
type Descriptor struct {
	buckets []Loc
}

// Buckets returns the descriptor's bucket count.
func (d Descriptor) Buckets() int { return len(d.buckets) }

// IsZero reports whether the descriptor is uninitialized.
func (d Descriptor) IsZero() bool { return len(d.buckets) == 0 }

// BuildDescriptor constructs an N-bucket descriptor from a bank→lines
// allocation, assigning buckets with the largest-remainder method so bucket
// counts are proportional to capacity (the paper's example: 1MB + 3MB
// partitions get 16 + 48 of 64 buckets). parts maps bank to the partition id
// the VC owns there. It returns an error if the allocation is empty or
// negative, or if there are more banks than buckets.
func BuildDescriptor(n int, alloc map[int]float64, parts map[int]int) (Descriptor, error) {
	if n <= 0 {
		return Descriptor{}, fmt.Errorf("vtb: descriptor needs positive bucket count, got %d", n)
	}
	type share struct {
		bank  int
		lines float64
	}
	shares := make([]share, 0, len(alloc))
	total := 0.0
	for b, lines := range alloc {
		if lines < 0 {
			return Descriptor{}, fmt.Errorf("vtb: negative allocation %g in bank %d", lines, b)
		}
		if lines > 0 {
			shares = append(shares, share{b, lines})
			total += lines
		}
	}
	if len(shares) == 0 || total <= 0 {
		return Descriptor{}, fmt.Errorf("vtb: empty allocation")
	}
	if len(shares) > n {
		// Keep the n largest shares; a VC spread over more banks than
		// buckets cannot be represented (the OS avoids this by placing VCs
		// compactly).
		sort.Slice(shares, func(i, j int) bool {
			if shares[i].lines != shares[j].lines {
				return shares[i].lines > shares[j].lines
			}
			return shares[i].bank < shares[j].bank
		})
		shares = shares[:n]
		total = 0
		for _, s := range shares {
			total += s.lines
		}
	}
	// Deterministic order for reproducible layouts.
	sort.Slice(shares, func(i, j int) bool { return shares[i].bank < shares[j].bank })

	// Largest-remainder apportionment.
	type rem struct {
		idx  int
		frac float64
	}
	counts := make([]int, len(shares))
	rems := make([]rem, len(shares))
	used := 0
	for i, s := range shares {
		exact := float64(n) * s.lines / total
		counts[i] = int(exact)
		rems[i] = rem{i, exact - float64(counts[i])}
		used += counts[i]
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx
	})
	for k := 0; used < n; k++ {
		counts[rems[k%len(rems)].idx]++
		used++
	}

	buckets := make([]Loc, 0, n)
	for i, s := range shares {
		p := parts[s.bank]
		for j := 0; j < counts[i]; j++ {
			buckets = append(buckets, Loc{Bank: s.bank, Part: p})
		}
	}
	return Descriptor{buckets: buckets}, nil
}

// hash64 is splitmix64 (same mixing as internal/monitor).
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Lookup hashes an address into its bucket's location.
func (d Descriptor) Lookup(addr cachesim.Addr) Loc {
	return d.buckets[hash64(uint64(addr))%uint64(len(d.buckets))]
}

// Fractions returns the fraction of accesses each bank receives (bucket
// share). This is the α_tb spreading the performance model uses.
func (d Descriptor) Fractions() map[int]float64 {
	out := map[int]float64{}
	for _, l := range d.buckets {
		out[l.Bank] += 1.0 / float64(len(d.buckets))
	}
	return out
}

// Entry is one VTB entry: a VC id tag plus current and shadow descriptors.
type Entry struct {
	VC      int
	Current Descriptor
	Shadow  Descriptor
	// ShadowActive marks an in-flight incremental reconfiguration.
	ShadowActive bool
}

// VTB is the per-tile translation buffer: a small associative table (3
// entries in the paper: thread, process and global VC).
type VTB struct {
	entries []Entry
	cap     int
}

// New returns a VTB with capacity for n entries.
func New(n int) *VTB {
	if n <= 0 {
		panic(fmt.Sprintf("vtb: invalid capacity %d", n))
	}
	return &VTB{cap: n}
}

// Install sets the descriptor for a VC. If the VC already has an entry, the
// previous descriptor becomes the shadow and the shadow is marked active
// (the §IV-H reconfiguration handshake); otherwise a fresh entry is added.
// Install returns an error when the table is full.
func (v *VTB) Install(vc int, d Descriptor) error {
	if d.IsZero() {
		return fmt.Errorf("vtb: installing zero descriptor for VC %d", vc)
	}
	for i := range v.entries {
		if v.entries[i].VC == vc {
			v.entries[i].Shadow = v.entries[i].Current
			v.entries[i].ShadowActive = true
			v.entries[i].Current = d
			return nil
		}
	}
	if len(v.entries) >= v.cap {
		return fmt.Errorf("vtb: table full (%d entries) installing VC %d", v.cap, vc)
	}
	v.entries = append(v.entries, Entry{VC: vc, Current: d})
	return nil
}

// Lookup translates an address for a VC. It returns the current location,
// and — while a reconfiguration is in flight — the previous location and
// whether the line's home changed (a moved line must check its old bank on
// a miss). A lookup for an unknown VC is the hardware's "exception on miss":
// it returns an error.
func (v *VTB) Lookup(vc int, addr cachesim.Addr) (cur, old Loc, moved bool, err error) {
	for i := range v.entries {
		e := &v.entries[i]
		if e.VC != vc {
			continue
		}
		cur = e.Current.Lookup(addr)
		if e.ShadowActive {
			old = e.Shadow.Lookup(addr)
			return cur, old, old != cur, nil
		}
		return cur, cur, false, nil
	}
	return Loc{}, Loc{}, false, fmt.Errorf("vtb: miss for VC %d", vc)
}

// ShadowActive reports whether any entry still has an active shadow.
func (v *VTB) ShadowActive() bool {
	for i := range v.entries {
		if v.entries[i].ShadowActive {
			return true
		}
	}
	return false
}

// ClearShadows ends the reconfiguration epoch: cores stop consulting shadow
// descriptors once background invalidation has walked the arrays.
func (v *VTB) ClearShadows() {
	for i := range v.entries {
		v.entries[i].ShadowActive = false
		v.entries[i].Shadow = Descriptor{}
	}
}

// Entries returns the number of installed entries.
func (v *VTB) Entries() int { return len(v.entries) }

// StateBytes returns the hardware footprint: per entry, two descriptors of
// 12 bits per bucket (6-bit bank + 6-bit partition) plus a 4-byte tag. The
// paper's 3-entry, 64-bucket VTB is ~588 bytes.
func (v *VTB) StateBytes() int {
	perDescriptor := DefaultBuckets * 12 / 8
	return v.cap * (2*perDescriptor + 4)
}
