package vtb

import (
	"math"
	"testing"

	"cdcs/internal/cachesim"
)

func TestBuildDescriptorProportional(t *testing.T) {
	// The paper's example: partitions of 1MB and 3MB get 16 and 48 of 64
	// buckets, so the 3MB partition receives 3x the accesses.
	d, err := BuildDescriptor(64,
		map[int]float64{3: 1 * 16384, 9: 3 * 16384},
		map[int]int{3: 5, 9: 2})
	if err != nil {
		t.Fatal(err)
	}
	fr := d.Fractions()
	if !approx(fr[3], 0.25, 1e-9) || !approx(fr[9], 0.75, 1e-9) {
		t.Errorf("fractions = %v, want 0.25/0.75", fr)
	}
	// Partition ids preserved.
	counts := map[Loc]int{}
	for i := 0; i < d.Buckets(); i++ {
		counts[d.buckets[i]]++
	}
	if counts[Loc{3, 5}] != 16 || counts[Loc{9, 2}] != 48 {
		t.Errorf("bucket counts = %v", counts)
	}
}

func TestBuildDescriptorLargestRemainder(t *testing.T) {
	// Three equal shares across 64 buckets: 22+21+21.
	d, err := BuildDescriptor(64,
		map[int]float64{0: 1, 1: 1, 2: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	per := map[int]int{}
	for _, l := range d.buckets {
		per[l.Bank]++
	}
	sum := 0
	for b, n := range per {
		if n < 21 || n > 22 {
			t.Errorf("bank %d has %d buckets", b, n)
		}
		sum += n
	}
	if sum != 64 {
		t.Errorf("bucket total %d, want 64", sum)
	}
}

func TestBuildDescriptorErrors(t *testing.T) {
	if _, err := BuildDescriptor(0, map[int]float64{0: 1}, nil); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := BuildDescriptor(8, map[int]float64{}, nil); err == nil {
		t.Error("empty allocation accepted")
	}
	if _, err := BuildDescriptor(8, map[int]float64{0: -1}, nil); err == nil {
		t.Error("negative allocation accepted")
	}
	if _, err := BuildDescriptor(8, map[int]float64{0: 0}, nil); err == nil {
		t.Error("all-zero allocation accepted")
	}
}

func TestBuildDescriptorMoreBanksThanBuckets(t *testing.T) {
	// 10 banks, 4 buckets: keep the 4 largest shares.
	alloc := map[int]float64{}
	for b := 0; b < 10; b++ {
		alloc[b] = float64(b + 1)
	}
	d, err := BuildDescriptor(4, alloc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range d.buckets {
		if l.Bank < 6 {
			t.Errorf("small-share bank %d kept in truncated descriptor", l.Bank)
		}
	}
}

func TestLookupDistributionMatchesFractions(t *testing.T) {
	d, err := BuildDescriptor(64,
		map[int]float64{1: 1, 2: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[d.Lookup(cachesim.Addr(i)).Bank]++
	}
	f1 := float64(counts[1]) / n
	if f1 < 0.22 || f1 > 0.28 {
		t.Errorf("bank 1 observed fraction %.3f, want ~0.25", f1)
	}
}

func TestLookupDeterministic(t *testing.T) {
	d, _ := BuildDescriptor(16, map[int]float64{0: 1, 1: 1}, nil)
	for i := 0; i < 100; i++ {
		a := d.Lookup(cachesim.Addr(i))
		b := d.Lookup(cachesim.Addr(i))
		if a != b {
			t.Fatalf("lookup of %d not deterministic", i)
		}
	}
}

func TestVTBInstallAndLookup(t *testing.T) {
	v := New(3)
	d1, _ := BuildDescriptor(16, map[int]float64{4: 1}, map[int]int{4: 7})
	if err := v.Install(11, d1); err != nil {
		t.Fatal(err)
	}
	cur, _, moved, err := v.Lookup(11, 0xABC)
	if err != nil {
		t.Fatal(err)
	}
	if cur != (Loc{4, 7}) {
		t.Errorf("lookup = %+v, want bank 4 part 7", cur)
	}
	if moved {
		t.Error("fresh install reports moved lines")
	}
}

func TestVTBExceptionOnMiss(t *testing.T) {
	v := New(3)
	if _, _, _, err := v.Lookup(99, 1); err == nil {
		t.Error("lookup of unknown VC did not error")
	}
}

func TestVTBCapacity(t *testing.T) {
	v := New(2)
	d, _ := BuildDescriptor(8, map[int]float64{0: 1}, nil)
	if err := v.Install(1, d); err != nil {
		t.Fatal(err)
	}
	if err := v.Install(2, d); err != nil {
		t.Fatal(err)
	}
	if err := v.Install(3, d); err == nil {
		t.Error("overfull VTB accepted entry")
	}
	if v.Entries() != 2 {
		t.Errorf("entries=%d", v.Entries())
	}
}

func TestVTBShadowOnReinstall(t *testing.T) {
	v := New(3)
	dOld, _ := BuildDescriptor(16, map[int]float64{1: 1}, nil)
	dNew, _ := BuildDescriptor(16, map[int]float64{2: 1}, nil)
	if err := v.Install(5, dOld); err != nil {
		t.Fatal(err)
	}
	if v.ShadowActive() {
		t.Error("shadow active after first install")
	}
	if err := v.Install(5, dNew); err != nil {
		t.Fatal(err)
	}
	if !v.ShadowActive() {
		t.Error("shadow inactive after reinstall")
	}
	cur, old, moved, err := v.Lookup(5, 0x123)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Bank != 2 || old.Bank != 1 || !moved {
		t.Errorf("shadow lookup: cur=%+v old=%+v moved=%v", cur, old, moved)
	}
	v.ClearShadows()
	if v.ShadowActive() {
		t.Error("shadow still active after ClearShadows")
	}
	_, old2, moved2, _ := v.Lookup(5, 0x123)
	if moved2 || old2 != cur {
		t.Error("cleared shadow still reports moves")
	}
}

func TestVTBShadowUnmovedLines(t *testing.T) {
	// Reconfiguration that keeps part of the mapping: addresses whose bucket
	// still maps to the same bank are not "moved".
	v := New(3)
	dOld, _ := BuildDescriptor(64, map[int]float64{1: 1, 2: 1}, nil)
	dNew, _ := BuildDescriptor(64, map[int]float64{1: 1, 3: 1}, nil)
	v.Install(7, dOld)
	v.Install(7, dNew)
	movedCount, total := 0, 5000
	for i := 0; i < total; i++ {
		_, _, moved, err := v.Lookup(7, cachesim.Addr(i))
		if err != nil {
			t.Fatal(err)
		}
		if moved {
			movedCount++
		}
	}
	// Bank 1's buckets are identical in both descriptors (deterministic
	// construction), so only bank-2 buckets moved: about half.
	frac := float64(movedCount) / float64(total)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("moved fraction %.3f, want ~0.5", frac)
	}
}

func TestVTBStateBytes(t *testing.T) {
	// Paper: 3-entry VTB with 64-bucket descriptors is ~588 bytes.
	v := New(3)
	if b := v.StateBytes(); b < 550 || b > 650 {
		t.Errorf("VTB state %dB, want ~588B", b)
	}
}

func TestInstallZeroDescriptor(t *testing.T) {
	v := New(1)
	if err := v.Install(1, Descriptor{}); err == nil {
		t.Error("zero descriptor accepted")
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func approx(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
