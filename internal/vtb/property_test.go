package vtb

import (
	"math"
	"math/rand"
	"testing"

	"cdcs/internal/cachesim"
)

// randomAlloc builds a random bank→lines allocation.
func randomAlloc(rng *rand.Rand) map[int]float64 {
	n := 1 + rng.Intn(12)
	out := map[int]float64{}
	for i := 0; i < n; i++ {
		out[rng.Intn(64)] = rng.Float64()*16000 + 1
	}
	return out
}

func TestPropertyFractionsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 200; trial++ {
		d, err := BuildDescriptor(64, randomAlloc(rng), nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sum := 0.0
		for _, f := range d.Fractions() {
			if f <= 0 {
				t.Fatalf("trial %d: non-positive fraction", trial)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: fractions sum to %g", trial, sum)
		}
	}
}

func TestPropertyFractionsProportional(t *testing.T) {
	// Bucket fractions approximate capacity shares within 1/N each.
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 200; trial++ {
		alloc := randomAlloc(rng)
		if len(alloc) > 32 {
			continue
		}
		d, err := BuildDescriptor(64, alloc, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := 0.0
		for _, l := range alloc {
			total += l
		}
		fr := d.Fractions()
		for b, lines := range alloc {
			want := lines / total
			if math.Abs(fr[b]-want) > 1.0/64+1e-9 {
				t.Fatalf("trial %d: bank %d fraction %g, want %g±1/64", trial, b, fr[b], want)
			}
		}
	}
}

func TestPropertyLookupStaysInDescriptor(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 100; trial++ {
		alloc := randomAlloc(rng)
		d, err := BuildDescriptor(64, alloc, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 200; i++ {
			loc := d.Lookup(cachesim.Addr(rng.Uint64()))
			if _, ok := alloc[loc.Bank]; !ok {
				t.Fatalf("trial %d: lookup returned bank %d outside allocation", trial, loc.Bank)
			}
		}
	}
}

func TestPropertyShadowCoversAllAddresses(t *testing.T) {
	// During a reconfiguration every address has both a current and an old
	// location, and unmoved addresses report moved=false.
	rng := rand.New(rand.NewSource(304))
	v := New(1)
	d1, _ := BuildDescriptor(64, randomAlloc(rng), nil)
	d2, _ := BuildDescriptor(64, randomAlloc(rng), nil)
	if err := v.Install(0, d1); err != nil {
		t.Fatal(err)
	}
	if err := v.Install(0, d2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		addr := cachesim.Addr(rng.Uint64())
		cur, old, moved, err := v.Lookup(0, addr)
		if err != nil {
			t.Fatal(err)
		}
		if moved != (cur != old) {
			t.Fatalf("moved flag inconsistent: cur=%v old=%v moved=%v", cur, old, moved)
		}
		if cur != d2.Lookup(addr) || old != d1.Lookup(addr) {
			t.Fatal("shadow lookup does not match descriptors")
		}
	}
}
