// Package resultcache is a sharded, content-addressed LRU cache of
// serialized simulation results with singleflight coalescing.
//
// The serving path treats simulation as an expensive pure function of a
// request hash (see the request types in the root package): identical hashes
// mean identical bytes, so a cache in front of the simulator is correct by
// construction. Keys are spread over independently locked shards so hot
// lookups do not serialize, and concurrent misses on the same key coalesce
// onto a single computation — a thundering herd of identical requests
// triggers exactly one simulation, with every caller handed the same bytes.
package resultcache

import (
	"container/list"
	"context"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// nShards is the fixed shard count; a power of two so the key hash maps to a
// shard with a mask. 16 is plenty for the per-core HTTP handler counts a
// single process sees.
const nShards = 16

// Cache is the sharded LRU. Create with New; a Cache must not be copied.
type Cache struct {
	shards [nShards]shard
	seed   maphash.Seed

	// flight coalesces concurrent computations of the same key across all
	// shards (misses are rare and computations are long, so a single lock is
	// not a bottleneck — shards exist for the hit path).
	flightMu sync.Mutex
	flight   map[string]*call

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
	inflight  atomic.Int64
	bytes     atomic.Int64
}

// shard is one lock's worth of LRU state.
type shard struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *entry
	idx map[string]*list.Element
}

type entry struct {
	key string
	val []byte
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// New builds a cache holding up to capacity entries (minimum nShards, so
// every shard holds at least one).
func New(capacity int) *Cache {
	if capacity < nShards {
		capacity = nShards
	}
	c := &Cache{
		seed:   maphash.MakeSeed(),
		flight: map[string]*call{},
	}
	per := capacity / nShards
	extra := capacity % nShards
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = per
		if i < extra {
			s.cap++
		}
		s.lru = list.New()
		s.idx = map[string]*list.Element{}
	}
	return c
}

// shardFor maps a key to its shard.
func (c *Cache) shardFor(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)&(nShards-1)]
}

// Get returns the cached bytes for key, if present. The returned slice is
// shared and must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	var val []byte
	el, ok := s.idx[key]
	if ok {
		s.lru.MoveToFront(el)
		// Read under the lock: put's refresh branch writes entry.val in
		// place.
		val = el.Value.(*entry).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// GetOrCompute returns the cached bytes for key, computing and caching them
// on a miss. Concurrent calls for the same key run compute exactly once: one
// caller becomes the leader and the rest wait for its result (counted as
// coalesced hits). Errors are returned to the leader and every waiter but
// are never cached, so a later request retries. If ctx is canceled while
// waiting on another caller's computation, GetOrCompute returns ctx.Err();
// the leader's compute itself is responsible for honoring ctx.
//
// hit reports whether the bytes came from cache (or a coalesced flight)
// rather than from this caller's own compute. The returned slice is shared
// and must not be modified.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	if v, ok := c.Get(key); ok {
		return v, true, nil
	}
	// Miss (already counted by Get): join or start a flight.
	return c.Compute(ctx, key, compute)
}

// Compute is GetOrCompute without the initial counting lookup: it joins an
// in-flight computation for key if one exists, and otherwise leads one,
// caching the result. Callers that already observed a miss via Get (e.g. an
// async job created for that miss) use Compute so the miss is counted once.
// The leader re-checks the cache (uncounted) before computing, since another
// flight may have landed between the caller's lookup and this call.
func (c *Cache) Compute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	c.flightMu.Lock()
	if cl, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-cl.done:
			return cl.val, true, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.flight[key] = cl
	c.flightMu.Unlock()

	if v, ok := c.peek(key); ok {
		cl.val = v
		hit = true
	} else {
		c.inflight.Add(1)
		cl.val, cl.err = compute()
		c.inflight.Add(-1)
		if cl.err == nil {
			c.Put(key, cl.val)
		}
	}
	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	close(cl.done)
	return cl.val, hit, cl.err
}

// Peek is Get without the hit/miss counters. Tier compositions (see
// internal/resultstore) use it for uncounted re-probes inside a flight whose
// triggering lookup was already counted.
func (c *Cache) Peek(key string) ([]byte, bool) {
	return c.peek(key)
}

// peek is Get without counters.
func (c *Cache) peek(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.idx[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// Put inserts (or refreshes) a key without going through a flight, evicting
// from the tail of the key's shard when over capacity. Tiered stores use it
// to promote entries that were computed elsewhere (e.g. read from a disk
// tier); most callers want GetOrCompute.
func (c *Cache) Put(key string, val []byte) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		old := el.Value.(*entry)
		c.bytes.Add(int64(len(val) - len(old.val)))
		old.val = val
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.idx[key] = s.lru.PushFront(&entry{key: key, val: val})
	c.bytes.Add(int64(len(key) + len(val)))
	var evicted int64
	for s.lru.Len() > s.cap {
		el := s.lru.Back()
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.idx, e.key)
		c.bytes.Add(-int64(len(e.key) + len(e.val)))
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Keys returns the cached keys, in no particular order. Shards are locked
// one at a time, so the snapshot is only per-shard consistent — fine for
// its use (corpus manifest export), where a key that races in or out is a
// key the fetcher tolerates missing anyway.
func (c *Cache) Keys() []string {
	out := make([]string, 0, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			out = append(out, el.Value.(*entry).key)
		}
		s.mu.Unlock()
	}
	return out
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from cache; Misses counts lookups that fell
	// through to a computation (coalesced or not).
	Hits, Misses int64
	// Coalesced counts callers that waited on another caller's in-flight
	// computation instead of starting their own.
	Coalesced int64
	// Evictions counts LRU evictions.
	Evictions int64
	// Inflight is the current number of distinct computations running.
	Inflight int64
	// Entries and Bytes describe current occupancy. Bytes counts key and
	// value bytes per entry, so it is comparable to a disk tier's
	// per-entry-file accounting.
	Entries int
	Bytes   int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Inflight:  c.inflight.Load(),
		Entries:   c.Len(),
		Bytes:     c.bytes.Load(),
	}
}
